package climber

import (
	"sync"
	"testing"
)

// The acceptance workload: with the cache enabled, a repeated-query
// workload must perform at least 5x fewer partition loads (cluster stats)
// than the same workload against the same index with the cache off.
func TestPartitionCacheReducesPartitionLoads(t *testing.T) {
	dir := t.TempDir()
	data := smallData(1500)
	buildAndClose(t, dir, data, smallOpts()...)
	queries := [][]float64{data[3], data[400], data[800], data[1200], data[1499]}
	const rounds = 10

	run := func(db *DB) int64 {
		for r := 0; r < rounds; r++ {
			for _, q := range queries {
				if _, err := db.Search(q, 20); err != nil {
					t.Fatal(err)
				}
			}
		}
		return db.CacheStats().PartitionsLoaded
	}

	cold, err := Open(dir, WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	warm, err := Open(dir, WithPartitionCacheBytes(256<<20), WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	loadsOff := run(cold)
	loadsOn := run(warm)
	t.Logf("partition loads: cache-off %d, cache-on %d (%.1fx fewer)",
		loadsOff, loadsOn, float64(loadsOff)/float64(loadsOn))
	if loadsOn == 0 {
		t.Fatal("cache-on workload reported zero loads")
	}
	if loadsOff < 5*loadsOn {
		t.Fatalf("cache saved only %.1fx partition loads (off=%d on=%d), want >= 5x",
			float64(loadsOff)/float64(loadsOn), loadsOff, loadsOn)
	}
	cs := warm.CacheStats()
	if cs.Hits == 0 || cs.Misses == 0 || cs.BytesSaved == 0 {
		t.Fatalf("cache counters not surfaced: %+v", cs)
	}
	// Per-query stats surface the hits too: a repeated query is all hits.
	_, stats, err := warm.SearchWithStats(queries[0], 20)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PartitionCacheHits == 0 || stats.PartitionCacheMisses != 0 {
		t.Fatalf("repeat query stats = %+v, want all cache hits", stats)
	}
}

// WithPartitionCacheBytes(0) — the default — must preserve today's
// behaviour exactly: identical answers, identical per-query cost
// accounting, and zeroed cache counters. And the cache, when on, must not
// change any answer or any per-query cost either.
func TestPartitionCacheEquivalence(t *testing.T) {
	dir := t.TempDir()
	data := smallData(1500)
	buildAndClose(t, dir, data, smallOpts()...)
	off, err := Open(dir, WithPartitionCacheBytes(0), WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	on, err := Open(dir, WithPartitionCacheBytes(64<<20), WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	for _, qid := range []int{1, 250, 700, 1100, 1499} {
		for _, v := range []Variant{KNN, Adaptive2X, Adaptive4X, ODSmallest} {
			a, sa, err := off.SearchWithStats(data[qid], 25, WithVariant(v))
			if err != nil {
				t.Fatal(err)
			}
			b, sb, err := on.SearchWithStats(data[qid], 25, WithVariant(v))
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("q%d %v: result counts %d vs %d", qid, v, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("q%d %v: result %d differs: %+v vs %+v", qid, v, i, a[i], b[i])
				}
			}
			if sa.PartitionsScanned != sb.PartitionsScanned ||
				sa.RecordsScanned != sb.RecordsScanned ||
				sa.BytesLoaded != sb.BytesLoaded ||
				sa.GroupsConsidered != sb.GroupsConsidered {
				t.Fatalf("q%d %v: cost accounting diverged: %+v vs %+v", qid, v, sa, sb)
			}
			if sa.PartitionCacheHits != 0 || sa.PartitionCacheMisses != 0 {
				t.Fatalf("q%d %v: cache-off query reports cache traffic: %+v", qid, v, sa)
			}
		}
	}
	if cs := off.CacheStats(); cs.Hits != 0 || cs.Misses != 0 || cs.Evictions != 0 || cs.BytesSaved != 0 {
		t.Fatalf("cache-off DB reports cache counters: %+v", cs)
	}
}

// Concurrent SearchBatch calls over one shared cached DB: exercised under
// `go test -race ./...` in CI, this doubles as the data-race check for the
// shared in-memory partitions and the singleflight path.
func TestPartitionCacheConcurrentSearchBatch(t *testing.T) {
	data := smallData(1500)
	db := buildAndReopenFrom(t, data, WithPartitionCacheBytes(128<<20))
	queries := make([][]float64, 24)
	for i := range queries {
		queries[i] = data[(i*61)%len(data)]
	}
	want, err := db.SearchBatch(queries, 10)
	if err != nil {
		t.Fatal(err)
	}

	const callers = 6
	var wg sync.WaitGroup
	got := make([][][]Result, callers)
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[c], errs[c] = db.SearchBatch(queries, 10)
		}()
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatalf("caller %d: %v", c, errs[c])
		}
		for i := range want {
			if len(got[c][i]) != len(want[i]) || got[c][i][0] != want[i][0] {
				t.Fatalf("caller %d query %d diverged under concurrency", c, i)
			}
		}
	}
	if cs := db.CacheStats(); cs.Hits == 0 {
		t.Fatalf("concurrent batches produced no cache hits: %+v", cs)
	}
}

// buildAndReopenFrom is buildAndReopen over caller-supplied data.
func buildAndReopenFrom(t *testing.T, data [][]float64, extra ...Option) *DB {
	t.Helper()
	dir := t.TempDir()
	buildAndClose(t, dir, data, smallOpts()...)
	db, err := Open(dir, extra...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// Append rewrites partition files; the cache must drop its stale copies so
// queries observe the appended records.
func TestPartitionCacheInvalidatedByAppend(t *testing.T) {
	data := smallData(1200)
	db := buildAndReopenFrom(t, data, WithPartitionCacheBytes(128<<20))

	// Warm the cache over the whole index.
	for _, qid := range []int{0, 200, 400, 600, 800, 1000} {
		if _, err := db.Search(data[qid], 10, WithVariant(ODSmallest)); err != nil {
			t.Fatal(err)
		}
	}
	extra := smallData(1230)[1200:] // 30 fresh series
	ids, err := db.Append(extra)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range extra {
		res, err := db.Search(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 || res[0].ID != ids[i] || res[0].Dist > 1e-3 {
			t.Fatalf("appended record %d invisible through the cache: %+v", ids[i], res)
		}
	}
}
