module climber

go 1.24
