package climber_test

import (
	"math/rand/v2"
	"path/filepath"
	"strings"
	"testing"

	"climber"
)

// TestOpenShardsRoundTrip covers the multi-open helpers behind sharded
// deployments: ShardDirs names the conventional layout, OpenShards opens
// every directory (failing atomically when one is missing), and
// CloseShards releases them all idempotently.
func TestOpenShardsRoundTrip(t *testing.T) {
	base := t.TempDir()
	dirs := climber.ShardDirs(base, 2)
	if filepath.Base(dirs[0]) != "shard-0" || filepath.Base(dirs[1]) != "shard-1" {
		t.Fatalf("unexpected layout: %v", dirs)
	}

	rng := rand.New(rand.NewPCG(11, 0))
	opts := []climber.Option{
		climber.WithSegments(8), climber.WithPivots(16), climber.WithPrefixLen(4),
		climber.WithCapacity(200), climber.WithSampleRate(0.3), climber.WithBlockSize(100),
		climber.WithSeed(5),
	}
	queries := make([][][]float64, len(dirs))
	for s, dir := range dirs {
		data := make([][]float64, 400)
		for i := range data {
			x := make([]float64, 32)
			for j := range x {
				x[j] = rng.NormFloat64()
			}
			data[i] = x
		}
		db, err := climber.Build(dir, data, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		queries[s] = data[:2]
	}

	dbs, err := climber.OpenShards(dirs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for s, db := range dbs {
		res, err := db.Search(queries[s][0], 3)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		if len(res) == 0 || res[0].ID != 0 || res[0].Dist > 1e-4 {
			t.Fatalf("shard %d: self-query answered %+v", s, res)
		}
	}
	if err := climber.CloseShards(dbs); err != nil {
		t.Fatal(err)
	}
	if err := climber.CloseShards(dbs); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := dbs[0].Search(queries[0][0], 1); err == nil {
		t.Fatal("search on a closed shard succeeded")
	}

	// A missing directory fails the whole open and leaves nothing locked:
	// the good shard must be reopenable immediately (its WAL lock was
	// released by the cleanup path).
	bad := append([]string{dirs[0]}, filepath.Join(base, "shard-9"))
	if _, err := climber.OpenShards(bad, opts...); err == nil || !strings.Contains(err.Error(), "shard-9") {
		t.Fatalf("OpenShards over a missing dir: %v", err)
	}
	again, err := climber.OpenShards(dirs[:1], opts...)
	if err != nil {
		t.Fatalf("shard left locked after failed OpenShards: %v", err)
	}
	if err := climber.CloseShards(again); err != nil {
		t.Fatal(err)
	}
}
