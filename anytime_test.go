package climber

import (
	"testing"
	"time"

	"climber/internal/dataset"
)

// anytimeDB builds a DB whose plans span several partitions, so budgets
// and progressive snapshots have steps to work with.
func anytimeDB(t *testing.T) (*DB, [][]float64) {
	t.Helper()
	ds := dataset.RandomWalk(64, 2000, 17)
	data := make([][]float64, ds.Len())
	for i := range data {
		x := make([]float64, ds.Length())
		copy(x, ds.Get(i))
		data[i] = x
	}
	db, err := Build(t.TempDir(), data,
		WithSegments(8), WithPivots(24), WithPrefixLen(4),
		WithCapacity(50), WithSampleRate(0.2), WithBlockSize(250), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	_, qs := dataset.Queries(ds, 6, 33)
	return db, qs
}

// SearchProgressive run to completion must return exactly what Search
// returns, after a monotonically improving snapshot sequence.
func TestSearchProgressiveMatchesSearch(t *testing.T) {
	db, qs := anytimeDB(t)
	for _, q := range qs {
		want, _, err := db.SearchWithStats(q, 50)
		if err != nil {
			t.Fatal(err)
		}
		var updates []SearchUpdate
		got, stats, err := db.SearchProgressive(q, 50, func(u SearchUpdate) bool {
			updates = append(updates, u)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Partial {
			t.Fatalf("run-to-completion progressive marked partial: %+v", stats)
		}
		if len(updates) == 0 || !updates[len(updates)-1].Final {
			t.Fatalf("missing final update (got %d updates)", len(updates))
		}
		if len(got) != len(want) {
			t.Fatalf("progressive returned %d results, Search %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("result %d differs: %+v vs %+v", i, got[i], want[i])
			}
		}
		for i := 1; i < len(updates); i++ {
			if len(updates[i].Results) < len(updates[i-1].Results) {
				t.Fatalf("update %d shrank the answer", i)
			}
		}
	}
}

// WithMaxPartitions must hold as a hard execution budget for every variant
// and mark truncated answers partial.
func TestMaxPartitionsBudget(t *testing.T) {
	db, qs := anytimeDB(t)
	sawPartial := false
	for _, q := range qs {
		for _, v := range []Variant{KNN, Adaptive4X, ODSmallest} {
			full, fullStats, err := db.SearchWithStats(q, 200, WithVariant(v))
			if err != nil {
				t.Fatal(err)
			}
			_ = full
			res, stats, err := db.SearchWithStats(q, 200, WithVariant(v), WithMaxPartitions(1))
			if err != nil {
				t.Fatal(err)
			}
			if stats.PartitionsScanned > 1 {
				t.Fatalf("%v: budget 1 but scanned %d partitions", v, stats.PartitionsScanned)
			}
			if len(res) == 0 {
				t.Fatalf("%v: budgeted query returned nothing", v)
			}
			if fullStats.PartitionsScanned > 1 && v != Adaptive4X {
				// Adaptive shrinks its plan to the cap; the other variants
				// must truncate and say so.
				if !stats.Partial {
					t.Fatalf("%v: truncated answer not marked partial: %+v", v, stats)
				}
				sawPartial = true
			}
		}
	}
	if !sawPartial {
		t.Fatal("no query was truncated; fixture too coarse to exercise the budget")
	}
}

// A time budget yields a partial answer when it expires and a complete one
// when it is generous.
func TestTimeBudget(t *testing.T) {
	db, qs := anytimeDB(t)
	q := qs[0]
	// Generous budget: complete answer.
	_, stats, err := db.SearchWithStats(q, 50, WithTimeBudget(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Partial {
		t.Fatalf("generous time budget marked partial: %+v", stats)
	}
	// A budget that expires immediately: exactly one step runs, and any
	// multi-step plan reports partial.
	sawPartial := false
	for _, q := range qs {
		res, stats, err := db.SearchWithStats(q, 200, WithVariant(ODSmallest), WithTimeBudget(time.Nanosecond))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 {
			t.Fatal("expired budget returned no results")
		}
		if stats.StepsExecuted != 1 {
			t.Fatalf("expired budget executed %d steps, want 1", stats.StepsExecuted)
		}
		if stats.StepsPlanned > 1 {
			if !stats.Partial || stats.BudgetExhausted != "deadline" {
				t.Fatalf("truncated answer not marked deadline-partial: %+v", stats)
			}
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Fatal("no multi-step OD-Smallest plan in the fixture")
	}
}

// Stopping the progressive callback early returns the snapshot seen so far
// as a partial answer.
func TestSearchProgressiveStop(t *testing.T) {
	db, qs := anytimeDB(t)
	for _, q := range qs {
		res, stats, err := db.SearchProgressive(q, 200, func(u SearchUpdate) bool { return false },
			WithVariant(ODSmallest))
		if err != nil {
			t.Fatal(err)
		}
		if stats.StepsExecuted != 1 {
			t.Fatalf("stopped callback executed %d steps, want 1", stats.StepsExecuted)
		}
		if len(res) == 0 {
			t.Fatal("stopped progressive query returned nothing")
		}
		if stats.StepsPlanned > 1 && !stats.Partial {
			t.Fatalf("stopped answer not marked partial: %+v", stats)
		}
	}
}
