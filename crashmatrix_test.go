package climber

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"

	"climber/internal/core"
)

// TestReindexCrashMatrix is the kill-anywhere consistency test: it
// enumerates every durability step of the reindex swap protocol (each
// fsync, each rename — the core.SetCrashStepHook instrumentation points),
// hard-kills a child process at each one, reopens the directory, and
// requires the recovered database to be EXACTLY the old generation or
// EXACTLY the new one — same SHA-256 over skeleton + MANIFEST + every
// partition file, same search results — never a mix.
//
// The commit point is the MANIFEST rename: the hook fires before its step's
// operation, so a kill at or before "manifest-rename" must recover old, and
// a kill at "root-dir-sync" or "commit-done" (the rename already applied)
// must recover new.
func TestReindexCrashMatrix(t *testing.T) {
	if os.Getenv("CLIMBER_CRASH_DIR") != "" {
		t.Skip("crash child process")
	}
	if testing.Short() {
		t.Skip("spawns one child process per protocol step")
	}

	// The base database every scenario starts from: built records plus a
	// flushed append batch, WAL empty, compactor parked (deterministic
	// bytes; the rebuild is a pure function of the record set).
	data := smallData(920)
	baseDir := filepath.Join(t.TempDir(), "base")
	db, err := Build(baseDir, data[:900], ingestOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Append(data[900:920]); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	queries := [][]float64{data[7], data[433], data[910]}

	// Recording run: reindex an in-process copy with a recording hook to
	// enumerate the protocol steps in order; its end state is golden-new.
	recDir := filepath.Join(t.TempDir(), "rec")
	copyTreeForTest(t, baseDir, recDir)
	var steps []string
	core.SetCrashStepHook(func(step string) { steps = append(steps, step) })
	rec, err := Open(recDir, ingestOpts()...)
	if err != nil {
		core.SetCrashStepHook(nil)
		t.Fatal(err)
	}
	err = rec.Reindex(context.Background())
	core.SetCrashStepHook(nil)
	if err != nil {
		t.Fatal(err)
	}
	rec.waitCleanupForTest()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if len(steps) < 8 {
		t.Fatalf("recorded only %d protocol steps: %v", len(steps), steps)
	}
	seen := map[string]bool{}
	for _, s := range steps {
		if seen[s] {
			t.Fatalf("protocol step %q fired twice; the kill matrix needs unique steps", s)
		}
		seen[s] = true
	}
	for _, required := range []string{"gen-dirs", "index-rename", "manifest-rename", "commit-done"} {
		if !seen[required] {
			t.Fatalf("protocol step %q missing from recording: %v", required, steps)
		}
	}
	goldenNew := recoverFingerprint(t, recDir, queries)

	// golden-old: the base state pushed through the same recover pipeline.
	oldDir := filepath.Join(t.TempDir(), "old")
	copyTreeForTest(t, baseDir, oldDir)
	goldenOld := recoverFingerprint(t, oldDir, queries)
	if goldenOld == goldenNew {
		t.Fatal("test premise broken: old and new generations are indistinguishable")
	}

	// The matrix: one hard-killed child per step, strict old/new expectation.
	for _, step := range steps {
		t.Run(step, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "crash")
			copyTreeForTest(t, baseDir, dir)

			cmd := exec.Command(os.Args[0], "-test.run", "TestReindexCrashChild$", "-test.v")
			cmd.Env = append(os.Environ(),
				"CLIMBER_CRASH_DIR="+dir,
				"CLIMBER_CRASH_STEP="+step)
			out, err := cmd.CombinedOutput()
			if err == nil {
				t.Fatalf("child exited cleanly; step %q was never reached:\n%s", step, out)
			}
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("child failed to run: %v\n%s", err, out)
			}
			if ws, ok := ee.Sys().(syscall.WaitStatus); !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
				t.Fatalf("child died of %v, want SIGKILL (it must not clean up):\n%s", err, out)
			}

			got := recoverFingerprint(t, dir, queries)
			want, wantName := goldenOld, "old"
			if step == "root-dir-sync" || step == "commit-done" {
				// The MANIFEST rename has been applied when these fire.
				want, wantName = goldenNew, "new"
			}
			if got != want {
				other := "new"
				if wantName == "new" {
					other = "old"
				}
				detail := "nor the " + other + " one — a MIXED state"
				if (wantName == "new" && got == goldenOld) || (wantName == "old" && got == goldenNew) {
					detail = "but the " + other + " one"
				}
				t.Errorf("kill at %q: recovered state is not the %s generation, %s\ngot:\n%s\nwant:\n%s",
					step, wantName, detail, got, want)
			}
		})
	}
}

// TestReindexCrashChild is the matrix's victim process: it opens the
// database named by CLIMBER_CRASH_DIR and reindexes with a hook that
// SIGKILLs the process immediately before CLIMBER_CRASH_STEP's durable
// operation executes. It only runs when spawned by TestReindexCrashMatrix.
func TestReindexCrashChild(t *testing.T) {
	dir := os.Getenv("CLIMBER_CRASH_DIR")
	step := os.Getenv("CLIMBER_CRASH_STEP")
	if dir == "" || step == "" {
		t.Skip("not a crash child")
	}
	db, err := Open(dir, ingestOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	core.SetCrashStepHook(func(s string) {
		if s == step {
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // unreachable; SIGKILL is not deliverable-to-self async-safe on all kernels without a beat
		}
	})
	err = db.Reindex(context.Background())
	// Reaching here means the step never fired; exit cleanly so the parent
	// reports it as a matrix hole.
	t.Logf("reindex finished without hitting step %q: err=%v", step, err)
}

// recoverFingerprint reopens dir (running crash recovery: manifest pointer
// resolution, stale-generation sweep, WAL replay), verifies it serves
// queries, and returns a fingerprint of the recovered state: the search
// results for every variant plus a SHA-256 over the active generation's
// skeleton, MANIFEST, and every partition file, keyed by repo-relative
// path. Two directories with the same fingerprint hold the same logical
// AND physical database.
func recoverFingerprint(t *testing.T, dir string, queries [][]float64) string {
	t.Helper()
	db, err := Open(dir, ingestOpts()...)
	if err != nil {
		t.Fatalf("recovery open of %s: %v", dir, err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "generation=%d records=%d\n", db.Info().Generation, db.Info().NumRecords)
	for qi, q := range queries {
		for _, v := range reindexVariants {
			res, err := db.Search(q, 10, WithVariant(v))
			if err != nil {
				db.Close()
				t.Fatalf("recovered search (query %d, variant %v): %v", qi, v, err)
			}
			fmt.Fprintf(&sb, "q%d v%v: %+v\n", qi, v, res)
		}
	}
	parts := append([]string(nil), db.Index().Partitions().Paths...)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	root, _, err := core.ActiveGeneration(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	addFile := func(label, path string) {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("fingerprint %s (%s): %v", label, path, err)
		}
		fmt.Fprintf(h, "%s %d\n", label, len(b))
		h.Write(b)
	}
	if b, err := os.ReadFile(filepath.Join(dir, "MANIFEST")); err == nil {
		fmt.Fprintf(h, "MANIFEST %q\n", b)
	} else if os.IsNotExist(err) {
		fmt.Fprintf(h, "MANIFEST absent\n")
	} else {
		t.Fatal(err)
	}
	addFile("skeleton", core.IndexPathIn(root))
	rels := make([]string, len(parts))
	for i, p := range parts {
		rel, err := filepath.Rel(dir, p)
		if err != nil || !filepath.IsLocal(rel) {
			t.Fatalf("partition %s escapes the database dir", p)
		}
		rels[i] = rel
	}
	sort.Strings(rels)
	for _, rel := range rels {
		addFile(rel, filepath.Join(dir, rel))
	}
	fmt.Fprintf(&sb, "sha256=%s\n", hex.EncodeToString(h.Sum(nil)))
	return sb.String()
}
