package dpisax

import (
	"testing"

	"climber/internal/cluster"
	"climber/internal/dataset"
	"climber/internal/series"
)

func testConfig() Config {
	return Config{Segments: 8, MaxBits: 8, Capacity: 300, SampleRate: 0.2, Seed: 5}
}

func buildIndex(t *testing.T, n int, cfg Config) (*Index, *series.Dataset) {
	t.Helper()
	ds := dataset.RandomWalk(64, n, 21)
	cl, err := cluster.New(cluster.Config{NumNodes: 2, WorkersPerNode: 1, BaseDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := cl.IngestBlocks(ds, 500, "dp")
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(cl, bs, cfg, "dp")
	if err != nil {
		t.Fatal(err)
	}
	return ix, ds
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Segments: 0, MaxBits: 8, Capacity: 10, SampleRate: 0.1},
		{Segments: 8, MaxBits: 0, Capacity: 10, SampleRate: 0.1},
		{Segments: 8, MaxBits: 99, Capacity: 10, SampleRate: 0.1},
		{Segments: 8, MaxBits: 8, Capacity: 0, SampleRate: 0.1},
		{Segments: 8, MaxBits: 8, Capacity: 10, SampleRate: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestBuildPartitionsCoverDataset(t *testing.T) {
	ix, ds := buildIndex(t, 2000, testConfig())
	if ix.NumPartitions < 2 {
		t.Fatalf("expected multiple partitions, got %d", ix.NumPartitions)
	}
	total := 0
	for _, c := range ix.Parts.Counts {
		total += c
	}
	if total != ds.Len() {
		t.Fatalf("partitions hold %d records, dataset has %d", total, ds.Len())
	}
	if ix.Depth() == 0 {
		t.Fatal("tree did not split")
	}
	if ix.TreeSize() <= 0 {
		t.Fatal("tree size not positive")
	}
	if ix.Stats.SampleRecords == 0 || ix.Stats.Total == 0 {
		t.Fatalf("incomplete build stats: %+v", ix.Stats)
	}
}

// DPiSAX routing is total: every record reaches exactly one leaf, so every
// query must scan exactly one partition.
func TestSearchSinglePartition(t *testing.T) {
	ix, ds := buildIndex(t, 2000, testConfig())
	_, qs := dataset.Queries(ds, 10, 3)
	for _, q := range qs {
		res, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.PartitionsScanned != 1 {
			t.Fatalf("DPiSAX scanned %d partitions, must be exactly 1", res.Stats.PartitionsScanned)
		}
		if len(res.Results) == 0 {
			t.Fatal("no results")
		}
		for i := 1; i < len(res.Results); i++ {
			if res.Results[i].Dist < res.Results[i-1].Dist {
				t.Fatal("results not sorted")
			}
		}
	}
}

// A query identical to a stored record must land in the record's partition
// (identical values produce identical iSAX bits).
func TestSelfRouting(t *testing.T) {
	ix, ds := buildIndex(t, 2000, testConfig())
	found := 0
	for _, qid := range []int{3, 500, 1200, 1999} {
		res, err := ix.Search(ds.Get(qid), 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Results) > 0 && res.Results[0].ID == qid && res.Results[0].Dist < 1e-4 {
			found++
		}
	}
	if found != 4 {
		t.Fatalf("self-routing found %d/4, want 4/4", found)
	}
}

func TestSearchValidation(t *testing.T) {
	ix, ds := buildIndex(t, 500, testConfig())
	if _, err := ix.Search(ds.Get(0), 0); err == nil {
		t.Error("k = 0 should fail")
	}
	if _, err := ix.Search(make([]float64, 3), 5); err == nil {
		t.Error("wrong query length should fail")
	}
}

func TestRecallIsLow(t *testing.T) {
	// The defining property of DPiSAX in the paper's evaluation: recall
	// well below CLIMBER's because a single strict-bit-match partition
	// rarely contains the full neighbourhood. We assert it is within the
	// plausible band — above random, below 0.7.
	ix, ds := buildIndex(t, 4000, testConfig())
	_, qs := dataset.Queries(ds, 12, 31)
	const k = 50
	sum := 0.0
	for _, q := range qs {
		exact := exactTopK(ds, q, k)
		res, err := ix.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		sum += series.Recall(res.Results, exact)
	}
	avg := sum / float64(len(qs))
	t.Logf("DPiSAX recall = %.3f", avg)
	if avg <= 0 || avg >= 0.7 {
		t.Fatalf("DPiSAX recall %.3f outside the plausible band (0, 0.7)", avg)
	}
}

func exactTopK(ds *series.Dataset, q []float64, k int) []series.Result {
	top := series.NewTopK(k)
	for id := 0; id < ds.Len(); id++ {
		top.Push(id, series.SqDist(q, ds.Get(id)))
	}
	return top.Results()
}
