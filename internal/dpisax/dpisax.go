// Package dpisax implements the DPiSAX baseline (Yagoubi, Akbarinia,
// Masseglia, Palpanas: "DPiSAX: Massively Distributed Partitioned iSAX",
// ICDM 2017), one of the two state-of-the-art distributed data-series
// indexes CLIMBER is evaluated against (paper Sections III-B and VII).
//
// DPiSAX samples the dataset, computes iSAX words, and derives a binary
// *partitioning tree*: each internal node refines exactly one segment by one
// bit, choosing the segment that splits the node's sample most evenly. The
// leaves define the physical partitions. Every record (and every query)
// descends the tree by its own iSAX bits to exactly one leaf — which is why
// DPiSAX queries touch a single partition and, as the paper reports, why its
// recall is low (< 10%): close neighbours falling on the far side of any
// one-bit boundary are unreachable.
package dpisax

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"climber/internal/cluster"
	"climber/internal/paa"
	"climber/internal/sax"
	"climber/internal/series"
	"climber/internal/storage"
)

// Config parameterises a DPiSAX build. iSAX systems keep the word length
// small (paper Section III-B) to keep the tree compact.
type Config struct {
	// Segments is the iSAX word length w (typical: 8).
	Segments int
	// MaxBits caps the per-segment cardinality at 2^MaxBits.
	MaxBits int
	// Capacity is the partition capacity in records.
	Capacity int
	// SampleRate is the fraction of blocks sampled to derive the
	// partitioning tree.
	SampleRate float64
	// Seed drives sampling.
	Seed uint64
}

// DefaultConfig mirrors the DPiSAX paper's setup at record-count scale.
func DefaultConfig() Config {
	return Config{Segments: 8, MaxBits: 8, Capacity: 2000, SampleRate: 0.1, Seed: 42}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Segments <= 0 {
		return fmt.Errorf("dpisax: Segments must be positive, got %d", c.Segments)
	}
	if c.MaxBits <= 0 || c.MaxBits > sax.MaxBits {
		return fmt.Errorf("dpisax: MaxBits must be in [1, %d], got %d", sax.MaxBits, c.MaxBits)
	}
	if c.Capacity <= 0 {
		return fmt.Errorf("dpisax: Capacity must be positive, got %d", c.Capacity)
	}
	if c.SampleRate <= 0 || c.SampleRate > 1 {
		return fmt.Errorf("dpisax: SampleRate must be in (0, 1], got %g", c.SampleRate)
	}
	return nil
}

// node is one vertex of the binary partitioning tree.
type node struct {
	bits      []uint8 // per-segment bit widths at this node
	word      sax.Word
	splitSeg  int // -1 for a leaf
	children  [2]*node
	partition int // leaf partition ID
	count     int // sample count (scaled)
}

// Index is a built DPiSAX index.
type Index struct {
	Cfg       Config
	SeriesLen int
	root      *node
	tr        *paa.Transformer
	Parts     *cluster.PartitionSet
	Cl        *cluster.Cluster
	// NumPartitions is the number of leaves of the partitioning tree.
	NumPartitions int
	Stats         BuildStats
}

// BuildStats times the construction phases.
type BuildStats struct {
	SampleRecords int
	Tree          time.Duration
	Redistribute  time.Duration
	Total         time.Duration
}

// Build samples the dataset, derives the partitioning tree, and
// re-distributes every record to its leaf partition.
func Build(cl *cluster.Cluster, bs *cluster.BlockSet, cfg Config, name string) (*Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	tr, err := paa.NewTransformer(bs.SeriesLen, cfg.Segments)
	if err != nil {
		return nil, err
	}

	// Sample and convert to PAA signatures.
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x6a09e667f3bcc909))
	samplePaths := cl.SampleBlocks(bs, cfg.SampleRate, rng)
	var mu sync.Mutex
	type rec struct {
		id  int
		sig []float64
	}
	var sample []rec
	err = cl.ScanBlocks(samplePaths, func(id int, values []float64) error {
		sig := tr.Transform(values)
		mu.Lock()
		sample = append(sample, rec{id, sig})
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("dpisax: sampling: %w", err)
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i].id < sample[j].id })

	// Grow the binary partitioning tree. Counts are scaled to full-dataset
	// estimates so the capacity constraint refers to real partition sizes.
	scale := float64(bs.Total) / math.Max(1, float64(len(sample)))
	sigs := make([][]float64, len(sample))
	for i, r := range sample {
		sigs[i] = r.sig
	}
	root := &node{bits: make([]uint8, cfg.Segments), splitSeg: -1, count: int(float64(len(sigs))*scale + 0.5)}
	root.word = sax.Word{Symbols: make([]uint16, cfg.Segments), Bits: make([]uint8, cfg.Segments)}
	grow(root, sigs, scale, cfg)

	// Number the leaves as partitions.
	numParts := 0
	var number func(*node)
	number = func(n *node) {
		if n.splitSeg == -1 {
			n.partition = numParts
			numParts++
			return
		}
		number(n.children[0])
		number(n.children[1])
	}
	number(root)
	treeTime := time.Since(start)

	ix := &Index{Cfg: cfg, SeriesLen: bs.SeriesLen, root: root, tr: tr,
		Cl: cl, NumPartitions: numParts}
	cl.Broadcast(ix.TreeSize())

	// Re-distribute every record to its leaf partition. Within a partition,
	// records cluster by the leaves of the *local* iSAX index — DPiSAX
	// workers each build a local index over their partition, and the
	// approximate query scans only the local leaf whose word matches the
	// query exactly. This strict bit matching is the root of DPiSAX's low
	// recall in the paper's evaluation.
	redistStart := time.Now()
	parts, err := cl.Shuffle(bs, numParts, name, func(id int, values []float64) (cluster.Route, error) {
		sig := tr.Transform(values)
		leaf := ix.route(sig)
		return cluster.Route{Partition: leaf.partition, Cluster: localCluster(leaf, sig, cfg)}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("dpisax: re-distribution: %w", err)
	}
	ix.Parts = parts
	ix.Stats = BuildStats{
		SampleRecords: len(sample),
		Tree:          treeTime,
		Redistribute:  time.Since(redistStart),
		Total:         time.Since(start),
	}
	return ix, nil
}

// grow recursively splits a node while it exceeds capacity and some segment
// can still be refined. The split segment is the one whose next bit divides
// the node's sample most evenly (DPiSAX's balanced-split policy).
func grow(n *node, sigs [][]float64, scale float64, cfg Config) {
	n.count = int(float64(len(sigs))*scale + 0.5)
	if n.count <= cfg.Capacity || len(sigs) < 2 {
		return
	}
	bestSeg, bestImbalance := -1, math.MaxFloat64
	for seg := 0; seg < cfg.Segments; seg++ {
		if int(n.bits[seg]) >= cfg.MaxBits {
			continue
		}
		ones := 0
		for _, s := range sigs {
			if nextBit(s[seg], n.bits[seg]) == 1 {
				ones++
			}
		}
		imbalance := math.Abs(float64(ones)*2 - float64(len(sigs)))
		if imbalance < bestImbalance {
			bestImbalance = imbalance
			bestSeg = seg
		}
	}
	if bestSeg == -1 {
		return // every segment at max cardinality: unsplittable leaf
	}
	var zero, one [][]float64
	for _, s := range sigs {
		if nextBit(s[bestSeg], n.bits[bestSeg]) == 0 {
			zero = append(zero, s)
		} else {
			one = append(one, s)
		}
	}
	if len(zero) == 0 || len(one) == 0 {
		return // degenerate split: stop rather than recurse unboundedly
	}
	n.splitSeg = bestSeg
	for b := 0; b < 2; b++ {
		child := &node{bits: append([]uint8(nil), n.bits...), splitSeg: -1}
		child.bits[bestSeg]++
		child.word = childWord(n.word, bestSeg, uint16(b))
		n.children[b] = child
	}
	grow(n.children[0], zero, scale, cfg)
	grow(n.children[1], one, scale, cfg)
}

// nextBit returns the (bits+1)-th bit of the symbol of value — the bit a
// split on this segment keys on.
func nextBit(value float64, bits uint8) int {
	return int(sax.Symbol(value, int(bits)+1) & 1)
}

// childWord extends a word by one bit on one segment.
func childWord(w sax.Word, seg int, bit uint16) sax.Word {
	out := w.Clone()
	out.Symbols[seg] = out.Symbols[seg]<<1 | bit
	out.Bits[seg]++
	return out
}

// route descends the partitioning tree with a PAA signature to its unique
// leaf.
func (ix *Index) route(sig []float64) *node {
	n := ix.root
	for n.splitSeg != -1 {
		n = n.children[nextBit(sig[n.splitSeg], n.bits[n.splitSeg])]
	}
	return n
}

// localRefinement is how many extra bits per segment the local per-partition
// iSAX index refines beyond the leaf's global bits.
const localRefinement = 2

// localCluster derives the record-cluster ID of a signature inside its leaf
// partition: the local iSAX leaf, identified by the word at the leaf's bits
// plus the local refinement. The word key hashes to a 63-bit cluster ID.
func localCluster(leaf *node, sig []float64, cfg Config) storage.ClusterID {
	bits := make([]uint8, len(leaf.bits))
	for i, b := range leaf.bits {
		nb := int(b) + localRefinement
		if nb > cfg.MaxBits {
			nb = cfg.MaxBits
		}
		bits[i] = uint8(nb)
	}
	w := sax.NewWordFromPAA(sig, bits)
	h := fnv.New64a()
	h.Write([]byte(w.Key()))
	return storage.ClusterID(h.Sum64() >> 1) // keep positive
}

// QueryStats reports the per-query effort.
type QueryStats struct {
	PartitionsScanned int
	RecordsScanned    int
	BytesLoaded       int64
}

// SearchResult is the approximate answer with statistics; distances are
// plain Euclidean, ascending.
type SearchResult struct {
	Results []series.Result
	Stats   QueryStats
}

// Search answers an approximate kNN query the DPiSAX way: the query routes
// to exactly one leaf partition, and within it the local iSAX index's leaf
// whose word matches the query is scanned with the true Euclidean distance.
// If the local leaf holds fewer than k records, the remainder of the
// partition fills the answer set (DPiSAX never crosses into a second
// partition).
func (ix *Index) Search(q []float64, k int) (*SearchResult, error) {
	if k <= 0 {
		return nil, fmt.Errorf("dpisax: k must be positive, got %d", k)
	}
	if len(q) != ix.SeriesLen {
		return nil, fmt.Errorf("dpisax: query length %d, index expects %d", len(q), ix.SeriesLen)
	}
	sig := ix.tr.Transform(q)
	leaf := ix.route(sig)
	localLeaf := localCluster(leaf, sig, ix.Cfg)
	p, err := ix.Cl.OpenPartition(ix.Parts, leaf.partition)
	if err != nil {
		return nil, err
	}
	defer p.Close()

	var stats QueryStats
	stats.PartitionsScanned = 1
	stats.BytesLoaded = int64(p.Count() * storage.RecordBytes(p.SeriesLen()))
	scanInto := func(top *series.TopK) func(id int, values []float64) error {
		return func(id int, values []float64) error {
			if bound, ok := top.Bound(); ok {
				d := series.SqDistEarlyAbandon(q, values, bound)
				if d < bound {
					top.Push(id, d)
				}
			} else {
				top.Push(id, series.SqDist(q, values))
			}
			stats.RecordsScanned++
			return nil
		}
	}
	top := series.NewTopK(k)
	if err := p.ScanCluster(localLeaf, scanInto(top)); err != nil {
		return nil, err
	}
	res := top.Results()
	if len(res) < k {
		// Pad the answer set by visiting further local leaves only until k
		// candidates have been gathered, then stop — the local index walks
		// a handful of extra leaves, it does not rank the whole partition.
		// The padding never displaces the local leaf's answers. This
		// bounded, mostly-off-target padding is what caps DPiSAX's recall
		// in the paper's evaluation.
		need := k - len(res)
		fill := series.NewTopK(need)
		gathered := 0
		for _, ci := range p.Clusters() {
			if gathered >= need {
				break
			}
			if ci.ID == localLeaf {
				continue
			}
			if err := p.ScanCluster(ci.ID, scanInto(fill)); err != nil {
				return nil, err
			}
			gathered += ci.Count
		}
		res = append(res, fill.Results()...)
	}
	for i := range res {
		res[i].Dist = math.Sqrt(res[i].Dist)
	}
	return &SearchResult{Results: res, Stats: stats}, nil
}

// TreeSize approximates the serialised size in bytes of the partitioning
// tree — DPiSAX's global index (Figure 8 comparison).
func (ix *Index) TreeSize() int {
	size := 0
	var walk func(*node)
	walk = func(n *node) {
		// word symbols+bits, split segment, partition id, count.
		size += len(n.bits)*3 + 4 + 4 + 8
		if n.splitSeg != -1 {
			walk(n.children[0])
			walk(n.children[1])
		}
	}
	walk(ix.root)
	return size
}

// Depth returns the maximum leaf depth, a tree-shape diagnostic.
func (ix *Index) Depth() int {
	var walk func(*node) int
	walk = func(n *node) int {
		if n.splitSeg == -1 {
			return 0
		}
		d0, d1 := walk(n.children[0]), walk(n.children[1])
		if d1 > d0 {
			d0 = d1
		}
		return d0 + 1
	}
	return walk(ix.root)
}
