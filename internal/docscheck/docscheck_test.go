// Package docscheck keeps the repository's documentation gates inside
// `go test ./...` by delegating to the climber-vet implementations in
// internal/analysis/docs: the doccomment analyzer (every exported
// identifier of the documented packages carries a doc comment) and the
// markdown link gate. The bespoke runner that used to live here was folded
// into the climber-vet multichecker; these tests keep the gates failing a
// plain test run even when CI's lint job is skipped.
package docscheck

import (
	"strings"
	"testing"

	"climber/internal/analysis/docs"
	"climber/internal/analysis/vet"
)

// moduleDir is the repository root relative to this package.
const moduleDir = "../.."

// TestExportedDocComments fails on any exported top-level identifier —
// type, function, method, or var/const group member — without a doc
// comment in the packages docs.DocumentedPackages lists.
func TestExportedDocComments(t *testing.T) {
	pkgs, err := vet.Load(moduleDir, patterns(docs.DocumentedPackages))
	if err != nil {
		t.Fatalf("loading documented packages: %v", err)
	}
	diags, err := vet.RunAnalyzers(pkgs, []*vet.Analyzer{docs.Analyzer})
	if err != nil {
		t.Fatalf("running doccomment: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// patterns maps the documented-package registry onto go list patterns:
// an exact import path stays itself, a "/..." entry is already one.
func patterns(reg []string) []string {
	out := make([]string, 0, len(reg))
	for _, p := range reg {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

// TestMarkdownLinks checks every relative link in the repository's
// markdown files points at a file or directory that exists. External
// (http/https/mailto) links and pure anchors are skipped — the gate is
// offline by design.
func TestMarkdownLinks(t *testing.T) {
	findings, err := docs.CheckMarkdownLinks(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
