// Package docscheck holds the repository's documentation gates, run by the
// CI docs job: every exported identifier of the serving-stack packages must
// carry a doc comment (the offline equivalent of revive's exported rule),
// and every relative link in the repository's markdown must resolve.
package docscheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// documentedPackages are the directories (relative to the repository root)
// held to the exported-doc-comment rule. internal/shard is the package the
// rule was introduced for; the others were brought up to it in the same
// change.
var documentedPackages = []string{
	"internal/shard",
	"internal/api",
	"internal/ingest",
	"internal/pcache",
	"internal/server",
	"internal/core",
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestExportedDocComments fails on any exported top-level identifier —
// type, function, method, or var/const group member — that has no doc
// comment in the packages listed above.
func TestExportedDocComments(t *testing.T) {
	root := repoRoot(t)
	for _, rel := range documentedPackages {
		dir := filepath.Join(root, rel)
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", rel, err)
		}
		for _, pkg := range pkgs {
			hasPkgDoc := false
			for path, file := range pkg.Files {
				if file.Doc != nil {
					hasPkgDoc = true
				}
				checkFile(t, fset, rel, path, file)
			}
			if !hasPkgDoc {
				t.Errorf("%s: package %s has no package-level doc comment", rel, pkg.Name)
			}
		}
	}
}

func checkFile(t *testing.T, fset *token.FileSet, rel, path string, file *ast.File) {
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		t.Errorf("%s: %s:%d: exported %s has no doc comment", rel, filepath.Base(p.Filename), p.Line, what)
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			name := d.Name.Name
			if d.Recv != nil {
				name = recvName(d.Recv) + "." + name
				if !ast.IsExported(strings.TrimPrefix(recvName(d.Recv), "*")) {
					continue // method on an unexported type
				}
			}
			report(d.Pos(), fmt.Sprintf("func %s", name))
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Pos(), fmt.Sprintf("type %s", s.Name.Name))
					}
				case *ast.ValueSpec:
					// A group doc (// Query algorithm variants ...) covers
					// its members; otherwise each exported name needs one.
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), fmt.Sprintf("%s %s", d.Tok, n.Name))
						}
					}
				}
			}
		}
	}
}

func recvName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	switch e := recv.List[0].Type.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return "*" + id.Name
		}
	}
	return ""
}

// mdLink matches markdown inline links and images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// TestMarkdownLinks checks every relative link in the repository's
// markdown files points at a file or directory that exists. External
// (http/https/mailto) links and pure anchors are skipped — the gate is
// offline by design.
func TestMarkdownLinks(t *testing.T) {
	root := repoRoot(t)
	var mdFiles []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == ".claude" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found — wrong repository root?")
	}
	for _, md := range mdFiles {
		raw, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue
			}
			target = strings.Split(target, "#")[0] // strip anchors
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				relMd, _ := filepath.Rel(root, md)
				t.Errorf("%s: broken relative link %q", relMd, m[1])
			}
		}
	}
}
