package cluster

import (
	"math/rand/v2"
	"sync"
	"testing"

	"climber/internal/dataset"
	"climber/internal/series"
	"climber/internal/storage"
)

func testCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(Config{NumNodes: 2, WorkersPerNode: 2, BaseDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{NumNodes: 0, WorkersPerNode: 1, BaseDir: "x"},
		{NumNodes: 1, WorkersPerNode: 0, BaseDir: "x"},
		{NumNodes: 1, WorkersPerNode: 1, BaseDir: ""},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestIngestAndScanBlocks(t *testing.T) {
	c := testCluster(t)
	ds := dataset.RandomWalk(32, 100, 7)
	bs, err := c.IngestBlocks(ds, 30, "rw")
	if err != nil {
		t.Fatal(err)
	}
	if len(bs.Paths) != 4 { // ceil(100/30)
		t.Fatalf("got %d blocks, want 4", len(bs.Paths))
	}
	if bs.Total != 100 {
		t.Fatalf("Total = %d, want 100", bs.Total)
	}

	var mu sync.Mutex
	seen := make(map[int]int)
	err = c.ScanBlocks(bs.Paths, func(id int, values []float64) error {
		mu.Lock()
		seen[id]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 100 {
		t.Fatalf("scanned %d distinct records, want 100", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("record %d scanned %d times", id, n)
		}
	}
	if got := c.Stats.BlocksRead.Load(); got != 4 {
		t.Fatalf("BlocksRead = %d, want 4", got)
	}
}

func TestScanBlocksValuesMatchDataset(t *testing.T) {
	c := testCluster(t)
	ds := dataset.RandomWalk(16, 20, 3)
	bs, err := c.IngestBlocks(ds, 7, "rw")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	err = c.ScanBlocks(bs.Paths, func(id int, values []float64) error {
		mu.Lock()
		defer mu.Unlock()
		want := ds.Get(id)
		for j := range values {
			if float32(want[j]) != float32(values[j]) {
				t.Errorf("record %d value %d = %g, want %g", id, j, values[j], want[j])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSampleBlocks(t *testing.T) {
	c := testCluster(t)
	ds := dataset.RandomWalk(16, 200, 9)
	bs, err := c.IngestBlocks(ds, 10, "rw") // 20 blocks
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 5))
	sample := c.SampleBlocks(bs, 0.25, rng)
	if len(sample) != 5 {
		t.Fatalf("sampled %d blocks, want 5", len(sample))
	}
	// Distinct paths.
	seen := map[string]bool{}
	for _, p := range sample {
		if seen[p] {
			t.Fatalf("block %s sampled twice", p)
		}
		seen[p] = true
	}
	// A tiny rate still samples at least one block.
	if got := c.SampleBlocks(bs, 0.0001, rng); len(got) != 1 {
		t.Fatalf("minimum sample = %d blocks, want 1", len(got))
	}
	// Rate 1 returns everything.
	if got := c.SampleBlocks(bs, 1.0, rng); len(got) != 20 {
		t.Fatalf("full sample = %d blocks, want 20", len(got))
	}
}

func TestShuffle(t *testing.T) {
	c := testCluster(t)
	ds := dataset.RandomWalk(16, 90, 2)
	bs, err := c.IngestBlocks(ds, 25, "rw")
	if err != nil {
		t.Fatal(err)
	}
	// Route by id modulo 3 partitions, cluster = id modulo 2.
	ps, err := c.Shuffle(bs, 3, "rw", func(id int, values []float64) (Route, error) {
		return Route{Partition: id % 3, Cluster: storage.ClusterID(id % 2)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Paths) != 3 {
		t.Fatalf("got %d partitions, want 3", len(ps.Paths))
	}
	total := 0
	for pid, cnt := range ps.Counts {
		if cnt != 30 {
			t.Fatalf("partition %d holds %d records, want 30", pid, cnt)
		}
		total += cnt
	}
	if total != 90 {
		t.Fatalf("shuffle moved %d records, want 90", total)
	}
	if got := c.Stats.RecordsShuffled.Load(); got != 90 {
		t.Fatalf("RecordsShuffled = %d, want 90", got)
	}

	// Verify partition contents: every record in the right partition and
	// cluster.
	for pid := range ps.Paths {
		p, err := c.OpenPartition(ps, pid)
		if err != nil {
			t.Fatal(err)
		}
		err = p.ScanAll(func(id int, values []float64) error {
			if id%3 != pid {
				t.Errorf("record %d landed in partition %d", id, pid)
			}
			return nil
		})
		p.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats.PartitionsLoaded.Load(); got != 3 {
		t.Fatalf("PartitionsLoaded = %d, want 3", got)
	}
}

func TestShuffleRejectsBadPartition(t *testing.T) {
	c := testCluster(t)
	ds := dataset.RandomWalk(16, 10, 2)
	bs, err := c.IngestBlocks(ds, 5, "rw")
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Shuffle(bs, 2, "rw", func(id int, values []float64) (Route, error) {
		return Route{Partition: 7}, nil
	})
	if err == nil {
		t.Fatal("out-of-range partition route accepted")
	}
}

func TestIngestBlocksValidation(t *testing.T) {
	c := testCluster(t)
	ds := series.NewDataset(4)
	if _, err := c.IngestBlocks(ds, 0, "x"); err == nil {
		t.Fatal("zero block size accepted")
	}
}

func TestBroadcastAccounting(t *testing.T) {
	c := testCluster(t)
	c.Broadcast(1000)
	if got := c.Stats.BroadcastBytes.Load(); got != 2000 { // 2 nodes
		t.Fatalf("BroadcastBytes = %d, want 2000", got)
	}
}

func TestWorkers(t *testing.T) {
	c := testCluster(t)
	if c.Workers() != 4 {
		t.Fatalf("Workers = %d, want 4", c.Workers())
	}
	if c.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", c.NumNodes())
	}
}
