package cluster

import (
	"errors"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"climber/internal/dataset"
	"climber/internal/series"
	"climber/internal/storage"
)

func testCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(Config{NumNodes: 2, WorkersPerNode: 2, BaseDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{NumNodes: 0, WorkersPerNode: 1, BaseDir: "x"},
		{NumNodes: 1, WorkersPerNode: 0, BaseDir: "x"},
		{NumNodes: 1, WorkersPerNode: 1, BaseDir: ""},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestIngestAndScanBlocks(t *testing.T) {
	c := testCluster(t)
	ds := dataset.RandomWalk(32, 100, 7)
	bs, err := c.IngestBlocks(ds, 30, "rw")
	if err != nil {
		t.Fatal(err)
	}
	if len(bs.Paths) != 4 { // ceil(100/30)
		t.Fatalf("got %d blocks, want 4", len(bs.Paths))
	}
	if bs.Total != 100 {
		t.Fatalf("Total = %d, want 100", bs.Total)
	}

	var mu sync.Mutex
	seen := make(map[int]int)
	err = c.ScanBlocks(bs.Paths, func(id int, values []float64) error {
		mu.Lock()
		seen[id]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 100 {
		t.Fatalf("scanned %d distinct records, want 100", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("record %d scanned %d times", id, n)
		}
	}
	if got := c.Stats.BlocksRead.Load(); got != 4 {
		t.Fatalf("BlocksRead = %d, want 4", got)
	}
}

func TestScanBlocksValuesMatchDataset(t *testing.T) {
	c := testCluster(t)
	ds := dataset.RandomWalk(16, 20, 3)
	bs, err := c.IngestBlocks(ds, 7, "rw")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	err = c.ScanBlocks(bs.Paths, func(id int, values []float64) error {
		mu.Lock()
		defer mu.Unlock()
		want := ds.Get(id)
		for j := range values {
			if float32(want[j]) != float32(values[j]) {
				t.Errorf("record %d value %d = %g, want %g", id, j, values[j], want[j])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSampleBlocks(t *testing.T) {
	c := testCluster(t)
	ds := dataset.RandomWalk(16, 200, 9)
	bs, err := c.IngestBlocks(ds, 10, "rw") // 20 blocks
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 5))
	sample := c.SampleBlocks(bs, 0.25, rng)
	if len(sample) != 5 {
		t.Fatalf("sampled %d blocks, want 5", len(sample))
	}
	// Distinct paths.
	seen := map[string]bool{}
	for _, p := range sample {
		if seen[p] {
			t.Fatalf("block %s sampled twice", p)
		}
		seen[p] = true
	}
	// A tiny rate still samples at least one block.
	if got := c.SampleBlocks(bs, 0.0001, rng); len(got) != 1 {
		t.Fatalf("minimum sample = %d blocks, want 1", len(got))
	}
	// Rate 1 returns everything.
	if got := c.SampleBlocks(bs, 1.0, rng); len(got) != 20 {
		t.Fatalf("full sample = %d blocks, want 20", len(got))
	}
}

func TestShuffle(t *testing.T) {
	c := testCluster(t)
	ds := dataset.RandomWalk(16, 90, 2)
	bs, err := c.IngestBlocks(ds, 25, "rw")
	if err != nil {
		t.Fatal(err)
	}
	// Route by id modulo 3 partitions, cluster = id modulo 2.
	ps, err := c.Shuffle(bs, 3, "rw", func(id int, values []float64) (Route, error) {
		return Route{Partition: id % 3, Cluster: storage.ClusterID(id % 2)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Paths) != 3 {
		t.Fatalf("got %d partitions, want 3", len(ps.Paths))
	}
	total := 0
	for pid, cnt := range ps.Counts {
		if cnt != 30 {
			t.Fatalf("partition %d holds %d records, want 30", pid, cnt)
		}
		total += cnt
	}
	if total != 90 {
		t.Fatalf("shuffle moved %d records, want 90", total)
	}
	if got := c.Stats.RecordsShuffled.Load(); got != 90 {
		t.Fatalf("RecordsShuffled = %d, want 90", got)
	}

	// Verify partition contents: every record in the right partition and
	// cluster.
	for pid := range ps.Paths {
		p, err := c.OpenPartition(ps, pid)
		if err != nil {
			t.Fatal(err)
		}
		err = p.ScanAll(func(id int, values []float64) error {
			if id%3 != pid {
				t.Errorf("record %d landed in partition %d", id, pid)
			}
			return nil
		})
		p.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats.PartitionsLoaded.Load(); got != 3 {
		t.Fatalf("PartitionsLoaded = %d, want 3", got)
	}
}

// breakFlushTarget arranges for partition flushes into dir to fail: the node
// directory is made read-only. Root bypasses permission bits, so when a probe
// write still succeeds the helper falls back to squatting a directory on the
// partition path itself, which makes the writer's os.Create fail regardless
// of privilege.
func breakFlushTarget(t *testing.T, dir, partPath string) {
	t.Helper()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(dir, 0o755) })
	probe := filepath.Join(dir, ".probe")
	if f, err := os.Create(probe); err == nil {
		f.Close()
		os.Remove(probe)
		if err := os.Mkdir(partPath, 0o755); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { os.Remove(partPath) })
	}
}

// A shuffle whose flush fails half-way must not leave the partitions that
// flushed successfully behind — callers retry the whole shuffle, and stale
// part-files would either collide with the retry or leak disk forever.
func TestShuffleCleansUpOnFlushFailure(t *testing.T) {
	c := testCluster(t) // 2 nodes: partitions 0, 2 -> node0; partition 1 -> node1
	ds := dataset.RandomWalk(16, 90, 2)
	bs, err := c.IngestBlocks(ds, 25, "rw")
	if err != nil {
		t.Fatal(err)
	}
	breakFlushTarget(t, c.NodeDir(1), filepath.Join(c.NodeDir(1), "shuf-part00001.clmp"))

	_, err = c.Shuffle(bs, 3, "shuf", func(id int, values []float64) (Route, error) {
		return Route{Partition: id % 3, Cluster: storage.ClusterID(id % 2)}, nil
	})
	if err == nil {
		t.Fatal("shuffle into an unwritable node dir succeeded")
	}
	for node := 0; node < c.NumNodes(); node++ {
		matches, globErr := filepath.Glob(filepath.Join(c.NodeDir(node), "shuf-part*.clmp"))
		if globErr != nil {
			t.Fatal(globErr)
		}
		if len(matches) != 0 {
			t.Fatalf("failed shuffle leaked partition files on node %d: %v", node, matches)
		}
	}
}

// The first scan error must stop the other workers promptly: without the
// stop flag every remaining block is scanned to completion, so the count of
// records visited after the failure would approach the dataset size.
func TestScanBlocksStopsOnFirstError(t *testing.T) {
	c := testCluster(t) // 4 workers
	ds := dataset.RandomWalk(8, 200, 4)
	bs, err := c.IngestBlocks(ds, 10, "rw") // 20 blocks
	if err != nil {
		t.Fatal(err)
	}

	errBoom := errors.New("boom")
	var after atomic.Int64
	var failed atomic.Bool
	err = c.ScanBlocks(bs.Paths, func(id int, values []float64) error {
		if failed.Load() {
			after.Add(1)
			return nil
		}
		if id == 0 { // first record of the first block: fail immediately
			failed.Store(true)
			return errBoom
		}
		// Slow the healthy workers down so the stop flag demonstrably wins
		// the race against them finishing their blocks.
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("ScanBlocks error = %v, want %v", err, errBoom)
	}
	// In-flight records on the other workers are allowed through; scanning
	// a large share of the remaining ~199 records means nobody stopped.
	if n := after.Load(); n > 50 {
		t.Fatalf("%d records scanned after the failure; workers did not stop", n)
	}
}

func TestShuffleRejectsBadPartition(t *testing.T) {
	c := testCluster(t)
	ds := dataset.RandomWalk(16, 10, 2)
	bs, err := c.IngestBlocks(ds, 5, "rw")
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Shuffle(bs, 2, "rw", func(id int, values []float64) (Route, error) {
		return Route{Partition: 7}, nil
	})
	if err == nil {
		t.Fatal("out-of-range partition route accepted")
	}
}

func TestIngestBlocksValidation(t *testing.T) {
	c := testCluster(t)
	ds := series.NewDataset(4)
	if _, err := c.IngestBlocks(ds, 0, "x"); err == nil {
		t.Fatal("zero block size accepted")
	}
}

func TestBroadcastAccounting(t *testing.T) {
	c := testCluster(t)
	c.Broadcast(1000)
	if got := c.Stats.BroadcastBytes.Load(); got != 2000 { // 2 nodes
		t.Fatalf("BroadcastBytes = %d, want 2000", got)
	}
}

func TestWorkers(t *testing.T) {
	c := testCluster(t)
	if c.Workers() != 4 {
		t.Fatalf("Workers = %d, want 4", c.Workers())
	}
	if c.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", c.NumNodes())
	}
}
