// Package cluster simulates the distributed execution environment CLIMBER's
// prototype runs on (paper Section VII-A: Apache Spark over a 2-node HDFS
// cluster). It provides exactly the primitives the index-construction and
// query algorithms assume:
//
//   - block-structured storage of the raw dataset across node directories,
//     with a capacity-bounded block size (the HDFS 64/128 MB blocks);
//   - partition-level sampling — selecting whole random blocks so that
//     skeleton construction avoids a full scan (paper Section V);
//   - parallel scans executed by a pool of workers (one pool per "node");
//   - a shuffle/re-distribution operation that routes every record to a
//     target (partition, cluster) and writes the final partition files
//     (paper Figure 6, Step 4);
//   - broadcast bookkeeping for the index skeleton and pivot set.
//
// The substitution preserves behaviour because CLIMBER's algorithms only
// interact with the environment through these operations; the statistics
// the simulator records (bytes moved, records shuffled) drive the
// construction-cost experiments.
package cluster

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"climber/internal/pcache"
	"climber/internal/series"
	"climber/internal/storage"
)

// Config sizes the simulated cluster.
type Config struct {
	// NumNodes is the number of simulated storage/compute nodes.
	NumNodes int
	// WorkersPerNode is the number of concurrent workers per node; total
	// parallelism is NumNodes * WorkersPerNode.
	WorkersPerNode int
	// BaseDir is the root directory holding per-node storage directories.
	BaseDir string
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumNodes <= 0 {
		return fmt.Errorf("cluster: NumNodes must be positive, got %d", c.NumNodes)
	}
	if c.WorkersPerNode <= 0 {
		return fmt.Errorf("cluster: WorkersPerNode must be positive, got %d", c.WorkersPerNode)
	}
	if c.BaseDir == "" {
		return fmt.Errorf("cluster: BaseDir is required")
	}
	return nil
}

// Stats aggregates the I/O and shuffle accounting of a cluster. All fields
// are updated atomically and safe to read concurrently.
type Stats struct {
	BlocksWritten    atomic.Int64
	BlocksRead       atomic.Int64
	RecordsShuffled  atomic.Int64
	BytesWritten     atomic.Int64
	BytesRead        atomic.Int64
	BroadcastBytes   atomic.Int64
	PartitionsLoaded atomic.Int64

	// Partition-cache accounting (all zero while the cache is disabled).
	// PartitionsLoaded counts only real disk loads, so the hit counters
	// here explain the gap between partition opens and partition loads.
	PartitionCacheHits       atomic.Int64
	PartitionCacheMisses     atomic.Int64
	PartitionCacheEvictions  atomic.Int64
	PartitionCacheBytesSaved atomic.Int64
}

// Cluster is a simulated multi-node environment. It is safe for concurrent
// use.
type Cluster struct {
	cfg      Config
	nodeDirs []string
	Stats    Stats

	// pcache, when set, serves OpenPartition from shared in-memory
	// partitions instead of per-query file opens.
	pcache atomic.Pointer[pcache.Cache]

	// mmap, when set, makes cached partition loads memory-map the file
	// instead of copying it onto the heap (falling back to the copy when
	// the platform or filesystem cannot map).
	mmap atomic.Bool
}

// New creates the cluster and its per-node directories.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg}
	for i := 0; i < cfg.NumNodes; i++ {
		dir := filepath.Join(cfg.BaseDir, fmt.Sprintf("node%02d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cluster: create node dir: %w", err)
		}
		c.nodeDirs = append(c.nodeDirs, dir)
	}
	return c, nil
}

// EnablePartitionCache installs a shared partition cache of at most budget
// bytes under OpenPartition; budget <= 0 disables caching again. Queries
// already holding partition handles are unaffected either way. With the
// cache enabled, OpenPartition hands out shared in-memory partitions:
// Stats.PartitionsLoaded and Stats.BytesRead then charge only real disk
// loads, while hits/misses/evictions/bytes-saved are tracked in the
// PartitionCache* counters.
func (c *Cluster) EnablePartitionCache(budget int64) {
	if budget <= 0 {
		c.pcache.Store(nil)
		return
	}
	c.pcache.Store(pcache.New(budget, pcache.Counters{
		Hits:       &c.Stats.PartitionCacheHits,
		Misses:     &c.Stats.PartitionCacheMisses,
		Evictions:  &c.Stats.PartitionCacheEvictions,
		BytesSaved: &c.Stats.PartitionCacheBytesSaved,
	}))
}

// PartitionCache returns the installed cache, or nil when caching is off.
func (c *Cluster) PartitionCache() *pcache.Cache { return c.pcache.Load() }

// EnableMmap switches cached partition loads between memory mapping (the
// zero-copy read path) and heap copies. It affects future loads only;
// already-resident partitions keep their current backing until evicted or
// invalidated.
func (c *Cluster) EnableMmap(on bool) { c.mmap.Store(on) }

// MmapEnabled reports whether cached partition loads memory-map.
func (c *Cluster) MmapEnabled() bool { return c.mmap.Load() }

// CacheResidentBytes returns the partition cache's resident byte volume and
// the memory-mapped share of it; both are zero while the cache is disabled.
func (c *Cluster) CacheResidentBytes() (resident, mapped int64) {
	pc := c.pcache.Load()
	if pc == nil {
		return 0, 0
	}
	return pc.Bytes(), pc.MappedBytes()
}

// Close releases the cluster's resources: the partition cache (if enabled)
// is purged and uninstalled, dropping every resident partition. The cluster
// holds no other live resources — partition and block files are opened per
// operation — so Close is cheap, idempotent, and safe to call while
// stragglers finish (they fall back to uncached file opens). The on-disk
// layout is untouched and the cluster can keep serving afterwards, so
// callers that want "closed" semantics enforce them a level up (DB.Close).
func (c *Cluster) Close() error {
	if pc := c.pcache.Swap(nil); pc != nil {
		pc.Purge()
	}
	return nil
}

// InvalidatePartition drops a partition file's cache entry, if the cache is
// enabled and holds one. Writers that replace a partition file must call
// this so subsequent queries observe the new contents.
func (c *Cluster) InvalidatePartition(path string) {
	if pc := c.pcache.Load(); pc != nil {
		pc.Invalidate(path)
	}
}

// InvalidatePartitionPrefix drops every cached partition whose file path
// starts with prefix — the whole-directory form of InvalidatePartition,
// used when a retired index generation's files are deleted after its last
// reader drains.
func (c *Cluster) InvalidatePartitionPrefix(prefix string) {
	if pc := c.pcache.Load(); pc != nil {
		pc.InvalidatePrefix(prefix)
	}
}

// Workers returns the total worker parallelism.
func (c *Cluster) Workers() int { return c.cfg.NumNodes * c.cfg.WorkersPerNode }

// NodeDir returns the storage directory of node i.
func (c *Cluster) NodeDir(i int) string { return c.nodeDirs[i] }

// NumNodes returns the configured node count.
func (c *Cluster) NumNodes() int { return c.cfg.NumNodes }

// Broadcast records the dissemination of sideband state (pivots, index
// skeleton) to every node, mirroring the paper's Step 4 broadcast. The
// simulated cost is size bytes per receiving node.
func (c *Cluster) Broadcast(sizeBytes int) {
	c.Stats.BroadcastBytes.Add(int64(sizeBytes) * int64(c.cfg.NumNodes))
}

// BlockSet references the raw dataset stored as block files spread across
// the cluster's nodes.
type BlockSet struct {
	Paths     []string
	SeriesLen int
	Total     int // total records across all blocks
}

// IngestBlocks writes the dataset into block files of at most blockSize
// records, distributed round-robin across node directories — the layout the
// paper assumes for its partition-level sampling ("the original dataset in
// most applications gets stored across partitions without any special or
// custom organization").
func (c *Cluster) IngestBlocks(ds *series.Dataset, blockSize int, name string) (*BlockSet, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("cluster: block size must be positive, got %d", blockSize)
	}
	bs := &BlockSet{SeriesLen: ds.Length(), Total: ds.Len()}
	blockIdx := 0
	for lo := 0; lo < ds.Len(); lo += blockSize {
		hi := lo + blockSize
		if hi > ds.Len() {
			hi = ds.Len()
		}
		node := blockIdx % c.cfg.NumNodes
		//lint:ignore genswap build-time block files live in the generation-0 layout the cluster owns; reindex reads them only through the manifest
		path := filepath.Join(c.nodeDirs[node], fmt.Sprintf("%s-block%05d.clmb", name, blockIdx))
		bw, err := storage.NewBlockWriter(path, ds.Length())
		if err != nil {
			return nil, err
		}
		for id := lo; id < hi; id++ {
			if err := bw.Append(id, ds.Get(id)); err != nil {
				bw.Close()
				return nil, err
			}
		}
		if err := bw.Close(); err != nil {
			return nil, err
		}
		c.Stats.BlocksWritten.Add(1)
		c.Stats.BytesWritten.Add(int64((hi - lo) * storage.RecordBytes(ds.Length())))
		bs.Paths = append(bs.Paths, path)
		blockIdx++
	}
	return bs, nil
}

// SampleBlocks selects whole blocks uniformly at random so that roughly
// rate × Total records are covered, never fewer than one block. This is the
// paper's partition-level sampling (Section V): a subset of data partitions
// is read in full, avoiding a scatter-read of individual records.
func (c *Cluster) SampleBlocks(bs *BlockSet, rate float64, rng *rand.Rand) []string {
	if rate >= 1 {
		out := make([]string, len(bs.Paths))
		copy(out, bs.Paths)
		return out
	}
	n := int(float64(len(bs.Paths))*rate + 0.5)
	if n < 1 {
		n = 1
	}
	perm := rng.Perm(len(bs.Paths))
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = bs.Paths[perm[i]]
	}
	return out
}

// errScanAborted marks a worker that stopped because a peer already failed.
// It is internal to ScanBlocks and never escapes it.
var errScanAborted = errors.New("cluster: scan aborted after peer failure")

// ScanBlocks streams every record of the listed blocks through fn using the
// cluster's worker pool. fn is invoked concurrently from multiple workers
// and must be safe for that; the values slice is only valid during the
// call. The scan fails fast: the first error raises a stop flag, and every
// other worker abandons its current block at the next record instead of
// scanning the remaining dataset for an answer that will be thrown away.
// The error returned is the first one raised.
func (c *Cluster) ScanBlocks(paths []string, fn func(id int, values []float64) error) error {
	work := make(chan string, len(paths))
	for _, p := range paths {
		work <- p
	}
	close(work)

	var (
		stop     atomic.Bool
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	// scan wraps fn with the stop check so a peer's failure interrupts even
	// a worker deep inside a large block, not just between blocks.
	scan := func(id int, values []float64) error {
		if stop.Load() {
			return errScanAborted
		}
		return fn(id, values)
	}

	var wg sync.WaitGroup
	for w := 0; w < c.Workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for path := range work {
				if stop.Load() {
					return
				}
				info, err := storage.StatBlock(path)
				if err != nil {
					fail(err)
					return
				}
				if err := storage.ScanBlock(path, scan); err != nil {
					if err != errScanAborted {
						fail(err)
					}
					return
				}
				c.Stats.BlocksRead.Add(1)
				c.Stats.BytesRead.Add(int64(info.Count * storage.RecordBytes(info.SeriesLen)))
			}
		}()
	}
	wg.Wait()
	return firstErr
}
