package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"climber/internal/storage"
)

// Route is the destination of one record after re-distribution: a physical
// partition and the record cluster (trie node) within it.
type Route struct {
	Partition int
	Cluster   storage.ClusterID
}

// PartitionSet references the physical partition files produced by a
// shuffle, indexed by partition ID.
type PartitionSet struct {
	Paths     []string
	SeriesLen int
	Counts    []int // records per partition
}

// Shuffle re-distributes the entire dataset into physical partitions
// (paper Figure 6, Step 4): workers scan the raw blocks in parallel, route
// every record via the provided function (which encapsulates signature
// generation plus group/trie navigation), and the records are regrouped
// into per-partition, per-cluster files. Partition files land on nodes
// round-robin, mirroring HDFS placement.
//
// route is invoked concurrently and must be safe for that.
func (c *Cluster) Shuffle(bs *BlockSet, numPartitions int, name string,
	route func(id int, values []float64) (Route, error)) (*PartitionSet, error) {
	if numPartitions <= 0 {
		return nil, fmt.Errorf("cluster: shuffle needs at least one partition, got %d", numPartitions)
	}
	writers := make([]*storage.PartitionWriter, numPartitions)
	locks := make([]sync.Mutex, numPartitions)
	for i := range writers {
		writers[i] = storage.NewPartitionWriter(bs.SeriesLen)
	}

	err := c.ScanBlocks(bs.Paths, func(id int, values []float64) error {
		r, err := route(id, values)
		if err != nil {
			return err
		}
		if r.Partition < 0 || r.Partition >= numPartitions {
			return fmt.Errorf("cluster: record %d routed to invalid partition %d of %d", id, r.Partition, numPartitions)
		}
		locks[r.Partition].Lock()
		err = writers[r.Partition].Append(r.Cluster, id, values)
		locks[r.Partition].Unlock()
		if err != nil {
			return err
		}
		c.Stats.RecordsShuffled.Add(1)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Flush the partition writers concurrently, bounded by the cluster's
	// worker pool. Each writer sorts its clusters and records before
	// writing, so the bytes of every partition file are identical to a
	// sequential flush — only the wall-clock changes.
	ps := &PartitionSet{SeriesLen: bs.SeriesLen, Paths: make([]string, numPartitions), Counts: make([]int, numPartitions)}
	errs := make([]error, numPartitions)
	sem := make(chan struct{}, c.Workers())
	var wg sync.WaitGroup
	for i, w := range writers {
		node := i % c.cfg.NumNodes
		//lint:ignore genswap build-time shuffle writes the generation-0 partitions; later generations mint theirs via core.genPartitionPath
		path := filepath.Join(c.nodeDirs[node], fmt.Sprintf("%s-part%05d.clmp", name, i))
		ps.Paths[i] = path
		ps.Counts[i] = w.Count()
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, w *storage.PartitionWriter, path string) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := w.Flush(path); err != nil {
				errs[i] = err
				return
			}
			c.Stats.BytesWritten.Add(int64(w.Count() * storage.RecordBytes(bs.SeriesLen)))
		}(i, w, path)
	}
	wg.Wait()
	for _, e := range errs {
		if e == nil {
			continue
		}
		// A failed shuffle must not leave partial output behind: remove
		// every partition file this shuffle wrote, the successfully
		// flushed ones included (paths that never materialised are fine
		// to miss). The first error by partition order is returned, which
		// keeps the failure deterministic regardless of flush scheduling.
		for _, p := range ps.Paths {
			_ = os.Remove(p)
		}
		return nil, e
	}
	return ps, nil
}

// PartitionHandle is a reader's reference to one open partition. Without a
// partition cache it owns a file-backed partition and Close releases the
// file, exactly as before; with the cache enabled it holds one reference to
// a shared resident partition — Close returns that reference, and the
// partition normally stays resident for the next query. If the cache
// dropped the partition (eviction, invalidation) while this handle was
// scanning, the handle's reference is what kept the bytes — including a
// memory mapping — alive, and Close is where they are finally freed.
type PartitionHandle struct {
	*storage.Partition
	cached bool
	hit    bool
}

// Close releases the handle's partition reference. For cached handles the
// shared partition usually stays resident (the cache holds its own
// reference); uncached handles tear down their private partition.
func (h *PartitionHandle) Close() error {
	return h.Partition.Release()
}

// Cached reports whether the handle aliases the shared partition cache.
func (h *PartitionHandle) Cached() bool { return h.cached }

// CacheHit reports whether opening this handle was served without a disk
// load (false whenever the cache is disabled).
func (h *PartitionHandle) CacheHit() bool { return h.hit }

// OpenPartition opens one physical partition for reading and accounts for
// the load in the cluster statistics (the dominant query-time cost in the
// paper is "the number of partitions touched"). When a partition cache is
// enabled, the load is served from — and retained in — the shared cache:
// concurrent opens of the same partition trigger exactly one disk read, and
// only real disk loads are charged to PartitionsLoaded/BytesRead.
func (c *Cluster) OpenPartition(ps *PartitionSet, id int) (*PartitionHandle, error) {
	path := ps.Paths[id]
	pc := c.pcache.Load()
	if pc == nil {
		p, err := storage.OpenPartition(path)
		if err != nil {
			return nil, err
		}
		c.accountPartitionLoad(p)
		return &PartitionHandle{Partition: p}, nil
	}
	p, hit, err := pc.Get(path, func() (*storage.Partition, error) {
		p, err := c.loadResident(path)
		if err != nil {
			return nil, err
		}
		c.accountPartitionLoad(p)
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	return &PartitionHandle{Partition: p, cached: true, hit: hit}, nil
}

// loadResident brings one partition file into memory for the cache: a
// read-only memory mapping when mmap is enabled and the platform supports
// it, a heap copy otherwise. A mapping failure (filesystem without mmap
// support, exhausted vm.max_map_count, …) degrades to the heap copy rather
// than failing the query — the two are interchangeable behind the Partition
// API.
func (c *Cluster) loadResident(path string) (*storage.Partition, error) {
	if c.mmap.Load() && storage.MapSupported() {
		if p, err := storage.MapPartition(path); err == nil {
			return p, nil
		}
	}
	return storage.LoadPartition(path)
}

// accountPartitionLoad charges one partition load to the statistics, in the
// record-byte unit the paper's query-time model uses.
func (c *Cluster) accountPartitionLoad(p *storage.Partition) {
	c.Stats.PartitionsLoaded.Add(1)
	c.Stats.BytesRead.Add(int64(p.Count() * storage.RecordBytes(p.SeriesLen())))
}
