package cluster

import (
	"sync"
	"testing"

	"climber/internal/dataset"
	"climber/internal/storage"
)

// buildMappedPartitions shuffles a small dataset into partitions on a
// cluster with the cache and mmap enabled, so cached opens serve
// memory-mapped partitions.
func buildMappedPartitions(t *testing.T, n int) (*Cluster, *PartitionSet) {
	t.Helper()
	c := testCluster(t)
	c.EnablePartitionCache(1 << 30)
	c.EnableMmap(true)
	ds := dataset.RandomWalk(32, n, 11)
	bs, err := c.IngestBlocks(ds, n/3+1, "rw")
	if err != nil {
		t.Fatal(err)
	}
	ps, err := c.Shuffle(bs, 2, "rw", func(id int, values []float64) (Route, error) {
		return Route{Partition: id % 2, Cluster: storage.ClusterID(id % 3)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, ps
}

// clusterIDsOf lists every cluster ID in a partition, directory order.
func clusterIDsOf(p *storage.Partition) []storage.ClusterID {
	cis := p.Clusters()
	ids := make([]storage.ClusterID, len(cis))
	for i, ci := range cis {
		ids[i] = ci.ID
	}
	return ids
}

// TestRetireUnmapsOnlyAfterLastHandleDrains is the reindex-shaped unmap
// ordering check: when a generation is retired, the swap path invalidates
// every cached partition under the old generation's directory while queries
// pinned to that generation may still hold open handles. The invalidation
// must not unmap under those readers — the mapping may only go away when the
// last handle closes.
func TestRetireUnmapsOnlyAfterLastHandleDrains(t *testing.T) {
	if !storage.MapSupported() {
		t.Skip("mmap unsupported on this platform")
	}
	c, ps := buildMappedPartitions(t, 120)

	h, err := c.OpenPartition(ps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Mapped() {
		t.Fatal("cached open did not memory-map the partition")
	}

	// Second concurrent reader of the same mapping, as a second in-flight
	// query against the retiring generation would hold.
	h2, err := c.OpenPartition(ps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Partition != h.Partition {
		t.Fatal("cache returned distinct partitions for one path")
	}

	// Retire the generation: drop every cached partition under its root,
	// exactly what the reindex swap does before deleting the directory.
	c.InvalidatePartitionPrefix(c.cfg.BaseDir)
	if got, mapped := c.CacheResidentBytes(); got != 0 || mapped != 0 {
		t.Fatalf("cache still charges %d resident / %d mapped bytes after retire", got, mapped)
	}

	// Both readers must still be able to scan the full mapping.
	for _, rd := range []*PartitionHandle{h, h2} {
		seen := 0
		err := rd.ScanClustersRaw(clusterIDsOf(rd.Partition), func(id int, rec []byte) error {
			seen++
			_ = rec[len(rec)-1] // touch the far end of the mapped record
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if seen != rd.Count() {
			t.Fatalf("scanned %d of %d records after retire", seen, rd.Count())
		}
	}

	// First close: the other handle still pins the mapping.
	if err := h2.Close(); err != nil {
		t.Fatal(err)
	}
	if !h.InMemory() || !h.Mapped() {
		t.Fatal("mapping torn down while a handle was still open")
	}
	// Last close drains the partition: now it unmaps.
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if h.Partition.InMemory() {
		t.Fatal("partition still resident after the last handle closed")
	}
}

// TestRetireDuringConcurrentScans runs the same ordering under -race with
// scans in flight while the invalidation lands.
func TestRetireDuringConcurrentScans(t *testing.T) {
	if !storage.MapSupported() {
		t.Skip("mmap unsupported on this platform")
	}
	c, ps := buildMappedPartitions(t, 200)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			<-start
			for iter := 0; iter < 30; iter++ {
				h, err := c.OpenPartition(ps, pid%len(ps.Paths))
				if err != nil {
					errs <- err
					return
				}
				err = h.ScanClustersRaw(clusterIDsOf(h.Partition), func(id int, rec []byte) error {
					_ = rec[len(rec)-1]
					return nil
				})
				if cerr := h.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	close(start)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			for len(errs) > 0 {
				t.Error(<-errs)
			}
			return
		case err := <-errs:
			t.Fatal(err)
		default:
			c.InvalidatePartitionPrefix(c.cfg.BaseDir)
		}
	}
}
