package pivot

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

// mustSet builds a pivot set from 2-D points for geometric tests.
func mustSet(t *testing.T, prefix int, pts ...[]float64) *Set {
	t.Helper()
	s, err := NewSet(pts, prefix)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// A geometric layout mirroring the paper's Figure 4: pivots 1, 2, 4 placed so
// that X is closest to p1 then p4 then p2, while Y is closest to p4 then p1
// then p2 — so they share the rank-insensitive signature <1,2,4> but differ
// in the rank-sensitive one.
func TestDualSignatureFigure4(t *testing.T) {
	// Pivot IDs are positional: index 0 plays p1, 1 plays p2, 2 plays p4.
	p1 := []float64{0, 0}
	p2 := []float64{10, 0}
	p4 := []float64{4, 0}
	s := mustSet(t, 3, p1, p2, p4)

	x := []float64{1, 0} // dist: p1=1, p4=3, p2=9  -> <p1, p4, p2> = <0, 2, 1>
	y := []float64{3, 0} // dist: p4=1, p1=3, p2=7  -> <p4, p1, p2> = <2, 0, 1>

	rsX, riX := s.Dual(x)
	rsY, riY := s.Dual(y)

	if !rsX.Equal(Signature{0, 2, 1}) {
		t.Fatalf("P4->(X) = %v, want <0,2,1>", rsX)
	}
	if !rsY.Equal(Signature{2, 0, 1}) {
		t.Fatalf("P4->(Y) = %v, want <2,0,1>", rsY)
	}
	if !riX.Equal(riY) || !riX.Equal(Signature{0, 1, 2}) {
		t.Fatalf("rank-insensitive signatures differ: %v vs %v, want both <0,1,2>", riX, riY)
	}
}

func TestRankSensitiveOrdersByDistance(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 17))
	dim := 6
	pts := make([][]float64, 20)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		pts[i] = p
	}
	s, err := NewSet(pts, 5)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		sig := s.RankSensitive(x)
		if len(sig) != 5 {
			t.Fatalf("signature length %d, want 5", len(sig))
		}
		// The signature must match the first m entries of the full
		// permutation.
		perm := s.Permutation(x)
		for i := 0; i < 5; i++ {
			if sig[i] != perm[i] {
				t.Fatalf("signature %v disagrees with permutation prefix %v", sig, perm[:5])
			}
		}
	}
}

func TestPermutationIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 7))
	pts := make([][]float64, 12)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64()}
	}
	s, err := NewSet(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	perm := s.Permutation([]float64{0.5, 0.5})
	if len(perm) != 12 {
		t.Fatalf("permutation length %d, want 12", len(perm))
	}
	seen := make(map[int]bool)
	for _, id := range perm {
		if id < 0 || id >= 12 || seen[id] {
			t.Fatalf("invalid permutation %v", perm)
		}
		seen[id] = true
	}
}

// Property (Definition 6): the rank-insensitive signature is exactly the
// sorted rank-sensitive signature, for any query point.
func TestDualConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29))
	pts := make([][]float64, 30)
	for i := range pts {
		p := make([]float64, 4)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		pts[i] = p
	}
	s, err := NewSet(pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c, d float64) bool {
		rs, ri := s.Dual([]float64{a, b, c, d})
		sorted := rs.Clone()
		sort.Ints(sorted)
		return ri.Equal(sorted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	cands := make([][]float64, 50)
	for i := range cands {
		cands[i] = []float64{float64(i)}
	}
	s, err := SelectRandom(cands, 10, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.R() != 10 {
		t.Fatalf("R = %d, want 10", s.R())
	}
	// Pivots must be distinct candidates (selection without replacement).
	seen := make(map[float64]bool)
	for i := 0; i < 10; i++ {
		v := s.Pivot(i)[0]
		if seen[v] {
			t.Fatalf("pivot value %g selected twice", v)
		}
		seen[v] = true
	}
}

func TestSelectRandomErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	cands := [][]float64{{1}, {2}}
	if _, err := SelectRandom(cands, 3, 1, rng); err == nil {
		t.Error("selecting more pivots than candidates should fail")
	}
	if _, err := SelectRandom(cands, 0, 1, rng); err == nil {
		t.Error("selecting zero pivots should fail")
	}
}

func TestNewSetValidation(t *testing.T) {
	if _, err := NewSet(nil, 1); err == nil {
		t.Error("empty pivot set should fail")
	}
	if _, err := NewSet([][]float64{{}}, 1); err == nil {
		t.Error("zero-dimension pivots should fail")
	}
	if _, err := NewSet([][]float64{{1}, {2}}, 3); err == nil {
		t.Error("prefix longer than pivot count should fail")
	}
	if _, err := NewSet([][]float64{{1, 2}, {3}}, 1); err == nil {
		t.Error("ragged pivots should fail")
	}
}

func TestRankSensitiveWrongDimPanics(t *testing.T) {
	s := mustSet(t, 1, []float64{0, 0})
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-dimension query did not panic")
		}
	}()
	s.RankSensitive([]float64{1})
}

func TestDistanceTiesBreakByPivotID(t *testing.T) {
	// Two pivots equidistant from the query: the lower ID must rank first.
	s := mustSet(t, 2, []float64{1, 0}, []float64{-1, 0})
	sig := s.RankSensitive([]float64{0, 0})
	if !sig.Equal(Signature{0, 1}) {
		t.Fatalf("tie-broken signature = %v, want <0,1>", sig)
	}
}
