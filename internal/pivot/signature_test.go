package pivot

import (
	"testing"
	"testing/quick"
)

func TestSignatureRankInsensitive(t *testing.T) {
	rs := Signature{6, 4, 1, 7, 2, 5, 3}
	ri := rs.RankInsensitive()
	want := Signature{1, 2, 3, 4, 5, 6, 7}
	if !ri.Equal(want) {
		t.Fatalf("rank-insensitive = %v, want %v", ri, want)
	}
	// Receiver untouched.
	if !rs.Equal(Signature{6, 4, 1, 7, 2, 5, 3}) {
		t.Fatalf("RankInsensitive mutated receiver: %v", rs)
	}
}

func TestSignatureKeyRoundTrip(t *testing.T) {
	cases := []Signature{{}, {0}, {3, 1, 2}, {10, 200, 5}}
	for _, sig := range cases {
		got, err := ParseKey(sig.Key())
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", sig.Key(), err)
		}
		if !got.Equal(sig) {
			t.Fatalf("round trip %v -> %q -> %v", sig, sig.Key(), got)
		}
	}
}

func TestSignatureKeyRoundTripProperty(t *testing.T) {
	f := func(ids []uint16) bool {
		sig := make(Signature, len(ids))
		for i, v := range ids {
			sig[i] = int(v)
		}
		got, err := ParseKey(sig.Key())
		return err == nil && got.Equal(sig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseKeyRejectsGarbage(t *testing.T) {
	if _, err := ParseKey("1,x,3"); err == nil {
		t.Fatal("ParseKey accepted non-numeric token")
	}
}

func TestSignatureString(t *testing.T) {
	if got := (Signature{6, 4, 1}).String(); got != "<6,4,1>" {
		t.Fatalf("String = %q, want <6,4,1>", got)
	}
	if got := (Signature{}).String(); got != "<>" {
		t.Fatalf("empty String = %q, want <>", got)
	}
}

func TestSignatureContains(t *testing.T) {
	sig := Signature{4, 9, 2}
	if !sig.Contains(9) || sig.Contains(5) {
		t.Fatalf("Contains misbehaving on %v", sig)
	}
}

func TestSignatureEqual(t *testing.T) {
	a := Signature{1, 2}
	if a.Equal(Signature{1}) {
		t.Fatal("signatures of different lengths reported equal")
	}
	if a.Equal(Signature{2, 1}) {
		t.Fatal("order must matter for Equal")
	}
	if !a.Equal(Signature{1, 2}) {
		t.Fatal("identical signatures reported unequal")
	}
}

func TestSignatureClone(t *testing.T) {
	a := Signature{1, 2, 3}
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone shares backing storage with original")
	}
}
