package pivot

import (
	"fmt"
	"sort"
	"strings"
)

// Signature is a pivot-ID vector. Depending on context it is either a
// rank-sensitive P4→ signature (IDs ordered by proximity, closest first) or
// a rank-insensitive P4↛ signature (IDs sorted ascending). The two forms
// share a representation because the rank-insensitive form is defined as the
// lexicographic reordering of the rank-sensitive one (Definition 6).
type Signature []int

// RankInsensitive returns the rank-insensitive counterpart of a
// rank-sensitive signature: the same pivot IDs sorted ascending. The
// receiver is not modified.
func (sig Signature) RankInsensitive() Signature {
	out := make(Signature, len(sig))
	copy(out, sig)
	sort.Ints(out)
	return out
}

// Clone returns a copy of the signature.
func (sig Signature) Clone() Signature {
	out := make(Signature, len(sig))
	copy(out, sig)
	return out
}

// Equal reports whether two signatures hold the same IDs in the same order.
func (sig Signature) Equal(other Signature) bool {
	if len(sig) != len(other) {
		return false
	}
	for i, v := range sig {
		if v != other[i] {
			return false
		}
	}
	return true
}

// Contains reports whether the signature holds the pivot ID. It is a linear
// scan: signatures are short (prefix length m, default 10), so a linear scan
// beats building a set.
func (sig Signature) Contains(id int) bool {
	for _, v := range sig {
		if v == id {
			return true
		}
	}
	return false
}

// Key returns a compact string key for use as a map key when aggregating
// signatures by exact match during index construction (paper Figure 6,
// "grouping & aggregation").
func (sig Signature) Key() string {
	var b strings.Builder
	b.Grow(len(sig) * 4)
	for i, v := range sig {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// ParseKey reverses Key, reconstructing the signature from its string form.
func ParseKey(key string) (Signature, error) {
	if key == "" {
		return Signature{}, nil
	}
	parts := strings.Split(key, ",")
	sig := make(Signature, len(parts))
	for i, p := range parts {
		var v int
		if _, err := fmt.Sscanf(p, "%d", &v); err != nil {
			return nil, fmt.Errorf("pivot: bad signature key %q: %w", key, err)
		}
		sig[i] = v
	}
	return sig, nil
}

// String renders the signature in the paper's angle-bracket notation,
// e.g. "<6,4,1>".
func (sig Signature) String() string {
	return "<" + sig.Key() + ">"
}
