// Package pivot implements CLIMBER's pivot-permutation feature space
// (paper Sections IV-A and IV-B): pivot selection, pivot permutations, and
// the P4 dual signature of Definition 6 — a rank-sensitive Pivot Permutation
// Prefix (Definition 5) paired with its rank-insensitive (lexicographically
// ordered) counterpart.
//
// Pivots are points in the PAA space (w dimensions). Each data series, after
// PAA segmentation, is represented by the IDs of its m nearest pivots:
//
//	P4→(X)  = <id of 1st-closest pivot, 2nd-closest, ..., m-th-closest>
//	P4↛(X) = the same m IDs sorted ascending (ranking information dropped)
//
// The rank-insensitive signature induces coarse-grained Voronoi-style
// grouping; the rank-sensitive signature refines groups into partitions.
package pivot

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"climber/internal/series"
)

// Set is a fixed collection of pivots in PAA space together with the prefix
// length m. Once selected during index construction the pivots remain fixed
// for the lifetime of the system (paper Section V, Step 1). A Set is
// immutable and safe for concurrent use.
type Set struct {
	dim    int       // dimensionality of the pivot space (PAA segments w)
	prefix int       // prefix length m
	flat   []float64 // r × dim pivot coordinates
}

// NewSet builds a pivot set from r pivot vectors, each of dimension dim,
// with rank prefix length m <= r.
func NewSet(pivots [][]float64, prefixLen int) (*Set, error) {
	if len(pivots) == 0 {
		return nil, fmt.Errorf("pivot: at least one pivot is required")
	}
	dim := len(pivots[0])
	if dim == 0 {
		return nil, fmt.Errorf("pivot: pivots must have positive dimension")
	}
	if prefixLen <= 0 || prefixLen > len(pivots) {
		return nil, fmt.Errorf("pivot: prefix length %d must be in [1, %d]", prefixLen, len(pivots))
	}
	s := &Set{dim: dim, prefix: prefixLen, flat: make([]float64, 0, len(pivots)*dim)}
	for i, p := range pivots {
		if len(p) != dim {
			return nil, fmt.Errorf("pivot: pivot %d has dimension %d, want %d", i, len(p), dim)
		}
		s.flat = append(s.flat, p...)
	}
	return s, nil
}

// SelectRandom selects r pivots uniformly at random (without replacement)
// from the candidate PAA signatures, following the paper's finding that
// random selection is competitive with sophisticated selection schemes
// (Section V Step 1, citing [24], [29], [44], [45], [59]).
func SelectRandom(candidates [][]float64, r, prefixLen int, rng *rand.Rand) (*Set, error) {
	if r <= 0 {
		return nil, fmt.Errorf("pivot: pivot count must be positive, got %d", r)
	}
	if len(candidates) < r {
		return nil, fmt.Errorf("pivot: need at least %d candidates, have %d", r, len(candidates))
	}
	perm := rng.Perm(len(candidates))
	chosen := make([][]float64, r)
	for i := 0; i < r; i++ {
		chosen[i] = candidates[perm[i]]
	}
	return NewSet(chosen, prefixLen)
}

// R returns the number of pivots.
func (s *Set) R() int { return len(s.flat) / s.dim }

// Dim returns the dimensionality of the pivot space.
func (s *Set) Dim() int { return s.dim }

// PrefixLen returns the configured prefix length m.
func (s *Set) PrefixLen() int { return s.prefix }

// Pivot returns the coordinates of pivot id. The returned slice aliases
// internal storage and must not be modified.
func (s *Set) Pivot(id int) []float64 {
	off := id * s.dim
	return s.flat[off : off+s.dim : off+s.dim]
}

// Flat exposes the backing coordinate slice (R() × Dim() values) for
// serialisation by the storage layer.
func (s *Set) Flat() []float64 { return s.flat }

// Permutation computes the full pivot permutation of the PAA signature x:
// all pivot IDs sorted by ascending distance to x (paper Section IV-A).
// Ties are broken by ascending pivot ID for determinism.
func (s *Set) Permutation(x []float64) []int {
	r := s.R()
	dists := make([]float64, r)
	ids := make([]int, r)
	for i := 0; i < r; i++ {
		dists[i] = series.SqDist(x, s.Pivot(i))
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := dists[ids[a]], dists[ids[b]]
		if da != db {
			return da < db
		}
		return ids[a] < ids[b]
	})
	return ids
}

// RankSensitive computes the Pivot Permutation Prefix P4→(x) of Definition 5:
// the IDs of the m nearest pivots to x, ordered by ascending distance.
// It runs in O(r·dim + r·log m) using a bounded max-heap rather than sorting
// the full permutation.
func (s *Set) RankSensitive(x []float64) Signature {
	if len(x) != s.dim {
		panic(fmt.Sprintf("pivot: signature of %d-dim point in %d-dim pivot space", len(x), s.dim))
	}
	top := series.NewTopK(s.prefix)
	r := s.R()
	for i := 0; i < r; i++ {
		if bound, ok := top.Bound(); ok {
			d := series.SqDistEarlyAbandon(x, s.Pivot(i), bound)
			if d < bound {
				top.Push(i, d)
			}
			continue
		}
		top.Push(i, series.SqDist(x, s.Pivot(i)))
	}
	res := top.Results()
	sig := make(Signature, len(res))
	for i, rr := range res {
		sig[i] = rr.ID
	}
	return sig
}

// Dual computes both halves of the P4 dual signature of Definition 6 in one
// pass: the rank-sensitive prefix and its rank-insensitive lexicographic
// reordering.
func (s *Set) Dual(x []float64) (rankSensitive, rankInsensitive Signature) {
	rs := s.RankSensitive(x)
	return rs, rs.RankInsensitive()
}
