// Package tardis implements the TARDIS baseline (Zhang, Alghamdi, Eltabakh,
// Rundensteiner: "TARDIS: Distributed Indexing Framework for Big Time
// Series Data", ICDE 2019) — the stronger of the two iSAX-based distributed
// systems CLIMBER is compared against (paper Sections III-B and VII; best
// reported recall ~40%).
//
// TARDIS builds a *sigTree*: a wide n-ary tree over iSAX words in which a
// node split refines every segment by one bit simultaneously (word-level
// split), in contrast to DPiSAX's one-segment binary splits. Small sibling
// leaves are packed together into physical partitions, and each node is
// labelled with the partitions covering its subtree. Queries descend by
// their own iSAX word to the deepest existing node and scan that node's
// records, widening within the loaded partitions when fewer than K
// candidates are found.
package tardis

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"climber/internal/cluster"
	"climber/internal/paa"
	"climber/internal/packing"
	"climber/internal/sax"
	"climber/internal/series"
	"climber/internal/storage"
)

// Config parameterises a TARDIS build.
type Config struct {
	// Segments is the iSAX word length w. TARDIS favours small words
	// (paper Section III-B) to bound the sigTree's width.
	Segments int
	// MaxBits caps the per-segment cardinality at 2^MaxBits.
	MaxBits int
	// Capacity is the partition capacity in records.
	Capacity int
	// SampleRate is the fraction of blocks sampled for the global tree.
	SampleRate float64
	// Seed drives sampling.
	Seed uint64
}

// DefaultConfig mirrors the TARDIS paper's setup at record-count scale.
func DefaultConfig() Config {
	return Config{Segments: 8, MaxBits: 8, Capacity: 2000, SampleRate: 0.1, Seed: 42}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Segments <= 0 {
		return fmt.Errorf("tardis: Segments must be positive, got %d", c.Segments)
	}
	if c.MaxBits <= 0 || c.MaxBits > sax.MaxBits {
		return fmt.Errorf("tardis: MaxBits must be in [1, %d], got %d", sax.MaxBits, c.MaxBits)
	}
	if c.Capacity <= 0 {
		return fmt.Errorf("tardis: Capacity must be positive, got %d", c.Capacity)
	}
	if c.SampleRate <= 0 || c.SampleRate > 1 {
		return fmt.Errorf("tardis: SampleRate must be in (0, 1], got %g", c.SampleRate)
	}
	return nil
}

// node is one sigTree vertex. Children are keyed by the word at bits+1 per
// segment; the map key is the child word's canonical string.
type node struct {
	id         int // unique within the tree (record-cluster ID)
	bits       uint8
	word       sax.Word
	children   map[string]*node
	count      int // sample-scaled estimate
	partitions []int
}

func (n *node) isLeaf() bool { return len(n.children) == 0 }

// Index is a built TARDIS index.
type Index struct {
	Cfg           Config
	SeriesLen     int
	root          *node
	nodeCount     int
	tr            *paa.Transformer
	Cl            *cluster.Cluster
	Parts         *cluster.PartitionSet
	NumPartitions int
	defaultPart   int // receives records whose word path is missing
	Stats         BuildStats
}

// BuildStats times the construction phases.
type BuildStats struct {
	SampleRecords int
	Tree          time.Duration
	Redistribute  time.Duration
	Total         time.Duration
}

// Build samples the dataset, grows the sigTree, packs leaves into
// partitions, and re-distributes every record.
func Build(cl *cluster.Cluster, bs *cluster.BlockSet, cfg Config, name string) (*Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	tr, err := paa.NewTransformer(bs.SeriesLen, cfg.Segments)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewPCG(cfg.Seed, 0xbb67ae8584caa73b))
	samplePaths := cl.SampleBlocks(bs, cfg.SampleRate, rng)
	var mu sync.Mutex
	type rec struct {
		id  int
		sig []float64
	}
	var sample []rec
	err = cl.ScanBlocks(samplePaths, func(id int, values []float64) error {
		sig := tr.Transform(values)
		mu.Lock()
		sample = append(sample, rec{id, sig})
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("tardis: sampling: %w", err)
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i].id < sample[j].id })

	scale := float64(bs.Total) / math.Max(1, float64(len(sample)))
	sigs := make([][]float64, len(sample))
	for i, r := range sample {
		sigs[i] = r.sig
	}

	ix := &Index{Cfg: cfg, SeriesLen: bs.SeriesLen, tr: tr, Cl: cl}
	ix.root = &node{
		word:     sax.Word{Symbols: make([]uint16, cfg.Segments), Bits: make([]uint8, cfg.Segments)},
		children: nil,
	}
	ix.root.id = ix.nextNodeID()
	ix.grow(ix.root, sigs, scale)

	// Pack leaves into partitions in DFS word order, so each partition
	// covers a contiguous range of sigTree leaves (TARDIS packs small
	// sibling leaves together; spatial locality is what lets its
	// within-partition widening recover recall).
	leaves := ix.leaves()
	items := make([]packing.Item, len(leaves))
	byID := make(map[int]*node, len(leaves))
	for i, l := range leaves {
		items[i] = packing.Item{ID: l.id, Size: l.count}
		byID[l.id] = l
	}
	bins, err := packing.SequentialFill(items, cfg.Capacity)
	if err != nil {
		return nil, err
	}
	if len(bins) == 0 {
		bins = []packing.Bin{{}}
	}
	smallest, smallestSize := 0, math.MaxInt
	for b, bin := range bins {
		for _, leafID := range bin.Items {
			byID[leafID].partitions = []int{b}
		}
		if bin.Size < smallestSize {
			smallestSize = bin.Size
			smallest = b
		}
	}
	ix.NumPartitions = len(bins)
	ix.defaultPart = smallest
	propagate(ix.root)
	if ix.root.isLeaf() && len(ix.root.partitions) == 0 {
		ix.root.partitions = []int{smallest}
	}
	treeTime := time.Since(start)
	cl.Broadcast(ix.TreeSize())

	// Re-distribute the full dataset.
	redistStart := time.Now()
	parts, err := cl.Shuffle(bs, ix.NumPartitions, name, func(id int, values []float64) (cluster.Route, error) {
		n, complete := ix.descendPAA(tr.Transform(values))
		if complete && n.isLeaf() {
			return cluster.Route{Partition: n.partitions[0], Cluster: storage.ClusterID(n.id)}, nil
		}
		return cluster.Route{Partition: ix.defaultPart, Cluster: -1}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("tardis: re-distribution: %w", err)
	}
	ix.Parts = parts
	ix.Stats = BuildStats{
		SampleRecords: len(sample),
		Tree:          treeTime,
		Redistribute:  time.Since(redistStart),
		Total:         time.Since(start),
	}
	return ix, nil
}

func (ix *Index) nextNodeID() int {
	id := ix.nodeCount
	ix.nodeCount++
	return id
}

// grow splits a node word-level while it exceeds capacity: every child
// refines all segments by one bit, so the fanout is bounded by 2^w but in
// practice only words present in the sample materialise.
func (ix *Index) grow(n *node, sigs [][]float64, scale float64) {
	n.count = int(float64(len(sigs))*scale + 0.5)
	if n.count <= ix.Cfg.Capacity || int(n.bits) >= ix.Cfg.MaxBits || len(sigs) < 2 {
		return
	}
	groupsByKey := make(map[string][][]float64)
	words := make(map[string]sax.Word)
	for _, s := range sigs {
		w := sax.NewWordUniform(s, n.bits+1)
		k := w.Key()
		groupsByKey[k] = append(groupsByKey[k], s)
		if _, ok := words[k]; !ok {
			words[k] = w
		}
	}
	// Even when all sample members share the refined word (a single-child
	// chain), we refine: deeper bits may discriminate, and the MaxBits
	// bound above guarantees termination.
	keys := make([]string, 0, len(groupsByKey))
	for k := range groupsByKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	n.children = make(map[string]*node, len(keys))
	for _, k := range keys {
		child := &node{bits: n.bits + 1, word: words[k]}
		child.id = ix.nextNodeID()
		n.children[k] = child
		ix.grow(child, groupsByKey[k], scale)
	}
}

// descendPAA walks the sigTree as deep as the signature's words have
// matching children. complete reports whether the walk ended at a leaf.
func (ix *Index) descendPAA(sig []float64) (n *node, complete bool) {
	n = ix.root
	for !n.isLeaf() {
		w := sax.NewWordUniform(sig, n.bits+1)
		child, ok := n.children[w.Key()]
		if !ok {
			return n, false
		}
		n = child
	}
	return n, true
}

// leaves returns the leaf nodes in DFS order (children sorted by key).
func (ix *Index) leaves() []*node {
	var out []*node
	var walk func(*node)
	walk = func(n *node) {
		if n.isLeaf() {
			out = append(out, n)
			return
		}
		keys := make([]string, 0, len(n.children))
		for k := range n.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			walk(n.children[k])
		}
	}
	walk(ix.root)
	return out
}

// propagate labels internal nodes with the union of their children's
// partitions.
func propagate(n *node) []int {
	if n.isLeaf() {
		return n.partitions
	}
	set := map[int]struct{}{}
	for _, c := range n.children {
		for _, p := range propagate(c) {
			set[p] = struct{}{}
		}
	}
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	n.partitions = out
	return out
}

// QueryStats reports the per-query effort.
type QueryStats struct {
	PartitionsScanned int
	RecordsScanned    int
	BytesLoaded       int64
	PathLen           int
}

// SearchResult is the approximate answer with statistics.
type SearchResult struct {
	Results []series.Result
	Stats   QueryStats
}

// Search answers an approximate kNN query: descend to the deepest node
// matching the query's iSAX words, scan that subtree's record clusters in
// its partition(s), and widen to the rest of the loaded partition(s) if
// fewer than k candidates were found. TARDIS never expands beyond the
// single best-matching partition set (paper Section VII-B: iSAX-based
// systems "constraint their search to a single partition").
func (ix *Index) Search(q []float64, k int) (*SearchResult, error) {
	if k <= 0 {
		return nil, fmt.Errorf("tardis: k must be positive, got %d", k)
	}
	if len(q) != ix.SeriesLen {
		return nil, fmt.Errorf("tardis: query length %d, index expects %d", len(q), ix.SeriesLen)
	}
	sig := ix.tr.Transform(q)
	n, _ := ix.descendPAA(sig)

	// Clusters under n.
	clusterSet := make(map[storage.ClusterID]struct{})
	var collect func(*node)
	collect = func(nd *node) {
		if nd.isLeaf() {
			clusterSet[storage.ClusterID(nd.id)] = struct{}{}
			return
		}
		for _, c := range nd.children {
			collect(c)
		}
	}
	collect(n)
	if n == ix.root {
		clusterSet[-1] = struct{}{}
	}
	parts := n.partitions
	if len(parts) == 0 {
		parts = []int{ix.defaultPart}
	}

	top := series.NewTopK(k)
	stats := QueryStats{PathLen: int(n.bits)}
	scan := func(id int, values []float64) error {
		if bound, ok := top.Bound(); ok {
			d := series.SqDistEarlyAbandon(q, values, bound)
			if d < bound {
				top.Push(id, d)
			}
		} else {
			top.Push(id, series.SqDist(q, values))
		}
		stats.RecordsScanned++
		return nil
	}
	for _, pid := range parts {
		p, err := ix.Cl.OpenPartition(ix.Parts, pid)
		if err != nil {
			return nil, err
		}
		stats.PartitionsScanned++
		stats.BytesLoaded += int64(p.Count() * storage.RecordBytes(p.SeriesLen()))
		ids := make([]storage.ClusterID, 0, len(clusterSet))
		for c := range clusterSet {
			ids = append(ids, c)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		err = p.ScanClusters(ids, scan)
		if err == nil && top.Len() < k {
			// Widen within the already-loaded partition.
			for _, ci := range p.Clusters() {
				if _, done := clusterSet[ci.ID]; done {
					continue
				}
				if err = p.ScanCluster(ci.ID, scan); err != nil {
					break
				}
			}
		}
		p.Close()
		if err != nil {
			return nil, err
		}
	}
	res := top.Results()
	for i := range res {
		res[i].Dist = math.Sqrt(res[i].Dist)
	}
	return &SearchResult{Results: res, Stats: stats}, nil
}

// TreeSize approximates the serialised size in bytes of the sigTree —
// TARDIS's global index, the largest of the three systems in Figure 8
// because word-level splits create 2-3x more nodes.
func (ix *Index) TreeSize() int {
	size := 0
	var walk func(*node)
	walk = func(n *node) {
		size += len(n.word.Symbols)*3 + 8 + 4 + 4*len(n.partitions)
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(ix.root)
	return size
}

// NodeCount returns the total number of sigTree nodes.
func (ix *Index) NodeCount() int { return ix.nodeCount }
