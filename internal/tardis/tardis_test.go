package tardis

import (
	"testing"

	"climber/internal/cluster"
	"climber/internal/dataset"
	"climber/internal/series"
)

func testConfig() Config {
	return Config{Segments: 8, MaxBits: 8, Capacity: 300, SampleRate: 0.2, Seed: 5}
}

func buildIndex(t *testing.T, n int, cfg Config) (*Index, *series.Dataset) {
	t.Helper()
	ds := dataset.RandomWalk(64, n, 21)
	cl, err := cluster.New(cluster.Config{NumNodes: 2, WorkersPerNode: 1, BaseDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := cl.IngestBlocks(ds, 500, "td")
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(cl, bs, cfg, "td")
	if err != nil {
		t.Fatal(err)
	}
	return ix, ds
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Segments: 0, MaxBits: 8, Capacity: 10, SampleRate: 0.1},
		{Segments: 8, MaxBits: 0, Capacity: 10, SampleRate: 0.1},
		{Segments: 8, MaxBits: 8, Capacity: -1, SampleRate: 0.1},
		{Segments: 8, MaxBits: 8, Capacity: 10, SampleRate: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestBuildCoversDataset(t *testing.T) {
	ix, ds := buildIndex(t, 2000, testConfig())
	total := 0
	for _, c := range ix.Parts.Counts {
		total += c
	}
	if total != ds.Len() {
		t.Fatalf("partitions hold %d records, dataset has %d", total, ds.Len())
	}
	if ix.NumPartitions < 2 {
		t.Fatalf("expected multiple partitions, got %d", ix.NumPartitions)
	}
	if ix.NodeCount() < ix.NumPartitions {
		t.Fatalf("sigTree has %d nodes for %d partitions", ix.NodeCount(), ix.NumPartitions)
	}
	if ix.TreeSize() <= 0 {
		t.Fatal("tree size not positive")
	}
}

// The sigTree is wider than DPiSAX's binary tree: the root fanout after a
// word-level split can reach 2^w, and with random-walk data it is far above
// 2.
func TestSigTreeIsWide(t *testing.T) {
	ix, _ := buildIndex(t, 3000, testConfig())
	if ix.root.isLeaf() {
		t.Skip("tiny dataset did not split the root")
	}
	if len(ix.root.children) <= 2 {
		t.Fatalf("root fanout %d; sigTree should be n-ary, not binary", len(ix.root.children))
	}
}

func TestSearchBasics(t *testing.T) {
	ix, ds := buildIndex(t, 2000, testConfig())
	_, qs := dataset.Queries(ds, 10, 3)
	for _, q := range qs {
		res, err := ix.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Results) != 10 {
			t.Fatalf("got %d results, want 10", len(res.Results))
		}
		for i := 1; i < len(res.Results); i++ {
			if res.Results[i].Dist < res.Results[i-1].Dist {
				t.Fatal("results not sorted")
			}
		}
		if res.Stats.RecordsScanned == 0 || res.Stats.PartitionsScanned == 0 {
			t.Fatalf("empty stats: %+v", res.Stats)
		}
	}
}

func TestSelfRouting(t *testing.T) {
	ix, ds := buildIndex(t, 2000, testConfig())
	found := 0
	qids := []int{3, 500, 1200, 1999}
	for _, qid := range qids {
		res, err := ix.Search(ds.Get(qid), 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Results) > 0 && res.Results[0].ID == qid && res.Results[0].Dist < 1e-4 {
			found++
		}
	}
	// Records with sample-unseen words fall into the default partition
	// while the identical query may descend a partial path elsewhere;
	// allow one such miss.
	if found < len(qids)-1 {
		t.Fatalf("self-routing found %d/%d, want >= %d", found, len(qids), len(qids)-1)
	}
}

func TestSearchValidation(t *testing.T) {
	ix, ds := buildIndex(t, 500, testConfig())
	if _, err := ix.Search(ds.Get(0), 0); err == nil {
		t.Error("k = 0 should fail")
	}
	if _, err := ix.Search(make([]float64, 3), 5); err == nil {
		t.Error("wrong query length should fail")
	}
}

func TestRecallBand(t *testing.T) {
	// TARDIS's defining property in the paper: recall clearly better than
	// DPiSAX but capped around 0.4 at scale. At unit-test scale we assert
	// the plausible band.
	ix, ds := buildIndex(t, 4000, testConfig())
	_, qs := dataset.Queries(ds, 12, 31)
	const k = 50
	sum := 0.0
	for _, q := range qs {
		exact := exactTopK(ds, q, k)
		res, err := ix.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		sum += series.Recall(res.Results, exact)
	}
	avg := sum / float64(len(qs))
	t.Logf("TARDIS recall = %.3f", avg)
	if avg <= 0 || avg >= 0.8 {
		t.Fatalf("TARDIS recall %.3f outside the plausible band (0, 0.8)", avg)
	}
}

func exactTopK(ds *series.Dataset, q []float64, k int) []series.Result {
	top := series.NewTopK(k)
	for id := 0; id < ds.Len(); id++ {
		top.Push(id, series.SqDist(q, ds.Get(id)))
	}
	return top.Results()
}
