// Package hnsw implements Hierarchical Navigable Small World graphs
// (Malkov & Yashunin, TPAMI 2020) as the stand-in for ParlayANN-HNSW in the
// paper's Table I comparison (Section VII-D).
//
// The properties Table I relies on are faithfully reproduced: graph
// construction is by far the most expensive of the three systems (every
// insert runs greedy searches over the growing graph), query times are
// sub-second with recall around 0.9+, and the system is single-node
// memory-bound (a configurable budget refuses datasets past it, rendering
// the "X" cells).
package hnsw

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"climber/internal/series"
)

// ErrOutOfMemory is returned when the dataset exceeds the configured memory
// budget.
var ErrOutOfMemory = fmt.Errorf("hnsw: dataset exceeds the configured memory budget")

// Config carries the standard HNSW hyper-parameters.
type Config struct {
	// M is the maximum out-degree per node on upper layers (layer 0 allows
	// 2M).
	M int
	// EfConstruction is the beam width during insertion.
	EfConstruction int
	// EfSearch is the beam width during queries (>= k for good recall).
	EfSearch int
	// Seed drives level sampling.
	Seed uint64
	// MemoryBudgetBytes caps the in-memory footprint; 0 = unlimited.
	MemoryBudgetBytes int64
}

// DefaultConfig returns the customary M=16, ef=128 setup.
func DefaultConfig() Config {
	return Config{M: 16, EfConstruction: 128, EfSearch: 128, Seed: 42}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.M <= 1 {
		return fmt.Errorf("hnsw: M must be > 1, got %d", c.M)
	}
	if c.EfConstruction <= 0 {
		return fmt.Errorf("hnsw: EfConstruction must be positive, got %d", c.EfConstruction)
	}
	if c.EfSearch <= 0 {
		return fmt.Errorf("hnsw: EfSearch must be positive, got %d", c.EfSearch)
	}
	if c.MemoryBudgetBytes < 0 {
		return fmt.Errorf("hnsw: MemoryBudgetBytes must be non-negative")
	}
	return nil
}

// Graph is a built HNSW index over an in-memory dataset.
type Graph struct {
	cfg       Config
	ds        *series.Dataset
	levels    []int     // per node
	links     [][][]int // links[node][layer] = neighbour IDs
	entry     int
	maxLevel  int
	rng       *rand.Rand
	levelMul  float64
	distCalls int64
	Stats     BuildStats
}

// BuildStats reports construction cost.
type BuildStats struct {
	BuildTime     time.Duration
	MemoryBytes   int64
	DistanceCalls int64
}

// MemoryFootprint estimates the graph + data footprint in bytes.
func MemoryFootprint(numSeries, seriesLen, m int) int64 {
	raw := int64(numSeries) * int64(seriesLen) * 8
	links := int64(numSeries) * int64(2*m+m) * 8 // layer 0 (2M) + ~1 upper layer (M)
	return raw + links
}

// Build inserts every series of the dataset into a fresh graph.
func Build(ds *series.Dataset, cfg Config) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	footprint := MemoryFootprint(ds.Len(), ds.Length(), cfg.M)
	if cfg.MemoryBudgetBytes > 0 && footprint > cfg.MemoryBudgetBytes {
		return nil, fmt.Errorf("%w: need %d bytes, budget %d", ErrOutOfMemory, footprint, cfg.MemoryBudgetBytes)
	}
	start := time.Now()
	g := &Graph{
		cfg:      cfg,
		ds:       ds,
		levels:   make([]int, 0, ds.Len()),
		links:    make([][][]int, 0, ds.Len()),
		entry:    -1,
		maxLevel: -1,
		rng:      rand.New(rand.NewPCG(cfg.Seed, 0x3c6ef372fe94f82b)),
		levelMul: 1 / math.Log(float64(cfg.M)),
	}
	for id := 0; id < ds.Len(); id++ {
		g.insert(id)
	}
	g.Stats = BuildStats{BuildTime: time.Since(start), MemoryBytes: footprint, DistanceCalls: g.distCalls}
	return g, nil
}

// dist computes a node-pair squared distance, counting calls for
// construction-cost reporting.
func (g *Graph) dist(a, b int) float64 {
	g.distCalls++
	return series.SqDist(g.ds.Get(a), g.ds.Get(b))
}

func (g *Graph) distTo(q []float64, id int) float64 {
	g.distCalls++
	return series.SqDist(q, g.ds.Get(id))
}

// randomLevel samples a node's top layer from the standard exponential
// distribution.
func (g *Graph) randomLevel() int {
	return int(-math.Log(g.rng.Float64()) * g.levelMul)
}

// insert adds node id to the graph.
func (g *Graph) insert(id int) {
	level := g.randomLevel()
	g.levels = append(g.levels, level)
	nodeLinks := make([][]int, level+1)
	g.links = append(g.links, nodeLinks)

	if g.entry == -1 {
		g.entry = id
		g.maxLevel = level
		return
	}

	q := g.ds.Get(id)
	ep := g.entry
	// Phase 1: greedy descent through layers above the node's level.
	for l := g.maxLevel; l > level; l-- {
		ep = g.greedyClosest(q, ep, l)
	}
	// Phase 2: beam search + heuristic neighbour selection per layer.
	for l := min(level, g.maxLevel); l >= 0; l-- {
		cands := g.searchLayer(q, ep, g.cfg.EfConstruction, l)
		maxConn := g.cfg.M
		if l == 0 {
			maxConn = 2 * g.cfg.M
		}
		neighbours := g.selectHeuristic(cands, g.cfg.M)
		g.links[id][l] = neighbours
		for _, n := range neighbours {
			g.links[n][l] = append(g.links[n][l], id)
			if len(g.links[n][l]) > maxConn {
				g.links[n][l] = g.shrink(n, l, maxConn)
			}
		}
		if len(cands) > 0 {
			ep = cands[0].ID
		}
	}
	if level > g.maxLevel {
		g.maxLevel = level
		g.entry = id
	}
}

// greedyClosest walks layer l greedily towards q from ep.
func (g *Graph) greedyClosest(q []float64, ep, l int) int {
	cur := ep
	curDist := g.distTo(q, cur)
	for {
		improved := false
		for _, n := range g.linksAt(cur, l) {
			if d := g.distTo(q, n); d < curDist {
				cur, curDist = n, d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

func (g *Graph) linksAt(id, l int) []int {
	if l >= len(g.links[id]) {
		return nil
	}
	return g.links[id][l]
}

// searchLayer is the ef-bounded best-first search of HNSW, returning up to
// ef candidates sorted by ascending distance.
func (g *Graph) searchLayer(q []float64, ep, ef, l int) []series.Result {
	visited := map[int]struct{}{ep: {}}
	epDist := g.distTo(q, ep)

	// candidates: min-ordered by distance (simple sorted slice — ef is
	// small); results: bounded max-heap.
	cands := []series.Result{{ID: ep, Dist: epDist}}
	results := series.NewTopK(ef)
	results.Push(ep, epDist)

	for len(cands) > 0 {
		c := cands[0]
		cands = cands[1:]
		if bound, ok := results.Bound(); ok && c.Dist > bound {
			break
		}
		for _, n := range g.linksAt(c.ID, l) {
			if _, seen := visited[n]; seen {
				continue
			}
			visited[n] = struct{}{}
			d := g.distTo(q, n)
			bound, full := results.Bound()
			if !full || d < bound {
				results.Push(n, d)
				cands = insertSorted(cands, series.Result{ID: n, Dist: d})
			}
		}
	}
	return results.Results()
}

func insertSorted(s []series.Result, r series.Result) []series.Result {
	i := sort.Search(len(s), func(i int) bool { return s[i].Dist >= r.Dist })
	s = append(s, series.Result{})
	copy(s[i+1:], s[i:])
	s[i] = r
	return s
}

// selectHeuristic keeps up to m diverse neighbours (Malkov's heuristic:
// a candidate is kept only if it is closer to q than to every kept
// neighbour, which spreads links across directions).
func (g *Graph) selectHeuristic(cands []series.Result, m int) []int {
	var kept []int
	for _, c := range cands {
		if len(kept) >= m {
			break
		}
		ok := true
		for _, kn := range kept {
			if g.dist(c.ID, kn) < c.Dist {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, c.ID)
		}
	}
	// Fall back to closest-first if the heuristic kept too few.
	for _, c := range cands {
		if len(kept) >= m {
			break
		}
		dup := false
		for _, kn := range kept {
			if kn == c.ID {
				dup = true
				break
			}
		}
		if !dup {
			kept = append(kept, c.ID)
		}
	}
	return kept
}

// shrink re-selects node n's layer-l links after an overflow.
func (g *Graph) shrink(n, l, maxConn int) []int {
	links := g.links[n][l]
	cands := make([]series.Result, 0, len(links))
	for _, nb := range links {
		cands = append(cands, series.Result{ID: nb, Dist: g.dist(n, nb)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Dist < cands[j].Dist })
	return g.selectHeuristic(cands, maxConn)
}

// Search returns the approximate k nearest neighbours of q, ascending by
// true Euclidean distance.
func (g *Graph) Search(q []float64, k int) ([]series.Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("hnsw: k must be positive, got %d", k)
	}
	if len(q) != g.ds.Length() {
		return nil, fmt.Errorf("hnsw: query length %d, graph stores %d", len(q), g.ds.Length())
	}
	if g.entry == -1 {
		return nil, nil
	}
	ep := g.entry
	for l := g.maxLevel; l > 0; l-- {
		ep = g.greedyClosest(q, ep, l)
	}
	ef := g.cfg.EfSearch
	if ef < k {
		ef = k
	}
	cands := g.searchLayer(q, ep, ef, 0)
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]series.Result, len(cands))
	for i, c := range cands {
		out[i] = series.Result{ID: c.ID, Dist: math.Sqrt(c.Dist)}
	}
	return out, nil
}

// Len returns the number of indexed series.
func (g *Graph) Len() int { return len(g.levels) }

// MaxLevel returns the highest occupied layer.
func (g *Graph) MaxLevel() int { return g.maxLevel }
