package hnsw

import (
	"errors"
	"testing"

	"climber/internal/dataset"
	"climber/internal/dss"
	"climber/internal/series"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{M: 1, EfConstruction: 10, EfSearch: 10},
		{M: 8, EfConstruction: 0, EfSearch: 10},
		{M: 8, EfConstruction: 10, EfSearch: 0},
		{M: 8, EfConstruction: 10, EfSearch: 10, MemoryBudgetBytes: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestHighRecall(t *testing.T) {
	ds := dataset.RandomWalk(64, 3000, 9)
	g, err := Build(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, qs := dataset.Queries(ds, 15, 3)
	const k = 10
	sum := 0.0
	for _, q := range qs {
		got, err := g.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		exact := dss.SearchDataset(ds, q, k)
		sum += series.Recall(got, exact)
	}
	avg := sum / float64(len(qs))
	t.Logf("HNSW recall = %.3f", avg)
	// The defining Table I property: graph methods reach ~0.9+.
	if avg < 0.85 {
		t.Fatalf("HNSW recall %.3f below the expected 0.85 floor", avg)
	}
}

func TestSelfQueryFindsSelf(t *testing.T) {
	ds := dataset.RandomWalk(64, 1000, 5)
	g, err := Build(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, qid := range []int{0, 250, 999} {
		res, err := g.Search(ds.Get(qid), 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || res[0].ID != qid || res[0].Dist != 0 {
			t.Fatalf("self query %d returned %+v", qid, res)
		}
	}
}

func TestGraphConnectivity(t *testing.T) {
	// Every node must be reachable from the entry point on layer 0 —
	// otherwise whole regions are unsearchable.
	ds := dataset.RandomWalk(32, 800, 7)
	g, err := Build(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	visited := make([]bool, g.Len())
	queue := []int{g.entry}
	visited[g.entry] = true
	count := 1
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, nb := range g.linksAt(n, 0) {
			if !visited[nb] {
				visited[nb] = true
				count++
				queue = append(queue, nb)
			}
		}
	}
	frac := float64(count) / float64(g.Len())
	t.Logf("layer-0 reachability = %.3f", frac)
	if frac < 0.99 {
		t.Fatalf("only %.1f%% of nodes reachable from the entry point", frac*100)
	}
}

func TestDegreeBounds(t *testing.T) {
	ds := dataset.RandomWalk(32, 1000, 7)
	cfg := DefaultConfig()
	cfg.M = 8
	g, err := Build(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < g.Len(); id++ {
		for l := 0; l < len(g.links[id]); l++ {
			maxConn := cfg.M
			if l == 0 {
				maxConn = 2 * cfg.M
			}
			if len(g.links[id][l]) > maxConn {
				t.Fatalf("node %d layer %d degree %d > bound %d", id, l, len(g.links[id][l]), maxConn)
			}
		}
	}
}

func TestMemoryBudget(t *testing.T) {
	ds := dataset.RandomWalk(64, 500, 9)
	cfg := DefaultConfig()
	cfg.MemoryBudgetBytes = 100
	_, err := Build(ds, cfg)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
}

func TestBuildIsTheExpensivePhase(t *testing.T) {
	// Table I's shape: construction >> query. Assert construction incurs
	// far more distance computations than a single query path would.
	ds := dataset.RandomWalk(32, 1000, 7)
	g, err := Build(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats.DistanceCalls < int64(ds.Len())*10 {
		t.Fatalf("suspiciously cheap construction: %d distance calls for %d inserts",
			g.Stats.DistanceCalls, ds.Len())
	}
	if g.Stats.BuildTime <= 0 {
		t.Fatal("build time not recorded")
	}
}

func TestSearchValidation(t *testing.T) {
	ds := dataset.RandomWalk(32, 100, 7)
	g, err := Build(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Search(ds.Get(0), 0); err == nil {
		t.Error("k = 0 should fail")
	}
	if _, err := g.Search(make([]float64, 3), 5); err == nil {
		t.Error("wrong length should fail")
	}
	if g.MaxLevel() < 0 {
		t.Error("max level negative on a non-empty graph")
	}
}

func TestResultsAscendingAndDeduplicated(t *testing.T) {
	ds := dataset.RandomWalk(32, 600, 3)
	g, err := Build(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Search(ds.Get(11), 20)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i, r := range res {
		if seen[r.ID] {
			t.Fatalf("duplicate result id %d", r.ID)
		}
		seen[r.ID] = true
		if i > 0 && res[i].Dist < res[i-1].Dist {
			t.Fatal("results not ascending")
		}
	}
}
