// Package obs is the repository's stdlib-only tracing subsystem: a
// per-query span tree carried in context.Context, a traceparent-style
// header for nesting router traces over per-shard server traces, and a
// ring-buffered slow-query log.
//
// The design goal is "free when off": every method on *Trace and *Span
// is a no-op on a nil receiver, and SpanFromContext on an untraced
// context is a single Value lookup returning nil. Code on the hot
// search path therefore calls StartSpan/End unconditionally — no
// if-tracing-enabled branches — and pays one pointer test per call
// when tracing is off. When tracing is on, spans record a name, a
// monotonic start/end offset relative to the trace root, and a small
// set of integer attributes and string labels; children append under a
// trace-wide mutex so concurrent partition-scan goroutines can open
// sibling spans safely.
//
// Serialization (Span.Data) orders children deterministically by name
// and the "step"/"partition" attributes rather than by completion
// time, so an explain span tree is structurally byte-stable across
// runs even when stages inside it raced.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace is one query's span tree plus its wire identity. A Trace is
// created at the edge (server handler, router handler, or CLI) and
// carried down the call stack via ContextWithSpan; interior code never
// constructs one. All methods are safe on a nil *Trace.
type Trace struct {
	mu      sync.Mutex
	id      string // 32 hex chars, the wire trace-id
	started time.Time
	root    *Span
}

// Span is one timed stage of a trace. Spans form a tree under the
// trace root; Start/End offsets are monotonic durations relative to
// the trace start so serialized trees need no wall-clock arithmetic.
// All methods are safe on a nil *Span.
type Span struct {
	tr       *Trace
	name     string
	start    time.Duration
	end      time.Duration
	ended    bool
	attrs    []attr
	labels   []label
	children []*Span
	// graft, when set, is a foreign subtree (a shard's serialized
	// span tree) re-emitted verbatim by Data in place of this span.
	graft *SpanData
}

// attr is an integer span attribute (bytes loaded, records scanned, ...).
type attr struct {
	key string
	val int64
}

// label is a string span attribute (shard id, budget-exhaustion reason, ...).
type label struct {
	key string
	val string
}

// NewTrace starts a trace whose root span carries name. If traceID is
// a well-formed 32-hex-char id (typically parsed from an incoming
// traceparent header) it is adopted so the two processes' logs share
// one id; otherwise a fresh random id is generated.
func NewTrace(name, traceID string) *Trace {
	if !validTraceID(traceID) {
		traceID = randomTraceID()
	}
	t := &Trace{id: traceID, started: time.Now()}
	t.root = &Span{tr: t, name: name}
	return t
}

// ID returns the 32-hex-char trace id, or "" on a nil trace.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the trace's root span, or nil on a nil trace.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Started returns the wall-clock instant the trace began. The zero
// time on a nil trace.
func (t *Trace) Started() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.started
}

// now returns the monotonic offset since the trace started.
func (t *Trace) now() time.Duration { return time.Since(t.started) }

// Trace returns the trace this span belongs to, or nil.
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// StartChild opens a child span under s. Safe to call from concurrent
// goroutines; the child's position among its siblings is fixed at
// serialization time, not append time. Returns nil when s is nil, so
// untraced paths chain through without branching.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name}
	s.tr.mu.Lock()
	c.start = s.tr.now()
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// End closes the span. The first End wins; later calls (for example a
// deferred End after an explicit one on the happy path) are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.end = s.tr.now()
	}
	s.tr.mu.Unlock()
}

// SetAttr records an integer attribute on the span, overwriting any
// prior value for key.
func (s *Span) SetAttr(key string, val int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].key == key {
			s.attrs[i].val = val
			return
		}
	}
	s.attrs = append(s.attrs, attr{key, val})
}

// SetLabel records a string attribute on the span, overwriting any
// prior value for key.
func (s *Span) SetLabel(key, val string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for i := range s.labels {
		if s.labels[i].key == key {
			s.labels[i].val = val
			return
		}
	}
	s.labels = append(s.labels, label{key, val})
}

// AddChildData grafts an externally produced span tree (typically a
// shard's explain response, deserialized from the wire) under s. The
// graft is stored as-is; Data re-emits it unchanged below s.
func (s *Span) AddChildData(d *SpanData) {
	if s == nil || d == nil {
		return
	}
	c := &Span{tr: s.tr, name: d.Name, graft: d}
	s.tr.mu.Lock()
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
}

// SpanData is the wire/JSON form of a span tree. Durations are
// nanoseconds; Start is the offset from the owning trace's root.
// Attrs and Labels marshal as JSON objects, which encoding/json
// renders with sorted keys, so a SpanData value has exactly one
// serialized form.
type SpanData struct {
	Name       string            `json:"name"`
	StartNS    int64             `json:"start_ns"`
	DurationNS int64             `json:"duration_ns"`
	Attrs      map[string]int64  `json:"attrs,omitempty"`
	Labels     map[string]string `json:"labels,omitempty"`
	Children   []*SpanData       `json:"children,omitempty"`
}

// Data snapshots the span subtree rooted at s. Unended spans (a stage
// still in flight when an explain response is assembled) report the
// duration up to now. Children are ordered by name, then the "step",
// "partition", "query" and "shard" attributes, then start — a deterministic
// structure even when the spans were opened by racing goroutines.
// Returns nil on a nil span.
func (s *Span) Data() *SpanData {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.dataLocked()
}

// dataLocked builds the SpanData tree; caller holds s.tr.mu.
func (s *Span) dataLocked() *SpanData {
	if s.graft != nil {
		return s.graft
	}
	end := s.end
	if !s.ended {
		end = s.tr.now()
	}
	d := &SpanData{
		Name:       s.name,
		StartNS:    s.start.Nanoseconds(),
		DurationNS: (end - s.start).Nanoseconds(),
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]int64, len(s.attrs))
		for _, a := range s.attrs {
			d.Attrs[a.key] = a.val
		}
	}
	if len(s.labels) > 0 {
		d.Labels = make(map[string]string, len(s.labels))
		for _, l := range s.labels {
			d.Labels[l.key] = l.val
		}
	}
	for _, c := range s.children {
		d.Children = append(d.Children, c.dataLocked())
	}
	sort.SliceStable(d.Children, func(i, j int) bool {
		a, b := d.Children[i], d.Children[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		for _, key := range []string{"step", "partition", "query", "shard"} {
			if va, vb := a.Attrs[key], b.Attrs[key]; va != vb {
				return va < vb
			}
		}
		return a.StartNS < b.StartNS
	})
	return d
}

// StageNanos sums the durations of s's direct children by span name —
// the per-stage figures the Prometheus stage histograms observe.
// Returns nil on a nil span.
func (s *Span) StageNanos() map[string]int64 {
	d := s.Data()
	if d == nil {
		return nil
	}
	out := make(map[string]int64, len(d.Children))
	for _, c := range d.Children {
		out[c.Name] += c.DurationNS
	}
	return out
}

// ctxKey is the context key type for the active span.
type ctxKey struct{}

// ContextWithSpan returns a context carrying sp as the active span.
// Passing a nil span returns ctx unchanged, so callers can thread an
// optional trace without branching.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFromContext returns the active span, or nil when ctx is
// untraced. This is the single per-query cost of tracing-off paths.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// StartSpan opens a child of the context's active span and returns a
// context in which the child is active, plus the child itself. On an
// untraced context it returns (ctx, nil) without allocating. The
// caller must End the returned span on every return path — the
// tracespan analyzer in internal/analysis/tracespan enforces this.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	//lint:ignore tracespan constructor: the caller owns the span and must End it
	c := parent.StartChild(name)
	return context.WithValue(ctx, ctxKey{}, c), c
}

// TraceHeader is the HTTP header carrying trace identity between the
// router and shard servers. The value follows the W3C traceparent
// shape: version "00", a 32-hex trace-id, a 16-hex parent span-id,
// and a flags byte whose low bit means "sampled".
const TraceHeader = "Traceparent"

// FormatTraceparent renders a traceparent header value for traceID.
// The parent span-id is synthesized from the trace id (this tracer
// identifies spans by tree position, not by id); sampled sets the
// flags low bit, telling the downstream server to trace even without
// an explain flag in the body.
func FormatTraceparent(traceID string, sampled bool) string {
	if !validTraceID(traceID) {
		traceID = randomTraceID()
	}
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + traceID + "-" + traceID[:16] + "-" + flags
}

// ParseTraceparent extracts (traceID, sampled) from a traceparent
// header value. ok is false on any malformed input; callers should
// then fall back to a fresh trace id.
func ParseTraceparent(v string) (traceID string, sampled bool, ok bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) != 4 || parts[0] != "00" || !validTraceID(parts[1]) || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return "", false, false
	}
	if !isHex(parts[2]) || !isHex(parts[3]) {
		return "", false, false
	}
	return parts[1], parts[3] == "01", true
}

// validTraceID reports whether s is 32 lowercase hex chars and not
// all-zero (the traceparent spec's invalid id).
func validTraceID(s string) bool {
	if len(s) != 32 || !isHex(s) {
		return false
	}
	return strings.Trim(s, "0") != ""
}

// isHex reports whether s is entirely lowercase hex digits.
func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

// randomTraceID generates a fresh 32-hex-char trace id.
func randomTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; if it somehow
		// does, a timestamp-derived id keeps tracing usable.
		return fmt.Sprintf("%032x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}
