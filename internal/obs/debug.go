package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugMux builds the sidecar diagnostics mux served under
// -debug-addr by climber-serve and climber-router: net/http/pprof at
// its conventional /debug/pprof/ paths plus the slow-query ring at
// /debug/slow. The mux is deliberately separate from the serving mux
// so profiling endpoints are never exposed on the public port by
// accident; /debug/slow is additionally mounted on the serving mux by
// the server and router themselves.
func DebugMux(slow *SlowLog) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/slow", slow.Handler())
	return mux
}
