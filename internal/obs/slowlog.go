package obs

import (
	"encoding/json"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"
)

// SlowLogEntry is one recorded query in the slow-query ring. Reason
// says why it was kept: "threshold" for queries at or over the slow
// threshold, "sampled" for probabilistically traced ones. Stats is
// the query's wire-visible stats value, marshaled as-is.
type SlowLogEntry struct {
	Seq        int64     `json:"seq"`
	Time       time.Time `json:"time"`
	Endpoint   string    `json:"endpoint"`
	DurationMS float64   `json:"duration_ms"`
	Reason     string    `json:"reason"`
	TraceID    string    `json:"trace_id,omitempty"`
	Status     int       `json:"status,omitempty"`
	Stats      any       `json:"stats,omitempty"`
	Trace      *SpanData `json:"trace,omitempty"`
}

// SlowLog is a fixed-capacity FIFO ring of slow or sampled queries,
// safe for concurrent writers. Queries whose duration reaches the
// threshold are always recorded (and emitted as a structured slog
// line); sampled entries ride along so the ring also shows what
// "normal" looks like. When the ring is full the oldest entry is
// overwritten.
type SlowLog struct {
	threshold time.Duration
	sample    float64
	logger    *slog.Logger

	mu   sync.Mutex
	buf  []SlowLogEntry
	next int   // ring write position
	n    int   // live entries (≤ cap)
	seq  int64 // monotone id assigned under mu, exposes eviction order
}

// NewSlowLog builds a slow-query log holding up to size entries.
// threshold is the duration at or above which a query is always
// recorded (0 disables threshold capture); sample in [0,1] is the
// probability an arbitrary query is head-sampled for tracing (0
// disables sampling). logger receives one structured line per
// threshold breach; nil uses slog.Default().
func NewSlowLog(size int, threshold time.Duration, sample float64, logger *slog.Logger) *SlowLog {
	if size <= 0 {
		size = 128
	}
	if logger == nil {
		logger = slog.Default()
	}
	return &SlowLog{
		threshold: threshold,
		sample:    sample,
		logger:    logger,
		buf:       make([]SlowLogEntry, size),
	}
}

// Threshold returns the slow threshold the log was built with.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Sample makes one head-sampling decision: true with probability
// sample. The server calls this before running a query to decide
// whether to arm tracing for it.
func (l *SlowLog) Sample() bool {
	if l == nil || l.sample <= 0 {
		return false
	}
	return l.sample >= 1 || rand.Float64() < l.sample
}

// Note considers one finished query. d at or over the threshold
// records it with reason "threshold" and logs a structured line;
// otherwise sampled records it with reason "sampled"; otherwise the
// query is dropped. Safe for concurrent callers on a nil *SlowLog
// (no-op).
func (l *SlowLog) Note(endpoint string, d time.Duration, sampled bool, traceID string, status int, stats any, trace *SpanData) {
	if l == nil {
		return
	}
	slow := l.threshold > 0 && d >= l.threshold
	if !slow && !sampled {
		return
	}
	e := SlowLogEntry{
		Time:       time.Now(),
		Endpoint:   endpoint,
		DurationMS: float64(d.Microseconds()) / 1000.0,
		Reason:     "sampled",
		TraceID:    traceID,
		Status:     status,
		Stats:      stats,
		Trace:      trace,
	}
	if slow {
		e.Reason = "threshold"
	}
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	l.buf[l.next] = e
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
	if slow {
		l.logger.Warn("slow query",
			slog.String("endpoint", endpoint),
			slog.Duration("duration", d),
			slog.String("trace_id", traceID),
			slog.Int("status", status),
		)
	}
}

// Entries snapshots the ring oldest-first. Seq values are contiguous
// over the retained window — the ring has dropped exactly the entries
// below the first returned Seq.
func (l *SlowLog) Entries() []SlowLogEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowLogEntry, 0, l.n)
	start := l.next - l.n
	if start < 0 {
		start += len(l.buf)
	}
	for i := 0; i < l.n; i++ {
		out = append(out, l.buf[(start+i)%len(l.buf)])
	}
	return out
}

// Total returns how many entries have ever been recorded (including
// ones the ring has since evicted).
func (l *SlowLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// slowLogPage is the JSON document Handler serves.
type slowLogPage struct {
	ThresholdMS float64        `json:"threshold_ms"`
	Sample      float64        `json:"sample"`
	Total       int64          `json:"total"`
	Entries     []SlowLogEntry `json:"entries"`
}

// Handler serves the ring as JSON (GET /debug/slow): capture
// configuration, total-ever-recorded, and the retained entries
// oldest-first. (Marshaled inline rather than via internal/api, which
// sits above obs in the import graph.)
func (l *SlowLog) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, `{"error":"GET only"}`, http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(slowLogPage{
			ThresholdMS: float64(l.Threshold().Microseconds()) / 1000.0,
			Sample:      l.sampleRate(),
			Total:       l.Total(),
			Entries:     l.Entries(),
		})
	})
}

// sampleRate returns the configured sampling probability.
func (l *SlowLog) sampleRate() float64 {
	if l == nil {
		return 0
	}
	return l.sample
}
