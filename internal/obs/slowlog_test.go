package obs

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// quiet returns a logger that discards output so tests don't spam stderr.
func quiet() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func TestSlowLogThresholdAndSampling(t *testing.T) {
	l := NewSlowLog(8, 10*time.Millisecond, 0, quiet())
	l.Note("/search", time.Millisecond, false, "", 200, nil, nil) // fast, unsampled: dropped
	l.Note("/search", 20*time.Millisecond, false, "abc", 200, nil, nil)
	l.Note("/search", time.Millisecond, true, "", 200, nil, nil) // sampled rides along
	got := l.Entries()
	if len(got) != 2 {
		t.Fatalf("want 2 entries, got %d", len(got))
	}
	if got[0].Reason != "threshold" || got[1].Reason != "sampled" {
		t.Fatalf("reasons: %q, %q", got[0].Reason, got[1].Reason)
	}
	if got[0].TraceID != "abc" {
		t.Fatalf("trace id lost: %+v", got[0])
	}
	if l.Total() != 2 {
		t.Fatalf("total: %d", l.Total())
	}
}

func TestSlowLogSampleRate(t *testing.T) {
	if (&SlowLog{sample: 0}).Sample() {
		t.Fatal("sample=0 must never sample")
	}
	always := NewSlowLog(1, 0, 1, quiet())
	for i := 0; i < 10; i++ {
		if !always.Sample() {
			t.Fatal("sample=1 must always sample")
		}
	}
	var nilLog *SlowLog
	if nilLog.Sample() {
		t.Fatal("nil slowlog sampled")
	}
	nilLog.Note("/x", time.Second, true, "", 200, nil, nil) // must not panic
}

// TestSlowLogFIFOConcurrent is the satellite-3 eviction test: under
// many concurrent writers the ring must retain exactly the newest
// `cap` entries, in order — run with -race.
func TestSlowLogFIFOConcurrent(t *testing.T) {
	const capacity, writers, perWriter = 32, 8, 50
	l := NewSlowLog(capacity, time.Nanosecond, 0, quiet())
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Note("/search", time.Millisecond, false, "", 200, nil, nil)
			}
		}()
	}
	wg.Wait()
	const total = writers * perWriter
	if got := l.Total(); got != total {
		t.Fatalf("total: want %d, got %d", total, got)
	}
	got := l.Entries()
	if len(got) != capacity {
		t.Fatalf("retained: want %d, got %d", capacity, len(got))
	}
	// FIFO eviction: the survivors are exactly the last `capacity`
	// sequence numbers, ascending and contiguous.
	for i, e := range got {
		want := int64(total - capacity + 1 + i)
		if e.Seq != want {
			t.Fatalf("entry %d: want seq %d, got %d (eviction not FIFO)", i, want, e.Seq)
		}
	}
}

func TestSlowLogHandler(t *testing.T) {
	l := NewSlowLog(4, 5*time.Millisecond, 0.5, quiet())
	l.Note("/search", 10*time.Millisecond, false, "deadbeef", 200, map[string]int{"records": 7}, nil)
	rec := httptest.NewRecorder()
	l.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slow", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var page struct {
		ThresholdMS float64        `json:"threshold_ms"`
		Sample      float64        `json:"sample"`
		Total       int64          `json:"total"`
		Entries     []SlowLogEntry `json:"entries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if page.ThresholdMS != 5 || page.Sample != 0.5 || page.Total != 1 || len(page.Entries) != 1 {
		t.Fatalf("page: %+v", page)
	}
	rec = httptest.NewRecorder()
	l.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/debug/slow", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status %d", rec.Code)
	}
}

func TestDebugMux(t *testing.T) {
	mux := DebugMux(NewSlowLog(4, 0, 0, quiet()))
	for _, path := range []string{"/debug/slow", "/debug/pprof/", "/debug/pprof/cmdline"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s: status %d", path, rec.Code)
		}
	}
}
