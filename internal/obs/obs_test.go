package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every trace/span operation must be a no-op on nil receivers —
	// this is the tracing-off hot path.
	var tr *Trace
	var sp *Span
	if tr.ID() != "" || tr.Root() != nil {
		t.Fatal("nil trace not inert")
	}
	sp.End()
	sp.SetAttr("x", 1)
	sp.SetLabel("y", "z")
	sp.AddChildData(&SpanData{Name: "n"})
	if sp.StartChild("c") != nil || sp.Data() != nil || sp.StageNanos() != nil {
		t.Fatal("nil span not inert")
	}
	ctx := context.Background()
	if ContextWithSpan(ctx, nil) != ctx {
		t.Fatal("ContextWithSpan(nil) should return ctx unchanged")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("untraced context returned a span")
	}
	ctx2, c := StartSpan(ctx, "stage")
	if ctx2 != ctx || c != nil {
		t.Fatal("StartSpan on untraced context should be free")
	}
}

func TestSpanTreeStructure(t *testing.T) {
	tr := NewTrace("query", "")
	root := tr.Root()
	ctx := ContextWithSpan(context.Background(), root)

	ctx2, plan := StartSpan(ctx, "plan")
	if SpanFromContext(ctx2) != plan {
		t.Fatal("StartSpan did not activate the child")
	}
	plan.SetAttr("steps", 3)
	plan.End()

	scan := root.StartChild("scan")
	for i := 2; i >= 0; i-- { // reverse order: serialization must sort
		st := scan.StartChild("step")
		st.SetAttr("step", int64(i))
		st.SetAttr("partition", int64(10+i))
		st.End()
	}
	scan.End()
	root.End()

	d := root.Data()
	if d.Name != "query" || len(d.Children) != 2 {
		t.Fatalf("root data: %+v", d)
	}
	// Children sorted by name: plan < scan.
	if d.Children[0].Name != "plan" || d.Children[1].Name != "scan" {
		t.Fatalf("child order: %s, %s", d.Children[0].Name, d.Children[1].Name)
	}
	if d.Children[0].Attrs["steps"] != 3 {
		t.Fatalf("plan attrs: %+v", d.Children[0].Attrs)
	}
	steps := d.Children[1].Children
	if len(steps) != 3 {
		t.Fatalf("want 3 steps, got %d", len(steps))
	}
	for i, st := range steps {
		if st.Attrs["step"] != int64(i) {
			t.Fatalf("steps not sorted by step attr: %+v", steps)
		}
	}
}

func TestDataDeterministicUnderConcurrency(t *testing.T) {
	// Concurrent sibling creation must serialize to the same structure
	// regardless of append order. Timings differ between runs, so the
	// comparison zeroes them — that is exactly what the explain
	// byte-stability test does at the API layer.
	build := func() *SpanData {
		tr := NewTrace("q", "")
		scan := tr.Root().StartChild("scan")
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				st := scan.StartChild("step")
				st.SetAttr("step", int64(i))
				st.End()
			}(i)
		}
		wg.Wait()
		scan.End()
		tr.Root().End()
		return tr.Root().Data()
	}
	var zero func(*SpanData)
	zero = func(d *SpanData) {
		d.StartNS, d.DurationNS = 0, 0
		for _, c := range d.Children {
			zero(c)
		}
	}
	a, b := build(), build()
	zero(a)
	zero(b)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("nondeterministic serialization:\n%s\n%s", ja, jb)
	}
}

func TestGraftedChild(t *testing.T) {
	tr := NewTrace("router", "")
	sh := tr.Root().StartChild("shard")
	sh.SetLabel("shard", "s0")
	sh.AddChildData(&SpanData{Name: "query", DurationNS: 42,
		Children: []*SpanData{{Name: "scan", DurationNS: 40}}})
	sh.End()
	tr.Root().End()
	d := tr.Root().Data()
	if len(d.Children) != 1 || len(d.Children[0].Children) != 1 {
		t.Fatalf("graft lost: %+v", d)
	}
	g := d.Children[0].Children[0]
	if g.Name != "query" || g.DurationNS != 42 || g.Children[0].Name != "scan" {
		t.Fatalf("graft mangled: %+v", g)
	}
}

func TestStageNanos(t *testing.T) {
	tr := NewTrace("q", "")
	a := tr.Root().StartChild("scan")
	time.Sleep(2 * time.Millisecond)
	a.End()
	b := tr.Root().StartChild("merge")
	b.End()
	tr.Root().End()
	st := tr.Root().StageNanos()
	if st["scan"] <= 0 {
		t.Fatalf("scan stage duration not recorded: %v", st)
	}
	if _, ok := st["merge"]; !ok {
		t.Fatalf("merge stage missing: %v", st)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTrace("q", "")
	h := FormatTraceparent(tr.ID(), true)
	id, sampled, ok := ParseTraceparent(h)
	if !ok || id != tr.ID() || !sampled {
		t.Fatalf("round trip failed: %q -> (%q, %v, %v)", h, id, sampled, ok)
	}
	h = FormatTraceparent(tr.ID(), false)
	if _, sampled, ok = ParseTraceparent(h); !ok || sampled {
		t.Fatalf("unsampled flag lost: %q", h)
	}
	// Adoption: a trace created with a propagated id keeps it.
	tr2 := NewTrace("q", id)
	if tr2.ID() != id {
		t.Fatalf("trace id not adopted: %q != %q", tr2.ID(), id)
	}
	for _, bad := range []string{
		"", "garbage", "00-short-span-01",
		"00-00000000000000000000000000000000-0000000000000000-01", // all-zero id
		"99-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // bad version
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b71692033zz-01", // bad hex
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("accepted malformed traceparent %q", bad)
		}
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := NewTrace("q", "")
	sp := tr.Root().StartChild("stage")
	sp.End()
	d1 := sp.Data().DurationNS
	time.Sleep(2 * time.Millisecond)
	sp.End() // second End must not extend the span
	if d2 := sp.Data().DurationNS; d2 != d1 {
		t.Fatalf("End not idempotent: %d != %d", d2, d1)
	}
}
