// Package grouping implements Algorithm 1 of the paper: the Group
// Assignment Rules that place a data series (or route a query) into one of
// the data-series groups of Definition 8.
//
// Assignment proceeds in three stages:
//
//  1. Overlap Distance (Definition 7) between the object's rank-insensitive
//     signature and every group centroid. A unique minimum wins. If the
//     object shares no pivot with any centroid (all distances equal m), the
//     object falls back to the special group G0.
//  2. On an OD tie, the Weight Distance (Definition 11) against the tied
//     centroids, computed from the object's rank-sensitive signature via
//     the decay weights of Definition 9. A unique minimum wins.
//  3. On a second tie, a uniformly random choice among the tied groups.
package grouping

import (
	"fmt"
	"math/rand/v2"

	"climber/internal/metric"
	"climber/internal/pivot"
)

// FallbackGroup is the ID of the special fall-back group G0 that receives
// objects overlapping no centroid (paper Section IV-C and Algorithm 1,
// Lines 3-5).
const FallbackGroup = 0

// Assigner evaluates the assignment rules against a fixed centroid list.
// Group IDs are 1-based: group i has centroid Centroid(i); group 0 is the
// fall-back. An Assigner is immutable and safe for concurrent use; the
// random tie-break takes the caller's RNG so parallel workers can assign
// without contention.
type Assigner struct {
	centroids []pivot.Signature // index 0 unused (fall-back)
	weigher   *metric.Weigher
	m         int

	// UseWeightTieBreak enables the WD stage (stage 2). It defaults to
	// true — Algorithm 1 as published. Setting it false resolves OD ties
	// randomly, ablating the rank-sensitive half of the dual
	// representation (the "single representation" ablation, cmd/climber-bench -experiment abl-dual).
	UseWeightTieBreak bool
}

// NewAssigner builds an Assigner over the given (real, non-fall-back)
// centroids, all of prefix length m matching the weigher. An empty centroid
// list is allowed and yields a degenerate single-group assigner that routes
// everything to the fall-back group G0.
func NewAssigner(centroids []pivot.Signature, weigher *metric.Weigher) (*Assigner, error) {
	m := weigher.PrefixLen()
	for i, c := range centroids {
		if len(c) != m {
			return nil, fmt.Errorf("grouping: centroid %d has length %d, want %d", i+1, len(c), m)
		}
	}
	a := &Assigner{centroids: make([]pivot.Signature, len(centroids)+1), weigher: weigher, m: m,
		UseWeightTieBreak: true}
	for i, c := range centroids {
		a.centroids[i+1] = c.Clone()
	}
	return a, nil
}

// NumGroups returns the number of groups including the fall-back group 0.
func (a *Assigner) NumGroups() int { return len(a.centroids) }

// Centroid returns the rank-insensitive centroid of group id (1-based);
// nil for the fall-back group 0.
func (a *Assigner) Centroid(id int) pivot.Signature { return a.centroids[id] }

// Weigher exposes the decay weigher, shared with query processing.
func (a *Assigner) Weigher() *metric.Weigher { return a.weigher }

// Assign runs Algorithm 1 and returns the group ID for an object with the
// given dual signature. rng supplies the final random tie-break; it must be
// non-nil.
func (a *Assigner) Assign(rankSensitive, rankInsensitive pivot.Signature, rng *rand.Rand) int {
	cands, bestOD := a.Candidates(rankSensitive, rankInsensitive)
	if bestOD == a.m {
		return FallbackGroup // Lines 3-5: zero overlap with every centroid
	}
	if len(cands) == 1 {
		return cands[0]
	}
	return cands[rng.IntN(len(cands))] // Line 14: second tie
}

// Candidates returns the group IDs that survive the OD stage and, when
// needed, the WD tie-break — i.e. the GList of query Algorithm 3 (Lines
// 5-9) — along with the smallest OD observed. When bestOD == m the object
// overlaps no centroid and the only sensible target is the fall-back group;
// the returned slice is then [FallbackGroup].
func (a *Assigner) Candidates(rankSensitive, rankInsensitive pivot.Signature) (ids []int, bestOD int) {
	ids, bestOD = a.BestByOverlap(rankInsensitive)
	if len(ids) == 0 || bestOD == a.m {
		// No centroid overlapped the object — or no centroid exists at all
		// (a degenerate single-group skeleton, where BestByOverlap reports
		// m+1 because its loop never ran). Either way the only target is
		// the fall-back group; report OD m, the no-overlap distance, so
		// callers see a consistent value.
		return []int{FallbackGroup}, a.m
	}
	if len(ids) <= 1 || !a.UseWeightTieBreak {
		return ids, bestOD
	}
	return a.filterByWeight(rankSensitive, ids), bestOD
}

// BestByOverlap returns all group IDs sharing the smallest Overlap Distance
// to the rank-insensitive signature (Lines 2 & 6 of Algorithm 1), together
// with that distance. The fall-back group is not considered.
func (a *Assigner) BestByOverlap(rankInsensitive pivot.Signature) (ids []int, bestOD int) {
	bestOD = a.m + 1
	for id := 1; id < len(a.centroids); id++ {
		od := metric.OverlapDist(rankInsensitive, a.centroids[id])
		switch {
		case od < bestOD:
			bestOD = od
			ids = ids[:0]
			ids = append(ids, id)
		case od == bestOD:
			ids = append(ids, id)
		}
	}
	return ids, bestOD
}

// GroupsWithinOD returns every group whose Overlap Distance to the
// rank-insensitive signature is at most maxOD, used by the adaptive query
// algorithm to memorise additional candidate groups.
func (a *Assigner) GroupsWithinOD(rankInsensitive pivot.Signature, maxOD int) []int {
	var ids []int
	for id := 1; id < len(a.centroids); id++ {
		if metric.OverlapDist(rankInsensitive, a.centroids[id]) <= maxOD {
			ids = append(ids, id)
		}
	}
	return ids
}

// filterByWeight keeps the groups with the smallest Weight Distance (Lines
// 9-12). Exact float equality is intentional: WD values tie exactly when
// the matched weight subsets coincide, which is the paper's tie condition.
func (a *Assigner) filterByWeight(rankSensitive pivot.Signature, ids []int) []int {
	best := []int{ids[0]}
	bestWD := a.weigher.WeightDist(rankSensitive, a.centroids[ids[0]])
	for _, id := range ids[1:] {
		wd := a.weigher.WeightDist(rankSensitive, a.centroids[id])
		switch {
		case wd < bestWD:
			bestWD = wd
			best = best[:0]
			best = append(best, id)
		case wd == bestWD:
			best = append(best, id)
		}
	}
	return best
}
