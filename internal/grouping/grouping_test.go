package grouping

import (
	"math/rand/v2"
	"testing"

	"climber/internal/metric"
	"climber/internal/pivot"
)

func exampleAssigner(t *testing.T) *Assigner {
	t.Helper()
	w := metric.MustWeigher(3, metric.ExponentialDecay, 0.5)
	a, err := NewAssigner([]pivot.Signature{
		{1, 2, 3}, // group 1 (the paper's G1, centroid o1)
		{2, 4, 5}, // group 2 (the paper's G2, centroid o2)
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// The paper's Example 1, object X: P4→ = <3,4,1>, P4↛ = <1,3,4>.
// OD(X, o1) = 1 < OD(X, o2) = 2 — unique smallest, assign to G1.
func TestAssignExample1X(t *testing.T) {
	a := exampleAssigner(t)
	rng := rand.New(rand.NewPCG(1, 1))
	got := a.Assign(pivot.Signature{3, 4, 1}, pivot.Signature{1, 3, 4}, rng)
	if got != 1 {
		t.Fatalf("X assigned to group %d, want 1", got)
	}
}

// Example 1, object Y: P4→ = <4,2,1>, P4↛ = <1,2,4>.
// OD tie (1, 1); WD(Y, o1) = 1 > WD(Y, o2) = 0.25 — assign to G2.
func TestAssignExample1Y(t *testing.T) {
	a := exampleAssigner(t)
	rng := rand.New(rand.NewPCG(1, 1))
	got := a.Assign(pivot.Signature{4, 2, 1}, pivot.Signature{1, 2, 4}, rng)
	if got != 2 {
		t.Fatalf("Y assigned to group %d, want 2", got)
	}
}

// Example 1, object Z: P4→ = <6,2,7>, P4↛ = <2,6,7>.
// OD tie (2, 2); WD tie (1.25, 1.25) — random assignment to G1 or G2,
// and both outcomes must occur over many seeds.
func TestAssignExample1ZRandomTieBreak(t *testing.T) {
	a := exampleAssigner(t)
	seen := map[int]int{}
	for seed := uint64(0); seed < 64; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed+1))
		got := a.Assign(pivot.Signature{6, 2, 7}, pivot.Signature{2, 6, 7}, rng)
		if got != 1 && got != 2 {
			t.Fatalf("Z assigned to group %d, want 1 or 2", got)
		}
		seen[got]++
	}
	if seen[1] == 0 || seen[2] == 0 {
		t.Fatalf("random tie-break never chose one side: %v", seen)
	}
}

// An object sharing no pivot with any centroid goes to the fall-back group
// G0 (Algorithm 1, Lines 3-5).
func TestAssignFallback(t *testing.T) {
	a := exampleAssigner(t)
	rng := rand.New(rand.NewPCG(1, 1))
	got := a.Assign(pivot.Signature{7, 8, 9}, pivot.Signature{7, 8, 9}, rng)
	if got != FallbackGroup {
		t.Fatalf("disjoint object assigned to group %d, want fall-back %d", got, FallbackGroup)
	}
}

func TestCandidatesExposesTies(t *testing.T) {
	a := exampleAssigner(t)
	// Z from Example 1 ties in both OD and WD: both groups remain.
	ids, bestOD := a.Candidates(pivot.Signature{6, 2, 7}, pivot.Signature{2, 6, 7})
	if bestOD != 2 {
		t.Fatalf("bestOD = %d, want 2", bestOD)
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("candidates = %v, want [1 2]", ids)
	}
	// Y resolves by WD to exactly group 2.
	ids, _ = a.Candidates(pivot.Signature{4, 2, 1}, pivot.Signature{1, 2, 4})
	if len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("Y candidates = %v, want [2]", ids)
	}
	// Disjoint: the fall-back group is the only candidate.
	ids, bestOD = a.Candidates(pivot.Signature{7, 8, 9}, pivot.Signature{7, 8, 9})
	if bestOD != 3 || len(ids) != 1 || ids[0] != FallbackGroup {
		t.Fatalf("disjoint candidates = %v (bestOD %d), want [0] with OD 3", ids, bestOD)
	}
}

func TestBestByOverlap(t *testing.T) {
	a := exampleAssigner(t)
	ids, od := a.BestByOverlap(pivot.Signature{1, 3, 4})
	if od != 1 || len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("BestByOverlap = %v, %d; want [1], 1", ids, od)
	}
}

func TestGroupsWithinOD(t *testing.T) {
	a := exampleAssigner(t)
	// <1,2,4>: OD to o1 = 1, OD to o2 = 1.
	got := a.GroupsWithinOD(pivot.Signature{1, 2, 4}, 1)
	if len(got) != 2 {
		t.Fatalf("GroupsWithinOD(1) = %v, want both groups", got)
	}
	got = a.GroupsWithinOD(pivot.Signature{1, 2, 4}, 0)
	if len(got) != 0 {
		t.Fatalf("GroupsWithinOD(0) = %v, want none", got)
	}
}

func TestNewAssignerValidation(t *testing.T) {
	w := metric.MustWeigher(3, metric.ExponentialDecay, 0.5)
	if _, err := NewAssigner([]pivot.Signature{{1, 2}}, w); err == nil {
		t.Error("centroid length mismatch should fail")
	}
}

// A degenerate assigner with no real centroids must route everything to the
// fall-back group instead of returning an empty candidate set — an empty
// GList would leave the query algorithm with no target and crash it.
func TestCandidatesEmptyRoutesToFallback(t *testing.T) {
	w := metric.MustWeigher(3, metric.ExponentialDecay, 0.5)
	a, err := NewAssigner(nil, w)
	if err != nil {
		t.Fatalf("NewAssigner(nil): %v", err)
	}
	if a.NumGroups() != 1 {
		t.Fatalf("NumGroups = %d, want 1 (fall-back only)", a.NumGroups())
	}
	rs := pivot.Signature{1, 2, 3}
	ids, bestOD := a.Candidates(rs, rs.RankInsensitive())
	if len(ids) != 1 || ids[0] != FallbackGroup {
		t.Fatalf("Candidates = %v, want [FallbackGroup]", ids)
	}
	if bestOD != 3 {
		t.Fatalf("bestOD = %d, want m=3 (no-overlap distance)", bestOD)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	if gid := a.Assign(rs, rs.RankInsensitive(), rng); gid != FallbackGroup {
		t.Fatalf("Assign = %d, want FallbackGroup", gid)
	}
}

func TestAssignerAccessors(t *testing.T) {
	a := exampleAssigner(t)
	if a.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d, want 3 (fall-back + 2)", a.NumGroups())
	}
	if a.Centroid(0) != nil {
		t.Fatal("fall-back centroid should be nil")
	}
	if !a.Centroid(2).Equal(pivot.Signature{2, 4, 5}) {
		t.Fatalf("Centroid(2) = %v", a.Centroid(2))
	}
	if a.Weigher() == nil {
		t.Fatal("Weigher accessor returned nil")
	}
}

// Assignment must be a pure function of the signatures except for the
// documented random final tie-break.
func TestAssignDeterministicWithoutTies(t *testing.T) {
	a := exampleAssigner(t)
	for seed := uint64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewPCG(seed, 99))
		if got := a.Assign(pivot.Signature{3, 4, 1}, pivot.Signature{1, 3, 4}, rng); got != 1 {
			t.Fatalf("seed %d changed a tie-free assignment to %d", seed, got)
		}
	}
}

// With the WD tie-break disabled (the dual-representation ablation), OD
// ties must pass through unresolved so the caller's random stage decides.
func TestDisabledWeightTieBreak(t *testing.T) {
	a := exampleAssigner(t)
	a.UseWeightTieBreak = false
	// Y from Example 1 ties on OD; with WD disabled both groups survive.
	ids, _ := a.Candidates(pivot.Signature{4, 2, 1}, pivot.Signature{1, 2, 4})
	if len(ids) != 2 {
		t.Fatalf("candidates with WD disabled = %v, want both tied groups", ids)
	}
	// Assign distributes Y randomly across the tie instead of always
	// choosing G2.
	seen := map[int]bool{}
	for seed := uint64(0); seed < 64; seed++ {
		rng := rand.New(rand.NewPCG(seed, 3))
		seen[a.Assign(pivot.Signature{4, 2, 1}, pivot.Signature{1, 2, 4}, rng)] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("random-only tie-break never chose one side: %v", seen)
	}
}

// The centroid slices passed to NewAssigner must be defensively copied.
func TestNewAssignerCopiesCentroids(t *testing.T) {
	w := metric.MustWeigher(3, metric.ExponentialDecay, 0.5)
	c := pivot.Signature{1, 2, 3}
	a, err := NewAssigner([]pivot.Signature{c}, w)
	if err != nil {
		t.Fatal(err)
	}
	c[0] = 99
	if !a.Centroid(1).Equal(pivot.Signature{1, 2, 3}) {
		t.Fatal("assigner shares storage with caller's centroid")
	}
}
