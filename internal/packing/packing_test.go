package packing

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestFFDBasic(t *testing.T) {
	items := []Item{{0, 5}, {1, 4}, {2, 3}, {3, 3}, {4, 2}}
	bins, err := FirstFitDecreasing(items, 8)
	if err != nil {
		t.Fatal(err)
	}
	// FFD: sizes [5,4,3,3,2] -> bin0 [5,3]=8, bin1 [4,3]=7, and the final 2
	// fits neither (8+2, 7+2 > 8), opening bin2.
	if len(bins) != 3 {
		t.Fatalf("got %d bins, want 3: %+v", len(bins), bins)
	}
	wantSizes := []int{8, 7, 2}
	for i, w := range wantSizes {
		if bins[i].Size != w {
			t.Fatalf("bin %d size = %d, want %d", i, bins[i].Size, w)
		}
	}
}

func TestFFDEveryItemPackedOnce(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.IntN(100)
		cap := 10 + rng.IntN(90)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{ID: i, Size: rng.IntN(cap + 20)} // some oversized
		}
		bins, err := FirstFitDecreasing(items, cap)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]int)
		for _, b := range bins {
			total := 0
			for _, id := range b.Items {
				seen[id]++
				total += items[id].Size
			}
			if total != b.Size {
				t.Fatalf("bin reports size %d, items sum to %d", b.Size, total)
			}
			if b.Size > cap && len(b.Items) != 1 {
				t.Fatalf("over-capacity bin with %d items", len(b.Items))
			}
		}
		for i := range items {
			if seen[i] != 1 {
				t.Fatalf("item %d packed %d times", i, seen[i])
			}
		}
	}
}

// FFD guarantee: at most 3/2 the optimal bin count (we compare against the
// size lower bound, which is <= OPT, so the check is conservative but must
// still hold with slack for oversized items).
func TestFFDNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 2))
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.IntN(200)
		cap := 100
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{ID: i, Size: 1 + rng.IntN(cap)}
		}
		bins, err := FirstFitDecreasing(items, cap)
		if err != nil {
			t.Fatal(err)
		}
		lb := LowerBound(items, cap)
		// The 11/9 OPT + 1 asymptotic bound, checked against the LP bound.
		if float64(len(bins)) > 11.0/9.0*float64(lb)+1 {
			t.Fatalf("FFD used %d bins, lower bound %d", len(bins), lb)
		}
	}
}

func TestFFDOversizedItems(t *testing.T) {
	items := []Item{{0, 150}, {1, 150}, {2, 10}}
	bins, err := FirstFitDecreasing(items, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 3 {
		t.Fatalf("got %d bins, want 3 (two dedicated oversized + one normal)", len(bins))
	}
}

func TestFFDEmpty(t *testing.T) {
	bins, err := FirstFitDecreasing(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 0 {
		t.Fatalf("packing nothing produced %d bins", len(bins))
	}
}

func TestFFDErrors(t *testing.T) {
	if _, err := FirstFitDecreasing([]Item{{0, 1}}, 0); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := FirstFitDecreasing([]Item{{0, -1}}, 10); err == nil {
		t.Error("negative size should fail")
	}
}

func TestFFDDeterministic(t *testing.T) {
	items := []Item{{3, 5}, {1, 5}, {2, 5}, {0, 5}}
	a, _ := FirstFitDecreasing(items, 10)
	b, _ := FirstFitDecreasing(items, 10)
	if len(a) != len(b) {
		t.Fatal("non-deterministic bin count")
	}
	for i := range a {
		if len(a[i].Items) != len(b[i].Items) {
			t.Fatal("non-deterministic packing")
		}
		for j := range a[i].Items {
			if a[i].Items[j] != b[i].Items[j] {
				t.Fatal("non-deterministic item order")
			}
		}
	}
	// Equal sizes must pack in ascending ID order.
	if a[0].Items[0] != 0 || a[0].Items[1] != 1 {
		t.Fatalf("tie-break by ID violated: %+v", a)
	}
}

func TestLowerBound(t *testing.T) {
	items := []Item{{0, 60}, {1, 60}, {2, 60}}
	if got := LowerBound(items, 100); got != 2 {
		t.Fatalf("LowerBound = %d, want 2", got)
	}
	over := []Item{{0, 150}, {1, 150}, {2, 150}}
	if got := LowerBound(over, 100); got != 5 {
		// ceil(450/100) = 5 > 3 oversized
		t.Fatalf("LowerBound oversized = %d, want 5", got)
	}
}

func TestSequentialFillPreservesOrder(t *testing.T) {
	items := []Item{{10, 3}, {20, 3}, {30, 3}, {40, 3}, {50, 3}}
	bins, err := SequentialFill(items, 7)
	if err != nil {
		t.Fatal(err)
	}
	// 3+3 fit, third overflows: bins [10,20], [30,40], [50].
	if len(bins) != 3 {
		t.Fatalf("got %d bins, want 3: %+v", len(bins), bins)
	}
	var flat []int
	for _, b := range bins {
		flat = append(flat, b.Items...)
	}
	want := []int{10, 20, 30, 40, 50}
	for i, id := range want {
		if flat[i] != id {
			t.Fatalf("order not preserved: %v", flat)
		}
	}
}

func TestSequentialFillContiguity(t *testing.T) {
	// The property TARDIS relies on: every bin is a contiguous run of the
	// input order.
	rng := rand.New(rand.NewPCG(3, 14))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(100)
		cap := 5 + rng.IntN(50)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{ID: i, Size: rng.IntN(cap + 10)}
		}
		bins, err := SequentialFill(items, cap)
		if err != nil {
			t.Fatal(err)
		}
		next := 0
		for _, b := range bins {
			for _, id := range b.Items {
				if id != next {
					t.Fatalf("bin items not contiguous: expected %d, got %d", next, id)
				}
				next++
			}
			if b.Size > cap && len(b.Items) != 1 {
				t.Fatalf("over-capacity bin with %d items", len(b.Items))
			}
		}
		if next != n {
			t.Fatalf("packed %d of %d items", next, n)
		}
	}
}

func TestSequentialFillOversized(t *testing.T) {
	bins, err := SequentialFill([]Item{{0, 5}, {1, 100}, {2, 5}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 3 {
		t.Fatalf("got %d bins, want 3: %+v", len(bins), bins)
	}
	if len(bins[1].Items) != 1 || bins[1].Items[0] != 1 {
		t.Fatalf("oversized item not isolated: %+v", bins)
	}
}

func TestSequentialFillEmptyAndErrors(t *testing.T) {
	bins, err := SequentialFill(nil, 10)
	if err != nil || len(bins) != 0 {
		t.Fatalf("empty input: %v, %v", bins, err)
	}
	if _, err := SequentialFill([]Item{{0, 1}}, 0); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := SequentialFill([]Item{{0, -1}}, 10); err == nil {
		t.Error("negative size should fail")
	}
}

func TestFFDBinsRespectCapacityProperty(t *testing.T) {
	f := func(sizes []uint8, capSeed uint8) bool {
		cap := 1 + int(capSeed)
		items := make([]Item, len(sizes))
		for i, s := range sizes {
			items[i] = Item{ID: i, Size: int(s) % (cap + 1)} // all fit
		}
		bins, err := FirstFitDecreasing(items, cap)
		if err != nil {
			return false
		}
		for _, b := range bins {
			if b.Size > cap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
