// Package packing solves the Node Packing Problem of paper Definition 13:
// grouping the leaf nodes of a group's trie into as few physical partitions
// as possible such that no partition exceeds the storage capacity c. The
// problem is bin packing (NP-hard), so, following the paper, we use the
// First Fit Decreasing (FFD) approximation — O(m log m) with a worst-case
// ratio of 3/2 (and the classic 11/9·OPT + 6/9 asymptotic guarantee).
package packing

import (
	"fmt"
	"sort"
)

// Item is one object to pack: an opaque caller ID and a non-negative size.
type Item struct {
	ID   int
	Size int
}

// Bin is one packed partition: the IDs of the items it holds and their total
// size.
type Bin struct {
	Items []int
	Size  int
}

// FirstFitDecreasing packs items into bins of the given capacity. Items are
// considered in descending size order; each is placed into the first open
// bin with room, opening a new bin when none fits. Items larger than the
// capacity are given a dedicated bin each (the capacity is a soft constraint
// in CLIMBER — an unsplittable oversized trie leaf still needs a home).
//
// Ties in size are broken by ascending item ID so the packing is
// deterministic across runs.
func FirstFitDecreasing(items []Item, capacity int) ([]Bin, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("packing: capacity must be positive, got %d", capacity)
	}
	for _, it := range items {
		if it.Size < 0 {
			return nil, fmt.Errorf("packing: item %d has negative size %d", it.ID, it.Size)
		}
	}
	sorted := make([]Item, len(items))
	copy(sorted, items)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Size != sorted[j].Size {
			return sorted[i].Size > sorted[j].Size
		}
		return sorted[i].ID < sorted[j].ID
	})

	var bins []Bin
	for _, it := range sorted {
		placed := false
		for b := range bins {
			if bins[b].Size+it.Size <= capacity {
				bins[b].Items = append(bins[b].Items, it.ID)
				bins[b].Size += it.Size
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, Bin{Items: []int{it.ID}, Size: it.Size})
		}
	}
	return bins, nil
}

// SequentialFill packs items into bins preserving the given item order: each
// bin is filled greedily until the next item would overflow it. Unlike FFD,
// the packing keeps neighbouring items together — the policy TARDIS uses so
// that a physical partition covers a contiguous range of sigTree leaves
// (spatial locality matters more than bin count there). Oversized items get
// a dedicated bin.
func SequentialFill(items []Item, capacity int) ([]Bin, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("packing: capacity must be positive, got %d", capacity)
	}
	var bins []Bin
	var cur Bin
	for _, it := range items {
		if it.Size < 0 {
			return nil, fmt.Errorf("packing: item %d has negative size %d", it.ID, it.Size)
		}
		if len(cur.Items) > 0 && cur.Size+it.Size > capacity {
			bins = append(bins, cur)
			cur = Bin{}
		}
		cur.Items = append(cur.Items, it.ID)
		cur.Size += it.Size
	}
	if len(cur.Items) > 0 {
		bins = append(bins, cur)
	}
	return bins, nil
}

// LowerBound returns the information-theoretic lower bound on the number of
// bins: ceil(total size / capacity), with a floor of the number of oversized
// items. Useful for tests and for reporting packing quality.
func LowerBound(items []Item, capacity int) int {
	var total, oversized int
	for _, it := range items {
		total += it.Size
		if it.Size > capacity {
			oversized++
		}
	}
	lb := (total + capacity - 1) / capacity
	if oversized > lb {
		lb = oversized
	}
	return lb
}
