package experiments

import (
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"time"

	"climber"
	"climber/internal/dataset"
	"climber/internal/server"
	"climber/internal/shard"
)

// ShardedWorkload measures the horizontal-scaling path the paper's Spark
// deployment motivates (Section VII runs on a 112-core cluster): the same
// dataset served by one climber.DB versus split round-robin over N shard
// DBs behind real HTTP servers and a scatter-gather router. It reports
// query latency for the unsharded DB (in-process), a single shard over
// HTTP, and the router (full scatter + merge), the answer agreement
// between the sharded and unsharded deployments, and the rendezvous spread
// of a routed append burst.
func ShardedWorkload(s Scale, workDir string, out io.Writer) error {
	const nShards = 4
	n := s.BaseSize
	searches := 10 * s.Queries

	ds, err := dataset.ByName("randomwalk", n, 7)
	if err != nil {
		return err
	}
	cfg := climberConfig(s, n)
	buildOpts := func(pivots int) []climber.Option {
		opts := []climber.Option{
			climber.WithSegments(cfg.Segments),
			climber.WithPivots(pivots),
			climber.WithPrefixLen(cfg.PrefixLen),
			climber.WithCapacity(cfg.Capacity),
			climber.WithBlockSize(cfg.BlockSize),
			climber.WithSeed(cfg.Seed),
		}
		if PartitionCacheBytes > 0 {
			opts = append(opts, climber.WithPartitionCacheBytes(PartitionCacheBytes), climber.WithMmap(PartitionCacheMmap))
		}
		return opts
	}
	dir, err := os.MkdirTemp(workDir, "sharded-")
	if err != nil {
		return err
	}

	full, err := climber.BuildDataset(filepath.Join(dir, "full"), ds, buildOpts(cfg.NumPivots)...)
	if err != nil {
		return err
	}
	defer full.Close()

	// Shard DBs behind real HTTP servers; per-shard pivot counts re-clamp
	// to the smaller per-shard sample.
	shardCfg := clampPivots(cfg, n/nShards)
	shardOpts := buildOpts(shardCfg.NumPivots)
	shardDirs := climber.ShardDirs(dir, nShards)
	topo := &shard.Topology{}
	var servers []*httptest.Server
	defer func() {
		for _, ts := range servers {
			ts.Close()
		}
	}()
	var shardDBs []*climber.DB
	defer func() { climber.CloseShards(shardDBs) }()
	for i, sub := range shard.SplitDataset(ds, nShards) {
		db, err := climber.BuildDataset(shardDirs[i], sub, shardOpts...)
		if err != nil {
			return err
		}
		if err := db.Close(); err != nil { // reopened below via the multi-open helper
			return err
		}
	}
	shardDBs, err = climber.OpenShards(shardDirs, shardOpts...)
	if err != nil {
		return err
	}
	for i, db := range shardDBs {
		ts := httptest.NewServer(server.New(db, server.Config{}).Handler())
		servers = append(servers, ts)
		topo.Shards = append(topo.Shards, shard.Info{ID: filepath.Base(shardDirs[i]), URL: ts.URL})
	}
	if err := topo.Validate(); err != nil {
		return err
	}
	router := shard.NewRouter(topo, shard.Config{})
	defer router.Close()
	routerSrv := httptest.NewServer(router.Handler())
	defer routerSrv.Close()
	client := shard.NewClient(routerSrv.URL)
	shard0 := shard.NewClient(servers[0].URL)

	_, qs := dataset.Queries(ds, 50, 21)
	var directLat, oneShardLat, routedLat []time.Duration
	agree := 0.0
	for q := 0; q < searches; q++ {
		query := qs[q%len(qs)]

		start := time.Now()
		want, err := full.Search(query, s.K)
		if err != nil {
			return err
		}
		directLat = append(directLat, time.Since(start))

		start = time.Now()
		if _, err := shard0.Search(query, s.K); err != nil {
			return err
		}
		oneShardLat = append(oneShardLat, time.Since(start))

		start = time.Now()
		got, err := client.Search(query, s.K)
		if err != nil {
			return err
		}
		routedLat = append(routedLat, time.Since(start))

		// Agreement: fraction of the unsharded answer set the sharded
		// deployment reproduced (IDs are comparable thanks to the
		// round-robin split's exact global-ID encoding).
		wantIDs := make(map[int]struct{}, len(want))
		for _, r := range want {
			wantIDs[r.ID] = struct{}{}
		}
		hit := 0
		for _, r := range got.Results {
			if _, ok := wantIDs[r.ID]; ok {
				hit++
			}
		}
		if len(want) > 0 {
			agree += float64(hit) / float64(len(want))
		}
	}
	agree /= float64(searches)

	// Append burst through the router: rendezvous spread across shards.
	burst := dataset.RandomWalk(dataset.RandomWalkLength, 64, 9999)
	series := make([][]float64, burst.Len())
	for i := range series {
		series[i] = burst.Get(i)
	}
	ids, err := client.Append(series)
	if err != nil {
		return err
	}
	perShard := make([]int, nShards)
	for _, id := range ids {
		perShard[id%topo.Stride()]++
	}
	spread := make([]string, nShards)
	for i, c := range perShard {
		spread[i] = fmt.Sprintf("%s=%d", topo.Shards[i].ID, c)
	}
	sort.Strings(spread)

	tab := &Table{
		Caption: fmt.Sprintf("Sharded deployment: %d records over %d shards, %d searches x K=%d (router: scatter-gather + global top-k merge)",
			n, nShards, searches, s.K),
		Header: []string{"path", "ops", "avg-ms", "p50-ms", "p95-ms", "max-ms"},
	}
	addLatRow(tab, "unsharded (in-proc)", directLat)
	addLatRow(tab, "one shard (HTTP)", oneShardLat)
	addLatRow(tab, "router (HTTP, merged)", routedLat)
	if err := tab.Write(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "answer agreement with the unsharded DB: %.3f (approximate engines on different skeletons)\n", agree)
	fmt.Fprintf(out, "append burst of %d series rendezvous-routed: %v\n", len(series), spread)
	return nil
}
