package experiments

import (
	"fmt"
	"io"

	"climber/internal/core"
	"climber/internal/dpisax"
	"climber/internal/tardis"
)

// buildCosts builds the three indexing systems over one dataset and
// reports (construction time ms, global index size bytes) per system.
func buildCosts(s Scale, workDir, dsName string, n int) (map[string][2]int64, error) {
	e, err := newEnv(workDir, dsName, n, 4321)
	if err != nil {
		return nil, err
	}
	out := make(map[string][2]int64)

	cix, err := core.Build(e.cl, e.bs, climberConfig(s, n), "climber-"+dsName)
	if err != nil {
		return nil, fmt.Errorf("fig8 %s: climber build: %w", dsName, err)
	}
	out["CLIMBER"] = [2]int64{cix.Stats.Total.Milliseconds(), int64(cix.Skeleton().EncodedSize())}

	tix, err := tardis.Build(e.cl, e.bs, tardisConfig(s, n), "tardis-"+dsName)
	if err != nil {
		return nil, fmt.Errorf("fig8 %s: tardis build: %w", dsName, err)
	}
	out["TARDIS"] = [2]int64{tix.Stats.Total.Milliseconds(), int64(tix.TreeSize())}

	// DPiSAX's published implementation suffers from inefficient updates to
	// its split-table structures during construction (paper Section VII-B:
	// "DPiSAX takes the longest time to construct its index"); its tree
	// build is cheap here, but the redistribution pass dominates either
	// way, so report measured values faithfully.
	dix, err := dpisax.Build(e.cl, e.bs, dpisaxConfig(s, n), "dpisax-"+dsName)
	if err != nil {
		return nil, fmt.Errorf("fig8 %s: dpisax build: %w", dsName, err)
	}
	out["DPiSAX"] = [2]int64{dix.Stats.Total.Milliseconds(), int64(dix.TreeSize())}
	return out, nil
}

var fig8Systems = []string{"CLIMBER", "DPiSAX", "TARDIS"}

// Fig8Build reproduces Figures 8(a) and 8(b): index construction time and
// global index size per dataset.
func Fig8Build(s Scale, workDir string, out io.Writer) error {
	tTime := &Table{
		Caption: fmt.Sprintf("Figure 8(a) — index construction time (ms), size=%d", s.BaseSize),
		Header:  append([]string{"dataset"}, fig8Systems...),
	}
	tSize := &Table{
		Caption: fmt.Sprintf("Figure 8(b) — global index size (bytes), size=%d", s.BaseSize),
		Header:  append([]string{"dataset"}, fig8Systems...),
	}
	for _, name := range DatasetNames() {
		res, err := buildCosts(s, workDir, name, s.BaseSize)
		if err != nil {
			return err
		}
		tTime.Add(name, res["CLIMBER"][0], res["DPiSAX"][0], res["TARDIS"][0])
		tSize.Add(name, res["CLIMBER"][1], res["DPiSAX"][1], res["TARDIS"][1])
	}
	if err := tTime.Write(out); err != nil {
		return err
	}
	return tSize.Write(out)
}

// Fig8Scale reproduces Figures 8(c) and 8(d): construction time and global
// index size on RandomWalk while the dataset size grows (both expected to
// grow roughly linearly).
func Fig8Scale(s Scale, workDir string, out io.Writer) error {
	tTime := &Table{
		Caption: "Figure 8(c) — construction time (ms) vs dataset size (RandomWalk)",
		Header:  append([]string{"size"}, fig8Systems...),
	}
	tSize := &Table{
		Caption: "Figure 8(d) — global index size (bytes) vs dataset size (RandomWalk)",
		Header:  append([]string{"size"}, fig8Systems...),
	}
	for _, n := range s.Sizes {
		res, err := buildCosts(s, workDir, "randomwalk", n)
		if err != nil {
			return err
		}
		tTime.Add(n, res["CLIMBER"][0], res["DPiSAX"][0], res["TARDIS"][0])
		tSize.Add(n, res["CLIMBER"][1], res["DPiSAX"][1], res["TARDIS"][1])
	}
	if err := tTime.Write(out); err != nil {
		return err
	}
	return tSize.Write(out)
}
