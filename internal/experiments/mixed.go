package experiments

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"climber"
	"climber/internal/dataset"
)

// MixedWorkload measures the serving-layer scenario the paper's static
// evaluation never exercises: searches racing live ingestion. It builds a
// CLIMBER database, then runs concurrent writer goroutines (appending fresh
// series through the WAL + delta ingestion pipeline) against concurrent
// reader goroutines (kNN searches), and reports append and search latency
// side by side together with the pipeline's compaction counters and a
// visibility check (every acked series must be findable immediately).
func MixedWorkload(s Scale, workDir string, out io.Writer) error {
	const (
		writers     = 2
		readers     = 4
		batchSize   = 16
		seriesLen   = dataset.RandomWalkLength
		compactRecs = 512
	)
	n := s.BaseSize
	appendBatches := 10 * s.Queries
	searches := 40 * s.Queries

	ds, err := dataset.ByName("randomwalk", n, 7)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp(workDir, "mixed-")
	if err != nil {
		return err
	}
	cfg := climberConfig(s, n)
	opts := []climber.Option{
		climber.WithSegments(cfg.Segments),
		climber.WithPivots(cfg.NumPivots),
		climber.WithPrefixLen(cfg.PrefixLen),
		climber.WithCapacity(cfg.Capacity),
		climber.WithBlockSize(cfg.BlockSize),
		climber.WithSeed(cfg.Seed),
		climber.WithCompactionRecords(compactRecs),
		climber.WithCompactionAge(500 * time.Millisecond),
	}
	if PartitionCacheBytes > 0 {
		opts = append(opts, climber.WithPartitionCacheBytes(PartitionCacheBytes), climber.WithMmap(PartitionCacheMmap))
	}
	db, err := climber.BuildDataset(dir, ds, opts...)
	if err != nil {
		return err
	}
	defer db.Close()

	_, qs := dataset.Queries(ds, 50, 21)
	fresh := dataset.RandomWalk(seriesLen, appendBatches*batchSize, 12345)

	var (
		mu             sync.Mutex
		appendLat      []time.Duration
		searchLat      []time.Duration
		firstErr       error
		appendedSeries int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	batch := make(chan int, appendBatches)
	for b := 0; b < appendBatches; b++ {
		batch <- b
	}
	close(batch)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range batch {
				recs := make([][]float64, batchSize)
				for i := range recs {
					recs[i] = fresh.Get(b*batchSize + i)
				}
				start := time.Now()
				if _, err := db.Append(recs); err != nil {
					fail(err)
					return
				}
				d := time.Since(start)
				mu.Lock()
				appendLat = append(appendLat, d)
				appendedSeries += batchSize
				mu.Unlock()
			}
		}()
	}
	query := make(chan int, searches)
	for q := 0; q < searches; q++ {
		query <- q
	}
	close(query)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range query {
				start := time.Now()
				if _, err := db.Search(qs[q%len(qs)], s.K); err != nil {
					fail(err)
					return
				}
				d := time.Since(start)
				mu.Lock()
				searchLat = append(searchLat, d)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	// Visibility check: every acked series answers a self-query at distance
	// ~0, whether it is still in the delta or already compacted.
	visible := 0
	const probes = 20
	for i := 0; i < probes; i++ {
		q := fresh.Get((i * 37) % fresh.Len())
		res, err := db.Search(q, 5)
		if err != nil {
			return err
		}
		if len(res) > 0 && res[0].Dist < 1e-3 {
			visible++
		}
	}
	ing := db.IngestStats()
	if err := db.Flush(); err != nil {
		return err
	}

	tab := &Table{
		Caption: fmt.Sprintf("Mixed read/write workload (%d searches x K=%d vs %d appended series, %dw/%dr goroutines)",
			searches, s.K, appendedSeries, writers, readers),
		Header: []string{"op", "ops", "avg-ms", "p50-ms", "p95-ms", "max-ms"},
	}
	addLatRow(tab, "append-batch", appendLat)
	addLatRow(tab, "search", searchLat)
	if err := tab.Write(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "ingest: %d series acked, %d compactions (%d series), delta at sample: %d records, WAL at sample: %d bytes\n",
		ing.AppendedSeries, ing.Compactions, ing.CompactedSeries, ing.DeltaRecords, ing.WALBytes)
	fmt.Fprintf(out, "visibility: %d/%d appended series answered their self-query at distance ~0\n", visible, probes)
	return nil
}

// addLatRow folds one latency population into a table row.
func addLatRow(tab *Table, name string, lat []time.Duration) {
	if len(lat) == 0 {
		tab.Add(name, 0, "-", "-", "-", "-")
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var total time.Duration
	for _, d := range lat {
		total += d
	}
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	tab.Add(name, len(lat),
		ms(total/time.Duration(len(lat))), ms(pct(0.5)), ms(pct(0.95)), ms(lat[len(lat)-1]))
}
