// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VII) at laptop scale. Each runner builds the systems
// involved from scratch on seeded synthetic datasets, executes the paper's
// query workload, and prints rows mirroring the paper's plots.
//
// Absolute numbers differ from the paper (their testbed is a 112-core
// Spark/HDFS cluster over terabytes; ours is a simulated multi-worker
// runtime over megabytes) — the reproduced artefacts are the *shapes*: who
// wins, by what rough factor, and where the crossovers fall. The CLI
// harness (cmd/climber-bench) regenerates every artefact on demand.
package experiments

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"climber/internal/cluster"
	"climber/internal/core"
	"climber/internal/dataset"
	"climber/internal/dpisax"
	"climber/internal/dss"
	"climber/internal/series"
	"climber/internal/tardis"
)

// Scale sizes an experiment run. The presets keep the partition-to-K
// proportions of the paper (partitions hold ~10-20x K records) so accuracy
// shapes carry over.
type Scale struct {
	Name     string
	BaseSize int   // records per dataset for fixed-size experiments
	Sizes    []int // size sweep for scalability experiments
	K        int   // kNN answer size
	Queries  int   // queries averaged per measurement (paper: 50)
}

// PartitionCacheBytes, when positive, enables the shared partition cache
// with that byte budget on every cluster the experiment runners create
// (cmd/climber-bench -cache-bytes). The default 0 keeps the cache off so
// the reproduced partition-load costs stay paper-faithful.
var PartitionCacheBytes int64

// PartitionCacheMmap, when set together with PartitionCacheBytes, makes
// those caches memory-map partition files instead of decoding them onto
// the heap (cmd/climber-bench -mmap).
var PartitionCacheMmap bool

// Capacity returns the partition capacity for a dataset of n records:
// n/25 bounded below, yielding a ~25-30 partition layout. This granularity
// is where the paper's shapes reproduce at laptop scale: fine enough that
// TARDIS/DPiSAX single-partition searches fragment neighbourhoods (as the
// paper's 12k-partition deployments do), while CLIMBER's adaptive
// multi-partition search holds its recall.
func (s Scale) Capacity(n int) int {
	c := n / 25
	if c < 200 {
		c = 200
	}
	return c
}

// Scales returns the named presets.
func Scales() map[string]Scale {
	return map[string]Scale{
		"small": {
			Name: "small", BaseSize: 6000,
			Sizes:   []int{2000, 4000, 6000, 8000, 10000},
			K:       50,
			Queries: 8,
		},
		"medium": {
			Name: "medium", BaseSize: 20000,
			Sizes:   []int{10000, 20000, 30000, 40000, 50000},
			K:       100,
			Queries: 25,
		},
		"large": {
			Name: "large", BaseSize: 60000,
			Sizes:   []int{20000, 40000, 60000, 80000, 100000},
			K:       200,
			Queries: 15,
		},
	}
}

// Runner executes one experiment, writing its table(s) to out.
type Runner func(s Scale, workDir string, out io.Writer) error

// Registry maps experiment IDs (the paper's figure/table numbers) to
// runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig7a":        Fig7QueryTime,
		"fig7b":        Fig7Recall,
		"fig7cd":       Fig7Scale,
		"fig8ab":       Fig8Build,
		"fig8cd":       Fig8Scale,
		"fig9":         Fig9KSweep,
		"fig10":        Fig10Pivots,
		"fig11a":       Fig11Adaptive,
		"fig11b":       Fig11ODSmallest,
		"fig12":        Fig12PrefixLen,
		"table1":       Table1Systems,
		"abl-decay":    AblationDecay,
		"abl-dual":     AblationDual,
		"abl-sampling": AblationSampling,
		"landscape":    Landscape,
		"mixed":        MixedWorkload,
		"sharded":      ShardedWorkload,
		"budget":       BudgetExperiment,
		"buildscale":   BuildScale,
		"memres":       MemRes,
		"tracing":      TracingOverhead,
	}
}

// IDs returns the experiment IDs in presentation order.
func IDs() []string {
	ids := make([]string, 0, len(Registry()))
	for id := range Registry() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// DatasetNames returns the evaluation datasets in the paper's order.
func DatasetNames() []string { return dataset.Names() }

// ---------------------------------------------------------------------------
// Shared build/evaluate helpers
// ---------------------------------------------------------------------------

// env bundles one dataset materialised on a simulated cluster.
type env struct {
	ds *series.Dataset
	cl *cluster.Cluster
	bs *cluster.BlockSet
}

// newEnv generates a dataset and ingests it into a fresh cluster under
// workDir.
func newEnv(workDir, name string, n int, seed uint64) (*env, error) {
	ds, err := dataset.ByName(name, n, seed)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp(workDir, "env-"+name+"-")
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(cluster.Config{NumNodes: 2, WorkersPerNode: 2, BaseDir: dir})
	if err != nil {
		return nil, err
	}
	if PartitionCacheBytes > 0 {
		cl.EnablePartitionCache(PartitionCacheBytes)
		cl.EnableMmap(PartitionCacheMmap)
	}
	blockSize := n / 20
	if blockSize < 100 {
		blockSize = 100
	}
	bs, err := cl.IngestBlocks(ds, blockSize, name)
	if err != nil {
		return nil, err
	}
	return &env{ds: ds, cl: cl, bs: bs}, nil
}

// climberConfig returns the paper-default CLIMBER configuration scaled to a
// dataset of n records.
func climberConfig(s Scale, n int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Capacity = s.Capacity(n)
	cfg.BlockSize = n / 20
	if cfg.BlockSize < 100 {
		cfg.BlockSize = 100
	}
	return clampPivots(cfg, n)
}

// clampPivots caps the pivot count so it never exceeds half the expected
// sample (pivots are drawn from the sample without replacement). The paper
// presets never hit the cap; it exists so tiny smoke-test scales work.
func clampPivots(cfg core.Config, n int) core.Config {
	maxPivots := int(float64(n) * cfg.SampleRate / 2)
	if cfg.NumPivots > maxPivots {
		cfg.NumPivots = maxPivots
	}
	if cfg.NumPivots < cfg.PrefixLen {
		cfg.NumPivots = cfg.PrefixLen
	}
	return cfg
}

// baselineCapacity aligns TARDIS/DPiSAX partition sizes with CLIMBER's so
// per-query data access is comparable (as in the paper's setup, where all
// systems share the HDFS block size).
func tardisConfig(s Scale, n int) tardis.Config {
	cfg := tardis.DefaultConfig()
	cfg.Capacity = s.Capacity(n)
	return cfg
}

func dpisaxConfig(s Scale, n int) dpisax.Config {
	cfg := dpisax.DefaultConfig()
	cfg.Capacity = s.Capacity(n)
	return cfg
}

// evalResult aggregates a query workload's measurements.
type evalResult struct {
	Recall     float64
	AvgTime    time.Duration
	AvgParts   float64
	AvgRecords float64
}

// groundTruth computes the exact kNN answer per query via the in-memory
// oracle.
func groundTruth(ds *series.Dataset, qs [][]float64, k int) [][]series.Result {
	out := make([][]series.Result, len(qs))
	for i, q := range qs {
		out[i] = dss.SearchDataset(ds, q, k)
	}
	return out
}

// searchFunc abstracts the system under evaluation.
type searchFunc func(q []float64, k int) ([]series.Result, int, int, error)

// evaluate runs the workload and aggregates recall/time/effort. One
// untimed warm-up query runs first so that cold file caches do not distort
// the first timed measurement.
func evaluate(qs [][]float64, exact [][]series.Result, k int, search searchFunc) (evalResult, error) {
	var r evalResult
	var total time.Duration
	if len(qs) > 0 {
		if _, _, _, err := search(qs[0], k); err != nil {
			return r, err
		}
	}
	for i, q := range qs {
		start := time.Now()
		res, parts, recs, err := search(q, k)
		if err != nil {
			return r, err
		}
		total += time.Since(start)
		r.Recall += series.Recall(res, exact[i])
		r.AvgParts += float64(parts)
		r.AvgRecords += float64(recs)
	}
	n := float64(len(qs))
	r.Recall /= n
	r.AvgTime = total / time.Duration(len(qs))
	r.AvgParts /= n
	r.AvgRecords /= n
	return r, nil
}

// climberSearch adapts a core index to searchFunc.
func climberSearch(ix *core.Index, v core.Variant) searchFunc {
	return func(q []float64, k int) ([]series.Result, int, int, error) {
		res, err := ix.Search(q, core.SearchOptions{K: k, Variant: v})
		if err != nil {
			return nil, 0, 0, err
		}
		return res.Results, res.Stats.PartitionsScanned, res.Stats.RecordsScanned, nil
	}
}

func tardisSearch(ix *tardis.Index) searchFunc {
	return func(q []float64, k int) ([]series.Result, int, int, error) {
		res, err := ix.Search(q, k)
		if err != nil {
			return nil, 0, 0, err
		}
		return res.Results, res.Stats.PartitionsScanned, res.Stats.RecordsScanned, nil
	}
}

func dpisaxSearch(ix *dpisax.Index) searchFunc {
	return func(q []float64, k int) ([]series.Result, int, int, error) {
		res, err := ix.Search(q, k)
		if err != nil {
			return nil, 0, 0, err
		}
		return res.Results, res.Stats.PartitionsScanned, res.Stats.RecordsScanned, nil
	}
}

// dssSearch adapts the exact distributed scan.
func dssSearch(e *env) searchFunc {
	return func(q []float64, k int) ([]series.Result, int, int, error) {
		res, err := dss.Search(e.cl, e.bs, q, k)
		if err != nil {
			return nil, 0, 0, err
		}
		return res, len(e.bs.Paths), e.bs.Total, nil
	}
}

// ms renders a duration in milliseconds with sensible precision.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}
