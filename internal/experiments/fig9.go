package experiments

import (
	"fmt"
	"io"

	"climber/internal/core"
	"climber/internal/dataset"
	"climber/internal/dpisax"
	"climber/internal/tardis"
)

// Fig9KSweep reproduces Figure 9: recall (a) and query time (b) while the
// answer size K varies from small to stress-test values. The paper sweeps
// K in {50, 100, 500, 1000, 2000} at terabyte scale; we sweep proportional
// multiples of the scale's base K.
func Fig9KSweep(s Scale, workDir string, out io.Writer) error {
	n := s.BaseSize
	e, err := newEnv(workDir, "randomwalk", n, 555)
	if err != nil {
		return err
	}
	_, qs := dataset.Queries(e.ds, s.Queries, 888)

	cix, err := core.Build(e.cl, e.bs, climberConfig(s, n), "climber-fig9")
	if err != nil {
		return fmt.Errorf("fig9: climber build: %w", err)
	}
	tix, err := tardis.Build(e.cl, e.bs, tardisConfig(s, n), "tardis-fig9")
	if err != nil {
		return fmt.Errorf("fig9: tardis build: %w", err)
	}
	dix, err := dpisax.Build(e.cl, e.bs, dpisaxConfig(s, n), "dpisax-fig9")
	if err != nil {
		return fmt.Errorf("fig9: dpisax build: %w", err)
	}

	// K multiples mirroring the paper's 50..2000 sweep around K=500:
	// 0.1x, 0.2x, 1x, 2x, 4x of the scale's base K.
	kValues := []int{s.K / 10, s.K / 5, s.K, s.K * 2, s.K * 4}
	for i, k := range kValues {
		if k < 1 {
			kValues[i] = 1
		}
	}

	systems := []struct {
		name   string
		search func(k int) searchFunc
	}{
		{"CLIMBER-kNN", func(int) searchFunc { return climberSearch(cix, core.VariantKNN) }},
		{"CLIMBER-Adaptive-2X", func(int) searchFunc { return climberSearch(cix, core.VariantAdaptive2X) }},
		{"CLIMBER-Adaptive-4X", func(int) searchFunc { return climberSearch(cix, core.VariantAdaptive4X) }},
		{"TARDIS", func(int) searchFunc { return tardisSearch(tix) }},
		{"DPiSAX", func(int) searchFunc { return dpisaxSearch(dix) }},
		{"Dss", func(int) searchFunc { return dssSearch(e) }},
	}

	header := []string{"system"}
	for _, k := range kValues {
		header = append(header, fmt.Sprintf("K=%d", k))
	}
	tRecall := &Table{
		Caption: fmt.Sprintf("Figure 9(a) — recall vs K (RandomWalk, size=%d)", n),
		Header:  header,
	}
	tTime := &Table{
		Caption: fmt.Sprintf("Figure 9(b) — query time (ms) vs K (RandomWalk, size=%d)", n),
		Header:  header,
	}
	for _, sys := range systems {
		recallRow := []any{sys.name}
		timeRow := []any{sys.name}
		for _, k := range kValues {
			exact := groundTruth(e.ds, qs, k)
			r, err := evaluate(qs, exact, k, sys.search(k))
			if err != nil {
				return fmt.Errorf("fig9 %s K=%d: %w", sys.name, k, err)
			}
			recallRow = append(recallRow, r.Recall)
			timeRow = append(timeRow, ms(r.AvgTime))
		}
		tRecall.Add(recallRow...)
		tTime.Add(timeRow...)
	}
	if err := tRecall.Write(out); err != nil {
		return err
	}
	return tTime.Write(out)
}
