package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyScale keeps runner smoke tests fast; real measurements come from the
// CLI harness and benchmarks at the preset scales.
func tinyScale() Scale {
	return Scale{
		Name:     "tiny",
		BaseSize: 3000,
		Sizes:    []int{1000, 2000},
		K:        20,
		Queries:  3,
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every artefact of the paper's evaluation must have a runner, plus the
	// ablations the package calls out.
	want := []string{"fig7a", "fig7b", "fig7cd", "fig8ab", "fig8cd",
		"fig9", "fig10", "fig11a", "fig11b", "fig12", "table1",
		"abl-decay", "abl-dual", "abl-sampling", "landscape", "mixed", "sharded",
		"budget", "buildscale", "memres", "tracing"}
	reg := Registry()
	for _, id := range want {
		if reg[id] == nil {
			t.Errorf("missing runner for %s", id)
		}
	}
	if len(reg) != len(want) {
		t.Errorf("registry holds %d runners, want %d", len(reg), len(want))
	}
	if len(IDs()) != len(want) {
		t.Errorf("IDs() returned %d ids", len(IDs()))
	}
}

func TestScalePresets(t *testing.T) {
	for name, s := range Scales() {
		if s.BaseSize <= 0 || s.K <= 0 || s.Queries <= 0 || len(s.Sizes) == 0 {
			t.Errorf("preset %s incomplete: %+v", name, s)
		}
		if s.Capacity(s.BaseSize) <= 0 {
			t.Errorf("preset %s capacity not positive", name)
		}
		// Presets must supply enough sample records for the default 200
		// pivots (the clamp must not silently distort preset runs).
		if int(float64(s.BaseSize)*0.1/2) < 200 && name != "small" {
			t.Errorf("preset %s base size %d cannot supply 200 pivots", name, s.BaseSize)
		}
	}
}

// runnerSmoke executes a runner at tiny scale and sanity-checks the output.
func runnerSmoke(t *testing.T, id string) string {
	t.Helper()
	var sb strings.Builder
	if err := Registry()[id](tinyScale(), t.TempDir(), &sb); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	out := sb.String()
	if !strings.Contains(out, "##") || len(strings.Split(out, "\n")) < 4 {
		t.Fatalf("%s produced no table:\n%s", id, out)
	}
	return out
}

func TestFig7aSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runner smoke tests are slow")
	}
	out := runnerSmoke(t, "fig7a")
	for _, sys := range fig7Systems {
		if !strings.Contains(out, sys) {
			t.Errorf("fig7a output missing system %s", sys)
		}
	}
}

func TestFig7bSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runner smoke tests are slow")
	}
	out := runnerSmoke(t, "fig7b")
	if !strings.Contains(out, "randomwalk") || !strings.Contains(out, "dna") {
		t.Errorf("fig7b output missing datasets:\n%s", out)
	}
}

func TestFig8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runner smoke tests are slow")
	}
	out := runnerSmoke(t, "fig8ab")
	if !strings.Contains(out, "8(a)") || !strings.Contains(out, "8(b)") {
		t.Errorf("fig8ab output incomplete:\n%s", out)
	}
}

func TestFig9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runner smoke tests are slow")
	}
	out := runnerSmoke(t, "fig9")
	if !strings.Contains(out, "CLIMBER-Adaptive-4X") || !strings.Contains(out, "K=") {
		t.Errorf("fig9 output incomplete:\n%s", out)
	}
}

func TestFig11aSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runner smoke tests are slow")
	}
	out := runnerSmoke(t, "fig11a")
	if !strings.Contains(out, "10m") {
		t.Errorf("fig11a output missing K multiples:\n%s", out)
	}
}

func TestFig11bSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runner smoke tests are slow")
	}
	out := runnerSmoke(t, "fig11b")
	if !strings.Contains(out, "OD-Smallest") {
		t.Errorf("fig11b output incomplete:\n%s", out)
	}
}

func TestFig12Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runner smoke tests are slow")
	}
	out := runnerSmoke(t, "fig12")
	if !strings.Contains(out, "recall-x") {
		t.Errorf("fig12 output incomplete:\n%s", out)
	}
}

func TestTable1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runner smoke tests are slow")
	}
	out := runnerSmoke(t, "table1")
	if !strings.Contains(out, "I.C.T") || !strings.Contains(out, "X") {
		t.Errorf("table1 output missing metrics or X cells:\n%s", out)
	}
}

func TestAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runner smoke tests are slow")
	}
	for _, id := range []string{"abl-decay", "abl-dual", "abl-sampling"} {
		out := runnerSmoke(t, id)
		if !strings.Contains(out, "Ablation") {
			t.Errorf("%s output missing caption:\n%s", id, out)
		}
	}
}

func TestMixedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runner smoke tests are slow")
	}
	out := runnerSmoke(t, "mixed")
	if !strings.Contains(out, "append-batch") || !strings.Contains(out, "search") {
		t.Errorf("mixed output missing latency rows:\n%s", out)
	}
	if !strings.Contains(out, "visibility:") {
		t.Errorf("mixed output missing visibility check:\n%s", out)
	}
}

func TestShardedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runner smoke tests are slow")
	}
	out := runnerSmoke(t, "sharded")
	for _, want := range []string{"unsharded (in-proc)", "router (HTTP, merged)",
		"answer agreement", "rendezvous-routed"} {
		if !strings.Contains(out, want) {
			t.Errorf("sharded output missing %q:\n%s", want, out)
		}
	}
}

func TestBudgetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runner smoke tests are slow")
	}
	out := runnerSmoke(t, "budget")
	for _, want := range []string{"unbounded", "max-partitions=1", "time=",
		"Progressive convergence"} {
		if !strings.Contains(out, want) {
			t.Errorf("budget output missing %q:\n%s", want, out)
		}
	}
}

func TestBuildScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runner smoke tests are slow")
	}
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	BenchJSONPath = jsonPath
	defer func() { BenchJSONPath = "" }()
	out := runnerSmoke(t, "buildscale")
	for _, want := range []string{"workers", "speedup", "SqDistBlocked", "SqDistEarlyAbandonBlocked/loose"} {
		if !strings.Contains(out, want) {
			t.Errorf("buildscale output missing %q:\n%s", want, out)
		}
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("bench JSON not written: %v", err)
	}
	var report struct {
		Builds  []struct{ Workers int }
		Kernels []struct{ Name string }
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("bench JSON malformed: %v", err)
	}
	if len(report.Builds) != 4 || len(report.Kernels) != 6 {
		t.Fatalf("bench JSON has %d builds, %d kernels; want 4 and 6", len(report.Builds), len(report.Kernels))
	}
}

func TestMemResSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runner smoke tests are slow")
	}
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	BenchJSONPath = jsonPath
	defer func() { BenchJSONPath = "" }()
	out := runnerSmoke(t, "memres")
	for _, want := range []string{"readerat", "decoded", "cold", "warm"} {
		if !strings.Contains(out, want) {
			t.Errorf("memres output missing %q:\n%s", want, out)
		}
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("bench JSON not written: %v", err)
	}
	var report struct {
		MmapSupported bool `json:"mmap_supported"`
		Runs          []struct {
			Backend     string
			Phase       string
			NsPerRecord float64 `json:"ns_per_record"`
		}
		ColdBytesReductionPct float64 `json:"cold_bytes_reduction_pct"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("bench JSON malformed: %v", err)
	}
	wantRuns := 4
	if report.MmapSupported {
		wantRuns = 6
	}
	if len(report.Runs) != wantRuns {
		t.Fatalf("bench JSON has %d runs, want %d", len(report.Runs), wantRuns)
	}
	// The acceptance pins: mapping (or, without mmap, the streaming file
	// path) must cut cold scan heap allocation by >=30%, and the mapped
	// warm scan must not run slower than the decoded copy (generous noise
	// slack — both scan plain memory through the same kernel).
	if report.ColdBytesReductionPct < 30 {
		t.Errorf("cold bytes/record reduction %.1f%%, want >= 30%%", report.ColdBytesReductionPct)
	}
	warm := map[string]float64{}
	for _, r := range report.Runs {
		if r.Phase == "warm" {
			warm[r.Backend] = r.NsPerRecord
		}
	}
	if report.MmapSupported && warm["mmap"] > warm["decoded"]*1.25 {
		t.Errorf("mapped warm scan %.1f ns/record vs decoded %.1f — mapping must not slow warm scans",
			warm["mmap"], warm["decoded"])
	}
}

func TestTracingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runner smoke tests are slow")
	}
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	BenchJSONPath = jsonPath
	defer func() { BenchJSONPath = "" }()
	out := runnerSmoke(t, "tracing")
	for _, want := range []string{"off", "sampled", "always", "overhead"} {
		if !strings.Contains(out, want) {
			t.Errorf("tracing output missing %q:\n%s", want, out)
		}
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("bench JSON not written: %v", err)
	}
	var report struct {
		Runs []struct {
			Mode    string
			NsPerOp float64 `json:"ns_per_op"`
		}
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("bench JSON malformed: %v", err)
	}
	if len(report.Runs) != 3 {
		t.Fatalf("bench JSON has %d runs, want 3", len(report.Runs))
	}
	for _, r := range report.Runs {
		if r.NsPerOp <= 0 {
			t.Errorf("mode %s measured %f ns/op", r.Mode, r.NsPerOp)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Caption: "demo", Header: []string{"a", "bb"}}
	tab.Add(1, 2.5)
	tab.Add("xx", "y")
	var sb strings.Builder
	if err := tab.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "## demo") || !strings.Contains(out, "2.500") {
		t.Fatalf("table formatting broken:\n%s", out)
	}
}
