package experiments

import (
	"fmt"
	"io"

	"climber/internal/core"
	"climber/internal/dataset"
	"climber/internal/series"
)

// Fig10Pivots reproduces Figure 10: the impact of the number of pivots on
// (a) the three construction phases — skeleton building, entire-data
// conversion, entire-data re-distribution — and (b) query recall across the
// four datasets. The paper sweeps 50..350 pivots around the default 200 and
// finds a sweet spot at 150-250.
func Fig10Pivots(s Scale, workDir string, out io.Writer) error {
	pivotCounts := []int{50, 100, 150, 200, 250, 300, 350}
	n := s.BaseSize

	tPhases := &Table{
		Caption: fmt.Sprintf("Figure 10(a) — construction phases (ms) vs #pivots (RandomWalk, size=%d)", n),
		Header:  []string{"pivots", "skeleton", "conversion", "redistribution"},
	}
	e, err := newEnv(workDir, "randomwalk", n, 2468)
	if err != nil {
		return err
	}
	for _, r := range pivotCounts {
		cfg := climberConfig(s, n)
		cfg.NumPivots = r
		cfg = clampPivots(cfg, n)
		ix, err := core.Build(e.cl, e.bs, cfg, fmt.Sprintf("climber-r%d", r))
		if err != nil {
			return fmt.Errorf("fig10 r=%d: %w", r, err)
		}
		tPhases.Add(r, ix.Stats.Skeleton.Milliseconds(),
			ix.Stats.Conversion.Milliseconds(), ix.Stats.Redistribution.Milliseconds())
	}
	if err := tPhases.Write(out); err != nil {
		return err
	}

	tRecall := &Table{
		Caption: fmt.Sprintf("Figure 10(b) — recall vs #pivots (size=%d, K=%d)", n, s.K),
		Header:  []string{"pivots", "randomwalk", "sift", "eeg", "dna"},
	}
	// Per-dataset environments are reused across the pivot sweep.
	envs := make(map[string]*env)
	queries := make(map[string][][]float64)
	exacts := make(map[string][][]series.Result)
	for _, name := range DatasetNames() {
		de, err := newEnv(workDir, name, n, 1357)
		if err != nil {
			return err
		}
		envs[name] = de
		_, qs := dataset.Queries(de.ds, s.Queries, 999)
		queries[name] = qs
		exacts[name] = groundTruth(de.ds, qs, s.K)
	}
	// Each cell averages several independent builds (different pivot draws)
	// — a single draw's recall is noisy at laptop scale, and the paper's
	// 150-250 sweet spot is a property of the expectation.
	buildSeeds := []uint64{42, 137, 9001}
	for _, r := range pivotCounts {
		row := []any{r}
		for _, name := range DatasetNames() {
			de := envs[name]
			sum := 0.0
			for _, seed := range buildSeeds {
				cfg := climberConfig(s, n)
				cfg.NumPivots = r
				cfg.Seed = seed
				cfg = clampPivots(cfg, n)
				ix, err := core.Build(de.cl, de.bs, cfg, fmt.Sprintf("climber-%s-r%d-s%d", name, r, seed))
				if err != nil {
					return fmt.Errorf("fig10 %s r=%d: %w", name, r, err)
				}
				res, err := evaluate(queries[name], exacts[name], s.K,
					climberSearch(ix, core.VariantAdaptive4X))
				if err != nil {
					return err
				}
				sum += res.Recall
			}
			row = append(row, sum/float64(len(buildSeeds)))
		}
		tRecall.Add(row...)
	}
	return tRecall.Write(out)
}
