package experiments

import (
	"errors"
	"fmt"
	"io"
	"time"

	"climber/internal/core"
	"climber/internal/dataset"
	"climber/internal/hnsw"
	"climber/internal/odyssey"
	"climber/internal/series"
)

// Table1Systems reproduces Table I: CLIMBER vs Odyssey vs ParlayANN-HNSW
// across growing dataset sizes, reporting Index Construction Time (I.C.T),
// Query Response Time (Q.R.T), and Results' Recall (R.R). The in-memory
// systems carry memory budgets calibrated so they hit their wall partway
// through the sweep, reproducing the paper's "X" cells: Odyssey fails at
// the second-to-last size, ParlayANN (single-node) at the midpoint.
func Table1Systems(s Scale, workDir string, out io.Writer) error {
	sizes := append(append([]int{}, s.Sizes...), s.Sizes[len(s.Sizes)-1]*3/2)

	// Budgets: Odyssey (distributed memory) holds every size but the last
	// two; HNSW (single node) only the first half — mirroring Table I where
	// ParlayANN fails first and Odyssey later.
	odysseyIdx := len(sizes) - 3
	if odysseyIdx < 0 {
		odysseyIdx = 0
	}
	hnswIdx := len(sizes)/2 - 1
	if hnswIdx < 0 {
		hnswIdx = 0
	}
	odysseyBudget := odyssey.MemoryFootprint(sizes[odysseyIdx], dataset.RandomWalkLength, 16)
	hnswBudget := hnsw.MemoryFootprint(sizes[hnswIdx], dataset.RandomWalkLength, 16)

	t := &Table{
		Caption: fmt.Sprintf("Table I — CLIMBER vs Odyssey vs ParlayANN-HNSW (RandomWalk, K=%d); X = exceeds memory budget", s.K),
		Header:  []string{"size", "metric", "CLIMBER", "Odyssey", "ParlayANN"},
	}

	for _, n := range sizes {
		e, err := newEnv(workDir, "randomwalk", n, 8642)
		if err != nil {
			return err
		}
		_, qs := dataset.Queries(e.ds, s.Queries, 246)
		exact := groundTruth(e.ds, qs, s.K)

		// --- CLIMBER ------------------------------------------------------
		cix, err := core.Build(e.cl, e.bs, climberConfig(s, n), "climber-t1")
		if err != nil {
			return fmt.Errorf("table1 n=%d: climber: %w", n, err)
		}
		cRes, err := evaluate(qs, exact, s.K, climberSearch(cix, core.VariantAdaptive4X))
		if err != nil {
			return err
		}
		cICT := cix.Stats.Total

		// --- Odyssey -------------------------------------------------------
		oICT, oQRT, oRR := "X", "X", "X"
		oCfg := odyssey.DefaultConfig()
		oCfg.MemoryBudgetBytes = odysseyBudget
		oStart := time.Now()
		oEng, err := odyssey.Build(e.ds, oCfg)
		switch {
		case errors.Is(err, odyssey.ErrOutOfMemory):
			// X cells stand.
		case err != nil:
			return fmt.Errorf("table1 n=%d: odyssey: %w", n, err)
		default:
			oBuild := time.Since(oStart)
			r, err := evaluate(qs, exact, s.K, func(q []float64, k int) ([]series.Result, int, int, error) {
				res, stats, err := oEng.Search(q, k)
				return res, 0, stats.SeriesScanned, err
			})
			if err != nil {
				return err
			}
			oICT, oQRT, oRR = fmtMs(oBuild), ms(r.AvgTime), fmt.Sprintf("%.3f", r.Recall)
		}

		// --- ParlayANN (HNSW) ----------------------------------------------
		hICT, hQRT, hRR := "X", "X", "X"
		hCfg := hnsw.DefaultConfig()
		hCfg.MemoryBudgetBytes = hnswBudget
		hStart := time.Now()
		graph, err := hnsw.Build(e.ds, hCfg)
		switch {
		case errors.Is(err, hnsw.ErrOutOfMemory):
			// X cells stand.
		case err != nil:
			return fmt.Errorf("table1 n=%d: hnsw: %w", n, err)
		default:
			hBuild := time.Since(hStart)
			r, err := evaluate(qs, exact, s.K, func(q []float64, k int) ([]series.Result, int, int, error) {
				res, err := graph.Search(q, k)
				return res, 0, 0, err
			})
			if err != nil {
				return err
			}
			hICT, hQRT, hRR = fmtMs(hBuild), ms(r.AvgTime), fmt.Sprintf("%.3f", r.Recall)
		}

		t.Add(n, "I.C.T(ms)", fmtMs(cICT), oICT, hICT)
		t.Add(n, "Q.R.T(ms)", ms(cRes.AvgTime), oQRT, hQRT)
		t.Add(n, "R.R", fmt.Sprintf("%.3f", cRes.Recall), oRR, hRR)
	}
	return t.Write(out)
}

func fmtMs(d time.Duration) string {
	return fmt.Sprintf("%d", d.Milliseconds())
}
