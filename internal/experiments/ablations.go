package experiments

import (
	"fmt"
	"io"

	"climber/internal/core"
	"climber/internal/dataset"
	"climber/internal/metric"
)

// The ablation runners probe the reproduction/s load-bearing design choices. They
// go beyond the paper's published figures: each isolates one mechanism of
// CLIMBER and measures what it buys.

// AblationDecay compares the exponential and linear pivot-weight decay
// functions of Definition 9 — both proposed by the paper, which uses
// exponential decay in its evaluation.
func AblationDecay(s Scale, workDir string, out io.Writer) error {
	n := s.BaseSize
	e, err := newEnv(workDir, "randomwalk", n, 3141)
	if err != nil {
		return err
	}
	_, qs := dataset.Queries(e.ds, s.Queries, 59)
	exact := groundTruth(e.ds, qs, s.K)

	t := &Table{
		Caption: fmt.Sprintf("Ablation — pivot-weight decay function (RandomWalk, size=%d, K=%d)", n, s.K),
		Header:  []string{"decay", "recall", "avg-query-ms", "groups"},
	}
	for _, kind := range []metric.DecayKind{metric.ExponentialDecay, metric.LinearDecay} {
		cfg := climberConfig(s, n)
		cfg.Decay = kind
		cfg.Lambda = 0 // per-kind default
		ix, err := core.Build(e.cl, e.bs, cfg, "abl-decay-"+kind.String())
		if err != nil {
			return fmt.Errorf("ablation decay %v: %w", kind, err)
		}
		res, err := evaluate(qs, exact, s.K, climberSearch(ix, core.VariantAdaptive4X))
		if err != nil {
			return err
		}
		t.Add(kind.String(), res.Recall, ms(res.AvgTime), ix.Skeleton().NumGroups())
	}
	return t.Write(out)
}

// AblationDual isolates the dual representation: Algorithm 1 with the
// rank-sensitive WD tie-break (the paper's design) versus OD-only grouping
// with random tie resolution. The paper motivates the WD stage with
// Example 1; this ablation quantifies it.
func AblationDual(s Scale, workDir string, out io.Writer) error {
	n := s.BaseSize
	e, err := newEnv(workDir, "randomwalk", n, 2718)
	if err != nil {
		return err
	}
	_, qs := dataset.Queries(e.ds, s.Queries, 67)
	exact := groundTruth(e.ds, qs, s.K)

	t := &Table{
		Caption: fmt.Sprintf("Ablation — WD tie-break of Algorithm 1 (RandomWalk, size=%d, K=%d)", n, s.K),
		Header:  []string{"tie-break", "recall", "avg-query-ms"},
	}
	for _, c := range []struct {
		label   string
		disable bool
	}{{"OD+WD (paper)", false}, {"OD+random", true}} {
		cfg := climberConfig(s, n)
		cfg.DisableWDTieBreak = c.disable
		ix, err := core.Build(e.cl, e.bs, cfg, fmt.Sprintf("abl-dual-%v", c.disable))
		if err != nil {
			return fmt.Errorf("ablation dual: %w", err)
		}
		res, err := evaluate(qs, exact, s.K, climberSearch(ix, core.VariantAdaptive4X))
		if err != nil {
			return err
		}
		t.Add(c.label, res.Recall, ms(res.AvgTime))
	}
	return t.Write(out)
}

// AblationSampling sweeps the skeleton-construction sampling rate α. The
// paper fixes α implicitly via partition-level sampling; this ablation
// shows how little sample the skeleton needs before accuracy degrades —
// the justification for sampling at all.
func AblationSampling(s Scale, workDir string, out io.Writer) error {
	n := s.BaseSize
	e, err := newEnv(workDir, "randomwalk", n, 1618)
	if err != nil {
		return err
	}
	_, qs := dataset.Queries(e.ds, s.Queries, 73)
	exact := groundTruth(e.ds, qs, s.K)

	t := &Table{
		Caption: fmt.Sprintf("Ablation — skeleton sampling rate alpha (RandomWalk, size=%d, K=%d)", n, s.K),
		Header:  []string{"alpha", "sample-records", "build-ms", "recall"},
	}
	for _, alpha := range []float64{0.02, 0.05, 0.1, 0.2, 0.5} {
		cfg := climberConfig(s, n)
		cfg.SampleRate = alpha
		cfg = clampPivots(cfg, n)
		ix, err := core.Build(e.cl, e.bs, cfg, fmt.Sprintf("abl-alpha-%g", alpha))
		if err != nil {
			return fmt.Errorf("ablation alpha=%g: %w", alpha, err)
		}
		res, err := evaluate(qs, exact, s.K, climberSearch(ix, core.VariantAdaptive4X))
		if err != nil {
			return err
		}
		t.Add(fmt.Sprintf("%.2f", alpha), ix.Stats.SampleRecords,
			ix.Stats.Total.Milliseconds(), res.Recall)
	}
	return t.Write(out)
}
