package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"climber/internal/dataset"
	"climber/internal/series"
	"climber/internal/storage"
)

// memresPartitions is how many partition files the measurement set is
// split into — enough that per-open overheads register, few enough that
// every backend's working set fits the page cache.
const memresPartitions = 8

// memresRun is one (backend, phase) scan measurement.
type memresRun struct {
	Backend string `json:"backend"` // mmap | readerat | decoded
	Phase   string `json:"phase"`   // cold | warm
	// NsPerRecord is scan wall-time per record compared (cold includes the
	// per-query open/load/close; warm scans resident partitions).
	NsPerRecord float64 `json:"ns_per_record"`
	// BytesPerRecord is heap allocation per record compared (TotalAlloc
	// delta over records) — the zero-copy claim made measurable.
	BytesPerRecord float64 `json:"bytes_per_record"`
	// ResidentBytes is what the open partitions charge a cache budget in
	// this backend (storage.Partition.MemBytes summed), 0 for the cold
	// phase where nothing stays open.
	ResidentBytes int64 `json:"resident_bytes"`
}

// memresReport is the JSON document BenchJSONPath receives (the checked-in
// BENCH_memres.json baseline).
type memresReport struct {
	Experiment    string      `json:"experiment"`
	Scale         string      `json:"scale"`
	Records       int         `json:"records"`
	SeriesLen     int         `json:"series_len"`
	MmapSupported bool        `json:"mmap_supported"`
	Runs          []memresRun `json:"runs"`
	// ColdBytesReductionPct is the headline number: heap bytes/record of
	// the cold mapped scan vs the cold decoded scan (100% means mapping
	// removed every load-time allocation). Falls back to readerat-vs-
	// decoded on platforms without mmap.
	ColdBytesReductionPct float64 `json:"cold_bytes_reduction_pct"`
	// MaxRSSKB is the process peak resident set (VmHWM) after all
	// measurements, 0 where /proc is unavailable. Monotonic over the whole
	// process, so it bounds — not attributes — the backends' footprints.
	MaxRSSKB int64 `json:"max_rss_kb"`
}

// memresBuild writes the measurement partition files: n records split
// round-robin over memresPartitions files, a handful of clusters each.
func memresBuild(s Scale, workDir string) (paths []string, seriesLen, n int, err error) {
	n = s.BaseSize
	ds, err := dataset.ByName("randomwalk", n, 99)
	if err != nil {
		return nil, 0, 0, err
	}
	seriesLen = ds.Length()
	dir, err := os.MkdirTemp(workDir, "memres-")
	if err != nil {
		return nil, 0, 0, err
	}
	writers := make([]*storage.PartitionWriter, memresPartitions)
	for i := range writers {
		writers[i] = storage.NewPartitionWriter(seriesLen)
	}
	for i := 0; i < n; i++ {
		w := writers[i%memresPartitions]
		if err := w.AppendOwned(storage.ClusterID(i%4), i, ds.Get(i)); err != nil {
			return nil, 0, 0, err
		}
	}
	for i, w := range writers {
		//lint:ignore genswap throwaway bench fixtures in a temp dir, not generation files
		p := filepath.Join(dir, fmt.Sprintf("memres-%02d.clmp", i))
		if err := w.Flush(p); err != nil {
			return nil, 0, 0, err
		}
		paths = append(paths, p)
	}
	return paths, seriesLen, n, nil
}

// memresScan ranks every record of p against q32 through the raw kernel —
// the executor's scan hot path, minus the top-k bookkeeping.
//
//climber:mmapscan
func memresScan(p *storage.Partition, q32 []float32) (int, error) {
	records := 0
	for _, ci := range p.Clusters() {
		err := p.ScanClusterRaw(ci.ID, func(id int, rec []byte) error {
			records++
			memresSink += series.SqDistEarlyAbandon32Blocked(q32, rec, math.Inf(1))
			return nil
		})
		if err != nil {
			return 0, err
		}
	}
	return records, nil
}

// memresSink anchors the kernel results as observable so the scan loop is
// not optimised away.
var memresSink float64

// memresMeasure runs one (backend, phase) measurement. Cold opens, scans
// and closes every partition per repetition; warm opens once, scans reps
// times, and reports what the resident partitions would charge a cache.
func memresMeasure(backend, phase string, paths []string, open func(string) (*storage.Partition, error), q32 []float32, reps int) (memresRun, error) {
	run := memresRun{Backend: backend, Phase: phase}
	scanAll := func(ps []*storage.Partition) (int, error) {
		total := 0
		for _, p := range ps {
			rec, err := memresScan(p, q32)
			if err != nil {
				return 0, err
			}
			total += rec
		}
		return total, nil
	}

	var resident []*storage.Partition
	if phase == "warm" {
		for _, path := range paths {
			p, err := open(path)
			if err != nil {
				return run, err
			}
			resident = append(resident, p)
			run.ResidentBytes += p.MemBytes()
		}
		// One untimed pass faults mapped pages in, so warm means warm for
		// every backend.
		if _, err := scanAll(resident); err != nil {
			return run, err
		}
	}
	defer func() {
		for _, p := range resident {
			_ = p.Close()
		}
	}()

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	records := 0
	for r := 0; r < reps; r++ {
		if phase == "cold" {
			for _, path := range paths {
				p, err := open(path)
				if err != nil {
					return run, err
				}
				rec, err := memresScan(p, q32)
				cerr := p.Close()
				if err == nil {
					err = cerr
				}
				if err != nil {
					return run, err
				}
				records += rec
			}
		} else {
			rec, err := scanAll(resident)
			if err != nil {
				return run, err
			}
			records += rec
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	run.NsPerRecord = float64(elapsed.Nanoseconds()) / float64(records)
	run.BytesPerRecord = float64(after.TotalAlloc-before.TotalAlloc) / float64(records)
	return run, nil
}

// readPeakRSSKB returns the process peak resident set (VmHWM) in KB from
// /proc/self/status, or 0 where that interface does not exist.
func readPeakRSSKB() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb
	}
	return 0
}

// MemRes measures the memory-resident read path: scan time and heap
// allocation per record, cold (open per query) and warm (partitions stay
// resident), across the three partition backings — read-only memory
// mapping, the portable ReaderAt file path, and the heap-decoded copy. All
// three rank records through the same raw float32 kernel, so the columns
// isolate where the bytes live, not what the math costs. The mapped
// backend's win is the cold column: loading becomes a page-table operation
// instead of a file-sized heap allocation, while its warm ns/op must stay
// at the decoded copy's (both scan plain memory).
func MemRes(s Scale, workDir string, out io.Writer) error {
	paths, seriesLen, n, err := memresBuild(s, workDir)
	if err != nil {
		return err
	}
	qds, err := dataset.ByName("randomwalk", 1, 7)
	if err != nil {
		return err
	}
	q32 := series.ToFloat32(qds.Get(0))

	report := memresReport{
		Experiment:    "memres",
		Scale:         s.Name,
		Records:       n,
		SeriesLen:     seriesLen,
		MmapSupported: storage.MapSupported(),
	}

	backends := []struct {
		name string
		open func(string) (*storage.Partition, error)
	}{
		{"mmap", storage.MapPartition},
		{"readerat", storage.OpenPartition},
		{"decoded", storage.LoadPartition},
	}
	const coldReps, warmReps = 4, 12
	coldBytes := map[string]float64{}
	warmNs := map[string]float64{}
	for _, b := range backends {
		if b.name == "mmap" && !storage.MapSupported() {
			continue
		}
		for _, phase := range []struct {
			name string
			reps int
		}{{"cold", coldReps}, {"warm", warmReps}} {
			run, err := memresMeasure(b.name, phase.name, paths, b.open, q32, phase.reps)
			if err != nil {
				return fmt.Errorf("memres %s/%s: %w", b.name, phase.name, err)
			}
			report.Runs = append(report.Runs, run)
			if phase.name == "cold" {
				coldBytes[b.name] = run.BytesPerRecord
			} else {
				warmNs[b.name] = run.NsPerRecord
			}
		}
	}

	zero := "mmap"
	if !storage.MapSupported() {
		zero = "readerat"
	}
	if d := coldBytes["decoded"]; d > 0 {
		report.ColdBytesReductionPct = (d - coldBytes[zero]) / d * 100
	}
	report.MaxRSSKB = readPeakRSSKB()

	t := &Table{
		Caption: fmt.Sprintf("memres — scan cost per record by partition backing, %d records x len %d over %d partitions (cold = open per query, warm = resident)",
			n, seriesLen, memresPartitions),
		Header: []string{"backend", "phase", "ns/record", "alloc B/record", "resident bytes"},
	}
	for _, r := range report.Runs {
		t.Add(r.Backend, r.Phase, fmt.Sprintf("%.1f", r.NsPerRecord),
			fmt.Sprintf("%.1f", r.BytesPerRecord), r.ResidentBytes)
	}
	if err := t.Write(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "cold heap bytes/record: %s cuts %.1f%% vs decoded; warm ns/record %s=%.1f decoded=%.1f; peak RSS %d KB\n",
		zero, report.ColdBytesReductionPct, zero, warmNs[zero], warmNs["decoded"], report.MaxRSSKB)

	if BenchJSONPath != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(BenchJSONPath, append(raw, '\n'), 0o644); err != nil {
			return fmt.Errorf("memres: write bench JSON: %w", err)
		}
		fmt.Fprintf(out, "(bench JSON written to %s)\n", BenchJSONPath)
	}
	return nil
}
