package experiments

import (
	"fmt"
	"io"

	"climber/internal/core"
	"climber/internal/dataset"
	"climber/internal/dss"
	"climber/internal/series"
)

// Fig11Adaptive reproduces Figure 11(a): the recall boost the adaptive
// variants deliver over plain CLIMBER-kNN when the requested K exceeds the
// capacity m of the best-matching trie node. For each query the harness
// first discovers m (the paper's stress-test protocol), then evaluates K in
// {m, 2m, 4m, 8m, 10m}.
func Fig11Adaptive(s Scale, workDir string, out io.Writer) error {
	n := s.BaseSize
	e, err := newEnv(workDir, "randomwalk", n, 9876)
	if err != nil {
		return err
	}
	ix, err := core.Build(e.cl, e.bs, climberConfig(s, n), "climber-fig11a")
	if err != nil {
		return fmt.Errorf("fig11a: climber build: %w", err)
	}
	_, qs := dataset.Queries(e.ds, s.Queries, 654)

	multiples := []int{1, 2, 4, 8, 10}
	type acc struct{ knn, a2, a4 float64 }
	sums := make([]acc, len(multiples))
	counted := make([]int, len(multiples))

	for _, q := range qs {
		// Discover the target trie node's capacity m with a probe query.
		probe, err := ix.Search(q, core.SearchOptions{K: 1, Variant: core.VariantKNN})
		if err != nil {
			return err
		}
		m := probe.Stats.TargetNodeSize
		if m < 1 {
			m = 1
		}
		for i, mult := range multiples {
			k := m * mult
			if k < 1 {
				k = 1
			}
			if k > e.ds.Len() {
				k = e.ds.Len()
			}
			exact := dss.SearchDataset(e.ds, q, k)
			rKNN, err := ix.Search(q, core.SearchOptions{K: k, Variant: core.VariantKNN})
			if err != nil {
				return err
			}
			r2, err := ix.Search(q, core.SearchOptions{K: k, Variant: core.VariantAdaptive2X})
			if err != nil {
				return err
			}
			r4, err := ix.Search(q, core.SearchOptions{K: k, Variant: core.VariantAdaptive4X})
			if err != nil {
				return err
			}
			sums[i].knn += series.Recall(rKNN.Results, exact)
			sums[i].a2 += series.Recall(r2.Results, exact)
			sums[i].a4 += series.Recall(r4.Results, exact)
			counted[i]++
		}
	}

	t := &Table{
		Caption: fmt.Sprintf("Figure 11(a) — recall boost of adaptive variants vs K (RandomWalk, size=%d); m = target trie-node capacity", n),
		Header:  []string{"K", "kNN-recall", "2X-boost-%", "4X-boost-%"},
	}
	labels := []string{"m", "2m", "4m", "8m", "10m"}
	for i := range multiples {
		nq := float64(counted[i])
		knn := sums[i].knn / nq
		boost2 := (sums[i].a2/nq - knn) * 100
		boost4 := (sums[i].a4/nq - knn) * 100
		t.Add(labels[i], knn, fmt.Sprintf("%.1f", boost2), fmt.Sprintf("%.1f", boost4))
	}
	return t.Write(out)
}

// Fig11ODSmallest reproduces Figure 11(b): the OD-Smallest algorithm's
// relative data access and recall against the three CLIMBER variants on the
// DNA and EEG datasets. The paper's finding: OD-Smallest scans 6-7x more
// data for < 10% recall improvement over Adaptive-4X.
func Fig11ODSmallest(s Scale, workDir string, out io.Writer) error {
	t := &Table{
		Caption: fmt.Sprintf("Figure 11(b) — OD-Smallest relative score (OD-Smallest / variant), size=%d, K=%d", s.BaseSize, s.K),
		Header:  []string{"dataset", "variant", "data-access-ratio", "recall-ratio"},
	}
	for _, name := range []string{"dna", "eeg"} {
		n := s.BaseSize
		e, err := newEnv(workDir, name, n, 1928)
		if err != nil {
			return err
		}
		ix, err := core.Build(e.cl, e.bs, climberConfig(s, n), "climber-fig11b-"+name)
		if err != nil {
			return fmt.Errorf("fig11b %s: %w", name, err)
		}
		_, qs := dataset.Queries(e.ds, s.Queries, 333)
		exact := groundTruth(e.ds, qs, s.K)

		odRes, err := evaluate(qs, exact, s.K, climberSearch(ix, core.VariantODSmallest))
		if err != nil {
			return err
		}
		for _, v := range []core.Variant{core.VariantKNN, core.VariantAdaptive2X, core.VariantAdaptive4X} {
			res, err := evaluate(qs, exact, s.K, climberSearch(ix, v))
			if err != nil {
				return err
			}
			dataRatio := odRes.AvgRecords / maxF(res.AvgRecords, 1)
			recallRatio := odRes.Recall / maxF(res.Recall, 1e-9)
			t.Add(name, v.String(), dataRatio, recallRatio)
		}
	}
	return t.Write(out)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
