package experiments

import (
	"fmt"
	"io"
	"time"

	"climber/internal/core"
	"climber/internal/dataset"
	"climber/internal/hnsw"
	"climber/internal/lsh"
	"climber/internal/odyssey"
	"climber/internal/series"
	"climber/internal/tardis"
)

// Landscape renders the paper's Section II landscape as one measured table:
// every family of kNN technique the paper positions CLIMBER against —
// exact scan (Dss), exact in-memory with pruning (Odyssey), hashing
// (ChainLink-style LSH, "recall is around 30%"), graph (HNSW, "reaching 90%
// and higher" but with very heavy construction), the iSAX-tree systems
// (TARDIS as their best), and CLIMBER itself.
func Landscape(s Scale, workDir string, out io.Writer) error {
	n := s.BaseSize
	e, err := newEnv(workDir, "randomwalk", n, 4242)
	if err != nil {
		return err
	}
	_, qs := dataset.Queries(e.ds, s.Queries, 21)
	exact := groundTruth(e.ds, qs, s.K)

	t := &Table{
		Caption: fmt.Sprintf("Section II landscape — technique families on one workload (RandomWalk, size=%d, K=%d)", n, s.K),
		Header:  []string{"family", "system", "build-ms", "recall", "query-ms"},
	}

	// Exact distributed scan: no build, recall 1.
	dssRes, err := evaluate(qs, exact, s.K, dssSearch(e))
	if err != nil {
		return err
	}
	t.Add("exact scan", "Dss", 0, dssRes.Recall, ms(dssRes.AvgTime))

	// Exact in-memory with iSAX pruning.
	oStart := time.Now()
	oEng, err := odyssey.Build(e.ds, odyssey.DefaultConfig())
	if err != nil {
		return err
	}
	oBuild := time.Since(oStart)
	oRes, err := evaluate(qs, exact, s.K, func(q []float64, k int) ([]series.Result, int, int, error) {
		res, st, err := oEng.Search(q, k)
		return res, 0, st.SeriesScanned, err
	})
	if err != nil {
		return err
	}
	t.Add("exact in-memory", "Odyssey", oBuild.Milliseconds(), oRes.Recall, ms(oRes.AvgTime))

	// Hashing (ChainLink-style LSH).
	lStart := time.Now()
	lIx, err := lsh.Build(e.ds, lsh.DefaultConfig())
	if err != nil {
		return err
	}
	lBuild := time.Since(lStart)
	lRes, err := evaluate(qs, exact, s.K, func(q []float64, k int) ([]series.Result, int, int, error) {
		res, st, err := lIx.Search(q, k)
		return res, 0, st.Candidates, err
	})
	if err != nil {
		return err
	}
	t.Add("hashing (LSH)", "ChainLink-style", lBuild.Milliseconds(), lRes.Recall, ms(lRes.AvgTime))

	// Graph (HNSW).
	hStart := time.Now()
	graph, err := hnsw.Build(e.ds, hnsw.DefaultConfig())
	if err != nil {
		return err
	}
	hBuild := time.Since(hStart)
	hRes, err := evaluate(qs, exact, s.K, func(q []float64, k int) ([]series.Result, int, int, error) {
		res, err := graph.Search(q, k)
		return res, 0, 0, err
	})
	if err != nil {
		return err
	}
	t.Add("graph", "HNSW", hBuild.Milliseconds(), hRes.Recall, ms(hRes.AvgTime))

	// Disk-based iSAX tree (the stronger baseline).
	tix, err := tardis.Build(e.cl, e.bs, tardisConfig(s, n), "tardis-landscape")
	if err != nil {
		return err
	}
	tRes, err := evaluate(qs, exact, s.K, tardisSearch(tix))
	if err != nil {
		return err
	}
	t.Add("iSAX tree", "TARDIS", tix.Stats.Total.Milliseconds(), tRes.Recall, ms(tRes.AvgTime))

	// CLIMBER.
	cix, err := core.Build(e.cl, e.bs, climberConfig(s, n), "climber-landscape")
	if err != nil {
		return err
	}
	cRes, err := evaluate(qs, exact, s.K, climberSearch(cix, core.VariantAdaptive4X))
	if err != nil {
		return err
	}
	t.Add("pivot (this paper)", "CLIMBER", cix.Stats.Total.Milliseconds(), cRes.Recall, ms(cRes.AvgTime))

	return t.Write(out)
}
