package experiments

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"os"
	"time"

	"climber/internal/cluster"
	"climber/internal/core"
	"climber/internal/dataset"
	"climber/internal/series"
)

// BenchJSONPath, when non-empty, makes BuildScale additionally write its
// measurements as a JSON document (cmd/climber-bench -bench-json). The
// checked-in BENCH_buildscale.json baseline is produced this way, so CI and
// future sessions can diff build-scaling and kernel numbers structurally
// instead of scraping tables.
var BenchJSONPath string

// buildScaleWorkers is the worker sweep: sequential first, then the powers
// of two the acceptance curve is read at.
var buildScaleWorkers = []int{1, 2, 4, 8}

// buildScaleRun is one build measurement at a fixed worker count.
type buildScaleRun struct {
	Workers          int     `json:"workers"`
	TotalMS          float64 `json:"total_ms"`
	SkeletonMS       float64 `json:"skeleton_ms"`
	ConversionMS     float64 `json:"conversion_ms"`
	RedistributionMS float64 `json:"redistribution_ms"`
	// Speedup is sequential total over this total (>1 means faster).
	Speedup float64 `json:"speedup"`
}

// kernelRun is one distance-kernel measurement.
type kernelRun struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// buildScaleReport is the JSON document BenchJSONPath receives.
type buildScaleReport struct {
	Experiment string          `json:"experiment"`
	Scale      string          `json:"scale"`
	Records    int             `json:"records"`
	SeriesLen  int             `json:"series_len"`
	Builds     []buildScaleRun `json:"builds"`
	Kernels    []kernelRun     `json:"kernels"`
}

// timeKernel measures one distance kernel by running it iters times over a
// fixed pair of paper-length series and returns ns/op. The accumulated sink
// keeps the call from being optimised away.
func timeKernel(iters int, fn func() float64) float64 {
	var sink float64
	start := time.Now()
	for i := 0; i < iters; i++ {
		sink += fn()
	}
	elapsed := time.Since(start)
	if sink < 0 { // never true; anchors sink as observable
		panic("negative distance sum")
	}
	return float64(elapsed.Nanoseconds()) / float64(iters)
}

// measureKernels times the scalar scan kernels against their blocked
// replacements under the scan's dominant regime (full-length accumulation:
// exact distance, and early-abandon with a loose bound that never trips),
// plus the raw float32 kernels the zero-copy read path scans encoded
// records with.
func measureKernels() []kernelRun {
	rng := rand.New(rand.NewPCG(42, 1))
	const n, iters = 256, 200_000
	x, y := make([]float64, n), make([]float64, n)
	for i := range x {
		x[i], y[i] = rng.NormFloat64()*10, rng.NormFloat64()*10
	}
	loose := series.SqDist(x, y) + 1
	x32 := series.ToFloat32(x)
	rec := make([]byte, 4*n) // y in partition-record encoding
	for i, v := range y {
		binary.LittleEndian.PutUint32(rec[4*i:], math.Float32bits(float32(v)))
	}
	return []kernelRun{
		{"SqDist", timeKernel(iters, func() float64 { return series.SqDist(x, y) })},
		{"SqDistBlocked", timeKernel(iters, func() float64 { return series.SqDistBlocked(x, y) })},
		{"SqDistEarlyAbandon/loose", timeKernel(iters, func() float64 { return series.SqDistEarlyAbandon(x, y, loose) })},
		{"SqDistEarlyAbandonBlocked/loose", timeKernel(iters, func() float64 { return series.SqDistEarlyAbandonBlocked(x, y, loose) })},
		{"SqDist32Blocked", timeKernel(iters, func() float64 { return series.SqDist32Blocked(x32, rec) })},
		{"SqDistEarlyAbandon32Blocked/loose", timeKernel(iters, func() float64 { return series.SqDistEarlyAbandon32Blocked(x32, rec, loose) })},
	}
}

// buildAtWorkers builds the index once at the given parallelism on a fresh
// single-node cluster whose pool width matches, so the skeleton phases
// (cfg.Workers) and the scan/shuffle phases (the cluster pool) scale
// together.
func buildAtWorkers(s Scale, workDir string, n, workers int) (core.BuildStats, error) {
	ds, err := dataset.ByName("randomwalk", n, 4321)
	if err != nil {
		return core.BuildStats{}, err
	}
	dir, err := os.MkdirTemp(workDir, fmt.Sprintf("buildscale-w%d-", workers))
	if err != nil {
		return core.BuildStats{}, err
	}
	cl, err := cluster.New(cluster.Config{NumNodes: 1, WorkersPerNode: workers, BaseDir: dir})
	if err != nil {
		return core.BuildStats{}, err
	}
	cfg := climberConfig(s, n)
	cfg.Workers = workers
	bs, err := cl.IngestBlocks(ds, cfg.BlockSize, "bscale")
	if err != nil {
		return core.BuildStats{}, err
	}
	ix, err := core.Build(cl, bs, cfg, fmt.Sprintf("bscale-w%d", workers))
	if err != nil {
		return core.BuildStats{}, err
	}
	return ix.Stats, nil
}

// BuildScale measures the parallel index build: wall-clock of every
// construction phase as the worker count sweeps 1..8 (the builds are
// bit-identical, so the sweep trades time only), plus ns/op of the scalar
// scan kernels against their blocked replacements. On single-core hosts the
// build sweep degenerates to ~1.0x speedups — the kernel table still shows
// the blocked win, which comes from instruction-level parallelism, not
// threads.
func BuildScale(s Scale, workDir string, out io.Writer) error {
	report := buildScaleReport{
		Experiment: "buildscale",
		Scale:      s.Name,
		Records:    s.BaseSize,
		SeriesLen:  256,
	}

	tBuild := &Table{
		Caption: fmt.Sprintf("buildscale — construction wall-time (ms) vs workers, size=%d (bit-identical output)", s.BaseSize),
		Header:  []string{"workers", "total", "skeleton", "conversion", "redistribution", "speedup"},
	}
	var seqTotal time.Duration
	for _, w := range buildScaleWorkers {
		stats, err := buildAtWorkers(s, workDir, s.BaseSize, w)
		if err != nil {
			return fmt.Errorf("buildscale workers=%d: %w", w, err)
		}
		if w == 1 {
			seqTotal = stats.Total
		}
		speedup := float64(seqTotal) / float64(stats.Total)
		tBuild.Add(w, ms(stats.Total), ms(stats.Skeleton), ms(stats.Conversion), ms(stats.Redistribution),
			fmt.Sprintf("%.2fx", speedup))
		report.Builds = append(report.Builds, buildScaleRun{
			Workers:          w,
			TotalMS:          float64(stats.Total.Microseconds()) / 1000.0,
			SkeletonMS:       float64(stats.Skeleton.Microseconds()) / 1000.0,
			ConversionMS:     float64(stats.Conversion.Microseconds()) / 1000.0,
			RedistributionMS: float64(stats.Redistribution.Microseconds()) / 1000.0,
			Speedup:          speedup,
		})
	}
	if err := tBuild.Write(out); err != nil {
		return err
	}

	report.Kernels = measureKernels()
	tKernel := &Table{
		Caption: "buildscale — scan kernel ns/op (scalar vs blocked), series length 256",
		Header:  []string{"kernel", "ns/op"},
	}
	for _, k := range report.Kernels {
		tKernel.Add(k.Name, fmt.Sprintf("%.1f", k.NsPerOp))
	}
	if err := tKernel.Write(out); err != nil {
		return err
	}

	if BenchJSONPath != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(BenchJSONPath, append(raw, '\n'), 0o644); err != nil {
			return fmt.Errorf("buildscale: write bench JSON: %w", err)
		}
		fmt.Fprintf(out, "(bench JSON written to %s)\n", BenchJSONPath)
	}
	return nil
}
