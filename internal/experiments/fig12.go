package experiments

import (
	"fmt"
	"io"

	"climber/internal/core"
	"climber/internal/dataset"
)

// Fig12PrefixLen reproduces Figure 12: the impact of the pivot-prefix
// length m on four metrics — global index size, index construction time,
// query response time, and recall — each reported relative to the default
// m = 10 (the paper's reference point). Expected shapes: index size and
// construction time grow with m and then stabilise; recall peaks around
// m = 10-20 and degrades for very short or very long prefixes.
func Fig12PrefixLen(s Scale, workDir string, out io.Writer) error {
	prefixLens := []int{6, 8, 10, 15, 20, 25, 30, 35, 40}
	n := s.BaseSize
	e, err := newEnv(workDir, "randomwalk", n, 7531)
	if err != nil {
		return err
	}
	_, qs := dataset.Queries(e.ds, s.Queries, 111)
	exact := groundTruth(e.ds, qs, s.K)

	type point struct {
		indexBytes int
		buildMs    int64
		queryMs    float64
		recall     float64
	}
	points := make(map[int]point, len(prefixLens))
	for _, m := range prefixLens {
		cfg := climberConfig(s, n)
		cfg.PrefixLen = m
		if cfg.NumPivots < m {
			cfg.NumPivots = m
		}
		cfg = clampPivots(cfg, n)
		if cfg.PrefixLen > cfg.NumPivots {
			cfg.PrefixLen = cfg.NumPivots
		}
		ix, err := core.Build(e.cl, e.bs, cfg, fmt.Sprintf("climber-m%d", m))
		if err != nil {
			return fmt.Errorf("fig12 m=%d: %w", m, err)
		}
		res, err := evaluate(qs, exact, s.K, climberSearch(ix, core.VariantAdaptive4X))
		if err != nil {
			return err
		}
		points[m] = point{
			indexBytes: ix.Skeleton().EncodedSize(),
			buildMs:    ix.Stats.Total.Milliseconds(),
			queryMs:    float64(res.AvgTime.Microseconds()) / 1000,
			recall:     res.Recall,
		}
	}

	ref := points[10]
	t := &Table{
		Caption: fmt.Sprintf("Figure 12 — metrics relative to prefix length 10 (RandomWalk, size=%d, K=%d); reference absolutes: index=%dB build=%dms query=%.2fms recall=%.3f",
			n, s.K, ref.indexBytes, ref.buildMs, ref.queryMs, ref.recall),
		Header: []string{"prefix", "index-size-x", "build-time-x", "query-time-x", "recall-x"},
	}
	for _, m := range prefixLens {
		p := points[m]
		t.Add(m,
			ratio(float64(p.indexBytes), float64(ref.indexBytes)),
			ratio(float64(p.buildMs), float64(ref.buildMs)),
			ratio(p.queryMs, ref.queryMs),
			ratio(p.recall, ref.recall))
	}
	return t.Write(out)
}

func ratio(v, ref float64) string {
	if ref == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", v/ref)
}
