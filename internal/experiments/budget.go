package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"climber/internal/core"
	"climber/internal/dataset"
	"climber/internal/series"
)

// BudgetMaxPartitions, when positive, replaces the budget experiment's
// partition-budget sweep with a single value (cmd/climber-bench
// -max-partitions).
var BudgetMaxPartitions int

// BudgetTimeLimit, when positive, replaces the budget experiment's
// time-budget sweep with a single value (cmd/climber-bench -time-budget).
var BudgetTimeLimit time.Duration

// BudgetExperiment measures the anytime-query contract: recall as a
// function of the per-query budget, against the run-to-completion answer.
// It sweeps partition budgets (a hard cap on partition loads) and time
// budgets (fractions of the measured run-to-completion latency), reporting
// for each the recall, the fraction of answers marked partial, and the
// average plan coverage — the recall-vs-time-budget curve that ProS-style
// progressive systems and the Lernaean Hydra time-bounded comparisons ask
// for.
func BudgetExperiment(s Scale, workDir string, out io.Writer) error {
	n := s.BaseSize
	e, err := newEnv(workDir, "randomwalk", n, 4242)
	if err != nil {
		return err
	}
	ix, err := core.Build(e.cl, e.bs, climberConfig(s, n), "budget")
	if err != nil {
		return err
	}
	_, qs := dataset.Queries(e.ds, s.Queries, 31)
	exact := groundTruth(e.ds, qs, s.K)

	base := func() core.SearchOptions {
		return core.SearchOptions{K: s.K, Variant: core.VariantAdaptive4X}
	}

	// Run to completion first: the reference recall and latency.
	full, err := runBudgetWorkload(ix, qs, exact, s.K, base)
	if err != nil {
		return err
	}
	tab := &Table{
		Caption: fmt.Sprintf("Anytime queries: recall vs budget (CLIMBER-kNN-Adaptive-4X, %d records, K=%d, %d queries)",
			n, s.K, len(qs)),
		Header: []string{"budget", "recall", "partial", "avg-steps", "avg-ms"},
	}
	addRow := func(label string, r budgetResult) {
		tab.Add(label, r.recall, pct(r.partialFrac), fmt.Sprintf("%.1f", r.steps), ms(r.avgTime))
	}
	addRow("unbounded", full)

	// Partition budgets: 1, 2, 4, 8 loads per query (or the CLI override).
	partBudgets := []int{1, 2, 4, 8}
	if BudgetMaxPartitions > 0 {
		partBudgets = []int{BudgetMaxPartitions}
	}
	for _, b := range partBudgets {
		r, err := runBudgetWorkload(ix, qs, exact, s.K, func() core.SearchOptions {
			o := base()
			o.MaxPartitions = b
			o.Budget.MaxPartitions = b
			return o
		})
		if err != nil {
			return err
		}
		addRow(fmt.Sprintf("max-partitions=%d", b), r)
	}

	// Time budgets: fractions of the measured run-to-completion latency
	// (or the CLI override), so the sweep is meaningful at any scale.
	var timeBudgets []time.Duration
	if BudgetTimeLimit > 0 {
		timeBudgets = []time.Duration{BudgetTimeLimit}
	} else {
		for _, f := range []float64{0.25, 0.5, 1, 2} {
			d := time.Duration(float64(full.avgTime) * f)
			if d <= 0 {
				d = time.Microsecond
			}
			timeBudgets = append(timeBudgets, d)
		}
	}
	for _, d := range timeBudgets {
		d := d
		r, err := runBudgetWorkload(ix, qs, exact, s.K, func() core.SearchOptions {
			o := base()
			o.Budget.Deadline = time.Now().Add(d)
			return o
		})
		if err != nil {
			return err
		}
		addRow(fmt.Sprintf("time=%v", d.Round(time.Microsecond)), r)
	}
	if err := tab.Write(out); err != nil {
		return err
	}

	// Progressive convergence: how recall climbs snapshot by snapshot for
	// one representative query (the anytime serving mode made visible).
	fmt.Fprintf(out, "\nProgressive convergence (query 0, OD-Smallest):\n")
	q := qs[0]
	type snapRow struct {
		step, planned int
		recall        float64
	}
	var snaps []snapRow
	//lint:ignore ctxflow offline benchmark harness: experiments run to completion, there is no caller deadline to thread
	_, err = ix.SearchProgressive(context.Background(), q, core.SearchOptions{K: s.K, Variant: core.VariantODSmallest},
		func(sn core.Snapshot) bool {
			snaps = append(snaps, snapRow{sn.Step, sn.StepsPlanned, series.Recall(sn.Results, exact[0])})
			return true
		})
	if err != nil {
		return err
	}
	for _, sn := range snaps {
		fmt.Fprintf(out, "  step %d/%d: recall %.3f\n", sn.step, sn.planned, sn.recall)
	}
	return nil
}

// budgetResult aggregates one budgeted workload run.
type budgetResult struct {
	recall      float64
	partialFrac float64
	steps       float64
	avgTime     time.Duration
}

// runBudgetWorkload runs the query set under the per-call options (rebuilt
// per query, so deadline budgets restart each time) and aggregates recall,
// partial fraction, executed steps, and latency.
func runBudgetWorkload(ix *core.Index, qs [][]float64, exact [][]series.Result, k int, opts func() core.SearchOptions) (budgetResult, error) {
	var r budgetResult
	var total time.Duration
	// One untimed warm-up so cold file caches do not distort the reference
	// latency the time budgets derive from.
	if _, err := ix.Search(qs[0], opts()); err != nil {
		return r, err
	}
	for i, q := range qs {
		start := time.Now()
		res, err := ix.Search(q, opts())
		if err != nil {
			return r, err
		}
		total += time.Since(start)
		r.recall += series.Recall(res.Results, exact[i])
		r.steps += float64(res.Stats.StepsExecuted)
		if res.Stats.Partial {
			r.partialFrac++
		}
	}
	n := float64(len(qs))
	r.recall /= n
	r.partialFrac /= n
	r.steps /= n
	r.avgTime = total / time.Duration(len(qs))
	return r, nil
}

// pct renders a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }
