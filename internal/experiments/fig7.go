package experiments

import (
	"fmt"
	"io"

	"climber/internal/core"
	"climber/internal/dataset"
	"climber/internal/dpisax"
	"climber/internal/tardis"
)

// fig7Eval builds all four systems over one dataset and evaluates the query
// workload, returning one evalResult per system keyed by the paper's
// labels.
func fig7Eval(s Scale, workDir, dsName string, n int) (map[string]evalResult, error) {
	e, err := newEnv(workDir, dsName, n, 1234)
	if err != nil {
		return nil, err
	}
	_, qs := dataset.Queries(e.ds, s.Queries, 777)
	exact := groundTruth(e.ds, qs, s.K)

	out := make(map[string]evalResult)

	cix, err := core.Build(e.cl, e.bs, climberConfig(s, n), "climber-"+dsName)
	if err != nil {
		return nil, fmt.Errorf("fig7 %s: climber build: %w", dsName, err)
	}
	if out["CLIMBER"], err = evaluate(qs, exact, s.K, climberSearch(cix, core.VariantAdaptive4X)); err != nil {
		return nil, err
	}

	tix, err := tardis.Build(e.cl, e.bs, tardisConfig(s, n), "tardis-"+dsName)
	if err != nil {
		return nil, fmt.Errorf("fig7 %s: tardis build: %w", dsName, err)
	}
	if out["TARDIS"], err = evaluate(qs, exact, s.K, tardisSearch(tix)); err != nil {
		return nil, err
	}

	dix, err := dpisax.Build(e.cl, e.bs, dpisaxConfig(s, n), "dpisax-"+dsName)
	if err != nil {
		return nil, fmt.Errorf("fig7 %s: dpisax build: %w", dsName, err)
	}
	if out["DPiSAX"], err = evaluate(qs, exact, s.K, dpisaxSearch(dix)); err != nil {
		return nil, err
	}

	if out["Dss"], err = evaluate(qs, exact, s.K, dssSearch(e)); err != nil {
		return nil, err
	}
	return out, nil
}

var fig7Systems = []string{"CLIMBER", "DPiSAX", "TARDIS", "Dss"}

// Fig7QueryTime reproduces Figure 7(a): query execution time per dataset
// and algorithm at the base dataset size.
func Fig7QueryTime(s Scale, workDir string, out io.Writer) error {
	t := &Table{
		Caption: fmt.Sprintf("Figure 7(a) — query execution time (ms), size=%d, K=%d", s.BaseSize, s.K),
		Header:  append([]string{"dataset"}, fig7Systems...),
	}
	for _, name := range DatasetNames() {
		res, err := fig7Eval(s, workDir, name, s.BaseSize)
		if err != nil {
			return err
		}
		t.Add(name, ms(res["CLIMBER"].AvgTime), ms(res["DPiSAX"].AvgTime),
			ms(res["TARDIS"].AvgTime), ms(res["Dss"].AvgTime))
	}
	return t.Write(out)
}

// Fig7Recall reproduces Figure 7(b): recall per dataset and algorithm.
func Fig7Recall(s Scale, workDir string, out io.Writer) error {
	t := &Table{
		Caption: fmt.Sprintf("Figure 7(b) — query recall, size=%d, K=%d", s.BaseSize, s.K),
		Header:  append([]string{"dataset"}, fig7Systems...),
	}
	for _, name := range DatasetNames() {
		res, err := fig7Eval(s, workDir, name, s.BaseSize)
		if err != nil {
			return err
		}
		t.Add(name, res["CLIMBER"].Recall, res["DPiSAX"].Recall,
			res["TARDIS"].Recall, res["Dss"].Recall)
	}
	return t.Write(out)
}

// Fig7Scale reproduces Figures 7(c) and 7(d): query time and recall on
// RandomWalk while the dataset size grows.
func Fig7Scale(s Scale, workDir string, out io.Writer) error {
	tTime := &Table{
		Caption: fmt.Sprintf("Figure 7(c) — query time (ms) vs dataset size (RandomWalk, K=%d)", s.K),
		Header:  append([]string{"size"}, fig7Systems...),
	}
	tRecall := &Table{
		Caption: fmt.Sprintf("Figure 7(d) — recall vs dataset size (RandomWalk, K=%d)", s.K),
		Header:  append([]string{"size"}, fig7Systems...),
	}
	for _, n := range s.Sizes {
		res, err := fig7Eval(s, workDir, "randomwalk", n)
		if err != nil {
			return err
		}
		tTime.Add(n, ms(res["CLIMBER"].AvgTime), ms(res["DPiSAX"].AvgTime),
			ms(res["TARDIS"].AvgTime), ms(res["Dss"].AvgTime))
		tRecall.Add(n, res["CLIMBER"].Recall, res["DPiSAX"].Recall,
			res["TARDIS"].Recall, res["Dss"].Recall)
	}
	if err := tTime.Write(out); err != nil {
		return err
	}
	return tRecall.Write(out)
}
