package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"climber/internal/core"
	"climber/internal/dataset"
	"climber/internal/obs"
)

// tracingSampleEvery is the "sampled" mode's period: one query in this
// many runs under a trace, matching a production -slow-sample of a few
// percent.
var tracingSampleEvery = 16

// tracingRun is one mode's measurement.
type tracingRun struct {
	Mode    string  `json:"mode"` // off, sampled, always
	NsPerOp float64 `json:"ns_per_op"`
	// DeltaPct is the ns/op overhead relative to tracing off, in percent.
	DeltaPct float64 `json:"delta_pct"`
}

// tracingReport is the JSON document the tracing experiment writes to
// BenchJSONPath (the checked-in BENCH_tracing.json baseline).
type tracingReport struct {
	Experiment string       `json:"experiment"`
	Scale      string       `json:"scale"`
	Records    int          `json:"records"`
	Queries    int          `json:"queries"`
	Rounds     int          `json:"rounds"`
	Runs       []tracingRun `json:"runs"`
}

// tracingModes enumerates the measured tracing regimes. traced reports
// whether query i of a round runs under a trace.
var tracingModes = []struct {
	name   string
	traced func(i int) bool
}{
	{"off", func(int) bool { return false }},
	{"sampled", func(i int) bool { return i%tracingSampleEvery == 0 }},
	{"always", func(int) bool { return true }},
}

// TracingOverhead measures the query-path cost of the obs tracing layer:
// the same workload is timed with tracing off (the production default —
// one context lookup per query), sampled (every 16th query traced), and
// always on (every query builds and serializes a full span tree). The
// "off" row is the number the <2% overhead acceptance reads; "always" is
// the worst case an -slow-sample 1.0 deployment would pay.
func TracingOverhead(s Scale, workDir string, out io.Writer) error {
	e, err := newEnv(workDir, "randomwalk", s.BaseSize, 1234)
	if err != nil {
		return err
	}
	ix, err := core.Build(e.cl, e.bs, climberConfig(s, s.BaseSize), "tracing")
	if err != nil {
		return fmt.Errorf("tracing: build: %w", err)
	}
	_, qs := dataset.Queries(e.ds, s.Queries, 777)
	opts := core.SearchOptions{K: s.K, Variant: core.VariantAdaptive4X}

	// Rounds repeat the whole workload so per-query cost averages over
	// enough executions to be stable; one untimed warm-up pass per mode
	// absorbs cold partition loads.
	const rounds = 25
	runOne := func(traced bool, q []float64) error {
		//lint:ignore ctxflow benchmark root: each measured query starts a fresh context on purpose
		ctx := context.Background()
		var tr *obs.Trace
		if traced {
			tr = obs.NewTrace("bench", "")
			ctx = obs.ContextWithSpan(ctx, tr.Root())
		}
		_, err := ix.SearchContext(ctx, q, opts)
		if tr != nil {
			tr.Root().End()
			if tr.Root().Data() == nil { // never true; keeps serialization honest
				return fmt.Errorf("tracing: empty span tree")
			}
		}
		return err
	}

	report := tracingReport{
		Experiment: "tracing",
		Scale:      s.Name,
		Records:    s.BaseSize,
		Queries:    len(qs),
		Rounds:     rounds,
	}
	t := &Table{
		Caption: fmt.Sprintf("tracing — query ns/op by tracing regime, size=%d K=%d (%d queries x %d rounds, best round)",
			s.BaseSize, s.K, len(qs), rounds),
		Header: []string{"mode", "ns/op", "overhead"},
	}
	// The workload is partition-I/O bound, so ambient machine noise dwarfs
	// the tracing delta in any single round. The modes interleave round-
	// robin (so drift hits all three equally) and each mode reports its
	// best round — the floor that only the code path itself can raise.
	best := make([]float64, len(tracingModes))
	for _, mode := range tracingModes {
		for i, q := range qs { // warm-up pass, untimed
			if err := runOne(mode.traced(i), q); err != nil {
				return fmt.Errorf("tracing %s: %w", mode.name, err)
			}
		}
	}
	for r := 0; r < rounds; r++ {
		for mi, mode := range tracingModes {
			start := time.Now()
			for i, q := range qs {
				if err := runOne(mode.traced(i), q); err != nil {
					return fmt.Errorf("tracing %s: %w", mode.name, err)
				}
			}
			nsPerOp := float64(time.Since(start).Nanoseconds()) / float64(len(qs))
			if best[mi] == 0 || nsPerOp < best[mi] {
				best[mi] = nsPerOp
			}
		}
	}
	offNs := best[0]
	for mi, mode := range tracingModes {
		delta := (best[mi] - offNs) / offNs * 100
		report.Runs = append(report.Runs, tracingRun{Mode: mode.name, NsPerOp: best[mi], DeltaPct: delta})
		t.Add(mode.name, fmt.Sprintf("%.0f", best[mi]), fmt.Sprintf("%+.1f%%", delta))
	}
	if err := t.Write(out); err != nil {
		return err
	}

	if BenchJSONPath != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(BenchJSONPath, append(raw, '\n'), 0o644); err != nil {
			return fmt.Errorf("tracing: write bench JSON: %w", err)
		}
		fmt.Fprintf(out, "(bench JSON written to %s)\n", BenchJSONPath)
	}
	return nil
}
