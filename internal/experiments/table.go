package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result: a caption tying it to the paper's
// artefact, a header, and string rows.
type Table struct {
	Caption string
	Header  []string
	Rows    [][]string
}

// Add appends a row; values are rendered with %v.
func (t *Table) Add(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString("## " + t.Caption + "\n")
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}
