package shard

import (
	"encoding/json"
	"net/http"
	"testing"

	"climber/internal/obs"
)

// childrenNamed returns d's direct children carrying name.
func childrenNamed(d *obs.SpanData, name string) []*obs.SpanData {
	var out []*obs.SpanData
	if d == nil {
		return out
	}
	for _, c := range d.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// TestRouterExplainNestedSpans is the observability acceptance check: an
// explain query through the router over two real shard servers returns
// one span tree in which the router's scatter stage carries one span per
// shard, each nesting that shard's own span tree (plan/scan stages
// included), the planner explanations come back keyed by shard ID, and
// the router's stage timings account for the traced wall time to within
// 10%.
func TestRouterExplainNestedSpans(t *testing.T) {
	f := newFixture(t, 400, 2)
	_, ts := f.startRouter(t, Config{})

	resp, raw := postJSON(t, ts.URL+"/search", map[string]any{"query": f.data[7], "k": 10, "explain": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var sr SearchResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}

	// Planner explanations, re-keyed from the shards' "" to their IDs.
	if len(sr.Explain) != 2 {
		t.Fatalf("explanations for %d shards, want 2: %v", len(sr.Explain), sr.Explain)
	}
	for _, id := range []string{"shard-0", "shard-1"} {
		ex := sr.Explain[id]
		if ex == nil {
			t.Fatalf("no explanation for %s", id)
		}
		if len(ex.Plan) == 0 {
			t.Fatalf("%s explanation has no ranked plan: %+v", id, ex)
		}
	}

	// The nested span tree: router root > scatter > per-shard spans, each
	// grafting the shard server's own trace.
	root := sr.Trace
	if root == nil || root.Name != "search" {
		t.Fatalf("missing or misnamed root span: %+v", root)
	}
	scatters := childrenNamed(root, "scatter")
	merges := childrenNamed(root, "merge")
	if len(scatters) != 1 || len(merges) != 1 {
		t.Fatalf("root has %d scatter and %d merge spans, want 1 and 1: %+v", len(scatters), len(merges), root.Children)
	}
	shardSpans := childrenNamed(scatters[0], "shard")
	if len(shardSpans) != 2 {
		t.Fatalf("scatter has %d shard spans, want 2: %+v", len(shardSpans), scatters[0].Children)
	}
	seen := map[string]bool{}
	for _, ss := range shardSpans {
		seen[ss.Labels["shard"]] = true
		grafted := childrenNamed(ss, "search")
		if len(grafted) != 1 {
			t.Fatalf("shard span %v nests %d shard traces, want 1", ss.Labels, len(grafted))
		}
		if len(childrenNamed(grafted[0], "plan")) != 1 || len(childrenNamed(grafted[0], "scan")) != 1 {
			t.Fatalf("nested shard trace missing plan/scan stages: %+v", grafted[0].Children)
		}
	}
	if !seen["shard-0"] || !seen["shard-1"] {
		t.Fatalf("shard spans not labeled with both shard IDs: %v", seen)
	}

	// Stage timings must account for the traced wall time: the root span
	// covers scatter + merge with only argument shuffling between them.
	var sum int64
	for _, c := range root.Children {
		sum += c.DurationNS
	}
	if root.DurationNS <= 0 {
		t.Fatalf("root span has no duration: %+v", root)
	}
	if gap := root.DurationNS - sum; gap < 0 || gap > root.DurationNS/10 {
		t.Fatalf("stage durations sum to %dns of a %dns root (gap %dns, >10%%)", sum, root.DurationNS, gap)
	}

	// A plain query through the same router returns neither.
	resp, raw = postJSON(t, ts.URL+"/search", map[string]any{"query": f.data[7], "k": 10})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var plain SearchResponse
	if err := json.Unmarshal(raw, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Explain != nil || plain.Trace != nil {
		t.Fatal("explanation attached without the explain flag")
	}
}

// TestRouterExplainBatch checks the batch path: the router's span tree
// nests each shard's batch trace (with its per-query spans) under the
// scatter stage.
func TestRouterExplainBatch(t *testing.T) {
	f := newFixture(t, 400, 2)
	_, ts := f.startRouter(t, Config{})

	queries := [][]float64{f.data[3], f.data[111], f.data[222]}
	resp, raw := postJSON(t, ts.URL+"/search/batch", map[string]any{"queries": queries, "k": 5, "explain": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var br BatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	if br.Trace == nil || br.Trace.Name != "batch" {
		t.Fatalf("missing or misnamed batch root span: %+v", br.Trace)
	}
	scatters := childrenNamed(br.Trace, "scatter")
	if len(scatters) != 1 {
		t.Fatalf("batch root has %d scatter spans: %+v", len(scatters), br.Trace.Children)
	}
	for _, ss := range childrenNamed(scatters[0], "shard") {
		grafted := childrenNamed(ss, "batch")
		if len(grafted) != 1 {
			t.Fatalf("shard span %v nests %d batch traces, want 1", ss.Labels, len(grafted))
		}
		if got := len(childrenNamed(grafted[0], "query")); got != len(queries) {
			t.Fatalf("nested shard batch has %d query spans, want %d", got, len(queries))
		}
	}
}
