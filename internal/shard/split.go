package shard

import "climber/internal/series"

// SplitDataset partitions ds round-robin across n shards: record i goes to
// shard i%n, taking local position i/n. Round-robin is chosen over hashing
// for the *build-time* split because it makes the global-ID encoding exact
// under the default topology (IDBase = shard position): shard i%n assigns
// the record local ID i/n, and GlobalID recovers (i/n)*n + i%n = i — a
// sharded deployment answers queries with the same record IDs an unsharded
// build of the full dataset would. Appends flowing through the router
// later are placed by rendezvous hashing instead (Topology.Rank); global
// IDs stay unique either way because every shard extends its own residue
// class.
func SplitDataset(ds *series.Dataset, n int) []*series.Dataset {
	if n < 1 {
		n = 1
	}
	out := make([]*series.Dataset, n)
	total := ds.Len()
	for s := range out {
		// Shard s receives records s, s+n, s+2n, ...
		cnt := (total - s + n - 1) / n
		if cnt < 0 {
			cnt = 0
		}
		out[s] = series.NewDatasetCap(ds.Length(), cnt)
	}
	for i := 0; i < total; i++ {
		out[i%n].Append(ds.Get(i))
	}
	return out
}
