package shard

import (
	"sort"

	"climber"
	"climber/internal/api"
)

// answer is one shard's slice of a scatter-gather query: the topology index
// of the shard that produced it plus its (shard-local) top-k results.
type answer struct {
	shard   int
	results []api.Result
}

// mergeTopK folds per-shard top-k answers into the global top-k: every
// shard-local ID is mapped into the global ID space (Topology.GlobalID),
// the union is ordered by ascending (distance, ID) — the same total order
// the unsharded engine uses — and duplicates of one global ID are
// collapsed keeping the closest copy. Duplicates arise from read-replica
// topology entries (two shards sharing an IDBase hold the same records)
// and from a record transiently present on two shards during a topology
// migration; dedupe is what keeps the merged answer a set. dups reports
// how many copies were dropped.
func (t *Topology) mergeTopK(answers []answer, k int) (merged []api.Result, dups int) {
	total := 0
	for _, a := range answers {
		total += len(a.results)
	}
	all := make([]api.Result, 0, total)
	for _, a := range answers {
		for _, r := range a.results {
			all = append(all, api.Result{ID: t.GlobalID(a.shard, r.ID), Dist: r.Dist})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	seen := make(map[int]struct{}, len(all))
	merged = all[:0]
	for _, r := range all {
		if _, dup := seen[r.ID]; dup {
			dups++ // count every duplicate, even past the k-th rank
			continue
		}
		seen[r.ID] = struct{}{}
		if len(merged) < k {
			merged = append(merged, r)
		}
	}
	return merged, dups
}

// sumStats folds per-shard query statistics into the whole query's effort:
// the volume counters (records, bytes, steps) sum across shards, the trie
// descent gauges (TargetNodeSize, TargetPathLen) take the per-shard
// maximum, Partial is true when any shard's answer was budget-truncated
// (matching the top-level response marker), and BudgetExhausted carries
// the first shard-reported reason. Every exported field of climber.Stats
// must be folded here — the statsmerge analyzer holds this function to
// that rule, because PR 5 shipped with StepsPlanned/StepsExecuted silently
// dropped by this very fold.
//
//climber:statsmerge
func sumStats(stats []climber.Stats) climber.Stats {
	var out climber.Stats
	for _, s := range stats {
		out.GroupsConsidered += s.GroupsConsidered
		if s.TargetNodeSize > out.TargetNodeSize {
			out.TargetNodeSize = s.TargetNodeSize
		}
		if s.TargetPathLen > out.TargetPathLen {
			out.TargetPathLen = s.TargetPathLen
		}
		out.PartitionsScanned += s.PartitionsScanned
		out.RecordsScanned += s.RecordsScanned
		out.BytesLoaded += s.BytesLoaded
		out.DeltaScanned += s.DeltaScanned
		out.PartitionCacheHits += s.PartitionCacheHits
		out.PartitionCacheMisses += s.PartitionCacheMisses
		out.StepsPlanned += s.StepsPlanned
		out.StepsExecuted += s.StepsExecuted
		if s.Partial {
			out.Partial = true
			if out.BudgetExhausted == "" {
				out.BudgetExhausted = s.BudgetExhausted
			}
		}
	}
	return out
}
