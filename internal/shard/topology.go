package shard

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/url"
	"os"
	"sort"
	"strings"
)

// Info describes one shard of a topology: a stable name, the base URL of
// the climber-serve process holding the shard's DB directory, and the
// shard's ID namespace.
type Info struct {
	// ID is the shard's stable name — the rendezvous-hash key for append
	// routing, and the label under which the shard appears in the router's
	// /stats, /healthz, and /metrics. IDs must be unique in a topology.
	ID string `json:"id"`
	// URL is the base URL of the shard's HTTP server (scheme + host +
	// port, no path), e.g. "http://10.0.0.7:8080".
	URL string `json:"url"`
	// IDBase is the shard's residue in the global record-ID encoding
	// (see Topology.GlobalID). Omitted, it defaults to the shard's
	// position in the topology. Two entries sharing an IDBase declare
	// read replicas of the same keyspace slice: the router merges their
	// answers and deduplicates by global ID.
	IDBase *int `json:"id_base,omitempty"`
}

// Topology is a static shard map: the full set of shards a router
// scatter-gathers over, loaded from a shards.json file at start. The
// zero-downtime way to change a topology is to start a new router over the
// new file and cut clients over; dynamic membership is a documented
// follow-up (see ROADMAP.md).
type Topology struct {
	Shards []Info `json:"shards"`

	// stride is the modulus of the global-ID encoding, derived from the
	// largest IDBase at validation time.
	stride int
}

// LoadTopology reads and validates a shards.json topology file.
func LoadTopology(path string) (*Topology, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: read topology: %w", err)
	}
	var t Topology
	if err := json.Unmarshal(raw, &t); err != nil {
		return nil, fmt.Errorf("shard: parse topology %s: %w", path, err)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("shard: topology %s: %w", path, err)
	}
	return &t, nil
}

// LocalTopology builds an n-shard topology named shard-0..shard-n-1 with
// consecutive localhost ports starting at firstPort — the shape
// climber-build -shards writes as a template and the walkthroughs use.
func LocalTopology(n, firstPort int) *Topology {
	t := &Topology{}
	for i := 0; i < n; i++ {
		t.Shards = append(t.Shards, Info{
			ID:  fmt.Sprintf("shard-%d", i),
			URL: fmt.Sprintf("http://localhost:%d", firstPort+i),
		})
	}
	if err := t.Validate(); err != nil {
		panic(err) // unreachable: the generated topology is well-formed
	}
	return t
}

// Validate checks the topology's invariants — at least one shard, unique
// non-empty IDs, parseable http(s) URLs, non-negative ID bases — and
// freezes the global-ID stride. It must be called (directly or via
// LoadTopology) before GlobalID or Rank.
func (t *Topology) Validate() error {
	if len(t.Shards) == 0 {
		return fmt.Errorf("no shards")
	}
	seen := make(map[string]struct{}, len(t.Shards))
	maxBase := 0
	for i := range t.Shards {
		s := &t.Shards[i]
		if s.ID == "" {
			return fmt.Errorf("shard %d has no id", i)
		}
		if _, dup := seen[s.ID]; dup {
			return fmt.Errorf("duplicate shard id %q", s.ID)
		}
		seen[s.ID] = struct{}{}
		u, err := url.Parse(s.URL)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("shard %q has invalid url %q (want http(s)://host[:port])", s.ID, s.URL)
		}
		if s.IDBase == nil {
			base := i
			s.IDBase = &base
		}
		if *s.IDBase < 0 {
			return fmt.Errorf("shard %q has negative id_base %d", s.ID, *s.IDBase)
		}
		if *s.IDBase > maxBase {
			maxBase = *s.IDBase
		}
	}
	t.stride = maxBase + 1
	return nil
}

// Stride returns the modulus of the global-ID encoding: one more than the
// largest IDBase, so every shard's namespace is a distinct residue class.
func (t *Topology) Stride() int { return t.stride }

// GlobalID maps a record's shard-local ID to its global ID:
//
//	global = local*Stride() + IDBase
//
// Every shard assigns its own records dense local IDs 0,1,2,... (the build
// sequence), so interleaving by residue class keeps global IDs unique
// across shards no matter how unevenly they grow. When a dataset is split
// round-robin (SplitDataset), the encoding is exact: record i of the
// original dataset keeps global ID i.
func (t *Topology) GlobalID(shard, local int) int {
	return local*t.stride + *t.Shards[shard].IDBase
}

// rendezvousScore hashes (shard ID, key) into the shard's weight for the
// key — FNV-1a over the ID bytes then the key bytes.
func rendezvousScore(shardID string, key uint64) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(shardID))
	var kb [8]byte
	for i := 0; i < 8; i++ {
		kb[i] = byte(key >> (8 * i))
	}
	_, _ = h.Write(kb[:])
	return h.Sum64()
}

// Rank orders the shard indices by descending rendezvous (highest-random-
// weight) score for key: Rank(key)[0] is the key's owner, and the rest is
// the stable failover order — removing one shard reassigns only that
// shard's keys, every other key keeps its owner. The router walks this
// order to place appends on the first healthy shard.
func (t *Topology) Rank(key uint64) []int {
	type scored struct {
		idx   int
		score uint64
	}
	ss := make([]scored, len(t.Shards))
	for i := range t.Shards {
		ss[i] = scored{idx: i, score: rendezvousScore(t.Shards[i].ID, key)}
	}
	sort.Slice(ss, func(a, b int) bool {
		if ss[a].score != ss[b].score {
			return ss[a].score > ss[b].score
		}
		return t.Shards[ss[a].idx].ID < t.Shards[ss[b].idx].ID // total order on hash ties
	})
	out := make([]int, len(ss))
	for i, s := range ss {
		out[i] = s.idx
	}
	return out
}

// Save writes the topology as an indented shards.json to path —
// climber-build -shards uses it to emit a ready-to-edit template next to
// the shard directories it builds.
func (t *Topology) Save(path string) error {
	var b strings.Builder
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Shards []Info `json:"shards"`
	}{t.Shards}); err != nil {
		return fmt.Errorf("shard: encode topology: %w", err)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("shard: write topology: %w", err)
	}
	return nil
}
