package shard

import (
	"os"
	"path/filepath"
	"testing"

	"climber/internal/dataset"
)

func TestTopologyValidate(t *testing.T) {
	cases := []struct {
		name string
		topo Topology
	}{
		{"empty", Topology{}},
		{"no id", Topology{Shards: []Info{{URL: "http://x"}}}},
		{"dup id", Topology{Shards: []Info{{ID: "a", URL: "http://x"}, {ID: "a", URL: "http://y"}}}},
		{"bad scheme", Topology{Shards: []Info{{ID: "a", URL: "ftp://x"}}}},
		{"no host", Topology{Shards: []Info{{ID: "a", URL: "http://"}}}},
	}
	for _, c := range cases {
		if err := c.topo.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.topo)
		}
	}
	neg := -1
	bad := Topology{Shards: []Info{{ID: "a", URL: "http://x", IDBase: &neg}}}
	if err := bad.Validate(); err == nil {
		t.Error("negative id_base accepted")
	}
}

func TestTopologyDefaultsAndStride(t *testing.T) {
	topo := LocalTopology(3, 9001)
	if topo.Stride() != 3 {
		t.Fatalf("stride %d, want 3", topo.Stride())
	}
	for i, s := range topo.Shards {
		if *s.IDBase != i {
			t.Fatalf("shard %d id_base %d, want %d", i, *s.IDBase, i)
		}
	}
	// Explicit shared bases shrink the stride to the namespace count.
	b0, b1 := 0, 0
	repl := Topology{Shards: []Info{
		{ID: "a", URL: "http://x", IDBase: &b0},
		{ID: "b", URL: "http://y", IDBase: &b1},
	}}
	if err := repl.Validate(); err != nil {
		t.Fatal(err)
	}
	if repl.Stride() != 1 {
		t.Fatalf("replica stride %d, want 1", repl.Stride())
	}
}

// TestGlobalIDExactUnderRoundRobin: the documented invariant that a
// round-robin split plus the default topology keeps original dataset IDs.
func TestGlobalIDExactUnderRoundRobin(t *testing.T) {
	const n, shards = 107, 4 // deliberately not a multiple of the shard count
	ds := dataset.RandomWalk(16, n, 5)
	parts := SplitDataset(ds, shards)
	topo := LocalTopology(shards, 9001)
	total := 0
	for s, p := range parts {
		for local := 0; local < p.Len(); local++ {
			global := topo.GlobalID(s, local)
			if global != local*shards+s {
				t.Fatalf("shard %d local %d: global %d", s, local, global)
			}
			// The record at (s, local) is record global of the original.
			got, want := p.Get(local), ds.Get(global)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("shard %d local %d: values differ from original record %d", s, local, global)
				}
			}
		}
		total += p.Len()
	}
	if total != n {
		t.Fatalf("split covers %d records, want %d", total, n)
	}
}

// TestRendezvousStability: removing one shard reassigns only the keys it
// owned; every other key keeps its owner — the property that makes
// rendezvous hashing the right append-routing function.
func TestRendezvousStability(t *testing.T) {
	full := LocalTopology(4, 9001)
	reduced := &Topology{Shards: full.Shards[:3]} // shard-3 removed
	if err := reduced.Validate(); err != nil {
		t.Fatal(err)
	}
	moved, kept := 0, 0
	for key := uint64(0); key < 2000; key++ {
		a := full.Shards[full.Rank(key)[0]].ID
		b := reduced.Shards[reduced.Rank(key)[0]].ID
		if a == "shard-3" {
			moved++
			continue // its keys must move somewhere
		}
		if a != b {
			t.Fatalf("key %d moved from %s to %s although its owner survived", key, a, b)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate key distribution: moved=%d kept=%d", moved, kept)
	}
	// Balance sanity: each of 4 shards owns a non-trivial share.
	counts := make(map[string]int)
	for key := uint64(0); key < 2000; key++ {
		counts[full.Shards[full.Rank(key)[0]].ID]++
	}
	for id, c := range counts {
		if c < 200 {
			t.Fatalf("shard %s owns only %d of 2000 keys", id, c)
		}
	}
}

func TestLoadAndSaveTopology(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shards.json")
	topo := LocalTopology(2, 9001)
	if err := topo.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Shards) != 2 || loaded.Stride() != 2 || loaded.Shards[1].ID != "shard-1" {
		t.Fatalf("round trip lost data: %+v", loaded)
	}
	// Malformed files are refused with context.
	if err := os.WriteFile(path, []byte(`{"shards": [{"id": "a"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTopology(path); err == nil {
		t.Fatal("accepted a topology with an invalid URL")
	}
	if _, err := LoadTopology(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("accepted a missing file")
	}
}
