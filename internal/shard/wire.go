package shard

import (
	"encoding/json"

	"climber"
	"climber/internal/api"
	"climber/internal/obs"
)

// SearchResponse is the router's body for POST /search and POST
// /search/prefix: the globally merged top-k plus the scatter-gather shape
// of the answer. Results carry global IDs (Topology.GlobalID); Stats is
// the summed effort of every shard that answered.
type SearchResponse struct {
	Results []api.Result  `json:"results"`
	Stats   climber.Stats `json:"stats"`
	// ShardsAsked and ShardsAnswered report the scatter fan-out; with a
	// quorum policy ShardsAnswered may be smaller when a shard is down.
	ShardsAsked    int `json:"shards_asked"`
	ShardsAnswered int `json:"shards_answered"`
	// Partial marks an answer that is not the complete one: merged from
	// fewer shards than the topology holds (quorum policy under shard
	// loss), or at least one shard's budget (time_budget_ms /
	// max_partitions) stopped its local query before the full plan.
	Partial bool `json:"partial,omitempty"`
	// StepsExecuted sums the plan steps the shards executed — with a
	// budget, how much of the distributed plan the answer covers.
	StepsExecuted int `json:"steps_executed,omitempty"`
	// Explain, present when the request carried "explain": true, maps
	// shard ID to that shard's planner explanation; Trace is the router's
	// span tree with each shard's own span tree grafted under its scatter
	// span.
	Explain map[string]*api.ExplainData `json:"explain,omitempty"`
	Trace   *obs.SpanData               `json:"trace,omitempty"`
}

// BatchResponse is the router's body for POST /search/batch; Results
// aligns positionally with the request's Queries, each merged like a
// single /search answer.
type BatchResponse struct {
	Results        [][]api.Result `json:"results"`
	ShardsAsked    int            `json:"shards_asked"`
	ShardsAnswered int            `json:"shards_answered"`
	// Partial marks a batch merged from a shard subset or containing at
	// least one budget-truncated per-shard answer; StepsExecuted sums the
	// executed plan steps across shards and queries.
	Partial       bool `json:"partial,omitempty"`
	StepsExecuted int  `json:"steps_executed,omitempty"`
	// Trace is the router's span tree when the batch asked for explain.
	Trace *obs.SpanData `json:"trace,omitempty"`
}

// InfoResponse is the router's body for GET /info: the aggregate shape of
// the sharded database. Sums count each ID namespace once, so read
// replicas do not double-count records.
type InfoResponse struct {
	api.InfoResponse
	NumShards      int `json:"num_shards"`
	ShardsAnswered int `json:"shards_answered"`
}

// StatsResponse is the router's body for GET /stats: its own counters plus
// every reachable shard's /stats body verbatim, keyed by shard ID.
type StatsResponse struct {
	Router RouterStats                `json:"router"`
	Shards map[string]json.RawMessage `json:"shards"`
}

// HealthzResponse is the router's body for GET /healthz. Status is "ok"
// when every shard is up, "degraded" while the configured policy can still
// be served, and accompanies a 503 otherwise.
type HealthzResponse struct {
	Status string `json:"status"`
	// Shards maps shard ID to "up" or "down" per the last health probe.
	Shards map[string]string `json:"shards"`
}

// RouterStats is the JSON shape of the router section of GET /stats.
type RouterStats struct {
	Searches          int64   `json:"searches"`
	Batches           int64   `json:"batches"`
	PrefixSearches    int64   `json:"prefix_searches"`
	Appends           int64   `json:"appends"`
	AppendSeries      int64   `json:"append_series"`
	Flushes           int64   `json:"flushes"`
	Reindexes         int64   `json:"reindexes"`
	Backups           int64   `json:"backups"`
	BadRequests       int64   `json:"bad_requests"`
	Rejected          int64   `json:"rejected"`
	Canceled          int64   `json:"canceled"`
	Errors            int64   `json:"errors"`
	PartialAnswers    int64   `json:"partial_answers"`
	BudgetExhausted   int64   `json:"budget_exhausted"`
	DuplicatesDropped int64   `json:"duplicates_dropped"`
	ShardErrors       int64   `json:"shard_errors"`
	InFlight          int64   `json:"in_flight"`
	Queued            int64   `json:"queued"`
	UptimeSeconds     float64 `json:"uptime_seconds"`
}
