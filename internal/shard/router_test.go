package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"climber"
	"climber/internal/api"
	"climber/internal/dataset"
	"climber/internal/series"
	"climber/internal/server"
)

// fixtureOpts builds every test DB — sharded or not — so that a query with
// k >= n is provably EXACT: PrefixLen equals NumPivots, which makes every
// rank-insensitive signature the full pivot set, collapsing the skeleton to
// a single real data-series group, and the capacity exceeds the record
// count, so that group packs into one partition. Any query plan then loads
// that partition and the within-partition widening pass (triggered because
// k exceeds the planned clusters' record count) scans every record. That
// turns the sharded-vs-unsharded comparison into a deterministic equality:
// each shard answers the exact ranking of its subset, and a correct merge
// must reproduce the unsharded DB's exact ranking bit for bit.
func fixtureOpts() []climber.Option {
	return []climber.Option{
		climber.WithSegments(8), climber.WithPivots(8), climber.WithPrefixLen(8),
		climber.WithCapacity(4096), climber.WithSampleRate(0.5), climber.WithBlockSize(128),
		climber.WithSeed(7),
	}
}

// fixture is a sharded deployment under test: the unsharded reference DB,
// per-shard DBs behind real HTTP servers, and the topology covering them.
type fixture struct {
	full    *climber.DB
	data    [][]float64
	shards  []*climber.DB
	servers []*httptest.Server
	topo    *Topology
}

// newFixture builds an n-record dataset, an unsharded reference DB, and
// nShards shard DBs split round-robin, each served over HTTP.
func newFixture(t *testing.T, n, nShards int) *fixture {
	t.Helper()
	ds := dataset.RandomWalk(64, n, 99)
	data := make([][]float64, n)
	for i := range data {
		x := make([]float64, 64)
		copy(x, ds.Get(i))
		data[i] = x
	}
	full, err := climber.BuildDataset(t.TempDir(), cloneDataset(ds), fixtureOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { full.Close() })

	f := &fixture{full: full, data: data, topo: &Topology{}}
	for s, sub := range SplitDataset(ds, nShards) {
		db, err := climber.BuildDataset(t.TempDir(), sub, fixtureOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(server.New(db, server.Config{}).Handler())
		f.shards = append(f.shards, db)
		f.servers = append(f.servers, ts)
		f.topo.Shards = append(f.topo.Shards, Info{ID: fmt.Sprintf("shard-%d", s), URL: ts.URL})
		t.Cleanup(func() { ts.Close(); db.Close() })
	}
	if err := f.topo.Validate(); err != nil {
		t.Fatal(err)
	}
	return f
}

func cloneDataset(ds *series.Dataset) *series.Dataset {
	out := series.NewDatasetCap(ds.Length(), ds.Len())
	for i := 0; i < ds.Len(); i++ {
		out.Append(ds.Get(i))
	}
	return out
}

// startRouter mounts a router over the fixture's topology.
func (f *fixture) startRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 50 * time.Millisecond
	}
	r := NewRouter(f.topo, cfg)
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(func() { ts.Close(); r.Close() })
	return r, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestShardedMatchesUnsharded is the acceptance criterion: on a fixed
// dataset and query set, the router's merged answers equal the unsharded
// DB's, IDs and distances both — for /search, /search/batch, and
// /search/prefix.
func TestShardedMatchesUnsharded(t *testing.T) {
	const n = 240
	f := newFixture(t, n, 3)
	_, ts := f.startRouter(t, Config{})

	k := n + 8 // k >= n makes every answer the exact full ranking
	for _, qid := range []int{0, 57, 239} {
		q := f.data[qid]
		want, err := f.full.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		resp, body := postJSON(t, ts.URL+"/search", api.SearchRequest{Query: q, K: k})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", qid, resp.StatusCode, body)
		}
		var sr SearchResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Partial || sr.ShardsAnswered != 3 || sr.ShardsAsked != 3 {
			t.Fatalf("query %d: unexpected scatter shape %+v", qid, sr)
		}
		if len(sr.Results) != len(want) {
			t.Fatalf("query %d: %d merged results, unsharded returned %d", qid, len(sr.Results), len(want))
		}
		for i := range want {
			if sr.Results[i].ID != want[i].ID || sr.Results[i].Dist != want[i].Dist {
				t.Fatalf("query %d rank %d: sharded (%d, %g) vs unsharded (%d, %g)",
					qid, i, sr.Results[i].ID, sr.Results[i].Dist, want[i].ID, want[i].Dist)
			}
		}
		if sr.Stats.RecordsScanned < n {
			t.Fatalf("query %d: aggregated stats scanned %d records, want >= %d", qid, sr.Stats.RecordsScanned, n)
		}
	}

	// Batch: same equality, several queries at once.
	queries := [][]float64{f.data[11], f.data[120], f.data[200]}
	resp, body := postJSON(t, ts.URL+"/search/batch", api.BatchRequest{Queries: queries, K: k})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	wantBatch, err := f.full.SearchBatch(queries, k)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range queries {
		if len(br.Results[qi]) != len(wantBatch[qi]) {
			t.Fatalf("batch %d: %d results, want %d", qi, len(br.Results[qi]), len(wantBatch[qi]))
		}
		for i := range wantBatch[qi] {
			if br.Results[qi][i].ID != wantBatch[qi][i].ID || br.Results[qi][i].Dist != wantBatch[qi][i].Dist {
				t.Fatalf("batch %d rank %d mismatch", qi, i)
			}
		}
	}

	// Prefix: the query covers only the first 32 readings.
	q := f.data[42][:32]
	wantPre, err := f.full.SearchPrefix(q, k)
	if err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts.URL+"/search/prefix", api.SearchRequest{Query: q, K: k})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prefix: status %d: %s", resp.StatusCode, body)
	}
	var pr SearchResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Results) != len(wantPre) {
		t.Fatalf("prefix: %d results, want %d", len(pr.Results), len(wantPre))
	}
	for i := range wantPre {
		if pr.Results[i].ID != wantPre[i].ID || pr.Results[i].Dist != wantPre[i].Dist {
			t.Fatalf("prefix rank %d: sharded (%d, %g) vs unsharded (%d, %g)",
				i, pr.Results[i].ID, pr.Results[i].Dist, wantPre[i].ID, wantPre[i].Dist)
		}
	}
}

// TestRealisticKSelfQueries: under a production-shaped k, a record's own
// query must come back as its global ID at distance ~0 through the router.
func TestRealisticKSelfQueries(t *testing.T) {
	f := newFixture(t, 240, 4)
	_, ts := f.startRouter(t, Config{})
	for _, qid := range []int{3, 100, 237} {
		resp, body := postJSON(t, ts.URL+"/search", api.SearchRequest{Query: f.data[qid], K: 5})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", qid, resp.StatusCode, body)
		}
		var sr SearchResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if len(sr.Results) == 0 || sr.Results[0].ID != qid || sr.Results[0].Dist > 1e-4 {
			t.Fatalf("query %d: top result %+v, want its own global ID at ~0", qid, sr.Results)
		}
	}
}

// TestShardDownAllPolicy: under the default all-shards policy, losing a
// shard fails queries fast with 502 — never a silently incomplete answer —
// and flips the router's /healthz to 503.
func TestShardDownAllPolicy(t *testing.T) {
	f := newFixture(t, 120, 2)
	r, ts := f.startRouter(t, Config{})
	// Warm: learn the series length while both shards live.
	if resp, body := postJSON(t, ts.URL+"/search", api.SearchRequest{Query: f.data[0], K: 3}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm query: %d: %s", resp.StatusCode, body)
	}

	f.servers[1].Close() // shard goes down

	resp, body := postJSON(t, ts.URL+"/search", api.SearchRequest{Query: f.data[0], K: 3})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("query with a dead shard: status %d (want 502): %s", resp.StatusCode, body)
	}
	var er api.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || !strings.Contains(er.Error, "shard-1") {
		t.Fatalf("error should name the failed shard: %q", body)
	}

	// The prober notices within a few intervals; /healthz turns 503 because
	// the all-shards policy cannot be served any more.
	deadline := time.Now().Add(5 * time.Second)
	for r.Healthy() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("health prober never marked the dead shard down")
		}
		time.Sleep(10 * time.Millisecond)
	}
	var hz HealthzResponse
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with a dead shard under all-policy: %d, want 503", code)
	}
	if hz.Status != "unavailable" || hz.Shards["shard-1"] != "down" || hz.Shards["shard-0"] != "up" {
		t.Fatalf("healthz body: %+v", hz)
	}
}

// TestShardDownQuorum: with Quorum 1 of 2, losing a shard degrades reads —
// they succeed, marked partial, covering the surviving shard — instead of
// erroring the whole query; /healthz reports "degraded" with 200.
func TestShardDownQuorum(t *testing.T) {
	const n = 120
	f := newFixture(t, n, 2)
	r, ts := f.startRouter(t, Config{Quorum: 1})
	if resp, body := postJSON(t, ts.URL+"/search", api.SearchRequest{Query: f.data[0], K: 3}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm query: %d: %s", resp.StatusCode, body)
	}

	f.servers[1].Close()

	k := n + 4
	resp, body := postJSON(t, ts.URL+"/search", api.SearchRequest{Query: f.data[0], K: k})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quorum query with a dead shard: status %d: %s", resp.StatusCode, body)
	}
	var sr SearchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Partial || sr.ShardsAnswered != 1 {
		t.Fatalf("expected a partial single-shard answer, got %+v", sr)
	}
	// The partial answer is exactly the surviving shard's records: shard 0
	// holds the even-indexed records under round-robin split, globalised
	// back to their original IDs.
	want, err := f.shards[0].Search(f.data[0], k)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != len(want) {
		t.Fatalf("partial answer has %d results, shard 0 holds %d", len(sr.Results), len(want))
	}
	for i, res := range sr.Results {
		if res.ID%2 != 0 {
			t.Fatalf("partial answer contains ID %d, which the dead shard owned", res.ID)
		}
		if gotLocal := res.ID / 2; want[i].ID != gotLocal || want[i].Dist != res.Dist {
			t.Fatalf("rank %d: partial (%d, %g) vs shard-0 (%d, %g)", i, res.ID, res.Dist, want[i].ID, want[i].Dist)
		}
	}

	// Health: degraded but serving.
	deadline := time.Now().Add(5 * time.Second)
	for r.Healthy() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("health prober never marked the dead shard down")
		}
		time.Sleep(10 * time.Millisecond)
	}
	var hz HealthzResponse
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz under quorum with one live shard: %d, want 200", code)
	}
	if hz.Status != "degraded" {
		t.Fatalf("healthz status %q, want degraded", hz.Status)
	}

	// Quorum 2 of 2 with one shard dead: 503, not a partial answer.
	_, ts2 := f.startRouter(t, Config{Quorum: 2})
	resp, body = postJSON(t, ts2.URL+"/search", api.SearchRequest{Query: f.data[0], K: 3})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("quorum-2 query with a dead shard: status %d (want 503): %s", resp.StatusCode, body)
	}
}

// TestReplicaDedupe: two topology entries sharing an id_base declare read
// replicas of the same records. Both answer every query, so without dedupe
// the merged top-k would list every neighbour twice; the merge must
// collapse duplicates by global ID and count what it dropped.
func TestReplicaDedupe(t *testing.T) {
	const n = 120
	ds := dataset.RandomWalk(64, n, 17)
	db, err := climber.BuildDataset(t.TempDir(), ds, fixtureOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tsA := httptest.NewServer(server.New(db, server.Config{}).Handler())
	defer tsA.Close()
	// Replica B is the same process in this test; on the wire it is
	// indistinguishable from a second server over a copied directory.
	base := 0
	topo := &Topology{Shards: []Info{
		{ID: "replica-a", URL: tsA.URL, IDBase: &base},
		{ID: "replica-b", URL: tsA.URL, IDBase: &base},
	}}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.Stride() != 1 {
		t.Fatalf("stride %d, want 1 (one shared namespace)", topo.Stride())
	}
	r := NewRouter(topo, Config{HealthInterval: 50 * time.Millisecond})
	defer r.Close()
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	q := make([]float64, 64)
	copy(q, ds.Get(9))
	const k = 12
	resp, body := postJSON(t, ts.URL+"/search", api.SearchRequest{Query: q, K: k})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SearchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != k {
		t.Fatalf("%d results, want %d", len(sr.Results), k)
	}
	seen := make(map[int]struct{})
	for _, res := range sr.Results {
		if _, dup := seen[res.ID]; dup {
			t.Fatalf("duplicate global ID %d survived the merge: %+v", res.ID, sr.Results)
		}
		seen[res.ID] = struct{}{}
	}
	// The replicas returned identical answers, so the deduped merge equals
	// one replica's answer exactly.
	want, err := db.Search(q, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if sr.Results[i].ID != want[i].ID || sr.Results[i].Dist != want[i].Dist {
			t.Fatalf("rank %d: deduped (%d, %g) vs direct (%d, %g)",
				i, sr.Results[i].ID, sr.Results[i].Dist, want[i].ID, want[i].Dist)
		}
	}
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats: %d", code)
	}
	if stats.Router.DuplicatesDropped < int64(k) {
		t.Fatalf("duplicates_dropped = %d, want >= %d", stats.Router.DuplicatesDropped, k)
	}
}

// TestAppendThroughRouter: appends route by rendezvous hashing, come back
// with globally unique IDs, are immediately searchable through the router,
// and fail over to healthy shards when one dies.
func TestAppendThroughRouter(t *testing.T) {
	const n = 120
	f := newFixture(t, n, 2)
	r, ts := f.startRouter(t, Config{Quorum: 1})

	fresh := dataset.RandomWalk(64, 16, 4242)
	series := make([][]float64, fresh.Len())
	for i := range series {
		x := make([]float64, 64)
		copy(x, fresh.Get(i))
		series[i] = x
	}
	resp, body := postJSON(t, ts.URL+"/append", api.AppendRequest{Series: series})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: status %d: %s", resp.StatusCode, body)
	}
	var ar api.AppendResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if len(ar.IDs) != len(series) {
		t.Fatalf("acked %d ids for %d series", len(ar.IDs), len(series))
	}
	seen := make(map[int]struct{})
	for _, id := range ar.IDs {
		if _, dup := seen[id]; dup {
			t.Fatalf("duplicate global ID %d in append ack %v", id, ar.IDs)
		}
		seen[id] = struct{}{}
	}

	// Each appended series answers its own query at ~0 under its global ID.
	for i, q := range series {
		resp, body := postJSON(t, ts.URL+"/search", api.SearchRequest{Query: q, K: 3})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search %d: status %d: %s", i, resp.StatusCode, body)
		}
		var sr SearchResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if len(sr.Results) == 0 || sr.Results[0].ID != ar.IDs[i] || sr.Results[0].Dist > 1e-4 {
			t.Fatalf("appended series %d (global %d): top result %+v", i, ar.IDs[i], sr.Results)
		}
	}

	// /info sums the shards: build records plus the appended ones.
	var info InfoResponse
	if code := getJSON(t, ts.URL+"/info", &info); code != http.StatusOK {
		t.Fatalf("/info: %d", code)
	}
	if info.NumRecords != n+len(series) || info.NumShards != 2 {
		t.Fatalf("/info: %+v, want %d records over 2 shards", info, n+len(series))
	}

	// Kill shard 1 and wait for the prober: appends must fail over.
	f.servers[1].Close()
	deadline := time.Now().Add(5 * time.Second)
	for r.Healthy() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("health prober never marked the dead shard down")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, body = postJSON(t, ts.URL+"/append", api.AppendRequest{Series: series[:4]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append after failover: status %d: %s", resp.StatusCode, body)
	}
	var ar2 api.AppendResponse
	if err := json.Unmarshal(body, &ar2); err != nil {
		t.Fatal(err)
	}
	for _, id := range ar2.IDs {
		if id%f.topo.Stride() != 0 {
			t.Fatalf("failover append landed on a dead shard's namespace: id %d", id)
		}
	}
}

// TestRouterMetricsAndFlush smoke-checks the Prometheus exposition and the
// fanned-out flush.
func TestRouterMetricsAndFlush(t *testing.T) {
	f := newFixture(t, 120, 2)
	_, ts := f.startRouter(t, Config{})
	if resp, body := postJSON(t, ts.URL+"/search", api.SearchRequest{Query: f.data[0], K: 3}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d: %s", resp.StatusCode, body)
	}
	resp, body := postJSON(t, ts.URL+"/flush", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: %d: %s", resp.StatusCode, body)
	}
	httpResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(httpResp.Body); err != nil {
		t.Fatal(err)
	}
	prom := buf.String()
	for _, want := range []string{
		"climber_router_search_requests_total 1",
		"climber_router_flush_requests_total 1",
		`climber_router_shard_up{shard="shard-0"} 1`,
		`climber_router_shard_up{shard="shard-1"} 1`,
		"climber_router_query_latency_seconds_count 1",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestRouterBadRequests: malformed bodies are clean 400s at the router,
// never forwarded.
func TestRouterBadRequests(t *testing.T) {
	f := newFixture(t, 120, 2)
	_, ts := f.startRouter(t, Config{MaxK: 50})
	for name, body := range map[string]string{
		"invalid json": `{"query": [1,2`,
		"wrong length": `{"query": [1,2,3], "k": 5}`,
		"k over limit": fmt.Sprintf(`{"query": [%s1], "k": 51}`, strings.Repeat("0,", 63)),
		"bad variant":  fmt.Sprintf(`{"query": [%s1], "variant": "bogus"}`, strings.Repeat("0,", 63)),
	} {
		resp, err := http.Post(ts.URL+"/search", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	// A prefix shorter than the shards' PAA segment count passes the
	// router's loose validation but every shard rejects it with 400; the
	// router must relay the client error, not report a gateway failure.
	resp, body := postJSON(t, ts.URL+"/search/prefix", api.SearchRequest{Query: []float64{1, 2, 3, 4}, K: 3})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("too-short prefix via router: status %d, want 400: %s", resp.StatusCode, body)
	}
}
