package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"climber"
	"climber/internal/api"
	"climber/internal/obs"
)

// Config tunes the router. The zero value is usable: every field falls
// back to the documented default.
type Config struct {
	// MaxInFlight bounds concurrently executing routed requests; further
	// requests queue. Default: 4 x GOMAXPROCS.
	MaxInFlight int
	// QueueTimeout is how long an over-limit request may wait for a slot
	// before it is answered 429. Default: 2s.
	QueueTimeout time.Duration
	// MaxK caps the per-request answer size. Default: 10000.
	MaxK int
	// MaxBatch caps the query count of one batch request. Default: 256.
	MaxBatch int
	// MaxAppend caps the series count of one append request. Default: 1024.
	MaxAppend int
	// MaxBodyBytes caps a request body. Default: 32 MB.
	MaxBodyBytes int64
	// BodyReadTimeout bounds how long reading one request body may take.
	// Default: 15s.
	BodyReadTimeout time.Duration
	// Quorum selects the scatter-gather failure policy. 0 (the default)
	// demands every shard: the first shard error cancels the remaining
	// sub-queries and fails the request fast with 502 — no silently
	// incomplete answers. A positive value tolerates shard loss: the
	// query succeeds, marked partial, as long as at least Quorum shards
	// answered, and is 503 otherwise.
	Quorum int
	// HealthInterval is the period of the background shard health probes.
	// Default: 2s.
	HealthInterval time.Duration
	// ShardTimeout, when positive, bounds each forwarded sub-request in
	// addition to the client's own deadline. Default: 0 (client deadline
	// only).
	ShardTimeout time.Duration
	// Client overrides the HTTP client used for shard traffic (tests,
	// custom transports). Default: a client with a widened idle pool.
	Client *http.Client
	// SlowLogSize bounds the slow-query ring buffer (GET /debug/slow).
	// Default: 128.
	SlowLogSize int
	// SlowThreshold is the duration at or above which a finished routed
	// request is recorded in the slow-query log. Default: 500ms; negative
	// disables threshold capture.
	SlowThreshold time.Duration
	// SlowSample in [0, 1] is the probability an arbitrary routed query is
	// head-sampled: traced across the router AND the shards (the sampled
	// bit propagates in the traceparent header) and recorded in the slow
	// log even when fast. Default: 0.
	SlowSample float64
	// Logger receives the slow-query lines. Default: slog.Default().
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.MaxK <= 0 {
		c.MaxK = 10000
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxAppend <= 0 {
		c.MaxAppend = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.BodyReadTimeout <= 0 {
		c.BodyReadTimeout = 15 * time.Second
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.Client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 64
		c.Client = &http.Client{Transport: tr}
	}
	if c.SlowLogSize <= 0 {
		c.SlowLogSize = 128
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = 500 * time.Millisecond
	}
	if c.SlowThreshold < 0 {
		c.SlowThreshold = 0 // disabled
	}
	if c.SlowSample < 0 {
		c.SlowSample = 0
	}
	if c.SlowSample > 1 {
		c.SlowSample = 1
	}
	return c
}

// Router scatter-gathers CLIMBER queries over the shards of a Topology,
// speaking the same HTTP dialect (internal/api) as the single-node server
// it fronts. Create it with NewRouter, mount Handler, and Close it on
// shutdown to stop the health prober.
type Router struct {
	topo    *Topology
	cfg     Config
	client  *http.Client
	lim     *api.Limiter
	m       rmetrics
	started time.Time
	slow    *obs.SlowLog

	// seriesLen is the indexed series length, learned from the first shard
	// /info that answers; 0 until then. Request validation needs it, so a
	// router whose every shard is unreachable answers 503, not 400/200.
	seriesLen atomic.Int64
	// appendSeq mints the rendezvous routing key for each appended series
	// — the record's global append sequence number. Seeded from the
	// aggregate record count when /info first succeeds; the seed only
	// shifts where the key sequence starts, so a fallback start at 0 still
	// spreads appends evenly.
	appendSeq atomic.Int64

	up         []atomic.Bool // per-shard health, indexed like topo.Shards
	healthStop chan struct{}
	healthDone chan struct{}
	closeOnce  sync.Once

	// probeCtx is the health prober's root context; Close cancels it so
	// in-flight /healthz probes abort instead of running out their
	// timeout while Close waits on healthDone.
	probeCtx    context.Context
	probeCancel context.CancelFunc
}

// rmetrics aggregates the router's operational counters; the admission
// ones are written by the shared api.Limiter.
type rmetrics struct {
	searches    atomic.Int64              // /search requests answered (incl. errors)
	batches     atomic.Int64              // /search/batch requests answered
	prefixes    atomic.Int64              // /search/prefix requests answered
	appends     atomic.Int64              // /append requests answered
	appendSer   atomic.Int64              // series inside successful appends
	flushes     atomic.Int64              // /flush requests answered
	reindexes   atomic.Int64              // /reindex requests answered
	backups     atomic.Int64              // /backup requests answered
	badRequests atomic.Int64              // 400s from decode/validation
	rejected    atomic.Int64              // 429s from admission control
	canceled    atomic.Int64              // requests aborted by client disconnect
	errors      atomic.Int64              // requests failed (shard loss, quorum, internal)
	partials    atomic.Int64              // successful answers merged from a strict subset
	budgetExh   atomic.Int64              // answers partial because a shard's budget ran out
	dups        atomic.Int64              // duplicate global IDs dropped by the merge
	inflight    atomic.Int64              // requests currently holding an admission slot
	queued      atomic.Int64              // requests currently waiting for a slot
	traced      atomic.Int64              // routed queries that ran with a trace attached
	partScanned atomic.Int64              // partitions scanned by the shards for routed answers
	cacheHits   atomic.Int64              // shard partition-cache hits inside routed answers
	cacheMisses atomic.Int64              // shard partition-cache misses inside routed answers
	deltaRecs   atomic.Int64              // delta records the shards scanned for routed answers
	shardErrs   []atomic.Int64            // failed sub-requests, indexed like topo.Shards
	latency     *api.Histogram            // read path (search + batch + prefix)
	appendLat   *api.Histogram            // write path
	stageLat    map[string]*api.Histogram // per-router-stage latency, traced queries only
}

// rstageNames are the router's pipeline stages — the direct children of
// a routed query's root span and the label values of
// climber_router_stage_latency_seconds.
var rstageNames = []string{"scatter", "merge"}

// NewRouter builds a router over a validated topology and starts its
// background health prober. Every shard starts optimistically marked up;
// the first probe round corrects that within HealthInterval.
func NewRouter(t *Topology, cfg Config) *Router {
	r := &Router{
		topo:       t,
		cfg:        cfg.withDefaults(),
		started:    time.Now(),
		up:         make([]atomic.Bool, len(t.Shards)),
		healthStop: make(chan struct{}),
		healthDone: make(chan struct{}),
	}
	// The prober outlives any request, so its root cannot come from a
	// caller.
	//lint:ignore ctxflow the health prober is a background root owned by the Router; Close cancels it
	r.probeCtx, r.probeCancel = context.WithCancel(context.Background())
	r.client = r.cfg.Client
	r.lim = api.NewLimiter(r.cfg.MaxInFlight, r.cfg.QueueTimeout, api.LimiterCounters{
		Queued:   &r.m.queued,
		Rejected: &r.m.rejected,
		Canceled: &r.m.canceled,
		InFlight: &r.m.inflight,
	})
	r.m.shardErrs = make([]atomic.Int64, len(t.Shards))
	r.m.latency = api.NewHistogram()
	r.m.appendLat = api.NewHistogram()
	r.m.stageLat = make(map[string]*api.Histogram, len(rstageNames))
	for _, st := range rstageNames {
		r.m.stageLat[st] = api.NewHistogram()
	}
	r.slow = obs.NewSlowLog(r.cfg.SlowLogSize, r.cfg.SlowThreshold, r.cfg.SlowSample, r.cfg.Logger)
	for i := range r.up {
		r.up[i].Store(true)
	}
	go r.healthLoop()
	return r
}

// Close stops the health prober and drops idle shard connections. It does
// not touch the shards themselves.
func (r *Router) Close() {
	r.closeOnce.Do(func() {
		r.probeCancel()
		close(r.healthStop)
		<-r.healthDone
		r.client.CloseIdleConnections()
	})
}

// Handler returns the router's routing handler — the same endpoint set a
// single climber-serve exposes, so clients need not know they talk to a
// sharded deployment.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /search", r.instrument("/search", &r.m.searches, r.m.latency, r.handleSearch))
	mux.Handle("POST /search/batch", r.instrument("/search/batch", &r.m.batches, r.m.latency, r.handleBatch))
	mux.Handle("POST /search/prefix", r.instrument("/search/prefix", &r.m.prefixes, r.m.latency, r.handlePrefix))
	mux.Handle("POST /append", r.instrument("/append", &r.m.appends, r.m.appendLat, r.handleAppend))
	mux.HandleFunc("POST /flush", r.handleFlush)
	mux.HandleFunc("POST /reindex", r.handleReindex)
	mux.HandleFunc("POST /backup", r.handleBackup)
	mux.HandleFunc("GET /info", r.handleInfo)
	mux.HandleFunc("GET /stats", r.handleStats)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.Handle("GET /debug/slow", r.slow.Handler())
	return mux
}

// SlowLog exposes the router's slow-query ring so cmd/climber-router can
// mount it on the -debug-addr diagnostics listener too.
func (r *Router) SlowLog() *obs.SlowLog { return r.slow }

// queryObs carries one routed request's observability state between the
// instrument wrapper and its handler — same contract as the server's
// (internal/server): the wrapper decides sampling before the handler
// runs, the handler fills in what the query produced.
type queryObs struct {
	sampled bool
	traceID string // propagated trace id ("" = generate fresh)
	stats   any
	trace   *obs.SpanData
	stages  map[string]int64
}

// qobsKey is the context key carrying the request's *queryObs.
type qobsKey struct{}

// qobsFrom returns the request's observability state, or nil outside an
// instrumented handler.
func qobsFrom(ctx context.Context) *queryObs {
	qo, _ := ctx.Value(qobsKey{}).(*queryObs)
	return qo
}

// statusWriter captures the response status code for the slow-query log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// instrument wraps one routed query handler with the unified observation
// pipeline: the latency histogram sees every outcome (400s and 429s
// included), the endpoint counter increments exactly once per request,
// traced queries feed the per-stage histograms, and every finished
// request is offered to the slow-query log.
func (r *Router) instrument(endpoint string, count *atomic.Int64, lat *api.Histogram, h func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		qo := &queryObs{}
		if id, sampled, ok := obs.ParseTraceparent(req.Header.Get(obs.TraceHeader)); ok {
			qo.traceID, qo.sampled = id, sampled
		}
		if !qo.sampled {
			qo.sampled = r.slow.Sample()
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, req.WithContext(context.WithValue(req.Context(), qobsKey{}, qo)))
		d := time.Since(start)
		lat.Observe(d)
		count.Add(1)
		for stage, ns := range qo.stages {
			if hist := r.m.stageLat[stage]; hist != nil {
				hist.Observe(time.Duration(ns))
			}
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		r.slow.Note(endpoint, d, qo.sampled, qo.traceID, status, qo.stats, qo.trace)
	})
}

// traceFor starts a router trace when the request asked for explain or
// the sampling decision armed one. The trace's sampled state propagates
// to every forwarded sub-request via the traceparent header (see
// forward), so the shards trace the same query under the same id.
func (r *Router) traceFor(ctx context.Context, name string, explain bool) (context.Context, *obs.Trace) {
	qo := qobsFrom(ctx)
	if qo == nil || (!explain && !qo.sampled) {
		return ctx, nil
	}
	tr := obs.NewTrace(name, qo.traceID)
	qo.traceID = tr.ID()
	r.m.traced.Add(1)
	return obs.ContextWithSpan(ctx, tr.Root()), tr
}

// finishTrace ends the trace and stores the routed query's stats and
// span tree into the request's observation state, returning the span
// tree for the explain response (nil when untraced).
func finishTrace(ctx context.Context, tr *obs.Trace, stats any) *obs.SpanData {
	qo := qobsFrom(ctx)
	if qo != nil {
		qo.stats = stats
	}
	if tr == nil {
		return nil
	}
	tr.Root().End()
	data := tr.Root().Data()
	if qo != nil {
		qo.trace = data
		qo.stages = tr.Root().StageNanos()
	}
	return data
}

// healthLoop probes every shard's /healthz each HealthInterval and flips
// the per-shard up flags the scatter and append paths consult.
func (r *Router) healthLoop() {
	defer close(r.healthDone)
	r.probeAll() // correct the optimistic start immediately
	ticker := time.NewTicker(r.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.healthStop:
			return
		case <-ticker.C:
			r.probeAll()
		}
	}
}

func (r *Router) probeAll() {
	timeout := r.cfg.HealthInterval
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	var wg sync.WaitGroup
	for i := range r.topo.Shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := r.getShard(r.probeCtx, i, "/healthz", timeout)
			r.up[i].Store(err == nil)
		}(i)
	}
	wg.Wait()
}

// Healthy reports how many shards the last probe round saw up.
func (r *Router) Healthy() int {
	n := 0
	for i := range r.up {
		if r.up[i].Load() {
			n++
		}
	}
	return n
}

// quorumNeed is the number of shard answers a read requires under the
// configured policy.
func (r *Router) quorumNeed() int {
	if r.cfg.Quorum <= 0 {
		return len(r.topo.Shards)
	}
	if r.cfg.Quorum > len(r.topo.Shards) {
		return len(r.topo.Shards)
	}
	return r.cfg.Quorum
}

// errShardStatus is a shard's non-200 answer, carrying the status so the
// router can tell client-caused rejections (a 400 the router could not
// pre-validate, like a prefix shorter than the shards' PAA segment count)
// from genuine shard failures.
type errShardStatus struct {
	status int
	msg    string
}

func (e errShardStatus) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("status %d: %s", e.status, e.msg)
	}
	return fmt.Sprintf("status %d", e.status)
}

// do runs one shard request and returns the 200 body; a non-2xx answer
// becomes an errShardStatus carrying the shard's own message.
func (r *Router) do(req *http.Request) ([]byte, error) {
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var er api.ErrorResponse
		if jerr := api.DecodeJSON(raw, &er); jerr == nil && er.Error != "" {
			return nil, errShardStatus{status: resp.StatusCode, msg: er.Error}
		}
		return nil, errShardStatus{status: resp.StatusCode}
	}
	return raw, nil
}

// forward POSTs body to one shard and returns the response body. When ctx
// carries an active span, the sub-request gets a traceparent header with
// the sampled bit set, so the shard traces the same query under the same
// id and its trace nests under the router's.
func (r *Router) forward(ctx context.Context, shard int, path string, body []byte) ([]byte, error) {
	if r.cfg.ShardTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.cfg.ShardTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.topo.Shards[shard].URL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if sp := obs.SpanFromContext(ctx); sp != nil {
		req.Header.Set(obs.TraceHeader, obs.FormatTraceparent(sp.Trace().ID(), true))
	}
	return r.do(req)
}

// getShard GETs path on one shard, bounded by timeout when positive.
func (r *Router) getShard(ctx context.Context, shard int, path string, timeout time.Duration) ([]byte, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.topo.Shards[shard].URL+path, nil)
	if err != nil {
		return nil, err
	}
	return r.do(req)
}

// reply is one shard's scatter outcome. span is the per-shard child of
// the scatter span (nil when untraced); the gather step grafts the
// shard's own span tree under it.
type reply struct {
	shard int
	body  []byte
	err   error
	span  *obs.Span
}

// errQuorum is the scatter failure of a quorum-policy read: fewer shards
// answered than the policy demands. It maps to 503.
type errQuorum struct{ got, want int }

func (e errQuorum) Error() string {
	return fmt.Sprintf("only %d of the %d required shards answered", e.got, e.want)
}

// scatter fans body out to the shards and gathers replies under the
// configured policy.
//
// All-shards policy (Quorum 0): every shard is asked, even ones the prober
// marked down — a query must not fail on stale health state — and the
// first failure cancels the remaining sub-queries and fails the scatter
// fast.
//
// Quorum policy: shards marked down are skipped (their slot is a recorded
// failure), the rest are asked, and the scatter succeeds once at least
// quorumNeed answers arrived — even if others failed mid-query.
func (r *Router) scatter(ctx context.Context, path string, body []byte) (oks []reply, asked int, err error) {
	need := r.quorumNeed()
	all := r.cfg.Quorum <= 0
	targets := make([]int, 0, len(r.topo.Shards))
	failed := 0
	for i := range r.topo.Shards {
		if all || r.up[i].Load() {
			targets = append(targets, i)
		} else {
			failed++
			r.m.shardErrs[i].Add(1)
		}
	}
	if len(targets) < need {
		return nil, len(targets), errQuorum{got: 0, want: need}
	}

	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	scatterSpan := obs.SpanFromContext(ctx)
	replies := make(chan reply, len(targets))
	for _, i := range targets {
		go func(i int) {
			ssp := scatterSpan.StartChild("shard")
			ssp.SetLabel("shard", r.topo.Shards[i].ID)
			ssp.SetAttr("shard", int64(i))
			raw, err := r.forward(obs.ContextWithSpan(sctx, ssp), i, path, body)
			ssp.End()
			replies <- reply{shard: i, body: raw, err: err, span: ssp}
		}(i)
	}
	var firstErr error
	for range targets {
		rep := <-replies
		if rep.err != nil {
			r.m.shardErrs[rep.shard].Add(1)
			werr := fmt.Errorf("shard %s: %w", r.topo.Shards[rep.shard].ID, rep.err)
			if all {
				// Fail fast: stop the survivors, drain nothing more.
				cancel()
				return nil, len(targets), werr
			}
			if firstErr == nil {
				firstErr = werr
			}
			failed++
			continue
		}
		oks = append(oks, rep)
	}
	if len(oks) < need {
		// Classify before blaming the shards: a dead client context means
		// the scatter was abandoned, not that the quorum is lost — report
		// it as the cancellation it is. A client-caused 4xx (every shard
		// rejecting a request the router could not pre-validate) stays a
		// client error too.
		if cerr := ctx.Err(); cerr != nil {
			return nil, len(targets), cerr
		}
		var se errShardStatus
		if errors.As(firstErr, &se) && se.status >= 400 && se.status < 500 {
			return nil, len(targets), firstErr
		}
		return nil, len(targets), fmt.Errorf("%w (last error: %v)", errQuorum{got: len(oks), want: need}, firstErr)
	}
	return oks, len(targets), nil
}

// admitAndRead is the shared front half of every routed POST handler:
// admission, then the body read under cap and deadline (api.ReadBody).
func (r *Router) admitAndRead(w http.ResponseWriter, req *http.Request) (body []byte, release func(), ok bool) {
	release, status, err := r.lim.Admit(req.Context())
	if err != nil {
		api.WriteError(w, status, err)
		return nil, nil, false
	}
	body, status, err = api.ReadBody(w, req, r.cfg.MaxBodyBytes, r.cfg.BodyReadTimeout)
	if err != nil {
		r.m.badRequests.Add(1)
		api.WriteError(w, status, err)
		release()
		return nil, nil, false
	}
	return body, release, true
}

// finish maps a scatter error to its response status, maintaining the
// outcome counters. It reports whether the request succeeded.
func (r *Router) finish(w http.ResponseWriter, err error) bool {
	var q errQuorum
	var se errShardStatus
	switch {
	case err == nil:
		return true
	case errors.Is(err, context.Canceled):
		r.m.canceled.Add(1)
		api.WriteError(w, api.StatusClientClosedRequest, err)
	case errors.Is(err, context.DeadlineExceeded):
		r.m.errors.Add(1)
		api.WriteError(w, http.StatusGatewayTimeout, err)
	case errors.As(err, &se) && se.status >= 400 && se.status < 500:
		// The shards rejected the request itself (e.g. a prefix shorter
		// than their PAA segment count, which the router cannot
		// pre-validate): a client error, relayed with the shard's status.
		r.m.badRequests.Add(1)
		api.WriteError(w, se.status, err)
	case errors.As(err, &q):
		r.m.errors.Add(1)
		api.WriteError(w, http.StatusServiceUnavailable, err)
	default:
		r.m.errors.Add(1)
		api.WriteError(w, http.StatusBadGateway, err)
	}
	return false
}

// requireSeriesLen returns the indexed series length, learning it from the
// shards' /info on first need. A router that has never reached any shard
// cannot validate queries and reports 503.
func (r *Router) requireSeriesLen(ctx context.Context) (int, error) {
	if n := r.seriesLen.Load(); n > 0 {
		return int(n), nil
	}
	if _, err := r.aggregateInfo(ctx); err != nil {
		return 0, fmt.Errorf("no shard reachable to learn the index shape: %w", err)
	}
	if n := r.seriesLen.Load(); n > 0 {
		return int(n), nil
	}
	return 0, errors.New("no shard reachable to learn the index shape")
}

// aggregateInfo fans GET /info out to every shard and folds the answers:
// counts are summed once per ID namespace (read replicas share one), the
// series length is learned and cached, and the append sequence is seeded
// from the aggregate record count.
func (r *Router) aggregateInfo(ctx context.Context) (*InfoResponse, error) {
	type infoReply struct {
		shard int
		info  api.InfoResponse
		err   error
	}
	replies := make(chan infoReply, len(r.topo.Shards))
	for i := range r.topo.Shards {
		go func(i int) {
			raw, err := r.getShard(ctx, i, "/info", r.cfg.ShardTimeout)
			var info api.InfoResponse
			if err == nil {
				err = api.DecodeJSON(raw, &info)
			}
			replies <- infoReply{shard: i, info: info, err: err}
		}(i)
	}
	out := &InfoResponse{NumShards: len(r.topo.Shards)}
	seenBase := make(map[int]struct{})
	var firstErr error
	for range r.topo.Shards {
		rep := <-replies
		if rep.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %s: %w", r.topo.Shards[rep.shard].ID, rep.err)
			}
			continue
		}
		out.ShardsAnswered++
		out.SeriesLen = rep.info.SeriesLen
		base := *r.topo.Shards[rep.shard].IDBase
		if _, dup := seenBase[base]; dup {
			continue // a read replica of a namespace already counted
		}
		seenBase[base] = struct{}{}
		out.NumRecords += rep.info.NumRecords
		out.NumGroups += rep.info.NumGroups
		out.NumPartitions += rep.info.NumPartitions
		out.SkeletonBytes += rep.info.SkeletonBytes
	}
	if out.ShardsAnswered == 0 {
		return nil, firstErr
	}
	r.seriesLen.CompareAndSwap(0, int64(out.SeriesLen))
	// Seed the append routing sequence past the existing records once.
	r.appendSeq.CompareAndSwap(0, int64(out.NumRecords))
	return out, nil
}

// gatherSearch decodes scatter replies for /search-shaped endpoints and
// merges them into the global top-k. A shard that answered partially (its
// local budget stopped the query) marks the merged answer partial too —
// the global top-k can only be as complete as its inputs. When the
// request asked for explain, each shard's planner explanation is keyed by
// its shard ID and its span tree is grafted under the scatter span that
// fetched it.
func (r *Router) gatherSearch(oks []reply, k int, explain bool) (*SearchResponse, error) {
	answers := make([]answer, 0, len(oks))
	stats := make([]climber.Stats, 0, len(oks))
	budgetPartial := false
	steps := 0
	var explains map[string]*api.ExplainData
	for _, rep := range oks {
		var sr api.SearchResponse
		if err := api.DecodeJSON(rep.body, &sr); err != nil {
			return nil, fmt.Errorf("shard %s: malformed response: %w", r.topo.Shards[rep.shard].ID, err)
		}
		answers = append(answers, answer{shard: rep.shard, results: sr.Results})
		stats = append(stats, sr.Stats)
		steps += sr.StepsExecuted
		if sr.Partial {
			budgetPartial = true
		}
		if explain {
			rep.span.AddChildData(sr.Trace)
			if ed := sr.Explain[""]; ed != nil {
				if explains == nil {
					explains = make(map[string]*api.ExplainData, len(oks))
				}
				explains[r.topo.Shards[rep.shard].ID] = ed
			}
		}
	}
	merged, dups := r.topo.mergeTopK(answers, k)
	r.m.dups.Add(int64(dups))
	if budgetPartial {
		r.m.budgetExh.Add(1)
	}
	sum := sumStats(stats)
	r.noteEffort(sum)
	return &SearchResponse{
		Results:        merged,
		Stats:          sum,
		ShardsAnswered: len(oks),
		Partial:        budgetPartial,
		StepsExecuted:  steps,
		Explain:        explains,
	}, nil
}

// noteEffort feeds the router's query-effort counters from one merged
// answer's summed shard stats, so /metrics shows the scan volume the
// routed traffic is costing the fleet.
func (r *Router) noteEffort(sum climber.Stats) {
	r.m.partScanned.Add(int64(sum.PartitionsScanned))
	r.m.cacheHits.Add(int64(sum.PartitionCacheHits))
	r.m.cacheMisses.Add(int64(sum.PartitionCacheMisses))
	r.m.deltaRecs.Add(int64(sum.DeltaScanned))
}

func (r *Router) handleSearch(w http.ResponseWriter, req *http.Request) {
	r.handleSearchLike(w, req, "/search", func(body []byte, seriesLen int) (int, bool, error) {
		sreq, err := api.DecodeSearchRequest(body, seriesLen, r.cfg.MaxK)
		if err != nil {
			return 0, false, err
		}
		return sreq.K, sreq.Explain, nil
	})
}

// handlePrefix validates a prefix query as loosely as the router can — it
// does not know the shards' PAA segment count, so the lower length bound
// is 1 and a too-short prefix comes back as the shard's 400.
func (r *Router) handlePrefix(w http.ResponseWriter, req *http.Request) {
	r.handleSearchLike(w, req, "/search/prefix", func(body []byte, seriesLen int) (int, bool, error) {
		sreq, err := api.DecodePrefixRequest(body, 1, seriesLen, r.cfg.MaxK)
		if err != nil {
			return 0, false, err
		}
		return sreq.K, sreq.Explain, nil
	})
}

// handleSearchLike is the shared scatter-merge-respond path of /search and
// /search/prefix; decode returns the validated request's k and explain
// flag. An explain request needs no body rewriting: the explain flag
// forwards verbatim, so each shard already answers with its own span tree
// and planner explanation for the router to nest.
func (r *Router) handleSearchLike(w http.ResponseWriter, req *http.Request, path string, decode func(body []byte, seriesLen int) (int, bool, error)) {
	body, release, ok := r.admitAndRead(w, req)
	if !ok {
		return
	}
	defer release()
	seriesLen, err := r.requireSeriesLen(req.Context())
	if err != nil {
		r.m.errors.Add(1)
		api.WriteError(w, http.StatusServiceUnavailable, err)
		return
	}
	k, explain, err := decode(body, seriesLen)
	if err != nil {
		r.m.badRequests.Add(1)
		api.WriteError(w, http.StatusBadRequest, err)
		return
	}

	ctx, tr := r.traceFor(req.Context(), strings.TrimPrefix(path, "/"), explain)
	ssp := tr.Root().StartChild("scatter")
	oks, asked, err := r.scatter(obs.ContextWithSpan(ctx, ssp), path, body)
	ssp.End()
	if err != nil {
		finishTrace(req.Context(), tr, nil)
		r.finish(w, err)
		return
	}
	msp := tr.Root().StartChild("merge")
	resp, err := r.gatherSearch(oks, k, explain)
	msp.End()
	if resp != nil {
		resp.Trace = finishTrace(req.Context(), tr, resp.Stats)
		if !explain {
			resp.Trace = nil
		}
	} else {
		finishTrace(req.Context(), tr, nil)
	}
	if !r.finish(w, err) {
		return
	}
	resp.ShardsAsked = asked
	if resp.ShardsAnswered < len(r.topo.Shards) {
		resp.Partial = true
	}
	if resp.Partial {
		r.m.partials.Add(1)
	}
	api.WriteJSON(w, http.StatusOK, resp)
}

func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	body, release, ok := r.admitAndRead(w, req)
	if !ok {
		return
	}
	defer release()
	seriesLen, err := r.requireSeriesLen(req.Context())
	if err != nil {
		r.m.errors.Add(1)
		api.WriteError(w, http.StatusServiceUnavailable, err)
		return
	}
	breq, err := api.DecodeBatchRequest(body, seriesLen, r.cfg.MaxK, r.cfg.MaxBatch)
	if err != nil {
		r.m.badRequests.Add(1)
		api.WriteError(w, http.StatusBadRequest, err)
		return
	}

	ctx, tr := r.traceFor(req.Context(), "batch", breq.Explain)
	ssp := tr.Root().StartChild("scatter")
	oks, asked, err := r.scatter(obs.ContextWithSpan(ctx, ssp), "/search/batch", body)
	ssp.End()
	if err != nil {
		finishTrace(req.Context(), tr, nil)
		r.finish(w, err)
		return
	}
	msp := tr.Root().StartChild("merge")
	// Decode every shard's batch and merge query-by-query.
	perShard := make([]*api.BatchResponse, len(oks))
	budgetPartial := false
	steps := 0
	for i, rep := range oks {
		var br api.BatchResponse
		if err := api.DecodeJSON(rep.body, &br); err != nil || len(br.Results) != len(breq.Queries) {
			msp.End()
			finishTrace(req.Context(), tr, nil)
			r.finish(w, fmt.Errorf("shard %s: malformed batch response", r.topo.Shards[rep.shard].ID))
			return
		}
		perShard[i] = &br
		steps += br.StepsExecuted
		if br.Partial {
			budgetPartial = true
		}
		if breq.Explain {
			rep.span.AddChildData(br.Trace)
		}
	}
	if budgetPartial {
		r.m.budgetExh.Add(1)
	}
	out := &BatchResponse{
		Results:        make([][]api.Result, len(breq.Queries)),
		ShardsAsked:    asked,
		ShardsAnswered: len(oks),
		Partial:        budgetPartial || len(oks) < len(r.topo.Shards),
		StepsExecuted:  steps,
	}
	for q := range breq.Queries {
		answers := make([]answer, 0, len(oks))
		for i, rep := range oks {
			answers = append(answers, answer{shard: rep.shard, results: perShard[i].Results[q]})
		}
		merged, dups := r.topo.mergeTopK(answers, breq.K)
		r.m.dups.Add(int64(dups))
		out.Results[q] = merged
	}
	msp.End()
	trace := finishTrace(req.Context(), tr, batchSummary{Queries: len(breq.Queries), StepsExecuted: steps})
	if breq.Explain {
		out.Trace = trace
	}
	if out.Partial {
		r.m.partials.Add(1)
	}
	api.WriteJSON(w, http.StatusOK, out)
}

// batchSummary is the slow-query-log stats shape for a routed batch: a
// compact roll-up; per-shard detail lives under the trace's scatter span.
type batchSummary struct {
	Queries       int `json:"queries"`
	StepsExecuted int `json:"steps_executed"`
}

// handleAppend places each incoming series on a shard by rendezvous
// hashing over the record's global append sequence number, forwards the
// per-shard sub-batches concurrently, and maps the shards' local ID acks
// into global IDs, in input order.
//
// Durability is per shard: a sub-batch acked by its shard is durable even
// if another shard's sub-batch fails and the whole request reports 502. A
// retry after a partial failure may therefore duplicate the series that
// did land (under fresh IDs); exactly-once routed appends need a dedupe
// key and are a documented follow-up.
func (r *Router) handleAppend(w http.ResponseWriter, req *http.Request) {
	body, release, ok := r.admitAndRead(w, req)
	if !ok {
		return
	}
	defer release()
	seriesLen, err := r.requireSeriesLen(req.Context())
	if err != nil {
		r.m.errors.Add(1)
		api.WriteError(w, http.StatusServiceUnavailable, err)
		return
	}
	areq, err := api.DecodeAppendRequest(body, seriesLen, r.cfg.MaxAppend)
	if err != nil {
		r.m.badRequests.Add(1)
		api.WriteError(w, http.StatusBadRequest, err)
		return
	}

	// Route every series: rendezvous order, first healthy shard wins. A
	// topology where nothing is up falls back to the rendezvous owner so
	// the failure surfaces as that shard's connection error.
	type subBatch struct {
		series [][]float64
		pos    []int // positions in the request, to restore input order
	}
	subs := make(map[int]*subBatch)
	for pos, s := range areq.Series {
		key := uint64(r.appendSeq.Add(1) - 1)
		rank := r.topo.Rank(key)
		target := rank[0]
		for _, cand := range rank {
			if r.up[cand].Load() {
				target = cand
				break
			}
		}
		sb := subs[target]
		if sb == nil {
			sb = &subBatch{}
			subs[target] = sb
		}
		sb.series = append(sb.series, s)
		sb.pos = append(sb.pos, pos)
	}

	type appendReply struct {
		shard int
		ids   []int
		err   error
	}
	replies := make(chan appendReply, len(subs))
	for shard, sb := range subs {
		go func(shard int, sb *subBatch) {
			raw, err := encodeJSON(api.AppendRequest{Series: sb.series})
			if err == nil {
				raw, err = r.forward(req.Context(), shard, "/append", raw)
			}
			var ar api.AppendResponse
			if err == nil {
				err = api.DecodeJSON(raw, &ar)
			}
			if err == nil && len(ar.IDs) != len(sb.series) {
				err = fmt.Errorf("acked %d of %d series", len(ar.IDs), len(sb.series))
			}
			replies <- appendReply{shard: shard, ids: ar.IDs, err: err}
		}(shard, sb)
	}
	ids := make([]int, len(areq.Series))
	var firstErr error
	for range subs {
		rep := <-replies
		if rep.err != nil {
			r.m.shardErrs[rep.shard].Add(1)
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %s: %w", r.topo.Shards[rep.shard].ID, rep.err)
			}
			continue
		}
		for i, local := range rep.ids {
			ids[subs[rep.shard].pos[i]] = r.topo.GlobalID(rep.shard, local)
		}
	}
	if !r.finish(w, firstErr) {
		return
	}
	r.m.appendSer.Add(int64(len(areq.Series)))
	api.WriteJSON(w, http.StatusOK, api.AppendResponse{IDs: ids})
}

// fanoutPost is the shared shape of the administrative endpoints (/flush,
// /reindex, /backup): POST body to every shard concurrently; all must
// succeed. It returns the first shard error, nil when every shard answered.
func (r *Router) fanoutPost(req *http.Request, path string, body []byte) error {
	var wg sync.WaitGroup
	errs := make([]error, len(r.topo.Shards))
	for i := range r.topo.Shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.forward(req.Context(), i, path, body)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			r.m.shardErrs[i].Add(1)
			return fmt.Errorf("shard %s: %w", r.topo.Shards[i].ID, err)
		}
	}
	return nil
}

// handleFlush fans the flush out to every shard; all must succeed.
func (r *Router) handleFlush(w http.ResponseWriter, req *http.Request) {
	release, status, err := r.lim.Admit(req.Context())
	if err != nil {
		api.WriteError(w, status, err)
		return
	}
	defer release()
	r.m.flushes.Add(1)
	if !r.finish(w, r.fanoutPost(req, "/flush", []byte("{}"))) {
		return
	}
	api.WriteJSON(w, http.StatusOK, map[string]string{"status": "flushed"})
}

// handleReindex fans an online reindex out to every shard; all must
// succeed. A shard already reindexing answers 409, which relays to the
// client as a 4xx via finish's shard-status mapping. No admission slot is
// held: a reindex runs for minutes and must not starve the query budget.
func (r *Router) handleReindex(w http.ResponseWriter, req *http.Request) {
	r.m.reindexes.Add(1)
	if !r.finish(w, r.fanoutPost(req, "/reindex", []byte("{}"))) {
		return
	}
	api.WriteJSON(w, http.StatusOK, map[string]string{"status": "reindexed"})
}

// handleBackup forwards the backup request verbatim to every shard: each
// writes a snapshot named by the request under its own configured backup
// root. All must succeed; a shard without a backup root answers 403, which
// relays as a 4xx.
func (r *Router) handleBackup(w http.ResponseWriter, req *http.Request) {
	r.m.backups.Add(1)
	body, status, err := api.ReadBody(w, req, r.cfg.MaxBodyBytes, r.cfg.BodyReadTimeout)
	if err != nil {
		r.m.badRequests.Add(1)
		api.WriteError(w, status, err)
		return
	}
	if !r.finish(w, r.fanoutPost(req, "/backup", body)) {
		return
	}
	api.WriteJSON(w, http.StatusOK, map[string]string{"status": "backed_up"})
}

func (r *Router) handleInfo(w http.ResponseWriter, req *http.Request) {
	info, err := r.aggregateInfo(req.Context())
	if err != nil {
		r.m.errors.Add(1)
		api.WriteError(w, http.StatusServiceUnavailable, fmt.Errorf("no shard reachable: %w", err))
		return
	}
	api.WriteJSON(w, http.StatusOK, info)
}

// handleStats reports the router's own counters plus every reachable
// shard's /stats body verbatim under its shard ID; unreachable shards map
// to an error object instead.
func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	resp := StatsResponse{
		Router: r.m.snapshot(time.Since(r.started)),
		Shards: make(map[string]json.RawMessage, len(r.topo.Shards)),
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := range r.topo.Shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, err := r.getShard(req.Context(), i, "/stats", 2*time.Second)
			if err != nil || !json.Valid(raw) {
				raw, _ = json.Marshal(api.ErrorResponse{Error: fmt.Sprintf("unreachable: %v", err)})
			}
			mu.Lock()
			resp.Shards[r.topo.Shards[i].ID] = json.RawMessage(raw)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	api.WriteJSON(w, http.StatusOK, resp)
}

// handleHealthz aggregates the shard health picture: 200 with "ok" when
// every shard is up, 200 with "degraded" while the read policy can still
// be served, 503 otherwise.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	resp := HealthzResponse{Shards: make(map[string]string, len(r.topo.Shards))}
	healthy := 0
	for i := range r.topo.Shards {
		state := "down"
		if r.up[i].Load() {
			state = "up"
			healthy++
		}
		resp.Shards[r.topo.Shards[i].ID] = state
	}
	switch {
	case healthy == len(r.topo.Shards):
		resp.Status = "ok"
		api.WriteJSON(w, http.StatusOK, resp)
	case healthy >= r.quorumNeed():
		resp.Status = "degraded"
		api.WriteJSON(w, http.StatusOK, resp)
	default:
		resp.Status = "unavailable"
		api.WriteJSON(w, http.StatusServiceUnavailable, resp)
	}
}

func (m *rmetrics) snapshot(uptime time.Duration) RouterStats {
	var shardErrs int64
	for i := range m.shardErrs {
		shardErrs += m.shardErrs[i].Load()
	}
	return RouterStats{
		Searches:          m.searches.Load(),
		Batches:           m.batches.Load(),
		PrefixSearches:    m.prefixes.Load(),
		Appends:           m.appends.Load(),
		AppendSeries:      m.appendSer.Load(),
		Flushes:           m.flushes.Load(),
		Reindexes:         m.reindexes.Load(),
		Backups:           m.backups.Load(),
		BadRequests:       m.badRequests.Load(),
		Rejected:          m.rejected.Load(),
		Canceled:          m.canceled.Load(),
		Errors:            m.errors.Load(),
		PartialAnswers:    m.partials.Load(),
		BudgetExhausted:   m.budgetExh.Load(),
		DuplicatesDropped: m.dups.Load(),
		ShardErrors:       shardErrs,
		InFlight:          m.inflight.Load(),
		Queued:            m.queued.Load(),
		UptimeSeconds:     uptime.Seconds(),
	}
}

// handleMetrics renders the router's Prometheus exposition: request and
// outcome counters, scatter health gauges per shard, and the read/write
// latency histograms.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	var b strings.Builder
	m := &r.m
	metric := func(name, help, kind string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		fmt.Fprintf(&b, "%s %d\n", name, v)
	}
	counter := func(name, help string, v int64) { metric(name, help, "counter", v) }
	gauge := func(name, help string, v int64) { metric(name, help, "gauge", v) }
	fmt.Fprintf(&b, "# HELP climber_build_info Build identity of this router; constant 1.\n# TYPE climber_build_info gauge\n")
	fmt.Fprintf(&b, "climber_build_info{version=%q,role=\"router\",shards=\"%d\"} 1\n", climber.Version, len(r.topo.Shards))
	counter("climber_router_search_requests_total", "Answered /search requests.", m.searches.Load())
	counter("climber_router_batch_requests_total", "Answered /search/batch requests.", m.batches.Load())
	counter("climber_router_prefix_requests_total", "Answered /search/prefix requests.", m.prefixes.Load())
	counter("climber_router_append_requests_total", "Answered /append requests.", m.appends.Load())
	counter("climber_router_append_series_total", "Series inside successful appends.", m.appendSer.Load())
	counter("climber_router_flush_requests_total", "Answered /flush requests.", m.flushes.Load())
	counter("climber_router_reindex_requests_total", "Answered /reindex requests.", m.reindexes.Load())
	counter("climber_router_backup_requests_total", "Answered /backup requests.", m.backups.Load())
	counter("climber_router_bad_requests_total", "Requests rejected with 400.", m.badRequests.Load())
	counter("climber_router_rejected_total", "Requests rejected with 429 by admission control.", m.rejected.Load())
	counter("climber_router_canceled_total", "Requests aborted by client disconnect.", m.canceled.Load())
	counter("climber_router_errors_total", "Requests failed by shard loss or quorum.", m.errors.Load())
	counter("climber_router_partial_answers_total", "Partial answers: shard-subset merges or budget-truncated shard answers.", m.partials.Load())
	counter("climber_router_budget_exhausted_total", "Answers partial because at least one shard's query budget ran out.", m.budgetExh.Load())
	counter("climber_router_duplicates_dropped_total", "Duplicate global IDs dropped by the top-k merge.", m.dups.Load())
	gauge("climber_router_inflight_requests", "Requests currently holding an admission slot.", m.inflight.Load())
	gauge("climber_router_queued_requests", "Requests currently waiting for an admission slot.", m.queued.Load())
	counter("climber_router_traced_queries_total", "Routed queries that ran with tracing attached (explain, sampled, or propagated).", m.traced.Load())
	counter("climber_router_slow_log_entries_total", "Routed requests recorded in the slow-query log (threshold or sampled).", r.slow.Total())
	counter("climber_router_partitions_scanned_total", "Partitions the shards scanned for routed answers.", m.partScanned.Load())
	counter("climber_router_partition_cache_hits_total", "Shard partition-cache hits inside routed answers.", m.cacheHits.Load())
	counter("climber_router_partition_cache_misses_total", "Shard partition-cache misses inside routed answers.", m.cacheMisses.Load())
	counter("climber_router_delta_scanned_total", "Delta records the shards scanned for routed answers.", m.deltaRecs.Load())

	fmt.Fprintf(&b, "# HELP climber_router_shard_up Shard health per the last probe (1 up, 0 down).\n# TYPE climber_router_shard_up gauge\n")
	for i := range r.topo.Shards {
		v := 0
		if r.up[i].Load() {
			v = 1
		}
		fmt.Fprintf(&b, "climber_router_shard_up{shard=%q} %d\n", r.topo.Shards[i].ID, v)
	}
	fmt.Fprintf(&b, "# HELP climber_router_shard_errors_total Failed sub-requests per shard.\n# TYPE climber_router_shard_errors_total counter\n")
	for i := range r.topo.Shards {
		fmt.Fprintf(&b, "climber_router_shard_errors_total{shard=%q} %d\n", r.topo.Shards[i].ID, m.shardErrs[i].Load())
	}
	r.renderShardCacheGauges(req.Context(), &b)

	m.latency.Render(&b, "climber_router_query_latency_seconds",
		"End-to-end routed query latency, every outcome included (200s, 400s, 429s).")
	m.appendLat.Render(&b, "climber_router_append_latency_seconds",
		"End-to-end routed append latency (admission to global ack).")
	for i, st := range rstageNames {
		m.stageLat[st].RenderLabeled(&b, "climber_router_stage_latency_seconds",
			fmt.Sprintf("stage=%q", st),
			"Per-router-stage latency of traced routed queries.", i == 0)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = io.WriteString(w, b.String())
}

// renderShardCacheGauges polls every reachable shard's /stats and emits
// per-shard partition-cache residency gauges plus fleet totals — the
// router-level view of how much memory the shards' zero-copy read paths
// hold resident (and how much of it is reclaimable mapped pages).
// Unreachable shards are skipped; their absence is visible through
// climber_router_shard_up.
func (r *Router) renderShardCacheGauges(ctx context.Context, b *strings.Builder) {
	type cacheBytes struct {
		Cache struct {
			ResidentBytes int64
			MappedBytes   int64
		} `json:"cache"`
	}
	byShard := make([]cacheBytes, len(r.topo.Shards))
	ok := make([]bool, len(r.topo.Shards))
	var wg sync.WaitGroup
	for i := range r.topo.Shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, err := r.getShard(ctx, i, "/stats", 2*time.Second)
			if err != nil {
				return
			}
			ok[i] = json.Unmarshal(raw, &byShard[i]) == nil
		}(i)
	}
	wg.Wait()
	var resident, mapped int64
	fmt.Fprintf(b, "# HELP climber_router_shard_cache_resident_bytes Per-shard partition-cache resident bytes.\n# TYPE climber_router_shard_cache_resident_bytes gauge\n")
	for i := range r.topo.Shards {
		if !ok[i] {
			continue
		}
		fmt.Fprintf(b, "climber_router_shard_cache_resident_bytes{shard=%q} %d\n", r.topo.Shards[i].ID, byShard[i].Cache.ResidentBytes)
		resident += byShard[i].Cache.ResidentBytes
		mapped += byShard[i].Cache.MappedBytes
	}
	fmt.Fprintf(b, "# HELP climber_router_shard_cache_mapped_bytes Per-shard partition-cache memory-mapped bytes.\n# TYPE climber_router_shard_cache_mapped_bytes gauge\n")
	for i := range r.topo.Shards {
		if ok[i] {
			fmt.Fprintf(b, "climber_router_shard_cache_mapped_bytes{shard=%q} %d\n", r.topo.Shards[i].ID, byShard[i].Cache.MappedBytes)
		}
	}
	fmt.Fprintf(b, "# HELP climber_router_cache_resident_bytes Partition-cache resident bytes summed over reachable shards.\n# TYPE climber_router_cache_resident_bytes gauge\nclimber_router_cache_resident_bytes %d\n", resident)
	fmt.Fprintf(b, "# HELP climber_router_cache_mapped_bytes Partition-cache mapped bytes summed over reachable shards.\n# TYPE climber_router_cache_mapped_bytes gauge\nclimber_router_cache_mapped_bytes %d\n", mapped)
}

// encodeJSON marshals v for a forwarded sub-request body.
func encodeJSON(v any) ([]byte, error) { return json.Marshal(v) }
