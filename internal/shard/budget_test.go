package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"climber"
	"climber/internal/api"
	"climber/internal/dataset"
	"climber/internal/server"
)

// budgetFixtureOpts builds shard DBs with tiny partitions so per-shard
// plans span several steps and a max_partitions budget actually truncates.
func budgetFixtureOpts() []climber.Option {
	return []climber.Option{
		climber.WithSegments(8), climber.WithPivots(24), climber.WithPrefixLen(4),
		climber.WithCapacity(50), climber.WithSampleRate(0.2), climber.WithBlockSize(128),
		climber.WithSeed(7),
	}
}

// TestRouterForwardsBudgets drives a real two-shard deployment: a search
// with max_partitions must reach the shards (each loading at most that
// many partitions), and when a shard's plan is truncated the routed answer
// must be marked partial with the budget counter incremented.
func TestRouterForwardsBudgets(t *testing.T) {
	ds := dataset.RandomWalk(64, 2400, 55)
	topo := &Topology{}
	var shards []*climber.DB
	for s, sub := range SplitDataset(ds, 2) {
		db, err := climber.BuildDataset(t.TempDir(), sub, budgetFixtureOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(server.New(db, server.Config{}).Handler())
		shards = append(shards, db)
		topo.Shards = append(topo.Shards, Info{ID: fmt.Sprintf("shard-%d", s), URL: ts.URL})
		t.Cleanup(func() { ts.Close(); db.Close() })
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	r := NewRouter(topo, Config{HealthInterval: 50 * time.Millisecond})
	rs := httptest.NewServer(r.Handler())
	t.Cleanup(func() { rs.Close(); r.Close() })

	q := make([]float64, 64)
	copy(q, ds.Get(3))

	sawPartial := false
	for _, qid := range []int{3, 500, 1000, 1500, 2000} {
		copy(q, ds.Get(qid))
		// Probe: the full routed answer must not be partial.
		resp, body := postJSON(t, rs.URL+"/search", api.SearchRequest{Query: q, K: 300, Variant: "od-smallest"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("probe: status %d: %s", resp.StatusCode, body)
		}
		var full SearchResponse
		if err := json.Unmarshal(body, &full); err != nil {
			t.Fatal(err)
		}
		if full.Partial {
			t.Fatalf("unbudgeted routed answer marked partial")
		}

		resp, body = postJSON(t, rs.URL+"/search", api.SearchRequest{
			Query: q, K: 300, Variant: "od-smallest", MaxPartitions: 1, TimeBudgetMS: 60_000,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("budgeted: status %d: %s", resp.StatusCode, body)
		}
		var got SearchResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		// Each of the two shards loads at most one partition.
		if got.Stats.PartitionsScanned > 2 {
			t.Fatalf("budget 1/shard but %d partitions loaded in total", got.Stats.PartitionsScanned)
		}
		if len(got.Results) == 0 {
			t.Fatal("budgeted routed query returned nothing")
		}
		// full.StepsExecuted sums both shards' plans; more than 2 steps
		// means at least one shard was truncated by the budget.
		if full.StepsExecuted > 2 {
			if !got.Partial || got.StepsExecuted >= full.StepsExecuted {
				t.Fatalf("truncated routed answer not marked: partial=%v steps=%d/%d",
					got.Partial, got.StepsExecuted, full.StepsExecuted)
			}
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Fatal("no query produced a truncated shard plan; fixture cannot exercise the budget")
	}

	// The router's budget-exhausted counter must have moved.
	resp, body := getBody(t, rs.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats: %d", resp.StatusCode)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Router.BudgetExhausted == 0 {
		t.Fatal("router budget_exhausted counter still zero after partial answers")
	}
	_, body = getBody(t, rs.URL+"/metrics")
	if !strings.Contains(string(body), "climber_router_budget_exhausted_total") {
		t.Fatal("climber_router_budget_exhausted_total missing from router /metrics")
	}
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}
