package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"climber/internal/api"
)

// Client is a minimal Go client for the serving dialect — usable against a
// single climber-serve process and a climber-router alike, since both
// speak the same wire contract. Experiment harnesses and tools use it; it
// is not a general SDK.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient wraps the server or router at base (scheme + host + port).
func NewClient(base string) *Client {
	return &Client{base: base, hc: &http.Client{}}
}

// post sends one JSON request and decodes the 200 body into out.
func (c *Client) post(path string, in, out any) error {
	raw, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var er api.ErrorResponse
		if jerr := api.DecodeJSON(body, &er); jerr == nil && er.Error != "" {
			return fmt.Errorf("shard client: %s: status %d: %s", path, resp.StatusCode, er.Error)
		}
		return fmt.Errorf("shard client: %s: status %d", path, resp.StatusCode)
	}
	return api.DecodeJSON(body, out)
}

// Search runs one kNN query. Against a router the response carries the
// scatter shape (shards asked/answered, partial); against a single server
// those fields stay zero.
func (c *Client) Search(q []float64, k int) (*SearchResponse, error) {
	var out SearchResponse
	if err := c.post("/search", api.SearchRequest{Query: q, K: k}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Append ingests series and returns their assigned IDs (global IDs when
// talking to a router).
func (c *Client) Append(series [][]float64) ([]int, error) {
	var out api.AppendResponse
	if err := c.post("/append", api.AppendRequest{Series: series}, &out); err != nil {
		return nil, err
	}
	return out.IDs, nil
}
