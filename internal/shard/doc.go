// Package shard scales CLIMBER past one machine: it partitions the record
// keyspace across N independent climber.DB instances — each a full database
// directory with its own skeleton, partition files, WAL, delta index, and
// compactor, served by an ordinary climber-serve process — and fronts them
// with a scatter-gather HTTP router (cmd/climber-router) that speaks the
// exact single-node dialect of internal/api.
//
// # Topology and global IDs
//
// A Topology (shards.json, loaded at start) names every shard and its base
// URL. Each shard owns one residue class of the global record-ID space:
//
//	global = local*Stride() + IDBase
//
// where local is the shard's own dense build/append sequence. Splitting a
// dataset round-robin (SplitDataset) makes the encoding exact — record i of
// the original dataset keeps global ID i — so a sharded deployment is
// indistinguishable from an unsharded one on the wire. Two topology entries
// sharing an IDBase declare read replicas; the merge deduplicates their
// answers by global ID.
//
// # Routing
//
// Reads (/search, /search/prefix, /search/batch) scatter to every shard —
// the keyspace is hash-partitioned, so any shard may hold a neighbour — and
// the router merges the per-shard top-k by ascending (distance, global ID),
// the same total order the unsharded engine uses. Failure policy is
// configurable: the all-shards policy (Quorum 0) fails fast, cancelling the
// surviving sub-queries on the first shard error; a positive Quorum serves
// degraded answers marked partial while at least that many shards answer.
//
// Appends route each series by rendezvous (highest-random-weight) hashing
// over its global append sequence number (Topology.Rank), walking the rank
// order to the first healthy shard; each shard's WAL acks its own
// sub-batch, so crash recovery stays per-shard.
//
// A background prober keeps per-shard health flags that /healthz reports
// and the quorum and append paths consult.
package shard
