package dataset

import (
	"fmt"

	"climber/internal/series"
	"climber/internal/storage"
)

// SaveFile writes a dataset to a single block-format file, the interchange
// format of the command-line tools.
func SaveFile(path string, ds *series.Dataset) error {
	bw, err := storage.NewBlockWriter(path, ds.Length())
	if err != nil {
		return err
	}
	for id := 0; id < ds.Len(); id++ {
		if err := bw.Append(id, ds.Get(id)); err != nil {
			bw.Close()
			return err
		}
	}
	return bw.Close()
}

// LoadFile reads a dataset saved by SaveFile. Record IDs must be the dense
// sequence 0..n-1 (the format SaveFile produces); any other layout is
// rejected so positional IDs stay meaningful.
func LoadFile(path string) (*series.Dataset, error) {
	info, err := storage.StatBlock(path)
	if err != nil {
		return nil, err
	}
	ds := series.NewDatasetCap(info.SeriesLen, info.Count)
	next := 0
	err = storage.ScanBlock(path, func(id int, values []float64) error {
		if id != next {
			return fmt.Errorf("dataset: non-sequential record id %d at position %d", id, next)
		}
		ds.Append(values)
		next++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ds, nil
}
