package dataset

import (
	"math"
	"testing"

	"climber/internal/series"
)

func TestGeneratorsBasicShape(t *testing.T) {
	cases := []struct {
		name   string
		ds     *series.Dataset
		length int
	}{
		{"randomwalk", RandomWalk(RandomWalkLength, 50, 1), RandomWalkLength},
		{"sift", SIFTLike(50, 1), SIFTLength},
		{"dna", DNAWalk(50, 1), DNALength},
		{"eeg", EEG(50, 1), EEGLength},
	}
	for _, c := range cases {
		if c.ds.Len() != 50 {
			t.Errorf("%s: Len = %d, want 50", c.name, c.ds.Len())
		}
		if c.ds.Length() != c.length {
			t.Errorf("%s: Length = %d, want %d", c.name, c.ds.Length(), c.length)
		}
	}
}

// Every generated series must be z-normalised (the pipeline invariant).
func TestGeneratorsZNormalised(t *testing.T) {
	for _, name := range Names() {
		ds, err := ByName(name, 30, 42)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ds.Len(); i++ {
			x := ds.Get(i)
			if m := series.Mean(x); math.Abs(m) > 1e-9 {
				t.Fatalf("%s series %d mean = %g", name, i, m)
			}
			sd := series.StdDev(x)
			if math.Abs(sd-1) > 1e-9 && sd != 0 {
				t.Fatalf("%s series %d stddev = %g", name, i, sd)
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range Names() {
		a, err := ByName(name, 20, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ByName(name, 20, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < a.Len(); i++ {
			xa, xb := a.Get(i), b.Get(i)
			for j := range xa {
				if xa[j] != xb[j] {
					t.Fatalf("%s: series %d differs between runs of the same seed", name, i)
				}
			}
		}
	}
}

func TestGeneratorsSeedSensitivity(t *testing.T) {
	a := RandomWalk(64, 5, 1)
	b := RandomWalk(64, 5, 2)
	same := true
	for j := 0; j < 64 && same; j++ {
		if a.Get(0)[j] != b.Get(0)[j] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical series")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("bogus", 10, 1); err == nil {
		t.Fatal("unknown dataset name accepted")
	}
}

func TestByNameAliases(t *testing.T) {
	for _, alias := range []string{"rw", "texmex"} {
		if _, err := ByName(alias, 5, 1); err != nil {
			t.Errorf("alias %q rejected: %v", alias, err)
		}
	}
}

func TestQueries(t *testing.T) {
	ds := RandomWalk(32, 100, 3)
	ids, qs := Queries(ds, 10, 5)
	if len(ids) != 10 || len(qs) != 10 {
		t.Fatalf("got %d ids, %d queries, want 10 each", len(ids), len(qs))
	}
	seen := map[int]bool{}
	for i, id := range ids {
		if seen[id] {
			t.Fatalf("query id %d selected twice", id)
		}
		seen[id] = true
		// The query must be a faithful copy of the dataset series.
		want := ds.Get(id)
		for j := range want {
			if qs[i][j] != want[j] {
				t.Fatalf("query %d differs from dataset series %d", i, id)
			}
		}
	}
	// Queries are copies: mutating one must not corrupt the dataset.
	qs[0][0] = 12345
	if ds.Get(ids[0])[0] == 12345 {
		t.Fatal("query aliases dataset storage")
	}
}

func TestQueriesMoreThanDataset(t *testing.T) {
	ds := RandomWalk(16, 5, 3)
	ids, _ := Queries(ds, 50, 1)
	if len(ids) != 5 {
		t.Fatalf("requesting more queries than records should clamp: got %d", len(ids))
	}
}

// The EEG generator must produce a small fraction of burst (seizure-like)
// records; we detect them via excess kurtosis of the distribution of series
// against a smooth baseline. This is a smoke test of the generator's
// bimodality, not a statistical assertion.
func TestEEGHasVariedEnergy(t *testing.T) {
	ds := EEG(400, 11)
	var maxAbs []float64
	for i := 0; i < ds.Len(); i++ {
		x := ds.Get(i)
		m := 0.0
		for _, v := range x {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
		maxAbs = append(maxAbs, m)
	}
	lo, hi := maxAbs[0], maxAbs[0]
	for _, v := range maxAbs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi-lo < 0.3 {
		t.Fatalf("EEG peak amplitudes suspiciously uniform: range [%g, %g]", lo, hi)
	}
}

// The DNA walk uses ±1/±2 steps: before normalisation consecutive raw
// values differ by at most 2, so after z-normalisation the series must
// still be continuous (no jumps above ~4 sigma-steps). Sanity-check the
// converted geometry.
func TestDNAWalkContinuity(t *testing.T) {
	ds := DNAWalk(20, 5)
	for i := 0; i < ds.Len(); i++ {
		x := ds.Get(i)
		maxStep := 0.0
		for j := 1; j < len(x); j++ {
			if s := math.Abs(x[j] - x[j-1]); s > maxStep {
				maxStep = s
			}
		}
		if maxStep > 4 {
			t.Fatalf("series %d has a %g jump; DNA walks must be continuous", i, maxStep)
		}
	}
}

func TestSIFTLikeClustered(t *testing.T) {
	// Clustered data: the minimum pairwise distance among 60 vectors should
	// be clearly below the average (cluster members are close). A weak but
	// deterministic geometry check.
	ds := SIFTLike(60, 13)
	minD, sumD, n := math.Inf(1), 0.0, 0
	for i := 0; i < ds.Len(); i++ {
		for j := i + 1; j < ds.Len(); j++ {
			d := series.Dist(ds.Get(i), ds.Get(j))
			if d < minD {
				minD = d
			}
			sumD += d
			n++
		}
	}
	avg := sumD / float64(n)
	if minD > avg*0.8 {
		t.Fatalf("SIFT-like data not clustered: min %g vs avg %g", minD, avg)
	}
}
