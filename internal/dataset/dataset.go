// Package dataset generates the four evaluation workloads of the paper
// (Section VII-A) as seeded synthetic equivalents:
//
//   - RandomWalk — the standard data-series indexing benchmark: cumulative
//     sums of N(0,1) steps, 256 points. Identical to the benchmark used by
//     iSAX 2.0, TARDIS, and DPiSAX.
//   - SIFTLike — stands in for the Texmex corpus (1B SIFT image descriptors,
//     128 points): a Gaussian-mixture of clustered non-negative vectors,
//     preserving the clustered geometry of image descriptors.
//   - DNAWalk — stands in for the UCSC human-genome dataset: order-2 Markov
//     ACGT strings converted to cumulative numeric series as in iSAX 2.0,
//     192 points.
//   - EEG — stands in for the Seizure EEG dataset: sums of band-limited
//     sinusoids plus noise with occasional seizure-like high-energy bursts,
//     256 points.
//
// All series are z-normalised, the standard preprocessing of the
// SAX/iSAX/CLIMBER pipeline. Generation is deterministic per seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"climber/internal/series"
)

// Lengths used by the paper for each dataset.
const (
	RandomWalkLength = 256
	SIFTLength       = 128
	DNALength        = 192
	EEGLength        = 256
)

// RandomWalk generates count z-normalised random-walk series of the given
// length.
func RandomWalk(length, count int, seed uint64) *series.Dataset {
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	ds := series.NewDatasetCap(length, count)
	x := make([]float64, length)
	for i := 0; i < count; i++ {
		v := 0.0
		for j := range x {
			v += rng.NormFloat64()
			x[j] = v
		}
		series.ZNormalize(x)
		ds.Append(x)
	}
	return ds
}

// SIFTLike generates count 128-point clustered descriptor-like vectors: a
// mixture of numClusters Gaussian bumps over the dimension axis with
// per-vector jitter. Vectors are z-normalised after generation so the
// SAX-based baselines see the distribution they assume.
func SIFTLike(count int, seed uint64) *series.Dataset {
	const numClusters = 64
	rng := rand.New(rand.NewPCG(seed, 0xbf58476d1ce4e5b9))
	// Cluster prototypes: sparse non-negative profiles like SIFT histograms.
	protos := make([][]float64, numClusters)
	for c := range protos {
		p := make([]float64, SIFTLength)
		hotspots := 4 + rng.IntN(8)
		for h := 0; h < hotspots; h++ {
			center := rng.IntN(SIFTLength)
			amp := 20 + rng.Float64()*100
			width := 1 + rng.Float64()*6
			for j := 0; j < SIFTLength; j++ {
				d := float64(j - center)
				p[j] += amp * math.Exp(-d*d/(2*width*width))
			}
		}
		protos[c] = p
	}
	ds := series.NewDatasetCap(SIFTLength, count)
	x := make([]float64, SIFTLength)
	for i := 0; i < count; i++ {
		p := protos[rng.IntN(numClusters)]
		for j := range x {
			v := p[j] + rng.NormFloat64()*8
			if v < 0 {
				v = 0
			}
			x[j] = v
		}
		series.ZNormalize(x)
		ds.Append(x)
	}
	return ds
}

// DNAWalk generates count 192-point series from synthetic DNA strings. Each
// string is produced by an order-2 Markov chain over {A, C, G, T} with a
// randomly drawn transition bias, then converted to a numeric series by the
// cumulative mapping used by iSAX 2.0 (A:+2, C:+1, G:-1, T:-2) and
// z-normalised.
func DNAWalk(count int, seed uint64) *series.Dataset {
	rng := rand.New(rand.NewPCG(seed, 0x94d049bb133111eb))
	steps := [4]float64{2, 1, -1, -2} // A, C, G, T
	ds := series.NewDatasetCap(DNALength, count)
	x := make([]float64, DNALength)
	// Per-dataset transition matrix (order 2: previous two bases -> next).
	var trans [16][4]float64
	for ctx := range trans {
		var total float64
		for b := 0; b < 4; b++ {
			trans[ctx][b] = rng.Float64() + 0.1
			total += trans[ctx][b]
		}
		for b := 0; b < 4; b++ {
			trans[ctx][b] /= total
		}
	}
	nextBase := func(ctx int) int {
		u := rng.Float64()
		var cum float64
		for b := 0; b < 4; b++ {
			cum += trans[ctx][b]
			if u < cum {
				return b
			}
		}
		return 3
	}
	for i := 0; i < count; i++ {
		b1, b2 := rng.IntN(4), rng.IntN(4)
		v := 0.0
		for j := range x {
			b := nextBase(b1*4 + b2)
			v += steps[b]
			x[j] = v
			b1, b2 = b2, b
		}
		series.ZNormalize(x)
		ds.Append(x)
	}
	return ds
}

// EEG generates count 256-point electroencephalogram-like series: a sum of
// three band-limited sinusoids (delta/alpha/beta bands at 400 Hz sampling)
// with 1/f-ish noise; roughly 5% of records carry a seizure-like
// high-frequency, high-amplitude burst.
func EEG(count int, seed uint64) *series.Dataset {
	rng := rand.New(rand.NewPCG(seed, 0xd6e8feb86659fd93))
	const sampleRate = 400.0
	ds := series.NewDatasetCap(EEGLength, count)
	x := make([]float64, EEGLength)
	for i := 0; i < count; i++ {
		// Random band frequencies and phases per record.
		fDelta := 0.5 + rng.Float64()*3.5 // 0.5-4 Hz
		fAlpha := 8 + rng.Float64()*5     // 8-13 Hz
		fBeta := 13 + rng.Float64()*17    // 13-30 Hz
		pDelta, pAlpha, pBeta := rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi
		aDelta, aAlpha, aBeta := 1.0+rng.Float64(), 0.5+rng.Float64()*0.5, 0.2+rng.Float64()*0.3
		seizure := rng.Float64() < 0.05
		burstStart := rng.IntN(EEGLength / 2)
		burstLen := EEGLength/8 + rng.IntN(EEGLength/4)
		fBurst := 3 + rng.Float64()*2 // spike-and-wave ~3 Hz
		smooth := 0.0
		for j := range x {
			ts := float64(j) / sampleRate
			v := aDelta*math.Sin(2*math.Pi*fDelta*ts+pDelta) +
				aAlpha*math.Sin(2*math.Pi*fAlpha*ts+pAlpha) +
				aBeta*math.Sin(2*math.Pi*fBeta*ts+pBeta)
			// Pink-ish noise: exponentially smoothed white noise.
			smooth = 0.8*smooth + 0.2*rng.NormFloat64()
			v += smooth * 0.5
			if seizure && j >= burstStart && j < burstStart+burstLen {
				v += 4 * math.Sin(2*math.Pi*fBurst*ts)
			}
			x[j] = v
		}
		series.ZNormalize(x)
		ds.Append(x)
	}
	return ds
}

// Names lists the generator registry keys in the paper's presentation order.
func Names() []string { return []string{"randomwalk", "sift", "eeg", "dna"} }

// ByName generates a dataset by registry key. Length applies only to
// randomwalk (other datasets have fixed, paper-mandated lengths); pass 0 for
// the default.
func ByName(name string, count int, seed uint64) (*series.Dataset, error) {
	switch name {
	case "randomwalk", "rw":
		return RandomWalk(RandomWalkLength, count, seed), nil
	case "sift", "texmex":
		return SIFTLike(count, seed), nil
	case "dna":
		return DNAWalk(count, seed), nil
	case "eeg":
		return EEG(count, seed), nil
	default:
		return nil, fmt.Errorf("dataset: unknown dataset %q (want one of %v)", name, Names())
	}
}

// Queries samples k distinct query series uniformly from the dataset,
// following the paper's workload ("query objects are randomly selected from
// the entire dataset"). It returns the selected IDs and copies of their
// series.
func Queries(ds *series.Dataset, k int, seed uint64) (ids []int, qs [][]float64) {
	rng := rand.New(rand.NewPCG(seed, 0xa0761d6478bd642f))
	if k > ds.Len() {
		k = ds.Len()
	}
	perm := rng.Perm(ds.Len())[:k]
	sort.Ints(perm)
	qs = make([][]float64, k)
	for i, id := range perm {
		q := make([]float64, ds.Length())
		copy(q, ds.Get(id))
		qs[i] = q
	}
	return perm, qs
}
