package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"climber/internal/series"
)

// LoadCSV reads a dataset from a CSV file with one data series per row
// (readings as numeric columns). Every row must have the same number of
// columns. When normalize is true each series is z-normalised after
// parsing — the preprocessing the whole SAX/CLIMBER pipeline assumes.
//
// This is the ingestion path for users bringing their own data; the
// synthetic generators cover the paper's benchmarks.
func LoadCSV(path string, normalize bool) (*series.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open csv: %w", err)
	}
	defer f.Close()
	return ReadCSV(f, normalize)
}

// ReadCSV is LoadCSV over an arbitrary reader.
func ReadCSV(r io.Reader, normalize bool) (*series.Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	var ds *series.Dataset
	var buf []float64
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv row %d: %w", row+1, err)
		}
		if ds == nil {
			if len(rec) == 0 {
				return nil, fmt.Errorf("dataset: csv has empty first row")
			}
			ds = series.NewDataset(len(rec))
			buf = make([]float64, len(rec))
		}
		if len(rec) != len(buf) {
			return nil, fmt.Errorf("dataset: csv row %d has %d columns, want %d", row+1, len(rec), len(buf))
		}
		for i, cell := range rec {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv row %d column %d: %w", row+1, i+1, err)
			}
			buf[i] = v
		}
		if normalize {
			series.ZNormalize(buf)
		}
		ds.Append(buf)
		row++
	}
	if ds == nil {
		return nil, fmt.Errorf("dataset: csv is empty")
	}
	return ds, nil
}

// SlidingWindows cuts one long sequence into a dataset of fixed-length
// windows advancing by stride — the standard construction of data-series
// collections from long recordings (the paper's DNA strings are "divided
// into subsequences", its EEG records "split into 256 points"). Each
// window is z-normalised when normalize is true.
func SlidingWindows(long []float64, windowLen, stride int, normalize bool) (*series.Dataset, error) {
	if windowLen <= 0 {
		return nil, fmt.Errorf("dataset: window length must be positive, got %d", windowLen)
	}
	if stride <= 0 {
		return nil, fmt.Errorf("dataset: stride must be positive, got %d", stride)
	}
	if len(long) < windowLen {
		return nil, fmt.Errorf("dataset: sequence of %d readings is shorter than the window %d", len(long), windowLen)
	}
	n := (len(long)-windowLen)/stride + 1
	ds := series.NewDatasetCap(windowLen, n)
	buf := make([]float64, windowLen)
	for i := 0; i+windowLen <= len(long); i += stride {
		copy(buf, long[i:i+windowLen])
		if normalize {
			series.ZNormalize(buf)
		}
		ds.Append(buf)
	}
	return ds, nil
}
