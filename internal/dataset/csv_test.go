package dataset

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"climber/internal/series"
)

func TestReadCSV(t *testing.T) {
	in := "1,2,3\n4,5,6\n7,8,9\n"
	ds, err := ReadCSV(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 3 || ds.Length() != 3 {
		t.Fatalf("shape %dx%d, want 3x3", ds.Len(), ds.Length())
	}
	if got := ds.Get(1); got[0] != 4 || got[2] != 6 {
		t.Fatalf("row 1 = %v", got)
	}
}

func TestReadCSVNormalizes(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader("2,4,6,8\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	x := ds.Get(0)
	if m := series.Mean(x); math.Abs(m) > 1e-12 {
		t.Fatalf("mean = %g after normalisation", m)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), false); err == nil {
		t.Error("empty csv accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n"), false); err == nil {
		t.Error("ragged csv accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,x\n"), false); err == nil {
		t.Error("non-numeric cell accepted")
	}
}

func TestLoadCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.csv")
	if err := os.WriteFile(path, []byte("1,2\n3,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadCSV(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ds.Len())
	}
	if _, err := LoadCSV(filepath.Join(t.TempDir(), "missing.csv"), false); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSlidingWindows(t *testing.T) {
	long := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	ds, err := SlidingWindows(long, 4, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	// Windows: [1..4], [3..6], [5..8], [7..10].
	if ds.Len() != 4 {
		t.Fatalf("got %d windows, want 4", ds.Len())
	}
	if got := ds.Get(1); got[0] != 3 || got[3] != 6 {
		t.Fatalf("window 1 = %v", got)
	}
	// Stride 1 covers every offset.
	ds1, err := SlidingWindows(long, 4, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if ds1.Len() != 7 {
		t.Fatalf("stride-1 windows = %d, want 7", ds1.Len())
	}
}

func TestSlidingWindowsNormalize(t *testing.T) {
	long := make([]float64, 100)
	for i := range long {
		long[i] = float64(i * i)
	}
	ds, err := SlidingWindows(long, 10, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.Len(); i++ {
		if m := series.Mean(ds.Get(i)); math.Abs(m) > 1e-9 {
			t.Fatalf("window %d mean %g", i, m)
		}
	}
}

func TestSlidingWindowsErrors(t *testing.T) {
	if _, err := SlidingWindows([]float64{1, 2}, 0, 1, false); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := SlidingWindows([]float64{1, 2}, 2, 0, false); err == nil {
		t.Error("zero stride accepted")
	}
	if _, err := SlidingWindows([]float64{1, 2}, 5, 1, false); err == nil {
		t.Error("window longer than sequence accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	ds := RandomWalk(32, 50, 5)
	path := filepath.Join(t.TempDir(), "d.clmb")
	if err := SaveFile(path, ds); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Len() || back.Length() != ds.Length() {
		t.Fatalf("shape changed: %dx%d", back.Len(), back.Length())
	}
	for i := 0; i < ds.Len(); i++ {
		a, b := ds.Get(i), back.Get(i)
		for j := range a {
			if float32(a[j]) != float32(b[j]) {
				t.Fatalf("series %d reading %d: %g vs %g", i, j, a[j], b[j])
			}
		}
	}
}
