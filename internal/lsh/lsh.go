// Package lsh implements a ChainLink-style locality-sensitive-hashing
// baseline (Alghamdi, Zhang, Eltabakh, Rundensteiner: "ChainLink: Indexing
// Big Time Series Data For Long Subsequence Matching", ICDE 2020 — the
// authors' own prior system, discussed in the paper's Section II).
//
// ChainLink applies sketch-then-hash: a lossy numeric sketch of each data
// series (here PAA, as in the paper's pipeline) is hashed by sign random
// projections (SRP-LSH) into L tables of b-bit keys; a query gathers the
// union of its L buckets as candidates and ranks them by true Euclidean
// distance. The paper's Section II records the approach's defining
// limitation — "ChainLink shares the same limitation of the aforementioned
// techniques which is the low results' accuracy, i.e., recall is around
// 30%" — because syntactic hash collisions only partially track metric
// proximity. This implementation reproduces that behaviour band and serves
// as the hashing-family comparator next to the tree- and graph-based ones.
package lsh

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"climber/internal/paa"
	"climber/internal/series"
)

// Config carries the SRP-LSH hyper-parameters.
type Config struct {
	// Segments is the PAA sketch width the projections act on.
	Segments int
	// Tables is L, the number of independent hash tables.
	Tables int
	// Bits is b, the number of sign-projection bits per key (<= 63).
	Bits int
	// Probes enables multi-probe LSH: in addition to the exact bucket,
	// each table probes the buckets at Hamming distance 1 for the lowest-
	// margin bits. 0 disables probing.
	Probes int
	// Seed drives projection sampling.
	Seed uint64
}

// DefaultConfig lands the index in ChainLink's published operating band
// (recall ≈ 30% with a ~1% candidate fraction): 4 tables of 18 bits with
// 1 extra probe per table.
func DefaultConfig() Config {
	return Config{Segments: 16, Tables: 4, Bits: 18, Probes: 1, Seed: 42}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Segments <= 0 {
		return fmt.Errorf("lsh: Segments must be positive, got %d", c.Segments)
	}
	if c.Tables <= 0 {
		return fmt.Errorf("lsh: Tables must be positive, got %d", c.Tables)
	}
	if c.Bits <= 0 || c.Bits > 63 {
		return fmt.Errorf("lsh: Bits must be in [1, 63], got %d", c.Bits)
	}
	if c.Probes < 0 {
		return fmt.Errorf("lsh: Probes must be non-negative, got %d", c.Probes)
	}
	return nil
}

// Index is a built SRP-LSH index over an in-memory dataset.
type Index struct {
	cfg     Config
	ds      *series.Dataset
	tr      *paa.Transformer
	planes  [][]float64 // Tables*Bits hyperplanes of dimension Segments
	tables  []map[uint64][]int
	paaSigs []float64
	Stats   BuildStats
}

// BuildStats reports construction cost and table shape.
type BuildStats struct {
	BuildTime time.Duration
	Buckets   int
}

// Build hashes every series of the dataset into the L tables.
func Build(ds *series.Dataset, cfg Config) (*Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	tr, err := paa.NewTransformer(ds.Length(), cfg.Segments)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		cfg:     cfg,
		ds:      ds,
		tr:      tr,
		tables:  make([]map[uint64][]int, cfg.Tables),
		paaSigs: make([]float64, ds.Len()*cfg.Segments),
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x9216d5d98979fb1b))
	ix.planes = make([][]float64, cfg.Tables*cfg.Bits)
	for i := range ix.planes {
		p := make([]float64, cfg.Segments)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		ix.planes[i] = p
	}
	for t := range ix.tables {
		ix.tables[t] = make(map[uint64][]int)
	}
	for id := 0; id < ds.Len(); id++ {
		sig := ix.paaSigs[id*cfg.Segments : (id+1)*cfg.Segments]
		tr.TransformInto(sig, ds.Get(id))
		for t := 0; t < cfg.Tables; t++ {
			key, _ := ix.hash(sig, t)
			ix.tables[t][key] = append(ix.tables[t][key], id)
		}
	}
	buckets := 0
	for t := range ix.tables {
		buckets += len(ix.tables[t])
	}
	ix.Stats = BuildStats{BuildTime: time.Since(start), Buckets: buckets}
	return ix, nil
}

// hash computes table t's key for a PAA signature, returning also the
// index of the bit with the smallest margin (the best single-bit probe).
func (ix *Index) hash(sig []float64, t int) (key uint64, weakestBit int) {
	weakest := -1.0
	for b := 0; b < ix.cfg.Bits; b++ {
		plane := ix.planes[t*ix.cfg.Bits+b]
		var dot float64
		for j, v := range sig {
			dot += v * plane[j]
		}
		if dot >= 0 {
			key |= 1 << uint(b)
		}
		margin := dot
		if margin < 0 {
			margin = -margin
		}
		if weakest < 0 || margin < weakest {
			weakest = margin
			weakestBit = b
		}
	}
	return key, weakestBit
}

// QueryStats reports candidate-gathering effort.
type QueryStats struct {
	Candidates     int // distinct series ranked with ED
	BucketsProbed  int
	TablesWithHits int
}

// Search answers an approximate kNN query: gather the union of the query's
// buckets (plus low-margin single-bit probes), rank by true Euclidean
// distance, return the top k ascending.
func (ix *Index) Search(q []float64, k int) ([]series.Result, QueryStats, error) {
	if k <= 0 {
		return nil, QueryStats{}, fmt.Errorf("lsh: k must be positive, got %d", k)
	}
	if len(q) != ix.ds.Length() {
		return nil, QueryStats{}, fmt.Errorf("lsh: query length %d, index stores %d", len(q), ix.ds.Length())
	}
	sig := ix.tr.Transform(q)
	seen := make(map[int]struct{})
	var stats QueryStats
	gather := func(t int, key uint64) {
		stats.BucketsProbed++
		ids, ok := ix.tables[t][key]
		if !ok {
			return
		}
		stats.TablesWithHits++
		for _, id := range ids {
			seen[id] = struct{}{}
		}
	}
	for t := 0; t < ix.cfg.Tables; t++ {
		key, weakest := ix.hash(sig, t)
		gather(t, key)
		for p := 0; p < ix.cfg.Probes; p++ {
			// Probe buckets differing in the weakest bit and its
			// neighbours — the standard multi-probe sequence truncated to
			// single-bit flips.
			bit := (weakest + p) % ix.cfg.Bits
			gather(t, key^(1<<uint(bit)))
		}
	}

	top := series.NewTopK(k)
	for id := range seen {
		if bound, ok := top.Bound(); ok {
			d := series.SqDistEarlyAbandon(q, ix.ds.Get(id), bound)
			if d < bound {
				top.Push(id, d)
			}
			continue
		}
		top.Push(id, series.SqDist(q, ix.ds.Get(id)))
	}
	stats.Candidates = len(seen)
	res := top.Results()
	for i := range res {
		res[i].Dist = math.Sqrt(res[i].Dist)
	}
	return res, stats, nil
}

// Len returns the number of indexed series.
func (ix *Index) Len() int { return ix.ds.Len() }
