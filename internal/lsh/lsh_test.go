package lsh

import (
	"testing"

	"climber/internal/dataset"
	"climber/internal/dss"
	"climber/internal/series"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Segments: 0, Tables: 4, Bits: 8},
		{Segments: 8, Tables: 0, Bits: 8},
		{Segments: 8, Tables: 4, Bits: 0},
		{Segments: 8, Tables: 4, Bits: 64},
		{Segments: 8, Tables: 4, Bits: 8, Probes: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

// The defining property from the paper's Section II: LSH recall lands in a
// mediocre band (ChainLink: ~30%), well below graph methods and CLIMBER,
// well above nothing.
func TestRecallBand(t *testing.T) {
	ds := dataset.RandomWalk(128, 5000, 7)
	ix, err := Build(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, qs := dataset.Queries(ds, 15, 3)
	const k = 50
	sum := 0.0
	for _, q := range qs {
		res, _, err := ix.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		sum += series.Recall(res, dss.SearchDataset(ds, q, k))
	}
	avg := sum / float64(len(qs))
	t.Logf("LSH recall = %.3f", avg)
	if avg < 0.1 || avg > 0.7 {
		t.Fatalf("LSH recall %.3f outside ChainLink's plausible band [0.1, 0.7]", avg)
	}
}

// A query identical to an indexed series always collides with it in every
// table, so the exact record must always rank first.
func TestSelfCollision(t *testing.T) {
	ds := dataset.RandomWalk(64, 1000, 9)
	ix, err := Build(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, qid := range []int{0, 500, 999} {
		res, _, err := ix.Search(ds.Get(qid), 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 0 || res[0].ID != qid || res[0].Dist != 0 {
			t.Fatalf("self query %d: %+v", qid, res)
		}
	}
}

// Multi-probe must not reduce the candidate set (it only adds buckets).
func TestProbesWidenCandidates(t *testing.T) {
	ds := dataset.RandomWalk(64, 3000, 11)
	cfg := DefaultConfig()
	cfg.Probes = 0
	noProbe, err := Build(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Probes = 3
	probed, err := Build(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, qs := dataset.Queries(ds, 10, 5)
	var candsNo, candsYes int
	for _, q := range qs {
		_, s0, err := noProbe.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		_, s1, err := probed.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		candsNo += s0.Candidates
		candsYes += s1.Candidates
	}
	if candsYes < candsNo {
		t.Fatalf("multi-probe gathered fewer candidates (%d) than exact-bucket search (%d)", candsYes, candsNo)
	}
}

func TestSearchValidation(t *testing.T) {
	ds := dataset.RandomWalk(64, 200, 9)
	ix, err := Build(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Search(ds.Get(0), 0); err == nil {
		t.Error("k = 0 should fail")
	}
	if _, _, err := ix.Search(make([]float64, 3), 5); err == nil {
		t.Error("wrong length should fail")
	}
	if ix.Len() != 200 {
		t.Errorf("Len = %d", ix.Len())
	}
	if ix.Stats.Buckets == 0 || ix.Stats.BuildTime <= 0 {
		t.Errorf("stats not populated: %+v", ix.Stats)
	}
}

func TestDeterministicBuild(t *testing.T) {
	ds := dataset.RandomWalk(64, 500, 9)
	a, err := Build(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Get(123)
	ra, _, err := a.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	rb, _, err := b.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rb) {
		t.Fatal("non-deterministic result count")
	}
	for i := range ra {
		if ra[i].ID != rb[i].ID {
			t.Fatal("non-deterministic results for identical builds")
		}
	}
}

// Results must always be sorted ascending by distance and contain no
// duplicates.
func TestResultsWellFormed(t *testing.T) {
	ds := dataset.RandomWalk(64, 2000, 13)
	ix, err := Build(ds, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, qs := dataset.Queries(ds, 10, 17)
	for _, q := range qs {
		res, stats, err := ix.Search(q, 25)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Candidates == 0 {
			t.Fatal("no candidates gathered")
		}
		seen := map[int]bool{}
		for i, r := range res {
			if seen[r.ID] {
				t.Fatalf("duplicate id %d", r.ID)
			}
			seen[r.ID] = true
			if i > 0 && res[i].Dist < res[i-1].Dist {
				t.Fatal("results not ascending")
			}
		}
	}
}
