package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"climber/internal/cluster"
	"climber/internal/core"
)

// ErrClosed is returned by Append and Flush after Close.
var ErrClosed = errors.New("ingest: ingester is closed")

// ErrRebuildInProgress is returned by Flush, Barrier, and BeginRebuild while
// an online reindex holds the pipeline's compactions paused. Appends keep
// flowing — they accumulate in the WAL and the live delta until the rebuild
// commits or aborts.
var ErrRebuildInProgress = errors.New("ingest: rebuild in progress")

// Config tunes the ingestion pipeline. The zero value is usable: every
// field falls back to the documented default.
type Config struct {
	// CompactRecords triggers a background compaction once the delta holds
	// at least this many records. Default: 4096.
	CompactRecords int
	// CompactAge triggers a compaction once the oldest uncompacted record
	// has waited this long, bounding how much WAL a restart replays even
	// under a trickle of writes. Default: 5s.
	CompactAge time.Duration
}

func (c Config) withDefaults() Config {
	if c.CompactRecords <= 0 {
		c.CompactRecords = 4096
	}
	if c.CompactAge <= 0 {
		c.CompactAge = 5 * time.Second
	}
	return c
}

// Stats is a snapshot of the pipeline's counters.
type Stats struct {
	// AppendCalls and AppendedSeries count acked Append invocations and the
	// series they carried (cumulative, including compacted ones).
	AppendCalls    int64
	AppendedSeries int64
	// ReplayedSeries counts WAL entries restored into the delta at open.
	ReplayedSeries int64
	// WALBytes is the log's current size.
	WALBytes int64
	// Compactions and CompactedSeries count completed compactions and the
	// records they landed in partition files.
	Compactions     int64
	CompactedSeries int64
	// DeltaRecords and DeltaBytes describe the resident delta index.
	DeltaRecords int
	DeltaBytes   int64
	// CompactErrors counts failed compaction attempts (each is retried on
	// the next trigger).
	CompactErrors int64
}

// Ingester is the streaming write path of one index: WAL + delta + background
// compactor. Create it with Open; it serialises every mutation internally,
// so any number of goroutines may Append concurrently — with each other and
// with searches.
type Ingester struct {
	ix  *core.Index
	wal *WAL
	// delta is the live uncompacted-records index. It is a pointer swap
	// target: CommitRebuild replaces it with the re-routed delta of the new
	// generation, while the background compactor and the stats paths read it
	// locklessly — hence atomic.
	delta atomic.Pointer[MemDelta]
	save  func() error // persists the index manifest (partition counts)
	cfg   Config
	// baseRecords is the partition-file record count at Open, before WAL
	// replay. TotalRecords builds on it instead of re-summing live counts,
	// so compactions in flight (or half-failed) can never skew the total.
	baseRecords int64

	// sem is a one-slot semaphore serialising appends, compactions, and
	// close; lock selects it against ctx.Done() so a caller whose request
	// was cancelled stops waiting behind a long compaction instead of
	// pinning its admission slot. Searches never take it — they read the
	// delta under its own RWMutex. closed is guarded by sem.
	sem    chan struct{}
	closed bool
	// paused suspends compactions while an online reindex is building its
	// new generation: draining the delta mid-rebuild would advance the
	// manifest baseline past records the new generation's files do not hold.
	// Guarded by sem, like closed.
	paused bool

	kick     chan struct{} // nudges the compactor when the size threshold trips
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	appendCalls     atomic.Int64
	appendedSeries  atomic.Int64
	replayedSeries  atomic.Int64
	walBytes        atomic.Int64
	compactions     atomic.Int64
	compactedSeries atomic.Int64
	compactErrors   atomic.Int64
}

// Open attaches a streaming ingestion pipeline to ix: it opens (creating if
// absent) the WAL at walPath, replays acked-but-uncompacted entries into a
// fresh delta index, installs the delta on the index's search paths, and
// starts the background compactor. save is called after each compaction
// lands records in partition files, before the WAL is truncated — it must
// persist the index manifest so the partition counts (and with them the ID
// counter seeded at the next open) survive.
//
// Replay is idempotent across the crash window: entries whose ID precedes
// the persisted record count were already compacted before the crash (IDs
// are dense and sequential) and are skipped, so a kill between manifest
// save and WAL truncation cannot duplicate records.
func Open(ix *core.Index, walPath string, save func() error, cfg Config) (*Ingester, error) {
	cfg = cfg.withDefaults()
	wal, entries, err := OpenWAL(walPath, ix.Skeleton().SeriesLen)
	if err != nil {
		return nil, err
	}

	delta := NewMemDelta()
	baseline := ix.PersistedRecords()
	maxID := -1
	routed := make([]core.Routed, 0, len(entries))
	for _, e := range entries {
		if e.ID > maxID {
			maxID = e.ID
		}
		if e.ID < baseline {
			continue // already compacted before the crash
		}
		routed = append(routed, core.Routed{ID: e.ID, Route: ix.RouteNew(e.ID, e.Values), Values: e.Values})
	}
	delta.Add(routed)
	if maxID >= 0 {
		ix.EnsureNextID(maxID + 1)
	}
	ix.SetDelta(delta)

	g := &Ingester{
		ix:          ix,
		wal:         wal,
		save:        save,
		cfg:         cfg,
		baseRecords: int64(baseline),
		sem:         make(chan struct{}, 1),
		kick:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	g.delta.Store(delta)
	g.replayedSeries.Store(int64(len(routed)))
	g.walBytes.Store(wal.Size())
	go g.run()
	return g, nil
}

// Append routes, logs, and indexes the given series, returning their
// assigned IDs in input order. When Append returns nil, every series is
// durable (fsynced in the WAL) and immediately visible to searches (resident
// in the delta index). ctx is honoured while waiting for the write lock and
// before starting the write; the log append itself is not interruptible —
// once the fsync begins, the ack follows.
func (g *Ingester) Append(ctx context.Context, data [][]float64) ([]int, error) {
	if len(data) == 0 {
		return nil, nil
	}
	seriesLen := g.ix.Skeleton().SeriesLen
	for i, r := range data {
		if len(r) != seriesLen {
			return nil, fmt.Errorf("ingest: series %d has length %d, index stores %d", i, len(r), seriesLen)
		}
	}
	if err := g.lock(ctx); err != nil {
		return nil, err
	}
	defer g.unlock()
	if g.closed {
		return nil, ErrClosed
	}

	first := g.ix.ReserveIDs(len(data))
	ids := make([]int, len(data))
	entries := make([]Entry, len(data))
	routed := make([]core.Routed, len(data))
	for i, r := range data {
		id := first + i
		ids[i] = id
		// Round through float32 up front: partition files store float32, so
		// the delta, the WAL, and the compacted record all carry identical
		// values — a search hit has the same distance wherever it is served
		// from, and replayed routes match the originals.
		vals := roundF32(r)
		entries[i] = Entry{ID: id, Values: vals}
		routed[i] = core.Routed{ID: id, Route: g.ix.RouteNew(id, vals), Values: vals}
	}
	if err := g.wal.Append(entries); err != nil {
		// Nothing durable, nothing indexed: hand the ID reservation back so
		// the sequence stays dense (initNextID re-derives the counter from
		// the record count at the next open; a burned gap below that count
		// would make it reissue IDs of durable records).
		g.ix.UnreserveIDs(first, len(data))
		return nil, err
	}
	g.delta.Load().Add(routed)
	g.walBytes.Store(g.wal.Size())
	g.appendCalls.Add(1)
	g.appendedSeries.Add(int64(len(data)))
	if g.delta.Load().Len() >= g.cfg.CompactRecords {
		select {
		case g.kick <- struct{}{}:
		default:
		}
	}
	return ids, nil
}

// Flush synchronously compacts the delta into partition files, persists the
// manifest, and truncates the WAL. It returns once every previously acked
// write is in its partition file (or with the error that stopped the
// compaction, leaving WAL and delta intact for a retry).
func (g *Ingester) Flush(ctx context.Context) error {
	if err := g.lock(ctx); err != nil {
		return err
	}
	defer g.unlock()
	if g.closed {
		return ErrClosed
	}
	if g.paused {
		return ErrRebuildInProgress
	}
	return g.compactLocked()
}

// Barrier synchronously compacts the delta and then runs fn while the write
// semaphore is still held: no append, compaction, or generation swap can
// interleave with fn. Backup uses it to copy partition files at a moment
// when they hold every acked record and nothing is rewriting them.
func (g *Ingester) Barrier(ctx context.Context, fn func() error) error {
	if err := g.lock(ctx); err != nil {
		return err
	}
	defer g.unlock()
	if g.closed {
		return ErrClosed
	}
	if g.paused {
		return ErrRebuildInProgress
	}
	if err := g.compactLocked(); err != nil {
		return err
	}
	return fn()
}

// BeginRebuild starts the write-side protocol of an online reindex: it runs
// one final compaction — so the partition files hold every record acked so
// far and the rebuild can source solely from them — and then pauses further
// compactions. Appends stay live; until CommitRebuild or AbortRebuild they
// accumulate in the WAL and the current generation's delta.
func (g *Ingester) BeginRebuild(ctx context.Context) error {
	if err := g.lock(ctx); err != nil {
		return err
	}
	defer g.unlock()
	if g.closed {
		return ErrClosed
	}
	if g.paused {
		return ErrRebuildInProgress
	}
	if err := g.compactLocked(); err != nil {
		return err
	}
	g.paused = true
	return nil
}

// CommitRebuild finishes an online reindex begun with BeginRebuild. Under
// the write semaphore — so no append can slip between the delta snapshot and
// the swap — it re-routes every record acked during the rebuild through the
// new generation's skeleton (route, a pure function of (id, values)) into a
// fresh delta, then calls publish, which must install that delta on the new
// generation, commit the MANIFEST pointer, and swap the generation in. On
// success the pipeline's live delta becomes the re-routed one and
// compactions resume against the new generation; on error the old
// generation stays current and compactions resume against it, with the WAL
// and old delta untouched — the failed rebuild is simply discarded.
func (g *Ingester) CommitRebuild(route func(id int, values []float64) cluster.Route, publish func(nd *MemDelta) error) error {
	g.lockBlocking()
	defer g.unlock()
	defer func() { g.paused = false }()
	if g.closed {
		return ErrClosed
	}
	recs := g.delta.Load().Snapshot()
	rerouted := make([]core.Routed, len(recs))
	for i, r := range recs {
		rerouted[i] = core.Routed{ID: r.ID, Route: route(r.ID, r.Values), Values: r.Values}
	}
	nd := NewMemDelta()
	nd.Add(rerouted)
	if err := publish(nd); err != nil {
		return err
	}
	g.delta.Store(nd)
	return nil
}

// AbortRebuild resumes compactions after a failed rebuild, leaving the
// current generation, the WAL, and the delta exactly as they were.
func (g *Ingester) AbortRebuild() {
	g.lockBlocking()
	g.paused = false
	g.unlock()
}

// Close stops the background compactor, runs a final compaction so nothing
// is left for the next open to replay, and closes the WAL. Close is
// idempotent; Append and Flush return ErrClosed afterwards.
func (g *Ingester) Close() error {
	g.stopOnce.Do(func() { close(g.stop) })
	<-g.done

	g.lockBlocking()
	defer g.unlock()
	if g.closed {
		return nil
	}
	g.closed = true
	err := g.compactLocked()
	if cerr := g.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abandon drops the ingester the way a killed process would: the
// background compactor stops and the WAL closes with its contents intact —
// no final compaction, no truncation. Acked-but-uncompacted records remain
// in the log for the next Open to replay. Crash-recovery test harnesses use
// it to simulate a kill without exiting the process (which also releases
// the WAL's single-writer file lock, as a real death would).
func (g *Ingester) Abandon() {
	g.stopOnce.Do(func() { close(g.stop) })
	<-g.done
	g.lockBlocking()
	defer g.unlock()
	if g.closed {
		return
	}
	g.closed = true
	_ = g.wal.Close()
}

// lock acquires the write semaphore, giving up when ctx is cancelled so a
// dead request does not wait out a compaction.
func (g *Ingester) lock(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case g.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *Ingester) lockBlocking() { g.sem <- struct{}{} }
func (g *Ingester) unlock()       { <-g.sem }

// Stats snapshots the pipeline's counters.
func (g *Ingester) Stats() Stats {
	return Stats{
		AppendCalls:     g.appendCalls.Load(),
		AppendedSeries:  g.appendedSeries.Load(),
		ReplayedSeries:  g.replayedSeries.Load(),
		WALBytes:        g.walBytes.Load(),
		Compactions:     g.compactions.Load(),
		CompactedSeries: g.compactedSeries.Load(),
		DeltaRecords:    g.delta.Load().Len(),
		DeltaBytes:      g.delta.Load().Bytes(),
		CompactErrors:   g.compactErrors.Load(),
	}
}

// DeltaLen returns the number of acked records not yet compacted.
func (g *Ingester) DeltaLen() int { return g.delta.Load().Len() }

// TotalRecords returns the database's acked record count: the partition
// records present at open plus every series acked since (replayed or
// appended). Compactions only move records between the delta and the
// partition files, so the sum is exact at every instant — including while a
// compaction is mid-flight or retrying after a failure — and needs no lock.
func (g *Ingester) TotalRecords() int {
	return int(g.baseRecords + g.replayedSeries.Load() + g.appendedSeries.Load())
}

// run is the background compactor: it wakes on the size-threshold kick and
// on a timer that enforces the age threshold.
func (g *Ingester) run() {
	defer close(g.done)
	poll := g.cfg.CompactAge / 4
	if poll < 50*time.Millisecond {
		poll = 50 * time.Millisecond
	}
	if poll > time.Second {
		poll = time.Second
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-g.kick:
		case <-ticker.C:
			if d := g.delta.Load(); d.Len() < g.cfg.CompactRecords && d.OldestAge() < g.cfg.CompactAge {
				continue
			}
		}
		g.lockBlocking()
		if !g.closed {
			if err := g.compactLocked(); err != nil {
				g.compactErrors.Add(1)
			}
		}
		g.unlock()
	}
}

// compactLocked drains the delta into partition files. Caller holds the
// write semaphore.
//
// Ordering is what makes a crash at any point safe:
//
//  1. write the records into partition files (atomic per-partition replace,
//     partition cache invalidated) — a crash here leaves some records both
//     on disk and in the WAL, but the manifest still carries the old counts,
//     so replay's baseline skip cannot lose them and the next compaction's
//     partition rewrite folds the re-replayed records in place of the
//     orphaned copies (same IDs, same destinations, same values);
//  2. persist the manifest — from here the counts (and the ID counter they
//     seed) include the compacted records;
//  3. truncate the WAL — replay now has nothing to re-apply;
//  4. drop the delta.
//
// Searches running concurrently may transiently see a record in both the
// delta and a partition file between steps 1 and 4; the search path
// deduplicates results by ID, and the copies carry identical values.
func (g *Ingester) compactLocked() error {
	if g.paused {
		// An online reindex owns the compaction baseline right now; the
		// background compactor simply tries again after the swap.
		return nil
	}
	delta := g.delta.Load()
	recs := delta.Snapshot()
	if len(recs) == 0 {
		return nil
	}
	if err := g.ix.WriteRouted(recs); err != nil {
		return fmt.Errorf("ingest: compact: %w", err)
	}
	if err := g.save(); err != nil {
		return fmt.Errorf("ingest: persist manifest: %w", err)
	}
	if err := g.wal.Reset(); err != nil {
		return err
	}
	delta.Reset()
	g.walBytes.Store(g.wal.Size())
	g.compactions.Add(1)
	g.compactedSeries.Add(int64(len(recs)))
	return nil
}

// roundF32 copies values through float32, the precision every durable tier
// (WAL, partition files) stores.
func roundF32(values []float64) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = float64(float32(v))
	}
	return out
}
