//go:build !unix

package ingest

import "os"

// lockFile is a no-op on platforms without flock semantics; the
// single-writer requirement is then the operator's responsibility, as it
// was before file locking existed.
func lockFile(f *os.File) error { return nil }
