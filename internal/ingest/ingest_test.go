package ingest

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"climber/internal/cluster"
	"climber/internal/core"
	"climber/internal/dataset"
)

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Segments = 8
	cfg.NumPivots = 24
	cfg.PrefixLen = 4
	cfg.Capacity = 100
	cfg.SampleRate = 0.2
	cfg.BlockSize = 250
	cfg.Seed = 7
	return cfg
}

// buildIndex builds a small index plus the manifest file an ingester's save
// callback maintains.
func buildIndex(t *testing.T, n int) (*core.Index, string) {
	t.Helper()
	dir := t.TempDir()
	ds := dataset.RandomWalk(64, n, 11)
	cl, err := cluster.New(cluster.Config{NumNodes: 2, WorkersPerNode: 1, BaseDir: filepath.Join(dir, "cluster")})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := cl.IngestBlocks(ds, testConfig().BlockSize, "test")
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.Build(cl, bs, testConfig(), "test")
	if err != nil {
		t.Fatal(err)
	}
	if err := core.SaveIndex(ix, filepath.Join(dir, "index.clms")); err != nil {
		t.Fatal(err)
	}
	return ix, dir
}

func openIngester(t *testing.T, ix *core.Index, dir string, cfg Config) *Ingester {
	t.Helper()
	g, err := Open(ix, filepath.Join(dir, "wal.clmw"), func() error {
		return core.SaveIndex(ix, filepath.Join(dir, "index.clms"))
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func freshSeries(n int) [][]float64 {
	ds := dataset.RandomWalk(64, n, 999)
	out := make([][]float64, n)
	for i := range out {
		x := make([]float64, 64)
		copy(x, ds.Get(i))
		out[i] = x
	}
	return out
}

// Appends are searchable from the delta before any compaction, with the
// same pruning the on-disk plan uses.
func TestAppendVisibleBeforeCompaction(t *testing.T) {
	ix, dir := buildIndex(t, 1500)
	g := openIngester(t, ix, dir, Config{CompactRecords: 1 << 20, CompactAge: time.Hour})
	defer g.Close()

	recs := freshSeries(20)
	ids, err := g.Append(context.Background(), recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 20 || ids[0] != 1500 {
		t.Fatalf("ids = %v, want 1500..1519", ids[:1])
	}
	if got := g.DeltaLen(); got != 20 {
		t.Fatalf("delta holds %d records, want 20", got)
	}
	found := 0
	for i, q := range recs[:10] {
		res, err := ix.Search(q, core.SearchOptions{K: 5, Variant: core.VariantAdaptive4X})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Results) > 0 && res.Results[0].ID == ids[i] && res.Results[0].Dist < 1e-4 {
			found++
		}
		if res.Stats.DeltaScanned == 0 {
			t.Fatalf("query %d scanned no delta records despite a populated delta", i)
		}
	}
	if found < 9 { // one random WD tie-break miss allowed, as in build
		t.Fatalf("found %d/10 appended records via the delta, want >= 9", found)
	}
}

// Flush drains the delta into partition files, truncates the WAL, and
// leaves every record still findable.
func TestFlushCompacts(t *testing.T) {
	ix, dir := buildIndex(t, 1200)
	g := openIngester(t, ix, dir, Config{CompactRecords: 1 << 20, CompactAge: time.Hour})
	defer g.Close()

	recs := freshSeries(30)
	ids, err := g.Append(context.Background(), recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Compactions != 1 || st.CompactedSeries != 30 {
		t.Fatalf("stats after flush: %+v", st)
	}
	if st.DeltaRecords != 0 {
		t.Fatalf("delta holds %d records after flush", st.DeltaRecords)
	}
	if st.WALBytes != walHeaderSize {
		t.Fatalf("WAL size %d after flush, want bare header %d", st.WALBytes, walHeaderSize)
	}
	if got := ix.PersistedRecords(); got != 1230 {
		t.Fatalf("partitions hold %d records after flush, want 1230", got)
	}
	found := 0
	for i, q := range recs[:10] {
		res, err := ix.Search(q, core.SearchOptions{K: 5, Variant: core.VariantAdaptive4X})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Results) > 0 && res.Results[0].ID == ids[i] && res.Results[0].Dist < 1e-4 {
			found++
		}
	}
	if found < 9 {
		t.Fatalf("found %d/10 appended records after compaction, want >= 9", found)
	}
}

// The size threshold triggers background compaction without Flush.
func TestBackgroundCompactionBySize(t *testing.T) {
	ix, dir := buildIndex(t, 1000)
	g := openIngester(t, ix, dir, Config{CompactRecords: 16, CompactAge: time.Hour})
	defer g.Close()

	if _, err := g.Append(context.Background(), freshSeries(40)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if g.Stats().Compactions > 0 && g.DeltaLen() == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("background compactor never drained the delta: %+v", g.Stats())
}

// Killing the process before compaction must lose nothing: a fresh ingester
// over the same directory replays the WAL, records stay searchable, and ID
// assignment continues past the replayed entries.
func TestCrashRecoveryReplaysWAL(t *testing.T) {
	ix, dir := buildIndex(t, 1200)
	g := openIngester(t, ix, dir, Config{CompactRecords: 1 << 20, CompactAge: time.Hour})

	recs := freshSeries(25)
	ids, err := g.Append(context.Background(), recs)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the kill: Abandon drops the ingester without compacting
	// (releasing the WAL lock as process death would); stand up a fresh
	// index + WAL over the same files, exactly like a restarted process.
	g.Abandon()
	ix2, err := core.OpenIndex(ix.Cl, filepath.Join(dir, "index.clms"))
	if err != nil {
		t.Fatal(err)
	}
	g2 := openIngester(t, ix2, dir, Config{CompactRecords: 1 << 20, CompactAge: time.Hour})
	defer g2.Close()

	if got := g2.Stats().ReplayedSeries; got != 25 {
		t.Fatalf("replayed %d series, want 25", got)
	}
	found := 0
	for i, q := range recs[:10] {
		res, err := ix2.Search(q, core.SearchOptions{K: 5, Variant: core.VariantAdaptive4X})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Results) > 0 && res.Results[0].ID == ids[i] && res.Results[0].Dist < 1e-4 {
			found++
		}
	}
	if found < 9 {
		t.Fatalf("found %d/10 acked records after crash recovery, want >= 9", found)
	}
	// IDs continue after the replayed tail — no reuse.
	more, err := g2.Append(context.Background(), freshSeries(1))
	if err != nil {
		t.Fatal(err)
	}
	if more[0] != ids[len(ids)-1]+1 {
		t.Fatalf("post-recovery ID %d, want %d", more[0], ids[len(ids)-1]+1)
	}
}

// A crash after the partition writes but before the WAL truncation must not
// duplicate records: replay re-applies the entries and the idempotent
// partition merge lands them exactly once.
func TestCrashBetweenCompactAndTruncateIsIdempotent(t *testing.T) {
	ix, dir := buildIndex(t, 1000)
	g := openIngester(t, ix, dir, Config{CompactRecords: 1 << 20, CompactAge: time.Hour})

	recs := freshSeries(10)
	if _, err := g.Append(context.Background(), recs); err != nil {
		t.Fatal(err)
	}
	// Land the records in partitions + manifest, but "crash" before the
	// WAL truncation by compacting through the index directly.
	if err := ix.WriteRouted(snapshotOf(g)); err != nil {
		t.Fatal(err)
	}
	if err := core.SaveIndex(ix, filepath.Join(dir, "index.clms")); err != nil {
		t.Fatal(err)
	}

	// Restart: WAL still holds all 10 entries; the manifest already counts
	// them, so replay must skip every one.
	g.Abandon()
	ix2, err := core.OpenIndex(ix.Cl, filepath.Join(dir, "index.clms"))
	if err != nil {
		t.Fatal(err)
	}
	g2 := openIngester(t, ix2, dir, Config{CompactRecords: 1 << 20, CompactAge: time.Hour})
	defer g2.Close()
	if got := g2.Stats().ReplayedSeries; got != 0 {
		t.Fatalf("replayed %d series already counted by the manifest, want 0", got)
	}
	if got := ix2.PersistedRecords(); got != 1010 {
		t.Fatalf("partitions hold %d records, want 1010", got)
	}
	// No record is stored twice.
	seen := map[int]int{}
	for pid := range ix2.Partitions().Paths {
		p, err := ix2.Cl.OpenPartition(ix2.Partitions(), pid)
		if err != nil {
			t.Fatal(err)
		}
		err = p.ScanAll(func(id int, values []float64) error {
			seen[id]++
			return nil
		})
		p.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("record %d stored %d times", id, n)
		}
	}
}

// snapshotOf exposes the delta snapshot for the crash-window test.
func snapshotOf(g *Ingester) []core.Routed { return g.delta.Load().Snapshot() }

func TestAppendValidation(t *testing.T) {
	ix, dir := buildIndex(t, 1000)
	g := openIngester(t, ix, dir, Config{})
	defer g.Close()
	if ids, err := g.Append(context.Background(), nil); err != nil || ids != nil {
		t.Fatalf("empty append: %v, %v", ids, err)
	}
	if _, err := g.Append(context.Background(), [][]float64{make([]float64, 3)}); err == nil {
		t.Fatal("wrong-length append accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.Append(ctx, freshSeries(1)); err == nil {
		t.Fatal("append under a cancelled context accepted")
	}
}

func TestClosedIngesterRejectsWrites(t *testing.T) {
	ix, dir := buildIndex(t, 1000)
	g := openIngester(t, ix, dir, Config{})
	if _, err := g.Append(context.Background(), freshSeries(2)); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
	if _, err := g.Append(context.Background(), freshSeries(1)); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := g.Flush(context.Background()); err != ErrClosed {
		t.Fatalf("flush after close: %v, want ErrClosed", err)
	}
	// Close compacted everything: the WAL is empty and records persist.
	if g.Stats().DeltaRecords != 0 {
		t.Fatal("delta not drained by Close")
	}
	if got := ix.PersistedRecords(); got != 1002 {
		t.Fatalf("partitions hold %d records after Close, want 1002", got)
	}
}
