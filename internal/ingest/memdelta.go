package ingest

import (
	"sort"
	"sync"
	"time"

	"climber/internal/cluster"
	"climber/internal/core"
	"climber/internal/storage"
)

// MemDelta is the in-memory index of appended-but-not-yet-compacted
// records. Records are stored under the (partition, cluster) destination
// the skeleton routed them to, so a search prunes the delta exactly as it
// prunes the on-disk index: only records whose destination the query plan
// covers are compared. It implements core.DeltaSource.
//
// MemDelta is safe for concurrent use: searches scan it (read lock) while
// the ingester adds records and the compactor drains it (write lock).
type MemDelta struct {
	mu sync.RWMutex
	// byPartition groups records by destination partition, then cluster.
	byPartition map[int]map[storage.ClusterID][]deltaRec
	records     int
	bytes       int64
	oldest      time.Time // arrival of the oldest resident record
}

type deltaRec struct {
	id     int
	values []float64
}

// NewMemDelta returns an empty delta index.
func NewMemDelta() *MemDelta {
	return &MemDelta{byPartition: make(map[int]map[storage.ClusterID][]deltaRec)}
}

// Add inserts routed records. The values slices are retained — callers must
// not mutate them afterwards (the ingester hands over freshly decoded
// copies).
func (d *MemDelta) Add(recs []core.Routed) {
	if len(recs) == 0 {
		return
	}
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.records == 0 {
		d.oldest = now
	}
	for _, r := range recs {
		clusters, ok := d.byPartition[r.Route.Partition]
		if !ok {
			clusters = make(map[storage.ClusterID][]deltaRec)
			d.byPartition[r.Route.Partition] = clusters
		}
		clusters[r.Route.Cluster] = append(clusters[r.Route.Cluster], deltaRec{id: r.ID, values: r.Values})
		d.records++
		d.bytes += int64(storage.RecordBytes(len(r.Values)))
	}
}

// ScanPartition implements core.DeltaSource: it streams the records routed
// to partition pid, narrowed to the listed clusters (nil means all).
func (d *MemDelta) ScanPartition(pid int, clusters map[storage.ClusterID]struct{}, fn func(id int, values []float64) error) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	byCluster, ok := d.byPartition[pid]
	if !ok {
		return nil
	}
	for cid, recs := range byCluster {
		if clusters != nil {
			if _, want := clusters[cid]; !want {
				continue
			}
		}
		for _, r := range recs {
			if err := fn(r.id, r.values); err != nil {
				return err
			}
		}
	}
	return nil
}

// Len returns the number of resident records.
func (d *MemDelta) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.records
}

// Bytes returns the resident records' storage-equivalent volume.
func (d *MemDelta) Bytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.bytes
}

// OldestAge returns how long the oldest resident record has been waiting
// for compaction; zero when the delta is empty.
func (d *MemDelta) OldestAge() time.Duration {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.records == 0 {
		return 0
	}
	return time.Since(d.oldest)
}

// Snapshot returns every resident record in ascending ID order, ready for
// the compactor to land in partition files. The delta keeps serving reads
// unchanged; pair with Reset once the snapshot is durable on disk.
func (d *MemDelta) Snapshot() []core.Routed {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]core.Routed, 0, d.records)
	for pid, byCluster := range d.byPartition {
		for cid, recs := range byCluster {
			for _, r := range recs {
				out = append(out, core.Routed{
					ID:     r.id,
					Route:  cluster.Route{Partition: pid, Cluster: cid},
					Values: r.values,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Reset drops every resident record. The compactor calls it after the
// snapshot it drained is durable in partition files and the manifest is
// persisted.
func (d *MemDelta) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.byPartition = make(map[int]map[storage.ClusterID][]deltaRec)
	d.records = 0
	d.bytes = 0
}
