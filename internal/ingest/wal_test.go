package ingest

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func walEntries(n, seriesLen int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		vals := make([]float64, seriesLen)
		for j := range vals {
			vals[j] = float64(float32(float64(i*seriesLen+j) * 0.25))
		}
		out[i] = Entry{ID: 1000 + i, Values: vals}
	}
	return out
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.clmw")
	w, replayed, err := OpenWAL(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh WAL replayed %d entries", len(replayed))
	}
	want := walEntries(25, 8)
	if err := w.Append(want[:10]); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(want[10:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, got, err := OpenWAL(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("entry %d ID = %d, want %d", i, got[i].ID, want[i].ID)
		}
		for j := range got[i].Values {
			if got[i].Values[j] != want[i].Values[j] {
				t.Fatalf("entry %d value %d = %v, want %v (float32 round trip must be exact)",
					i, j, got[i].Values[j], want[i].Values[j])
			}
		}
	}
}

func TestWALSeriesLenMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.clmw")
	w, _, err := OpenWAL(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, _, err := OpenWAL(path, 16); err == nil {
		t.Fatal("series-length mismatch accepted")
	}
}

func TestWALTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.clmw")
	w, _, err := OpenWAL(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := walEntries(5, 4)
	if err := w.Append(want); err != nil {
		t.Fatal(err)
	}
	goodSize := w.Size()
	w.Close()

	// Simulate a crash mid-write: append half a record's worth of garbage.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{24, 0, 0, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, got, err := OpenWAL(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d entries after tail corruption, want %d", len(got), len(want))
	}
	if w2.Size() != goodSize {
		t.Fatalf("WAL size %d after tail truncation, want %d", w2.Size(), goodSize)
	}
	// Appends continue cleanly after the truncation.
	if err := w2.Append(walEntries(1, 4)); err != nil {
		t.Fatal(err)
	}
}

func TestWALCorruptRecordDropsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.clmw")
	w, _, err := OpenWAL(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walEntries(4, 4)); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Flip a byte inside the third record's payload: it and everything
	// after must be dropped; the first two records survive.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recSize := 8 + 8 + 4*4
	off := walHeaderSize + 2*recSize + 12
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, got, err := OpenWAL(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(got) != 2 {
		t.Fatalf("replayed %d entries past a corrupt record, want 2", len(got))
	}
}

func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.clmw")
	w, _, err := OpenWAL(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walEntries(8, 4)); err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != walHeaderSize {
		t.Fatalf("size after reset = %d, want %d", w.Size(), walHeaderSize)
	}
	// Post-reset appends land after the header, not after stale bytes.
	post := walEntries(3, 4)
	if err := w.Append(post); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, got, err := OpenWAL(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(got) != 3 || got[0].ID != post[0].ID {
		t.Fatalf("replayed %d entries after reset+append, want 3 starting at %d", len(got), post[0].ID)
	}
}

func TestDecodeEntryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		{0, 0, 0, 0, 0, 0, 0, 0},         // payloadLen 0 < 8
		{255, 255, 255, 255, 0, 0, 0, 0}, // oversized payload
		{9, 0, 0, 0, 0, 0, 0, 0, 1},      // misaligned payload length
		{12, 0, 0, 0, 9, 9, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, // bad CRC
	}
	for i, b := range cases {
		if _, n, err := DecodeEntry(b); err == nil || n != 0 {
			t.Errorf("case %d: garbage decoded (n=%d, err=%v)", i, n, err)
		}
	}
}

func TestEntryPrecisionMatchesStorage(t *testing.T) {
	// Values an entry carries after decode must equal the float32 rounding
	// partition files apply, so a record served from the delta and the same
	// record served from disk have identical distances.
	vals := []float64{math.Pi, -1e-8, 12345.6789, 0}
	enc := AppendEntry(nil, Entry{ID: 1, Values: vals})
	e, _, err := DecodeEntry(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if want := float64(float32(v)); e.Values[i] != want {
			t.Fatalf("value %d decoded as %v, want float32-rounded %v", i, e.Values[i], want)
		}
	}
}
