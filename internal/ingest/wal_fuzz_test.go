package ingest

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzWALRoundTrip drives the WAL record codec from both ends: DecodeEntry
// must never panic on arbitrary bytes, and an entry derived from the fuzz
// input must encode → decode losslessly. Both properties guard the replay
// path, which feeds bytes found on disk after a crash straight into the
// decoder.
func FuzzWALRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(AppendEntry(nil, Entry{ID: 42, Values: []float64{1, 2, 3}}))
	f.Add(AppendEntry(nil, Entry{ID: 0, Values: nil}))
	corrupted := AppendEntry(nil, Entry{ID: 7, Values: []float64{0.5}})
	corrupted[len(corrupted)-1] ^= 0xff
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Property 1: decoding arbitrary bytes never panics; on error it
		// consumes nothing.
		if e, n, err := DecodeEntry(data); err != nil {
			if n != 0 {
				t.Fatalf("failed decode consumed %d bytes", n)
			}
		} else {
			if n < 16 || n > len(data) {
				t.Fatalf("decode consumed %d of %d bytes", n, len(data))
			}
			// A successful decode re-encodes to the identical wire bytes
			// (float32 values have one canonical encoding except NaN, whose
			// payload bits may differ — skip those).
			hasNaN := false
			for _, v := range e.Values {
				if math.IsNaN(v) {
					hasNaN = true
					break
				}
			}
			if !hasNaN {
				if re := AppendEntry(nil, e); !bytes.Equal(re, data[:n]) {
					t.Fatalf("re-encode differs from wire bytes")
				}
			}
		}

		// Property 2: an entry derived from the input round-trips exactly.
		id := 0
		if len(data) >= 8 {
			id = int(binary.LittleEndian.Uint64(data[:8]))
		}
		vals := make([]float64, 0, len(data)/4)
		for i := 0; i+4 <= len(data) && len(vals) < 64; i += 4 {
			f32 := math.Float32frombits(binary.LittleEndian.Uint32(data[i : i+4]))
			if math.IsNaN(float64(f32)) {
				f32 = 0
			}
			vals = append(vals, float64(f32))
		}
		in := Entry{ID: id, Values: vals}
		enc := AppendEntry(nil, in)
		out, n, err := DecodeEntry(enc)
		if err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("round trip consumed %d of %d bytes", n, len(enc))
		}
		if out.ID != in.ID || len(out.Values) != len(in.Values) {
			t.Fatalf("round trip shape: got ID=%d len=%d, want ID=%d len=%d",
				out.ID, len(out.Values), in.ID, len(in.Values))
		}
		for i := range in.Values {
			if out.Values[i] != in.Values[i] {
				t.Fatalf("value %d: got %v, want %v", i, out.Values[i], in.Values[i])
			}
		}
	})
}
