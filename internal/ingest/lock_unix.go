//go:build unix

package ingest

import (
	"os"
	"syscall"
)

// lockFile takes an exclusive, non-blocking advisory lock on the open WAL
// file. The kernel releases it automatically when the file descriptor
// closes — including on process death, which is exactly the property the
// single-writer guarantee needs: a crashed writer never wedges the
// directory, while a live one keeps a second writer (or a carelessly
// pointed tool) from truncating the WAL out from under it.
func lockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
