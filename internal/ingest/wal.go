// Package ingest is CLIMBER's streaming write path: a write-ahead log that
// makes appends durable at ack time, an in-memory delta index that makes
// them searchable immediately, and a background compactor that drains the
// delta into the immutable partition files the static index was built from.
//
// The paper's prototype — like the data-series indexes surveyed by the
// Lernaean Hydra evaluations — builds its index once over a frozen dataset.
// A production service sees series arrive continuously, so this package
// bolts a log-structured front onto the static layout: writes are fsynced
// into the WAL and routed into the delta via the exact Skeleton.RouteRecord
// navigation used at build time, searches merge delta hits with the same
// partition/cluster pruning the on-disk plan used, and once size or age
// thresholds trip the compactor lands the delta in partition files through
// the same read-modify-replace path as core.Index.Append, invalidates the
// partition cache, and truncates the WAL.
package ingest

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

const (
	walMagic   = "CLWL"
	walVersion = 1
	// walHeaderSize is magic + version + seriesLen.
	walHeaderSize = 12
	// maxWALPayload caps a record's payload so a corrupt length prefix
	// cannot trigger a huge allocation during replay.
	maxWALPayload = 1 << 26
)

// Entry is one logged append: the assigned record ID and the series values.
// Values round-trip through float32 — the same precision partition files
// store — so a replayed entry is bit-identical to what compaction would
// have written.
type Entry struct {
	ID     int
	Values []float64
}

// AppendEntry encodes one WAL record onto dst and returns the extended
// slice. The wire format is length-prefixed and checksummed:
//
//	u32 payloadLen | u32 crc32(payload) | payload
//	payload = u64 id | float32 values...
func AppendEntry(dst []byte, e Entry) []byte {
	payloadLen := 8 + 4*len(e.Values)
	var pfx [8]byte
	binary.LittleEndian.PutUint32(pfx[0:4], uint32(payloadLen))
	start := len(dst) + 8
	dst = append(dst, pfx[:]...)
	var idb [8]byte
	binary.LittleEndian.PutUint64(idb[:], uint64(e.ID))
	dst = append(dst, idb[:]...)
	var vb [4]byte
	for _, v := range e.Values {
		binary.LittleEndian.PutUint32(vb[:], math.Float32bits(float32(v)))
		dst = append(dst, vb[:]...)
	}
	binary.LittleEndian.PutUint32(dst[start-4:start], crc32.ChecksumIEEE(dst[start:]))
	return dst
}

// DecodeEntry decodes one WAL record from the front of b, returning the
// entry and the number of bytes consumed. It never panics on arbitrary
// input: a short buffer, an oversized or misaligned length prefix, or a
// checksum mismatch return an error with n == 0.
func DecodeEntry(b []byte) (e Entry, n int, err error) {
	if len(b) < 8 {
		return Entry{}, 0, fmt.Errorf("ingest: truncated WAL record prefix (%d bytes)", len(b))
	}
	payloadLen := int(binary.LittleEndian.Uint32(b[0:4]))
	if payloadLen < 8 || payloadLen > maxWALPayload || (payloadLen-8)%4 != 0 {
		return Entry{}, 0, fmt.Errorf("ingest: invalid WAL payload length %d", payloadLen)
	}
	if len(b) < 8+payloadLen {
		return Entry{}, 0, fmt.Errorf("ingest: truncated WAL payload (%d of %d bytes)", len(b)-8, payloadLen)
	}
	payload := b[8 : 8+payloadLen]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(b[4:8]); got != want {
		return Entry{}, 0, fmt.Errorf("ingest: WAL record checksum mismatch: computed %08x, stored %08x", got, want)
	}
	e.ID = int(binary.LittleEndian.Uint64(payload[0:8]))
	e.Values = make([]float64, (payloadLen-8)/4)
	for i := range e.Values {
		e.Values[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(payload[8+4*i : 12+4*i])))
	}
	return e, 8 + payloadLen, nil
}

// WAL is a write-ahead log of appended series. Append fsyncs before
// returning — an acked write survives a process kill — and Reset truncates
// the log after its entries have been compacted into partition files.
// A WAL is not safe for concurrent use; the ingester serialises access.
type WAL struct {
	f    *os.File
	path string
	size int64
}

// OpenWAL opens (creating if absent) the log at path for series of the
// given length and replays its records. Replay tolerates a crash mid-write:
// the first truncated or corrupt record marks the tail, everything after it
// is discarded, and the file is truncated back to the last durable record
// so new appends continue from a clean boundary.
func OpenWAL(path string, seriesLen int) (*WAL, []Entry, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: open WAL: %w", err)
	}
	// One writer per database directory: a second live process attaching an
	// ingestion pipeline here would replay, compact, and truncate the WAL
	// out from under the first, losing acked writes. The lock dies with the
	// process, so a kill -9 never wedges the directory. Read-only access
	// (climber.WithReadOnly) opens no WAL and needs no lock.
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("ingest: WAL %s is held by another process (one writer per database directory; open read-only for tooling): %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("ingest: stat WAL: %w", err)
	}
	w := &WAL{f: f, path: path}

	if info.Size() < walHeaderSize {
		// Fresh (or header-truncated, which only a crash during creation
		// can produce — nothing was acked): write a clean header.
		if err := w.writeHeader(seriesLen); err != nil {
			f.Close()
			return nil, nil, err
		}
		return w, nil, nil
	}

	var hdr [walHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("ingest: read WAL header: %w", err)
	}
	if string(hdr[0:4]) != walMagic {
		f.Close()
		return nil, nil, fmt.Errorf("ingest: bad WAL magic %q in %s", hdr[0:4], path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != walVersion {
		f.Close()
		return nil, nil, fmt.Errorf("ingest: unsupported WAL version %d", v)
	}
	if sl := int(binary.LittleEndian.Uint32(hdr[8:12])); sl != seriesLen {
		f.Close()
		return nil, nil, fmt.Errorf("ingest: WAL series length %d, index stores %d", sl, seriesLen)
	}

	entries, goodSize, err := replay(f, info.Size())
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if goodSize < info.Size() {
		// Crash mid-write left a partial record; drop the tail.
		if err := f.Truncate(goodSize); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ingest: truncate WAL tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ingest: sync WAL after tail truncation: %w", err)
		}
	}
	w.size = goodSize
	return w, entries, nil
}

// replay scans records from after the header, stopping at the first invalid
// one, and returns the entries plus the byte offset of the valid prefix.
func replay(f *os.File, size int64) ([]Entry, int64, error) {
	if _, err := f.Seek(walHeaderSize, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("ingest: seek WAL records: %w", err)
	}
	body := make([]byte, size-walHeaderSize)
	if _, err := io.ReadFull(bufio.NewReaderSize(f, 1<<16), body); err != nil {
		return nil, 0, fmt.Errorf("ingest: read WAL records: %w", err)
	}
	var entries []Entry
	off := 0
	for off < len(body) {
		e, n, err := DecodeEntry(body[off:])
		if err != nil {
			break // corrupt or truncated tail: everything after is discarded
		}
		entries = append(entries, e)
		off += n
	}
	return entries, walHeaderSize + int64(off), nil
}

// writeHeader stamps a fresh log with the magic/version/seriesLen header
// and fsyncs it before the WAL is handed out.
//
//climber:ack
func (w *WAL) writeHeader(seriesLen int) error {
	var hdr [walHeaderSize]byte
	copy(hdr[0:4], walMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], walVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(seriesLen))
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("ingest: truncate WAL: %w", err)
	}
	if _, err := w.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("ingest: write WAL header: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("ingest: sync WAL header: %w", err)
	}
	w.size = walHeaderSize
	return nil
}

// Append logs the entries and fsyncs: when Append returns nil, the entries
// survive a process kill and OpenWAL will replay them.
//
// Writes land at the tracked valid size (WriteAt, not the file offset), so
// a failed or short write cannot poison the log: w.size only advances on
// full success, the partial bytes are truncated away best-effort, and even
// if that truncation fails the next Append overwrites them in place —
// an acked record can never end up behind garbage that replay would stop
// at.
//
//climber:ack
func (w *WAL) Append(entries []Entry) error {
	var buf []byte
	for _, e := range entries {
		buf = AppendEntry(buf, e)
	}
	if _, err := w.f.WriteAt(buf, w.size); err != nil {
		_ = w.f.Truncate(w.size)
		return fmt.Errorf("ingest: append WAL: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		_ = w.f.Truncate(w.size)
		return fmt.Errorf("ingest: sync WAL: %w", err)
	}
	w.size += int64(len(buf))
	return nil
}

// Reset truncates the log back to its header after a compaction has landed
// every logged entry in partition files. The truncation is fsynced, so a
// crash immediately after Reset replays nothing.
//
//climber:ack
func (w *WAL) Reset() error {
	if err := w.f.Truncate(walHeaderSize); err != nil {
		return fmt.Errorf("ingest: reset WAL: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("ingest: sync WAL reset: %w", err)
	}
	w.size = walHeaderSize
	return nil
}

// Size returns the log's current byte size including the header.
func (w *WAL) Size() int64 { return w.size }

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Close releases the file handle. It does not truncate: unreplayed entries
// stay durable for the next OpenWAL.
func (w *WAL) Close() error { return w.f.Close() }
