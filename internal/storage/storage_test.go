package storage

import (
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"
)

func tempPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(t.TempDir(), name)
}

func TestBlockRoundTrip(t *testing.T) {
	path := tempPath(t, "b.clmb")
	bw, err := NewBlockWriter(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{
		{1, 2, 3, 4},
		{-1.5, 0.25, 1e6, -1e-6},
		{0, 0, 0, 0},
	}
	for i, v := range want {
		if err := bw.Append(100+i, v); err != nil {
			t.Fatal(err)
		}
	}
	if bw.Count() != 3 {
		t.Fatalf("Count = %d, want 3", bw.Count())
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := StatBlock(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.SeriesLen != 4 || info.Count != 3 {
		t.Fatalf("StatBlock = %+v, want len 4 count 3", info)
	}

	var gotIDs []int
	var gotVals [][]float64
	err = ScanBlock(path, func(id int, values []float64) error {
		gotIDs = append(gotIDs, id)
		cp := make([]float64, len(values))
		copy(cp, values)
		gotVals = append(gotVals, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotIDs) != 3 {
		t.Fatalf("scanned %d records, want 3", len(gotIDs))
	}
	for i := range want {
		if gotIDs[i] != 100+i {
			t.Fatalf("record %d id = %d, want %d", i, gotIDs[i], 100+i)
		}
		for j := range want[i] {
			// float32 storage: compare at float32 precision.
			if math.Abs(gotVals[i][j]-float64(float32(want[i][j]))) > 1e-12 {
				t.Fatalf("record %d value %d = %g, want %g", i, j, gotVals[i][j], want[i][j])
			}
		}
	}
}

func TestBlockWriterRejectsWrongLength(t *testing.T) {
	bw, err := NewBlockWriter(tempPath(t, "b.clmb"), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer bw.Close()
	if err := bw.Append(1, []float64{1, 2}); err == nil {
		t.Fatal("wrong-length record accepted")
	}
}

func TestNewBlockWriterInvalidLength(t *testing.T) {
	if _, err := NewBlockWriter(tempPath(t, "b.clmb"), 0); err == nil {
		t.Fatal("zero series length accepted")
	}
}

func TestStatBlockBadMagic(t *testing.T) {
	path := tempPath(t, "bad.clmb")
	if err := os.WriteFile(path, []byte("NOPExxxxxxxxxxxxxxxx"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := StatBlock(path); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestPartitionRoundTrip(t *testing.T) {
	path := tempPath(t, "p.clmp")
	pw := NewPartitionWriter(2)
	// Three clusters, including a negative (overflow) ID.
	type rec struct {
		cluster ClusterID
		id      int
		vals    []float64
	}
	recs := []rec{
		{5, 1, []float64{1, 2}},
		{5, 2, []float64{3, 4}},
		{9, 3, []float64{5, 6}},
		{-1, 4, []float64{7, 8}},
	}
	for _, r := range recs {
		if err := pw.Append(r.cluster, r.id, r.vals); err != nil {
			t.Fatal(err)
		}
	}
	if pw.Count() != 4 {
		t.Fatalf("writer Count = %d, want 4", pw.Count())
	}
	if err := pw.Flush(path); err != nil {
		t.Fatal(err)
	}

	p, err := OpenPartition(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.SeriesLen() != 2 || p.Count() != 4 {
		t.Fatalf("partition len %d count %d, want 2, 4", p.SeriesLen(), p.Count())
	}
	dir := p.Clusters()
	if len(dir) != 3 {
		t.Fatalf("directory has %d clusters, want 3", len(dir))
	}
	// Directory sorted ascending: -1, 5, 9.
	if dir[0].ID != -1 || dir[1].ID != 5 || dir[2].ID != 9 {
		t.Fatalf("directory order = %v", dir)
	}
	if dir[1].Count != 2 {
		t.Fatalf("cluster 5 count = %d, want 2", dir[1].Count)
	}

	var ids []int
	err = p.ScanCluster(5, func(id int, values []float64) error {
		ids = append(ids, id)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("cluster 5 ids = %v, want [1 2]", ids)
	}

	// Missing cluster is not an error and yields nothing.
	called := false
	if err := p.ScanCluster(777, func(int, []float64) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("missing cluster produced records")
	}

	// ScanAll covers every record exactly once.
	seen := map[int]int{}
	err = p.ScanAll(func(id int, values []float64) error {
		seen[id]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("ScanAll saw %d distinct records, want 4", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("record %d scanned %d times", id, n)
		}
	}
}

func TestPartitionScanClusters(t *testing.T) {
	path := tempPath(t, "p.clmp")
	pw := NewPartitionWriter(1)
	for i := 0; i < 10; i++ {
		if err := pw.Append(ClusterID(i%3), i, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Flush(path); err != nil {
		t.Fatal(err)
	}
	p, err := OpenPartition(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var n int
	err = p.ScanClusters([]ClusterID{0, 2, 42}, func(id int, values []float64) error {
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cluster 0 has ids 0,3,6,9 (4 records); cluster 2 has 2,5,8 (3).
	if n != 7 {
		t.Fatalf("ScanClusters visited %d records, want 7", n)
	}
}

func TestPartitionWriterRejectsWrongLength(t *testing.T) {
	pw := NewPartitionWriter(3)
	if err := pw.Append(1, 1, []float64{1}); err == nil {
		t.Fatal("wrong-length record accepted")
	}
}

func TestPartitionValuesCopied(t *testing.T) {
	pw := NewPartitionWriter(2)
	v := []float64{1, 2}
	if err := pw.Append(0, 1, v); err != nil {
		t.Fatal(err)
	}
	v[0] = 99
	path := tempPath(t, "p.clmp")
	if err := pw.Flush(path); err != nil {
		t.Fatal(err)
	}
	p, err := OpenPartition(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	err = p.ScanAll(func(id int, values []float64) error {
		if values[0] != 1 {
			t.Fatalf("writer aliased caller storage: %v", values)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpenPartitionBadMagic(t *testing.T) {
	path := tempPath(t, "bad.clmp")
	if err := os.WriteFile(path, []byte("NOPExxxxxxxxxxxxxxxx"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPartition(path); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestEmptyPartition(t *testing.T) {
	path := tempPath(t, "empty.clmp")
	pw := NewPartitionWriter(4)
	if err := pw.Flush(path); err != nil {
		t.Fatal(err)
	}
	p, err := OpenPartition(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Count() != 0 || len(p.Clusters()) != 0 {
		t.Fatalf("empty partition count %d clusters %d", p.Count(), len(p.Clusters()))
	}
}

// Large randomised round trip: every record must come back in its cluster
// with float32-exact values.
func TestPartitionRandomisedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(44, 55))
	const n, seriesLen = 2000, 8
	pw := NewPartitionWriter(seriesLen)
	want := make(map[int]ClusterID, n)
	for i := 0; i < n; i++ {
		c := ClusterID(rng.IntN(20) - 5)
		v := make([]float64, seriesLen)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		if err := pw.Append(c, i, v); err != nil {
			t.Fatal(err)
		}
		want[i] = c
	}
	path := tempPath(t, "big.clmp")
	if err := pw.Flush(path); err != nil {
		t.Fatal(err)
	}
	p, err := OpenPartition(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	got := make(map[int]ClusterID, n)
	for _, ci := range p.Clusters() {
		cid := ci.ID
		err := p.ScanCluster(cid, func(id int, values []float64) error {
			got[id] = cid
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != n {
		t.Fatalf("recovered %d records, want %d", len(got), n)
	}
	for id, c := range want {
		if got[id] != c {
			t.Fatalf("record %d in cluster %d, want %d", id, got[id], c)
		}
	}
}

func TestPartitionVerify(t *testing.T) {
	path := tempPath(t, "v.clmp")
	pw := NewPartitionWriter(4)
	for i := 0; i < 20; i++ {
		if err := pw.Append(ClusterID(i%3), i, []float64{1, 2, 3, float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Flush(path); err != nil {
		t.Fatal(err)
	}
	p, err := OpenPartition(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatalf("pristine partition fails verification: %v", err)
	}
	p.Close()

	// Flip one record byte: verification must fail, reads must still work
	// (corruption detection is explicit, not implicit).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	p, err = OpenPartition(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Verify(); err == nil {
		t.Fatal("corrupted partition passed verification")
	}
}

func TestPartitionVerifyEmptyFile(t *testing.T) {
	path := tempPath(t, "empty.clmp")
	pw := NewPartitionWriter(2)
	if err := pw.Flush(path); err != nil {
		t.Fatal(err)
	}
	p, err := OpenPartition(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Verify(); err != nil {
		t.Fatalf("empty partition fails verification: %v", err)
	}
}

func TestRecordBytes(t *testing.T) {
	if got := RecordBytes(256); got != 8+1024 {
		t.Fatalf("RecordBytes(256) = %d, want 1032", got)
	}
}
