//go:build linux || darwin

package storage

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// MapSupported reports whether this platform can memory-map partition files.
// When false, MapPartition always errors and callers fall back to
// LoadPartition.
func MapSupported() bool { return true }

// mapFile maps path read-only and shared: the pages are the kernel page
// cache, so every process mapping the same immutable partition shares one
// physical copy. The file descriptor is closed before returning — the
// mapping keeps the underlying file alive on its own.
func mapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: map partition: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("storage: map partition: %w", err)
	}
	size := info.Size()
	if size <= 0 || size > math.MaxInt {
		return nil, fmt.Errorf("storage: cannot map partition %s of size %d", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("storage: mmap %s: %w", path, err)
	}
	// Partition scans walk whole clusters; WILLNEED starts readahead on the
	// file so the first scan does not fault one page at a time. Advice is
	// best-effort — a refusal changes timing, not correctness.
	_ = syscall.Madvise(data, syscall.MADV_WILLNEED)
	return data, nil
}

// unmapFile releases a mapping produced by mapFile.
func unmapFile(data []byte) error {
	return syscall.Munmap(data)
}
