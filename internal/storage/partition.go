package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

// ClusterID identifies a contiguous record cluster inside a partition file.
// CLIMBER uses the global trie-node ID of the leaf owning the records;
// negative IDs are reserved by the index layer for per-group overflow
// clusters (records that could not navigate a complete root-to-leaf path).
type ClusterID int64

// PartitionWriter accumulates records per cluster in memory and writes the
// partition file on Flush. Partitions are bounded by the capacity c (64 MB
// in the paper, far smaller here), so buffering a partition is cheap.
type PartitionWriter struct {
	seriesLen int
	clusters  map[ClusterID][]Record
	count     int
}

// NewPartitionWriter returns an empty writer for series of the given length.
func NewPartitionWriter(seriesLen int) *PartitionWriter {
	return &PartitionWriter{seriesLen: seriesLen, clusters: make(map[ClusterID][]Record)}
}

// Append adds one record to a cluster. The values are copied.
func (pw *PartitionWriter) Append(cluster ClusterID, id int, values []float64) error {
	if len(values) != pw.seriesLen {
		return fmt.Errorf("storage: record length %d, partition expects %d", len(values), pw.seriesLen)
	}
	v := make([]float64, len(values))
	copy(v, values)
	pw.clusters[cluster] = append(pw.clusters[cluster], Record{ID: id, Values: v})
	pw.count++
	return nil
}

// Count returns the number of buffered records.
func (pw *PartitionWriter) Count() int { return pw.count }

// Flush writes the partition file: header, cluster directory (sorted by
// cluster ID for determinism), the record clusters contiguously, and a
// trailing CRC32 (IEEE) of everything before it for integrity checking via
// Partition.Verify.
func (pw *PartitionWriter) Flush(path string) error {
	ids := make([]ClusterID, 0, len(pw.clusters))
	for id := range pw.clusters {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: create partition: %w", err)
	}
	crc := crc32.NewIEEE()
	w := bufio.NewWriterSize(io.MultiWriter(f, crc), 1<<16)

	var hdr [16]byte
	copy(hdr[0:4], partitionMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], partitionVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(pw.seriesLen))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(ids)))
	if _, err := w.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("storage: write partition header: %w", err)
	}
	var dir [12]byte
	for _, id := range ids {
		binary.LittleEndian.PutUint64(dir[0:8], uint64(id))
		binary.LittleEndian.PutUint32(dir[8:12], uint32(len(pw.clusters[id])))
		if _, err := w.Write(dir[:]); err != nil {
			f.Close()
			return fmt.Errorf("storage: write partition directory: %w", err)
		}
	}
	scratch := make([]byte, RecordBytes(pw.seriesLen))
	for _, id := range ids {
		// Canonical record order within a cluster: ascending ID. Shuffle
		// arrival order depends on worker scheduling and must not leak into
		// the on-disk layout.
		recs := pw.clusters[id]
		sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
		for _, rec := range recs {
			encodeRecord(scratch, rec.ID, rec.Values)
			if _, err := w.Write(scratch); err != nil {
				f.Close()
				return fmt.Errorf("storage: write partition record: %w", err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("storage: flush partition: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := f.Write(sum[:]); err != nil {
		f.Close()
		return fmt.Errorf("storage: write partition checksum: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: close partition: %w", err)
	}
	return nil
}

// ClusterInfo is one directory entry of a partition file.
type ClusterInfo struct {
	ID     ClusterID
	Count  int
	offset int64 // byte offset of the cluster's first record
}

// Partition provides random access to one partition's clusters. It reads
// through an io.ReaderAt, so a partition can be backed either by an open
// file (OpenPartition) or by an in-memory copy of the file (LoadPartition);
// the latter is what the query-path partition cache shares between
// concurrent queries. All read methods are safe for concurrent use.
type Partition struct {
	r         io.ReaderAt
	closer    io.Closer // nil for in-memory partitions
	size      int64     // full file size in bytes
	seriesLen int
	total     int
	dir       []ClusterInfo // sorted by ID
}

// OpenPartition opens a partition file and reads its directory; record data
// stays on disk and is read on demand. Close releases the file handle.
func OpenPartition(path string) (*Partition, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open partition: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat partition: %w", err)
	}
	p, err := newPartition(f, info.Size(), path)
	if err != nil {
		f.Close()
		return nil, err
	}
	p.closer = f
	return p, nil
}

// LoadPartition reads an entire partition file into memory and returns a
// Partition serving every scan from that copy. The result holds no file
// handle (Close is a no-op) and is safe to share across goroutines — the
// partition layout is immutable after construction, which is what makes the
// shared query-path cache sound.
func LoadPartition(path string) (*Partition, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: load partition: %w", err)
	}
	return newPartition(bytes.NewReader(data), int64(len(data)), path)
}

// newPartition parses the header and cluster directory from r.
func newPartition(r io.ReaderAt, size int64, path string) (*Partition, error) {
	var hdr [16]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("storage: read partition header: %w", err)
	}
	if string(hdr[0:4]) != partitionMagic {
		return nil, fmt.Errorf("storage: bad partition magic %q in %s", hdr[0:4], path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != partitionVersion {
		return nil, fmt.Errorf("storage: unsupported partition version %d", v)
	}
	p := &Partition{
		r:         r,
		size:      size,
		seriesLen: int(binary.LittleEndian.Uint32(hdr[8:12])),
	}
	nClusters := int(binary.LittleEndian.Uint32(hdr[12:16]))
	dirBytes := make([]byte, 12*nClusters)
	if _, err := r.ReadAt(dirBytes, 16); err != nil {
		return nil, fmt.Errorf("storage: read partition directory: %w", err)
	}
	recBytes := int64(RecordBytes(p.seriesLen))
	offset := int64(16 + 12*nClusters)
	p.dir = make([]ClusterInfo, nClusters)
	for i := 0; i < nClusters; i++ {
		id := ClusterID(binary.LittleEndian.Uint64(dirBytes[i*12 : i*12+8]))
		cnt := int(binary.LittleEndian.Uint32(dirBytes[i*12+8 : i*12+12]))
		p.dir[i] = ClusterInfo{ID: id, Count: cnt, offset: offset}
		offset += int64(cnt) * recBytes
		p.total += cnt
	}
	return p, nil
}

// Close releases the underlying file; it is a no-op for in-memory
// partitions.
func (p *Partition) Close() error {
	if p.closer == nil {
		return nil
	}
	return p.closer.Close()
}

// InMemory reports whether the partition serves reads from a resident copy
// rather than a file handle.
func (p *Partition) InMemory() bool { return p.closer == nil }

// SizeBytes returns the partition file's full size in bytes — the memory
// footprint of an in-memory partition, used for cache budgeting.
func (p *Partition) SizeBytes() int64 { return p.size }

// SeriesLen returns the length of the stored series.
func (p *Partition) SeriesLen() int { return p.seriesLen }

// Count returns the total number of records in the partition.
func (p *Partition) Count() int { return p.total }

// Clusters returns the directory entries (sorted by cluster ID). The slice
// is owned by the Partition; callers must not modify it.
func (p *Partition) Clusters() []ClusterInfo { return p.dir }

// findCluster locates a directory entry by ID via binary search.
func (p *Partition) findCluster(id ClusterID) (ClusterInfo, bool) {
	lo, hi := 0, len(p.dir)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case p.dir[mid].ID == id:
			return p.dir[mid], true
		case p.dir[mid].ID < id:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return ClusterInfo{}, false
}

// ScanCluster streams the records of one cluster through fn. A missing
// cluster ID is not an error — the partition simply holds no records for
// that trie node. The values slice passed to fn is reused; fn must copy to
// retain.
func (p *Partition) ScanCluster(id ClusterID, fn func(id int, values []float64) error) error {
	ci, ok := p.findCluster(id)
	if !ok {
		return nil
	}
	var r io.Reader = io.NewSectionReader(p.r, ci.offset, int64(ci.Count)*int64(RecordBytes(p.seriesLen)))
	if !p.InMemory() {
		// Buffering batches syscalls for file-backed partitions; for an
		// in-memory partition it would only add a copy on the cache-hit
		// hot path, so reads decode straight from the resident bytes.
		r = bufio.NewReaderSize(r, 1<<16)
	}
	return scanRecords(r, p.seriesLen, ci.Count, fn)
}

// ScanClusters streams the records of each listed cluster, skipping IDs not
// present in this partition.
func (p *Partition) ScanClusters(ids []ClusterID, fn func(id int, values []float64) error) error {
	for _, id := range ids {
		if err := p.ScanCluster(id, fn); err != nil {
			return err
		}
	}
	return nil
}

// ScanAll streams every record in the partition in directory order.
func (p *Partition) ScanAll(fn func(id int, values []float64) error) error {
	for _, ci := range p.dir {
		if err := p.ScanCluster(ci.ID, fn); err != nil {
			return err
		}
	}
	return nil
}

// Verify recomputes the file's CRC32 and compares it with the stored
// trailing checksum, detecting on-disk corruption. It reads the whole file;
// partitions are capacity bounded, so the cost is one partition load.
func (p *Partition) Verify() error {
	if p.size < 4 {
		return fmt.Errorf("storage: partition too small to carry a checksum")
	}
	body := io.NewSectionReader(p.r, 0, p.size-4)
	crc := crc32.NewIEEE()
	if _, err := io.Copy(crc, bufio.NewReaderSize(body, 1<<16)); err != nil {
		return fmt.Errorf("storage: checksum partition: %w", err)
	}
	var stored [4]byte
	if _, err := p.r.ReadAt(stored[:], p.size-4); err != nil {
		return fmt.Errorf("storage: read partition checksum: %w", err)
	}
	if got, want := crc.Sum32(), binary.LittleEndian.Uint32(stored[:]); got != want {
		return fmt.Errorf("storage: partition checksum mismatch: computed %08x, stored %08x", got, want)
	}
	return nil
}
