package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync/atomic"
)

// ClusterID identifies a contiguous record cluster inside a partition file.
// CLIMBER uses the global trie-node ID of the leaf owning the records;
// negative IDs are reserved by the index layer for per-group overflow
// clusters (records that could not navigate a complete root-to-leaf path).
type ClusterID int64

// PartitionWriter accumulates records per cluster in memory and writes the
// partition file on Flush. Partitions are bounded by the capacity c (64 MB
// in the paper, far smaller here), so buffering a partition is cheap.
type PartitionWriter struct {
	seriesLen int
	clusters  map[ClusterID][]Record
	count     int
}

// NewPartitionWriter returns an empty writer for series of the given length.
func NewPartitionWriter(seriesLen int) *PartitionWriter {
	return &PartitionWriter{seriesLen: seriesLen, clusters: make(map[ClusterID][]Record)}
}

// Append adds one record to a cluster. The values are copied, so the caller
// may reuse its slice — the right call when appending out of a scan loop
// whose decode buffer is recycled between records. Callers that hand over an
// immutable or never-reused slice should use AppendOwned and skip the copy.
func (pw *PartitionWriter) Append(cluster ClusterID, id int, values []float64) error {
	v := make([]float64, len(values))
	copy(v, values)
	return pw.AppendOwned(cluster, id, v)
}

// AppendOwned adds one record to a cluster, taking ownership of the values
// slice instead of copying it. The caller must not modify or reuse values
// after the call.
func (pw *PartitionWriter) AppendOwned(cluster ClusterID, id int, values []float64) error {
	if len(values) != pw.seriesLen {
		return fmt.Errorf("storage: record length %d, partition expects %d", len(values), pw.seriesLen)
	}
	pw.clusters[cluster] = append(pw.clusters[cluster], Record{ID: id, Values: values})
	pw.count++
	return nil
}

// Count returns the number of buffered records.
func (pw *PartitionWriter) Count() int { return pw.count }

// Flush writes the partition file: header, cluster directory (sorted by
// cluster ID for determinism), the record clusters contiguously, and a
// trailing CRC32 (IEEE) of everything before it for integrity checking via
// Partition.Verify.
func (pw *PartitionWriter) Flush(path string) error {
	ids := make([]ClusterID, 0, len(pw.clusters))
	for id := range pw.clusters {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: create partition: %w", err)
	}
	crc := crc32.NewIEEE()
	w := bufio.NewWriterSize(io.MultiWriter(f, crc), 1<<16)

	var hdr [16]byte
	copy(hdr[0:4], partitionMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], partitionVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(pw.seriesLen))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(ids)))
	if _, err := w.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("storage: write partition header: %w", err)
	}
	var dir [12]byte
	for _, id := range ids {
		binary.LittleEndian.PutUint64(dir[0:8], uint64(id))
		binary.LittleEndian.PutUint32(dir[8:12], uint32(len(pw.clusters[id])))
		if _, err := w.Write(dir[:]); err != nil {
			f.Close()
			return fmt.Errorf("storage: write partition directory: %w", err)
		}
	}
	scratch := make([]byte, RecordBytes(pw.seriesLen))
	for _, id := range ids {
		// Canonical record order within a cluster: ascending ID. Shuffle
		// arrival order depends on worker scheduling and must not leak into
		// the on-disk layout.
		recs := pw.clusters[id]
		sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
		for _, rec := range recs {
			encodeRecord(scratch, rec.ID, rec.Values)
			if _, err := w.Write(scratch); err != nil {
				f.Close()
				return fmt.Errorf("storage: write partition record: %w", err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("storage: flush partition: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := f.Write(sum[:]); err != nil {
		f.Close()
		return fmt.Errorf("storage: write partition checksum: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: close partition: %w", err)
	}
	return nil
}

// ClusterInfo is one directory entry of a partition file.
type ClusterInfo struct {
	ID     ClusterID
	Count  int
	offset int64 // byte offset of the cluster's first record
}

// Partition provides random access to one partition's clusters. It can be
// backed three ways: an open file read through an io.ReaderAt
// (OpenPartition), a heap copy of the file bytes (LoadPartition), or a
// read-only memory mapping of the file (MapPartition) — the resident forms
// are what the query-path partition cache shares between concurrent queries.
// All read methods are safe for concurrent use.
//
// A Partition is reference counted: it is born with one reference, sharers
// take more with Retain, and every reference is returned with Release (Close
// is an alias for the common single-owner case). The backing resources —
// file handle or memory mapping — are torn down when the last reference
// drains, which is what makes unmapping safe while scans may still be in
// flight elsewhere: an eviction or invalidation only drops the cache's
// reference, and the pages stay mapped until the last scanning reader
// finishes and releases its own.
type Partition struct {
	r         io.ReaderAt
	closer    io.Closer // non-nil only for file-backed partitions
	data      []byte    // resident file bytes (heap copy or mapping); nil when file-backed
	mapped    bool      // data is a memory mapping, unmapped on final Release
	size      int64     // full file size in bytes
	seriesLen int
	total     int
	dir       []ClusterInfo // sorted by ID
	refs      atomic.Int64  // outstanding references; resources freed at zero
}

// OpenPartition opens a partition file and reads its directory; record data
// stays on disk and is read on demand. Close releases the file handle.
func OpenPartition(path string) (*Partition, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open partition: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat partition: %w", err)
	}
	p, err := newPartition(f, info.Size(), path)
	if err != nil {
		f.Close()
		return nil, err
	}
	p.closer = f
	return p, nil
}

// LoadPartition reads an entire partition file into memory and returns a
// Partition serving every scan from that heap copy. The result holds no file
// handle and is safe to share across goroutines — the partition layout is
// immutable after construction, which is what makes the shared query-path
// cache sound.
func LoadPartition(path string) (*Partition, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: load partition: %w", err)
	}
	p, err := newPartition(bytes.NewReader(data), int64(len(data)), path)
	if err != nil {
		return nil, err
	}
	p.data = data
	return p, nil
}

// MapPartition memory-maps a partition file read-only and returns a
// Partition scanning straight over the mapped bytes — the zero-copy resident
// form: pages are backed by the kernel page cache and shared across
// processes, and the cache byte budget charges them at file size, making it
// a true RSS bound. Partition files are immutable once published (writers
// replace whole files and invalidate), which is what makes a shared mapping
// sound. The mapping is released when the last reference drains; on
// platforms without mapping support (MapSupported reports false) an error is
// returned and callers fall back to LoadPartition.
func MapPartition(path string) (*Partition, error) {
	data, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	p, err := newPartition(bytes.NewReader(data), int64(len(data)), path)
	if err != nil {
		_ = unmapFile(data)
		return nil, err
	}
	p.data = data
	p.mapped = true
	return p, nil
}

// newPartition parses the header and cluster directory from r.
func newPartition(r io.ReaderAt, size int64, path string) (*Partition, error) {
	var hdr [16]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("storage: read partition header: %w", err)
	}
	if string(hdr[0:4]) != partitionMagic {
		return nil, fmt.Errorf("storage: bad partition magic %q in %s", hdr[0:4], path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != partitionVersion {
		return nil, fmt.Errorf("storage: unsupported partition version %d", v)
	}
	p := &Partition{
		r:         r,
		size:      size,
		seriesLen: int(binary.LittleEndian.Uint32(hdr[8:12])),
	}
	p.refs.Store(1)
	nClusters := int(binary.LittleEndian.Uint32(hdr[12:16]))
	dirBytes := make([]byte, 12*nClusters)
	if _, err := r.ReadAt(dirBytes, 16); err != nil {
		return nil, fmt.Errorf("storage: read partition directory: %w", err)
	}
	recBytes := int64(RecordBytes(p.seriesLen))
	offset := int64(16 + 12*nClusters)
	p.dir = make([]ClusterInfo, nClusters)
	for i := 0; i < nClusters; i++ {
		id := ClusterID(binary.LittleEndian.Uint64(dirBytes[i*12 : i*12+8]))
		cnt := int(binary.LittleEndian.Uint32(dirBytes[i*12+8 : i*12+12]))
		p.dir[i] = ClusterInfo{ID: id, Count: cnt, offset: offset}
		offset += int64(cnt) * recBytes
		p.total += cnt
	}
	return p, nil
}

// Retain takes one additional reference to the partition. Every Retain must
// be paired with a Release; it panics if the partition was already torn
// down, because resurrecting a released partition would hand out a dead
// mapping.
func (p *Partition) Retain() {
	if p.refs.Add(1) <= 1 {
		p.refs.Add(-1)
		panic("storage: Retain on a released partition")
	}
}

// Release returns one reference. The last Release tears the partition down:
// a memory mapping is unmapped, a file handle is closed, a heap copy becomes
// collectable. Releasing more references than were taken panics — that is a
// lifecycle bug that would otherwise surface as a scan over unmapped memory.
func (p *Partition) Release() error {
	n := p.refs.Add(-1)
	if n > 0 {
		return nil
	}
	if n < 0 {
		panic("storage: partition released more often than retained")
	}
	var err error
	if p.mapped {
		err = unmapFile(p.data)
	}
	// Poison the read state so a use-after-release fails loudly (nil deref /
	// nil-slice bounds panic) instead of silently reading freed memory.
	p.data = nil
	p.r = nil
	if p.closer != nil {
		if cerr := p.closer.Close(); err == nil {
			err = cerr
		}
		p.closer = nil
	}
	return err
}

// Close releases the caller's (sole) reference — the familiar spelling for
// single-owner partitions from OpenPartition. Shared partitions pair Retain
// with Release instead.
func (p *Partition) Close() error { return p.Release() }

// InMemory reports whether the partition serves reads from resident bytes
// (a heap copy or a memory mapping) rather than a file handle.
func (p *Partition) InMemory() bool { return p.data != nil }

// Mapped reports whether the resident bytes are a memory mapping.
func (p *Partition) Mapped() bool { return p.mapped }

// SizeBytes returns the partition file's full size in bytes.
func (p *Partition) SizeBytes() int64 { return p.size }

// clusterInfoBytes is the in-memory size of one decoded directory entry,
// charged by MemBytes on top of the file bytes.
const clusterInfoBytes = 24

// MemBytes returns the partition's resident memory footprint, the unit the
// partition cache budgets: the retained file bytes — a heap copy for
// LoadPartition, mapped pages for MapPartition (resident pages are what the
// budget is bounding, so both count at file size) — plus the decoded cluster
// directory. A file-backed partition charges only its directory.
func (p *Partition) MemBytes() int64 {
	mem := int64(clusterInfoBytes * len(p.dir))
	if p.data != nil {
		mem += p.size
	}
	return mem
}

// SeriesLen returns the length of the stored series.
func (p *Partition) SeriesLen() int { return p.seriesLen }

// Count returns the total number of records in the partition.
func (p *Partition) Count() int { return p.total }

// Clusters returns the directory entries (sorted by cluster ID). The slice
// is owned by the Partition; callers must not modify it.
func (p *Partition) Clusters() []ClusterInfo { return p.dir }

// findCluster locates a directory entry by ID via binary search.
func (p *Partition) findCluster(id ClusterID) (ClusterInfo, bool) {
	lo, hi := 0, len(p.dir)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case p.dir[mid].ID == id:
			return p.dir[mid], true
		case p.dir[mid].ID < id:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return ClusterInfo{}, false
}

// scanBuf is the reusable decode scratch one scan threads across clusters,
// so a multi-cluster scan allocates its record buffer and values slice once
// instead of once per cluster.
type scanBuf struct {
	rec  []byte
	vals []float64
}

// ScanCluster streams the records of one cluster through fn. A missing
// cluster ID is not an error — the partition simply holds no records for
// that trie node. The values slice passed to fn is reused; fn must copy to
// retain.
func (p *Partition) ScanCluster(id ClusterID, fn func(id int, values []float64) error) error {
	return p.scanCluster(id, &scanBuf{}, fn)
}

func (p *Partition) scanCluster(id ClusterID, sb *scanBuf, fn func(id int, values []float64) error) error {
	ci, ok := p.findCluster(id)
	if !ok {
		return nil
	}
	if sb.vals == nil {
		sb.vals = make([]float64, p.seriesLen)
	}
	recBytes := int64(RecordBytes(p.seriesLen))
	if p.data != nil {
		// Resident partition: decode straight out of the retained bytes —
		// no reader, no per-record copy of the encoded form.
		for off, end := ci.offset, ci.offset+int64(ci.Count)*recBytes; off < end; off += recBytes {
			rid := decodeRecord(p.data[off:off+recBytes], sb.vals)
			if err := fn(rid, sb.vals); err != nil {
				return err
			}
		}
		return nil
	}
	if sb.rec == nil {
		sb.rec = make([]byte, recBytes)
	}
	// Buffering batches syscalls for file-backed partitions.
	r := bufio.NewReaderSize(io.NewSectionReader(p.r, ci.offset, int64(ci.Count)*recBytes), 1<<16)
	for i := 0; i < ci.Count; i++ {
		if _, err := io.ReadFull(r, sb.rec); err != nil {
			return fmt.Errorf("storage: read record %d/%d: %w", i, ci.Count, err)
		}
		rid := decodeRecord(sb.rec, sb.vals)
		if err := fn(rid, sb.vals); err != nil {
			return err
		}
	}
	return nil
}

// ScanClusters streams the records of each listed cluster, skipping IDs not
// present in this partition.
func (p *Partition) ScanClusters(ids []ClusterID, fn func(id int, values []float64) error) error {
	sb := &scanBuf{}
	for _, id := range ids {
		if err := p.scanCluster(id, sb, fn); err != nil {
			return err
		}
	}
	return nil
}

// ScanAll streams every record in the partition in directory order.
func (p *Partition) ScanAll(fn func(id int, values []float64) error) error {
	sb := &scanBuf{}
	for _, ci := range p.dir {
		if err := p.scanCluster(ci.ID, sb, fn); err != nil {
			return err
		}
	}
	return nil
}

// ScanClusterRaw streams one cluster's records through fn in their encoded
// form: rec is the record's raw value bytes — 4*SeriesLen() little-endian
// float32 readings, the operand of the series.SqDist32* kernels — with the
// record ID already decoded. On a resident partition rec aliases the
// partition's bytes directly (zero copy, zero allocation per record); on a
// file-backed partition it aliases a scratch buffer reused between records.
// Either way rec is valid only during the callback and only while the caller
// holds its partition reference: it must not be stored, appended, or
// otherwise retained (the mmapsafe vet analyzer enforces this — scan helpers
// that consume rec in place are marked //climber:mmapscan).
func (p *Partition) ScanClusterRaw(id ClusterID, fn func(id int, rec []byte) error) error {
	return p.scanClusterRaw(id, &scanBuf{}, fn)
}

func (p *Partition) scanClusterRaw(id ClusterID, sb *scanBuf, fn func(id int, rec []byte) error) error {
	ci, ok := p.findCluster(id)
	if !ok {
		return nil
	}
	recBytes := int64(RecordBytes(p.seriesLen))
	if p.data != nil {
		for off, end := ci.offset, ci.offset+int64(ci.Count)*recBytes; off < end; off += recBytes {
			rec := p.data[off : off+recBytes]
			rid := int(binary.LittleEndian.Uint64(rec[0:8]))
			if err := fn(rid, rec[8:]); err != nil {
				return err
			}
		}
		return nil
	}
	if sb.rec == nil {
		sb.rec = make([]byte, recBytes)
	}
	r := bufio.NewReaderSize(io.NewSectionReader(p.r, ci.offset, int64(ci.Count)*recBytes), 1<<16)
	for i := 0; i < ci.Count; i++ {
		if _, err := io.ReadFull(r, sb.rec); err != nil {
			return fmt.Errorf("storage: read record %d/%d: %w", i, ci.Count, err)
		}
		rid := int(binary.LittleEndian.Uint64(sb.rec[0:8]))
		if err := fn(rid, sb.rec[8:]); err != nil {
			return err
		}
	}
	return nil
}

// ScanClustersRaw streams each listed cluster through fn in encoded form,
// skipping IDs not present in this partition. The rec slice obeys the same
// callback-scoped lifetime as ScanClusterRaw.
func (p *Partition) ScanClustersRaw(ids []ClusterID, fn func(id int, rec []byte) error) error {
	sb := &scanBuf{}
	for _, id := range ids {
		if err := p.scanClusterRaw(id, sb, fn); err != nil {
			return err
		}
	}
	return nil
}

// Verify recomputes the file's CRC32 and compares it with the stored
// trailing checksum, detecting on-disk corruption. It reads the whole file;
// partitions are capacity bounded, so the cost is one partition load.
func (p *Partition) Verify() error {
	if p.size < 4 {
		return fmt.Errorf("storage: partition too small to carry a checksum")
	}
	body := io.NewSectionReader(p.r, 0, p.size-4)
	crc := crc32.NewIEEE()
	if _, err := io.Copy(crc, bufio.NewReaderSize(body, 1<<16)); err != nil {
		return fmt.Errorf("storage: checksum partition: %w", err)
	}
	var stored [4]byte
	if _, err := p.r.ReadAt(stored[:], p.size-4); err != nil {
		return fmt.Errorf("storage: read partition checksum: %w", err)
	}
	if got, want := crc.Sum32(), binary.LittleEndian.Uint32(stored[:]); got != want {
		return fmt.Errorf("storage: partition checksum mismatch: computed %08x, stored %08x", got, want)
	}
	return nil
}
