package storage

import (
	"encoding/binary"
	"math"
	"path/filepath"
	"testing"
)

// FuzzPartitionRoundTrip drives the partition encode→decode cycle with
// arbitrary record payloads: whatever cluster structure and values go into
// a PartitionWriter must come back — bit-for-bit at the format's declared
// float32 precision — from both the file-backed (OpenPartition) and the
// in-memory (LoadPartition) readers, with the directory sorted, the counts
// right, and the trailing checksum valid.
func FuzzPartitionRoundTrip(f *testing.F) {
	f.Add(uint8(4), []byte{})
	f.Add(uint8(1), []byte{0x00, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(3), []byte{
		0x81, 0, 0, 0, 0, 0, 0, 0xf0, 0x3f, 1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2,
		0x02, 9, 9, 9, 9, 9, 9, 9, 9, 8, 8, 8, 8, 8, 8, 8, 8, 7, 7, 7, 7, 7, 7, 7, 7,
	})
	f.Add(uint8(16), make([]byte, 400))

	f.Fuzz(func(t *testing.T, lenByte uint8, data []byte) {
		seriesLen := int(lenByte%16) + 1
		pw := NewPartitionWriter(seriesLen)

		// Consume the fuzz payload as records: one cluster-selector byte
		// (signed, so overflow clusters with negative IDs are exercised
		// too) followed by seriesLen raw float64 values.
		recBytes := 1 + 8*seriesLen
		type rec struct {
			id   int
			vals []float64
		}
		want := make(map[ClusterID][]rec)
		id := 0
		for len(data) >= recBytes && id < 512 {
			cl := ClusterID(int8(data[0]) % 8)
			vals := make([]float64, seriesLen)
			for j := range vals {
				raw := math.Float64frombits(binary.LittleEndian.Uint64(data[1+8*j : 9+8*j]))
				// The format stores float32; the expectation is the value
				// after that precision cut.
				vals[j] = float64(float32(raw))
			}
			in := make([]float64, seriesLen)
			for j := range in {
				in[j] = math.Float64frombits(binary.LittleEndian.Uint64(data[1+8*j : 9+8*j]))
			}
			if err := pw.Append(cl, id, in); err != nil {
				t.Fatalf("append: %v", err)
			}
			want[cl] = append(want[cl], rec{id: id, vals: vals})
			data = data[recBytes:]
			id++
		}

		path := filepath.Join(t.TempDir(), "fuzz.clmp")
		if err := pw.Flush(path); err != nil {
			t.Fatalf("flush: %v", err)
		}

		for _, open := range []struct {
			name string
			fn   func(string) (*Partition, error)
		}{{"file", OpenPartition}, {"memory", LoadPartition}} {
			p, err := open.fn(path)
			if err != nil {
				t.Fatalf("%s: open: %v", open.name, err)
			}
			if err := p.Verify(); err != nil {
				t.Errorf("%s: checksum: %v", open.name, err)
			}
			if p.SeriesLen() != seriesLen {
				t.Errorf("%s: series length %d, want %d", open.name, p.SeriesLen(), seriesLen)
			}
			if p.Count() != id {
				t.Errorf("%s: %d records, want %d", open.name, p.Count(), id)
			}
			dir := p.Clusters()
			if len(dir) != len(want) {
				t.Errorf("%s: %d clusters, want %d", open.name, len(dir), len(want))
			}
			for i := 1; i < len(dir); i++ {
				if dir[i-1].ID >= dir[i].ID {
					t.Errorf("%s: directory not sorted at %d", open.name, i)
				}
			}
			for _, ci := range dir {
				exp := want[ci.ID]
				if ci.Count != len(exp) {
					t.Errorf("%s: cluster %d count %d, want %d", open.name, ci.ID, ci.Count, len(exp))
					continue
				}
				i := 0
				err := p.ScanCluster(ci.ID, func(gotID int, vals []float64) error {
					// Records come back in ascending-ID order; appends used
					// ascending IDs, so `exp` is already canonical.
					if gotID != exp[i].id {
						t.Errorf("%s: cluster %d record %d: id %d, want %d", open.name, ci.ID, i, gotID, exp[i].id)
					}
					for j, v := range vals {
						if math.Float64bits(v) != math.Float64bits(exp[i].vals[j]) {
							t.Errorf("%s: cluster %d record %d value %d: %x, want %x",
								open.name, ci.ID, i, j, math.Float64bits(v), math.Float64bits(exp[i].vals[j]))
						}
					}
					i++
					return nil
				})
				if err != nil {
					t.Errorf("%s: scan cluster %d: %v", open.name, ci.ID, err)
				}
			}
			// A cluster ID the partition never saw scans zero records.
			if err := p.ScanCluster(ClusterID(1<<40), func(int, []float64) error {
				t.Error("scan of an absent cluster produced a record")
				return nil
			}); err != nil {
				t.Errorf("%s: absent-cluster scan: %v", open.name, err)
			}
			p.Close()
		}
	})
}
