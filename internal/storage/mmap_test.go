package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
)

// buildPartition flushes a deterministic multi-cluster partition and returns
// its path plus the expected records keyed by (cluster, id).
func buildPartition(t *testing.T, seriesLen, nRecords int) (string, map[int][]float64) {
	t.Helper()
	rng := rand.New(rand.NewPCG(17, 23))
	pw := NewPartitionWriter(seriesLen)
	want := make(map[int][]float64, nRecords)
	for i := 0; i < nRecords; i++ {
		vals := make([]float64, seriesLen)
		for j := range vals {
			// Store float32-representable values so decoded comparisons are
			// exact.
			vals[j] = float64(float32(rng.NormFloat64() * 10))
		}
		if err := pw.Append(ClusterID(i%5-1), i, vals); err != nil {
			t.Fatal(err)
		}
		want[i] = vals
	}
	path := tempPath(t, "p.clmp")
	if err := pw.Flush(path); err != nil {
		t.Fatal(err)
	}
	return path, want
}

// collectScans runs every scan flavour over one partition backend and
// returns the records each saw, for cross-backend comparison.
func collectScans(t *testing.T, p *Partition) (decoded, raw map[int][]float64) {
	t.Helper()
	decoded = make(map[int][]float64)
	if err := p.ScanAll(func(id int, values []float64) error {
		cp := make([]float64, len(values))
		copy(cp, values)
		decoded[id] = cp
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var ids []ClusterID
	for _, ci := range p.Clusters() {
		ids = append(ids, ci.ID)
	}
	raw = make(map[int][]float64)
	if err := p.ScanClustersRaw(ids, func(id int, rec []byte) error {
		if len(rec) != 4*p.SeriesLen() {
			return fmt.Errorf("record %d: %d value bytes, want %d", id, len(rec), 4*p.SeriesLen())
		}
		vals := make([]float64, p.SeriesLen())
		for j := range vals {
			vals[j] = float64(math.Float32frombits(binary.LittleEndian.Uint32(rec[4*j:])))
		}
		raw[id] = vals
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return decoded, raw
}

// Every backend — file handle, heap copy, memory mapping — and every scan
// flavour — decoded and raw — must observe the identical record set. This is
// the storage half of the bit-identity contract: the engine can switch
// backends and kernels freely because they all read the same bytes.
func TestScanEquivalenceAcrossBackends(t *testing.T) {
	path, want := buildPartition(t, 33, 200)

	backends := map[string]func() (*Partition, error){
		"open": func() (*Partition, error) { return OpenPartition(path) },
		"load": func() (*Partition, error) { return LoadPartition(path) },
	}
	if MapSupported() {
		backends["map"] = func() (*Partition, error) { return MapPartition(path) }
	}
	for name, open := range backends {
		t.Run(name, func(t *testing.T) {
			p, err := open()
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			if err := p.Verify(); err != nil {
				t.Fatalf("Verify: %v", err)
			}
			decoded, raw := collectScans(t, p)
			for _, got := range []map[int][]float64{decoded, raw} {
				if len(got) != len(want) {
					t.Fatalf("scanned %d records, want %d", len(got), len(want))
				}
				for id, vals := range want {
					g, ok := got[id]
					if !ok {
						t.Fatalf("record %d missing", id)
					}
					for j := range vals {
						if g[j] != vals[j] {
							t.Fatalf("record %d value %d: got %v, want %v", id, j, g[j], vals[j])
						}
					}
				}
			}
		})
	}
}

// MapPartition must report the resident/mapped flavour and charge MemBytes
// at file size plus directory, LoadPartition the same without the mapped
// flag, OpenPartition directory-only.
func TestMemBytesPerBackend(t *testing.T) {
	path, _ := buildPartition(t, 8, 50)
	open, err := OpenPartition(path)
	if err != nil {
		t.Fatal(err)
	}
	defer open.Close()
	dirBytes := int64(clusterInfoBytes * len(open.Clusters()))
	if got := open.MemBytes(); got != dirBytes {
		t.Fatalf("file-backed MemBytes = %d, want directory-only %d", got, dirBytes)
	}
	if open.InMemory() || open.Mapped() {
		t.Fatal("file-backed partition reported resident")
	}

	load, err := LoadPartition(path)
	if err != nil {
		t.Fatal(err)
	}
	defer load.Close()
	if got, want := load.MemBytes(), load.SizeBytes()+dirBytes; got != want {
		t.Fatalf("loaded MemBytes = %d, want %d", got, want)
	}
	if !load.InMemory() || load.Mapped() {
		t.Fatal("loaded partition flags wrong")
	}

	if !MapSupported() {
		t.Skip("platform cannot map partitions")
	}
	m, err := MapPartition(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got, want := m.MemBytes(), m.SizeBytes()+dirBytes; got != want {
		t.Fatalf("mapped MemBytes = %d, want %d", got, want)
	}
	if !m.InMemory() || !m.Mapped() {
		t.Fatal("mapped partition flags wrong")
	}
}

// The reference-count lifecycle: Retain defers teardown past Release-of-the-
// original, the final Release frees the backing, and protocol violations
// (retain-after-teardown, double release) panic instead of handing out dead
// memory.
func TestPartitionRetainRelease(t *testing.T) {
	path, _ := buildPartition(t, 8, 20)
	open := LoadPartition
	if MapSupported() {
		open = MapPartition
	}
	p, err := open(path)
	if err != nil {
		t.Fatal(err)
	}
	p.Retain()
	if err := p.Release(); err != nil {
		t.Fatal(err)
	}
	// One reference left: still readable.
	if !p.InMemory() {
		t.Fatal("partition torn down while a reference remains")
	}
	n := 0
	if err := p.ScanAll(func(int, []float64) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != p.Count() {
		t.Fatalf("scanned %d records, want %d", n, p.Count())
	}
	if err := p.Release(); err != nil {
		t.Fatal(err)
	}
	if p.InMemory() {
		t.Fatal("last release must free the resident bytes")
	}
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"retain-after-teardown", p.Retain},
		{"double-release", func() { p.Release() }},
	} {
		name, fn := tc.name, tc.fn
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
