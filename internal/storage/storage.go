// Package storage implements CLIMBER's disk formats: raw dataset blocks and
// physical partition files.
//
// The paper stores partitions on HDFS with a capacity of 64/128 MB and
// organises each partition so that "all data series objects belonging to a
// trie node are stored contiguously next to each other. The start offset of
// each trie node cluster is maintained in a header section within the
// partition" (Section VI, Localized Record-Level Similarity). This package
// reproduces that layout on a local filesystem:
//
//	block file:      magic | version | seriesLen | count | records…
//	partition file:  magic | version | seriesLen | #clusters |
//	                 directory (clusterID, count)… | records grouped by cluster…
//
// Records are fixed size — uint64 ID + seriesLen float32 readings — so the
// cluster directory needs only counts; byte offsets are derived. Reading a
// single trie-node cluster is a seek plus one sequential read.
package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

const (
	blockMagic     = "CLMB"
	partitionMagic = "CLMP"
	formatVersion  = 1
	// partitionVersion is independent of the block version: version 2
	// introduced the trailing CRC32 checksum.
	partitionVersion = 2
)

// RecordBytes returns the on-disk size of one record for the given series
// length.
func RecordBytes(seriesLen int) int { return 8 + 4*seriesLen }

// Record is one data series with its dataset-wide ID.
type Record struct {
	ID     int
	Values []float64
}

// ---------------------------------------------------------------------------
// Block files (raw dataset storage)
// ---------------------------------------------------------------------------

// BlockWriter streams records into a raw block file.
type BlockWriter struct {
	f         *os.File
	w         *bufio.Writer
	seriesLen int
	count     uint32
	scratch   []byte
}

// NewBlockWriter creates (truncating) a block file for series of the given
// length.
func NewBlockWriter(path string, seriesLen int) (*BlockWriter, error) {
	if seriesLen <= 0 {
		return nil, fmt.Errorf("storage: series length must be positive, got %d", seriesLen)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("storage: create block: %w", err)
	}
	bw := &BlockWriter{f: f, w: bufio.NewWriterSize(f, 1<<16), seriesLen: seriesLen,
		scratch: make([]byte, RecordBytes(seriesLen))}
	// Header with a placeholder count, patched on Close.
	var hdr [16]byte
	copy(hdr[0:4], blockMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], formatVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(seriesLen))
	binary.LittleEndian.PutUint32(hdr[12:16], 0)
	if _, err := bw.w.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: write block header: %w", err)
	}
	return bw, nil
}

// Append writes one record.
func (bw *BlockWriter) Append(id int, values []float64) error {
	if len(values) != bw.seriesLen {
		return fmt.Errorf("storage: record length %d, block expects %d", len(values), bw.seriesLen)
	}
	encodeRecord(bw.scratch, id, values)
	if _, err := bw.w.Write(bw.scratch); err != nil {
		return fmt.Errorf("storage: write record: %w", err)
	}
	bw.count++
	return nil
}

// Count returns the number of records appended so far.
func (bw *BlockWriter) Count() int { return int(bw.count) }

// Close flushes buffered data, patches the record count into the header and
// closes the file.
func (bw *BlockWriter) Close() error {
	if err := bw.w.Flush(); err != nil {
		bw.f.Close()
		return fmt.Errorf("storage: flush block: %w", err)
	}
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], bw.count)
	if _, err := bw.f.WriteAt(cnt[:], 12); err != nil {
		bw.f.Close()
		return fmt.Errorf("storage: patch block count: %w", err)
	}
	if err := bw.f.Close(); err != nil {
		return fmt.Errorf("storage: close block: %w", err)
	}
	return nil
}

// BlockInfo describes a block file without loading its records.
type BlockInfo struct {
	SeriesLen int
	Count     int
}

// StatBlock reads a block file's header.
func StatBlock(path string) (BlockInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return BlockInfo{}, fmt.Errorf("storage: open block: %w", err)
	}
	defer f.Close()
	info, err := readBlockHeader(f)
	if err != nil {
		return BlockInfo{}, fmt.Errorf("storage: %s: %w", path, err)
	}
	return info, nil
}

func readBlockHeader(r io.Reader) (BlockInfo, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return BlockInfo{}, fmt.Errorf("read block header: %w", err)
	}
	if string(hdr[0:4]) != blockMagic {
		return BlockInfo{}, fmt.Errorf("bad block magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != formatVersion {
		return BlockInfo{}, fmt.Errorf("unsupported block version %d", v)
	}
	return BlockInfo{
		SeriesLen: int(binary.LittleEndian.Uint32(hdr[8:12])),
		Count:     int(binary.LittleEndian.Uint32(hdr[12:16])),
	}, nil
}

// ScanBlock streams every record of a block file through fn. The values
// slice passed to fn is reused between calls; fn must copy it to retain it.
func ScanBlock(path string, fn func(id int, values []float64) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("storage: open block: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	info, err := readBlockHeader(r)
	if err != nil {
		return fmt.Errorf("storage: %s: %w", path, err)
	}
	return scanRecords(r, info.SeriesLen, info.Count, fn)
}

func scanRecords(r io.Reader, seriesLen, count int, fn func(id int, values []float64) error) error {
	buf := make([]byte, RecordBytes(seriesLen))
	vals := make([]float64, seriesLen)
	for i := 0; i < count; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("storage: read record %d/%d: %w", i, count, err)
		}
		id := decodeRecord(buf, vals)
		if err := fn(id, vals); err != nil {
			return err
		}
	}
	return nil
}

func encodeRecord(dst []byte, id int, values []float64) {
	binary.LittleEndian.PutUint64(dst[0:8], uint64(id))
	off := 8
	for _, v := range values {
		binary.LittleEndian.PutUint32(dst[off:off+4], math.Float32bits(float32(v)))
		off += 4
	}
}

func decodeRecord(src []byte, vals []float64) (id int) {
	id = int(binary.LittleEndian.Uint64(src[0:8]))
	off := 8
	for i := range vals {
		vals[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(src[off : off+4])))
		off += 4
	}
	return id
}
