//go:build !(linux || darwin)

package storage

import "errors"

// MapSupported reports whether this platform can memory-map partition files.
// When false, MapPartition always errors and callers fall back to
// LoadPartition.
func MapSupported() bool { return false }

var errMapUnsupported = errors.New("storage: partition mapping is not supported on this platform")

func mapFile(path string) ([]byte, error) { return nil, errMapUnsupported }

func unmapFile(data []byte) error { return nil }
