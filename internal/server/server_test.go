package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"climber"
	"climber/internal/api"
	"climber/internal/dataset"
)

// buildTestDB builds one small database per test.
func buildTestDB(t *testing.T, n int, opts ...climber.Option) (*climber.DB, [][]float64) {
	t.Helper()
	ds := dataset.RandomWalk(64, n, 77)
	data := make([][]float64, n)
	for i := range data {
		x := make([]float64, 64)
		copy(x, ds.Get(i))
		data[i] = x
	}
	all := append([]climber.Option{
		climber.WithSegments(8), climber.WithPivots(24), climber.WithPrefixLen(4),
		climber.WithCapacity(200), climber.WithSampleRate(0.2), climber.WithBlockSize(250),
		climber.WithSeed(3),
	}, opts...)
	db, err := climber.Build(t.TempDir(), data, all...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, data
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func getPath(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// TestSearchMatchesDB checks the acceptance criterion that /search answers
// are byte-identical to DB.Search on the same database.
func TestSearchMatchesDB(t *testing.T) {
	db, data := buildTestDB(t, 1200)
	h := New(db, Config{}).Handler()
	for _, qid := range []int{0, 311, 1100} {
		for _, variant := range []string{"", "knn", "adaptive-2x", "adaptive-4x", "od-smallest"} {
			rec := postJSON(t, h, "/search", SearchRequest{Query: data[qid], K: 17, Variant: variant})
			if rec.Code != http.StatusOK {
				t.Fatalf("query %d variant %q: status %d: %s", qid, variant, rec.Code, rec.Body)
			}
			var resp SearchResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			v, err := api.ParseVariant(variant)
			if err != nil {
				t.Fatal(err)
			}
			want, err := db.Search(data[qid], 17, climber.WithVariant(v))
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Results) != len(want) {
				t.Fatalf("query %d variant %q: %d results, want %d", qid, variant, len(resp.Results), len(want))
			}
			for i, r := range resp.Results {
				if r.ID != want[i].ID || r.Dist != want[i].Dist {
					t.Fatalf("query %d variant %q result %d: got %+v want %+v", qid, variant, i, r, want[i])
				}
			}
			if resp.Stats.PartitionsScanned == 0 || resp.Stats.RecordsScanned == 0 {
				t.Fatalf("query %d: empty stats %+v", qid, resp.Stats)
			}
		}
	}
}

func TestBatchMatchesDB(t *testing.T) {
	db, data := buildTestDB(t, 1200)
	h := New(db, Config{}).Handler()
	queries := [][]float64{data[5], data[600], data[900]}
	rec := postJSON(t, h, "/search/batch", BatchRequest{Queries: queries, K: 9})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	want, err := db.SearchBatch(queries, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(want) {
		t.Fatalf("%d result sets, want %d", len(resp.Results), len(want))
	}
	for i := range want {
		if len(resp.Results[i]) != len(want[i]) {
			t.Fatalf("batch %d: %d results, want %d", i, len(resp.Results[i]), len(want[i]))
		}
		for j, r := range resp.Results[i] {
			if r.ID != want[i][j].ID || r.Dist != want[i][j].Dist {
				t.Fatalf("batch %d result %d: got %+v want %+v", i, j, r, want[i][j])
			}
		}
	}
}

// TestPrefixMatchesDB checks that /search/prefix answers match
// DB.SearchPrefix on the same database, and that out-of-range prefix
// lengths are clean 400s.
func TestPrefixMatchesDB(t *testing.T) {
	db, data := buildTestDB(t, 1200)
	h := New(db, Config{}).Handler()
	for _, qid := range []int{3, 700} {
		q := data[qid][:32]
		rec := postJSON(t, h, "/search/prefix", SearchRequest{Query: q, K: 11})
		if rec.Code != http.StatusOK {
			t.Fatalf("prefix query %d: status %d: %s", qid, rec.Code, rec.Body)
		}
		var resp SearchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		want, err := db.SearchPrefix(q, 11)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != len(want) {
			t.Fatalf("prefix query %d: %d results, want %d", qid, len(resp.Results), len(want))
		}
		for i, r := range resp.Results {
			if r.ID != want[i].ID || r.Dist != want[i].Dist {
				t.Fatalf("prefix query %d result %d: got %+v want %+v", qid, i, r, want[i])
			}
		}
	}
	// Shorter than the PAA segment count (8 in buildTestDB) or longer than
	// the indexed length: rejected at decode, not deep in the core.
	for _, n := range []int{4, 65} {
		q := make([]float64, n)
		if rec := postJSON(t, h, "/search/prefix", SearchRequest{Query: q, K: 3}); rec.Code != http.StatusBadRequest {
			t.Errorf("prefix length %d: status %d, want 400", n, rec.Code)
		}
	}
}

func TestBadRequests(t *testing.T) {
	db, data := buildTestDB(t, 600)
	h := New(db, Config{MaxK: 100, MaxBatch: 4}).Handler()
	cases := []struct {
		name string
		body string
	}{
		{"invalid json", `{"query": [1,2`},
		{"empty body", ``},
		{"wrong length", `{"query": [1,2,3], "k": 5}`},
		{"negative k", fmt.Sprintf(`{"query": %s, "k": -1}`, mustJSON(data[0]))},
		{"k over limit", fmt.Sprintf(`{"query": %s, "k": 101}`, mustJSON(data[0]))},
		{"bad variant", fmt.Sprintf(`{"query": %s, "variant": "bogus"}`, mustJSON(data[0]))},
		{"negative max_partitions", fmt.Sprintf(`{"query": %s, "max_partitions": -2}`, mustJSON(data[0]))},
		{"trailing garbage", fmt.Sprintf(`{"query": %s} extra`, mustJSON(data[0]))},
	}
	for _, c := range cases {
		req := httptest.NewRequest(http.MethodPost, "/search", strings.NewReader(c.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, rec.Code)
		}
		var er api.ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
			t.Errorf("%s: malformed error body %q", c.name, rec.Body)
		}
	}
	// Over-limit batch.
	rec := postJSON(t, h, "/search/batch", BatchRequest{Queries: [][]float64{data[0], data[1], data[2], data[3], data[4]}})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", rec.Code)
	}
	// Wrong method.
	if rec := getPath(t, h, "/search"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /search: status %d, want 405", rec.Code)
	}
}

func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return string(b)
}

func TestInfoStatsHealthzMetrics(t *testing.T) {
	db, data := buildTestDB(t, 600, climber.WithPartitionCacheBytes(64<<20))
	h := New(db, Config{}).Handler()
	if rec := postJSON(t, h, "/search", SearchRequest{Query: data[0], K: 5}); rec.Code != http.StatusOK {
		t.Fatalf("warmup query: %d", rec.Code)
	}

	rec := getPath(t, h, "/info")
	if rec.Code != http.StatusOK {
		t.Fatalf("/info: %d", rec.Code)
	}
	var info InfoResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.SeriesLen != 64 || info.NumRecords != 600 || info.NumPartitions == 0 {
		t.Fatalf("bad /info: %+v", info)
	}

	rec = getPath(t, h, "/stats")
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Server.Searches != 1 {
		t.Fatalf("/stats reports %d searches, want 1", stats.Server.Searches)
	}
	if stats.Cache.PartitionsLoaded == 0 {
		t.Fatalf("/stats cache counters empty: %+v", stats.Cache)
	}

	if rec = getPath(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz: %d", rec.Code)
	}

	rec = getPath(t, h, "/metrics")
	body := rec.Body.String()
	for _, want := range []string{
		"climber_search_requests_total 1",
		"climber_query_latency_seconds_count 1",
		"climber_query_latency_seconds_bucket{le=\"+Inf\"} 1",
		"climber_partitions_loaded_total",
		"climber_partition_cache_hits_total",
		"climber_rejected_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestConcurrentClientsUnderLimit fires 32 concurrent clients at a server
// whose admission limit is exactly 32: every request must be admitted and
// answered correctly — no request lost below the limit.
func TestConcurrentClientsUnderLimit(t *testing.T) {
	db, data := buildTestDB(t, 1500, climber.WithPartitionCacheBytes(64<<20))
	srv := New(db, Config{MaxInFlight: 32, QueueTimeout: 30 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 32
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			qid := (c * 41) % len(data)
			body, _ := json.Marshal(SearchRequest{Query: data[qid], K: 10})
			resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[c] = err
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs[c] = fmt.Errorf("status %d: %s", resp.StatusCode, raw)
				return
			}
			var sr SearchResponse
			if err := json.Unmarshal(raw, &sr); err != nil {
				errs[c] = err
				return
			}
			want, err := db.Search(data[qid], 10)
			if err != nil {
				errs[c] = err
				return
			}
			for i := range want {
				if sr.Results[i].ID != want[i].ID || sr.Results[i].Dist != want[i].Dist {
					errs[c] = fmt.Errorf("result %d mismatch", i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", c, err)
		}
	}
}

// TestAdmissionControlRejectsOverLimit saturates a 2-slot server with
// queries blocked on a test hook, then checks that further requests are
// rejected 429 after the queue deadline while the in-flight ones complete
// once released.
func TestAdmissionControlRejectsOverLimit(t *testing.T) {
	db, data := buildTestDB(t, 600)
	const limit = 2
	srv := New(db, Config{MaxInFlight: limit, QueueTimeout: 50 * time.Millisecond})
	admitted := make(chan struct{}, limit)
	gate := make(chan struct{})
	srv.hookAdmitted = func(ctx context.Context) {
		admitted <- struct{}{}
		<-gate
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(SearchRequest{Query: data[0], K: 5})
	statuses := make([]int, limit+4)
	post := func(i int) {
		resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
		if err != nil {
			statuses[i] = -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		statuses[i] = resp.StatusCode
	}
	// Fill every slot; wait until both queries hold theirs.
	var wg sync.WaitGroup
	for i := 0; i < limit; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); post(i) }(i)
	}
	for i := 0; i < limit; i++ {
		select {
		case <-admitted:
		case <-time.After(5 * time.Second):
			t.Fatal("slots never filled")
		}
	}
	// Every further request must be turned away with 429.
	var over sync.WaitGroup
	for i := limit; i < len(statuses); i++ {
		over.Add(1)
		go func(i int) { defer over.Done(); post(i) }(i)
	}
	over.Wait()
	for i := limit; i < len(statuses); i++ {
		if statuses[i] != http.StatusTooManyRequests {
			t.Errorf("over-limit request %d: status %d, want 429", i, statuses[i])
		}
	}
	// Release the gate: the two admitted queries must finish cleanly.
	close(gate)
	wg.Wait()
	for i := 0; i < limit; i++ {
		if statuses[i] != http.StatusOK {
			t.Errorf("admitted request %d: status %d, want 200", i, statuses[i])
		}
	}
	rec := getPath(t, srv.Handler(), "/metrics")
	if !strings.Contains(rec.Body.String(), "climber_rejected_total 4") {
		t.Errorf("rejected counter not at 4:\n%s", rec.Body.String())
	}
}

// TestClientDisconnectCancelsQuery checks the acceptance criterion that a
// client disconnect cancels the in-flight scan: the query goroutine must
// return context.Canceled, observed via the search-done hook.
func TestClientDisconnectCancelsQuery(t *testing.T) {
	db, data := buildTestDB(t, 600)
	srv := New(db, Config{MaxInFlight: 4})
	started := make(chan struct{})
	srv.hookAdmitted = func(ctx context.Context) {
		close(started)
		<-ctx.Done() // hold the query until the disconnect propagates
	}
	searchErr := make(chan error, 1)
	srv.hookSearchDone = func(err error) { searchErr <- err }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(SearchRequest{Query: data[0], K: 5})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/search", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	clientDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		clientDone <- err
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("query never started")
	}
	cancel() // the client hangs up mid-query

	select {
	case err := <-searchErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("query returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query goroutine never returned after the disconnect")
	}
	if err := <-clientDone; err == nil {
		t.Fatal("client request unexpectedly succeeded")
	}
	var canceled int64
	for i := 0; i < 100; i++ { // the 499 is recorded just after the hook fires
		var stats StatsResponse
		rec := getPath(t, srv.Handler(), "/stats")
		if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
			t.Fatal(err)
		}
		if canceled = stats.Server.Canceled; canceled == 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if canceled != 1 {
		t.Fatalf("canceled counter %d, want 1", canceled)
	}
}

// TestBatchCancellation cancels a batch request mid-flight and checks the
// whole batch aborts with context.Canceled.
func TestBatchCancellation(t *testing.T) {
	db, data := buildTestDB(t, 600)
	srv := New(db, Config{})
	started := make(chan struct{})
	srv.hookAdmitted = func(ctx context.Context) {
		close(started)
		<-ctx.Done()
	}
	searchErr := make(chan error, 1)
	srv.hookSearchDone = func(err error) { searchErr <- err }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(BatchRequest{Queries: [][]float64{data[0], data[1]}, K: 5})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/search/batch", bytes.NewReader(body))
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	cancel()
	select {
	case err := <-searchErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("batch returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("batch never returned after cancel")
	}
}

// TestQueuedDisconnectCountsCanceled checks that a client hanging up while
// waiting for an admission slot is denied with the client-closed status and
// lands in the canceled counter, not silently dropped from the accounting.
func TestQueuedDisconnectCountsCanceled(t *testing.T) {
	db, _ := buildTestDB(t, 600)
	srv := New(db, Config{MaxInFlight: 1, QueueTimeout: 10 * time.Second})
	releaseSlot, _, err := srv.admit(context.Background()) // occupy the only slot
	if err != nil {
		t.Fatal(err)
	}
	defer releaseSlot()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	release, status, err := srv.admit(ctx)
	if release != nil || err == nil || status != StatusClientClosedRequest {
		t.Fatalf("admit of a disconnected queued client: release=%v status=%d err=%v", release != nil, status, err)
	}
	if got := srv.m.canceled.Load(); got != 1 {
		t.Fatalf("canceled counter %d, want 1", got)
	}
	if got := srv.m.queued.Load(); got != 0 {
		t.Fatalf("queued gauge %d after abort, want 0", got)
	}
}

// TestBatchRespectsAdmissionBudget checks that a batch widens its worker
// pool only into idle admission slots: with MaxInFlight=2, a 64-query batch
// must never hold more than 2 slots, and must release them all afterwards.
func TestBatchRespectsAdmissionBudget(t *testing.T) {
	db, data := buildTestDB(t, 1200)
	srv := New(db, Config{MaxInFlight: 2})
	h := srv.Handler()

	stop := make(chan struct{})
	var maxSeen atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				if n := srv.m.inflight.Load(); n > maxSeen.Load() {
					maxSeen.Store(n)
				}
			}
		}
	}()
	queries := make([][]float64, 64)
	for i := range queries {
		queries[i] = data[(i*17)%len(data)]
	}
	rec := postJSON(t, h, "/search/batch", BatchRequest{Queries: queries, K: 5})
	close(stop)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body)
	}
	if got := maxSeen.Load(); got > 2 {
		t.Fatalf("batch held %d admission slots, limit is 2", got)
	}
	if srv.m.inflight.Load() != 0 || srv.lim.Held() != 0 {
		t.Fatalf("slots leaked after batch: inflight=%d sem=%d", srv.m.inflight.Load(), srv.lim.Held())
	}
}

// TestInflightGaugeReturnsToZero checks slot accounting: after a burst of
// queries completes, no admission slot leaks.
func TestInflightGaugeReturnsToZero(t *testing.T) {
	db, data := buildTestDB(t, 600)
	srv := New(db, Config{MaxInFlight: 4})
	h := srv.Handler()
	var wg sync.WaitGroup
	var failures atomic.Int64
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := postJSON(t, h, "/search", SearchRequest{Query: data[i%len(data)], K: 3})
			if rec.Code != http.StatusOK {
				failures.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d queries failed", n)
	}
	if got := srv.m.inflight.Load(); got != 0 {
		t.Fatalf("inflight gauge %d after drain, want 0", got)
	}
	if srv.lim.Held() != 0 {
		t.Fatalf("%d admission slots leaked", srv.lim.Held())
	}
}

// TestAppendEndpoint covers the live-ingestion walkthrough: POST /append
// acks durable writes that /search sees immediately, /stats and /metrics
// report the pipeline, and /flush compacts on demand.
func TestAppendEndpoint(t *testing.T) {
	db, _ := buildTestDB(t, 1200,
		climber.WithCompactionRecords(1<<20), climber.WithCompactionAge(time.Hour))
	h := New(db, Config{}).Handler()

	fresh := dataset.RandomWalk(64, 10, 4242)
	series := make([][]float64, fresh.Len())
	for i := range series {
		x := make([]float64, 64)
		copy(x, fresh.Get(i))
		series[i] = x
	}
	rec := postJSON(t, h, "/append", AppendRequest{Series: series})
	if rec.Code != http.StatusOK {
		t.Fatalf("append status %d: %s", rec.Code, rec.Body)
	}
	var ar AppendResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ar); err != nil {
		t.Fatal(err)
	}
	if len(ar.IDs) != 10 || ar.IDs[0] != 1200 {
		t.Fatalf("append ids = %v, want 1200..1209", ar.IDs)
	}

	// Immediately visible to /search, before any compaction.
	found := 0
	for i, q := range series {
		rec := postJSON(t, h, "/search", SearchRequest{Query: q, K: 3})
		if rec.Code != http.StatusOK {
			t.Fatalf("search status %d: %s", rec.Code, rec.Body)
		}
		var sr SearchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
			t.Fatal(err)
		}
		if len(sr.Results) > 0 && sr.Results[0].ID == ar.IDs[i] && sr.Results[0].Dist < 1e-4 {
			found++
		}
	}
	if found < 9 {
		t.Fatalf("found %d/10 appended series via /search, want >= 9", found)
	}

	// /info counts them; /stats reports the pipeline.
	var info InfoResponse
	if err := json.Unmarshal(getPath(t, h, "/info").Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.NumRecords != 1210 {
		t.Fatalf("/info num_records = %d, want 1210", info.NumRecords)
	}
	var stats StatsResponse
	if err := json.Unmarshal(getPath(t, h, "/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Server.Appends != 1 || stats.Server.AppendSeries != 10 {
		t.Fatalf("server append counters: %+v", stats.Server)
	}
	if stats.Ingest.DeltaRecords != 10 || stats.Ingest.WALBytes <= 12 {
		t.Fatalf("ingest stats: %+v", stats.Ingest)
	}

	// /flush drains the delta; records stay findable.
	if rec := postJSON(t, h, "/flush", struct{}{}); rec.Code != http.StatusOK {
		t.Fatalf("flush status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(getPath(t, h, "/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Ingest.DeltaRecords != 0 || stats.Ingest.Compactions != 1 {
		t.Fatalf("ingest stats after flush: %+v", stats.Ingest)
	}
	rec = postJSON(t, h, "/search", SearchRequest{Query: series[3], K: 3})
	var sr SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) == 0 || sr.Results[0].ID != ar.IDs[3] {
		t.Fatalf("appended series lost after flush: %+v", sr.Results)
	}

	// Prometheus exposition carries the ingestion metrics.
	body := getPath(t, h, "/metrics").Body.String()
	for _, m := range []string{
		"climber_append_requests_total 1",
		"climber_append_series_total 10",
		"climber_compactions_total 1",
		"climber_delta_records 0",
		"climber_wal_bytes 12",
	} {
		if !strings.Contains(body, m) {
			t.Errorf("/metrics missing %q", m)
		}
	}
}

// TestAppendValidationErrors: malformed append bodies are clean 400s.
func TestAppendValidationErrors(t *testing.T) {
	db, _ := buildTestDB(t, 1000)
	h := New(db, Config{MaxAppend: 4}).Handler()
	cases := []any{
		AppendRequest{}, // empty
		AppendRequest{Series: [][]float64{{1, 2, 3}}}, // wrong length
		AppendRequest{Series: make([][]float64, 5)},   // over MaxAppend
	}
	for i, body := range cases {
		if rec := postJSON(t, h, "/append", body); rec.Code != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, rec.Code)
		}
	}
}
