package server

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"climber"
)

// latencyBuckets are the upper bounds (seconds) of the query latency
// histogram, chosen to straddle the in-memory-hit to multi-partition-scan
// range; an implicit +Inf bucket catches the rest.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram with atomic counters; safe
// for concurrent observation and rendering. The total count is derived
// from the buckets at render time so one exposition always satisfies the
// Prometheus invariant bucket{le="+Inf"} == _count, even when queries
// finish mid-scrape.
type histogram struct {
	buckets []atomic.Int64 // per-bucket at observe, cumulated at render
	inf     atomic.Int64
	sumNs   atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{buckets: make([]atomic.Int64, len(latencyBuckets))}
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	h.sumNs.Add(d.Nanoseconds())
	for i, le := range latencyBuckets {
		if s <= le {
			h.buckets[i].Add(1)
			return
		}
	}
	h.inf.Add(1)
}

// metrics aggregates the server's operational counters.
type metrics struct {
	searches     atomic.Int64 // /search requests answered (incl. errors)
	batches      atomic.Int64 // /search/batch requests answered
	batchQueries atomic.Int64 // queries inside answered batches
	appends      atomic.Int64 // /append requests answered (incl. errors)
	appendSeries atomic.Int64 // series inside successful appends
	flushes      atomic.Int64 // /flush requests answered
	badRequests  atomic.Int64 // 400s from decode/validation
	rejected     atomic.Int64 // 429s from admission control
	canceled     atomic.Int64 // queries aborted by client disconnect
	errors       atomic.Int64 // internal query failures
	inflight     atomic.Int64 // queries currently holding an admission slot
	queued       atomic.Int64 // requests currently waiting for a slot
	latency      *histogram   // read path (search + batch) only
	appendLat    *histogram   // write path; fsync-bound, kept out of the
	// query histogram so write bursts cannot skew search percentiles
}

// ServerStats is the JSON shape of the server section of GET /stats.
type ServerStats struct {
	Searches      int64   `json:"searches"`
	Batches       int64   `json:"batches"`
	BatchQueries  int64   `json:"batch_queries"`
	Appends       int64   `json:"appends"`
	AppendSeries  int64   `json:"append_series"`
	Flushes       int64   `json:"flushes"`
	BadRequests   int64   `json:"bad_requests"`
	Rejected      int64   `json:"rejected"`
	Canceled      int64   `json:"canceled"`
	Errors        int64   `json:"errors"`
	InFlight      int64   `json:"in_flight"`
	Queued        int64   `json:"queued"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (m *metrics) snapshot(uptime time.Duration) ServerStats {
	return ServerStats{
		Searches:      m.searches.Load(),
		Batches:       m.batches.Load(),
		BatchQueries:  m.batchQueries.Load(),
		Appends:       m.appends.Load(),
		AppendSeries:  m.appendSeries.Load(),
		Flushes:       m.flushes.Load(),
		BadRequests:   m.badRequests.Load(),
		Rejected:      m.rejected.Load(),
		Canceled:      m.canceled.Load(),
		Errors:        m.errors.Load(),
		InFlight:      m.inflight.Load(),
		Queued:        m.queued.Load(),
		UptimeSeconds: uptime.Seconds(),
	}
}

// renderHistogram writes one histogram in Prometheus text exposition; the
// cumulative count is derived from the buckets at render time so one
// exposition always satisfies bucket{le="+Inf"} == _count.
func renderHistogram(w *strings.Builder, name, help string, h *histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, le := range latencyBuckets {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(le, 'g', -1, 64), cum)
	}
	cum += h.inf.Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNs.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}

// renderProm writes the Prometheus text exposition of the server counters,
// the latency histograms, and the DB's partition-cache and ingestion
// counters.
func (m *metrics) renderProm(w *strings.Builder, cache climber.CacheStats, ing climber.IngestStats) {
	metric := func(name, help, kind string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		fmt.Fprintf(w, "%s %d\n", name, v)
	}
	counter := func(name, help string, v int64) { metric(name, help, "counter", v) }
	gauge := func(name, help string, v int64) { metric(name, help, "gauge", v) }
	counter("climber_search_requests_total", "Answered /search requests.", m.searches.Load())
	counter("climber_batch_requests_total", "Answered /search/batch requests.", m.batches.Load())
	counter("climber_batch_queries_total", "Queries inside answered batches.", m.batchQueries.Load())
	counter("climber_bad_requests_total", "Requests rejected with 400.", m.badRequests.Load())
	counter("climber_rejected_total", "Requests rejected with 429 by admission control.", m.rejected.Load())
	counter("climber_canceled_total", "Queries aborted by client disconnect.", m.canceled.Load())
	counter("climber_query_errors_total", "Queries that failed internally.", m.errors.Load())
	gauge("climber_inflight_queries", "Queries currently holding an admission slot.", m.inflight.Load())
	gauge("climber_queued_requests", "Requests currently waiting for an admission slot.", m.queued.Load())

	renderHistogram(w, "climber_query_latency_seconds",
		"End-to-end query latency (admission to answer).", m.latency)
	renderHistogram(w, "climber_append_latency_seconds",
		"End-to-end append latency (admission to durable ack).", m.appendLat)

	counter("climber_partition_cache_hits_total", "Partition opens served from the shared cache.", cache.Hits)
	counter("climber_partition_cache_misses_total", "Partition opens that loaded from disk.", cache.Misses)
	counter("climber_partition_cache_evictions_total", "Partitions evicted to hold the byte budget.", cache.Evictions)
	counter("climber_partition_cache_bytes_saved_total", "Partition-file bytes the cache avoided re-reading.", cache.BytesSaved)
	counter("climber_partitions_loaded_total", "Real partition disk loads.", cache.PartitionsLoaded)

	counter("climber_append_requests_total", "Answered /append requests.", m.appends.Load())
	counter("climber_append_series_total", "Series inside successful appends.", m.appendSeries.Load())
	counter("climber_flush_requests_total", "Answered /flush requests.", m.flushes.Load())
	counter("climber_ingest_appended_series_total", "Series acked by the ingestion pipeline.", ing.AppendedSeries)
	counter("climber_ingest_replayed_series_total", "WAL entries replayed into the delta at open.", ing.ReplayedSeries)
	counter("climber_compactions_total", "Completed delta-to-partition compactions.", ing.Compactions)
	counter("climber_compacted_series_total", "Series moved from the delta into partition files.", ing.CompactedSeries)
	counter("climber_compact_errors_total", "Failed background compaction attempts.", ing.CompactErrors)
	gauge("climber_wal_bytes", "Current write-ahead-log size in bytes.", ing.WALBytes)
	gauge("climber_delta_records", "Acked records resident in the in-memory delta index.", int64(ing.DeltaRecords))
	gauge("climber_delta_bytes", "Storage-equivalent bytes resident in the delta index.", ing.DeltaBytes)
}
