package server

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"climber"
	"climber/internal/api"
)

// metrics aggregates the server's operational counters. The admission
// counters (rejected, canceled, inflight, queued) are written by the shared
// api.Limiter through pointers handed over at construction, so one set of
// numbers backs both /stats and /metrics.
type metrics struct {
	searches     atomic.Int64   // /search requests answered (incl. errors)
	batches      atomic.Int64   // /search/batch requests answered
	batchQueries atomic.Int64   // queries inside answered batches
	prefixes     atomic.Int64   // /search/prefix requests answered
	appends      atomic.Int64   // /append requests answered (incl. errors)
	appendSeries atomic.Int64   // series inside successful appends
	flushes      atomic.Int64   // /flush requests answered
	reindexes    atomic.Int64   // /reindex requests answered (incl. errors)
	backups      atomic.Int64   // /backup requests answered (incl. errors)
	badRequests  atomic.Int64   // 400s from decode/validation
	rejected     atomic.Int64   // 429s from admission control
	canceled     atomic.Int64   // queries aborted by client disconnect
	errors       atomic.Int64   // internal query failures
	budgetExh    atomic.Int64   // queries answered partially, budget exhausted
	inflight     atomic.Int64   // queries currently holding an admission slot
	queued       atomic.Int64   // requests currently waiting for a slot
	traced       atomic.Int64   // queries that ran with a trace attached
	latency      *api.Histogram // read path (search + batch + prefix) only
	appendLat    *api.Histogram // write path; fsync-bound, kept out of the
	// query histogram so write bursts cannot skew search percentiles
	stageLat map[string]*api.Histogram // per-pipeline-stage latency, traced queries only
}

// stageNames are the pipeline stages of one traced query, in execution
// order — the direct children of a query's root span (see internal/core)
// and the label values of climber_stage_latency_seconds.
var stageNames = []string{"plan", "scan", "widen", "delta", "merge"}

// ServerStats is the JSON shape of the server section of GET /stats.
type ServerStats struct {
	Searches        int64   `json:"searches"`
	Batches         int64   `json:"batches"`
	BatchQueries    int64   `json:"batch_queries"`
	PrefixSearches  int64   `json:"prefix_searches"`
	Appends         int64   `json:"appends"`
	AppendSeries    int64   `json:"append_series"`
	Flushes         int64   `json:"flushes"`
	Reindexes       int64   `json:"reindexes"`
	Backups         int64   `json:"backups"`
	BadRequests     int64   `json:"bad_requests"`
	Rejected        int64   `json:"rejected"`
	Canceled        int64   `json:"canceled"`
	Errors          int64   `json:"errors"`
	BudgetExhausted int64   `json:"budget_exhausted"`
	InFlight        int64   `json:"in_flight"`
	Queued          int64   `json:"queued"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
}

func (m *metrics) snapshot(uptime time.Duration) ServerStats {
	return ServerStats{
		Searches:        m.searches.Load(),
		Batches:         m.batches.Load(),
		BatchQueries:    m.batchQueries.Load(),
		PrefixSearches:  m.prefixes.Load(),
		Appends:         m.appends.Load(),
		AppendSeries:    m.appendSeries.Load(),
		Flushes:         m.flushes.Load(),
		Reindexes:       m.reindexes.Load(),
		Backups:         m.backups.Load(),
		BadRequests:     m.badRequests.Load(),
		Rejected:        m.rejected.Load(),
		Canceled:        m.canceled.Load(),
		Errors:          m.errors.Load(),
		BudgetExhausted: m.budgetExh.Load(),
		InFlight:        m.inflight.Load(),
		Queued:          m.queued.Load(),
		UptimeSeconds:   uptime.Seconds(),
	}
}

// renderProm writes the Prometheus text exposition of the server counters,
// the latency histograms, and the DB's partition-cache and ingestion
// counters. buildInfo is the pre-rendered label set of the
// climber_build_info gauge; slowTotal is the slow-query log's lifetime
// entry count.
func (m *metrics) renderProm(w *strings.Builder, buildInfo string, slowTotal int64, cache climber.CacheStats, ing climber.IngestStats) {
	metric := func(name, help, kind string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		fmt.Fprintf(w, "%s %d\n", name, v)
	}
	counter := func(name, help string, v int64) { metric(name, help, "counter", v) }
	gauge := func(name, help string, v int64) { metric(name, help, "gauge", v) }
	if buildInfo != "" {
		fmt.Fprintf(w, "# HELP climber_build_info Build and index-granularity identity; constant 1.\n")
		fmt.Fprintf(w, "# TYPE climber_build_info gauge\n")
		fmt.Fprintf(w, "climber_build_info{%s} 1\n", buildInfo)
	}
	counter("climber_search_requests_total", "Answered /search requests.", m.searches.Load())
	counter("climber_batch_requests_total", "Answered /search/batch requests.", m.batches.Load())
	counter("climber_batch_queries_total", "Queries inside answered batches.", m.batchQueries.Load())
	counter("climber_prefix_requests_total", "Answered /search/prefix requests.", m.prefixes.Load())
	counter("climber_bad_requests_total", "Requests rejected with 400.", m.badRequests.Load())
	counter("climber_rejected_total", "Requests rejected with 429 by admission control.", m.rejected.Load())
	counter("climber_canceled_total", "Queries aborted by client disconnect.", m.canceled.Load())
	counter("climber_query_errors_total", "Queries that failed internally.", m.errors.Load())
	counter("climber_budget_exhausted_total", "Queries answered partially because their time/partition budget ran out.", m.budgetExh.Load())
	gauge("climber_inflight_queries", "Queries currently holding an admission slot.", m.inflight.Load())
	gauge("climber_queued_requests", "Requests currently waiting for an admission slot.", m.queued.Load())
	counter("climber_traced_queries_total", "Queries that ran with tracing attached (explain, sampled, or propagated).", m.traced.Load())
	counter("climber_slow_log_entries_total", "Requests recorded in the slow-query log (threshold or sampled).", slowTotal)

	m.latency.Render(w, "climber_query_latency_seconds",
		"End-to-end query latency, every outcome included (200s, 400s, 429s).")
	m.appendLat.Render(w, "climber_append_latency_seconds",
		"End-to-end append latency (admission to durable ack).")
	for i, st := range stageNames {
		m.stageLat[st].RenderLabeled(w, "climber_stage_latency_seconds",
			fmt.Sprintf("stage=%q", st),
			"Per-pipeline-stage latency of traced queries.", i == 0)
	}

	counter("climber_partition_cache_hits_total", "Partition opens served from the shared cache.", cache.Hits)
	counter("climber_partition_cache_misses_total", "Partition opens that loaded from disk.", cache.Misses)
	counter("climber_partition_cache_evictions_total", "Partitions evicted to hold the byte budget.", cache.Evictions)
	counter("climber_partition_cache_bytes_saved_total", "Partition-file bytes the cache avoided re-reading.", cache.BytesSaved)
	counter("climber_partitions_loaded_total", "Real partition disk loads.", cache.PartitionsLoaded)
	gauge("climber_partition_cache_resident_bytes", "Partition-cache charge against its byte budget (metadata plus decoded or mapped bytes).", cache.ResidentBytes)
	gauge("climber_partition_cache_mapped_bytes", "Subset of resident bytes served by read-only memory mappings.", cache.MappedBytes)

	counter("climber_append_requests_total", "Answered /append requests.", m.appends.Load())
	counter("climber_append_series_total", "Series inside successful appends.", m.appendSeries.Load())
	counter("climber_flush_requests_total", "Answered /flush requests.", m.flushes.Load())
	counter("climber_reindex_requests_total", "Answered /reindex requests.", m.reindexes.Load())
	counter("climber_backup_requests_total", "Answered /backup requests.", m.backups.Load())
	counter("climber_ingest_appended_series_total", "Series acked by the ingestion pipeline.", ing.AppendedSeries)
	counter("climber_ingest_replayed_series_total", "WAL entries replayed into the delta at open.", ing.ReplayedSeries)
	counter("climber_compactions_total", "Completed delta-to-partition compactions.", ing.Compactions)
	counter("climber_compacted_series_total", "Series moved from the delta into partition files.", ing.CompactedSeries)
	counter("climber_compact_errors_total", "Failed background compaction attempts.", ing.CompactErrors)
	gauge("climber_wal_bytes", "Current write-ahead-log size in bytes.", ing.WALBytes)
	gauge("climber_delta_records", "Acked records resident in the in-memory delta index.", int64(ing.DeltaRecords))
	gauge("climber_delta_bytes", "Storage-equivalent bytes resident in the delta index.", ing.DeltaBytes)
}
