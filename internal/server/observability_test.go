package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"climber/internal/obs"
)

// findChild returns d's first direct child named name, or nil.
func findChild(d *obs.SpanData, name string) *obs.SpanData {
	if d == nil {
		return nil
	}
	for _, c := range d.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// TestExplainSearch checks the explain contract on /search: the response
// carries the planner's ranked plan under the "" key plus the query's
// span tree, and a request without the flag carries neither.
func TestExplainSearch(t *testing.T) {
	db, data := buildTestDB(t, 1200)
	h := New(db, Config{}).Handler()

	rec := postJSON(t, h, "/search", map[string]any{"query": data[42], "k": 10, "explain": true})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	ex := resp.Explain[""]
	if ex == nil {
		t.Fatalf("explain response missing the \"\" explanation: %v", resp.Explain)
	}
	if len(ex.Plan) == 0 || ex.Variant == "" {
		t.Fatalf("explanation has no ranked plan: %+v", ex)
	}
	executed := 0
	for _, st := range ex.Plan {
		if st.Executed {
			executed++
		}
	}
	if executed == 0 {
		t.Fatalf("no plan step marked executed: %+v", ex.Plan)
	}

	if resp.Trace == nil {
		t.Fatal("explain response missing the span tree")
	}
	if resp.Trace.Name != "search" {
		t.Fatalf("root span %q, want search", resp.Trace.Name)
	}
	plan := findChild(resp.Trace, "plan")
	scan := findChild(resp.Trace, "scan")
	if plan == nil || scan == nil {
		t.Fatalf("span tree missing plan/scan stages: %+v", resp.Trace.Children)
	}
	part := findChild(scan, "partition")
	if part == nil {
		t.Fatalf("scan stage has no partition span: %+v", scan.Children)
	}
	if _, ok := part.Attrs["partition"]; !ok {
		t.Fatalf("partition span lacks the partition attr: %+v", part.Attrs)
	}
	if _, ok := part.Attrs["bytes"]; !ok {
		t.Fatalf("partition span lacks the bytes attr: %+v", part.Attrs)
	}

	// Without the flag, neither the explanation nor the trace is attached.
	rec = postJSON(t, h, "/search", map[string]any{"query": data[42], "k": 10})
	var plain SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Explain != nil || plain.Trace != nil {
		t.Fatal("explanation attached without the explain flag")
	}
}

// zeroTimings strips every timing from a span tree in place, leaving the
// deterministic structure: names, attributes, labels, child order.
func zeroTimings(d *obs.SpanData) {
	if d == nil {
		return
	}
	d.StartNS, d.DurationNS = 0, 0
	for _, c := range d.Children {
		zeroTimings(c)
	}
}

// TestExplainBatchByteStable checks that a batch explain span tree is
// byte-stable across runs even though the batch executes its queries on
// concurrent workers: after zeroing timings, repeated identical requests
// serialize to identical bytes (the deterministic child ordering in
// obs.Span.Data is what's under test).
func TestExplainBatchByteStable(t *testing.T) {
	db, data := buildTestDB(t, 1200)
	h := New(db, Config{}).Handler()
	queries := [][]float64{data[3], data[77], data[402], data[555], data[808], data[1100]}

	var first []byte
	for run := 0; run < 3; run++ {
		rec := postJSON(t, h, "/search/batch", map[string]any{"queries": queries, "k": 9, "explain": true})
		if rec.Code != http.StatusOK {
			t.Fatalf("run %d: status %d: %s", run, rec.Code, rec.Body)
		}
		var resp BatchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Trace == nil {
			t.Fatal("batch explain response missing the span tree")
		}
		if got := len(resp.Trace.Children); got != len(queries) {
			t.Fatalf("batch trace has %d query spans, want %d", got, len(queries))
		}
		for i, q := range resp.Trace.Children {
			if q.Name != "query" || q.Attrs["query"] != int64(i) {
				t.Fatalf("query span %d out of order: name=%q attrs=%v", i, q.Name, q.Attrs)
			}
		}
		zeroTimings(resp.Trace)
		raw, err := json.Marshal(resp.Trace)
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			first = raw
			continue
		}
		if string(raw) != string(first) {
			t.Fatalf("explain trace not byte-stable across runs:\nrun 0: %s\nrun %d: %s", first, run, raw)
		}
	}
}

// TestSlowLogEndpoint checks that requests crossing the threshold land in
// /debug/slow with their trace id, and that the ring is capped.
func TestSlowLogEndpoint(t *testing.T) {
	db, data := buildTestDB(t, 1200)
	h := New(db, Config{SlowThreshold: time.Nanosecond, SlowLogSize: 4}).Handler()

	for i := 0; i < 6; i++ {
		rec := postJSON(t, h, "/search", map[string]any{"query": data[i], "k": 5})
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
	rec := getPath(t, h, "/debug/slow")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/slow status %d", rec.Code)
	}
	var out struct {
		Total   int64              `json:"total"`
		Entries []obs.SlowLogEntry `json:"entries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 6 {
		t.Fatalf("slow log total %d, want 6", out.Total)
	}
	if len(out.Entries) != 4 {
		t.Fatalf("ring holds %d entries, want capacity 4", len(out.Entries))
	}
	for _, e := range out.Entries {
		if e.Endpoint != "/search" || e.Status != http.StatusOK {
			t.Fatalf("unexpected slow entry: %+v", e)
		}
	}
}

// TestMetricsObservability checks the PR's metrics additions: the
// build-info gauge with granularity labels, the per-stage latency
// histograms (fed only by traced queries), and that the request latency
// histogram observes non-200 outcomes too.
func TestMetricsObservability(t *testing.T) {
	db, data := buildTestDB(t, 1200)
	h := New(db, Config{}).Handler()

	// One traced query feeds the stage histograms; one malformed request
	// must still be observed by the latency histogram.
	postJSON(t, h, "/search", map[string]any{"query": data[0], "k": 5, "explain": true})
	if rec := postJSON(t, h, "/search", map[string]any{"k": 5}); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed search: status %d", rec.Code)
	}

	body := getPath(t, h, "/metrics").Body.String()
	for _, want := range []string{
		`climber_build_info{version="`,
		`series_len="64"`,
		`climber_stage_latency_seconds_bucket{stage="plan"`,
		`climber_stage_latency_seconds_bucket{stage="scan"`,
		"climber_traced_queries_total 1",
		"climber_slow_log_entries_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Both requests — the 200 and the 400 — must be in the histogram count.
	if !strings.Contains(body, "climber_query_latency_seconds_count 2") {
		t.Errorf("latency histogram did not observe every outcome:\n%s",
			grepLines(body, "climber_query_latency_seconds"))
	}
}

// grepLines returns the lines of s containing substr, for error messages.
func grepLines(s, substr string) string {
	var out []string
	for _, ln := range strings.Split(s, "\n") {
		if strings.Contains(ln, substr) {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}
