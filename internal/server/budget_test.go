package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"climber"
)

// WithTinyPartitions shrinks the partition capacity so plans span many
// partitions — the shape budget tests need steps to truncate.
func WithTinyPartitions() []climber.Option {
	return []climber.Option{climber.WithCapacity(50)}
}

// A search carrying max_partitions must be answered with the budget
// enforced: at most that many partitions loaded, the response marked
// partial with steps_executed when the plan wanted more, and the
// climber_budget_exhausted_total counter incremented.
func TestSearchBudgetPartialMarker(t *testing.T) {
	// Tiny capacity → many partitions, so od-smallest plans several steps.
	db, data := buildTestDB(t, 1200, WithTinyPartitions()...)
	srv := New(db, Config{})
	h := srv.Handler()

	sawPartial := false
	for _, qid := range []int{0, 200, 400, 600, 800, 1000} {
		// Unbudgeted probe: how many partitions does the full plan load?
		rec := postJSON(t, h, "/search", SearchRequest{Query: data[qid], K: 300, Variant: "od-smallest"})
		if rec.Code != http.StatusOK {
			t.Fatalf("probe: status %d: %s", rec.Code, rec.Body)
		}
		var full SearchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &full); err != nil {
			t.Fatal(err)
		}
		if full.Partial {
			t.Fatalf("unbudgeted query marked partial: %+v", full.Stats)
		}

		rec = postJSON(t, h, "/search", SearchRequest{
			Query: data[qid], K: 300, Variant: "od-smallest", MaxPartitions: 1,
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("budgeted: status %d: %s", rec.Code, rec.Body)
		}
		var resp SearchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Stats.PartitionsScanned > 1 {
			t.Fatalf("max_partitions=1 but scanned %d partitions", resp.Stats.PartitionsScanned)
		}
		if len(resp.Results) == 0 {
			t.Fatal("budgeted query returned no results")
		}
		if full.Stats.PartitionsScanned > 1 {
			if !resp.Partial || resp.StepsExecuted != 1 {
				t.Fatalf("truncated answer not marked: partial=%v steps=%d (full plan loaded %d partitions)",
					resp.Partial, resp.StepsExecuted, full.Stats.PartitionsScanned)
			}
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Fatal("no query produced a multi-partition plan; fixture cannot exercise the budget")
	}

	// The budget-exhausted counter must have moved, on /stats and /metrics.
	var stats StatsResponse
	if err := json.Unmarshal(getPath(t, h, "/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Server.BudgetExhausted == 0 {
		t.Fatal("budget_exhausted counter still zero after partial answers")
	}
	body := getPath(t, h, "/metrics").Body.String()
	if !strings.Contains(body, "climber_budget_exhausted_total") {
		t.Fatal("climber_budget_exhausted_total missing from /metrics")
	}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "climber_budget_exhausted_total ") && strings.HasSuffix(line, " 0") {
			t.Fatalf("metrics report zero budget-exhausted queries: %q", line)
		}
	}
}

// time_budget_ms must be accepted on every search-shaped endpoint and a
// generous budget must change nothing about the answer.
func TestTimeBudgetAccepted(t *testing.T) {
	db, data := buildTestDB(t, 800)
	h := New(db, Config{}).Handler()

	rec := postJSON(t, h, "/search", SearchRequest{Query: data[1], K: 5, TimeBudgetMS: 60_000})
	if rec.Code != http.StatusOK {
		t.Fatalf("search with time budget: status %d: %s", rec.Code, rec.Body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Partial {
		t.Fatalf("generous time budget produced a partial answer: %+v", resp.Stats)
	}

	rec = postJSON(t, h, "/search/prefix", SearchRequest{Query: data[1][:32], K: 5, TimeBudgetMS: 60_000})
	if rec.Code != http.StatusOK {
		t.Fatalf("prefix with time budget: status %d: %s", rec.Code, rec.Body)
	}
	rec = postJSON(t, h, "/search/batch", BatchRequest{Queries: [][]float64{data[1], data[2]}, K: 5, TimeBudgetMS: 60_000})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch with time budget: status %d: %s", rec.Code, rec.Body)
	}

	// Negative and absurdly large budgets are rejected at decode time (the
	// cap keeps derived-deadline arithmetic away from duration overflow).
	rec = postJSON(t, h, "/search", SearchRequest{Query: data[1], K: 5, TimeBudgetMS: -1})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("negative time budget: status %d, want 400", rec.Code)
	}
	rec = postJSON(t, h, "/search", SearchRequest{Query: data[1], K: 5, TimeBudgetMS: 2_305_843_009_213})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("overflow-sized time budget: status %d, want 400", rec.Code)
	}
}

// A batch in which queries are budget-truncated reports the partial marker
// at the batch level.
func TestBatchBudgetPartialMarker(t *testing.T) {
	db, data := buildTestDB(t, 1200, WithTinyPartitions()...)
	h := New(db, Config{}).Handler()
	queries := [][]float64{data[0], data[200], data[400], data[600]}

	rec := postJSON(t, h, "/search/batch", BatchRequest{Queries: queries, K: 300, Variant: "od-smallest"})
	if rec.Code != http.StatusOK {
		t.Fatalf("probe: status %d: %s", rec.Code, rec.Body)
	}
	var probe BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &probe); err != nil {
		t.Fatal(err)
	}
	if probe.StepsExecuted <= len(queries) {
		t.Fatalf("every probe plan was single-step (%d steps for %d queries); fixture cannot exercise the budget",
			probe.StepsExecuted, len(queries))
	}

	rec = postJSON(t, h, "/search/batch", BatchRequest{
		Queries: queries, K: 300, Variant: "od-smallest", MaxPartitions: 1,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("budgeted batch: status %d: %s", rec.Code, rec.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(queries) {
		t.Fatalf("batch returned %d result sets, want %d", len(resp.Results), len(queries))
	}
	if !resp.Partial || resp.StepsExecuted == 0 {
		t.Fatalf("budget-truncated batch not marked: partial=%v steps=%d", resp.Partial, resp.StepsExecuted)
	}
}
