// Package server exposes an opened climber.DB as a concurrent HTTP JSON
// query service — the serving layer the paper's production framing assumes
// (pivot-based search as a service-side component, judged under sustained
// concurrent workloads).
//
// Endpoints:
//
//	POST /search        one kNN query   {"query": [...], "k": 10, ...}
//	POST /search/batch  many queries    {"queries": [[...], ...], "k": 10, ...}
//	POST /search/prefix one query shorter than the indexed length
//	POST /append        ingest series   {"series": [[...], ...]}
//	POST /flush         force compaction of acked writes into partitions
//	POST /reindex       rebuild the index online; queries keep serving
//	POST /backup        hard-link a consistent snapshot {"dir": "name"}
//	GET  /info          database shape (series length, groups, partitions)
//	GET  /stats         server + cache + ingestion counters, JSON
//	GET  /healthz       liveness probe
//	GET  /metrics       Prometheus text exposition
//
// The request/response types and the serving primitives (admission limiter,
// latency histogram) live in internal/api, shared with the shard router
// (internal/shard) that scatter-gathers over several of these servers.
//
// Admission control bounds the number of in-flight queries AND writes: a
// request beyond MaxInFlight waits for a slot up to QueueTimeout and is
// answered 429 when none frees up. The request context is threaded through
// the whole core search path, so a client that disconnects mid-query stops
// the partition scans it triggered instead of burning disk and CPU to
// compute an answer nobody will read. An append whose response was never
// read is still durable — once its WAL fsync starts, the write lands.
//
// Anytime queries: a search request carrying time_budget_ms and/or
// max_partitions runs under the core engine's budget contract — the query
// stops at a plan-step boundary when the budget is spent and answers 200
// with its best partial result, marked by the partial and steps_executed
// response fields (and counted by climber_budget_exhausted_total). A time
// budget additionally arms a hard per-request deadline at a small multiple
// of the budget, so a budgeted request can never hold its admission slot
// unboundedly.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"climber"
	"climber/internal/api"
	"climber/internal/obs"
)

// StatusClientClosedRequest is the non-standard status (nginx's 499)
// reported when the client disconnected before its answer was ready. The
// client never sees it; it keeps access logs and metrics honest.
const StatusClientClosedRequest = api.StatusClientClosedRequest

// Config tunes the service. The zero value is usable: every field falls
// back to the documented default.
type Config struct {
	// MaxInFlight bounds concurrently executing queries; further requests
	// queue. A batch request holds one slot per internal query worker (at
	// least one, opportunistically more when slots are idle), so the bound
	// covers batch fan-out too. Default: 4 x GOMAXPROCS.
	MaxInFlight int
	// QueueTimeout is how long an over-limit request may wait for a slot
	// before it is answered 429. Default: 2s.
	QueueTimeout time.Duration
	// MaxK caps the per-request answer size. Default: 10000.
	MaxK int
	// MaxBatch caps the query count of one batch request. Default: 256.
	MaxBatch int
	// MaxAppend caps the series count of one append request. Default: 1024.
	MaxAppend int
	// MaxBodyBytes caps a request body. Default: 32 MB.
	MaxBodyBytes int64
	// BodyReadTimeout bounds how long reading one request body may take.
	// The body is read while holding an admission slot (parsing a body is
	// itself work an overloaded server must bound), so without a deadline
	// a slow-trickling client could pin slots indefinitely. Default: 15s.
	BodyReadTimeout time.Duration
	// SlowLogSize bounds the slow-query ring buffer (GET /debug/slow);
	// when full, the oldest entry is evicted. Default: 128.
	SlowLogSize int
	// SlowThreshold is the duration at or above which a finished request
	// is recorded in the slow-query log and emitted as a structured log
	// line. Default: 500ms; negative disables threshold capture.
	SlowThreshold time.Duration
	// SlowSample in [0, 1] is the probability an arbitrary query is
	// head-sampled: traced end to end and recorded in the slow-query log
	// even when fast, so the log also shows what normal looks like and the
	// per-stage histograms fill without explain traffic. Default: 0.
	SlowSample float64
	// Logger receives the slow-query lines. Default: slog.Default().
	Logger *slog.Logger
	// BackupRoot is the directory under which POST /backup creates its
	// snapshots. Empty disables the endpoint (403): backups write to the
	// server's filesystem, so the operator must opt in to a location.
	BackupRoot string
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.MaxK <= 0 {
		c.MaxK = 10000
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxAppend <= 0 {
		c.MaxAppend = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.BodyReadTimeout <= 0 {
		c.BodyReadTimeout = 15 * time.Second
	}
	if c.SlowLogSize <= 0 {
		c.SlowLogSize = 128
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = 500 * time.Millisecond
	}
	if c.SlowThreshold < 0 {
		c.SlowThreshold = 0 // disabled
	}
	if c.SlowSample < 0 {
		c.SlowSample = 0
	}
	if c.SlowSample > 1 {
		c.SlowSample = 1
	}
	return c
}

// Server answers CLIMBER queries over HTTP on behalf of one DB. Create it
// with New and mount Handler on an http.Server.
type Server struct {
	db        *climber.DB
	cfg       Config
	seriesLen int
	minPrefix int // shortest admissible /search/prefix query (PAA segments)
	lim       *api.Limiter
	m         metrics
	started   time.Time
	slow      *obs.SlowLog
	buildInfo string // rendered label set of the climber_build_info gauge

	// Test seams: hookAdmitted runs after a query request is admitted
	// (holding its slot) and before the search starts; hookSearchDone
	// receives the search error verbatim, before it is mapped to a status.
	hookAdmitted   func(ctx context.Context)
	hookSearchDone func(err error)
}

// New wraps db in a Server. The db must stay open for the server's
// lifetime; the caller closes it after shutting the HTTP server down.
func New(db *climber.DB, cfg Config) *Server {
	s := &Server{
		db:        db,
		cfg:       cfg.withDefaults(),
		seriesLen: db.Info().SeriesLen,
		minPrefix: db.Index().Skeleton().Cfg.Segments,
		started:   time.Now(),
	}
	s.lim = api.NewLimiter(s.cfg.MaxInFlight, s.cfg.QueueTimeout, api.LimiterCounters{
		Queued:   &s.m.queued,
		Rejected: &s.m.rejected,
		Canceled: &s.m.canceled,
		InFlight: &s.m.inflight,
	})
	s.m.latency = api.NewHistogram()
	s.m.appendLat = api.NewHistogram()
	s.m.stageLat = make(map[string]*api.Histogram, len(stageNames))
	for _, st := range stageNames {
		s.m.stageLat[st] = api.NewHistogram()
	}
	s.slow = obs.NewSlowLog(s.cfg.SlowLogSize, s.cfg.SlowThreshold, s.cfg.SlowSample, s.cfg.Logger)
	cfg0 := db.Index().Skeleton().Cfg
	s.buildInfo = fmt.Sprintf("version=%q,series_len=\"%d\",segments=\"%d\",prefix_len=\"%d\"",
		climber.Version, s.seriesLen, cfg0.Segments, cfg0.PrefixLen)
	return s
}

// SlowLog exposes the server's slow-query ring so cmd/climber-serve can
// mount it on the -debug-addr diagnostics listener too.
func (s *Server) SlowLog() *obs.SlowLog { return s.slow }

// Handler returns the service's routing handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /search", s.instrument("/search", &s.m.searches, s.m.latency, s.handleSearch))
	mux.Handle("POST /search/batch", s.instrument("/search/batch", &s.m.batches, s.m.latency, s.handleBatch))
	mux.Handle("POST /search/prefix", s.instrument("/search/prefix", &s.m.prefixes, s.m.latency, s.handlePrefix))
	mux.Handle("POST /append", s.instrument("/append", &s.m.appends, s.m.appendLat, s.handleAppend))
	mux.HandleFunc("POST /flush", s.handleFlush)
	mux.HandleFunc("POST /reindex", s.handleReindex)
	mux.HandleFunc("POST /backup", s.handleBackup)
	mux.HandleFunc("GET /info", s.handleInfo)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /debug/slow", s.slow.Handler())
	return mux
}

// queryObs carries one request's observability state between the
// instrument wrapper and its handler: the wrapper decides sampling and
// parses the propagated traceparent header before the handler runs, the
// handler fills in what the query produced, and the wrapper turns the
// result into histogram observations and a slow-log entry.
type queryObs struct {
	// sampled arms tracing without an explain flag: set by an upstream
	// traceparent sampled bit or by the slow log's head-sampling.
	sampled bool
	// traceID is the propagated trace id ("" = generate fresh).
	traceID string
	// stats, trace, stages are filled by the handler after the query.
	stats  any
	trace  *obs.SpanData
	stages map[string]int64
}

// qobsKey is the context key carrying the request's *queryObs.
type qobsKey struct{}

// qobsFrom returns the request's observability state, or nil outside an
// instrumented handler.
func qobsFrom(ctx context.Context) *queryObs {
	qo, _ := ctx.Value(qobsKey{}).(*queryObs)
	return qo
}

// statusWriter captures the response status code for the slow-query log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// instrument wraps one query-path handler with the unified observation
// pipeline: the latency histogram sees every outcome — 400s and 429s
// included, where previously the error paths skipped the histogram and
// bad-request storms were invisible in the percentiles — the endpoint
// counter increments exactly once per request, traced queries feed the
// per-stage histograms, and every finished request is offered to the
// slow-query log.
func (s *Server) instrument(endpoint string, count *atomic.Int64, lat *api.Histogram, h func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		qo := &queryObs{}
		if id, sampled, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceHeader)); ok {
			qo.traceID, qo.sampled = id, sampled
		}
		if !qo.sampled {
			qo.sampled = s.slow.Sample()
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r.WithContext(context.WithValue(r.Context(), qobsKey{}, qo)))
		d := time.Since(start)
		lat.Observe(d)
		count.Add(1)
		for stage, ns := range qo.stages {
			if hist := s.m.stageLat[stage]; hist != nil {
				hist.Observe(time.Duration(ns))
			}
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.slow.Note(endpoint, d, qo.sampled, qo.traceID, status, qo.stats, qo.trace)
	})
}

// traceFor starts a trace for the request when it asked for explain or
// the sampling decision armed one, adopting a propagated trace id so
// the router's logs and this server's agree on identity. Returns the
// (possibly traced) context and the trace — nil when tracing is off,
// which every downstream span call tolerates.
func (s *Server) traceFor(ctx context.Context, name string, explain bool) (context.Context, *obs.Trace) {
	qo := qobsFrom(ctx)
	if qo == nil || (!explain && !qo.sampled) {
		return ctx, nil
	}
	tr := obs.NewTrace(name, qo.traceID)
	qo.traceID = tr.ID()
	s.m.traced.Add(1)
	return obs.ContextWithSpan(ctx, tr.Root()), tr
}

// finishTrace ends the trace, stores the query's wire stats and span
// tree into the request's observation state, and returns the span tree
// for the explain response (nil when untraced).
func finishTrace(ctx context.Context, tr *obs.Trace, stats any) *obs.SpanData {
	qo := qobsFrom(ctx)
	if qo != nil {
		qo.stats = stats
	}
	if tr == nil {
		return nil
	}
	tr.Root().End()
	data := tr.Root().Data()
	if qo != nil {
		qo.trace = data
		qo.stages = tr.Root().StageNanos()
	}
	return data
}

// admit acquires an in-flight slot, waiting up to QueueTimeout. It returns
// the release function, or the HTTP status that denied admission.
func (s *Server) admit(ctx context.Context) (release func(), status int, err error) {
	return s.lim.Admit(ctx)
}

// readBody slurps the request body under the configured size cap and read
// deadline via the shared api.ReadBody, counting failures as bad requests.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, status, err := api.ReadBody(w, r, s.cfg.MaxBodyBytes, s.cfg.BodyReadTimeout)
	if err != nil {
		s.m.badRequests.Add(1)
		api.WriteError(w, status, err)
		return nil, false
	}
	return body, true
}

// finishQuery maps a search error to its response status, maintaining the
// outcome counters. It reports whether the query succeeded.
func (s *Server) finishQuery(w http.ResponseWriter, err error) bool {
	if s.hookSearchDone != nil {
		s.hookSearchDone(err)
	}
	switch {
	case err == nil:
		return true
	case errors.Is(err, context.Canceled):
		s.m.canceled.Add(1)
		api.WriteError(w, StatusClientClosedRequest, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.m.errors.Add(1)
		api.WriteError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, climber.ErrClosed):
		s.m.errors.Add(1)
		api.WriteError(w, http.StatusServiceUnavailable, err)
	default:
		s.m.errors.Add(1)
		api.WriteError(w, http.StatusInternalServerError, err)
	}
	return false
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	// Admission comes first: reading and decoding a body is itself heap-
	// and CPU-expensive work an overloaded server must not do unbounded.
	release, status, err := s.admit(r.Context())
	if err != nil {
		api.WriteError(w, status, err)
		return
	}
	defer release()
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, err := api.DecodeSearchRequest(body, s.seriesLen, s.cfg.MaxK)
	if err != nil {
		s.m.badRequests.Add(1)
		api.WriteError(w, http.StatusBadRequest, err)
		return
	}
	if s.hookAdmitted != nil {
		s.hookAdmitted(r.Context())
	}
	tctx, tr := s.traceFor(r.Context(), "search", req.Explain)
	ctx, cancel := s.budgetContext(tctx, req.TimeBudgetMS)
	defer cancel()

	opts := api.SearchOptions(req.Variant, req.MaxPartitions, req.TimeBudgetMS)
	var (
		res   []climber.Result
		stats climber.Stats
		expl  *climber.Explanation
	)
	if req.Explain {
		res, stats, expl, err = s.db.SearchExplainContext(ctx, req.Query, req.K, opts...)
	} else {
		res, stats, err = s.db.SearchWithStatsContext(ctx, req.Query, req.K, opts...)
	}
	trace := finishTrace(r.Context(), tr, stats)
	if !s.finishQuery(w, err) {
		return
	}
	if stats.Partial {
		s.m.budgetExh.Add(1)
	}
	resp := SearchResponse{
		Results: toWire(res), Stats: stats,
		Partial: stats.Partial, StepsExecuted: stats.StepsExecuted,
	}
	if req.Explain {
		resp.Explain = map[string]*api.ExplainData{"": api.ExplainFromCore(expl)}
		resp.Trace = trace
	}
	api.WriteJSON(w, http.StatusOK, resp)
}

// budgetContext derives the per-request deadline a time budget implies: the
// soft budget stops the engine at a step boundary with a partial answer,
// and this hard backstop — a small multiple, leaving room for one step's
// overshoot plus encode — guarantees even a wedged query cannot hold its
// admission slot much past its promise. budgetMS <= 0 leaves ctx untouched.
func (s *Server) budgetContext(ctx context.Context, budgetMS int) (context.Context, context.CancelFunc) {
	if budgetMS <= 0 {
		return ctx, func() {}
	}
	hard := 4*time.Duration(budgetMS)*time.Millisecond + time.Second
	return context.WithTimeout(ctx, hard)
}

// handlePrefix answers a query shorter than the indexed series length —
// candidates are ranked over the first len(query) readings of each record
// (see climber.DB.SearchPrefix).
func (s *Server) handlePrefix(w http.ResponseWriter, r *http.Request) {
	release, status, err := s.admit(r.Context())
	if err != nil {
		api.WriteError(w, status, err)
		return
	}
	defer release()
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, err := api.DecodePrefixRequest(body, s.minPrefix, s.seriesLen, s.cfg.MaxK)
	if err != nil {
		s.m.badRequests.Add(1)
		api.WriteError(w, http.StatusBadRequest, err)
		return
	}
	if s.hookAdmitted != nil {
		s.hookAdmitted(r.Context())
	}
	tctx, tr := s.traceFor(r.Context(), "prefix", req.Explain)
	ctx, cancel := s.budgetContext(tctx, req.TimeBudgetMS)
	defer cancel()

	opts := api.SearchOptions(req.Variant, req.MaxPartitions, req.TimeBudgetMS)
	var (
		res   []climber.Result
		stats climber.Stats
		expl  *climber.Explanation
	)
	if req.Explain {
		res, stats, expl, err = s.db.SearchPrefixExplainContext(ctx, req.Query, req.K, opts...)
	} else {
		res, stats, err = s.db.SearchPrefixWithStatsContext(ctx, req.Query, req.K, opts...)
	}
	trace := finishTrace(r.Context(), tr, stats)
	if !s.finishQuery(w, err) {
		return
	}
	if stats.Partial {
		s.m.budgetExh.Add(1)
	}
	resp := SearchResponse{
		Results: toWire(res), Stats: stats,
		Partial: stats.Partial, StepsExecuted: stats.StepsExecuted,
	}
	if req.Explain {
		resp.Explain = map[string]*api.ExplainData{"": api.ExplainFromCore(expl)}
		resp.Trace = trace
	}
	api.WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	release, status, err := s.admit(r.Context())
	if err != nil {
		api.WriteError(w, status, err)
		return
	}
	defer release()
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, err := api.DecodeBatchRequest(body, s.seriesLen, s.cfg.MaxK, s.cfg.MaxBatch)
	if err != nil {
		s.m.badRequests.Add(1)
		api.WriteError(w, http.StatusBadRequest, err)
		return
	}
	if s.hookAdmitted != nil {
		s.hookAdmitted(r.Context())
	}

	// The request's own slot funds one batch worker; widen only into slots
	// that are idle right now so batches never execute more concurrent
	// queries than MaxInFlight allows across the whole server.
	extra, releaseExtra := s.lim.AcquireExtra(min(len(req.Queries), s.cfg.MaxInFlight) - 1)
	defer releaseExtra()
	tctx, tr := s.traceFor(r.Context(), "batch", req.Explain)
	ctx, cancel := s.budgetContext(tctx, req.TimeBudgetMS)
	defer cancel()

	batch, stats, err := s.db.SearchBatchWithStatsContextWorkers(ctx, req.Queries, req.K, 1+extra,
		api.SearchOptions(req.Variant, req.MaxPartitions, req.TimeBudgetMS)...)
	sum := batchSummary{Queries: len(req.Queries)}
	for _, st := range stats {
		sum.StepsExecuted += st.StepsExecuted
		if st.Partial {
			sum.Truncated++
		}
	}
	trace := finishTrace(r.Context(), tr, sum)
	if !s.finishQuery(w, err) {
		return
	}
	s.m.batchQueries.Add(int64(len(req.Queries)))
	out := make([][]Result, len(batch))
	for i, res := range batch {
		out[i] = toWire(res)
	}
	resp := BatchResponse{
		Results:       out,
		StepsExecuted: sum.StepsExecuted,
		Partial:       sum.Truncated > 0,
	}
	// The counter is per query (matching /search), not per batch request:
	// a 50-query batch with 40 truncated answers counts 40.
	s.m.budgetExh.Add(int64(sum.Truncated))
	if req.Explain {
		resp.Trace = trace
	}
	api.WriteJSON(w, http.StatusOK, resp)
}

// batchSummary is the slow-query-log stats shape for a batch request: a
// compact roll-up, not a full stats fold — per-query detail lives under
// the trace's "query" spans.
type batchSummary struct {
	Queries       int `json:"queries"`
	StepsExecuted int `json:"steps_executed"`
	Truncated     int `json:"truncated"`
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	// Writes share the query admission budget: ingesting a batch of series
	// costs routing CPU, a WAL fsync, and delta inserts, so an overloaded
	// server queues and sheds appends exactly as it does searches.
	release, status, err := s.admit(r.Context())
	if err != nil {
		api.WriteError(w, status, err)
		return
	}
	defer release()
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, err := api.DecodeAppendRequest(body, s.seriesLen, s.cfg.MaxAppend)
	if err != nil {
		s.m.badRequests.Add(1)
		api.WriteError(w, http.StatusBadRequest, err)
		return
	}
	if s.hookAdmitted != nil {
		s.hookAdmitted(r.Context())
	}

	ids, err := s.db.AppendContext(r.Context(), req.Series)
	if !s.finishQuery(w, err) {
		return
	}
	s.m.appendSeries.Add(int64(len(req.Series)))
	api.WriteJSON(w, http.StatusOK, AppendResponse{IDs: ids})
}

// handleFlush forces a synchronous compaction: every previously acked
// append is in its partition file when the 200 arrives. Operators use it
// before snapshotting the database directory; tests use it to exercise the
// compaction path deterministically.
func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	release, status, err := s.admit(r.Context())
	if err != nil {
		api.WriteError(w, status, err)
		return
	}
	defer release()
	s.m.flushes.Add(1)
	if !s.finishQuery(w, s.db.FlushContext(r.Context())) {
		return
	}
	api.WriteJSON(w, http.StatusOK, map[string]string{"status": "flushed"})
}

// handleReindex runs an online reindex synchronously: when the 200 arrives,
// the new generation is durable and serving. The rebuild does not hold an
// admission slot — it is a minutes-scale background job and DB.Reindex
// already rejects a second concurrent attempt — so queries keep flowing at
// full concurrency while it runs. 409 means a reindex is already running.
func (s *Server) handleReindex(w http.ResponseWriter, r *http.Request) {
	s.m.reindexes.Add(1)
	err := s.db.Reindex(r.Context())
	if errors.Is(err, climber.ErrReindexInProgress) {
		api.WriteError(w, http.StatusConflict, err)
		return
	}
	if !s.finishQuery(w, err) {
		return
	}
	api.WriteJSON(w, http.StatusOK, map[string]any{
		"status":     "reindexed",
		"generation": s.db.Info().Generation,
	})
}

// handleBackup snapshots the database into a fresh directory under the
// configured BackupRoot. The client names only the final path element; any
// separator or traversal in the name is a 400, and an unset BackupRoot is a
// 403 so a default deployment cannot be asked to write arbitrary trees.
func (s *Server) handleBackup(w http.ResponseWriter, r *http.Request) {
	s.m.backups.Add(1)
	if s.cfg.BackupRoot == "" {
		api.WriteError(w, http.StatusForbidden,
			errors.New("backups disabled: server started without a backup root"))
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		Dir string `json:"dir"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		s.m.badRequests.Add(1)
		api.WriteError(w, http.StatusBadRequest, fmt.Errorf("invalid backup request: %w", err))
		return
	}
	if req.Dir == "" || req.Dir != filepath.Base(req.Dir) || req.Dir == ".." || req.Dir == "." {
		s.m.badRequests.Add(1)
		api.WriteError(w, http.StatusBadRequest,
			fmt.Errorf("backup dir must be a bare directory name, got %q", req.Dir))
		return
	}
	dest := filepath.Join(s.cfg.BackupRoot, req.Dir)
	err := s.db.Backup(r.Context(), dest)
	if errors.Is(err, climber.ErrReindexInProgress) {
		api.WriteError(w, http.StatusConflict, err)
		return
	}
	if !s.finishQuery(w, err) {
		return
	}
	api.WriteJSON(w, http.StatusOK, map[string]string{"status": "backed_up", "dir": dest})
}

func toWire(res []climber.Result) []Result {
	out := make([]Result, len(res))
	for i, r := range res {
		out[i] = Result{ID: r.ID, Dist: r.Dist}
	}
	return out
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	info := s.db.Info()
	api.WriteJSON(w, http.StatusOK, InfoResponse{
		SeriesLen:     info.SeriesLen,
		NumRecords:    info.NumRecords,
		NumGroups:     info.NumGroups,
		NumPartitions: info.NumPartitions,
		SkeletonBytes: info.SkeletonBytes,
		Generation:    info.Generation,
	})
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	Server ServerStats         `json:"server"`
	Cache  climber.CacheStats  `json:"cache"`
	Ingest climber.IngestStats `json:"ingest"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	api.WriteJSON(w, http.StatusOK, StatsResponse{
		Server: s.m.snapshot(time.Since(s.started)),
		Cache:  s.db.CacheStats(),
		Ingest: s.db.IngestStats(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	api.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	s.m.renderProm(&b, s.buildInfo, s.slow.Total(), s.db.CacheStats(), s.db.IngestStats())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = io.WriteString(w, b.String())
}
