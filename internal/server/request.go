package server

import "climber/internal/api"

// The request/response wire types are shared with the shard router through
// internal/api — a router can front any set of climber-serve processes
// because both layers speak exactly the same dialect. The aliases keep this
// package's historical names working for its users and tests.

// SearchRequest is the body of POST /search and POST /search/prefix.
type SearchRequest = api.SearchRequest

// BatchRequest is the body of POST /search/batch.
type BatchRequest = api.BatchRequest

// AppendRequest is the body of POST /append.
type AppendRequest = api.AppendRequest

// AppendResponse is the body of a successful POST /append.
type AppendResponse = api.AppendResponse

// Result is one neighbour in a response.
type Result = api.Result

// SearchResponse is the body of a successful POST /search or /search/prefix.
type SearchResponse = api.SearchResponse

// BatchResponse is the body of a successful POST /search/batch.
type BatchResponse = api.BatchResponse

// InfoResponse is the body of GET /info.
type InfoResponse = api.InfoResponse

// DefaultK is the answer-set size used when a request omits k.
const DefaultK = api.DefaultK
