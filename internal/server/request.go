package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"climber"
)

// SearchRequest is the body of POST /search.
type SearchRequest struct {
	// Query is the full-length query series; its length must equal the
	// indexed series length.
	Query []float64 `json:"query"`
	// K is the answer-set size; omitted or zero means DefaultK.
	K int `json:"k,omitempty"`
	// Variant selects the query algorithm: "knn", "adaptive-2x",
	// "adaptive-4x" (default) or "od-smallest".
	Variant string `json:"variant,omitempty"`
	// MaxPartitions, when positive, overrides the adaptive variants'
	// partition cap.
	MaxPartitions int `json:"max_partitions,omitempty"`
}

// BatchRequest is the body of POST /search/batch. The per-request options
// apply to every query of the batch.
type BatchRequest struct {
	Queries       [][]float64 `json:"queries"`
	K             int         `json:"k,omitempty"`
	Variant       string      `json:"variant,omitempty"`
	MaxPartitions int         `json:"max_partitions,omitempty"`
}

// AppendRequest is the body of POST /append.
type AppendRequest struct {
	// Series are the data series to ingest; each must have the indexed
	// length.
	Series [][]float64 `json:"series"`
}

// AppendResponse is the body of a successful POST /append. When it arrives
// the series are durable (WAL-fsynced) and visible to /search.
type AppendResponse struct {
	// IDs are the assigned record IDs, aligned positionally with the
	// request's Series.
	IDs []int `json:"ids"`
}

// Result is one neighbour in a response.
type Result struct {
	ID   int     `json:"id"`
	Dist float64 `json:"dist"`
}

// SearchResponse is the body of a successful POST /search.
type SearchResponse struct {
	Results []Result      `json:"results"`
	Stats   climber.Stats `json:"stats"`
}

// BatchResponse is the body of a successful POST /search/batch; Results
// aligns positionally with the request's Queries.
type BatchResponse struct {
	Results [][]Result `json:"results"`
}

// DefaultK is the answer-set size used when a request omits k.
const DefaultK = 10

// parseVariant maps the wire name of a query algorithm to its Variant.
func parseVariant(s string) (climber.Variant, error) {
	switch s {
	case "", "adaptive-4x":
		return climber.Adaptive4X, nil
	case "knn":
		return climber.KNN, nil
	case "adaptive-2x":
		return climber.Adaptive2X, nil
	case "od-smallest":
		return climber.ODSmallest, nil
	default:
		return 0, fmt.Errorf("unknown variant %q (knn, adaptive-2x, adaptive-4x, od-smallest)", s)
	}
}

// decodeJSON unmarshals one JSON value from data, rejecting trailing
// garbage. encoding/json rejects NaN and infinite numbers on its own, so a
// decoded query is always finite.
func decodeJSON(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON body")
	}
	return nil
}

// checkQuery validates one query series against the index shape.
func checkQuery(q []float64, seriesLen int) error {
	if len(q) == 0 {
		return fmt.Errorf("query is empty")
	}
	if len(q) != seriesLen {
		return fmt.Errorf("query length %d, index expects %d", len(q), seriesLen)
	}
	for _, v := range q {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("query contains a non-finite value")
		}
	}
	return nil
}

// checkOptions validates and normalises the shared request options in
// place: k defaults to DefaultK and is bounded by maxK, the variant must
// parse, and max_partitions must not be negative.
func checkOptions(k *int, variant string, maxPartitions, maxK int) error {
	if *k == 0 {
		*k = DefaultK
	}
	if *k < 0 {
		return fmt.Errorf("k must be positive, got %d", *k)
	}
	if *k > maxK {
		return fmt.Errorf("k %d exceeds the server limit %d", *k, maxK)
	}
	if _, err := parseVariant(variant); err != nil {
		return err
	}
	if maxPartitions < 0 {
		return fmt.Errorf("max_partitions must not be negative, got %d", maxPartitions)
	}
	return nil
}

// decodeSearchRequest parses and validates a POST /search body. On success
// the request is well-formed: the query is finite with the indexed length,
// 1 <= k <= maxK, and the variant parses.
func decodeSearchRequest(data []byte, seriesLen, maxK int) (*SearchRequest, error) {
	var req SearchRequest
	if err := decodeJSON(data, &req); err != nil {
		return nil, err
	}
	if err := checkOptions(&req.K, req.Variant, req.MaxPartitions, maxK); err != nil {
		return nil, err
	}
	if err := checkQuery(req.Query, seriesLen); err != nil {
		return nil, err
	}
	return &req, nil
}

// decodeBatchRequest parses and validates a POST /search/batch body with
// the same guarantees as decodeSearchRequest for every query, plus
// 1 <= len(queries) <= maxBatch.
func decodeBatchRequest(data []byte, seriesLen, maxK, maxBatch int) (*BatchRequest, error) {
	var req BatchRequest
	if err := decodeJSON(data, &req); err != nil {
		return nil, err
	}
	if err := checkOptions(&req.K, req.Variant, req.MaxPartitions, maxK); err != nil {
		return nil, err
	}
	if len(req.Queries) == 0 {
		return nil, fmt.Errorf("queries is empty")
	}
	if len(req.Queries) > maxBatch {
		return nil, fmt.Errorf("batch of %d queries exceeds the server limit %d", len(req.Queries), maxBatch)
	}
	for i, q := range req.Queries {
		if err := checkQuery(q, seriesLen); err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
	}
	return &req, nil
}

// decodeAppendRequest parses and validates a POST /append body: every
// series is finite with the indexed length, and 1 <= len(series) <=
// maxAppend.
func decodeAppendRequest(data []byte, seriesLen, maxAppend int) (*AppendRequest, error) {
	var req AppendRequest
	if err := decodeJSON(data, &req); err != nil {
		return nil, err
	}
	if len(req.Series) == 0 {
		return nil, fmt.Errorf("series is empty")
	}
	if len(req.Series) > maxAppend {
		return nil, fmt.Errorf("append of %d series exceeds the server limit %d", len(req.Series), maxAppend)
	}
	for i, s := range req.Series {
		if err := checkQuery(s, seriesLen); err != nil {
			return nil, fmt.Errorf("series %d: %w", i, err)
		}
	}
	return &req, nil
}

// searchOpts converts validated request options to climber search options.
func searchOpts(variant string, maxPartitions int) []climber.SearchOption {
	v, _ := parseVariant(variant) // validated during decode
	opts := []climber.SearchOption{climber.WithVariant(v)}
	if maxPartitions > 0 {
		opts = append(opts, climber.WithMaxPartitions(maxPartitions))
	}
	return opts
}
