package sax

import (
	"math"
	"math/rand/v2"
	"testing"

	"climber/internal/paa"
	"climber/internal/series"
)

// The paper's Figure 1(a): with w = 4, c = 8 (3 bits), the example series'
// PAA means fall in stripes 000, 010, 101, 111.
func TestWordFigure1SAX(t *testing.T) {
	// PAA mean values chosen inside the target stripes for c = 8:
	// 000: below -1.1503, 010: [-0.6745, -0.3186), 101: [0.3186, 0.6745),
	// 111: above 1.1503.
	paaSig := []float64{-1.5, -0.4, 0.45, 1.5}
	w := NewWordUniform(paaSig, 3)
	want := []uint16{0, 2, 5, 7} // binary 000, 010, 101, 111
	for i := range want {
		if w.Symbols[i] != want[i] {
			t.Fatalf("segment %d symbol = %03b, want %03b", i, w.Symbols[i], want[i])
		}
	}
	if got := w.String(); got != "[000, 010, 101, 111]" {
		t.Fatalf("String = %q", got)
	}
}

// The paper's Figure 1(b): iSAX with mixed cardinalities [00, 010, 10, 1].
func TestWordFigure1ISAX(t *testing.T) {
	paaSig := []float64{-1.5, -0.4, 0.45, 1.5}
	w := NewWordFromPAA(paaSig, []uint8{2, 3, 2, 1})
	if got := w.String(); got != "[00, 010, 10, 1]" {
		t.Fatalf("String = %q, want [00, 010, 10, 1]", got)
	}
}

// iSAX prefix property: the b'-bit symbol is the high prefix of the b-bit
// symbol for the same value.
func TestSymbolPrefixProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 2))
	for trial := 0; trial < 500; trial++ {
		v := rng.NormFloat64() * 1.5
		hi := 2 + rng.IntN(6)
		lo := 1 + rng.IntN(hi-1)
		sHi := Symbol(v, hi)
		sLo := Symbol(v, lo)
		if sHi>>(hi-lo) != sLo {
			t.Fatalf("prefix property violated: value %g, %d bits -> %b, %d bits -> %b",
				v, hi, sHi, lo, sLo)
		}
	}
}

func TestSymbolAtAndCovers(t *testing.T) {
	paaSig := []float64{-1.5, -0.4, 0.45, 1.5}
	fine := NewWordUniform(paaSig, 3)
	coarse := NewWordUniform(paaSig, 1)
	for i := range paaSig {
		if fine.SymbolAt(i, 1) != coarse.Symbols[i] {
			t.Fatalf("SymbolAt(%d, 1) = %d, want %d", i, fine.SymbolAt(i, 1), coarse.Symbols[i])
		}
	}
	if !coarse.Covers(fine) {
		t.Fatal("coarse word should cover its own refinement")
	}
	if fine.Covers(coarse) {
		t.Fatal("fine word cannot cover a coarser word")
	}
	other := NewWordUniform([]float64{1.5, -0.4, 0.45, 1.5}, 3)
	if coarse.Covers(other) {
		t.Fatal("coarse word covers a word from a different region")
	}
}

func TestSymbolAtPromotePanics(t *testing.T) {
	w := NewWordUniform([]float64{0.3}, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("promoting to more bits did not panic")
		}
	}()
	w.SymbolAt(0, 5)
}

func TestWordKeyDistinct(t *testing.T) {
	a := NewWordUniform([]float64{-1.5, 0.4}, 3)
	b := NewWordUniform([]float64{0.4, -1.5}, 3)
	if a.Key() == b.Key() {
		t.Fatal("different words share a key")
	}
	c := a.Clone()
	if c.Key() != a.Key() {
		t.Fatal("clone has a different key")
	}
	// Same symbols at different bit widths must differ too.
	d := NewWordUniform([]float64{-1.5, 0.4}, 4)
	if d.Key() == a.Key() {
		t.Fatal("words at different cardinalities share a key")
	}
}

// MINDIST must lower-bound the true Euclidean distance between the query
// and every series whose word it is (Shieh & Keogh's iSAX guarantee).
func TestMinDistLowerBounds(t *testing.T) {
	const n, w = 32, 8
	tr := paa.MustTransformer(n, w)
	segLens := make([]int, w)
	for i := range segLens {
		segLens[i] = tr.SegmentLen(i)
	}
	rng := rand.New(rand.NewPCG(21, 12))
	randSeries := func() []float64 {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		series.ZNormalize(x)
		return x
	}
	for trial := 0; trial < 300; trial++ {
		q := randSeries()
		x := randSeries()
		qp := tr.Transform(q)
		xw := NewWordUniform(tr.Transform(x), uint8(1+rng.IntN(5)))
		lb := xw.MinDistPAA(qp, segLens)
		ed := series.Dist(q, x)
		if lb > ed+1e-9 {
			t.Fatalf("MINDIST %g exceeds true distance %g", lb, ed)
		}
	}
}

func TestMinDistZeroInsideRegion(t *testing.T) {
	paaSig := []float64{0.1, -0.2}
	w := NewWordUniform(paaSig, 2)
	if got := w.MinDistPAA(paaSig, []int{4, 4}); got != 0 {
		t.Fatalf("MINDIST of a point to its own region = %g, want 0", got)
	}
}

func TestMinDistWildcardSegments(t *testing.T) {
	w := Word{Symbols: []uint16{0, 0}, Bits: []uint8{0, 0}}
	if got := w.MinDistPAA([]float64{5, -5}, []int{4, 4}); got != 0 {
		t.Fatalf("wildcard word MINDIST = %g, want 0", got)
	}
}

func TestNewWordLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	NewWordFromPAA([]float64{1, 2}, []uint8{3})
}

func TestMinDistIncreasesOutsideRegion(t *testing.T) {
	// A query PAA far below the region must yield a positive bound that
	// grows with distance.
	w := NewWordFromPAA([]float64{2.0}, []uint8{3}) // top stripe
	d1 := w.MinDistPAA([]float64{0}, []int{8})
	d2 := w.MinDistPAA([]float64{-1}, []int{8})
	if !(d2 > d1 && d1 > 0) {
		t.Fatalf("MINDIST not monotone: d1=%g d2=%g", d1, d2)
	}
	if math.IsNaN(d1) || math.IsNaN(d2) {
		t.Fatal("MINDIST returned NaN")
	}
}
