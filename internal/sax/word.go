package sax

import (
	"fmt"
	"math"
	"strings"
)

// Word is an iSAX word: one (symbol, bits) pair per PAA segment. Segments
// may use different bit widths, which is exactly what allows iSAX trees to
// refine one (DPiSAX) or all (TARDIS) segments when a node overflows.
type Word struct {
	Symbols []uint16
	Bits    []uint8
}

// NewWordFromPAA quantises a PAA signature into an iSAX word with the given
// per-segment bit widths. bits may be shorter than the signature only if
// uniform is intended; it must have the same length.
func NewWordFromPAA(paaSig []float64, bits []uint8) Word {
	if len(paaSig) != len(bits) {
		panic(fmt.Sprintf("sax: PAA length %d != bits length %d", len(paaSig), len(bits)))
	}
	w := Word{Symbols: make([]uint16, len(paaSig)), Bits: make([]uint8, len(bits))}
	copy(w.Bits, bits)
	for i, v := range paaSig {
		w.Symbols[i] = Symbol(v, int(bits[i]))
	}
	return w
}

// NewWordUniform quantises a PAA signature with the same bit width for every
// segment (plain SAX when bits is constant).
func NewWordUniform(paaSig []float64, bits uint8) Word {
	b := make([]uint8, len(paaSig))
	for i := range b {
		b[i] = bits
	}
	return NewWordFromPAA(paaSig, b)
}

// W returns the number of segments (the word length).
func (w Word) W() int { return len(w.Symbols) }

// Clone returns a deep copy of the word.
func (w Word) Clone() Word {
	out := Word{Symbols: make([]uint16, len(w.Symbols)), Bits: make([]uint8, len(w.Bits))}
	copy(out.Symbols, w.Symbols)
	copy(out.Bits, w.Bits)
	return out
}

// SymbolAt re-derives the symbol of segment i at a coarser bit width by
// dropping the least significant bits (iSAX's prefix property: the b'-bit
// symbol is the high-order prefix of the b-bit symbol for b' <= b).
func (w Word) SymbolAt(i int, bits uint8) uint16 {
	if bits > w.Bits[i] {
		panic(fmt.Sprintf("sax: cannot promote segment %d from %d to %d bits without the PAA value", i, w.Bits[i], bits))
	}
	return w.Symbols[i] >> (w.Bits[i] - bits)
}

// Covers reports whether w (a coarser or equal word) covers candidate: for
// every segment, w's symbol must equal the candidate's symbol truncated to
// w's bit width. This is the containment test used when routing a series or
// query down an iSAX tree.
func (w Word) Covers(candidate Word) bool {
	if len(w.Symbols) != len(candidate.Symbols) {
		return false
	}
	for i := range w.Symbols {
		if w.Bits[i] > candidate.Bits[i] {
			return false
		}
		if w.Symbols[i] != candidate.SymbolAt(i, w.Bits[i]) {
			return false
		}
	}
	return true
}

// Key returns a canonical string form usable as a map key, e.g.
// "00^2.010^3.1^1" encodes symbols with their bit widths.
func (w Word) Key() string {
	var b strings.Builder
	for i := range w.Symbols {
		if i > 0 {
			b.WriteByte('.')
		}
		fmt.Fprintf(&b, "%d^%d", w.Symbols[i], w.Bits[i])
	}
	return b.String()
}

// String renders the word in the paper's Figure 1 style: binary labels with
// subscripted cardinality, e.g. [00, 010, 10, 1].
func (w Word) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i := range w.Symbols {
		if i > 0 {
			b.WriteString(", ")
		}
		if w.Bits[i] == 0 {
			b.WriteByte('*')
			continue
		}
		fmt.Fprintf(&b, "%0*b", w.Bits[i], w.Symbols[i])
	}
	b.WriteByte(']')
	return b.String()
}

// MinDistPAA computes the iSAX MINDIST lower bound between a query's PAA
// signature and an iSAX word (Shieh & Keogh): for each segment, the distance
// from the PAA value to the nearest edge of the word's stripe, weighted by
// the segment length, i.e.
//
//	sqrt( Σ_i segLen_i * d_i^2 ) <= ED(query, any series in the region)
//
// segLens gives the number of raw readings per segment.
func (w Word) MinDistPAA(paaSig []float64, segLens []int) float64 {
	if len(paaSig) != len(w.Symbols) || len(segLens) != len(w.Symbols) {
		panic("sax: MinDistPAA length mismatch")
	}
	var s float64
	for i, v := range paaSig {
		if w.Bits[i] == 0 {
			continue // wildcard segment constrains nothing
		}
		lower, upper := Region(w.Symbols[i], int(w.Bits[i]))
		var d float64
		switch {
		case v < lower:
			d = lower - v
		case v > upper:
			d = v - upper
		}
		s += float64(segLens[i]) * d * d
	}
	return math.Sqrt(s)
}
