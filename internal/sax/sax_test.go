package sax

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBreakpointsCardinality(t *testing.T) {
	for bits := 0; bits <= 8; bits++ {
		bp := Breakpoints(bits)
		if len(bp) != (1<<bits)-1 {
			t.Fatalf("bits %d: %d breakpoints, want %d", bits, len(bp), (1<<bits)-1)
		}
		for i := 1; i < len(bp); i++ {
			if !(bp[i] > bp[i-1]) {
				t.Fatalf("bits %d: breakpoints not strictly increasing at %d", bits, i)
			}
		}
	}
}

// Known SAX breakpoints from Lin et al. for cardinality 4:
// [-0.6745, 0, 0.6745] (quartiles of N(0,1)).
func TestBreakpointsKnownQuartiles(t *testing.T) {
	bp := Breakpoints(2)
	want := []float64{-0.67449, 0, 0.67449}
	for i := range want {
		if math.Abs(bp[i]-want[i]) > 1e-4 {
			t.Fatalf("breakpoint %d = %g, want %g", i, bp[i], want[i])
		}
	}
}

// Known breakpoints for cardinality 8 (used by the paper's Figure 1, c=8):
// Phi^-1(i/8) for i=1..7.
func TestBreakpointsCardinality8(t *testing.T) {
	bp := Breakpoints(3)
	want := []float64{-1.1503, -0.6745, -0.3186, 0, 0.3186, 0.6745, 1.1503}
	for i := range want {
		if math.Abs(bp[i]-want[i]) > 1e-4 {
			t.Fatalf("breakpoint %d = %g, want %g", i, bp[i], want[i])
		}
	}
}

func TestNormInvCDFRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		x := NormInvCDF(p)
		got := 0.5 * math.Erfc(-x/math.Sqrt2)
		if math.Abs(got-p) > 1e-9 {
			t.Fatalf("Phi(NormInvCDF(%g)) = %g, error %g", p, got, math.Abs(got-p))
		}
	}
}

func TestNormInvCDFSymmetry(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 0.499)
		if p == 0 || math.IsNaN(p) {
			return true
		}
		lo, hi := NormInvCDF(0.5-p), NormInvCDF(0.5+p)
		return math.Abs(lo+hi) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormInvCDFDomainPanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormInvCDF(%g) did not panic", p)
				}
			}()
			NormInvCDF(p)
		}()
	}
}

func TestSymbolOrdering(t *testing.T) {
	// Symbols must be monotone in the value: the paper's Figure 1 places
	// stripe 000 at the bottom and 111 at the top.
	prev := uint16(0)
	for _, v := range []float64{-3, -1, -0.4, -0.1, 0.1, 0.4, 1, 3} {
		s := Symbol(v, 3)
		if s < prev {
			t.Fatalf("Symbol(%g) = %d < previous %d: not monotone", v, s, prev)
		}
		prev = s
	}
	if Symbol(-10, 3) != 0 {
		t.Fatalf("very negative value should map to symbol 0")
	}
	if Symbol(10, 3) != 7 {
		t.Fatalf("very positive value should map to symbol 7")
	}
}

func TestSymbolRegionInverse(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	for trial := 0; trial < 500; trial++ {
		v := rng.NormFloat64() * 2
		bits := 1 + rng.IntN(6)
		s := Symbol(v, bits)
		lo, hi := Region(s, bits)
		if v < lo || v >= hi {
			t.Fatalf("value %g assigned symbol %d with region [%g, %g)", v, s, lo, hi)
		}
	}
}

func TestRegionExtremes(t *testing.T) {
	lo, _ := Region(0, 2)
	if !math.IsInf(lo, -1) {
		t.Fatalf("lowest region lower bound = %g, want -Inf", lo)
	}
	_, hi := Region(3, 2)
	if !math.IsInf(hi, 1) {
		t.Fatalf("highest region upper bound = %g, want +Inf", hi)
	}
}

// Bits = 0 means a single stripe covering everything: symbol always 0.
func TestZeroBits(t *testing.T) {
	if Symbol(5, 0) != 0 || Symbol(-5, 0) != 0 {
		t.Fatal("zero-bit symbol must be 0 for any value")
	}
}
