// Package sax implements the SAX and iSAX symbolic representations of data
// series (paper Section III-B, Figure 1), the substrate on which the
// baseline systems TARDIS, DPiSAX, and the Odyssey-style exact engine are
// built.
//
// SAX divides the value axis into `cardinality` stripes that are
// equiprobable under the standard normal distribution (data series are
// z-normalised first) and encodes each PAA segment by the label of the
// stripe containing its mean. iSAX generalises SAX by allowing each segment
// its own cardinality, retaining only the most significant bits of the
// label, which enables hierarchical refinement: a node at b bits per segment
// splits into children at b+1 bits.
package sax

import (
	"fmt"
	"math"
	"sync"
)

// MaxBits is the largest supported per-segment bit width (cardinality
// 2^MaxBits). 16 bits ≫ the 8-ish bits used by iSAX systems in practice.
const MaxBits = 16

// breakpointCache holds the N(0,1) equiprobable breakpoints per bit width.
// breakpoints[b] has 2^b - 1 ascending values splitting the real line into
// 2^b stripes.
var breakpointCache struct {
	once sync.Once
	bps  [MaxBits + 1][]float64
}

// Breakpoints returns the sorted stripe boundaries for cardinality 2^bits:
// values beta_1 < ... < beta_{2^bits - 1} with Phi(beta_i) = i / 2^bits,
// following Lin et al.'s SAX construction. The returned slice is shared;
// callers must not modify it.
func Breakpoints(bits int) []float64 {
	if bits < 0 || bits > MaxBits {
		panic(fmt.Sprintf("sax: bits %d out of range [0, %d]", bits, MaxBits))
	}
	breakpointCache.once.Do(func() {
		for b := 0; b <= MaxBits; b++ {
			card := 1 << b
			bp := make([]float64, card-1)
			for i := 1; i < card; i++ {
				bp[i-1] = NormInvCDF(float64(i) / float64(card))
			}
			breakpointCache.bps[b] = bp
		}
	})
	return breakpointCache.bps[bits]
}

// Symbol returns the SAX symbol (stripe index, 0 = lowest stripe) of a PAA
// mean value at the given bit width. The mapping matches Figure 1: stripe
// "000" covers the most negative values and "111" the most positive.
func Symbol(value float64, bits int) uint16 {
	bp := Breakpoints(bits)
	// Binary search for the number of breakpoints <= value.
	lo, hi := 0, len(bp)
	for lo < hi {
		mid := (lo + hi) / 2
		if bp[mid] <= value {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint16(lo)
}

// Region returns the half-open value interval [lower, upper) covered by a
// symbol at the given bit width. The extreme stripes extend to ±Inf.
func Region(symbol uint16, bits int) (lower, upper float64) {
	bp := Breakpoints(bits)
	if int(symbol) == 0 {
		lower = math.Inf(-1)
	} else {
		lower = bp[symbol-1]
	}
	if int(symbol) == len(bp) {
		upper = math.Inf(1)
	} else {
		upper = bp[symbol]
	}
	return lower, upper
}

// NormInvCDF computes the inverse of the standard normal cumulative
// distribution function using Acklam's rational approximation (absolute
// error < 1.15e-9 over (0, 1)), which is more than sufficient for SAX
// breakpoints. It panics outside (0, 1).
func NormInvCDF(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("sax: NormInvCDF domain is (0, 1), got %g", p))
	}
	// Coefficients from Peter Acklam's algorithm.
	a := [...]float64{
		-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [...]float64{
		-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01,
	}
	c := [...]float64{
		-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [...]float64{
		7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00,
	}
	const pLow = 0.02425
	const pHigh = 1 - pLow

	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step sharpens the approximation near the tails.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}
