package pcache

import (
	"fmt"
	"sync"
	"testing"

	"climber/internal/storage"
)

// The satellite fix this pins: the budget charges what a partition actually
// keeps resident (MemBytes — file bytes plus decoded directory), for both
// kinds of resident partition, and MappedBytes reports the mapped share.
func TestBytesChargesDecodedAndMappedKinds(t *testing.T) {
	dir := t.TempDir()
	decPath, _ := writePartition(t, dir, "dec.clmp", 20)
	mapPath, mapSize := writePartition(t, dir, "map.clmp", 30)
	c := New(1<<20, Counters{})

	dec, _, err := c.Get(decPath, func() (*storage.Partition, error) { return storage.LoadPartition(decPath) })
	if err != nil {
		t.Fatal(err)
	}
	defer dec.Release()
	want := dec.MemBytes()
	if got := c.Bytes(); got != want {
		t.Fatalf("decoded-only Bytes() = %d, want %d", got, want)
	}
	if got := c.MappedBytes(); got != 0 {
		t.Fatalf("decoded-only MappedBytes() = %d, want 0", got)
	}

	if !storage.MapSupported() {
		t.Skip("platform cannot map partitions")
	}
	m, _, err := c.Get(mapPath, func() (*storage.Partition, error) { return storage.MapPartition(mapPath) })
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	if !m.Mapped() || !m.InMemory() {
		t.Fatalf("MapPartition: Mapped=%v InMemory=%v, want true/true", m.Mapped(), m.InMemory())
	}
	want += m.MemBytes()
	if got := c.Bytes(); got != want {
		t.Fatalf("mixed Bytes() = %d, want %d", got, want)
	}
	if got := c.MappedBytes(); got != mapSize {
		t.Fatalf("MappedBytes() = %d, want file size %d", got, mapSize)
	}

	c.Invalidate(mapPath)
	if got := c.MappedBytes(); got != 0 {
		t.Fatalf("MappedBytes() after invalidate = %d, want 0", got)
	}
}

// Eviction of a mapped partition must not unmap under a reader: the evicted
// handle keeps scanning its pages, and the unmap happens exactly when the
// last reference drains.
func TestEvictionUnmapsOnlyAfterLastRelease(t *testing.T) {
	if !storage.MapSupported() {
		t.Skip("platform cannot map partitions")
	}
	dir := t.TempDir()
	p0Path, _ := writePartition(t, dir, "p0.clmp", 25)
	p1Path, _ := writePartition(t, dir, "p1.clmp", 25)
	c := New(memBytesOf(t, p0Path)+1, Counters{}) // room for one partition

	p0, _, err := c.Get(p0Path, func() (*storage.Partition, error) { return storage.MapPartition(p0Path) })
	if err != nil {
		t.Fatal(err)
	}
	// Loading p1 evicts p0 — the cache's reference goes, ours remains.
	p1, _, err := c.Get(p1Path, func() (*storage.Partition, error) { return storage.MapPartition(p1Path) })
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Release()
	if c.Contains(p0Path) {
		t.Fatal("p0 should have been evicted")
	}
	if got := c.counters.Evictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if !p0.InMemory() {
		t.Fatal("evicted partition must stay mapped while a reader holds it")
	}
	// The mapping must still be readable end to end.
	n := 0
	if err := p0.ScanAll(func(int, []float64) error { n++; return nil }); err != nil {
		t.Fatalf("scan of evicted mapped partition: %v", err)
	}
	if n != p0.Count() {
		t.Fatalf("scanned %d records, want %d", n, p0.Count())
	}
	// Dropping the last reference tears the mapping down.
	if err := p0.Release(); err != nil {
		t.Fatalf("final release: %v", err)
	}
	if p0.InMemory() {
		t.Fatal("last release must unmap the partition")
	}
}

// The -race unmap-safety test: many goroutines Get a mapped partition and
// scan it raw while the main goroutine keeps invalidating the entry (the
// cache reloads and re-maps it over and over). Every scan must read valid
// mapped memory — the per-caller reference from Get is what defers each
// unmap past the scans it would otherwise yank pages from under.
func TestConcurrentRawScanDuringInvalidate(t *testing.T) {
	if !storage.MapSupported() {
		t.Skip("platform cannot map partitions")
	}
	dir := t.TempDir()
	path, _ := writePartition(t, dir, "p0.clmp", 60)
	c := New(1<<20, Counters{})
	mapLoader := func() (*storage.Partition, error) { return storage.MapPartition(path) }

	const goroutines = 8
	const scansPer = 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < scansPer; i++ {
				p, _, err := c.Get(path, mapLoader)
				if err != nil {
					errs <- err
					return
				}
				n := 0
				err = p.ScanClusterRaw(0, func(id int, rec []byte) error {
					if len(rec) != 4*p.SeriesLen() {
						return fmt.Errorf("record %d: %d value bytes, want %d", id, len(rec), 4*p.SeriesLen())
					}
					n++
					return nil
				})
				if err == nil && n == 0 {
					err = fmt.Errorf("cluster 0 scanned empty")
				}
				p.Release()
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			return
		case err := <-errs:
			t.Fatal(err)
		default:
			c.Invalidate(path)
		}
	}
}
