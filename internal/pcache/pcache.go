// Package pcache implements the shared partition cache sitting under the
// query path: a byte-budgeted LRU of in-memory partitions with singleflight
// loading.
//
// The Lernaean Hydra evaluations of data-series indexes show approximate
// query answering dominated by partition I/O, and CLIMBER's partition
// layout (paper Figure 6, Step 4) is immutable once built — so the decoded
// partitions can safely be shared read-only between every concurrent query.
// The cache exploits both facts: the first query to touch a partition loads
// it from disk exactly once (concurrent requests for the same partition
// coalesce onto that one read), and subsequent queries — including the
// within-partition widening pass, which previously re-opened files it had
// just scanned — are served from memory until the byte budget evicts the
// least recently used partition.
//
// The only mutation of a built index, core.Index.Append, rewrites partition
// files in place; callers must Invalidate the rewritten path so the next
// query reloads the fresh file.
//
// Resident partitions are reference counted (storage.Partition.Retain /
// Release): the cache holds one reference per resident entry and every
// partition returned by Get carries one reference owned by the caller, who
// must Release it when the scan finishes. Eviction, invalidation, and Purge
// only drop the cache's reference — a memory-mapped partition is therefore
// unmapped exactly when the last in-flight scan over it drains, never under
// one. The byte budget charges MemBytes (mapped pages at file size, heap
// copies at file size plus directory), so it bounds the cache's resident-set
// contribution, not a decoded-copy proxy.
package pcache

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"

	"climber/internal/storage"
)

// Counters receives the cache's event counts. Any nil field is replaced
// with a private counter, so a zero Counters is valid; the cluster layer
// passes pointers into its own Stats block so the numbers surface through
// cluster.Stats without a second source of truth.
type Counters struct {
	// Hits counts Get calls served without a disk read — resident entries
	// and requests coalesced onto another goroutine's in-flight load.
	Hits *atomic.Int64
	// Misses counts Get calls that performed the load themselves.
	Misses *atomic.Int64
	// Evictions counts entries dropped to keep the cache within budget.
	Evictions *atomic.Int64
	// BytesSaved accumulates the file sizes of hits — the disk traffic the
	// cache absorbed.
	BytesSaved *atomic.Int64
}

func (c *Counters) fill() {
	if c.Hits == nil {
		c.Hits = new(atomic.Int64)
	}
	if c.Misses == nil {
		c.Misses = new(atomic.Int64)
	}
	if c.Evictions == nil {
		c.Evictions = new(atomic.Int64)
	}
	if c.BytesSaved == nil {
		c.BytesSaved = new(atomic.Int64)
	}
}

// entry is one resident partition.
type entry struct {
	key  string
	p    *storage.Partition
	size int64
	elem *list.Element
}

// flight is one in-progress load other goroutines can wait on.
type flight struct {
	done chan struct{}
	// stale, guarded by Cache.mu, is set by Invalidate while the load is
	// in flight: the loaded partition may predate the invalidating write,
	// so it is handed to waiters but never inserted into the cache.
	stale bool
	// waiters, guarded by Cache.mu, counts the Gets blocked on done. Each
	// registered before the loader finishes; the loader takes one partition
	// reference per waiter before closing done, so every waiter wakes up
	// already owning its reference.
	waiters int
	p       *storage.Partition
	err     error
}

// Cache is a concurrency-safe, byte-budgeted LRU of in-memory partitions
// keyed by file path.
type Cache struct {
	budget   int64
	counters Counters

	mu          sync.Mutex
	bytes       int64
	mappedBytes int64
	entries     map[string]*entry
	ll          *list.List // front = most recently used
	inflight    map[string]*flight
}

// New creates a cache holding at most budget bytes of *resident* partition
// data, measured by storage.Partition.MemBytes. The budget is enforced at
// insert time, so it bounds the cache's steady-state footprint, not the
// process peak: loads in flight (one partition per concurrent cold Get) and
// evicted partitions still referenced by running scans are not counted
// against it. budget must be positive — a zero budget means "no cache";
// callers express that by not constructing one.
func New(budget int64, counters Counters) *Cache {
	counters.fill()
	return &Cache{
		budget:   budget,
		counters: counters,
		entries:  make(map[string]*entry),
		ll:       list.New(),
		inflight: make(map[string]*flight),
	}
}

// Get returns the partition cached under key, loading it via load on a
// miss. Concurrent Gets for the same key during a load block and share the
// single loaded partition (singleflight). hit reports whether the call
// avoided invoking load. A load error is returned to every waiter and
// nothing is cached.
//
// Every returned partition carries one reference owned by the caller, taken
// before Get returns; the caller must storage.Partition.Release (or Close)
// it when done. The load function must return a fresh partition owning its
// initial reference — exactly what OpenPartition/LoadPartition/MapPartition
// produce — and that reference is the one handed to the loading caller.
func (c *Cache) Get(key string, load func() (*storage.Partition, error)) (p *storage.Partition, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.ll.MoveToFront(e.elem)
		p = e.p
		// The cache's own reference keeps e.p alive here, so the caller's
		// reference must be taken before the lock drops — after it, an
		// eviction could tear the partition down.
		p.Retain()
		disk := p.SizeBytes()
		c.mu.Unlock()
		c.counters.Hits.Add(1)
		c.counters.BytesSaved.Add(disk)
		return p, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		f.waiters++
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		// The loader already took this waiter's reference.
		c.counters.Hits.Add(1)
		c.counters.BytesSaved.Add(f.p.SizeBytes())
		return f.p, true, nil
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	p, err = load()

	c.mu.Lock()
	// Invalidate may have detached this flight and a newer Get registered
	// its own; only deregister our flight, never a successor's.
	if c.inflight[key] == f {
		delete(c.inflight, key)
	}
	if err == nil {
		// One reference per blocked waiter; the loaded partition's initial
		// reference is this caller's own. The waiter count is final: the
		// flight is now deregistered (or was detached), so no further Get
		// can join it.
		for i := 0; i < f.waiters; i++ {
			p.Retain()
		}
		if !f.stale {
			c.insertLocked(key, p)
		}
	}
	c.mu.Unlock()
	f.p, f.err = p, err
	close(f.done)
	if err != nil {
		return nil, false, err
	}
	c.counters.Misses.Add(1)
	return p, false, nil
}

// insertLocked adds a loaded partition — taking the cache's own reference —
// and evicts from the LRU tail until the budget holds again. A partition
// larger than the whole budget is not cached at all — admitting it would
// immediately flush everything else.
func (c *Cache) insertLocked(key string, p *storage.Partition) {
	size := p.MemBytes()
	if size > c.budget {
		return
	}
	p.Retain()
	e := &entry{key: key, p: p, size: size}
	e.elem = c.ll.PushFront(e)
	c.entries[key] = e
	c.bytes += size
	if p.Mapped() {
		c.mappedBytes += p.SizeBytes()
	}
	for c.bytes > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.removeLocked(back.Value.(*entry))
		c.counters.Evictions.Add(1)
	}
}

// removeLocked detaches an entry and returns the cache's reference. For a
// mapped partition with no other outstanding references that final Release
// unmaps it — an eviction is an unmap exactly when no scan still needs the
// pages. Release runs under c.mu; teardown is a munmap or file close, cheap
// enough not to be worth the unlock/relock dance.
func (c *Cache) removeLocked(e *entry) {
	c.ll.Remove(e.elem)
	delete(c.entries, e.key)
	c.bytes -= e.size
	if e.p.Mapped() {
		c.mappedBytes -= e.p.SizeBytes()
	}
	_ = e.p.Release()
}

// Invalidate drops the entry cached under key, if any, and marks any
// in-flight load of the key stale so its result is not cached either — a
// load that raced the invalidating write may have read the old file.
// Callers that rewrite a partition file must invalidate it so later Gets
// reload from disk. Queries still scanning the dropped partition keep
// their consistent snapshot: only the cache's reference is released, and a
// mapped partition stays mapped until those scans drain.
func (c *Cache) Invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.removeLocked(e)
	}
	if f, ok := c.inflight[key]; ok {
		// Mark the load stale so its result is not cached, and detach it
		// so Gets issued after this invalidation start a fresh load
		// instead of coalescing onto the possibly pre-write snapshot. The
		// detached flight still serves the waiters it already has.
		f.stale = true
		delete(c.inflight, key)
	}
}

// InvalidatePrefix applies Invalidate semantics to every key under prefix:
// resident entries are dropped and in-flight loads marked stale + detached.
// Because cache keys are partition file paths, a directory prefix
// invalidates a whole retired generation in one call after its last reader
// drains.
func (c *Cache) InvalidatePrefix(prefix string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, e := range c.entries {
		if strings.HasPrefix(key, prefix) {
			c.removeLocked(e)
		}
	}
	for key, f := range c.inflight {
		if strings.HasPrefix(key, prefix) {
			f.stale = true
			delete(c.inflight, key)
		}
	}
}

// Purge drops every resident entry and marks every in-flight load stale so
// its result is not cached, releasing every partition reference the cache
// pins. Queries still scanning a dropped partition keep their consistent
// snapshot until they release their own references; the cache itself stays
// usable afterwards. Purge is
// how DB.Close releases the cache deterministically instead of waiting for
// the garbage collector to notice the DB is gone.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		c.removeLocked(e)
	}
	for key, f := range c.inflight {
		f.stale = true
		delete(c.inflight, key)
	}
}

// Contains reports whether key is currently resident (without touching the
// LRU order).
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Len returns the number of resident partitions.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the resident partition data volume (MemBytes of every
// cached partition), the quantity the budget bounds.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// MappedBytes returns the file bytes of the cached partitions that are
// memory mappings — the mapped share of Bytes, exported as a gauge so
// operators can see how much of the budget is page-cache-backed rather than
// heap.
func (c *Cache) MappedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mappedBytes
}

// Budget returns the configured byte budget.
func (c *Cache) Budget() int64 { return c.budget }

// Keys returns the resident keys from most to least recently used.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.entries))
	for e := c.ll.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*entry).key)
	}
	return out
}
