package pcache

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"climber/internal/storage"
)

// writePartition flushes a small partition file with n records and returns
// its path and on-disk size.
func writePartition(t *testing.T, dir, name string, n int) (string, int64) {
	t.Helper()
	const seriesLen = 8
	w := storage.NewPartitionWriter(seriesLen)
	vals := make([]float64, seriesLen)
	for i := 0; i < n; i++ {
		for j := range vals {
			vals[j] = float64(i + j)
		}
		if err := w.Append(storage.ClusterID(i%3), i, vals); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, name)
	if err := w.Flush(path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, info.Size()
}

func loader(path string, loads *atomic.Int64) func() (*storage.Partition, error) {
	return func() (*storage.Partition, error) {
		loads.Add(1)
		return storage.LoadPartition(path)
	}
}

// memBytesOf returns the cache charge of one partition file — the budget
// unit since charging switched from file size to MemBytes.
func memBytesOf(t *testing.T, path string) int64 {
	t.Helper()
	p, err := storage.LoadPartition(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	return p.MemBytes()
}

func TestGetCachesAndCountsHits(t *testing.T) {
	dir := t.TempDir()
	path, size := writePartition(t, dir, "p0.clmp", 10)
	c := New(1<<20, Counters{})
	var loads atomic.Int64

	p1, hit, err := c.Get(path, loader(path, &loads))
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first Get must be a miss")
	}
	if !p1.InMemory() {
		t.Fatal("cached partition should be in-memory")
	}
	p2, hit, err := c.Get(path, loader(path, &loads))
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second Get must be a hit")
	}
	if p1 != p2 {
		t.Fatal("hit must return the shared partition")
	}
	if got := loads.Load(); got != 1 {
		t.Fatalf("loads = %d, want 1", got)
	}
	if got := c.counters.Hits.Load(); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
	if got := c.counters.Misses.Load(); got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
	if got := c.counters.BytesSaved.Load(); got != size {
		t.Fatalf("bytes saved = %d, want %d", got, size)
	}
	if got := c.Bytes(); got != p1.MemBytes() {
		t.Fatalf("resident bytes = %d, want MemBytes %d", got, p1.MemBytes())
	}
}

// The singleflight contract: N concurrent Gets for one key perform exactly
// one disk load, and every caller receives the same partition.
func TestSingleflight(t *testing.T) {
	dir := t.TempDir()
	path, _ := writePartition(t, dir, "p0.clmp", 50)
	c := New(1<<20, Counters{})
	var loads atomic.Int64

	const goroutines = 32
	ps := make([]*storage.Partition, goroutines)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			p, _, err := c.Get(path, loader(path, &loads))
			if err != nil {
				t.Error(err)
				return
			}
			ps[g] = p
		}()
	}
	close(start)
	wg.Wait()

	if got := loads.Load(); got != 1 {
		t.Fatalf("loads = %d, want exactly 1 for %d concurrent Gets", got, goroutines)
	}
	for g := 1; g < goroutines; g++ {
		if ps[g] != ps[0] {
			t.Fatalf("goroutine %d received a different partition", g)
		}
	}
	if h, m := c.counters.Hits.Load(), c.counters.Misses.Load(); h != goroutines-1 || m != 1 {
		t.Fatalf("hits/misses = %d/%d, want %d/1", h, m, goroutines-1)
	}
}

// Eviction must drop the least recently used partitions first and keep the
// resident volume within budget.
func TestEvictionOrderAndBudget(t *testing.T) {
	dir := t.TempDir()
	paths := make([]string, 4)
	for i := range paths {
		paths[i], _ = writePartition(t, dir, fmt.Sprintf("p%d.clmp", i), 10)
	}
	c := New(3*memBytesOf(t, paths[0]), Counters{}) // room for exactly three partitions
	var loads atomic.Int64

	for _, p := range paths[:3] {
		if _, _, err := c.Get(p, loader(p, &loads)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch p0 so p1 becomes the LRU entry.
	if _, hit, err := c.Get(paths[0], loader(paths[0], &loads)); err != nil || !hit {
		t.Fatalf("re-Get p0: hit=%v err=%v", hit, err)
	}
	// Loading p3 must evict p1 (LRU), not p0 (recently used) or p2.
	if _, _, err := c.Get(paths[3], loader(paths[3], &loads)); err != nil {
		t.Fatal(err)
	}
	if c.Contains(paths[1]) {
		t.Fatal("LRU partition p1 should have been evicted")
	}
	for _, want := range []string{paths[0], paths[2], paths[3]} {
		if !c.Contains(want) {
			t.Fatalf("%s should be resident", filepath.Base(want))
		}
	}
	if got := c.counters.Evictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := c.Bytes(); got > c.Budget() {
		t.Fatalf("resident bytes %d exceed budget %d", got, c.Budget())
	}
	if got, want := c.Keys(), []string{paths[3], paths[0], paths[2]}; len(got) != 3 ||
		got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("MRU order = %v, want %v", got, want)
	}
}

// A partition larger than the whole budget must pass through uncached
// rather than flushing the entire cache.
func TestOversizedPartitionNotCached(t *testing.T) {
	dir := t.TempDir()
	small, _ := writePartition(t, dir, "small.clmp", 5)
	big, _ := writePartition(t, dir, "big.clmp", 1000)
	c := New(memBytesOf(t, small)+1, Counters{})
	var loads atomic.Int64

	if _, _, err := c.Get(small, loader(small, &loads)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(big, loader(big, &loads)); err != nil {
		t.Fatal(err)
	}
	if c.Contains(big) {
		t.Fatal("oversized partition must not be cached")
	}
	if !c.Contains(small) {
		t.Fatal("oversized load must not evict fitting entries")
	}
}

func TestInvalidate(t *testing.T) {
	dir := t.TempDir()
	path, _ := writePartition(t, dir, "p0.clmp", 10)
	c := New(1<<20, Counters{})
	var loads atomic.Int64

	if _, _, err := c.Get(path, loader(path, &loads)); err != nil {
		t.Fatal(err)
	}
	c.Invalidate(path)
	if c.Contains(path) {
		t.Fatal("Invalidate must drop the entry")
	}
	if c.Bytes() != 0 {
		t.Fatalf("resident bytes = %d after invalidate, want 0", c.Bytes())
	}
	if _, hit, err := c.Get(path, loader(path, &loads)); err != nil || hit {
		t.Fatalf("Get after invalidate: hit=%v err=%v, want fresh load", hit, err)
	}
	if got := loads.Load(); got != 2 {
		t.Fatalf("loads = %d, want 2 (reload after invalidate)", got)
	}
}

// Invalidate racing an in-flight load must prevent the (possibly stale)
// loaded partition from entering the cache: a writer that replaces the
// file between the load's read and its insert would otherwise pin
// pre-write contents for every later query.
func TestInvalidateDuringInflightLoadNotCached(t *testing.T) {
	dir := t.TempDir()
	path, _ := writePartition(t, dir, "p0.clmp", 10)
	c := New(1<<20, Counters{})

	loading := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Get(path, func() (*storage.Partition, error) {
			close(loading)
			<-release // the "file rewrite + Invalidate" happens now
			return storage.LoadPartition(path)
		})
		done <- err
	}()
	<-loading
	c.Invalidate(path)
	// A Get issued after the invalidation must not coalesce onto the
	// stale flight: it performs its own fresh load and caches it.
	var loads atomic.Int64
	fresh, hit, err := c.Get(path, loader(path, &loads))
	if err != nil || hit {
		t.Fatalf("post-invalidate Get: hit=%v err=%v, want fresh miss", hit, err)
	}
	if got := loads.Load(); got != 1 {
		t.Fatalf("post-invalidate Get performed %d loads, want its own 1", got)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The stale flight's result must neither displace the fresh entry nor
	// have been cached itself.
	if !c.Contains(path) {
		t.Fatal("fresh post-invalidate load should stay cached")
	}
	p, hit, err := c.Get(path, loader(path, &loads))
	if err != nil || !hit {
		t.Fatalf("Get after settle: hit=%v err=%v", hit, err)
	}
	if p != fresh {
		t.Fatal("cached entry is not the fresh post-invalidate load")
	}
}

func TestLoadErrorNotCached(t *testing.T) {
	c := New(1<<20, Counters{})
	wantErr := fmt.Errorf("boom")
	_, _, err := c.Get("missing", func() (*storage.Partition, error) { return nil, wantErr })
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if c.Len() != 0 {
		t.Fatal("failed load must not be cached")
	}
	// The key must not be poisoned: a later Get retries the load.
	dir := t.TempDir()
	path, _ := writePartition(t, dir, "p0.clmp", 3)
	var loads atomic.Int64
	if _, _, err := c.Get(path, func() (*storage.Partition, error) { return nil, wantErr }); err != wantErr {
		t.Fatalf("first Get err = %v, want %v", err, wantErr)
	}
	if _, hit, err := c.Get(path, loader(path, &loads)); err != nil || hit {
		t.Fatalf("retry after failed load: hit=%v err=%v", hit, err)
	}
}
