package odyssey

import (
	"errors"
	"testing"

	"climber/internal/dataset"
	"climber/internal/dss"
	"climber/internal/series"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Segments: 0, Bits: 4, LeafCapacity: 10},
		{Segments: 8, Bits: 0, LeafCapacity: 10},
		{Segments: 8, Bits: 99, LeafCapacity: 10},
		{Segments: 8, Bits: 4, LeafCapacity: 0},
		{Segments: 8, Bits: 4, LeafCapacity: 10, MemoryBudgetBytes: -1},
		{Segments: 8, Bits: 4, LeafCapacity: 10, Workers: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

// The engine is exact: its answers must match a brute-force scan exactly.
func TestSearchIsExact(t *testing.T) {
	ds := dataset.RandomWalk(64, 3000, 9)
	cfg := DefaultConfig()
	cfg.Segments = 8
	e, err := Build(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, qs := dataset.Queries(ds, 10, 17)
	for qi, q := range qs {
		got, _, err := e.Search(q, 25)
		if err != nil {
			t.Fatal(err)
		}
		want := dss.SearchDataset(ds, q, 25)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("query %d result %d: id %d, want %d", qi, i, got[i].ID, want[i].ID)
			}
		}
	}
}

// Pruning must actually skip work (the engine's reason for existing).
func TestPruningIsEffective(t *testing.T) {
	ds := dataset.RandomWalk(64, 5000, 9)
	cfg := DefaultConfig()
	cfg.Segments = 8
	e, err := Build(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, qs := dataset.Queries(ds, 5, 17)
	totalPruned, totalScanned := 0, 0
	for _, q := range qs {
		_, stats, err := e.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		totalPruned += stats.SeriesPruned
		totalScanned += stats.SeriesScanned
	}
	if totalPruned == 0 {
		t.Fatal("no series were pruned; lower-bound machinery is dead")
	}
	frac := float64(totalScanned) / float64(totalScanned+totalPruned)
	t.Logf("scanned fraction = %.3f", frac)
	if frac > 0.9 {
		t.Fatalf("pruning skipped only %.1f%% of work", (1-frac)*100)
	}
}

func TestMemoryBudget(t *testing.T) {
	ds := dataset.RandomWalk(64, 1000, 9)
	cfg := DefaultConfig()
	cfg.MemoryBudgetBytes = 1000 // absurdly small
	_, err := Build(ds, cfg)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
	cfg.MemoryBudgetBytes = MemoryFootprint(ds.Len(), ds.Length(), cfg.Segments)
	if _, err := Build(ds, cfg); err != nil {
		t.Fatalf("exact-budget build failed: %v", err)
	}
}

func TestSearchBatch(t *testing.T) {
	ds := dataset.RandomWalk(64, 1000, 9)
	cfg := DefaultConfig()
	cfg.Segments = 8
	cfg.Workers = 3
	e, err := Build(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, qs := dataset.Queries(ds, 20, 5)
	batch, err := e.SearchBatch(qs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 20 {
		t.Fatalf("batch returned %d result sets, want 20", len(batch))
	}
	// Batch answers must equal sequential answers.
	for i, q := range qs {
		seq, _, err := e.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		for j := range seq {
			if batch[i][j].ID != seq[j].ID {
				t.Fatalf("batch query %d diverges from sequential", i)
			}
		}
	}
}

func TestSearchValidation(t *testing.T) {
	ds := dataset.RandomWalk(64, 200, 9)
	e, err := Build(ds, Config{Segments: 8, Bits: 4, LeafCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Search(ds.Get(0), 0); err == nil {
		t.Error("k = 0 should fail")
	}
	if _, _, err := e.Search(make([]float64, 3), 5); err == nil {
		t.Error("wrong length should fail")
	}
	if e.Len() != 200 {
		t.Errorf("Len = %d, want 200", e.Len())
	}
}

func TestLeafCapacityRespected(t *testing.T) {
	ds := dataset.RandomWalk(64, 2000, 9)
	cfg := Config{Segments: 8, Bits: 1, LeafCapacity: 50} // coarse words force splits
	e, err := Build(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range e.leaves {
		if len(l.ids) > 50 {
			t.Fatalf("leaf holds %d > capacity 50", len(l.ids))
		}
	}
	if e.Stats.LeafCount != len(e.leaves) {
		t.Fatalf("stats leaf count %d != %d", e.Stats.LeafCount, len(e.leaves))
	}
}

func exactIDs(ds *series.Dataset, q []float64, k int) map[int]bool {
	out := map[int]bool{}
	for _, r := range dss.SearchDataset(ds, q, k) {
		out[r.ID] = true
	}
	return out
}

// Guard against regressions in result ordering.
func TestResultsAscending(t *testing.T) {
	ds := dataset.RandomWalk(64, 500, 3)
	e, err := Build(ds, Config{Segments: 8, Bits: 4, LeafCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := e.Search(ds.Get(7), 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("results not ascending")
		}
	}
	ids := exactIDs(ds, ds.Get(7), 20)
	for _, r := range res {
		if !ids[r.ID] {
			t.Fatalf("result %d not in exact answer set", r.ID)
		}
	}
}
