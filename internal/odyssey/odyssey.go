// Package odyssey implements an in-memory exact kNN engine standing in for
// Odyssey (Chatzakis, Fatourou, Kosmas, Palpanas, Peng: "Odyssey: A Journey
// in the Land of Distributed Data Series Similarity Search", PVLDB 2023),
// the distributed main-memory system of the paper's Table I comparison.
//
// Odyssey's defining properties for that comparison are: (1) exact answers
// (recall 1.0); (2) the fastest query times as long as the dataset and
// index fit in main memory — it is an iSAX-tree engine with PAA/SAX
// lower-bound pruning and parallel batch-query scheduling; and (3) a hard
// scalability wall: beyond the memory budget the system cannot run (the
// "X" cells of Table I). This implementation reproduces exactly those
// properties: an iSAX-style in-memory index with MINDIST + PAA lower-bound
// pruning, a worker pool for batch queries, and a configurable memory cap
// that refuses datasets past the budget.
package odyssey

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"climber/internal/paa"
	"climber/internal/sax"
	"climber/internal/series"
)

// ErrOutOfMemory is returned when the dataset exceeds the configured memory
// budget — the condition rendering the paper's Table I "X" cells.
var ErrOutOfMemory = fmt.Errorf("odyssey: dataset exceeds the configured memory budget")

// Config parameterises the engine.
type Config struct {
	// Segments is the PAA/iSAX word length.
	Segments int
	// Bits is the per-segment cardinality (2^Bits symbols) of the pruning
	// words.
	Bits uint8
	// LeafCapacity bounds the iSAX tree leaves.
	LeafCapacity int
	// MemoryBudgetBytes caps the in-memory footprint (dataset + index
	// estimate). Zero means unlimited.
	MemoryBudgetBytes int64
	// Workers sizes the batch-query scheduler; 0 = GOMAXPROCS.
	Workers int
}

// DefaultConfig returns a setup mirroring Odyssey's published defaults at
// laptop scale.
func DefaultConfig() Config {
	return Config{Segments: 16, Bits: 4, LeafCapacity: 512, MemoryBudgetBytes: 0, Workers: 0}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Segments <= 0 {
		return fmt.Errorf("odyssey: Segments must be positive, got %d", c.Segments)
	}
	if c.Bits == 0 || int(c.Bits) > sax.MaxBits {
		return fmt.Errorf("odyssey: Bits must be in [1, %d], got %d", sax.MaxBits, c.Bits)
	}
	if c.LeafCapacity <= 0 {
		return fmt.Errorf("odyssey: LeafCapacity must be positive, got %d", c.LeafCapacity)
	}
	if c.MemoryBudgetBytes < 0 {
		return fmt.Errorf("odyssey: MemoryBudgetBytes must be non-negative")
	}
	if c.Workers < 0 {
		return fmt.Errorf("odyssey: Workers must be non-negative")
	}
	return nil
}

// leaf is one iSAX-tree leaf: the IDs of its member series plus their
// shared word for MINDIST pruning.
type leaf struct {
	word sax.Word
	ids  []int
}

// Engine is the in-memory exact search engine.
type Engine struct {
	cfg     Config
	ds      *series.Dataset
	tr      *paa.Transformer
	paaSigs []float64 // flat n × w PAA signatures for lower-bound pruning
	leaves  []leaf
	segLens []int
	Stats   BuildStats
}

// BuildStats reports construction cost and footprint.
type BuildStats struct {
	BuildTime   time.Duration
	MemoryBytes int64
	LeafCount   int
}

// MemoryFootprint estimates the bytes an engine over the dataset would
// hold: the raw series (float64), the PAA signatures, and index overhead.
func MemoryFootprint(numSeries, seriesLen, segments int) int64 {
	raw := int64(numSeries) * int64(seriesLen) * 8
	sigs := int64(numSeries) * int64(segments) * 8
	index := int64(numSeries) * 16 // ids + leaf bookkeeping
	return raw + sigs + index
}

// Build constructs the engine over an in-memory dataset. It fails with
// ErrOutOfMemory when the footprint exceeds the configured budget.
func Build(ds *series.Dataset, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	footprint := MemoryFootprint(ds.Len(), ds.Length(), cfg.Segments)
	if cfg.MemoryBudgetBytes > 0 && footprint > cfg.MemoryBudgetBytes {
		return nil, fmt.Errorf("%w: need %d bytes, budget %d", ErrOutOfMemory, footprint, cfg.MemoryBudgetBytes)
	}
	start := time.Now()
	tr, err := paa.NewTransformer(ds.Length(), cfg.Segments)
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, ds: ds, tr: tr, paaSigs: make([]float64, ds.Len()*cfg.Segments)}
	e.segLens = make([]int, cfg.Segments)
	for i := range e.segLens {
		e.segLens[i] = tr.SegmentLen(i)
	}

	// Build the leaf level of an iSAX binary tree (the iBT structure
	// Odyssey builds on): each split refines exactly one segment by one
	// bit, choosing the segment that divides the group most evenly. The
	// result is ~n/LeafCapacity balanced leaves whose MINDIST bounds prune
	// whole leaves cheaply — the property that makes the exact engine fast.
	all := make([]int, ds.Len())
	for id := range all {
		sig := e.paaSigs[id*cfg.Segments : (id+1)*cfg.Segments]
		tr.TransformInto(sig, ds.Get(id))
		all[id] = id
	}
	e.refine(all, make([]uint8, cfg.Segments))
	e.Stats = BuildStats{
		BuildTime:   time.Since(start),
		MemoryBytes: footprint,
		LeafCount:   len(e.leaves),
	}
	return e, nil
}

// refine recursively splits an ID group — one segment, one bit at a time,
// choosing the segment whose next bit divides the group most evenly — until
// groups fit LeafCapacity or every segment reaches the cardinality limit,
// then materialises leaves. bits carries the group's per-segment word
// widths; every member shares the word at those widths.
func (e *Engine) refine(ids []int, bits []uint8) {
	if len(ids) == 0 {
		return
	}
	w := e.cfg.Segments
	leafHere := func() {
		word := sax.NewWordFromPAA(e.paaSigs[ids[0]*w:(ids[0]+1)*w], bits)
		for lo := 0; lo < len(ids); lo += e.cfg.LeafCapacity {
			hi := lo + e.cfg.LeafCapacity
			if hi > len(ids) {
				hi = len(ids)
			}
			e.leaves = append(e.leaves, leaf{word: word, ids: ids[lo:hi]})
		}
	}
	if len(ids) <= e.cfg.LeafCapacity {
		leafHere()
		return
	}
	// Pick the segment whose next bit splits the group most evenly.
	bestSeg, bestImbalance := -1, math.MaxFloat64
	for seg := 0; seg < w; seg++ {
		if bits[seg] >= e.cfg.Bits {
			continue
		}
		ones := 0
		for _, id := range ids {
			if sax.Symbol(e.paaSigs[id*w+seg], int(bits[seg])+1)&1 == 1 {
				ones++
			}
		}
		imbalance := math.Abs(float64(ones)*2 - float64(len(ids)))
		if imbalance < bestImbalance {
			bestImbalance = imbalance
			bestSeg = seg
		}
	}
	if bestSeg == -1 {
		leafHere() // cardinality exhausted: chunked oversized leaves
		return
	}
	var zero, one []int
	for _, id := range ids {
		if sax.Symbol(e.paaSigs[id*w+bestSeg], int(bits[bestSeg])+1)&1 == 0 {
			zero = append(zero, id)
		} else {
			one = append(one, id)
		}
	}
	if len(zero) == 0 || len(one) == 0 {
		leafHere() // degenerate split: stop refining this group
		return
	}
	childBits := append([]uint8(nil), bits...)
	childBits[bestSeg]++
	e.refine(zero, childBits)
	e.refine(one, childBits)
}

// QueryStats reports pruning effectiveness.
type QueryStats struct {
	LeavesPruned  int
	LeavesScanned int
	SeriesPruned  int
	SeriesScanned int
}

// Search returns the exact k nearest neighbours of q, ascending by
// Euclidean distance.
func (e *Engine) Search(q []float64, k int) ([]series.Result, QueryStats, error) {
	if k <= 0 {
		return nil, QueryStats{}, fmt.Errorf("odyssey: k must be positive, got %d", k)
	}
	if len(q) != e.ds.Length() {
		return nil, QueryStats{}, fmt.Errorf("odyssey: query length %d, engine stores %d", len(q), e.ds.Length())
	}
	qp := e.tr.Transform(q)
	top := series.NewTopK(k)
	var stats QueryStats

	// Order leaves by MINDIST so good candidates are found early, making
	// subsequent pruning bounds tight (the iSAX-engine search order).
	type ranked struct {
		idx     int
		minDist float64
	}
	order := make([]ranked, len(e.leaves))
	for i := range e.leaves {
		md := e.leaves[i].word.MinDistPAA(qp, e.segLens)
		order[i] = ranked{i, md * md}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].minDist < order[b].minDist })

	w := e.cfg.Segments
	for _, r := range order {
		if bound, ok := top.Bound(); ok && r.minDist > bound {
			stats.LeavesPruned++
			stats.SeriesPruned += len(e.leaves[r.idx].ids)
			continue // MINDIST exceeds the kth distance: whole leaf pruned
		}
		stats.LeavesScanned++
		for _, id := range e.leaves[r.idx].ids {
			if bound, ok := top.Bound(); ok {
				// Second-level pruning: the PAA lower bound per series.
				lb := e.tr.LowerBoundSqDist(qp, e.paaSigs[id*w:(id+1)*w])
				if lb > bound {
					stats.SeriesPruned++
					continue
				}
				d := series.SqDistEarlyAbandon(q, e.ds.Get(id), bound)
				stats.SeriesScanned++
				if d < bound {
					top.Push(id, d)
				}
				continue
			}
			top.Push(id, series.SqDist(q, e.ds.Get(id)))
			stats.SeriesScanned++
		}
	}
	res := top.Results()
	for i := range res {
		res[i].Dist = math.Sqrt(res[i].Dist)
	}
	return res, stats, nil
}

// SearchBatch answers many queries concurrently using the engine's worker
// pool — Odyssey's headline capability is efficient scheduling of hundreds
// of concurrent queries.
func (e *Engine) SearchBatch(queries [][]float64, k int) ([][]series.Result, error) {
	workers := e.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([][]series.Result, len(queries))
	errs := make([]error, len(queries))
	var wg sync.WaitGroup
	work := make(chan int, len(queries))
	for i := range queries {
		work <- i
	}
	close(work)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				res, _, err := e.Search(queries[i], k)
				out[i], errs[i] = res, err
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Len returns the number of indexed series.
func (e *Engine) Len() int { return e.ds.Len() }
