package genswap_test

import (
	"testing"

	"climber/internal/analysis/analysistest"
	"climber/internal/analysis/genswap"
)

func TestGenswap(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), genswap.Analyzer, "genswaptest")
}
