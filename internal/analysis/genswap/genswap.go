// Package genswap checks the path discipline the online-reindex subsystem
// depends on: every file that belongs to a generation — the skeleton
// (.clms), partition and block files (.clmp/.clmb), the WAL (.clmw), the
// MANIFEST pointer, and gen-NNNN directories — must get its path from one
// of the blessed helpers in internal/core (IndexPathIn, GenDir,
// genPartitionPath, manifestPath, …), never from an ad-hoc
// filepath.Join/fmt.Sprintf at a call site.
//
// The invariant exists because the swap protocol and backup/restore both
// treat a generation directory as a relocatable unit: a path assembled
// outside the helpers is a path the reindex swap will not retarget and the
// backup hard-linker will not copy — a silent split-brain between
// generations. The analyzer flags any string literal containing a
// generation file marker (".clms", ".clmw", ".clmp", ".clmb", "MANIFEST",
// "gen-") passed to filepath.Join or used as a fmt.Sprintf format, unless
// the enclosing function is itself a blessed helper, marked
//
//	//climber:genpath
//
// in its doc comment. Parsing sites (fmt.Sscanf of "gen-%d") are out of
// scope: reading a name back is safe, minting one is not. The per-site
// escape hatch is //lint:ignore genswap <reason>.
package genswap

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"

	"climber/internal/analysis/vet"
)

// Analyzer is the genswap check.
var Analyzer = &vet.Analyzer{
	Name: "genswap",
	Doc:  "generation file paths (.clms/.clmw/.clmp/.clmb, MANIFEST, gen-*) are minted only by //climber:genpath helpers, so reindex swap and backup relocate every file",
	Run:  run,
}

// markers are the substrings that identify a generation-scoped file name.
var markers = []string{".clms", ".clmw", ".clmp", ".clmb", "MANIFEST", "gen-"}

func run(pass *vet.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && vet.HasMarker(fd, "genpath") {
				// A blessed helper is the one place these literals belong;
				// function literals nested inside inherit the blessing.
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					checkCall(pass, call)
				}
				return true
			})
		}
	}
	return nil
}

// checkCall flags generation-file literals handed to the two path-minting
// calls the repository uses: filepath.Join (any string-literal element) and
// fmt.Sprintf (the format literal).
func checkCall(pass *vet.Pass, call *ast.CallExpr) {
	fn := vet.CalleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	var candidates []ast.Expr
	switch {
	case fn.Pkg().Path() == "path/filepath" && fn.Name() == "Join":
		candidates = call.Args
	case fn.Pkg().Path() == "fmt" && fn.Name() == "Sprintf":
		if len(call.Args) > 0 {
			candidates = call.Args[:1]
		}
	default:
		return
	}
	for _, arg := range candidates {
		lit, ok := ast.Unparen(arg).(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			continue
		}
		s, err := strconv.Unquote(lit.Value)
		if err != nil {
			continue
		}
		for _, m := range markers {
			if strings.Contains(s, m) {
				pass.Reportf(lit.Pos(),
					"generation file path literal %q (%s) minted outside a //climber:genpath helper: use the internal/core path helpers so reindex swap and backup relocate the file",
					s, m)
				break
			}
		}
	}
}
