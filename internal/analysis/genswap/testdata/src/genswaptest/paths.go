// Package genswaptest is the genswap golden fixture: generation file path
// literals minted by unblessed code, the //climber:genpath blessing, the
// lint:ignore escape hatch, and the shapes the analyzer must leave alone
// (parsing with Sscanf, unrelated literals, non-literal arguments).
package genswaptest

import (
	"fmt"
	"path/filepath"
)

// joinBad assembles the skeleton path ad hoc — the PR 9 hazard: this path
// would not retarget when the reindex swap publishes a new generation.
func joinBad(dir string) string {
	return filepath.Join(dir, "index.clms") // want "generation file path literal \"index.clms\" \\(.clms\\) minted outside a //climber:genpath helper"
}

// sprintfBad mints a partition file name outside the helpers.
func sprintfBad(i int) string {
	return fmt.Sprintf("base-part%05d.clmp", i) // want "generation file path literal \"base-part%05d.clmp\" \\(.clmp\\) minted outside a //climber:genpath helper"
}

// manifestBad touches the commit pointer by name.
func manifestBad(dir string) string {
	return filepath.Join(dir, "MANIFEST") // want "generation file path literal \"MANIFEST\" \\(MANIFEST\\) minted outside a //climber:genpath helper"
}

// genDirBad formats a generation directory name outside the helpers.
func genDirBad(n int) string {
	return fmt.Sprintf("gen-%04d", n) // want "generation file path literal \"gen-%04d\" \\(gen-\\) minted outside a //climber:genpath helper"
}

// indexPathIn is a blessed helper: the marker makes the literal legal.
//
//climber:genpath
func indexPathIn(genRoot string) string {
	return filepath.Join(genRoot, "index.clms")
}

// blessedNested inherits the blessing inside a function literal too.
//
//climber:genpath
func blessedNested(dirs []string) []string {
	out := make([]string, len(dirs))
	walk := func(i int, d string) { out[i] = filepath.Join(d, "wal.clmw") }
	for i, d := range dirs {
		walk(i, d)
	}
	return out
}

// ignored uses the per-site escape hatch with a reason.
func ignored(dir string) string {
	//lint:ignore genswap fixture exercises the escape hatch
	return filepath.Join(dir, "wal.clmw")
}

// parseGen reads a generation name back — parsing is out of scope, only
// minting is flagged.
func parseGen(name string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(name, "gen-%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// clean has nothing generation-scoped: unrelated literals and non-literal
// arguments stay silent.
func clean(dir, name string) string {
	tmp := filepath.Join(dir, "scratch.tmp")
	return filepath.Join(tmp, fmt.Sprintf("node%02d", 3), name)
}
