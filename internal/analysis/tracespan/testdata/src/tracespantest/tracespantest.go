// Package tracespantest is the tracespan analyzer's golden fixture: each
// function is one open/End shape, flagged or clean. Diagnostics for an
// un-ended span land on the line that declares it.
package tracespantest

import (
	"context"
	"errors"

	"obs"
)

func root() *obs.Span { return &obs.Span{} }

// deferEnd is the canonical clean shape: a defer dominates every return.
func deferEnd() {
	sp := root().StartChild("stage")
	defer sp.End()
	sp.SetAttr("n", 1)
}

// explicitEnd ends the span at the same statement level before returning.
func explicitEnd() int {
	sp := root().StartChild("stage")
	sp.SetAttr("n", 1)
	sp.End()
	return 1
}

// startSpanDefer tracks the second result of obs.StartSpan.
func startSpanDefer(ctx context.Context) context.Context {
	ctx, sp := obs.StartSpan(ctx, "stage")
	defer sp.End()
	return ctx
}

// neverEnded falls off the end of the function with the span open.
func neverEnded() {
	sp := root().StartChild("stage") // want "span sp is not ended on every return path"
	sp.SetAttr("n", 1)
}

// openAtReturn reaches an explicit return with the span open.
func openAtReturn() int {
	sp := root().StartChild("stage") // want "span sp is not ended on every return path"
	sp.SetAttr("n", 1)
	return 2
}

// branchOnlyEnd ends the span only on one branch: the End does not
// dominate the fall-off-the-end return.
func branchOnlyEnd(cond bool) {
	sp := root().StartChild("stage") // want "span sp is not ended on every return path"
	if cond {
		sp.End()
	}
}

// earlyReturnLeak ends the span on the main path but leaks it through the
// error return inside the branch.
func earlyReturnLeak(cond bool) error {
	sp := root().StartChild("stage") // want "span sp is not ended on every return path"
	if cond {
		return errors.New("boom")
	}
	sp.End()
	return nil
}

// endBeforeBranchReturn is clean: the branch ends the span before its own
// return, and the main path ends it too.
func endBeforeBranchReturn(cond bool) error {
	sp := root().StartChild("stage")
	if cond {
		sp.End()
		return errors.New("boom")
	}
	sp.End()
	return nil
}

// loopBody opens and ends a span per iteration — clean: each iteration's
// span is ended before the body's end, and nothing leaks past the loop.
func loopBody(items []int) {
	for range items {
		sp := root().StartChild("item")
		sp.SetAttr("n", 1)
		sp.End()
	}
}

// discarded drops the span on the floor at the call site.
func discarded() {
	root().StartChild("stage") // want "result is discarded"
}

// blanked assigns the span to the blank identifier — same bug.
func blanked(ctx context.Context) {
	_, _ = obs.StartSpan(ctx, "stage") // want "blank identifier is discarded"
}

// inLiteral checks function literals as their own functions: the outer
// function is clean, the literal leaks.
func inLiteral() func() {
	sp := root().StartChild("outer")
	defer sp.End()
	return func() {
		inner := root().StartChild("inner") // want "span inner is not ended on every return path"
		inner.SetAttr("n", 1)
	}
}

// notAnOpen proves the analyzer keys on the callee: a span obtained from
// any other call is not tracked.
func notAnOpen() {
	sp := obs.NotASpan()
	sp.SetAttr("n", 1)
}

// ignored is the reviewed escape hatch.
func ignored() {
	//lint:ignore tracespan fixture: span intentionally handed to a background closer
	sp := root().StartChild("stage")
	sp.SetAttr("n", 1)
}
