// Package obs is a fixture stub of climber/internal/obs: just the span
// surface the tracespan analyzer matches on. The analyzer accepts the
// package path "obs" alongside the real module path so these fixtures
// type-check without the module.
package obs

import "context"

// Span is the stub span; the zero value stands in for any real span.
type Span struct{}

// StartChild opens a child span.
func (s *Span) StartChild(name string) *Span { return &Span{} }

// End closes the span.
func (s *Span) End() {}

// SetAttr records an attribute (present so fixtures can use a span
// between opening and ending it).
func (s *Span) SetAttr(key string, v int64) {}

// StartSpan opens a span under the context's current span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, nil
}

// NotASpan returns something span-shaped from a non-open call, so
// fixtures can prove the analyzer keys on the callee, not the type.
func NotASpan() *Span { return nil }
