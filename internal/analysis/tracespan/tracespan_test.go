package tracespan_test

import (
	"testing"

	"climber/internal/analysis/analysistest"
	"climber/internal/analysis/tracespan"
)

func TestTracespan(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), tracespan.Analyzer, "tracespantest")
}
