// Package tracespan checks that every span opened on the query path is
// closed on every path out of the function that opened it. An unended
// span is a silent observability bug: it serializes with a duration that
// keeps growing ("still in flight"), skews the per-stage histograms its
// StageNanos feed, and — unlike a leaked file descriptor — never fails
// loudly, so nothing but a gate catches it.
//
// The rule: a variable assigned from obs.StartSpan or from a
// (*obs.Span).StartChild call must have a dominating End() — a `defer
// sp.End()` anywhere before, or an explicit sp.End() statement — on the
// path to every return of the enclosing function (function literals are
// checked as their own functions). Discarding the span result outright is
// reported at the call site: a span nobody holds can never be ended.
//
// The dominance walk is the same conservative under-approximation the
// syncack analyzer uses: an End inside a conditional branch does not
// count for the code after the branch, because only some executions pass
// through it. A site the analyzer cannot prove is annotated
// //lint:ignore tracespan <reason>.
package tracespan

import (
	"go/ast"
	"go/types"

	"climber/internal/analysis/vet"
)

// Analyzer is the tracespan check.
var Analyzer = &vet.Analyzer{
	Name: "tracespan",
	Doc:  "every span opened by obs.StartSpan/StartChild must be ended (defer sp.End() or a dominating End) on every return path of its function",
	Run:  run,
}

func run(pass *vet.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

// checkFunc walks one function body, then recurses into every function
// literal it contains — each literal is its own function with its own
// return paths, so a span opened inside one must be ended inside it.
func checkFunc(pass *vet.Pass, body *ast.BlockStmt) {
	state := make(map[*types.Var]bool)
	walkStmts(pass, body.List, state, true)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkFunc(pass, lit.Body)
			return false
		}
		return true
	})
}

// walkStmts processes a statement list. state maps each tracked span
// variable to whether an End dominates the current position. fnBody
// marks the function's outermost list: control falling off its end is an
// implicit return and is held to the same rule. Returns whether the list
// ended in a return.
func walkStmts(pass *vet.Pass, stmts []ast.Stmt, state map[*types.Var]bool, fnBody bool) bool {
	terminated := false
	for _, stmt := range stmts {
		terminated = false
		switch s := stmt.(type) {
		case *ast.ReturnStmt:
			reportOpen(pass, state)
			terminated = true
		case *ast.BlockStmt:
			terminated = walkStmts(pass, s.List, state, false)
			continue
		case *ast.IfStmt:
			noteStmt(pass, s.Init, state)
			walkBranch(pass, s.Body, state)
			if s.Else != nil {
				walkBranch(pass, s.Else, state)
			}
		case *ast.ForStmt:
			walkBranch(pass, s.Body, state)
		case *ast.RangeStmt:
			walkBranch(pass, s.Body, state)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			ast.Inspect(s, func(n ast.Node) bool {
				if body, ok := n.(*ast.BlockStmt); ok {
					walkBranch(pass, body, state)
					return false
				}
				return true
			})
		}
		noteStmt(pass, stmt, state)
	}
	if fnBody && !terminated {
		// Control can fall off the end of the function — an implicit
		// return, held to the same rule as an explicit one.
		reportOpen(pass, state)
	}
	return terminated
}

// walkBranch checks a conditional body against a copy of the state:
// whatever a branch establishes does not dominate the code after it, and
// a span the branch opens must be ended before any return the branch
// reaches.
func walkBranch(pass *vet.Pass, stmt ast.Stmt, state map[*types.Var]bool) {
	branch := make(map[*types.Var]bool, len(state))
	for k, v := range state {
		branch[k] = v
	}
	if body, ok := stmt.(*ast.BlockStmt); ok {
		walkStmts(pass, body.List, branch, false)
		return
	}
	walkStmts(pass, []ast.Stmt{stmt}, branch, false)
}

// reportOpen reports every tracked span that reaches a return (explicit
// or implicit) without a dominating End. The diagnostic lands on the
// span's declaration, once per span — the fix (a defer) belongs there,
// not at whichever return happened to be reached first.
func reportOpen(pass *vet.Pass, state map[*types.Var]bool) {
	for v, ended := range state {
		if !ended {
			pass.Reportf(v.Pos(), "span %s is not ended on every return path: add defer %s.End() after opening it (or End it before each return)", v.Name(), v.Name())
			delete(state, v) // one diagnostic per span, not one per return
		}
	}
}

// noteStmt updates state from one statement (not descending into nested
// branch bodies or function literals): span-opening assignments add
// entries, End calls — explicit or deferred — mark them ended, and a
// span-opening call whose result is discarded is reported immediately.
func noteStmt(pass *vet.Pass, stmt ast.Stmt, state map[*types.Var]bool) {
	if stmt == nil {
		return
	}
	switch s := stmt.(type) {
	case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.BlockStmt:
		return // branch bodies were handled by the walker
	case *ast.AssignStmt:
		noteAssign(pass, s, state)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if spanOpenCall(pass, call) >= 0 {
				pass.Reportf(call.Pos(), "span-opening call's result is discarded: a span nobody holds can never be ended")
				return
			}
			noteEnd(pass, call, state)
		}
	case *ast.DeferStmt:
		noteEnd(pass, s.Call, state)
	}
}

// noteAssign tracks `sp := x.StartChild(...)` and `ctx, sp :=
// obs.StartSpan(...)` shapes, including a blank identifier in the span
// slot (reported: the span is discarded).
func noteAssign(pass *vet.Pass, s *ast.AssignStmt, state map[*types.Var]bool) {
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	slot := spanOpenCall(pass, call)
	if slot < 0 || slot >= len(s.Lhs) {
		return
	}
	id, ok := ast.Unparen(s.Lhs[slot]).(*ast.Ident)
	if !ok {
		return // a field or index target: out of scope for the tracker
	}
	if id.Name == "_" {
		pass.Reportf(call.Pos(), "span assigned to the blank identifier is discarded: a span nobody holds can never be ended")
		return
	}
	if v, ok := pass.Info.ObjectOf(id).(*types.Var); ok && v != nil {
		state[v] = false
	}
}

// noteEnd marks a tracked span ended when call is sp.End() on one of the
// state's variables.
func noteEnd(pass *vet.Pass, call *ast.CallExpr, state map[*types.Var]bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	if v, ok := pass.Info.Uses[id].(*types.Var); ok {
		if _, tracked := state[v]; tracked {
			state[v] = true
		}
	}
}

// spanOpenCall reports which result slot of the call holds a new span:
// 0 for (*obs.Span).StartChild, 1 for obs.StartSpan's (ctx, span), and
// -1 when the call opens no span.
func spanOpenCall(pass *vet.Pass, call *ast.CallExpr) int {
	fn := vet.CalleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || !obsPackage(fn.Pkg().Path()) {
		return -1
	}
	switch fn.Name() {
	case "StartChild":
		if fn.Type().(*types.Signature).Recv() != nil {
			return 0
		}
	case "StartSpan":
		if fn.Type().(*types.Signature).Recv() == nil {
			return 1
		}
	}
	return -1
}

// obsPackage matches the tracing package in the real module and in the
// GOPATH-style test fixtures.
func obsPackage(path string) bool {
	return path == "climber/internal/obs" || path == "obs"
}
