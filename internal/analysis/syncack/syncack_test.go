package syncack_test

import (
	"testing"

	"climber/internal/analysis/analysistest"
	"climber/internal/analysis/syncack"
)

func TestSyncack(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), syncack.Analyzer, "syncacktest")
}
