// Package syncack checks fsync-before-ack, the durability rule PR 3
// established for the ingest path: a function that acknowledges an append
// must not return success before the bytes are fsynced, and a writable
// file's deferred Close must not swallow its error.
//
// Two rules:
//
//  1. A function marked //climber:ack in its doc comment (the WAL's
//     Append/Reset/writeHeader — the durability boundary an ack flows
//     through) must dominate every successful return with a Sync: on the
//     statement path leading to each `return …, nil`, there must be a
//     prior call to a .Sync() method or to another //climber:ack function.
//     Returning an error needs no sync — nothing was acked.
//  2. A file opened writable in a function (os.Create, or os.OpenFile
//     with O_WRONLY/O_RDWR/O_APPEND) must not be closed by a bare
//     `defer f.Close()`: on a writable file Close reports the write-back
//     error, and a defer that discards it turns a failed write durable-
//     looking. Capture the error or close explicitly on the success path.
//
// The path analysis is deliberately conservative: a Sync inside a
// conditional branch does not count for the code after the branch, because
// only some executions pass through it. The escape hatch for a path the
// analyzer cannot prove is //lint:ignore syncack <reason>.
package syncack

import (
	"go/ast"
	"go/types"

	"climber/internal/analysis/vet"
)

// Analyzer is the syncack check.
var Analyzer = &vet.Analyzer{
	Name: "syncack",
	Doc:  "an ack path (//climber:ack function) must call Sync before every successful return, and writable files must not `defer f.Close()` bare",
	Run:  run,
}

func run(pass *vet.Pass) error {
	acked := markedFuncs(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if vet.HasMarker(fn, "ack") {
				checkAckFunc(pass, fn, acked)
			}
			checkDeferClose(pass, fn)
		}
	}
	return nil
}

// markedFuncs collects the package's //climber:ack functions so calls to
// them count as establishing durability.
func markedFuncs(pass *vet.Pass) map[*types.Func]bool {
	out := make(map[*types.Func]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !vet.HasMarker(fn, "ack") {
				continue
			}
			if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
				out[obj] = true
			}
		}
	}
	return out
}

// checkAckFunc walks the function's statements in order, tracking whether
// a sync point dominates the current position, and reports every
// successful return reached without one.
func checkAckFunc(pass *vet.Pass, fn *ast.FuncDecl, acked map[*types.Func]bool) {
	walkStmts(pass, fn.Body.List, false, acked, fn.Name.Name)
}

// walkStmts processes a statement list with the given incoming synced
// state and returns the state after the list. Branches receive a copy of
// the state; whatever they establish does not leak past the branch (a
// conservative under-approximation of dominance).
func walkStmts(pass *vet.Pass, stmts []ast.Stmt, synced bool, acked map[*types.Func]bool, fname string) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ReturnStmt:
			if !synced && isSuccessReturn(s) {
				pass.Reportf(s.Pos(), "%s acks (returns success) without a dominating Sync: fsync before acknowledging the write", fname)
			}
		case *ast.BlockStmt:
			synced = walkStmts(pass, s.List, synced, acked, fname)
			continue
		case *ast.IfStmt:
			// The init clause and condition run unconditionally, so a Sync
			// there — the `if err := w.f.Sync(); err != nil` idiom — does
			// dominate both the branches and everything after the if.
			if nodeSyncs(pass, s.Init, acked) || nodeSyncs(pass, s.Cond, acked) {
				synced = true
			}
			walkBranch(pass, s.Body, synced, acked, fname)
			if s.Else != nil {
				walkBranch(pass, s.Else, synced, acked, fname)
			}
		case *ast.ForStmt:
			walkBranch(pass, s.Body, synced, acked, fname)
		case *ast.RangeStmt:
			walkBranch(pass, s.Body, synced, acked, fname)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			if sw, ok := s.(*ast.SwitchStmt); ok && (nodeSyncs(pass, sw.Init, acked) || nodeSyncs(pass, sw.Tag, acked)) {
				synced = true
			}
			ast.Inspect(s, func(n ast.Node) bool {
				if body, ok := n.(*ast.BlockStmt); ok {
					walkBranch(pass, body, synced, acked, fname)
					return false
				}
				return true
			})
		}
		if stmtSyncs(pass, stmt, acked) {
			synced = true
		}
	}
	return synced
}

func walkBranch(pass *vet.Pass, stmt ast.Stmt, synced bool, acked map[*types.Func]bool, fname string) {
	if body, ok := stmt.(*ast.BlockStmt); ok {
		walkStmts(pass, body.List, synced, acked, fname)
		return
	}
	walkStmts(pass, []ast.Stmt{stmt}, synced, acked, fname)
}

// stmtSyncs reports whether the statement (outside nested function
// literals and branch bodies — those were handled by the walker) contains
// a durability point: an x.Sync() call or a call to an ack-marked
// function.
func stmtSyncs(pass *vet.Pass, stmt ast.Stmt, acked map[*types.Func]bool) bool {
	switch stmt.(type) {
	case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.BlockStmt:
		return false // branch bodies do not dominate what follows them
	}
	return nodeSyncs(pass, stmt, acked)
}

// nodeSyncs is stmtSyncs without the branch-statement guard: it scans any
// node (an if's init clause, a condition expression) for a sync point.
func nodeSyncs(pass *vet.Pass, node ast.Node, acked map[*types.Func]bool) bool {
	if node == nil {
		return false
	}
	syncs := false
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Sync" {
			syncs = true
			return true
		}
		if fn := vet.CalleeFunc(pass.Info, call); fn != nil && acked[fn] {
			syncs = true
		}
		return true
	})
	return syncs
}

// isSuccessReturn reports whether the return acks success: its last result
// is a literal nil (the error slot), or it is a naked return (conservative
// — named results may hold nil).
func isSuccessReturn(ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return true
	}
	last := ast.Unparen(ret.Results[len(ret.Results)-1])
	id, ok := last.(*ast.Ident)
	return ok && id.Name == "nil"
}

// checkDeferClose flags bare `defer f.Close()` on files the function
// opened writable.
func checkDeferClose(pass *vet.Pass, fn *ast.FuncDecl) {
	writable := writableFiles(pass, fn)
	if len(writable) == 0 {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(def.Call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		if obj, ok := pass.Info.Uses[id].(*types.Var); ok && writable[obj] {
			pass.Reportf(def.Pos(), "defer %s.Close() discards the close error of a file opened writable: a failed write-back would look durable; capture the error (or close explicitly on the success path)", id.Name)
		}
		return true
	})
}

// writableFiles finds variables assigned from os.Create or a writable
// os.OpenFile in the function body.
func writableFiles(pass *vet.Pass, fn *ast.FuncDecl) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok || !opensWritable(pass, call) {
			return true
		}
		if id, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident); ok {
			if obj := pass.Info.ObjectOf(id); obj != nil {
				if v, ok := obj.(*types.Var); ok {
					out[v] = true
				}
			}
		}
		return true
	})
	return out
}

// opensWritable reports whether the call is os.Create, os.CreateTemp, or
// os.OpenFile whose flag expression mentions a write flag (O_WRONLY,
// O_RDWR, O_APPEND). A flag expression the analyzer cannot read (a
// variable, a call) is assumed writable — the conservative direction for a
// durability check.
func opensWritable(pass *vet.Pass, call *ast.CallExpr) bool {
	fn := vet.CalleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return false
	}
	switch fn.Name() {
	case "Create", "CreateTemp":
		return true
	case "OpenFile":
		if len(call.Args) < 2 {
			return false
		}
		writable, opaque := false, false
		ast.Inspect(call.Args[1], func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if obj := pass.Info.ObjectOf(n); obj != nil {
					if c, ok := obj.(*types.Const); ok && c.Pkg() != nil && c.Pkg().Path() == "os" {
						switch c.Name() {
						case "O_WRONLY", "O_RDWR", "O_APPEND":
							writable = true
						}
						return true
					}
					if _, isVar := obj.(*types.Var); isVar {
						opaque = true
					}
				}
			case *ast.CallExpr:
				opaque = true
			}
			return true
		})
		return writable || opaque
	}
	return false
}
