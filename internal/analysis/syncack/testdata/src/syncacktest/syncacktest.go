// Package syncacktest is the syncack golden fixture. appendBad is the
// PR 3 regression: a WAL-shaped Append that acknowledged entries before
// fsyncing them, so a process kill after the ack lost acked writes.
package syncacktest

import "os"

type wal struct{ f *os.File }

// appendBad reproduces the PR 3 ack-before-fsync bug: the write succeeded,
// nothing fsynced, success returned.
//
//climber:ack
func (w *wal) appendBad(buf []byte) error {
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	return nil // want "appendBad acks \\(returns success\\) without a dominating Sync"
}

// appendGood fsyncs before acking — the fixed shape.
//
//climber:ack
func (w *wal) appendGood(buf []byte) error {
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	return nil
}

// appendBranchSync: a Sync only some executions pass through does not
// dominate the ack.
//
//climber:ack
func (w *wal) appendBranchSync(buf []byte, flush bool) error {
	if flush {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	return nil // want "appendBranchSync acks \\(returns success\\) without a dominating Sync"
}

// syncAll is itself an ack point, so calling it counts as durability.
//
//climber:ack
func (w *wal) syncAll() error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	return nil
}

// reset delegates durability to another //climber:ack function — clean.
//
//climber:ack
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if err := w.syncAll(); err != nil {
		return err
	}
	return nil
}

// errReturnNeedsNoSync: returning an error acks nothing.
//
//climber:ack
func (w *wal) errReturnNeedsNoSync(buf []byte) error {
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	return nil
}

// unmarked is not a durability boundary; the rule does not apply.
func (w *wal) unmarked(buf []byte) error {
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	return nil
}

// appendLog: a bare defer Close on a writable file swallows the
// write-back error.
func appendLog(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want "defer f.Close\\(\\) discards the close error of a file opened writable"
	_, err = f.Write(data)
	return err
}

// writeReportGood captures the close error — clean.
func writeReportGood(path string, data []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	_, err = f.Write(data)
	return err
}

// readOnlyClose: a read-only file's Close has no write-back to lose.
func readOnlyClose(path string) error {
	f, err := os.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf [8]byte
	_, err = f.Read(buf[:])
	return err
}
