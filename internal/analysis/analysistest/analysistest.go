// Package analysistest runs an internal/analysis/vet analyzer over golden
// fixture packages and checks its diagnostics against `// want` comment
// expectations, mirroring the x/tools analysistest contract: a fixture
// line that should trigger the analyzer carries
//
//	// want "regexp"
//
// (several quoted regexps if several diagnostics land on the line), and a
// clean fixture carries none. Fixtures live in the analyzer package's
// testdata/src/<path>/ directory, GOPATH-style, so fixture packages can
// import one another (the statsmerge fixtures model the real core/shard
// split that way).
package analysistest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"climber/internal/analysis/vet"
)

// TestData returns the analyzer package's testdata root, the conventional
// location Run loads fixture packages from.
func TestData() string {
	abs, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return abs
}

// Run loads each fixture package from root/src/<path>, applies the
// analyzer, and reports any mismatch between its diagnostics and the
// fixtures' want comments as test errors.
func Run(t *testing.T, root string, a *vet.Analyzer, paths ...string) {
	t.Helper()
	pkgs, err := vet.LoadTestdata(root, paths)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := vet.RunAnalyzers(pkgs, []*vet.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*expectation)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			fileWants, err := parseWants(pkg, f)
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range fileWants {
				wants[k] = append(wants[k], v...)
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, d)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none",
					a.Name, k.file, k.line, w.re.String())
			}
		}
	}
}

// expectation is one want-comment regexp and whether a diagnostic matched it.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// wantRe pulls the quoted regexps off a want comment.
var wantRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func parseWants(pkg *vet.Package, f *ast.File) (map[struct {
	file string
	line int
}][]*expectation, error) {
	type key = struct {
		file string
		line int
	}
	out := make(map[key][]*expectation)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			k := key{pos.Filename, pos.Line}
			for _, q := range wantRe.FindAllString(text[len("want "):], -1) {
				pattern, err := strconv.Unquote(q)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
				}
				out[k] = append(out[k], &expectation{re: re})
			}
		}
	}
	return out, nil
}
