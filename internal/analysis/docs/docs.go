// Package docs holds the repository's documentation gates, folded into the
// climber-vet multichecker from the former bespoke runner in
// internal/docscheck (whose tests remain and now delegate here): every
// exported identifier of the packages listed in DocumentedPackages must
// carry a doc comment, and every relative link in the repository's
// markdown must resolve. Both gates are offline by design.
package docs

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"climber/internal/analysis/vet"
)

// DocumentedPackages are the import paths (exact, or prefix when ending in
// "/...") held to the exported-doc-comment rule: the serving-stack
// packages the rule was introduced for, plus the analysis suite itself.
var DocumentedPackages = []string{
	"climber/internal/shard",
	"climber/internal/api",
	"climber/internal/ingest",
	"climber/internal/pcache",
	"climber/internal/server",
	"climber/internal/core",
	"climber/internal/analysis/...",
}

// Analyzer is the doccomment check.
var Analyzer = &vet.Analyzer{
	Name: "doccomment",
	Doc:  "every exported identifier of the documented packages must carry a doc comment (offline equivalent of revive's exported rule)",
	Run:  run,
}

// covered reports whether the package path is held to the rule.
func covered(path string) bool {
	for _, p := range DocumentedPackages {
		if prefix, ok := strings.CutSuffix(p, "/..."); ok {
			if path == prefix || strings.HasPrefix(path, prefix+"/") {
				return true
			}
		} else if path == p {
			return true
		}
	}
	return false
}

func run(pass *vet.Pass) error {
	if !covered(pass.Pkg.Path()) {
		return nil
	}
	hasPkgDoc := false
	for _, file := range pass.Files {
		if file.Doc != nil {
			hasPkgDoc = true
		}
		checkFile(pass, file)
	}
	if !hasPkgDoc {
		pass.Reportf(pass.Files[0].Package, "package %s has no package-level doc comment", pass.Pkg.Name())
	}
	return nil
}

func checkFile(pass *vet.Pass, file *ast.File) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			name := d.Name.Name
			if d.Recv != nil {
				rn := recvName(d.Recv)
				if !ast.IsExported(strings.TrimPrefix(rn, "*")) {
					continue // method on an unexported type
				}
				name = rn + "." + name
			}
			pass.Reportf(d.Pos(), "exported func %s has no doc comment", name)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						pass.Reportf(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
					}
				case *ast.ValueSpec:
					// A group doc (// Query algorithm variants …) covers
					// its members; otherwise each exported name needs one.
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							pass.Reportf(n.Pos(), "exported %s %s has no doc comment", d.Tok, n.Name)
						}
					}
				}
			}
		}
	}
}

func recvName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	switch e := recv.List[0].Type.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return "*" + id.Name
		}
	}
	return ""
}

// mdLink matches markdown inline links and images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// CheckMarkdownLinks checks every relative link in the repository's
// markdown files under root points at a file or directory that exists,
// returning one human-readable finding per broken link. External
// (http/https/mailto) links and pure anchors are skipped.
func CheckMarkdownLinks(root string) ([]string, error) {
	var mdFiles []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", ".claude", "node_modules", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(mdFiles) == 0 {
		return nil, fmt.Errorf("no markdown files found under %s — wrong repository root?", root)
	}
	var findings []string
	for _, md := range mdFiles {
		raw, err := os.ReadFile(md)
		if err != nil {
			return nil, err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue
			}
			target = strings.Split(target, "#")[0] // strip anchors
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				relMd, relErr := filepath.Rel(root, md)
				if relErr != nil {
					relMd = md
				}
				findings = append(findings, fmt.Sprintf("%s: broken relative link %q", relMd, m[1]))
			}
		}
	}
	return findings, nil
}
