// Package valuespec holds an undocumented exported var/const for the
// direct ValueSpec test: a `// want` comment on the offending line would
// itself count as documentation, so this fixture runs outside the golden
// comment contract (see TestDoccommentValueSpec).
package valuespec

var NoDoc int

const NoDocConst = 1
