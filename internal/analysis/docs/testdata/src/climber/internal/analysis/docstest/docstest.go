package docstest // want "package docstest has no package-level doc comment"

func Exported() {} // want "exported func Exported has no doc comment"

// Documented carries a doc comment — clean.
func Documented() {}

type T struct{} // want "exported type T has no doc comment"

// M is documented; BadM is not.
func (T) M() {}

func (T) BadM() {} // want "exported func T.BadM has no doc comment"

func (t *T) badUnexported() { _ = t }

var V int // V's trailing comment counts as its documentation — clean.

// Group docs cover every member — clean.
var (
	A int
	B int
)

const C = 1 // C likewise — a trailing comment documents a const.
