package uncovered

func Exported() {}

type T struct{}
