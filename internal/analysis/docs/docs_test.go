package docs_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"climber/internal/analysis/analysistest"
	"climber/internal/analysis/docs"
	"climber/internal/analysis/vet"
)

// TestDoccomment runs the analyzer over one fixture package inside the
// covered climber/internal/analysis/... prefix and one outside it: the
// rule must fire only on the covered one.
func TestDoccomment(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), docs.Analyzer,
		"climber/internal/analysis/docstest", "uncovered")
}

// TestDoccommentValueSpec covers the undocumented var/const rule directly:
// a `// want` comment on the offending line would itself document the
// value, so this case cannot live in the golden fixtures.
func TestDoccommentValueSpec(t *testing.T) {
	pkgs, err := vet.LoadTestdata(analysistest.TestData(),
		[]string{"climber/internal/analysis/valuespec"})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := vet.RunAnalyzers(pkgs, []*vet.Analyzer{docs.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}
	for _, want := range []string{
		"exported var NoDoc has no doc comment",
		"exported const NoDocConst has no doc comment",
	} {
		found := false
		for _, m := range got {
			if m == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing diagnostic %q in %v", want, got)
		}
	}
	if len(got) != 2 {
		t.Errorf("got %d diagnostics %v, want exactly 2", len(got), got)
	}
}

func TestCheckMarkdownLinks(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(root, "sub", "doc.md"), "referenced")
	writeFile(t, filepath.Join(root, "README.md"),
		"[ok](sub/doc.md)\n[ext](https://example.com/x)\n[anchor](#section)\n[broken](missing.md)\n")

	findings, err := docs.CheckMarkdownLinks(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "missing.md") {
		t.Fatalf("findings = %v, want exactly one naming missing.md", findings)
	}
}

func TestCheckMarkdownLinksEmptyTree(t *testing.T) {
	if _, err := docs.CheckMarkdownLinks(t.TempDir()); err == nil {
		t.Fatal("expected an error on a tree without markdown (wrong-root guard)")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
