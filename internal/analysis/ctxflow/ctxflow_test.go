package ctxflow_test

import (
	"testing"

	"climber/internal/analysis/analysistest"
	"climber/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer, "ctxflowtest")
}
