// Package ctxflow checks that contexts thread end to end through the
// query/ingest path, the invariant PR 2 established by hand: a caller's
// cancellation must reach every partition scan and WAL wait beneath it.
//
// Three rules, from sharpest to broadest:
//
//  1. A function that receives a context.Context must pass it on: calling
//     a context-taking callee with a fresh context.Background()/TODO()
//     severs the caller's cancellation chain.
//  2. A function that receives a context must not call a context-less
//     variant of a callee when a <Name>Context sibling exists — that is
//     how a threaded context silently drops to Background.
//  3. Outside package main, context.Background()/context.TODO() may appear
//     only in a recognised convenience wrapper — a function Name whose
//     Background call feeds a sibling named Name…Context (the public
//     no-context form of a context API, e.g. Search → SearchContext) — or
//     under an explicit //lint:ignore ctxflow allowlist comment stating
//     why the site is a legitimate root.
package ctxflow

import (
	"go/ast"
	"go/types"

	"climber/internal/analysis/vet"
)

// Analyzer is the ctxflow check.
var Analyzer = &vet.Analyzer{
	Name: "ctxflow",
	Doc:  "contexts must thread through the query/ingest path: no context.Background()/TODO() outside main and allowlisted roots, and a held ctx must reach every context-taking callee",
	Run:  run,
}

func run(pass *vet.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			decl, ok := n.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				return true
			}
			checkFunc(pass, decl)
			return false // checkFunc descends into nested literals itself
		})
	}
	return nil
}

// checkFunc applies the rules to one top-level function. Function literals
// inherit the context-in-scope state of their enclosing function: a
// closure inside SearchContext holds the caller's ctx even without a
// parameter of its own.
func checkFunc(pass *vet.Pass, decl *ast.FuncDecl) {
	hasCtx := declHasContextParam(pass, decl)
	var walk func(n ast.Node, inCtxScope bool)
	walk = func(n ast.Node, inCtxScope bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				scope := inCtxScope || vet.HasContextParam(pass.Info.Types[n].Type.(*types.Signature))
				walk(n.Body, scope)
				return false
			case *ast.CallExpr:
				checkCall(pass, decl, n, inCtxScope)
			}
			return true
		})
	}
	walk(decl.Body, hasCtx)
}

func checkCall(pass *vet.Pass, decl *ast.FuncDecl, call *ast.CallExpr, inCtxScope bool) {
	if isBackgroundOrTODO(pass, call) {
		checkFreshContext(pass, decl, call, inCtxScope)
		return
	}
	if inCtxScope {
		checkDroppedContextVariant(pass, call)
	}
}

// checkFreshContext handles rules 1 and 3 at a context.Background()/TODO()
// call site.
func checkFreshContext(pass *vet.Pass, decl *ast.FuncDecl, call *ast.CallExpr, inCtxScope bool) {
	name := calleeName(call)
	if inCtxScope {
		// Rule 1: the function already holds a context.
		pass.Reportf(call.Pos(), "context.%s() inside a function that receives a context.Context: pass the caller's ctx instead", name)
		return
	}
	if pass.Pkg.Name() == "main" {
		return // binaries and examples are legitimate context roots
	}
	if isConvenienceWrapper(pass, decl, call) {
		return // Search() → SearchContext(context.Background(), …) root
	}
	// Rule 3: a fresh root in library code needs an explicit allowlist.
	pass.Reportf(call.Pos(), "context.%s() in library code: thread a caller context, or allowlist this root with //lint:ignore ctxflow <reason>", name)
}

// checkDroppedContextVariant is rule 2: flag x.F(…) when the enclosing
// function holds a ctx and x also offers FContext(ctx, …).
func checkDroppedContextVariant(pass *vet.Pass, call *ast.CallExpr) {
	callee := vet.CalleeFunc(pass.Info, call)
	if callee == nil || vet.HasContextParam(callee.Type().(*types.Signature)) {
		return
	}
	sibling := contextSibling(pass, callee)
	if sibling == nil {
		return
	}
	pass.Reportf(call.Pos(), "calling %s while holding a ctx: use %s so cancellation propagates", callee.Name(), sibling.Name())
}

// contextSibling finds a <Name>Context counterpart of fn — a method on the
// same receiver type or a function in the same package — whose first
// parameter is a context.Context.
func contextSibling(pass *vet.Pass, fn *types.Func) *types.Func {
	want := fn.Name() + "Context"
	sig := fn.Type().(*types.Signature)
	var obj types.Object
	if recv := sig.Recv(); recv != nil {
		obj, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), want)
	} else if fn.Pkg() != nil {
		obj = fn.Pkg().Scope().Lookup(want)
	}
	sib, ok := obj.(*types.Func)
	if !ok || !vet.HasContextParam(sib.Type().(*types.Signature)) {
		return nil
	}
	return sib
}

// isConvenienceWrapper reports whether the Background/TODO call is the
// context argument of a call to the enclosing function's own Context
// variant: inside func (t T) Name(…), a call t.Name…Context(context
// .Background(), …) is the documented public no-context form, not a
// threading break.
func isConvenienceWrapper(pass *vet.Pass, decl *ast.FuncDecl, fresh *ast.CallExpr) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		outer, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		for _, arg := range outer.Args {
			if ast.Unparen(arg) != fresh {
				continue
			}
			name := calleeIdent(outer)
			if len(name) > len(decl.Name.Name) &&
				len(name) > len("Context") &&
				name[:len(decl.Name.Name)] == decl.Name.Name &&
				name[len(name)-len("Context"):] == "Context" {
				found = true
			}
		}
		return !found
	})
	return found
}

// isBackgroundOrTODO reports whether call is context.Background() or
// context.TODO().
func isBackgroundOrTODO(pass *vet.Pass, call *ast.CallExpr) bool {
	fn := vet.CalleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return false
	}
	return fn.Name() == "Background" || fn.Name() == "TODO"
}

// declHasContextParam reports whether the declaration's signature takes a
// context.Context anywhere in its parameter list.
func declHasContextParam(pass *vet.Pass, decl *ast.FuncDecl) bool {
	obj, ok := pass.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return false
	}
	params := obj.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		if vet.IsContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// calleeName names the called context constructor for the message.
func calleeName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "Background"
}

// calleeIdent returns the syntactic name of the called function or method.
func calleeIdent(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
