// Package ctxflowtest is the ctxflow golden fixture: a library package
// (rule 3 applies) exercising every rule and every allowance.
package ctxflowtest

import "context"

// Store is a fake engine with a Search/SearchContext method pair.
type Store struct{}

// SearchContext is the context-taking form.
func (s *Store) SearchContext(ctx context.Context, q string) error {
	return ctx.Err()
}

// Search is the documented convenience wrapper: Background feeding the
// function's own Context sibling is allowed.
func (s *Store) Search(q string) error {
	return s.SearchContext(context.Background(), q)
}

// freshInsideCtx severs the caller's cancellation chain (rule 1).
func freshInsideCtx(ctx context.Context, s *Store) error {
	return s.SearchContext(context.Background(), "q") // want "context.Background\\(\\) inside a function that receives a context.Context"
}

// todoInsideCtx: TODO is no better than Background (rule 1).
func todoInsideCtx(ctx context.Context, s *Store) error {
	return s.SearchContext(context.TODO(), "q") // want "context.TODO\\(\\) inside a function that receives a context.Context"
}

// droppedVariant calls the context-less form while holding a ctx (rule 2).
func droppedVariant(ctx context.Context, s *Store) error {
	return s.Search("q") // want "calling Search while holding a ctx: use SearchContext"
}

// threaded passes the ctx on — clean.
func threaded(ctx context.Context, s *Store) error {
	return s.SearchContext(ctx, "q")
}

// litInherits: a closure inside a ctx-holding function holds that ctx too
// (rule 1 through a function literal).
func litInherits(ctx context.Context, s *Store) func() error {
	return func() error {
		return s.SearchContext(context.Background(), "q") // want "context.Background\\(\\) inside a function that receives a context.Context"
	}
}

// libraryRoot mints a fresh root in library code without an allowlist
// (rule 3).
func libraryRoot(s *Store) error {
	return s.SearchContext(context.Background(), "q") // want "context.Background\\(\\) in library code"
}

// allowlistedRoot is the escape hatch: a stated reason suppresses rule 3.
func allowlistedRoot(s *Store) error {
	//lint:ignore ctxflow fixture: deliberate background root with a stated reason
	return s.SearchContext(context.Background(), "q")
}
