// Package statsmerge checks that every registered stats merge/fold site
// handles every exported field of the stats struct it folds — the exact
// bug class PR 5 hit, where core.QueryStats grew Partial/StepsExecuted
// fields and the shard router's sumStats silently dropped them from merged
// answers.
//
// A fold site is a function marked //climber:statsmerge in its doc
// comment. The analyzer takes the function's first parameter (unwrapping
// slices and pointers) as the folded struct type and requires every
// exported field of that struct to be referenced — read or written — in
// the function body. Adding a field to the struct without folding it then
// breaks the build gate instead of shipping a silent zero.
//
// The analyzer also pins the registry itself: the packages listed in
// RequiredSites must each contain at least one marked fold site, so the
// invariant cannot vanish by deleting a marker during a refactor.
package statsmerge

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"climber/internal/analysis/vet"
)

// RequiredSites maps package import paths to the minimum number of
// //climber:statsmerge fold sites each must register: the public Stats
// conversion in the root package and the scatter-gather fold in the shard
// router.
var RequiredSites = map[string]int{
	"climber":                1, // statsOf: core.QueryStats → climber.Stats
	"climber/internal/shard": 1, // sumStats: per-shard climber.Stats → merged
}

// Analyzer is the statsmerge check.
var Analyzer = &vet.Analyzer{
	Name: "statsmerge",
	Doc:  "every exported field of a stats struct must be referenced at every //climber:statsmerge fold site, so new fields cannot be silently dropped from merged answers",
	Run:  run,
}

func run(pass *vet.Pass) error {
	marked := 0
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !vet.HasMarker(fn, "statsmerge") {
				continue
			}
			marked++
			checkFoldSite(pass, fn)
		}
	}
	if min := RequiredSites[pass.Pkg.Path()]; marked < min {
		pass.Reportf(pass.Files[0].Package,
			"package %s must register at least %d //climber:statsmerge fold site(s), found %d",
			pass.Pkg.Path(), min, marked)
	}
	return nil
}

func checkFoldSite(pass *vet.Pass, fn *ast.FuncDecl) {
	obj, ok := pass.Info.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	params := obj.Type().(*types.Signature).Params()
	if params.Len() == 0 {
		pass.Reportf(fn.Pos(), "//climber:statsmerge function %s has no parameters to fold", fn.Name.Name)
		return
	}
	strct, named := foldedStruct(params.At(0).Type())
	if strct == nil {
		pass.Reportf(fn.Pos(), "//climber:statsmerge function %s: first parameter is not a named struct (or slice/pointer of one)", fn.Name.Name)
		return
	}

	want := make(map[string]bool)
	for i := 0; i < strct.NumFields(); i++ {
		if f := strct.Field(i); f.Exported() {
			want[f.Name()] = false
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		if _, tracked := want[field.Name()]; tracked && fieldOf(selection, strct) {
			want[field.Name()] = true
		}
		return true
	})

	var missing []string
	for name, seen := range want {
		if !seen {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(fn.Pos(), "fold site %s does not reference exported field(s) %s of %s: fold them or the merged stats silently drop them",
		fn.Name.Name, strings.Join(missing, ", "), typeName(named))
}

// foldedStruct unwraps slices and pointers around the parameter type and
// returns the underlying struct plus its named type.
func foldedStruct(t types.Type) (*types.Struct, *types.Named) {
	if sl, ok := t.Underlying().(*types.Slice); ok {
		t = sl.Elem()
	}
	named := vet.NamedType(t)
	if named == nil {
		return nil, nil
	}
	strct, _ := named.Underlying().(*types.Struct)
	return strct, named
}

// fieldOf reports whether the selection resolves to a field of the folded
// struct type (rather than an identically named field of something else).
func fieldOf(selection *types.Selection, strct *types.Struct) bool {
	recv := selection.Recv()
	got, _ := foldedStruct(recv)
	return got == strct
}

func typeName(named *types.Named) string {
	if named == nil {
		return "struct"
	}
	if pkg := named.Obj().Pkg(); pkg != nil {
		return fmt.Sprintf("%s.%s", pkg.Name(), named.Obj().Name())
	}
	return named.Obj().Name()
}
