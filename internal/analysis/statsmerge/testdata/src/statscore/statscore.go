// Package statscore stands in for climber/internal/core: it owns the
// engine-side stats struct the fold sites in statsmergetest consume,
// modelling the real core/shard package split.
package statscore

// QueryStats is the engine-side per-query effort report.
type QueryStats struct {
	// Records is the number of series compared with the query.
	Records int
	// Bytes approximates the I/O volume.
	Bytes int64
	// Partial marks a budget-truncated answer — the field PR 5 forgot.
	Partial bool

	// hidden is unexported: fold sites are not required to touch it.
	hidden int
}

// Touch keeps the unexported field deliberate rather than dead.
func (qs *QueryStats) Touch() { qs.hidden++ }
