// Package statsmergereq models a registered fold-site host whose marker
// was deleted in a refactor: the merge logic is still here, unmarked.
package statsmergereq // want "package statsmergereq must register at least 1"

// Stats is a stats struct whose fold below lost its marker.
type Stats struct{ Records int }

func sumStats(stats []Stats) Stats {
	var out Stats
	for _, s := range stats {
		out.Records += s.Records
	}
	return out
}
