// Package statsmergetest is the statsmerge golden fixture. statsOf
// reproduces the PR 5 regression: core.QueryStats grew fields and the
// conversion/fold sites silently dropped them from merged answers.
package statsmergetest

import "statscore"

// Stats is the public-side mirror of statscore.QueryStats.
type Stats struct {
	Records int
	Bytes   int64
	Partial bool
}

// statsOf reproduces the PR 5 bug: Partial is never read, so merged
// answers report complete even when a shard was budget-truncated.
//
//climber:statsmerge
func statsOf(qs statscore.QueryStats) Stats { // want "fold site statsOf does not reference exported field\\(s\\) Partial of statscore.QueryStats"
	return Stats{Records: qs.Records, Bytes: qs.Bytes}
}

// sumStats folds every exported field — the fixed shape.
//
//climber:statsmerge
func sumStats(stats []Stats) Stats {
	var out Stats
	for _, s := range stats {
		out.Records += s.Records
		out.Bytes += s.Bytes
		out.Partial = out.Partial || s.Partial
	}
	return out
}

// noParams has nothing to fold: the marker is a mistake worth flagging.
//
//climber:statsmerge
func noParams() {} // want "has no parameters to fold"

// badParam folds a non-struct: equally a marker mistake.
//
//climber:statsmerge
func badParam(n int) int { return n } // want "first parameter is not a named struct"
