package statsmerge_test

import (
	"testing"

	"climber/internal/analysis/analysistest"
	"climber/internal/analysis/statsmerge"
)

func TestStatsmerge(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), statsmerge.Analyzer, "statsmergetest")
}

// TestRequiredSites registers a fixture package as a mandatory fold-site
// host and checks the analyzer flags it for carrying none — the rule that
// keeps the real registry (climber, climber/internal/shard) from losing
// its markers in a refactor.
func TestRequiredSites(t *testing.T) {
	statsmerge.RequiredSites["statsmergereq"] = 1
	defer delete(statsmerge.RequiredSites, "statsmergereq")
	analysistest.Run(t, analysistest.TestData(), statsmerge.Analyzer, "statsmergereq")
}
