// Package mmapsafetest is the mmapsafe golden fixture: raw scan callbacks
// (func(id int, rec []byte) error) that retain the record slice past the
// callback — field stores, globals, captured variables, aliasing appends,
// composite literals — plus every safe consumption shape the analyzer must
// leave alone (kernels, byte copies, local aliases, the //climber:mmapscan
// blessing, the lint:ignore escape hatch).
package mmapsafetest

// partition mimics the storage.Partition raw scan surface: the analyzer
// matches callbacks by shape, so the fixture needs no real import.
type partition struct{}

func (p *partition) ScanClusterRaw(id int, fn func(id int, rec []byte) error) error {
	return fn(0, make([]byte, 16))
}

// sink is a global a bad callback leaks mapped bytes into.
var sink []byte

// collector holds leaked records for the field-store cases.
type collector struct {
	last []byte
	recs [][]byte
}

// storeGlobal leaks the record slice into a package variable.
func storeGlobal(p *partition) error {
	return p.ScanClusterRaw(0, func(id int, rec []byte) error {
		sink = rec // want "stored in variable \"sink\" declared outside the callback"
		return nil
	})
}

// storeField leaks the record slice into a struct field.
func storeField(p *partition, c *collector) error {
	return p.ScanClusterRaw(0, func(id int, rec []byte) error {
		c.last = rec // want "stored outside the callback frame"
		return nil
	})
}

// storeSubslice leaks a sub-slice, which aliases the same mapping.
func storeSubslice(p *partition, c *collector) error {
	return p.ScanClusterRaw(0, func(id int, rec []byte) error {
		c.last = rec[8:] // want "stored outside the callback frame"
		return nil
	})
}

// storeCaptured leaks through a variable captured from the enclosing
// function — alive long after the scan returns.
func storeCaptured(p *partition) ([]byte, error) {
	var keep []byte
	err := p.ScanClusterRaw(0, func(id int, rec []byte) error {
		keep = rec // want "stored in variable \"keep\" declared outside the callback"
		return nil
	})
	return keep, err
}

// appendAlias retains every record by reference in a [][]byte.
func appendAlias(p *partition, c *collector) error {
	return p.ScanClusterRaw(0, func(id int, rec []byte) error {
		c.recs = append(c.recs, rec) // want "appended by reference"
		return nil
	})
}

// localAliasEscapes taints a local alias and then leaks it.
func localAliasEscapes(p *partition) error {
	return p.ScanClusterRaw(0, func(id int, rec []byte) error {
		tail := rec[4:]
		sink = tail // want "stored in variable \"sink\" declared outside the callback"
		return nil
	})
}

// compositeLeak embeds the record slice in a value that outlives the call.
func compositeLeak(p *partition, out chan<- collector) error {
	return p.ScanClusterRaw(0, func(id int, rec []byte) error {
		out <- collector{last: rec} // want "embedded in a composite literal"
		return nil
	})
}

// namedCallback is a raw callback declared at package level; the shape rule
// still applies.
func namedCallback(id int, rec []byte) error {
	sink = rec // want "stored in variable \"sink\" declared outside the callback"
	return nil
}

// consumeInPlace is the supported idiom: the kernel reads rec during the
// callback and nothing survives it.
func consumeInPlace(p *partition) (float64, error) {
	total := 0.0
	err := p.ScanClusterRaw(0, func(id int, rec []byte) error {
		d := 0.0
		for _, b := range rec {
			d += float64(b)
		}
		total += d
		return nil
	})
	return total, err
}

// copyOut copies the bytes that must outlive the callback — both shapes.
func copyOut(p *partition, c *collector) error {
	return p.ScanClusterRaw(0, func(id int, rec []byte) error {
		buf := make([]byte, len(rec))
		copy(buf, rec)
		c.last = buf
		c.recs = append(c.recs, append([]byte(nil), rec...))
		return nil
	})
}

// localAliasOnly keeps an alias strictly inside the callback — fine.
func localAliasOnly(p *partition) error {
	return p.ScanClusterRaw(0, func(id int, rec []byte) error {
		head := rec[:8]
		_ = head[0]
		return nil
	})
}

// blessedHelper carries the //climber:mmapscan marker: scan infrastructure
// that manages record lifetimes itself is exempt, closures included.
//
//climber:mmapscan
func blessedHelper(p *partition) error {
	return p.ScanClusterRaw(0, func(id int, rec []byte) error {
		sink = rec
		return nil
	})
}

// ignoredSite uses the per-site escape hatch.
func ignoredSite(p *partition) error {
	return p.ScanClusterRaw(0, func(id int, rec []byte) error {
		//lint:ignore mmapsafe fixture demonstrates the escape hatch
		sink = rec
		return nil
	})
}

// notACallback has a different shape; stores of its slice are out of scope.
func notACallback(vals []byte) {
	sink = vals
}
