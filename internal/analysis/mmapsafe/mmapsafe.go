// Package mmapsafe checks the lifetime discipline of the zero-copy scan
// path: the raw record slice a partition scan callback receives
// (storage.Partition.ScanClusterRaw and friends) may alias a memory-mapped
// file, and the mapping is torn down when the partition's last reference is
// released. A callback that retains the slice — stores it in a struct field
// or global, appends it to a slice that outlives the callback, or smuggles
// it out through a captured variable — holds a pointer into memory that
// munmap will pull out from under it: a delayed, data-dependent SIGSEGV the
// race detector cannot see.
//
// The analyzer inspects every function whose shape is a raw scan callback —
// func(id int, rec []byte) error — and flags any statement that lets rec
// (or a sub-slice of it) escape the callback: assignment to a field, index,
// dereference, or a variable declared outside the callback; aliasing append
// (append(list, rec) — append(buf, rec...) copies bytes and is fine); and
// rec inside a composite literal. Copying bytes out (copy, append ...,
// passing rec to a kernel that consumes it in place) is the supported
// idiom.
//
// Helpers that legitimately need to look like they retain — none exist
// today; the blessing is for future scan infrastructure — carry
//
//	//climber:mmapscan
//
// in their doc comment, which exempts the declaration and every function
// literal inside it. The per-site escape hatch is
// //lint:ignore mmapsafe <reason>.
package mmapsafe

import (
	"go/ast"
	"go/types"

	"climber/internal/analysis/vet"
)

// Analyzer is the mmapsafe check.
var Analyzer = &vet.Analyzer{
	Name: "mmapsafe",
	Doc:  "raw scan-callback record slices (func(id int, rec []byte) error) must not outlive the callback: no stores to fields/globals/captured variables, no aliasing append — mapped partition bytes die with the partition reference",
	Run:  run,
}

func run(pass *vet.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if vet.HasMarker(fd, "mmapscan") {
				continue
			}
			// The declaration itself may be a raw scan callback.
			if fd.Body != nil && isRawCallbackType(pass.Info.Defs[fd.Name]) && fd.Recv == nil {
				checkConsumer(pass, fd.Type, fd.Body)
			}
			ast.Inspect(fd, func(n ast.Node) bool {
				fl, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				if tv, ok := pass.Info.Types[fl]; ok && isRawCallbackSig(tv.Type) {
					checkConsumer(pass, fl.Type, fl.Body)
				}
				return true
			})
		}
	}
	return nil
}

// isRawCallbackType reports whether obj is a function of raw-callback shape.
func isRawCallbackType(obj types.Object) bool {
	if obj == nil {
		return false
	}
	return isRawCallbackSig(obj.Type())
}

// isRawCallbackSig matches the raw scan callback shape func(int, []byte)
// error — the contract of ScanClusterRaw/ScanClustersRaw.
func isRawCallbackSig(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		return false
	}
	p0, ok := sig.Params().At(0).Type().Underlying().(*types.Basic)
	if !ok || p0.Kind() != types.Int {
		return false
	}
	p1, ok := sig.Params().At(1).Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := p1.Elem().Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Byte {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// checkConsumer walks one raw-callback body looking for statements that let
// the rec parameter escape.
func checkConsumer(pass *vet.Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	// Resolve the []byte parameter's object; unnamed or blank means the
	// callback cannot retain it.
	params := ft.Params.List
	var recIdent *ast.Ident
	for _, f := range params {
		for _, name := range f.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				if s, ok := obj.Type().Underlying().(*types.Slice); ok {
					if b, ok := s.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
						recIdent = name
					}
				}
			}
		}
	}
	if recIdent == nil || recIdent.Name == "_" {
		return
	}
	tainted := map[types.Object]bool{pass.Info.Defs[recIdent]: true}

	aliases := func(e ast.Expr) bool {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.Ident:
				obj := pass.Info.Uses[x]
				return obj != nil && tainted[obj]
			case *ast.SliceExpr:
				e = x.X
			default:
				return false
			}
		}
	}
	local := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= body.Pos() && obj.Pos() < body.End()
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if len(st.Lhs) != len(st.Rhs) || !aliases(rhs) {
					continue
				}
				switch lhs := ast.Unparen(st.Lhs[i]).(type) {
				case *ast.Ident:
					if lhs.Name == "_" {
						continue
					}
					obj := pass.Info.Defs[lhs]
					if obj == nil {
						obj = pass.Info.Uses[lhs]
					}
					if local(obj) {
						tainted[obj] = true // local alias: keep tracking it
						continue
					}
					pass.Reportf(rhs.Pos(),
						"raw scan record slice stored in variable %q declared outside the callback: the bytes may be unmapped after the scan returns — copy them instead", lhs.Name)
				default:
					pass.Reportf(rhs.Pos(),
						"raw scan record slice stored outside the callback frame: the bytes may be unmapped after the scan returns — copy them instead")
				}
			}
		case *ast.ValueSpec: // var x = rec inside the body: local alias
			for i, v := range st.Values {
				if aliases(v) && i < len(st.Names) {
					if obj := pass.Info.Defs[st.Names[i]]; obj != nil {
						tainted[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			id, ok := ast.Unparen(st.Fun).(*ast.Ident)
			if !ok || id.Name != "append" {
				break
			}
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				// Builtin append: appending rec as an element ([][]byte)
				// retains the alias; append(buf, rec...) copies bytes.
				for i, arg := range st.Args {
					if i == 0 || !aliases(arg) {
						continue
					}
					if st.Ellipsis.IsValid() && i == len(st.Args)-1 {
						continue
					}
					pass.Reportf(arg.Pos(),
						"raw scan record slice appended by reference: the retained bytes may be unmapped after the scan returns — append a copy instead")
				}
			}
		case *ast.CompositeLit:
			for _, el := range st.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if aliases(v) {
					pass.Reportf(v.Pos(),
						"raw scan record slice embedded in a composite literal: the retained bytes may be unmapped after the scan returns — copy them instead")
				}
			}
		}
		return true
	})
}
