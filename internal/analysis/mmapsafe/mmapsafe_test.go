package mmapsafe_test

import (
	"testing"

	"climber/internal/analysis/analysistest"
	"climber/internal/analysis/mmapsafe"
)

func TestMmapsafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), mmapsafe.Analyzer, "mmapsafetest")
}
