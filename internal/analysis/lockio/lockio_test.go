package lockio_test

import (
	"testing"

	"climber/internal/analysis/analysistest"
	"climber/internal/analysis/lockio"
)

func TestLockio(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockio.Analyzer, "lockiotest")
}
