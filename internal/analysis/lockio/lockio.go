// Package lockio checks the lock discipline PR 3 documented for the
// WAL/delta split: a sync.Mutex or sync.RWMutex guards in-memory state
// only, and file I/O (or any other blocking syscall) must never run while
// one is held. A search blocked on a delta read lock must never be waiting
// behind an fsync.
//
// The analysis is intraprocedural and region-based: within a function it
// tracks which mutexes are held after each statement (a `defer Unlock`
// keeps the region open to the function's end, an explicit `Unlock` closes
// it) and flags, inside a held region, direct calls to
//
//   - any method on os.File except Name and Fd,
//   - the file-touching os package functions (Open, Create, ReadFile,
//     Rename, Stat, …),
//   - time.Sleep, and
//   - os/exec command execution (Run, Output, CombinedOutput, Wait).
//
// Code inside a nested function literal is not charged to the enclosing
// region — a goroutine launched under a lock runs after the launcher
// releases it. Calls the analyzer cannot see through (module-internal
// helpers that do I/O) are out of scope by design; the escape hatch for a
// deliberate exception is //lint:ignore lockio <reason>.
package lockio

import (
	"go/ast"
	"go/token"
	"go/types"

	"climber/internal/analysis/vet"
)

// Analyzer is the lockio check.
var Analyzer = &vet.Analyzer{
	Name: "lockio",
	Doc:  "no file I/O or blocking syscall while holding a sync.Mutex/RWMutex: mutexes guard memory, the WAL fsyncs outside them",
	Run:  run,
}

// blockingOsFuncs are package-level os functions that hit the filesystem.
var blockingOsFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Truncate": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Stat": true, "Lstat": true, "Link": true, "Symlink": true,
	"Chmod": true, "Chtimes": true,
}

// fileMethodsAllowed are the os.File methods that do not block.
var fileMethodsAllowed = map[string]bool{"Name": true, "Fd": true}

// execBlockingMethods are os/exec.Cmd methods that run a subprocess.
var execBlockingMethods = map[string]bool{
	"Run": true, "Output": true, "CombinedOutput": true, "Wait": true,
}

func run(pass *vet.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					walkStmts(pass, n.Body.List, map[string]token.Pos{})
				}
				return false
			case *ast.FuncLit:
				walkStmts(pass, n.Body.List, map[string]token.Pos{})
				return false
			}
			return true
		})
	}
	return nil
}

// walkStmts processes a statement list, threading the held-lock set
// through it. Nested blocks inherit a copy: a Lock taken inside a branch
// does not extend past it (an under-approximation that avoids false
// positives on conditional locking), while an Unlock inside a branch —
// the `if err { mu.Unlock(); return }` pattern — leaves the outer region
// held, which is correct for the fall-through path.
func walkStmts(pass *vet.Pass, stmts []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.BlockStmt:
			walkStmts(pass, s.List, copyHeld(held))
			continue
		case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt:
			// Flag I/O in the statement's condition/branches under a copy
			// of the current region.
			inner := copyHeld(held)
			ast.Inspect(stmt, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BlockStmt:
					walkStmts(pass, n.List, copyHeld(inner))
					return false
				case *ast.FuncLit:
					walkStmts(pass, n.Body.List, map[string]token.Pos{})
					return false
				case *ast.CallExpr:
					checkCall(pass, n, inner)
				}
				return true
			})
			continue
		case *ast.GoStmt:
			// A goroutine launched under the lock runs concurrently with
			// the region, not inside it.
			continue
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held to function end — no
			// state change. Other defers are inspected for I/O: they run
			// while the lock is held whenever the region reaches a return.
			if _, _, ok := lockOp(pass, s.Call); ok {
				continue
			}
			inspectForIO(pass, s.Call, held)
			continue
		}

		// Lock-state transitions and I/O checks for plain statements.
		applied := false
		if expr, ok := stmt.(*ast.ExprStmt); ok {
			if call, ok := expr.X.(*ast.CallExpr); ok {
				if root, op, ok := lockOp(pass, call); ok {
					switch op {
					case "Lock", "RLock", "TryLock", "TryRLock":
						held[root] = call.Pos()
					case "Unlock", "RUnlock":
						delete(held, root)
					}
					applied = true
				}
			}
		}
		if !applied {
			inspectForIO(pass, stmt, held)
		}
	}
}

// inspectForIO flags blocking calls in the node while any lock is held,
// skipping nested function literals (they do not run under the region).
func inspectForIO(pass *vet.Pass, node ast.Node, held map[string]token.Pos) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			checkCall(pass, call, held)
		}
		return true
	})
}

func checkCall(pass *vet.Pass, call *ast.CallExpr, held map[string]token.Pos) {
	if len(held) == 0 {
		return
	}
	fn := vet.CalleeFunc(pass.Info, call)
	if fn == nil {
		return
	}
	what := blockingCall(fn)
	if what == "" {
		return
	}
	for root := range held {
		pass.Reportf(call.Pos(), "%s while holding %s: mutexes guard memory only — release the lock before blocking I/O (PR 3 WAL/delta lock discipline)", what, root)
		return // one report per call, naming one held lock
	}
}

// blockingCall classifies fn, returning a human-readable description of
// the blocking operation or "" if it is not one the analyzer tracks.
func blockingCall(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		if vet.IsNamed(recv.Type(), "os", "File") && !fileMethodsAllowed[fn.Name()] {
			return "os.File." + fn.Name()
		}
		if vet.IsNamed(recv.Type(), "os/exec", "Cmd") && execBlockingMethods[fn.Name()] {
			return "exec.Cmd." + fn.Name()
		}
		return ""
	}
	switch pkg.Path() {
	case "os":
		if blockingOsFuncs[fn.Name()] {
			return "os." + fn.Name()
		}
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	}
	return ""
}

// lockOp recognises calls of the form <expr>.Lock() (and friends) on a
// sync.Mutex/RWMutex and returns the printed receiver expression as the
// lock's identity within the function.
func lockOp(pass *vet.Pass, call *ast.CallExpr) (root, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	tv, found := pass.Info.Types[sel.X]
	if !found {
		return "", "", false
	}
	if !vet.IsNamed(tv.Type, "sync", "Mutex") && !vet.IsNamed(tv.Type, "sync", "RWMutex") {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
