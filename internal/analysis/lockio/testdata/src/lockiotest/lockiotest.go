// Package lockiotest is the lockio golden fixture: file I/O and other
// blocking calls under sync.Mutex/RWMutex regions, plus every allowance
// (release-before-I/O, goroutines, the lint:ignore escape hatch).
package lockiotest

import (
	"os"
	"sync"
	"time"
)

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	path string
}

// flushBad writes the file inside the mutex region.
func (s *store) flushBad(data []byte) error {
	s.mu.Lock()
	err := os.WriteFile(s.path, data, 0o644) // want "os.WriteFile while holding s.mu"
	s.mu.Unlock()
	return err
}

// flushGood copies the state out and releases before touching the disk.
func (s *store) flushGood(data []byte) error {
	s.mu.Lock()
	p := s.path
	s.mu.Unlock()
	return os.WriteFile(p, data, 0o644)
}

// deferHeld: a defer Unlock keeps the region open to function end.
func (s *store) deferHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding s.mu"
}

// readHeld: read locks block fsyncs behind them just the same.
func (s *store) readHeld(f *os.File, buf []byte) (int, error) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return f.Read(buf) // want "os.File.Read while holding s.rw"
}

// branchIO: I/O inside a conditional branch still runs under the region.
func (s *store) branchIO(cond bool) {
	s.mu.Lock()
	if cond {
		_, _ = os.Stat(s.path) // want "os.Stat while holding s.mu"
	}
	s.mu.Unlock()
}

// goroutineNotCharged: a goroutine launched under the lock runs after the
// launcher releases it — not part of the region.
func (s *store) goroutineNotCharged() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		_ = os.Remove(s.path)
	}()
}

// memoryOnly never blocks under the lock — clean.
func (s *store) memoryOnly() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.path
}

// allowlisted is the escape hatch for a deliberate exception.
func (s *store) allowlisted() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockio fixture: deliberate I/O under lock with a stated reason
	_, _ = os.Stat(s.path)
}
