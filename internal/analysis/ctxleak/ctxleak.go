// Package ctxleak checks that goroutines launched on a cancellable path
// can actually be cancelled: a goroutine started by a function that holds
// a context.Context must consult it — select on ctx.Done(), check
// ctx.Err(), pass ctx onward — or block on a channel its launcher closes
// or drains on cancel. A scatter/scan goroutine that does neither keeps
// scanning partitions after the client has gone away, which is exactly the
// leak class the ROADMAP's parallel build and hedged-routing work would
// multiply.
//
// The check is syntactic over one function: for each `go func(){…}()`
// launched where a context.Context is in scope (a parameter of the
// enclosing function or an enclosing literal), the goroutine body must
// contain either an expression of type context.Context or a channel
// receive (a select statement, a <-ch unary receive, or a range over a
// channel). Sends do not count — a send blocks forever once the receiver
// has returned. Calls to closures bound to local variables are followed
// one level deep: `go func(){ errs[i] = scanStep(st) }()` is cancellable
// when scanStep is a local closure that checks ctx between cluster scans
// (the executor's concurrent scan shape). `go method()` statements without
// a literal body are out of scope. The escape hatch is
// //lint:ignore ctxleak <reason> on the go statement.
package ctxleak

import (
	"go/ast"
	"go/types"

	"climber/internal/analysis/vet"
)

// Analyzer is the ctxleak check.
var Analyzer = &vet.Analyzer{
	Name: "ctxleak",
	Doc:  "a goroutine launched where a ctx is in scope must select on ctx.Done()/check ctx, or receive from a channel, so cancellation reaches it",
	Run:  run,
}

func run(pass *vet.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			decl, ok := n.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				return true
			}
			walk(pass, decl.Body, funcHasCtx(pass, decl), localClosures(pass, decl.Body))
			return false
		})
	}
	return nil
}

// localClosures maps variables bound to function literals anywhere in the
// declaration (`scanStep := func(…){…}`), so a goroutine that delegates
// its work to a named closure can be credited with that closure's
// cancellation checks.
func localClosures(pass *vet.Pass, body ast.Node) map[*types.Var]*ast.FuncLit {
	out := make(map[*types.Var]*ast.FuncLit)
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
		if !ok {
			return
		}
		if v, ok := pass.Info.ObjectOf(id).(*types.Var); ok {
			out[v] = lit
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i < len(n.Rhs) {
					bind(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i := range n.Names {
				if i < len(n.Values) {
					bind(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// walk descends the body tracking whether a context is in scope, and
// checks every `go` statement with a literal body launched in ctx scope.
func walk(pass *vet.Pass, body ast.Node, ctxInScope bool, closures map[*types.Var]*ast.FuncLit) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			walk(pass, n.Body, ctxInScope || litHasCtx(pass, n), closures)
			return false
		case *ast.GoStmt:
			lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true // `go method()`: no body to inspect
			}
			scope := ctxInScope || litHasCtx(pass, lit) || callPassesCtx(pass, n.Call)
			if scope && !bodyConsultsCancel(pass, lit, closures, make(map[*ast.FuncLit]bool)) {
				pass.Reportf(n.Pos(), "goroutine launched with a ctx in scope neither consults the context nor receives from a channel: it cannot be cancelled")
			}
			walk(pass, lit.Body, scope, closures)
			return false
		}
		return true
	})
}

// bodyConsultsCancel reports whether the literal's body mentions a
// context.Context-typed expression, performs a channel receive, or calls a
// local closure that does.
func bodyConsultsCancel(pass *vet.Pass, lit *ast.FuncLit, closures map[*types.Var]*ast.FuncLit, visited map[*ast.FuncLit]bool) bool {
	if visited[lit] {
		return false
	}
	visited[lit] = true
	ok := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			ok = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				ok = true
			}
		case *ast.RangeStmt:
			if tv, found := pass.Info.Types[n.X]; found {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					ok = true
				}
			}
		case *ast.CallExpr:
			if id, isIdent := ast.Unparen(n.Fun).(*ast.Ident); isIdent {
				if v, isVar := pass.Info.ObjectOf(id).(*types.Var); isVar {
					if target, bound := closures[v]; bound && bodyConsultsCancel(pass, target, closures, visited) {
						ok = true
					}
				}
			}
		case ast.Expr:
			if tv, found := pass.Info.Types[n]; found && vet.IsContextType(tv.Type) {
				ok = true
			}
		}
		return !ok
	})
	return ok
}

// callPassesCtx reports whether the go statement's call hands a context to
// the goroutine as an argument (the `go func(ctx context.Context){…}(ctx)`
// shape).
func callPassesCtx(pass *vet.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, found := pass.Info.Types[arg]; found && vet.IsContextType(tv.Type) {
			return true
		}
	}
	return false
}

func funcHasCtx(pass *vet.Pass, decl *ast.FuncDecl) bool {
	obj, ok := pass.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return false
	}
	return sigHasCtx(obj.Type().(*types.Signature))
}

func litHasCtx(pass *vet.Pass, lit *ast.FuncLit) bool {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	return ok && sigHasCtx(sig)
}

func sigHasCtx(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if vet.IsContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}
