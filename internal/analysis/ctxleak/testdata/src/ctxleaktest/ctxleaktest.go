// Package ctxleaktest is the ctxleak golden fixture: scatter-loop
// goroutines that can and cannot be cancelled.
package ctxleaktest

import (
	"context"
	"sync"
)

func work() {}

// scatterBad launches workers no cancellation can reach.
func scatterBad(ctx context.Context, parts []int) {
	var wg sync.WaitGroup
	for range parts {
		wg.Add(1)
		go func() { // want "goroutine launched with a ctx in scope neither consults the context nor receives from a channel"
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// scatterSelect workers select on ctx.Done() — clean.
func scatterSelect(ctx context.Context, parts []int) {
	done := make(chan struct{})
	defer close(done)
	for range parts {
		go func() {
			select {
			case <-ctx.Done():
			case <-done:
			}
		}()
	}
}

// scatterErrCheck workers consult ctx directly — clean.
func scatterErrCheck(ctx context.Context, parts []int) {
	var wg sync.WaitGroup
	for range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			work()
		}()
	}
	wg.Wait()
}

// scatterClosure delegates to a local closure that checks ctx between
// steps — the executor's concurrent scan shape, credited one level deep.
func scatterClosure(ctx context.Context, parts []int) {
	scan := func(i int) {
		if ctx.Err() != nil {
			return
		}
		work()
	}
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scan(i)
		}()
	}
	wg.Wait()
}

// scatterRecv workers drain a channel the launcher closes on cancel —
// clean (a receive unblocks on close; a send would not).
func scatterRecv(ctx context.Context, jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
			work()
		}
	}()
}

// noCtx has no context in scope: fire-and-forget is the caller's problem.
func noCtx(parts []int) {
	for range parts {
		go func() {
			work()
		}()
	}
}

// allowlisted is the escape hatch for a deliberate detached goroutine.
func allowlisted(ctx context.Context) {
	//lint:ignore ctxleak fixture: fire-and-forget telemetry with a stated reason
	go func() {
		work()
	}()
}
