package ctxleak_test

import (
	"testing"

	"climber/internal/analysis/analysistest"
	"climber/internal/analysis/ctxleak"
)

func TestCtxleak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxleak.Analyzer, "ctxleaktest")
}
