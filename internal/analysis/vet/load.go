package vet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("climber/internal/ingest").
	Path string
	// Dir is the directory holding the sources.
	Dir string
	// GoFiles are the absolute paths of the parsed files.
	GoFiles []string
	// Fset, Files, Pkg, Info are the parse and type-check products shared
	// by every analyzer pass over this package.
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Deps are the import paths of all transitive dependencies.
	Deps []string
	// ExportFile is the build-cache export data for this package ("" for
	// testdata packages, which are only ever type-checked from source).
	ExportFile string
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Deps       []string
	Error      *struct{ Err string }
}

// Load resolves the package patterns (as `go list` would, from dir),
// parses every matched non-standard package, and type-checks it against
// the export data `go list -export` materialised for its dependencies.
// The whole pipeline is offline: it reads only the module tree and the Go
// build cache.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,Deps,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		pkg, err := checkPackage(fset, t.ImportPath, t.Dir, absFiles(t.Dir, t.GoFiles), imp)
		if err != nil {
			return nil, err
		}
		pkg.Deps = t.Deps
		pkg.ExportFile = t.Export
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadTestdata loads the named packages from a GOPATH-style testdata tree
// (root/src/<path>/*.go), the layout x/tools analysistest uses. Imports
// between testdata packages resolve within the tree; all other imports
// resolve through `go list -export` as in Load.
func LoadTestdata(root string, paths []string) ([]*Package, error) {
	// Collect the external (non-testdata) imports of the whole closure
	// first so one `go list` call materialises every export file needed.
	external := make(map[string]bool)
	srcs := make(map[string][]string) // testdata path -> files
	var gather func(path string) error
	gather = func(path string) error {
		if _, done := srcs[path]; done {
			return nil
		}
		dir := filepath.Join(root, "src", filepath.FromSlash(path))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("testdata package %s: %w", path, err)
		}
		var files []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				files = append(files, filepath.Join(dir, e.Name()))
			}
		}
		if len(files) == 0 {
			return fmt.Errorf("testdata package %s: no Go files in %s", path, dir)
		}
		sort.Strings(files)
		srcs[path] = files
		for _, f := range files {
			syntax, err := parser.ParseFile(token.NewFileSet(), f, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, spec := range syntax.Imports {
				ip := strings.Trim(spec.Path.Value, `"`)
				if isTestdataPkg(root, ip) {
					if err := gather(ip); err != nil {
						return err
					}
				} else {
					external[ip] = true
				}
			}
		}
		return nil
	}
	for _, p := range paths {
		if err := gather(p); err != nil {
			return nil, err
		}
	}

	exports := make(map[string]string)
	if len(external) > 0 {
		args := append([]string{
			"list", "-export", "-deps", "-json=ImportPath,Export",
		}, sortedKeys(external)...)
		cmd := exec.Command("go", args...)
		cmd.Dir = root
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list (testdata imports): %v\n%s", err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listPkg
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	fset := token.NewFileSet()
	checked := make(map[string]*Package)
	base := exportImporter(fset, exports)
	var load func(path string) (*Package, error)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if isTestdataPkg(root, path) {
			pkg, err := load(path)
			if err != nil {
				return nil, err
			}
			return pkg.Pkg, nil
		}
		return base.Import(path)
	})
	load = func(path string) (*Package, error) {
		if pkg, ok := checked[path]; ok {
			return pkg, nil
		}
		dir := filepath.Join(root, "src", filepath.FromSlash(path))
		pkg, err := checkPackage(fset, path, dir, srcs[path], imp)
		if err != nil {
			return nil, err
		}
		checked[path] = pkg
		return pkg, nil
	}

	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses files and type-checks them as one package.
func checkPackage(fset *token.FileSet, path, dir string, files []string, imp types.Importer) (*Package, error) {
	asts := make([]*ast.File, 0, len(files))
	for _, f := range files {
		syntax, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, syntax)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	return &Package{
		Path:    path,
		Dir:     dir,
		GoFiles: files,
		Fset:    fset,
		Files:   asts,
		Pkg:     tpkg,
		Info:    info,
	}, nil
}

// exportImporter returns an importer that resolves import paths through
// the export files go list reported.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

// Import implements types.Importer.
func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// isTestdataPkg reports whether the import path resolves inside the
// testdata tree.
func isTestdataPkg(root, path string) bool {
	fi, err := os.Stat(filepath.Join(root, "src", filepath.FromSlash(path)))
	return err == nil && fi.IsDir()
}

func absFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
