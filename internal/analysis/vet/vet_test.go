package vet_test

import (
	"testing"

	"climber/internal/analysis/vet"
)

// TestLoadOffline loads and type-checks a real module package through the
// export-data importer — the offline pipeline every analyzer and the
// climber-vet command sit on.
func TestLoadOffline(t *testing.T) {
	pkgs, err := vet.Load(".", []string{"climber/internal/analysis/vet"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Pkg.Name() != "vet" {
		t.Fatalf("package name = %q, want vet", p.Pkg.Name())
	}
	if len(p.Files) == 0 || len(p.Info.Defs) == 0 {
		t.Fatal("loaded package has no parsed files or type info")
	}
	if len(p.Deps) == 0 {
		t.Fatal("loaded package reports no dependencies")
	}
}

// TestLoadBadPattern surfaces go list errors instead of analysing nothing.
func TestLoadBadPattern(t *testing.T) {
	if _, err := vet.Load(".", []string{"climber/internal/analysis/doesnotexist"}); err == nil {
		t.Fatal("expected an error for a nonexistent package pattern")
	}
}
