// Package vet is the repository's static-analysis framework: a small,
// dependency-free re-creation of the golang.org/x/tools/go/analysis model
// (Analyzer, Pass, Diagnostic) built directly on go/ast and go/types, plus
// a package loader that type-checks the module offline via the export data
// `go list -export` materialises in the build cache.
//
// The framework exists because the repository's invariants — fsync before
// ack, no I/O under a mutex, contexts threaded end to end, every stats
// field folded at every merge site — were each enforced only by review
// until a PR broke one. The analyzers under internal/analysis/... encode
// them as machine-checked properties; cmd/climber-vet is the multichecker
// that runs the whole suite, and CI fails on any finding.
//
// Two comment directives tie the source to the analyzers:
//
//	//lint:ignore <analyzer> <reason>
//	    suppresses that analyzer's diagnostics on the same or the next
//	    line — the explicit, reviewable escape hatch for allowlisted sites.
//	//climber:<marker>
//	    in a function's doc comment, marks the function for an analyzer:
//	    //climber:ack (syncack: every successful return must be dominated
//	    by a Sync) and //climber:statsmerge (statsmerge: every exported
//	    field of the folded stats struct must be referenced).
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. It mirrors the x/tools
// analysis.Analyzer surface the suite would use if the dependency were
// available: a unique name (also the //lint:ignore key), a doc string, and
// a Run function invoked once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer in output lines and ignore directives.
	Name string
	// Doc is the one-paragraph description printed by climber-vet -help.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions of Files back to file/line/column.
	Fset *token.FileSet
	// Files is the package's parsed syntax (non-test files).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's facts for Files.
	Info *types.Info

	diags []Diagnostic
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the check that produced it.
	Analyzer string
	// Message states the violated invariant at this site.
	Message string
}

// String formats the diagnostic the way climber-vet prints it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzers applies every analyzer to every package, filters the
// findings through the packages' //lint:ignore directives, and returns the
// survivors sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		ignores := ignoreIndex(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if ignores.suppressed(d) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// ignoreDirectives maps file → line → analyzer names ignored at that line.
type ignoreDirectives map[string]map[int][]string

func ignoreIndex(pkg *Package) ignoreDirectives {
	idx := make(ignoreDirectives)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 3 {
					continue // lint:ignore requires an analyzer and a reason
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], fields[1])
			}
		}
	}
	return idx
}

// suppressed reports whether a //lint:ignore directive for the
// diagnostic's analyzer sits on the same line or the line above it.
func (idx ignoreDirectives) suppressed(d Diagnostic) bool {
	byLine := idx[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range byLine[line] {
			if name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// HasMarker reports whether the function declaration's doc comment carries
// the given //climber:<marker> directive line.
func HasMarker(decl *ast.FuncDecl, marker string) bool {
	if decl.Doc == nil {
		return false
	}
	want := "//climber:" + marker
	for _, c := range decl.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// HasContextParam reports whether the signature's first parameter is a
// context.Context.
func HasContextParam(sig *types.Signature) bool {
	return sig.Params().Len() > 0 && IsContextType(sig.Params().At(0).Type())
}

// NamedType unwraps pointers and returns the named type behind t, or nil.
func NamedType(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// IsNamed reports whether t (possibly behind a pointer) is the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	named := NamedType(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for calls of function values,
// builtins, and type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
