package trie

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"climber/internal/pivot"
)

// A scenario mirroring the paper's Figure 5: group G3 holds 5,250 objects
// with capacity 3,000. Splitting on the 1st pivot gives a child "6" with
// 3,700 objects (over capacity, splits again on the 2nd pivot) and smaller
// children that become leaves.
func TestBuildFigure5Shape(t *testing.T) {
	entries := []Entry{
		{Sig: pivot.Signature{6, 2, 1}, Count: 1500},
		{Sig: pivot.Signature{6, 5, 3}, Count: 1400},
		{Sig: pivot.Signature{6, 1, 4}, Count: 800},
		{Sig: pivot.Signature{4, 6, 7}, Count: 900},
		{Sig: pivot.Signature{7, 6, 4}, Count: 650},
	}
	root, err := Build(entries, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if root.Count != 5250 {
		t.Fatalf("root count = %d, want 5250", root.Count)
	}
	if len(root.Children) != 3 {
		t.Fatalf("root fanout = %d, want 3 (pivots 4, 6, 7)", len(root.Children))
	}
	n6 := root.Child(6)
	if n6 == nil || n6.Count != 3700 {
		t.Fatalf("child 6 = %+v, want count 3700", n6)
	}
	if n6.IsLeaf() {
		t.Fatal("child 6 exceeds capacity and must split")
	}
	if len(n6.Children) != 3 {
		t.Fatalf("child 6 fanout = %d, want 3 (pivots 1, 2, 5)", len(n6.Children))
	}
	n4 := root.Child(4)
	if n4 == nil || !n4.IsLeaf() || n4.Count != 900 {
		t.Fatalf("child 4 should be a 900-object leaf, got %+v", n4)
	}
	// Trie nodes may carry pivots absent from the group centroid — that is
	// acceptable per Section IV-D.
	if root.Child(7) == nil {
		t.Fatal("child 7 missing")
	}
}

func TestBuildSmallGroupIsSingleLeaf(t *testing.T) {
	entries := []Entry{
		{Sig: pivot.Signature{1, 2, 3}, Count: 10},
		{Sig: pivot.Signature{4, 5, 6}, Count: 20},
	}
	root, err := Build(entries, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !root.IsLeaf() {
		t.Fatal("group under capacity must stay a single leaf (Definition 12)")
	}
	if root.Count != 30 {
		t.Fatalf("count = %d, want 30", root.Count)
	}
}

// Definition 12 invariants: partitions are disjoint and cover the group.
// For the trie this means every leaf's count sums to the root count and
// signatures route to exactly one leaf.
func TestBuildCoverageInvariant(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 3))
	for trial := 0; trial < 30; trial++ {
		var entries []Entry
		seen := map[string]bool{}
		n := 20 + rng.IntN(100)
		for i := 0; i < n; i++ {
			sig := pivot.Signature{rng.IntN(5), 5 + rng.IntN(5), 10 + rng.IntN(5)}
			if seen[sig.Key()] {
				continue
			}
			seen[sig.Key()] = true
			entries = append(entries, Entry{Sig: sig, Count: 1 + rng.IntN(50)})
		}
		capacity := 20 + rng.IntN(100)
		root, err := Build(entries, capacity)
		if err != nil {
			t.Fatal(err)
		}
		var leafSum int
		for _, l := range root.Leaves() {
			leafSum += l.Count
		}
		if leafSum != root.Count {
			t.Fatalf("leaf counts sum to %d, root count %d", leafSum, root.Count)
		}
		// Internal node counts equal the sum of their children.
		for _, nd := range root.Nodes() {
			if nd.IsLeaf() {
				continue
			}
			var s int
			for _, c := range nd.Children {
				s += c.Count
			}
			if s != nd.Count {
				t.Fatalf("internal node %d count %d != children sum %d", nd.ID, nd.Count, s)
			}
		}
		// Every entry routes to exactly one leaf, and that leaf's depth
		// prefix matches the signature.
		for _, e := range entries {
			leaf := root.DescendToLeaf(e.Sig)
			if leaf == nil {
				t.Fatalf("entry %v does not reach a leaf in its own trie", e.Sig)
			}
		}
	}
}

func TestLeafCapacityRespected(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	var entries []Entry
	for i := 0; i < 200; i++ {
		entries = append(entries, Entry{
			Sig:   pivot.Signature{rng.IntN(8), rng.IntN(8), rng.IntN(8), rng.IntN(8)},
			Count: 1,
		})
	}
	root, err := Build(entries, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range root.Leaves() {
		// A leaf may exceed capacity only when the prefix is exhausted
		// (identical signatures can't split further).
		if l.Count > 10 && l.Depth < 4 {
			t.Fatalf("splittable leaf at depth %d holds %d > capacity 10", l.Depth, l.Count)
		}
	}
}

func TestDescend(t *testing.T) {
	entries := []Entry{
		{Sig: pivot.Signature{6, 2, 1}, Count: 1500},
		{Sig: pivot.Signature{6, 5, 3}, Count: 1400},
		{Sig: pivot.Signature{6, 1, 4}, Count: 800},
		{Sig: pivot.Signature{4, 6, 7}, Count: 900},
	}
	root, err := Build(entries, 3000)
	if err != nil {
		t.Fatal(err)
	}
	// Splitting stops once the depth-2 children fit in the capacity, so the
	// walk for <6,2,1> ends at the depth-2 leaf labelled pivot 2.
	node, depth := root.Descend(pivot.Signature{6, 2, 1})
	if depth != 2 || !node.IsLeaf() || node.Pivot != 2 {
		t.Fatalf("Descend: depth %d pivot %d leaf %v, want 2, 2, true", depth, node.Pivot, node.IsLeaf())
	}
	// Partial match: pivot 6 exists, but child 9 does not.
	node, depth = root.Descend(pivot.Signature{6, 9, 9})
	if depth != 1 || node.Pivot != 6 {
		t.Fatalf("partial Descend: depth %d node pivot %d, want 1, 6", depth, node.Pivot)
	}
	// No match at all: stay at root.
	node, depth = root.Descend(pivot.Signature{9, 9, 9})
	if depth != 0 || node != root {
		t.Fatalf("unmatched Descend should return the root at depth 0")
	}
	// DescendToLeaf on a partial path must return nil.
	if leaf := root.DescendToLeaf(pivot.Signature{6, 9, 9}); leaf != nil {
		t.Fatalf("DescendToLeaf on partial path = %+v, want nil", leaf)
	}
}

func TestEnumerateIDsAreDFSPreorder(t *testing.T) {
	entries := []Entry{
		{Sig: pivot.Signature{1, 2}, Count: 50},
		{Sig: pivot.Signature{1, 3}, Count: 50},
		{Sig: pivot.Signature{2, 4}, Count: 50},
	}
	root, err := Build(entries, 60)
	if err != nil {
		t.Fatal(err)
	}
	nodes := root.Nodes()
	for i, nd := range nodes {
		if nd.ID != i {
			t.Fatalf("node at preorder position %d has ID %d", i, nd.ID)
		}
	}
}

func TestPropagatePartitions(t *testing.T) {
	entries := []Entry{
		{Sig: pivot.Signature{1, 2}, Count: 50},
		{Sig: pivot.Signature{1, 3}, Count: 50},
		{Sig: pivot.Signature{2, 4}, Count: 50},
	}
	root, err := Build(entries, 60)
	if err != nil {
		t.Fatal(err)
	}
	leaves := root.Leaves()
	if len(leaves) != 3 {
		t.Fatalf("got %d leaves, want 3", len(leaves))
	}
	leaves[0].Partitions = []int{7}
	leaves[1].Partitions = []int{7}
	leaves[2].Partitions = []int{8}
	root.PropagatePartitions()
	if got := root.Partitions; len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("root partitions = %v, want [7 8]", got)
	}
	n1 := root.Child(1)
	if got := n1.Partitions; len(got) != 1 || got[0] != 7 {
		t.Fatalf("internal node partitions = %v, want [7]", got)
	}
}

func TestLeafIDsUnder(t *testing.T) {
	entries := []Entry{
		{Sig: pivot.Signature{1, 2}, Count: 50},
		{Sig: pivot.Signature{1, 3}, Count: 50},
		{Sig: pivot.Signature{2, 4}, Count: 50},
	}
	root, err := Build(entries, 60)
	if err != nil {
		t.Fatal(err)
	}
	all := root.LeafIDsUnder()
	if len(all) != 3 {
		t.Fatalf("root covers %d leaves, want 3", len(all))
	}
	n1 := root.Child(1)
	under := n1.LeafIDsUnder()
	if len(under) != 2 {
		t.Fatalf("subtree covers %d leaves, want 2", len(under))
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]Entry{{Sig: pivot.Signature{1}, Count: 1}}, 0); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := Build([]Entry{{Sig: pivot.Signature{1}, Count: -1}}, 5); err == nil {
		t.Error("negative count should fail")
	}
	if _, err := Build([]Entry{
		{Sig: pivot.Signature{1}, Count: 1},
		{Sig: pivot.Signature{1, 2}, Count: 1},
	}, 5); err == nil {
		t.Error("mixed signature lengths should fail")
	}
}

func TestBuildEmptyEntries(t *testing.T) {
	root, err := Build(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !root.IsLeaf() || root.Count != 0 {
		t.Fatalf("empty trie: %+v", root)
	}
}

// Property (testing/quick): for arbitrary signature multisets, the built
// trie routes every member signature to a leaf whose root path is a prefix
// of the signature, and the leaf counts partition the total.
func TestBuildRoutingProperty(t *testing.T) {
	f := func(raw [][3]uint8, capSeed uint8) bool {
		if len(raw) == 0 {
			return true
		}
		capacity := 1 + int(capSeed)%64
		seen := map[string]bool{}
		var entries []Entry
		for _, r := range raw {
			sig := pivot.Signature{int(r[0]) % 6, int(r[1]) % 6, int(r[2]) % 6}
			if seen[sig.Key()] {
				continue
			}
			seen[sig.Key()] = true
			entries = append(entries, Entry{Sig: sig, Count: 1 + int(r[0])%10})
		}
		root, err := Build(entries, capacity)
		if err != nil {
			return false
		}
		var leafSum int
		for _, l := range root.Leaves() {
			leafSum += l.Count
		}
		if leafSum != root.Count {
			return false
		}
		for _, e := range entries {
			node, pathLen := root.Descend(e.Sig)
			if node == nil || pathLen < 0 || pathLen > len(e.Sig) {
				return false
			}
			// The walk must at least reach a node containing the entry's
			// count (its own subtree).
			if node.Count < e.Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Identical signatures cannot split: the trie must terminate with a chain
// ending in an oversized leaf rather than recurse forever.
func TestBuildIdenticalSignaturesTerminate(t *testing.T) {
	entries := []Entry{{Sig: pivot.Signature{3, 1, 4}, Count: 1000}}
	root, err := Build(entries, 10)
	if err != nil {
		t.Fatal(err)
	}
	leaves := root.Leaves()
	if len(leaves) != 1 {
		t.Fatalf("got %d leaves, want 1", len(leaves))
	}
	if leaves[0].Count != 1000 {
		t.Fatalf("leaf count = %d, want 1000", leaves[0].Count)
	}
	if leaves[0].Depth != 3 {
		t.Fatalf("chain should extend to the full prefix; leaf depth = %d", leaves[0].Depth)
	}
}
