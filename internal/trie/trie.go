// Package trie implements the trie-based Voronoi splitting of data-series
// groups into partitions (paper Section IV-D, Definition 12, Figure 5).
//
// A group whose estimated size exceeds the storage capacity c is split by
// distributing its members on the 1st pivot of their rank-sensitive P4→
// signatures; any child still larger than c recursively splits on the next
// signature position, until every leaf holds fewer than c objects (or the
// prefix is exhausted). Each leaf's root-to-leaf path spells the pivot
// prefix shared by its members, so leaves are Voronoi-aligned fragments of
// the pivot space. Leaves are later packed into physical partitions (see
// package packing); each node — leaf or internal — is labelled with the
// partition IDs covering its subtree.
package trie

import (
	"fmt"
	"sort"

	"climber/internal/pivot"
)

// Entry is one aggregated signature with its (possibly sample-scaled)
// occurrence count — the unit of trie construction during index building
// (paper Figure 6, Step 3).
type Entry struct {
	Sig   pivot.Signature // rank-sensitive P4→ signature
	Count int
}

// Node is a trie node. The edge from the parent is labelled with Pivot (the
// pivot ID at position Depth-1 of member signatures); the root has Pivot -1
// and Depth 0.
type Node struct {
	ID       int     // unique within the tree, assigned in DFS preorder
	Pivot    int     // edge label from parent; -1 for the root
	Depth    int     // root = 0
	Count    int     // number of member objects in the subtree
	Children []*Node // sorted by Pivot for deterministic traversal

	// Partitions holds the IDs of the physical partitions covering this
	// subtree: exactly one for a leaf, the union of the children's for an
	// internal node (paper Figure 5, labels β6/β7).
	Partitions []int
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Child returns the child reached by the given pivot edge, or nil.
func (n *Node) Child(pivotID int) *Node {
	// Children are sorted by Pivot; binary search keeps deep tries cheap.
	lo, hi := 0, len(n.Children)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case n.Children[mid].Pivot == pivotID:
			return n.Children[mid]
		case n.Children[mid].Pivot < pivotID:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return nil
}

// Build constructs the trie for one group from its aggregated signatures.
// Splitting follows Definition 12: a node splits while its count exceeds
// capacity and signature positions remain. The returned root always exists;
// a group that fits in one partition yields a childless root.
func Build(entries []Entry, capacity int) (*Node, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("trie: capacity must be positive, got %d", capacity)
	}
	total := 0
	prefixLen := -1
	for _, e := range entries {
		if e.Count < 0 {
			return nil, fmt.Errorf("trie: negative count %d for signature %v", e.Count, e.Sig)
		}
		if prefixLen == -1 {
			prefixLen = len(e.Sig)
		} else if len(e.Sig) != prefixLen {
			return nil, fmt.Errorf("trie: mixed signature lengths %d and %d", prefixLen, len(e.Sig))
		}
		total += e.Count
	}
	root := &Node{Pivot: -1, Depth: 0, Count: total}
	split(root, entries, capacity)
	enumerate(root)
	return root, nil
}

// split recursively distributes entries below node n on signature position
// n.Depth.
func split(n *Node, entries []Entry, capacity int) {
	if n.Count <= capacity {
		return // small enough: leaf
	}
	if len(entries) == 0 || n.Depth >= len(entries[0].Sig) {
		return // prefix exhausted: unsplittable (possibly oversized) leaf
	}
	byPivot := make(map[int][]Entry)
	for _, e := range entries {
		p := e.Sig[n.Depth]
		byPivot[p] = append(byPivot[p], e)
	}
	// Even when all members share the next pivot (a single-child chain),
	// we descend: deeper positions may still discriminate, and the depth
	// bound above guarantees termination at the prefix length.
	pivots := make([]int, 0, len(byPivot))
	for p := range byPivot {
		pivots = append(pivots, p)
	}
	sort.Ints(pivots)
	for _, p := range pivots {
		group := byPivot[p]
		cnt := 0
		for _, e := range group {
			cnt += e.Count
		}
		child := &Node{Pivot: p, Depth: n.Depth + 1, Count: cnt}
		split(child, group, capacity)
		n.Children = append(n.Children, child)
	}
}

// enumerate assigns DFS-preorder IDs.
func enumerate(root *Node) {
	id := 0
	var walk func(*Node)
	walk = func(n *Node) {
		n.ID = id
		id++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
}

// Descend follows the rank-sensitive signature from the root as deep as
// matching children exist and returns the deepest node reached together
// with the matched path length (paper Algorithm 3, Lines 10-13). A root
// with no matching child yields (root, 0).
func (n *Node) Descend(sig pivot.Signature) (node *Node, pathLen int) {
	cur := n
	for depth := 0; depth < len(sig); depth++ {
		next := cur.Child(sig[depth])
		if next == nil {
			return cur, depth
		}
		cur = next
	}
	return cur, len(sig)
}

// DescendToLeaf follows the signature and returns the leaf reached, or nil
// if the walk stops at an internal node (the "cannot navigate a complete
// root-to-leaf path" case of Section V Step 3, which routes the record to
// the group's default partition).
func (n *Node) DescendToLeaf(sig pivot.Signature) *Node {
	node, _ := n.Descend(sig)
	if node.IsLeaf() {
		return node
	}
	return nil
}

// Leaves returns the leaf nodes in DFS preorder.
func (n *Node) Leaves() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(nd *Node) {
		if nd.IsLeaf() {
			out = append(out, nd)
			return
		}
		for _, c := range nd.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// Nodes returns every node in DFS preorder (index == Node.ID).
func (n *Node) Nodes() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(nd *Node) {
		out = append(out, nd)
		for _, c := range nd.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// PropagatePartitions recomputes every internal node's partition label as
// the sorted union of its children's labels, assuming leaves have already
// been assigned their partition IDs by the packer.
func (n *Node) PropagatePartitions() {
	var walk func(*Node) []int
	walk = func(nd *Node) []int {
		if nd.IsLeaf() {
			return nd.Partitions
		}
		set := make(map[int]struct{})
		for _, c := range nd.Children {
			for _, p := range walk(c) {
				set[p] = struct{}{}
			}
		}
		union := make([]int, 0, len(set))
		for p := range set {
			union = append(union, p)
		}
		sort.Ints(union)
		nd.Partitions = union
		return union
	}
	walk(n)
}

// LeafIDsUnder returns the IDs of all leaf nodes in the subtree rooted at n,
// in DFS preorder. At query time these identify the record clusters to scan
// inside the selected partitions.
func (n *Node) LeafIDsUnder() []int {
	leaves := n.Leaves()
	ids := make([]int, len(leaves))
	for i, l := range leaves {
		ids[i] = l.ID
	}
	return ids
}
