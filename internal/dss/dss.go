// Package dss implements the Distributed Sequential Scan baseline of the
// paper's evaluation (Section VII-A): "the vanilla full scan solution that
// scans all data partitions in parallel to generate the exact answer set
// (i.e., the ground truth) for the kNN queries".
//
// Dss is exact (recall 1.0) but touches every block, so its query time is
// the upper bound every approximate technique is measured against.
package dss

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"climber/internal/cluster"
	"climber/internal/series"
)

// Search scans every block of the raw dataset in parallel and returns the
// exact k nearest neighbours of q by Euclidean distance, ascending.
func Search(cl *cluster.Cluster, bs *cluster.BlockSet, q []float64, k int) ([]series.Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("dss: k must be positive, got %d", k)
	}
	if len(q) != bs.SeriesLen {
		return nil, fmt.Errorf("dss: query length %d, dataset stores %d", len(q), bs.SeriesLen)
	}

	top := series.NewTopK(k)
	var mu sync.Mutex
	// boundBits caches the current admission threshold so workers can
	// early-abandon without taking the lock; math.Inf while the heap is not
	// yet full.
	var boundBits atomic.Uint64
	boundBits.Store(math.Float64bits(math.Inf(1)))

	err := cl.ScanBlocks(bs.Paths, func(id int, values []float64) error {
		bound := math.Float64frombits(boundBits.Load())
		d := series.SqDistEarlyAbandon(q, values, bound)
		if d >= bound {
			return nil
		}
		mu.Lock()
		top.Push(id, d)
		if b, ok := top.Bound(); ok {
			boundBits.Store(math.Float64bits(b))
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return finish(top), nil
}

// SearchDataset returns the exact kNN over an in-memory dataset — the
// ground-truth oracle used by tests and by experiments that pre-compute
// exact answers once per query workload.
func SearchDataset(ds *series.Dataset, q []float64, k int) []series.Result {
	top := series.NewTopK(k)
	for id := 0; id < ds.Len(); id++ {
		if bound, ok := top.Bound(); ok {
			d := series.SqDistEarlyAbandon(q, ds.Get(id), bound)
			if d < bound {
				top.Push(id, d)
			}
			continue
		}
		top.Push(id, series.SqDist(q, ds.Get(id)))
	}
	return finish(top)
}

// SearchDatasetPrefix is the exact oracle for queries shorter than the
// stored series: distances are evaluated over the first len(q) readings of
// every record (the prefix-query semantics of core.SearchPrefix).
func SearchDatasetPrefix(ds *series.Dataset, q []float64, k int) []series.Result {
	top := series.NewTopK(k)
	for id := 0; id < ds.Len(); id++ {
		prefix := ds.Get(id)[:len(q)]
		if bound, ok := top.Bound(); ok {
			d := series.SqDistEarlyAbandon(q, prefix, bound)
			if d < bound {
				top.Push(id, d)
			}
			continue
		}
		top.Push(id, series.SqDist(q, prefix))
	}
	return finish(top)
}

// finish converts a squared-distance accumulator into sorted plain-distance
// results.
func finish(top *series.TopK) []series.Result {
	res := top.Results()
	for i := range res {
		res[i].Dist = math.Sqrt(res[i].Dist)
	}
	return res
}
