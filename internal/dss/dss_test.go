package dss

import (
	"testing"

	"climber/internal/cluster"
	"climber/internal/dataset"
	"climber/internal/series"
)

func TestSearchDatasetExact(t *testing.T) {
	ds := dataset.RandomWalk(32, 500, 3)
	q := ds.Get(42)
	res := SearchDataset(ds, q, 5)
	if len(res) != 5 {
		t.Fatalf("got %d results, want 5", len(res))
	}
	if res[0].ID != 42 || res[0].Dist != 0 {
		t.Fatalf("self query should rank itself first: %+v", res[0])
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("results not ascending")
		}
	}
}

// The distributed scan must agree with the in-memory oracle (modulo float32
// storage precision affecting distance values, not identities).
func TestSearchMatchesOracle(t *testing.T) {
	ds := dataset.RandomWalk(32, 1000, 3)
	cl, err := cluster.New(cluster.Config{NumNodes: 2, WorkersPerNode: 2, BaseDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := cl.IngestBlocks(ds, 200, "dss")
	if err != nil {
		t.Fatal(err)
	}
	_, qs := dataset.Queries(ds, 5, 7)
	for qi, q := range qs {
		got, err := Search(cl, bs, q, 20)
		if err != nil {
			t.Fatal(err)
		}
		want := SearchDataset(ds, q, 20)
		if series.Recall(got, want) < 0.95 {
			t.Fatalf("query %d: distributed scan diverges from oracle beyond float32 tolerance", qi)
		}
	}
}

func TestSearchValidation(t *testing.T) {
	ds := dataset.RandomWalk(32, 100, 3)
	cl, err := cluster.New(cluster.Config{NumNodes: 1, WorkersPerNode: 1, BaseDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := cl.IngestBlocks(ds, 50, "dss")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Search(cl, bs, ds.Get(0), 0); err == nil {
		t.Error("k = 0 should fail")
	}
	if _, err := Search(cl, bs, make([]float64, 3), 5); err == nil {
		t.Error("wrong query length should fail")
	}
}

func TestSearchKLargerThanDataset(t *testing.T) {
	ds := dataset.RandomWalk(32, 10, 3)
	res := SearchDataset(ds, ds.Get(0), 50)
	if len(res) != 10 {
		t.Fatalf("got %d results, want the whole dataset (10)", len(res))
	}
}
