package core

import (
	"context"

	"climber/internal/series"
)

// Snapshot is one progressive answer emitted during SearchProgressive: the
// best top-k assembled after a plan step. Snapshots are monotonically
// non-worsening — each one's result set is at least as large and its k-th
// distance at least as small as the previous one's, because the underlying
// accumulator only ever improves (the ProS observation: progressive kNN
// answers converge toward the final result as more data is touched).
type Snapshot struct {
	// Results are the current approximate nearest neighbours, true
	// (non-squared) Euclidean distances, ascending.
	Results []series.Result
	// Step counts the plan steps executed so far; StepsPlanned is the
	// plan's total, so Step/StepsPlanned is the coverage fraction.
	Step, StepsPlanned int
	// Final marks the last snapshot: its Results are exactly the query's
	// result set, including any delta-merged in-memory records.
	Final bool
	// Stats is the effort accumulated so far.
	Stats QueryStats
}

// SearchProgressive answers a kNN query like SearchContext, additionally
// emitting a Snapshot to sink after every executed plan step (and a final
// one when the answer is complete). sink returning false stops the query
// early: the returned result is the best answer so far, marked partial
// with BudgetCallback. Combined with SearchOptions.Budget this is the
// anytime serving mode: first answers arrive after one partition, refine
// step by step, and stop exactly when the consumer or the budget says so.
//
// Progressive execution runs plan steps sequentially in rank order (so
// each snapshot reflects the most promising unscanned partition), trading
// the run-to-completion path's partition parallelism for step-boundary
// control. sink is called synchronously on the query's goroutine and must
// not block for long.
func (ix *Index) SearchProgressive(ctx context.Context, q []float64, opts SearchOptions, sink func(Snapshot) bool) (*SearchResult, error) {
	return ix.search(ctx, q, opts, sink)
}

// SearchPrefixProgressive is SearchProgressive for queries shorter than
// the indexed length (see SearchPrefix), with identical snapshot and
// budget semantics.
func (ix *Index) SearchPrefixProgressive(ctx context.Context, q []float64, opts SearchOptions, sink func(Snapshot) bool) (*SearchResult, error) {
	return ix.searchPrefix(ctx, q, opts, sink)
}
