package core

// This file freezes the pre-refactor monolithic search path — the single
// 600-line SearchContext that interleaved plan construction, partition
// traversal, widening, and delta merging before it was decomposed into the
// planner (plan.go) and executor (exec.go). It exists solely as the
// reference oracle for TestEngineMatchesLegacyBitForBit: the staged engine
// must return bit-for-bit identical (distance, ID) answers for every
// variant and for prefix queries. Do not "fix" or modernise this code; its
// value is that it does not change.

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"climber/internal/paa"
	"climber/internal/pivot"
	"climber/internal/series"
	"climber/internal/storage"
	"climber/internal/trie"
)

// legacyPlan maps a partition ID to the record clusters to scan inside it;
// a nil cluster set means "scan the whole partition".
type legacyPlan map[int]map[storage.ClusterID]struct{}

// legacySearchContext is the pre-refactor SearchContext, verbatim modulo
// renames.
func legacySearchContext(ctx context.Context, ix *Index, q []float64, opts SearchOptions) (*SearchResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	skel := ix.Skeleton()

	paaQ := skel.Transformer.Transform(q)
	rs, ri := skel.Pivots.Dual(paaQ)
	cands, bestOD := skel.Assigner.Candidates(rs, ri)
	base := legacySelectTarget(ix, cands, rs, bestOD)
	stats := QueryStats{
		GroupsConsidered: len(cands),
		TargetNodeSize:   base.node.Count,
		TargetPathLen:    base.pathLen,
	}

	var plan legacyPlan
	switch opts.Variant {
	case VariantODSmallest:
		plan = legacyPlanODSmallest(ix, ri, bestOD)
	case VariantAdaptive2X, VariantAdaptive4X:
		plan = legacyPlanAdaptive(ix, base, rs, ri, bestOD, opts)
	default:
		plan = legacyPlanKNN(base)
	}

	top := series.NewTopK(opts.K)
	// The only deliberate changes in this frozen copy track the engine's
	// kernel moves, because the bit-for-bit regression pin only holds when
	// both paths accumulate distances identically: PR 7 moved the scan loop
	// onto the blocked early-abandon kernel, and the zero-copy read path
	// moved disk scans onto the raw float32 kernel (the query rounded to
	// storage precision once, records ranked straight from their encoded
	// bytes). The delta merge still ranks decoded float64 records in both
	// paths, so its kernel stays float64.
	q32 := series.ToFloat32(q)
	rawDist := func(rec []byte, bound float64) float64 {
		return series.SqDistEarlyAbandon32Blocked(q32, rec, bound)
	}
	dist := func(values []float64, bound float64) float64 {
		return series.SqDistEarlyAbandonBlocked(q, values, bound)
	}
	if err := legacyExecutePlanDist(ctx, ix, plan, nil, top, true, &stats, rawDist); err != nil {
		return nil, err
	}

	widened := false
	if opts.Variant != VariantODSmallest && top.Len() < opts.K {
		widened = true
		wplan := make(legacyPlan, len(plan))
		for pid := range plan {
			wplan[pid] = nil
		}
		if err := legacyExecutePlanDist(ctx, ix, wplan, plan, top, false, &stats, rawDist); err != nil {
			return nil, err
		}
	}

	deltaTop, err := legacyScanDelta(ctx, ix, plan, widened, opts.K, &stats, dist)
	if err != nil {
		return nil, err
	}

	results := top.Results()
	if deltaTop != nil {
		results = mergeResults(results, deltaTop.Results(), opts.K)
	}
	for i := range results {
		results[i].Dist = math.Sqrt(results[i].Dist)
	}
	out := &SearchResult{Results: results, Stats: stats}
	if opts.Explain {
		pids := make([]int, 0, len(plan))
		for pid := range plan {
			pids = append(pids, pid)
		}
		sort.Ints(pids)
		out.Explain = &Explanation{
			RankSensitive:   rs.Clone(),
			RankInsensitive: ri.Clone(),
			BestOD:          bestOD,
			CandidateGroups: append([]int(nil), cands...),
			SelectedGroup:   base.group.ID,
			MatchedPath:     rs[:base.pathLen].Clone(),
			TargetNodeSize:  base.node.Count,
			Partitions:      pids,
		}
	}
	return out, nil
}

// legacySearchPrefixContext is the pre-refactor SearchPrefixContext.
func legacySearchPrefixContext(ctx context.Context, ix *Index, q []float64, opts SearchOptions) (*SearchResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	skel := ix.Skeleton()
	if len(q) == skel.SeriesLen {
		return legacySearchContext(ctx, ix, q, opts)
	}

	tr, err := paa.NewTransformer(len(q), skel.Cfg.Segments)
	if err != nil {
		return nil, err
	}
	paaQ := tr.Transform(q)
	rs, ri := skel.Pivots.Dual(paaQ)
	cands, bestOD := skel.Assigner.Candidates(rs, ri)
	base := legacySelectTarget(ix, cands, rs, bestOD)
	stats := QueryStats{
		GroupsConsidered: len(cands),
		TargetNodeSize:   base.node.Count,
		TargetPathLen:    base.pathLen,
	}

	var plan legacyPlan
	switch opts.Variant {
	case VariantODSmallest:
		plan = legacyPlanODSmallest(ix, ri, bestOD)
	case VariantAdaptive2X, VariantAdaptive4X:
		plan = legacyPlanAdaptive(ix, base, rs, ri, bestOD, opts)
	default:
		plan = legacyPlanKNN(base)
	}

	top := series.NewTopK(opts.K)
	prefixLen := len(q)
	// Same lockstep kernel switches as legacySearchContext: the regression
	// pin requires both paths to share one accumulation order, on disk (raw
	// float32 over the record's first prefixLen readings) and in the delta
	// (decoded float64).
	q32 := series.ToFloat32(q)
	rawDist := func(rec []byte, bound float64) float64 {
		return series.SqDistEarlyAbandon32Blocked(q32, rec[:4*prefixLen], bound)
	}
	dist := func(values []float64, bound float64) float64 {
		return series.SqDistEarlyAbandonBlocked(q, values[:prefixLen], bound)
	}
	if err := legacyExecutePlanDist(ctx, ix, plan, nil, top, true, &stats, rawDist); err != nil {
		return nil, err
	}
	widened := false
	if opts.Variant != VariantODSmallest && top.Len() < opts.K {
		widened = true
		wplan := make(legacyPlan, len(plan))
		for pid := range plan {
			wplan[pid] = nil
		}
		if err := legacyExecutePlanDist(ctx, ix, wplan, plan, top, false, &stats, rawDist); err != nil {
			return nil, err
		}
	}

	deltaTop, err := legacyScanDelta(ctx, ix, plan, widened, opts.K, &stats, dist)
	if err != nil {
		return nil, err
	}

	results := top.Results()
	if deltaTop != nil {
		results = mergeResults(results, deltaTop.Results(), opts.K)
	}
	for i := range results {
		results[i].Dist = math.Sqrt(results[i].Dist)
	}
	return &SearchResult{Results: results, Stats: stats}, nil
}

// legacySelectTarget is the pre-refactor selectTarget.
func legacySelectTarget(ix *Index, cands []int, rs pivot.Signature, bestOD int) target {
	best := target{pathLen: -1}
	for _, gid := range cands {
		g := ix.Skeleton().Groups[gid]
		node, pathLen := g.Trie.Descend(rs)
		cand := target{group: g, node: node, od: bestOD, pathLen: pathLen}
		switch {
		case best.group == nil,
			cand.pathLen > best.pathLen,
			cand.pathLen == best.pathLen && cand.node.Count > best.node.Count:
			best = cand
		}
	}
	return best
}

func legacyClustersUnder(g *Group, n *trie.Node) []storage.ClusterID {
	leafIDs := n.LeafIDsUnder()
	out := make([]storage.ClusterID, 0, len(leafIDs)+1)
	for _, id := range leafIDs {
		out = append(out, g.ClusterOf(g.node(id)))
	}
	if n == g.Trie {
		out = append(out, g.OverflowCluster())
	}
	return out
}

func legacyPartitionsOf(g *Group, n *trie.Node) []int {
	if len(n.Partitions) > 0 {
		return n.Partitions
	}
	return []int{g.DefaultPartition}
}

func (p legacyPlan) addTarget(g *Group, n *trie.Node) {
	parts := legacyPartitionsOf(g, n)
	clusters := legacyClustersUnder(g, n)
	for _, pid := range parts {
		set, ok := p[pid]
		if !ok {
			set = make(map[storage.ClusterID]struct{})
			p[pid] = set
		}
		if set == nil {
			continue // whole partition already planned
		}
		for _, c := range clusters {
			set[c] = struct{}{}
		}
	}
}

func (p legacyPlan) addWholePartition(pid int) { p[pid] = nil }

func legacyPlanKNN(base target) legacyPlan {
	plan := make(legacyPlan)
	plan.addTarget(base.group, base.node)
	return plan
}

func legacyPlanODSmallest(ix *Index, ri pivot.Signature, bestOD int) legacyPlan {
	plan := make(legacyPlan)
	gids, _ := ix.Skeleton().Assigner.BestByOverlap(ri)
	if bestOD == ix.Skeleton().Cfg.PrefixLen {
		gids = []int{0}
	}
	for _, gid := range gids {
		for _, pid := range ix.Skeleton().GroupPartitions(gid) {
			plan.addWholePartition(pid)
		}
	}
	return plan
}

func legacyPlanAdaptive(ix *Index, base target, rs, ri pivot.Signature, bestOD int, opts SearchOptions) legacyPlan {
	plan := make(legacyPlan)
	plan.addTarget(base.group, base.node)
	if base.node.Count >= opts.K {
		return plan
	}

	maxParts := opts.Variant.partitionFactor() * len(legacyPartitionsOf(base.group, base.node))
	if opts.MaxPartitions > 0 {
		maxParts = opts.MaxPartitions
	}

	var cands []target
	for _, gid := range ix.Skeleton().Assigner.GroupsWithinOD(ri, bestOD) {
		g := ix.Skeleton().Groups[gid]
		node, pathLen := g.Trie.Descend(rs)
		if g == base.group && node == base.node {
			node = legacyParentOf(g.Trie, node)
			pathLen--
		}
		for node != nil && pathLen >= 0 {
			cands = append(cands, target{group: g, node: node, od: bestOD, pathLen: pathLen})
			node = legacyParentOf(g.Trie, node)
			pathLen--
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].pathLen != cands[j].pathLen {
			return cands[i].pathLen > cands[j].pathLen
		}
		if cands[i].node.Count != cands[j].node.Count {
			return cands[i].node.Count > cands[j].node.Count
		}
		return cands[i].group.ID < cands[j].group.ID
	})

	covered := base.node.Count
	for _, c := range cands {
		if covered >= opts.K {
			break
		}
		if legacyWouldExceedCap(plan, c, maxParts) {
			continue
		}
		before := legacyPlanSize(plan)
		plan.addTarget(c.group, c.node)
		if legacyPlanSize(plan) > before {
			covered += c.node.Count
		}
	}
	return plan
}

func legacyParentOf(root, child *trie.Node) *trie.Node {
	if root == child {
		return nil
	}
	var found *trie.Node
	var walk func(*trie.Node) bool
	walk = func(n *trie.Node) bool {
		for _, c := range n.Children {
			if c == child {
				found = n
				return true
			}
			if walk(c) {
				return true
			}
		}
		return false
	}
	walk(root)
	return found
}

func legacyWouldExceedCap(plan legacyPlan, c target, maxParts int) bool {
	extra := make(map[int]struct{})
	for _, pid := range legacyPartitionsOf(c.group, c.node) {
		if _, ok := plan[pid]; !ok {
			extra[pid] = struct{}{}
		}
	}
	return len(plan)+len(extra) > maxParts
}

func legacyPlanSize(plan legacyPlan) int {
	n := 0
	for _, set := range plan {
		if set == nil {
			n++
			continue
		}
		n += len(set)
	}
	return n
}

func legacyExecutePlanDist(ctx context.Context, ix *Index, plan, done legacyPlan, top *series.TopK, countLoads bool, stats *QueryStats,
	rawDist func(rec []byte, bound float64) float64) error {
	pids := make([]int, 0, len(plan))
	for pid := range plan {
		pids = append(pids, pid)
	}
	sort.Ints(pids)

	var mu sync.Mutex
	var boundBits atomic.Uint64
	if b, ok := top.Bound(); ok {
		boundBits.Store(math.Float64bits(b))
	} else {
		boundBits.Store(math.Float64bits(math.Inf(1)))
	}
	var recordsScanned atomic.Int64

	scan := func(id int, rec []byte) error {
		if n := recordsScanned.Add(1); n%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		bound := math.Float64frombits(boundBits.Load())
		d := rawDist(rec, bound)
		if d >= bound {
			return nil
		}
		mu.Lock()
		top.Push(id, d)
		if b, ok := top.Bound(); ok {
			boundBits.Store(math.Float64bits(b))
		}
		mu.Unlock()
		return nil
	}

	scanPartition := func(pid int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		p, err := ix.Cl.OpenPartition(ix.Partitions(), pid)
		if err != nil {
			return err
		}
		defer p.Close()
		mu.Lock()
		if p.Cached() {
			if p.CacheHit() {
				stats.CacheHits++
			} else {
				stats.CacheMisses++
			}
		}
		if countLoads {
			stats.PartitionsScanned++
			stats.BytesLoaded += int64(p.Count() * storage.RecordBytes(p.SeriesLen()))
		}
		mu.Unlock()
		var doneSet map[storage.ClusterID]struct{}
		if done != nil {
			doneSet = done[pid]
		}
		want := plan[pid]
		if want == nil { // whole partition
			for _, ci := range p.Clusters() {
				if doneSet != nil {
					if _, ok := doneSet[ci.ID]; ok {
						continue
					}
				}
				if err := ctx.Err(); err != nil {
					return err
				}
				if err := p.ScanClusterRaw(ci.ID, scan); err != nil {
					return err
				}
			}
			return nil
		}
		ids := make([]storage.ClusterID, 0, len(want))
		for c := range want {
			if doneSet != nil {
				if _, ok := doneSet[c]; ok {
					continue
				}
			}
			ids = append(ids, c)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := p.ScanClusterRaw(id, scan); err != nil {
				return err
			}
		}
		return nil
	}

	var err error
	if len(pids) <= 1 {
		for _, pid := range pids {
			if e := scanPartition(pid); e != nil {
				err = e
			}
		}
	} else {
		errs := make([]error, len(pids))
		var wg sync.WaitGroup
		for i, pid := range pids {
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs[i] = scanPartition(pid)
			}()
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				err = e
				break
			}
		}
	}
	stats.RecordsScanned += int(recordsScanned.Load())
	return err
}

func legacyScanDelta(ctx context.Context, ix *Index, plan legacyPlan, widened bool, k int, stats *QueryStats,
	dist func(values []float64, bound float64) float64) (*series.TopK, error) {
	d := ix.Delta()
	if d == nil || d.Len() == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	top := series.NewTopK(k)
	scan := func(id int, values []float64) error {
		stats.RecordsScanned++
		stats.DeltaScanned++
		bound := math.Inf(1)
		if b, ok := top.Bound(); ok {
			bound = b
		}
		if dd := dist(values, bound); dd < bound {
			top.Push(id, dd)
		}
		return nil
	}
	for pid, clusters := range plan {
		if widened {
			clusters = nil
		}
		if err := d.ScanPartition(pid, clusters, scan); err != nil {
			return nil, err
		}
	}
	return top, nil
}
