package core

import (
	"math"
	"testing"

	"climber/internal/dataset"
	"climber/internal/grouping"
)

func TestSearchExplain(t *testing.T) {
	cfg := testConfig()
	ix, ds, _, _ := buildTestIndex(t, 1500, cfg)
	res, err := ix.Search(ds.Get(7), SearchOptions{K: 10, Variant: VariantAdaptive4X, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	ex := res.Explain
	if ex == nil {
		t.Fatal("Explain requested but nil")
	}
	if len(ex.RankSensitive) != cfg.PrefixLen || len(ex.RankInsensitive) != cfg.PrefixLen {
		t.Fatalf("signature lengths %d/%d, want %d", len(ex.RankSensitive), len(ex.RankInsensitive), cfg.PrefixLen)
	}
	// The rank-insensitive form must be the sorted rank-sensitive one.
	sorted := ex.RankSensitive.RankInsensitive()
	if !sorted.Equal(ex.RankInsensitive) {
		t.Fatalf("dual signature inconsistent: %v vs %v", sorted, ex.RankInsensitive)
	}
	if ex.BestOD < 0 || ex.BestOD > cfg.PrefixLen {
		t.Fatalf("BestOD = %d out of range", ex.BestOD)
	}
	if len(ex.CandidateGroups) == 0 {
		t.Fatal("no candidate groups recorded")
	}
	foundSelected := false
	for _, g := range ex.CandidateGroups {
		if g == ex.SelectedGroup {
			foundSelected = true
		}
	}
	if !foundSelected {
		t.Fatalf("selected group %d not among candidates %v", ex.SelectedGroup, ex.CandidateGroups)
	}
	// The matched path must be a prefix of the rank-sensitive signature.
	for i, p := range ex.MatchedPath {
		if ex.RankSensitive[i] != p {
			t.Fatalf("matched path %v not a prefix of %v", ex.MatchedPath, ex.RankSensitive)
		}
	}
	if len(ex.Partitions) != res.Stats.PartitionsScanned {
		t.Fatalf("explain lists %d partitions, stats scanned %d", len(ex.Partitions), res.Stats.PartitionsScanned)
	}
	// Without the flag no explanation is attached.
	res2, err := ix.Search(ds.Get(7), SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Explain != nil {
		t.Fatal("explanation attached without the flag")
	}
}

// A query with no pivot overlap lands in the fall-back group G0 and still
// returns results (from G0's partition).
func TestSearchFallbackPath(t *testing.T) {
	cfg := testConfig()
	ix, ds, _, _ := buildTestIndex(t, 1500, cfg)
	_ = ds
	// An adversarial query far outside the data distribution: huge
	// constant offset with alternating sign, z-normalisation-free. Its PAA
	// lands far from every pivot, but pivot *ranking* still produces some
	// signature — so instead locate a genuine G0 case by scanning queries
	// until the explanation reports the fall-back group, if any exists.
	found := false
	for qid := 0; qid < 200 && !found; qid++ {
		q := make([]float64, 64)
		for j := range q {
			q[j] = float64((qid+1)*(j%5-2)) * 100
		}
		res, err := ix.Search(q, SearchOptions{K: 5, Explain: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Explain.SelectedGroup == grouping.FallbackGroup {
			found = true
			// G0 queries still produce results when G0 holds records; at
			// minimum they must not error and must report a scanned
			// partition.
			if res.Stats.PartitionsScanned == 0 {
				t.Fatal("fall-back query scanned no partitions")
			}
		}
	}
	// Synthetic queries rarely have zero overlap when pivots cover the
	// space; absence of a G0 hit is acceptable. The test's job is the
	// error-free handling above.
	t.Logf("fall-back path exercised: %v", found)
}

func TestSearchKLargerThanNode(t *testing.T) {
	cfg := testConfig()
	ix, ds, _, _ := buildTestIndex(t, 1000, cfg)
	// K exceeding the dataset returns everything reachable, ascending.
	res, err := ix.Search(ds.Get(0), SearchOptions{K: 5000, Variant: VariantODSmallest})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) == 0 {
		t.Fatal("no results for huge K")
	}
	for i := 1; i < len(res.Results); i++ {
		if res.Results[i].Dist < res.Results[i-1].Dist {
			t.Fatal("results not ascending")
		}
	}
}

func TestMaxPartitionsOverride(t *testing.T) {
	cfg := testConfig()
	cfg.Capacity = 50 // many small partitions
	ix, ds, _, _ := buildTestIndex(t, 2000, cfg)
	_, qs := dataset.Queries(ds, 5, 3)
	for _, q := range qs {
		res, err := ix.Search(q, SearchOptions{K: 500, Variant: VariantAdaptive4X, MaxPartitions: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.PartitionsScanned > 2 {
			t.Fatalf("MaxPartitions=2 but scanned %d", res.Stats.PartitionsScanned)
		}
	}
}

// Parallel plan execution must leave distances exact: compare a
// multi-partition OD-Smallest scan against a sequential brute-force over
// the same partitions' records.
func TestParallelScanDistancesExact(t *testing.T) {
	cfg := testConfig()
	ix, ds, _, _ := buildTestIndex(t, 2000, cfg)
	q := ds.Get(99)
	res, err := ix.Search(q, SearchOptions{K: 10, Variant: VariantODSmallest})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Results {
		// Distance must match a direct computation at float32 storage
		// precision.
		stored := make([]float64, ds.Length())
		for j, v := range ds.Get(r.ID) {
			stored[j] = float64(float32(v))
		}
		want := 0.0
		qf := q
		for j := range stored {
			d := float64(float32(qf[j])) - stored[j]
			want += d * d
		}
		want = math.Sqrt(want)
		if math.Abs(r.Dist-want) > 1e-3 {
			t.Fatalf("result %d distance %g, recomputed %g", r.ID, r.Dist, want)
		}
	}
}
