package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"climber/internal/obs"
)

// SearchBatch answers many kNN queries concurrently, mirroring the paper's
// distributed query evaluation (Section VI): the skeleton is shared
// read-only across workers and each query independently loads the
// partitions it needs. workers <= 0 uses GOMAXPROCS.
//
// Results are positionally aligned with the queries. The first error
// aborts the batch.
func (ix *Index) SearchBatch(queries [][]float64, opts SearchOptions, workers int) ([]*SearchResult, error) {
	return ix.SearchBatchContext(context.Background(), queries, opts, workers)
}

// SearchBatchContext is SearchBatch under a context. Cancellation stops the
// batch promptly: queries not yet started are abandoned, and in-flight
// queries observe the cancellation on their partition-scan path (see
// SearchContext). The returned error wraps ctx.Err().
func (ix *Index) SearchBatchContext(ctx context.Context, queries [][]float64, opts SearchOptions, workers int) ([]*SearchResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]*SearchResult, len(queries))
	errs := make([]error, len(queries))
	work := make(chan int, len(queries))
	for i := range queries {
		work <- i
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				// When the batch is traced, each query gets its own child
				// span so per-query stage timings stay attributable; the
				// "query" attr is its position in the batch.
				qctx := ctx
				qsp := obs.SpanFromContext(ctx).StartChild("query")
				if qsp != nil {
					qsp.SetAttr("query", int64(i))
					qctx = obs.ContextWithSpan(ctx, qsp)
				}
				out[i], errs[i] = ix.SearchContext(qctx, queries[i], opts)
				qsp.End()
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: batch query %d: %w", i, err)
		}
	}
	return out, nil
}
