package core

import (
	"math/rand/v2"
	"testing"

	"climber/internal/cluster"
	"climber/internal/dataset"
	"climber/internal/grouping"
	"climber/internal/metric"
	"climber/internal/paa"
	"climber/internal/pivot"
	"climber/internal/trie"
)

// buildDegenerateIndex constructs and populates an index whose skeleton has
// no non-fallback groups — only G0 with a childless trie. Before the
// empty-candidate fix, Assigner.Candidates returned (nil, m+1) for such a
// skeleton, selectTarget produced a target with nil group/node, and Search
// crashed dereferencing base.node.
func buildDegenerateIndex(t *testing.T) (*Index, *testDataset) {
	t.Helper()
	const (
		seriesLen = 16
		segments  = 4
		numPivots = 4
		prefixLen = 2
		capacity  = 100
	)
	cfg := Config{
		Segments:   segments,
		NumPivots:  numPivots,
		PrefixLen:  prefixLen,
		Capacity:   capacity,
		SampleRate: 1,
		Epsilon:    0,
		Decay:      metric.ExponentialDecay,
		Seed:       3,
		BlockSize:  10,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	tr, err := paa.NewTransformer(seriesLen, segments)
	if err != nil {
		t.Fatal(err)
	}
	weigher, err := metric.NewWeigher(prefixLen, cfg.Decay, 0)
	if err != nil {
		t.Fatal(err)
	}
	assigner, err := grouping.NewAssigner(nil, weigher)
	if err != nil {
		t.Fatalf("zero-centroid assigner: %v", err)
	}
	pivots := make([][]float64, numPivots)
	for i := range pivots {
		p := make([]float64, segments)
		for j := range p {
			p[j] = float64(i*segments + j)
		}
		pivots[i] = p
	}
	pset, err := pivot.NewSet(pivots, prefixLen)
	if err != nil {
		t.Fatal(err)
	}
	root, err := trie.Build(nil, capacity)
	if err != nil {
		t.Fatal(err)
	}
	root.Partitions = []int{0} // the childless root maps to the only partition
	g0 := &Group{ID: 0, Trie: root, DefaultPartition: 0}
	g0.indexNodes()
	skel := &Skeleton{
		Cfg:           cfg,
		SeriesLen:     seriesLen,
		Transformer:   tr,
		Pivots:        pset,
		Weigher:       weigher,
		Assigner:      assigner,
		Groups:        []*Group{g0},
		NumPartitions: 1,
		PartitionEst:  []int{0},
	}

	ds := dataset.RandomWalk(seriesLen, 30, 5)
	cl, err := cluster.New(cluster.Config{NumNodes: 1, WorkersPerNode: 1, BaseDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := cl.IngestBlocks(ds, cfg.BlockSize, "degenerate")
	if err != nil {
		t.Fatal(err)
	}
	parts, err := cl.Shuffle(bs, skel.NumPartitions, "degenerate", func(id int, values []float64) (cluster.Route, error) {
		rng := rand.New(rand.NewPCG(cfg.Seed, uint64(id)))
		return skel.RouteRecord(values, rng), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewIndex(cl, skel, parts), &testDataset{ds.Get(0), ds.Len()}
}

type testDataset struct {
	query []float64
	n     int
}

// A degenerate single-group (fallback-only) index must answer queries from
// G0's partition instead of crashing on an empty candidate set.
func TestSearchDegenerateFallbackOnlyIndex(t *testing.T) {
	ix, td := buildDegenerateIndex(t)
	for _, v := range []Variant{VariantKNN, VariantAdaptive2X, VariantAdaptive4X, VariantODSmallest} {
		res, err := ix.Search(td.query, SearchOptions{K: 5, Variant: v, Explain: true})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if len(res.Results) != 5 {
			t.Fatalf("%v: got %d results, want 5", v, len(res.Results))
		}
		// Records round-trip through float32 storage, so the self-match
		// distance is tiny but not exactly zero.
		if res.Results[0].ID != 0 || res.Results[0].Dist > 1e-3 {
			t.Fatalf("%v: query is record 0, top hit = %+v", v, res.Results[0])
		}
		if res.Explain.SelectedGroup != grouping.FallbackGroup {
			t.Fatalf("%v: selected group %d, want fall-back", v, res.Explain.SelectedGroup)
		}
		if res.Explain.BestOD != ix.Skeleton().Cfg.PrefixLen {
			t.Fatalf("%v: BestOD = %d, want m=%d", v, res.Explain.BestOD, ix.Skeleton().Cfg.PrefixLen)
		}
	}
	// SearchPrefix navigates the same skeleton path.
	if _, err := ix.SearchPrefix(td.query[:8], SearchOptions{K: 3}); err != nil {
		t.Fatalf("prefix query on degenerate index: %v", err)
	}
}

// wouldExceedPartitionCap must count *distinct* new partitions: duplicate
// IDs in a target's partition list previously each incremented the extra
// count, making the adaptive variants refuse targets that actually fit.
func TestWouldExceedPartitionCapDedupes(t *testing.T) {
	g := &Group{ID: 1, DefaultPartition: 0}
	node := &trie.Node{Partitions: []int{7, 7, 7, 8}} // 2 distinct new partitions
	plan := planMap{3: nil}
	c := target{group: g, node: node}

	// 1 planned + 2 distinct new = 3 <= 3: must fit.
	if wouldExceedPartitionCap(plan, c, 3) {
		t.Fatal("target refused although its distinct partitions fit the cap")
	}
	// Cap 2 genuinely exceeded.
	if !wouldExceedPartitionCap(plan, c, 2) {
		t.Fatal("target accepted although distinct partitions exceed the cap")
	}
	// Partitions already in the plan never count as new.
	plan[7] = nil
	if wouldExceedPartitionCap(plan, c, 3) {
		t.Fatal("already-planned partition counted as new")
	}
}
