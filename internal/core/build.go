package core

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"climber/internal/cluster"
	"climber/internal/series"
)

// BuildStats records the wall-clock cost of each index-construction phase,
// matching the decomposition of paper Figure 10(a): skeleton building
// (Steps 1-3 on the sample), entire-data conversion (signature generation +
// routing of every record), and entire-data re-distribution (the shuffle
// into partition files).
type BuildStats struct {
	SampleRecords  int
	Skeleton       time.Duration
	Conversion     time.Duration
	Redistribution time.Duration
	Total          time.Duration
}

// Index is a built CLIMBER index: the cluster it lives on plus the current
// generation — the broadcastable skeleton, the physical partition files, and
// the in-memory delta of uncompacted appends. The generation is held behind
// an atomic pointer so an online reindex can swap in a freshly built one
// while in-flight queries keep reading the old (see gen.go); code that needs
// a consistent skeleton+partitions view across a whole operation must
// AcquireGeneration, metadata-only reads can use Skeleton()/Partitions().
type Index struct {
	Cl    *cluster.Cluster
	Stats BuildStats

	// gen is the current generation; never nil once the Index is built or
	// opened.
	gen atomic.Pointer[Generation]

	// nextID mints record IDs for appended series: a single atomic counter
	// seeded from the partition counts at build/open time, so concurrent
	// writers can never assign duplicate IDs.
	nextID atomic.Int64
	// countsMu guards the current generation's Parts.Counts, which writers
	// update as partitions grow while Info-style readers sum it.
	countsMu sync.Mutex
}

// NewIndex wraps an already-built skeleton and partition set as an Index
// with a fresh generation holding them. Build and OpenIndex use richer
// paths; this constructor serves harnesses that assemble the pieces
// themselves.
func NewIndex(cl *cluster.Cluster, skel *Skeleton, parts *cluster.PartitionSet) *Index {
	ix := &Index{Cl: cl}
	ix.gen.Store(NewGeneration(skel, parts))
	ix.initNextID()
	return ix
}

// Build constructs a CLIMBER index over a raw block set using the four-step
// workflow of paper Figure 6:
//
//	1-3. sample blocks at rate α, build the index skeleton in memory;
//	4.   broadcast pivots + skeleton, convert every record to its dual
//	     signature, and re-distribute the dataset into partition files.
//
// The conversion and re-distribution phases are deliberately separate scans
// so their costs can be reported independently, exactly as the paper's
// construction-time breakdown does.
func Build(cl *cluster.Cluster, bs *cluster.BlockSet, cfg Config, name string) (*Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()

	// --- Steps 1-3: partition-level sample -> skeleton --------------------
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x2545f4914f6cdd1d))
	samplePaths := cl.SampleBlocks(bs, cfg.SampleRate, rng)
	// Collect the sample keyed by record ID and materialise it in ID order:
	// worker scheduling must not influence pivot selection.
	type sampleRec struct {
		id   int
		vals []float64
	}
	var mu sync.Mutex
	var recs []sampleRec
	err := cl.ScanBlocks(samplePaths, func(id int, values []float64) error {
		cp := make([]float64, len(values))
		copy(cp, values)
		mu.Lock()
		recs = append(recs, sampleRec{id, cp})
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: sampling: %w", err)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].id < recs[j].id })
	sample := series.NewDatasetCap(bs.SeriesLen, len(recs))
	for _, r := range recs {
		sample.Append(r.vals)
	}
	// The effective sample rate can deviate from α because sampling is at
	// block granularity; feed the realised rate into the skeleton so the
	// scale-up estimates stay honest.
	effCfg := cfg
	if bs.Total > 0 {
		eff := float64(sample.Len()) / float64(bs.Total)
		if eff > 1 {
			eff = 1
		}
		if eff > 0 {
			effCfg.SampleRate = eff
		}
	}
	skel, err := BuildSkeleton(sample, bs.SeriesLen, effCfg)
	if err != nil {
		return nil, fmt.Errorf("core: skeleton: %w", err)
	}
	skeletonTime := time.Since(start)

	// --- Step 4a: broadcast + entire-data conversion ----------------------
	cl.Broadcast(skel.EncodedSize())
	convStart := time.Now()
	routes := make([]cluster.Route, bs.Total)
	err = cl.ScanBlocks(bs.Paths, func(id int, values []float64) error {
		// Algorithm 1's final tie-break must not depend on worker
		// scheduling: derive the generator from the record ID.
		recRNG := rand.New(rand.NewPCG(cfg.Seed, uint64(id)+0x9e3779b97f4a7c15))
		routes[id] = skel.RouteRecord(values, recRNG)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: conversion: %w", err)
	}
	convTime := time.Since(convStart)

	// --- Step 4b: re-distribution into partition files --------------------
	redistStart := time.Now()
	parts, err := cl.Shuffle(bs, skel.NumPartitions, name, func(id int, values []float64) (cluster.Route, error) {
		return routes[id], nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: re-distribution: %w", err)
	}
	redistTime := time.Since(redistStart)

	ix := &Index{
		Cl: cl,
		Stats: BuildStats{
			SampleRecords:  sample.Len(),
			Skeleton:       skeletonTime,
			Conversion:     convTime,
			Redistribution: redistTime,
			Total:          time.Since(start),
		},
	}
	ix.gen.Store(NewGeneration(skel, parts))
	ix.initNextID()
	return ix, nil
}
