package core

import (
	"context"
	"fmt"

	"climber/internal/paa"
	"climber/internal/series"
)

// SearchPrefix answers an approximate kNN query whose series is *shorter*
// than the indexed length — the flexibility the paper credits the
// PAA/SAX-family representations with ("they allow for queries shorter
// than the length on which the index is built", Section II), which DFT- and
// wavelet-based indexes cannot offer.
//
// The query is PAA-segmented into the same w segments as the index (so the
// pivot space lines up), routed through groups and tries as usual, and
// candidates are ranked by the Euclidean distance over the first len(q)
// readings of each record. The query must satisfy w <= len(q) <= n.
func (ix *Index) SearchPrefix(q []float64, opts SearchOptions) (*SearchResult, error) {
	return ix.SearchPrefixContext(context.Background(), q, opts)
}

// SearchPrefixContext is SearchPrefix under a context, with the same
// cancellation semantics as SearchContext.
func (ix *Index) SearchPrefixContext(ctx context.Context, q []float64, opts SearchOptions) (*SearchResult, error) {
	return ix.searchPrefix(ctx, q, opts, nil)
}

// searchPrefix validates and transforms a prefix query, then runs the same
// planner/executor engine as full-length search with the distance function
// restricted to the first len(q) readings of each record. Prefix answers
// see uncompacted writes too: delta records store the full indexed length,
// so the prefix distance applies unchanged.
func (ix *Index) searchPrefix(ctx context.Context, q []float64, opts SearchOptions, sink func(Snapshot) bool) (*SearchResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Pin the generation like search does; the full-length fallthrough below
	// re-acquires, which is cheap and keeps both entry points uniform.
	g := ix.AcquireGeneration()
	defer g.Release()
	skel := g.Skel
	if opts.K <= 0 {
		return nil, fmt.Errorf("core: K must be positive, got %d", opts.K)
	}
	if len(q) == skel.SeriesLen {
		return ix.search(ctx, q, opts, sink)
	}
	if len(q) > skel.SeriesLen {
		return nil, fmt.Errorf("core: prefix query length %d exceeds indexed length %d", len(q), skel.SeriesLen)
	}
	if len(q) < skel.Cfg.Segments {
		return nil, fmt.Errorf("core: prefix query length %d is below the segment count %d", len(q), skel.Cfg.Segments)
	}

	// Segment the short query into the same w segments the pivots live in.
	tr, err := paa.NewTransformer(len(q), skel.Cfg.Segments)
	if err != nil {
		return nil, err
	}
	paaQ := tr.Transform(q)
	prefixLen := len(q)
	q32 := series.ToFloat32(q)
	return ix.runQuery(ctx, g, paaQ, opts, sink,
		func(values []float64, bound float64) float64 {
			return series.SqDistEarlyAbandonBlocked(q, values[:prefixLen], bound)
		},
		func(rec []byte, bound float64) float64 {
			// The raw record carries the full indexed length; the prefix
			// distance reads its first prefixLen readings (4 bytes each).
			return series.SqDistEarlyAbandon32Blocked(q32, rec[:4*prefixLen], bound)
		})
}
