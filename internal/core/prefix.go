package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"climber/internal/paa"
	"climber/internal/series"
)

// SearchPrefix answers an approximate kNN query whose series is *shorter*
// than the indexed length — the flexibility the paper credits the
// PAA/SAX-family representations with ("they allow for queries shorter
// than the length on which the index is built", Section II), which DFT- and
// wavelet-based indexes cannot offer.
//
// The query is PAA-segmented into the same w segments as the index (so the
// pivot space lines up), routed through groups and tries as usual, and
// candidates are ranked by the Euclidean distance over the first len(q)
// readings of each record. The query must satisfy w <= len(q) <= n.
func (ix *Index) SearchPrefix(q []float64, opts SearchOptions) (*SearchResult, error) {
	return ix.SearchPrefixContext(context.Background(), q, opts)
}

// SearchPrefixContext is SearchPrefix under a context, with the same
// cancellation semantics as SearchContext.
func (ix *Index) SearchPrefixContext(ctx context.Context, q []float64, opts SearchOptions) (*SearchResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	skel := ix.Skel
	if opts.K <= 0 {
		return nil, fmt.Errorf("core: K must be positive, got %d", opts.K)
	}
	if len(q) == skel.SeriesLen {
		return ix.SearchContext(ctx, q, opts)
	}
	if len(q) > skel.SeriesLen {
		return nil, fmt.Errorf("core: prefix query length %d exceeds indexed length %d", len(q), skel.SeriesLen)
	}
	if len(q) < skel.Cfg.Segments {
		return nil, fmt.Errorf("core: prefix query length %d is below the segment count %d", len(q), skel.Cfg.Segments)
	}

	// Segment the short query into the same w segments the pivots live in.
	tr, err := paa.NewTransformer(len(q), skel.Cfg.Segments)
	if err != nil {
		return nil, err
	}
	paaQ := tr.Transform(q)
	rs, ri := skel.Pivots.Dual(paaQ)
	cands, bestOD := skel.Assigner.Candidates(rs, ri)
	base := ix.selectTarget(cands, rs, bestOD)
	stats := QueryStats{
		GroupsConsidered: len(cands),
		TargetNodeSize:   base.node.Count,
		TargetPathLen:    base.pathLen,
	}

	var plan scanPlan
	switch opts.Variant {
	case VariantODSmallest:
		plan = ix.planODSmallest(ri, bestOD)
	case VariantAdaptive2X, VariantAdaptive4X:
		plan = ix.planAdaptive(base, rs, ri, bestOD, opts)
	default:
		plan = ix.planKNN(base)
	}

	// Rank candidates by ED over the stored records' first len(q) readings.
	top := series.NewTopK(opts.K)
	prefixLen := len(q)
	err = ix.executePlanPrefix(ctx, plan, nil, q, prefixLen, top, true, &stats)
	if err != nil {
		return nil, err
	}
	widened := false
	if opts.Variant != VariantODSmallest && top.Len() < opts.K {
		widened = true
		wplan := make(scanPlan, len(plan))
		for pid := range plan {
			wplan[pid] = nil
		}
		if err := ix.executePlanPrefix(ctx, wplan, plan, q, prefixLen, top, false, &stats); err != nil {
			return nil, err
		}
	}

	// Prefix answers see uncompacted writes too: delta records store the
	// full indexed length, so the prefix distance applies unchanged.
	deltaTop, err := ix.scanDelta(ctx, plan, widened, opts.K, &stats,
		func(values []float64, bound float64) float64 {
			return series.SqDistEarlyAbandon(q, values[:prefixLen], bound)
		})
	if err != nil {
		return nil, err
	}

	results := top.Results()
	if deltaTop != nil {
		results = mergeResults(results, deltaTop.Results(), opts.K)
	}
	for i := range results {
		results[i].Dist = math.Sqrt(results[i].Dist)
	}
	out := &SearchResult{Results: results, Stats: stats}
	if opts.Explain {
		pids := make([]int, 0, len(plan))
		for pid := range plan {
			pids = append(pids, pid)
		}
		sort.Ints(pids)
		out.Explain = &Explanation{
			RankSensitive:   rs.Clone(),
			RankInsensitive: ri.Clone(),
			BestOD:          bestOD,
			CandidateGroups: append([]int(nil), cands...),
			SelectedGroup:   base.group.ID,
			MatchedPath:     rs[:base.pathLen].Clone(),
			TargetNodeSize:  base.node.Count,
			Partitions:      pids,
		}
	}
	return out, nil
}

// executePlanPrefix is executePlan with distances restricted to the first
// prefixLen readings of each record.
func (ix *Index) executePlanPrefix(ctx context.Context, plan, done scanPlan, q []float64, prefixLen int, top *series.TopK, countLoads bool, stats *QueryStats) error {
	return ix.executePlanDist(ctx, plan, done, top, countLoads, stats,
		func(values []float64, bound float64) float64 {
			return series.SqDistEarlyAbandon(q, values[:prefixLen], bound)
		})
}
