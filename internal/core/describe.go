package core

import "sort"

// Description summarises an index skeleton's structure — the numbers an
// operator needs to judge a build: group balance, trie shapes, partition
// fill.
type Description struct {
	NumGroups     int
	NumPartitions int
	SkeletonBytes int

	// GroupSizes holds each group's estimated membership, indexed by group
	// ID (entry 0 = fall-back G0).
	GroupSizes []int
	// TrieNodes and TrieLeaves count the whole forest.
	TrieNodes  int
	TrieLeaves int
	// DepthHistogram[d] counts trie leaves at depth d.
	DepthHistogram []int
	// MaxDepth is the deepest leaf across all groups.
	MaxDepth int
	// PartitionEst mirrors the skeleton's per-partition estimates.
	PartitionEst []int
	// LargestPartitionEst and SmallestPartitionEst bound the estimated
	// partition occupancy (the capacity constraint is soft; these show the
	// spread).
	LargestPartitionEst  int
	SmallestPartitionEst int
}

// Describe computes the skeleton's structural summary.
func (s *Skeleton) Describe() Description {
	d := Description{
		NumGroups:     s.NumGroups(),
		NumPartitions: s.NumPartitions,
		SkeletonBytes: s.EncodedSize(),
		GroupSizes:    make([]int, s.NumGroups()),
		PartitionEst:  append([]int(nil), s.PartitionEst...),
	}
	for gid, g := range s.Groups {
		d.GroupSizes[gid] = g.Trie.Count
		for _, n := range g.Trie.Nodes() {
			d.TrieNodes++
			if n.IsLeaf() {
				d.TrieLeaves++
				for len(d.DepthHistogram) <= n.Depth {
					d.DepthHistogram = append(d.DepthHistogram, 0)
				}
				d.DepthHistogram[n.Depth]++
				if n.Depth > d.MaxDepth {
					d.MaxDepth = n.Depth
				}
			}
		}
	}
	if len(d.PartitionEst) > 0 {
		sorted := append([]int(nil), d.PartitionEst...)
		sort.Ints(sorted)
		d.SmallestPartitionEst = sorted[0]
		d.LargestPartitionEst = sorted[len(sorted)-1]
	}
	return d
}
