// Package core implements CLIMBER itself: the CLIMBER-FX feature-extraction
// pipeline, the two-level CLIMBER-INX index (paper Sections IV-V), and the
// CLIMBER-kNN / CLIMBER-kNN-Adaptive query algorithms (Section VI).
//
// # Structure
//
// An Index is a Skeleton plus partition files. The skeleton — the pivot
// set, the data-series groups with their rank-insensitive centroids, and
// the rank-sensitive trie under each group (paper Figure 5) — is small
// enough to broadcast and serialises into the index.clms manifest
// (SaveIndex/OpenIndex, io.go). The data series themselves live in
// capacity-bounded partition files managed by the cluster/storage
// substrate, grouped on disk by record cluster (trie node).
//
// The main flows through the package:
//
//   - Build (build.go): sample → pivots → groups → tries → route every
//     record → pack partition files; the phase timings land in BuildStats.
//   - Search / SearchPrefix / SearchBatch / SearchProgressive (search.go,
//     prefix.go, batch.go, progressive.go): the planner (plan.go)
//     navigates the skeleton into a ranked ScanPlan of per-partition
//     steps; the executor (exec.go) runs the steps — concurrently when
//     run to completion, sequentially under a Budget or progressive
//     snapshot sink, stopping at step boundaries when the budget is
//     exhausted — then widens within loaded partitions when the plan
//     covers fewer than K records and ranks by true Euclidean distance.
//   - Append / WriteRouted (append.go): route new records through the
//     existing skeleton and merge them into partition files by atomic
//     replace; record IDs come from a single atomic counter (ReserveIDs)
//     so concurrent writers never collide.
//   - DeltaSource (delta.go): the seam through which the streaming
//     ingestion layer (internal/ingest) makes acked-but-uncompacted
//     records visible to every search with plan-identical pruning.
//
// Layers above: the public climber.DB wraps an Index with the ingestion
// pipeline and the partition cache; internal/server serves one DB over
// HTTP; internal/shard scatter-gathers over many such servers.
package core
