package core

import (
	"context"
	"errors"
	"math"
	"testing"
)

func TestSearchContextPreCancelled(t *testing.T) {
	cfg := testConfig()
	ix, ds, _, _ := buildTestIndex(t, 1000, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.SearchContext(ctx, ds.Get(0), SearchOptions{K: 10}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled search returned %v, want context.Canceled", err)
	}
	if _, err := ix.SearchPrefixContext(ctx, ds.Get(0)[:32], SearchOptions{K: 10}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled prefix search returned %v, want context.Canceled", err)
	}
}

func TestSearchContextBackgroundMatchesSearch(t *testing.T) {
	cfg := testConfig()
	ix, ds, _, _ := buildTestIndex(t, 1500, cfg)
	for _, qid := range []int{3, 700, 1400} {
		a, err := ix.Search(ds.Get(qid), SearchOptions{K: 20, Variant: VariantAdaptive4X})
		if err != nil {
			t.Fatal(err)
		}
		b, err := ix.SearchContext(context.Background(), ds.Get(qid), SearchOptions{K: 20, Variant: VariantAdaptive4X})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Results) != len(b.Results) {
			t.Fatalf("query %d: %d vs %d results", qid, len(a.Results), len(b.Results))
		}
		for i := range a.Results {
			if a.Results[i] != b.Results[i] {
				t.Fatalf("query %d result %d differs: %+v vs %+v", qid, i, a.Results[i], b.Results[i])
			}
		}
	}
}

// TestCancelMidScanStopsPlan drives executePlanDist directly with a distance
// function that cancels the context at the first compared record. The scan
// must stop at the next cluster boundary — well before the partition's
// record count — and return context.Canceled, with the effort statistics
// still accounting the work actually done.
func TestCancelMidScanStopsPlan(t *testing.T) {
	cfg := testConfig()
	ix, _, _, _ := buildTestIndex(t, 3000, cfg)

	// Find a partition with at least two clusters so "stop at the next
	// cluster boundary" is observable.
	pid, firstCluster, total := -1, 0, 0
	for cand := 0; cand < ix.Skeleton().NumPartitions; cand++ {
		p, err := ix.Cl.OpenPartition(ix.Partitions(), cand)
		if err != nil {
			t.Fatal(err)
		}
		cis := p.Clusters()
		if len(cis) >= 2 && p.Count() > cis[0].Count {
			pid, firstCluster, total = cand, cis[0].Count, p.Count()
		}
		p.Close()
		if pid >= 0 {
			break
		}
	}
	if pid < 0 {
		t.Skip("no multi-cluster partition in this layout")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	plan := &ScanPlan{Steps: []PlanStep{{Partition: pid}}} // whole partition
	var stats QueryStats
	compared := 0
	g := ix.AcquireGeneration()
	defer g.Release()
	// The partition scan ranks records through the raw kernel, so the
	// cancelling distance function is the rawDist; the decoded dist only
	// serves the delta merge, which this plan never reaches.
	ex := newExecutor(ix, g, plan, SearchOptions{K: 10}, nil, func(rec []byte, bound float64) float64 {
		compared++
		cancel()
		return math.Inf(1) // abandoned; keep the accumulator empty
	}, &stats)
	err := ex.scanSteps(ctx, plan.Steps, nil, true, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled plan returned %v, want context.Canceled", err)
	}
	if compared == 0 {
		t.Fatal("distance function never ran; the cancel happened too early to be mid-scan")
	}
	if stats.RecordsScanned > firstCluster {
		t.Fatalf("scanned %d records after the cancel, want at most the first cluster's %d (partition holds %d)",
			stats.RecordsScanned, firstCluster, total)
	}
	if stats.RecordsScanned == 0 || stats.PartitionsScanned != 1 {
		t.Fatalf("stats inconsistent after cancel: %+v", stats)
	}
}

func TestSearchBatchContextCancel(t *testing.T) {
	cfg := testConfig()
	ix, ds, _, _ := buildTestIndex(t, 1000, cfg)
	queries := make([][]float64, 16)
	for i := range queries {
		queries[i] = ds.Get(i * 50)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.SearchBatchContext(ctx, queries, SearchOptions{K: 10}, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch returned %v, want an error wrapping context.Canceled", err)
	}
}
