package core

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"climber/internal/cluster"
	"climber/internal/dataset"
	"climber/internal/grouping"
	"climber/internal/series"
)

// testConfig shrinks the paper defaults to unit-test scale.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Segments = 8
	cfg.NumPivots = 24
	cfg.PrefixLen = 4
	cfg.Capacity = 100
	cfg.SampleRate = 0.2
	cfg.BlockSize = 250
	cfg.Seed = 7
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Segments = 0 },
		func(c *Config) { c.NumPivots = 0 },
		func(c *Config) { c.PrefixLen = 0 },
		func(c *Config) { c.PrefixLen = c.NumPivots + 1 },
		func(c *Config) { c.Capacity = 0 },
		func(c *Config) { c.SampleRate = 0 },
		func(c *Config) { c.SampleRate = 1.5 },
		func(c *Config) { c.Epsilon = -1 },
		func(c *Config) { c.MaxCentroids = -1 },
		func(c *Config) { c.BlockSize = 0 },
	}
	for i, mut := range bad {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
	}
}

func TestBuildSkeletonInvariants(t *testing.T) {
	cfg := testConfig()
	sample := dataset.RandomWalk(64, 400, 3)
	skel, err := BuildSkeleton(sample, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if skel.NumGroups() < 2 {
		t.Fatalf("only %d groups (including fall-back); centroid selection failed", skel.NumGroups())
	}
	if skel.Groups[0].Centroid != nil {
		t.Fatal("fall-back group must have a nil centroid")
	}
	for gid := 1; gid < skel.NumGroups(); gid++ {
		if len(skel.Groups[gid].Centroid) != cfg.PrefixLen {
			t.Fatalf("group %d centroid length %d, want %d", gid, len(skel.Groups[gid].Centroid), cfg.PrefixLen)
		}
	}
	if skel.NumPartitions < skel.NumGroups() {
		t.Fatalf("%d partitions for %d groups: every group needs at least one", skel.NumPartitions, skel.NumGroups())
	}
	if len(skel.PartitionEst) != skel.NumPartitions {
		t.Fatalf("partition estimates %d != partitions %d", len(skel.PartitionEst), skel.NumPartitions)
	}
	// Every group's default partition must belong to that group.
	for gid := 0; gid < skel.NumGroups(); gid++ {
		parts := skel.GroupPartitions(gid)
		found := false
		for _, p := range parts {
			if p == skel.Groups[gid].DefaultPartition {
				found = true
			}
		}
		if !found {
			t.Fatalf("group %d default partition %d not among its partitions %v",
				gid, skel.Groups[gid].DefaultPartition, parts)
		}
	}
	// Groups' partition sets must not overlap (Definition 12 disjointness
	// lifts to the group level).
	owner := map[int]int{}
	for gid := 0; gid < skel.NumGroups(); gid++ {
		for _, p := range skel.GroupPartitions(gid) {
			if prev, ok := owner[p]; ok && prev != gid {
				t.Fatalf("partition %d owned by groups %d and %d", p, prev, gid)
			}
			owner[p] = gid
		}
	}
}

func TestBuildSkeletonErrors(t *testing.T) {
	cfg := testConfig()
	tiny := dataset.RandomWalk(64, 5, 1) // fewer series than pivots
	if _, err := BuildSkeleton(tiny, 64, cfg); err == nil {
		t.Error("sample smaller than pivot count should fail")
	}
	sample := dataset.RandomWalk(64, 400, 1)
	if _, err := BuildSkeleton(sample, 32, cfg); err == nil {
		t.Error("length mismatch should fail")
	}
	bad := cfg
	bad.Segments = 0
	if _, err := BuildSkeleton(sample, 64, bad); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestRouteRecordDeterministic(t *testing.T) {
	cfg := testConfig()
	sample := dataset.RandomWalk(64, 400, 3)
	skel, err := BuildSkeleton(sample, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := sample.Get(17)
	a := skel.RouteRecord(x, rand.New(rand.NewPCG(1, 2)))
	b := skel.RouteRecord(x, rand.New(rand.NewPCG(1, 2)))
	if a != b {
		t.Fatalf("routing not deterministic for a fixed RNG: %+v vs %+v", a, b)
	}
	if a.Partition < 0 || a.Partition >= skel.NumPartitions {
		t.Fatalf("route to invalid partition %d", a.Partition)
	}
}

// buildTestIndex constructs a small end-to-end index over a random walk
// dataset, shared by the search tests.
func buildTestIndex(t *testing.T, n int, cfg Config) (*Index, *series.Dataset, *cluster.Cluster, *cluster.BlockSet) {
	t.Helper()
	ds := dataset.RandomWalk(64, n, 11)
	cl, err := cluster.New(cluster.Config{NumNodes: 2, WorkersPerNode: 1, BaseDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := cl.IngestBlocks(ds, cfg.BlockSize, "test")
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(cl, bs, cfg, "test")
	if err != nil {
		t.Fatal(err)
	}
	return ix, ds, cl, bs
}

func TestBuildEndToEndInvariants(t *testing.T) {
	cfg := testConfig()
	ix, ds, _, _ := buildTestIndex(t, 2000, cfg)

	// Every record must land in exactly one partition.
	total := 0
	for _, c := range ix.Partitions().Counts {
		total += c
	}
	if total != ds.Len() {
		t.Fatalf("partitions hold %d records, dataset has %d", total, ds.Len())
	}

	seen := make(map[int]int)
	for pid := range ix.Partitions().Paths {
		p, err := ix.Cl.OpenPartition(ix.Partitions(), pid)
		if err != nil {
			t.Fatal(err)
		}
		err = p.ScanAll(func(id int, values []float64) error {
			seen[id]++
			return nil
		})
		p.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != ds.Len() {
		t.Fatalf("found %d distinct records, want %d", len(seen), ds.Len())
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("record %d stored %d times", id, n)
		}
	}

	// Build statistics must be populated.
	if ix.Stats.SampleRecords == 0 || ix.Stats.Total == 0 {
		t.Fatalf("incomplete build stats: %+v", ix.Stats)
	}
	if ix.Stats.Skeleton+ix.Stats.Conversion+ix.Stats.Redistribution > ix.Stats.Total {
		t.Fatalf("phase times exceed total: %+v", ix.Stats)
	}
}

func TestSearchReturnsKResults(t *testing.T) {
	cfg := testConfig()
	ix, ds, _, _ := buildTestIndex(t, 2000, cfg)
	q := ds.Get(5)
	for _, v := range []Variant{VariantKNN, VariantAdaptive2X, VariantAdaptive4X, VariantODSmallest} {
		res, err := ix.Search(q, SearchOptions{K: 20, Variant: v})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if len(res.Results) != 20 {
			t.Fatalf("%v returned %d results, want 20", v, len(res.Results))
		}
		// Distances ascending.
		for i := 1; i < len(res.Results); i++ {
			if res.Results[i].Dist < res.Results[i-1].Dist {
				t.Fatalf("%v results not sorted", v)
			}
		}
		if res.Stats.PartitionsScanned == 0 || res.Stats.RecordsScanned == 0 {
			t.Fatalf("%v reported empty stats: %+v", v, res.Stats)
		}
	}
}

// A query drawn from the dataset must find itself (at float32 round-off
// distance — partitions store records as float32) — the signature pipeline
// routes the query and its identical record to the same group and trie
// node.
func TestSearchFindsSelf(t *testing.T) {
	cfg := testConfig()
	ix, ds, _, _ := buildTestIndex(t, 2000, cfg)
	hits := 0
	for _, qid := range []int{0, 123, 777, 1500, 1999} {
		res, err := ix.Search(ds.Get(qid), SearchOptions{K: 10})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Results) > 0 && res.Results[0].ID == qid && res.Results[0].Dist < 1e-4 {
			hits++
		}
	}
	// A record whose WD tie was broken randomly at build time may live in a
	// different group than the query's deterministic selection visits —
	// that is the paper's own source of < 100% recall — so allow one miss.
	if hits < 4 {
		t.Fatalf("self-search found the query in %d/5 cases, want >= 4/5", hits)
	}
}

// Core accuracy claims, scaled down: CLIMBER's recall must be far above
// random and the adaptive/OD-Smallest variants must not lose recall
// relative to narrower searches (they scan supersets of data). The absolute
// recall band of the paper (0.6-0.8) is exercised by the benchmark harness
// at realistic partition granularity; this test uses deliberately tiny
// partitions, which depress recall, so only ordering and a floor are
// asserted.
func TestSearchRecallOrdering(t *testing.T) {
	cfg := testConfig()
	cfg.Capacity = 400 // coarser partitions: closer to the paper's granularity
	ix, ds, _, _ := buildTestIndex(t, 4000, cfg)
	variants := []Variant{VariantKNN, VariantAdaptive2X, VariantAdaptive4X, VariantODSmallest}
	sums := make(map[Variant]float64)
	const k = 50
	qids, qs := dataset.Queries(ds, 15, 99)
	_ = qids
	for _, q := range qs {
		exact := exactTopK(ds, q, k)
		for _, v := range variants {
			res, err := ix.Search(q, SearchOptions{K: k, Variant: v})
			if err != nil {
				t.Fatal(err)
			}
			sums[v] += series.Recall(res.Results, exact)
		}
	}
	n := float64(len(qs))
	knn := sums[VariantKNN] / n
	a2 := sums[VariantAdaptive2X] / n
	a4 := sums[VariantAdaptive4X] / n
	od := sums[VariantODSmallest] / n
	t.Logf("recall: kNN=%.3f 2X=%.3f 4X=%.3f OD-Smallest=%.3f", knn, a2, a4, od)
	if knn < 0.2 {
		t.Fatalf("CLIMBER-kNN recall %.3f is implausibly low", knn)
	}
	if a4+1e-9 < knn-0.05 {
		t.Fatalf("Adaptive-4X recall %.3f clearly below kNN %.3f", a4, knn)
	}
	if od+1e-9 < a4-0.05 {
		t.Fatalf("OD-Smallest recall %.3f clearly below Adaptive-4X %.3f", od, a4)
	}
}

func exactTopK(ds *series.Dataset, q []float64, k int) []series.Result {
	top := series.NewTopK(k)
	for id := 0; id < ds.Len(); id++ {
		top.Push(id, series.SqDist(q, ds.Get(id)))
	}
	return top.Results()
}

func TestSearchOptionValidation(t *testing.T) {
	cfg := testConfig()
	ix, ds, _, _ := buildTestIndex(t, 1000, cfg)
	if _, err := ix.Search(ds.Get(0), SearchOptions{K: 0}); err == nil {
		t.Error("K = 0 should fail")
	}
	if _, err := ix.Search(make([]float64, 5), SearchOptions{K: 5}); err == nil {
		t.Error("wrong query length should fail")
	}
}

func TestVariantString(t *testing.T) {
	if VariantKNN.String() != "CLIMBER-kNN" ||
		VariantAdaptive2X.String() != "CLIMBER-kNN-Adaptive-2X" ||
		VariantAdaptive4X.String() != "CLIMBER-kNN-Adaptive-4X" ||
		VariantODSmallest.String() != "OD-Smallest" {
		t.Fatal("variant names drifted from the paper's")
	}
}

func TestSkeletonEncodeDecodeRoundTrip(t *testing.T) {
	cfg := testConfig()
	sample := dataset.RandomWalk(64, 400, 3)
	skel, err := BuildSkeleton(sample, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := skel.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if got := skel.EncodedSize(); got != buf.Len() {
		t.Fatalf("EncodedSize = %d, actual encoding = %d bytes", got, buf.Len())
	}
	back, err := DecodeSkeleton(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumGroups() != skel.NumGroups() || back.NumPartitions != skel.NumPartitions {
		t.Fatalf("round trip changed shape: %d/%d groups, %d/%d partitions",
			back.NumGroups(), skel.NumGroups(), back.NumPartitions, skel.NumPartitions)
	}
	// Routing must behave identically after a round trip.
	for i := 0; i < 50; i++ {
		x := sample.Get(i)
		a := skel.RouteRecord(x, rand.New(rand.NewPCG(5, uint64(i))))
		b := back.RouteRecord(x, rand.New(rand.NewPCG(5, uint64(i))))
		if a != b {
			t.Fatalf("record %d routed to %+v before and %+v after round trip", i, a, b)
		}
	}
}

func TestDecodeSkeletonRejectsGarbage(t *testing.T) {
	if _, err := DecodeSkeleton(bytes.NewReader([]byte("XXXXGARBAGE"))); err == nil {
		t.Fatal("garbage accepted as skeleton")
	}
	if _, err := DecodeSkeleton(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted as skeleton")
	}
}

func TestSaveOpenIndexRoundTrip(t *testing.T) {
	cfg := testConfig()
	ix, ds, cl, _ := buildTestIndex(t, 1500, cfg)
	path := t.TempDir() + "/index.clms"
	if err := SaveIndex(ix, path); err != nil {
		t.Fatal(err)
	}
	back, err := OpenIndex(cl, path)
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Get(42)
	a, err := ix.Search(q, SearchOptions{K: 10, Variant: VariantAdaptive4X})
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Search(q, SearchOptions{K: 10, Variant: VariantAdaptive4X})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != len(b.Results) {
		t.Fatalf("result counts differ after reload: %d vs %d", len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		if a.Results[i].ID != b.Results[i].ID {
			t.Fatalf("result %d differs after reload: %+v vs %+v", i, a.Results[i], b.Results[i])
		}
	}
}

// The adaptive variants must respect their partition caps relative to the
// base algorithm.
func TestAdaptivePartitionCap(t *testing.T) {
	cfg := testConfig()
	cfg.Capacity = 50 // many small partitions so adaptivity kicks in
	ix, ds, _, _ := buildTestIndex(t, 3000, cfg)
	_, qs := dataset.Queries(ds, 10, 123)
	for _, q := range qs {
		base, err := ix.Search(q, SearchOptions{K: 200, Variant: VariantKNN})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range []Variant{VariantAdaptive2X, VariantAdaptive4X} {
			res, err := ix.Search(q, SearchOptions{K: 200, Variant: v})
			if err != nil {
				t.Fatal(err)
			}
			cap := v.partitionFactor() * base.Stats.PartitionsScanned
			if res.Stats.PartitionsScanned > cap {
				t.Fatalf("%v scanned %d partitions, cap %d (base %d)",
					v, res.Stats.PartitionsScanned, cap, base.Stats.PartitionsScanned)
			}
		}
	}
}

// With K below every trie-node size the adaptive variants behave exactly
// like CLIMBER-kNN (paper Figure 9 observation 2).
func TestAdaptiveEqualsKNNForSmallK(t *testing.T) {
	cfg := testConfig()
	ix, ds, _, _ := buildTestIndex(t, 2000, cfg)
	_, qs := dataset.Queries(ds, 10, 5)
	for _, q := range qs {
		base, err := ix.Search(q, SearchOptions{K: 1, Variant: VariantKNN})
		if err != nil {
			t.Fatal(err)
		}
		adapt, err := ix.Search(q, SearchOptions{K: 1, Variant: VariantAdaptive4X})
		if err != nil {
			t.Fatal(err)
		}
		if base.Stats.PartitionsScanned != adapt.Stats.PartitionsScanned {
			t.Fatalf("adaptive diverged from kNN at K=1: %d vs %d partitions",
				adapt.Stats.PartitionsScanned, base.Stats.PartitionsScanned)
		}
		if len(base.Results) > 0 && len(adapt.Results) > 0 && base.Results[0].ID != adapt.Results[0].ID {
			t.Fatalf("top-1 differs between kNN and adaptive")
		}
	}
}

// OD-Smallest scans at least as much data as the other variants (it is the
// expensive upper bound of Figure 11(b)).
func TestODSmallestScansMost(t *testing.T) {
	cfg := testConfig()
	ix, ds, _, _ := buildTestIndex(t, 3000, cfg)
	_, qs := dataset.Queries(ds, 8, 77)
	for _, q := range qs {
		knn, err := ix.Search(q, SearchOptions{K: 100, Variant: VariantKNN})
		if err != nil {
			t.Fatal(err)
		}
		od, err := ix.Search(q, SearchOptions{K: 100, Variant: VariantODSmallest})
		if err != nil {
			t.Fatal(err)
		}
		if od.Stats.RecordsScanned < knn.Stats.RecordsScanned {
			t.Fatalf("OD-Smallest scanned %d records < kNN's %d",
				od.Stats.RecordsScanned, knn.Stats.RecordsScanned)
		}
	}
}

func TestFallbackGroupExists(t *testing.T) {
	cfg := testConfig()
	sample := dataset.RandomWalk(64, 400, 3)
	skel, err := BuildSkeleton(sample, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if skel.Groups[grouping.FallbackGroup] == nil {
		t.Fatal("fall-back group missing")
	}
	if got := skel.Groups[grouping.FallbackGroup].OverflowCluster(); got != -1 {
		t.Fatalf("G0 overflow cluster = %d, want -1", got)
	}
}
