package core

import (
	"sort"

	"climber/internal/pivot"
	"climber/internal/storage"
	"climber/internal/trie"
)

// PlanStep is one executable unit of a query plan: open one partition and
// scan the listed record clusters inside it. A nil Clusters set means the
// whole partition. Steps are self-contained, so an executor can run them in
// any order, stop between them, and account for each one independently —
// the granularity at which budgets are checked and progressive snapshots
// are emitted.
type PlanStep struct {
	// Partition is the physical partition to open.
	Partition int
	// Clusters narrows the scan to the listed record clusters; nil scans
	// every cluster of the partition.
	Clusters map[storage.ClusterID]struct{}
	// OD is the Overlap Distance of the group(s) that planned this step —
	// the paper's coarse relevance score for the partition's contents.
	OD int
	// PathLen is the deepest matched trie-path length among the targets
	// that planned this step; -1 for whole-partition policies
	// (OD-Smallest), whose relevance is the OD alone.
	PathLen int
	// Est is the skeleton's record-count estimate for the planned clusters
	// — the ranking hint behind the step order, not an exact count.
	Est int
}

// ScanPlan is the planner's product: the ranked, executable decomposition
// of one query. Steps are ordered most-promising first (deepest trie match,
// then largest estimated membership, then partition ID), so an executor
// that stops early — because a Budget ran out or a progressive consumer is
// satisfied — has always spent its effort on the best candidates the
// skeleton could identify.
type ScanPlan struct {
	// Steps are the executable units, ranked most-promising first. At most
	// one step exists per partition.
	Steps []PlanStep
	// Widen marks plans that run the within-partition widening stage when
	// the planned clusters yield fewer than K results (every variant except
	// OD-Smallest, whose steps already cover whole partitions).
	Widen bool
}

// planMap maps a partition ID to the record clusters to scan inside it; a
// nil cluster set means "scan the whole partition". It is the builder-side
// representation of a plan, before ranking flattens it into steps.
type planMap map[int]map[storage.ClusterID]struct{}

// stepMeta carries one planned partition's ranking annotations while the
// plan is under construction.
type stepMeta struct {
	od      int
	pathLen int
	est     int
}

// planBuilder accumulates the (partition → clusters) plan with its ranking
// annotations.
type planBuilder struct {
	parts planMap
	meta  map[int]*stepMeta
}

func newPlanBuilder() *planBuilder {
	return &planBuilder{parts: make(planMap), meta: make(map[int]*stepMeta)}
}

// metaFor returns (creating if needed) the annotations of one partition.
func (pb *planBuilder) metaFor(pid, od, pathLen int) *stepMeta {
	m, ok := pb.meta[pid]
	if !ok {
		m = &stepMeta{od: od, pathLen: pathLen}
		pb.meta[pid] = m
		return m
	}
	if od < m.od {
		m.od = od
	}
	if pathLen > m.pathLen {
		m.pathLen = pathLen
	}
	return m
}

// addTarget folds one (group, node) target into the plan.
func (pb *planBuilder) addTarget(c target) {
	g, n := c.group, c.node
	parts := partitionsOf(g, n)
	clusters := clustersUnder(g, n)
	for _, pid := range parts {
		m := pb.metaFor(pid, c.od, c.pathLen)
		set, ok := pb.parts[pid]
		if !ok {
			set = make(map[storage.ClusterID]struct{})
			pb.parts[pid] = set
		}
		if set == nil {
			continue // whole partition already planned
		}
		before := len(set)
		for _, cl := range clusters {
			set[cl] = struct{}{}
		}
		if len(set) > before {
			m.est += n.Count
		}
	}
}

// addWholePartition plans a full scan of one partition.
func (pb *planBuilder) addWholePartition(pid, od, est int) {
	m := pb.metaFor(pid, od, -1)
	pb.parts[pid] = nil
	m.est = est
}

// build ranks the accumulated partitions into an ordered step list:
// smallest OD first, then deepest matched path, then largest estimated
// membership, then partition ID — a total, deterministic order.
func (pb *planBuilder) build(widen bool) *ScanPlan {
	steps := make([]PlanStep, 0, len(pb.parts))
	for pid, set := range pb.parts {
		m := pb.meta[pid]
		steps = append(steps, PlanStep{Partition: pid, Clusters: set, OD: m.od, PathLen: m.pathLen, Est: m.est})
	}
	sort.Slice(steps, func(i, j int) bool {
		if steps[i].OD != steps[j].OD {
			return steps[i].OD < steps[j].OD
		}
		if steps[i].PathLen != steps[j].PathLen {
			return steps[i].PathLen > steps[j].PathLen
		}
		if steps[i].Est != steps[j].Est {
			return steps[i].Est > steps[j].Est
		}
		return steps[i].Partition < steps[j].Partition
	})
	return &ScanPlan{Steps: steps, Widen: widen}
}

// plan turns the navigated skeleton state into the ranked ScanPlan of the
// requested variant — the pure "plan construction" half of Algorithm 3,
// with the adaptive expansion of Section VI and the OD-Smallest ablation as
// alternative policies. It performs no I/O.
func (s *Skeleton) plan(base target, rs, ri pivot.Signature, bestOD int, opts SearchOptions) *ScanPlan {
	pb := newPlanBuilder()
	switch opts.Variant {
	case VariantODSmallest:
		s.planODSmallest(pb, ri, bestOD)
		return pb.build(false)
	case VariantAdaptive2X, VariantAdaptive4X:
		s.planAdaptive(pb, base, rs, ri, bestOD, opts)
	default:
		pb.addTarget(base) // plain CLIMBER-kNN: the base target only
	}
	return pb.build(true)
}

// planODSmallest plans every partition of every group at the smallest OD.
func (s *Skeleton) planODSmallest(pb *planBuilder, ri pivot.Signature, bestOD int) {
	gids, _ := s.Assigner.BestByOverlap(ri)
	if bestOD == s.Cfg.PrefixLen {
		gids = []int{0}
	}
	for _, gid := range gids {
		for _, pid := range s.GroupPartitions(gid) {
			est := 0
			if pid < len(s.PartitionEst) {
				est = s.PartitionEst[pid]
			}
			pb.addWholePartition(pid, bestOD, est)
		}
	}
}

// planAdaptive implements CLIMBER-kNN-Adaptive (Section VI): when the base
// trie node holds fewer than K records, the search expands to further
// best-matching trie nodes — the deepest match of every group within the
// smallest OD, then their parents (the 2nd-longest matches) — until the
// selected nodes' sizes sum past K, bounded by the variant's partition cap.
func (s *Skeleton) planAdaptive(pb *planBuilder, base target, rs, ri pivot.Signature, bestOD int, opts SearchOptions) {
	pb.addTarget(base)
	if base.node.Count >= opts.K {
		return // behaves exactly like CLIMBER-kNN (Figure 9 observation 2)
	}

	maxParts := opts.Variant.partitionFactor() * len(partitionsOf(base.group, base.node))
	if opts.MaxPartitions > 0 {
		maxParts = opts.MaxPartitions
	}

	// Memorised candidates: deepest node per group within the smallest OD,
	// plus each node's ancestors as progressively coarser fallbacks.
	var cands []target
	for _, gid := range s.Assigner.GroupsWithinOD(ri, bestOD) {
		g := s.Groups[gid]
		node, pathLen := g.Trie.Descend(rs)
		if g == base.group && node == base.node {
			node = parentOf(g.Trie, node) // base already planned; offer its parent
			pathLen--
		}
		for node != nil && pathLen >= 0 {
			cands = append(cands, target{group: g, node: node, od: bestOD, pathLen: pathLen})
			node = parentOf(g.Trie, node)
			pathLen--
		}
	}
	// Rank: deeper matches first, then larger nodes, then group ID.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].pathLen != cands[j].pathLen {
			return cands[i].pathLen > cands[j].pathLen
		}
		if cands[i].node.Count != cands[j].node.Count {
			return cands[i].node.Count > cands[j].node.Count
		}
		return cands[i].group.ID < cands[j].group.ID
	})

	covered := base.node.Count
	for _, c := range cands {
		if covered >= opts.K {
			break
		}
		if wouldExceedPartitionCap(pb.parts, c, maxParts) {
			continue
		}
		before := planSize(pb.parts)
		pb.addTarget(c)
		if planSize(pb.parts) > before { // the target added new clusters
			covered += c.node.Count
		}
	}
}

// clustersUnder returns the global record-cluster IDs of the subtree rooted
// at a node, including the group's overflow cluster when the node is the
// group root (overflow records belong to the group but to no complete
// root-to-leaf path).
func clustersUnder(g *Group, n *trie.Node) []storage.ClusterID {
	leafIDs := n.LeafIDsUnder()
	out := make([]storage.ClusterID, 0, len(leafIDs)+1)
	for _, id := range leafIDs {
		out = append(out, g.ClusterOf(g.node(id)))
	}
	if n == g.Trie {
		out = append(out, g.OverflowCluster())
	}
	return out
}

// partitionsOf returns the partitions covering a node, falling back to the
// group's partition set for a childless root.
func partitionsOf(g *Group, n *trie.Node) []int {
	if len(n.Partitions) > 0 {
		return n.Partitions
	}
	return []int{g.DefaultPartition}
}

// parentOf finds the parent of a node within a trie (tries are small; a
// DFS walk is cheap and avoids storing parent pointers in every node).
func parentOf(root, child *trie.Node) *trie.Node {
	if root == child {
		return nil
	}
	var found *trie.Node
	var walk func(*trie.Node) bool
	walk = func(n *trie.Node) bool {
		for _, c := range n.Children {
			if c == child {
				found = n
				return true
			}
			if walk(c) {
				return true
			}
		}
		return false
	}
	walk(root)
	return found
}

// wouldExceedPartitionCap reports whether adding the target would grow the
// plan's distinct-partition count beyond maxParts. The target's partition
// list can repeat IDs (an internal node covering several leaves packed into
// the same bin), so new partitions are counted as a set — counting
// duplicates would refuse targets that actually fit the cap.
func wouldExceedPartitionCap(plan planMap, c target, maxParts int) bool {
	extra := make(map[int]struct{})
	for _, pid := range partitionsOf(c.group, c.node) {
		if _, ok := plan[pid]; !ok {
			extra[pid] = struct{}{}
		}
	}
	return len(plan)+len(extra) > maxParts
}

// planSize counts the clusters planned (whole-partition entries count as 1).
func planSize(plan planMap) int {
	n := 0
	for _, set := range plan {
		if set == nil {
			n++
			continue
		}
		n += len(set)
	}
	return n
}
