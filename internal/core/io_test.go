package core

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"climber/internal/dataset"
)

// DecodeSkeleton must reject corrupted inputs with an error — never panic,
// never hang, never return a half-built skeleton silently. We flip bytes at
// random positions of a valid encoding and also truncate at every 64-byte
// boundary.
func TestDecodeSkeletonCorruptionRobustness(t *testing.T) {
	cfg := testConfig()
	sample := dataset.RandomWalk(64, 400, 3)
	skel, err := BuildSkeleton(sample, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := skel.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	rng := rand.New(rand.NewPCG(77, 88))
	for trial := 0; trial < 200; trial++ {
		corrupted := make([]byte, len(valid))
		copy(corrupted, valid)
		// Flip 1-4 random bytes.
		for f := 0; f < 1+rng.IntN(4); f++ {
			corrupted[rng.IntN(len(corrupted))] ^= byte(1 + rng.IntN(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: DecodeSkeleton panicked: %v", trial, r)
				}
			}()
			back, err := DecodeSkeleton(bytes.NewReader(corrupted))
			// Either an error, or a structurally coherent skeleton (byte
			// flips in pivot coordinates or counts can decode fine).
			if err == nil && back == nil {
				t.Fatalf("trial %d: nil skeleton without error", trial)
			}
		}()
	}

	for cut := 0; cut < len(valid); cut += 64 {
		if _, err := DecodeSkeleton(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes decoded without error", cut)
		}
	}
}

func TestDisableWDTieBreakRoundTrip(t *testing.T) {
	cfg := testConfig()
	cfg.DisableWDTieBreak = true
	sample := dataset.RandomWalk(64, 400, 3)
	skel, err := BuildSkeleton(sample, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if skel.Assigner.UseWeightTieBreak {
		t.Fatal("assigner still uses WD tie-break with DisableWDTieBreak set")
	}
	var buf bytes.Buffer
	if err := skel.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSkeleton(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Assigner.UseWeightTieBreak {
		t.Fatal("DisableWDTieBreak lost in serialisation round trip")
	}
	if !back.Cfg.DisableWDTieBreak {
		t.Fatal("config flag lost in round trip")
	}
}
