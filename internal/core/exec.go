package core

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"climber/internal/obs"
	"climber/internal/series"
	"climber/internal/storage"
)

// Budget bounds the effort of one query, turning it into an anytime query:
// the executor checks the budget between plan steps and, when a dimension
// is exhausted, stops early and returns the best answer assembled so far,
// marked partial (QueryStats.Partial with the exhausted dimension in
// QueryStats.BudgetExhausted). The zero value imposes no bound. Because
// steps are ranked most-promising first, a budgeted answer is always the
// best the skeleton could buy for the spend.
type Budget struct {
	// MaxPartitions stops the query before it loads its n+1-th partition —
	// the paper's partition-load cost model as a hard per-query cap. Unlike
	// SearchOptions.MaxPartitions (which shrinks the adaptive variants'
	// plan), this bounds execution for every variant; a plan wanting more
	// partitions yields a partial answer.
	MaxPartitions int
	// Deadline stops the query at the first step boundary at or past it.
	// The answer degrades gracefully: scans are never interrupted
	// mid-partition, so the overshoot is bounded by one step.
	Deadline time.Time
	// MinRecords is a recall proxy: the query stops once at least this
	// many candidate records have been compared. More candidates compared
	// means higher expected recall, so a caller can trade accuracy for
	// latency without reasoning about partitions or time.
	MinRecords int
}

// IsZero reports whether no budget dimension is set.
func (b Budget) IsZero() bool {
	return b.MaxPartitions <= 0 && b.Deadline.IsZero() && b.MinRecords <= 0
}

// Budget-exhaustion reasons reported in QueryStats.BudgetExhausted.
const (
	// BudgetMaxPartitions marks a query stopped by Budget.MaxPartitions.
	BudgetMaxPartitions = "max-partitions"
	// BudgetDeadline marks a query stopped by Budget.Deadline.
	BudgetDeadline = "deadline"
	// BudgetMinRecords marks a query stopped by Budget.MinRecords.
	BudgetMinRecords = "min-records"
	// BudgetCallback marks a query stopped by a progressive consumer
	// returning false from its snapshot callback.
	BudgetCallback = "callback"
)

// exhausted reports the first spent budget dimension given the partitions
// loaded and records compared so far.
func (b Budget) exhausted(partitions, records int) (string, bool) {
	switch {
	case b.MaxPartitions > 0 && partitions >= b.MaxPartitions:
		return BudgetMaxPartitions, true
	case !b.Deadline.IsZero() && !time.Now().Before(b.Deadline):
		return BudgetDeadline, true
	case b.MinRecords > 0 && records >= b.MinRecords:
		return BudgetMinRecords, true
	}
	return "", false
}

// distFunc computes a candidate's squared distance to the query, early
// abandoning against bound (the current top-k admission threshold). It is
// the decoded form, used where records exist as []float64 — today that is
// the delta merge, whose records never touch disk.
type distFunc func(values []float64, bound float64) float64

// rawDistFunc is distFunc over a record's encoded value bytes (4 bytes of
// little-endian float32 per reading) — the zero-copy form the partition
// scans use, fed directly from mapped or resident partition memory by
// storage.Partition.ScanClusterRaw.
type rawDistFunc func(rec []byte, bound float64) float64

// executor runs one ScanPlan through its stages — planned steps, the
// within-partition widening pass, and the delta merge — accumulating the
// top-k and the query statistics. It is the pull-based half of the engine:
// the planner decides *what* could be scanned; the executor decides, step
// by step and under the budget, *how much* of it actually is.
type executor struct {
	ix *Index
	// gen is the generation the caller pinned for the query; partition
	// opens and the delta merge go through it so a concurrent reindex swap
	// cannot change what this query observes mid-plan.
	gen  *Generation
	plan *ScanPlan
	opts SearchOptions
	// dist ranks decoded (delta) records; rawDist ranks on-disk records in
	// their encoded form. Both must order candidates identically for the
	// merged answer to be coherent — see search.go for how the pair is built.
	dist    distFunc
	rawDist rawDistFunc
	top     *series.TopK
	stats   *QueryStats

	// executed records what was actually scanned, partition → clusters
	// (nil = every cluster): the coverage the widening and delta stages
	// must respect so no record is ever compared twice and the delta merge
	// prunes exactly like the disk scan did.
	executed planMap
	// sinkStopped is set the moment a progressive sink returns false; no
	// further sink invocation may happen after it (the consumer may have
	// torn down its receiving state).
	sinkStopped bool
	// results is the final merged answer (true distances, ascending),
	// populated by the delta stage.
	results []series.Result
	// span is the query's active span (nil when untraced); the stage
	// spans — scan, widen, delta, merge — open as its children.
	span *obs.Span
}

func newExecutor(ix *Index, g *Generation, plan *ScanPlan, opts SearchOptions, dist distFunc, rawDist rawDistFunc, stats *QueryStats) *executor {
	return &executor{
		ix: ix, gen: g, plan: plan, opts: opts, dist: dist, rawDist: rawDist,
		top:      series.NewTopK(opts.K),
		stats:    stats,
		executed: make(planMap, len(plan.Steps)),
	}
}

// markPartial flags the answer as budget-truncated; the first reason wins.
func (e *executor) markPartial(reason string) {
	if !e.stats.Partial {
		e.stats.Partial = true
		e.stats.BudgetExhausted = reason
	}
}

// run drives the stages. sink, when non-nil, receives a monotonically
// non-worsening snapshot after each executed step (and a final one);
// returning false from it stops the query early with a partial answer.
func (e *executor) run(ctx context.Context, sink func(Snapshot) bool) error {
	e.span = obs.SpanFromContext(ctx)
	if err := e.scanPlanned(ctx, sink); err != nil {
		return err
	}
	if err := e.widen(ctx, sink); err != nil {
		return err
	}
	if err := e.mergeDelta(ctx); err != nil {
		return err
	}
	if sink != nil && !e.sinkStopped {
		sink(e.snapshot(true))
	}
	return nil
}

// scanPlanned executes the ranked plan steps. When no step boundaries are
// needed — no progressive sink, and no budget dimension that depends on
// runtime state (Deadline, MinRecords) — every step runs concurrently:
// the paper's distributed execution, where the selected partitions live
// on different workers. A MaxPartitions-only budget is resolved by
// truncating the ranked plan up front, keeping that parallelism. Only a
// deadline/min-records budget or a progressive sink switches to one step
// at a time in rank order, so the budget can be checked (and a snapshot
// emitted) at every step boundary.
func (e *executor) scanPlanned(ctx context.Context, sink func(Snapshot) bool) error {
	sp := e.span.StartChild("scan")
	defer sp.End()
	steps := e.plan.Steps
	budget := e.opts.Budget
	if sink == nil && budget.Deadline.IsZero() && budget.MinRecords <= 0 {
		// No step boundaries needed. A MaxPartitions-only budget is
		// resolved up front — every step loads exactly one partition, so
		// truncating the ranked plan to the cap is exactly the prefix the
		// stepwise loop would execute — and the truncated plan still scans
		// its partitions concurrently, the run-to-completion path's
		// parallelism.
		if budget.MaxPartitions > 0 && len(steps) > budget.MaxPartitions {
			steps = steps[:budget.MaxPartitions]
			e.markPartial(BudgetMaxPartitions)
		}
		if err := e.scanSteps(ctx, steps, nil, true, sp); err != nil {
			return err
		}
		e.stats.StepsExecuted = len(steps)
		for _, st := range steps {
			e.executed[st.Partition] = st.Clusters
		}
		return nil
	}
	for i := range steps {
		if i > 0 {
			if reason, stop := budget.exhausted(e.stats.PartitionsScanned, e.stats.RecordsScanned); stop {
				e.markPartial(reason)
				return nil
			}
		}
		if err := e.scanSteps(ctx, steps[i:i+1], nil, true, sp); err != nil {
			return err
		}
		e.stats.StepsExecuted++
		e.executed[steps[i].Partition] = steps[i].Clusters
		if sink != nil && !sink(e.snapshot(false)) {
			e.sinkStopped = true
			e.markPartial(BudgetCallback)
			return nil
		}
	}
	return nil
}

// widen runs the within-partition expansion: when the scanned trie nodes
// hold fewer than K records, every remaining cluster of the already-loaded
// partitions is scanned too (Section VII-A: CLIMBER-kNN "expands the search
// within the same partition"; the adaptive variants inherit the same final
// step so their candidate set is always a superset of CLIMBER-kNN's, as in
// Figure 9). The partitions are in memory already, so widening charges no
// additional loads — which is why a MaxPartitions-truncated query still
// widens, while deadline/min-records/callback stops (whose point is to cap
// work, not I/O) skip it.
func (e *executor) widen(ctx context.Context, sink func(Snapshot) bool) error {
	if !e.plan.Widen || e.top.Len() >= e.opts.K || e.sinkStopped {
		return nil
	}
	switch e.stats.BudgetExhausted {
	case BudgetDeadline, BudgetMinRecords, BudgetCallback:
		return nil
	}
	sp := e.span.StartChild("widen")
	defer sp.End()
	pids := make([]int, 0, len(e.executed))
	for pid, clusters := range e.executed {
		if clusters == nil {
			continue // already fully scanned
		}
		pids = append(pids, pid)
	}
	if len(pids) == 0 {
		return nil
	}
	sort.Ints(pids)

	// Widening charges no partition loads, so MaxPartitions never bounds
	// it; the runtime-dependent dimensions (Deadline, MinRecords) keep
	// applying at every partition boundary.
	wbudget := e.opts.Budget
	wbudget.MaxPartitions = 0
	if sink == nil && wbudget.IsZero() {
		wsteps := make([]PlanStep, len(pids))
		for i, pid := range pids {
			wsteps[i] = PlanStep{Partition: pid}
		}
		if err := e.scanSteps(ctx, wsteps, e.executed, false, sp); err != nil {
			return err
		}
		for _, pid := range pids {
			e.executed[pid] = nil
		}
		return nil
	}
	for _, pid := range pids {
		if reason, stop := wbudget.exhausted(0, e.stats.RecordsScanned); stop {
			e.markPartial(reason)
			return nil
		}
		// The widening scan of one partition must skip the clusters its
		// planned step already compared; the done set is consulted before
		// executed[pid] is overwritten below.
		if err := e.scanSteps(ctx, []PlanStep{{Partition: pid}}, e.executed, false, sp); err != nil {
			return err
		}
		e.executed[pid] = nil
		if sink != nil && !sink(e.snapshot(false)) {
			e.sinkStopped = true
			e.markPartial(BudgetCallback)
			return nil
		}
	}
	return nil
}

// mergeDelta folds acked-but-uncompacted writes into the final answer and
// finalises results (true distances, ascending). It runs even on partial
// answers: delta records are resident by definition, so merging them costs
// no I/O and only improves the snapshot.
func (e *executor) mergeDelta(ctx context.Context) error {
	dsp := e.span.StartChild("delta")
	deltaTop, err := e.gen.scanDelta(ctx, e.executed, e.opts.K, e.stats, e.dist)
	dsp.SetAttr("records", int64(e.stats.DeltaScanned))
	dsp.End()
	if err != nil {
		return err
	}
	msp := e.span.StartChild("merge")
	defer msp.End()
	results := e.top.Results()
	if deltaTop != nil {
		results = mergeResults(results, deltaTop.Results(), e.opts.K)
	}
	for i := range results {
		results[i].Dist = math.Sqrt(results[i].Dist)
	}
	e.results = results
	msp.SetAttr("results", int64(len(results)))
	return nil
}

// snapshot captures the current answer. Non-final snapshots report the
// disk-scan top-k (delta hits join at the final merge); the final snapshot
// is exactly the query's result set.
func (e *executor) snapshot(final bool) Snapshot {
	var results []series.Result
	if final {
		results = e.results
	} else {
		results = e.top.Results()
		for i := range results {
			results[i].Dist = math.Sqrt(results[i].Dist)
		}
	}
	return Snapshot{
		Results:      results,
		Step:         e.stats.StepsExecuted,
		StepsPlanned: e.stats.StepsPlanned,
		Final:        final,
		Stats:        *e.stats,
	}
}

// cancelCheckStride is how many records a scanning goroutine compares
// between context checks inside one cluster. Cluster boundaries always
// check; the stride bounds the extra latency a cancelled query pays inside
// a single large cluster to a few hundred distance computations.
const cancelCheckStride = 256

// scanSteps scans the given steps, folding candidates into the shared
// top-k with early-abandoning distances. Clusters already covered by the
// done map are skipped (widening must not compare a record twice).
// countLoads charges partition loads to the statistics; the widening pass
// passes false because its partitions are already resident.
//
// Multi-step calls scan their partitions concurrently — the distributed
// execution of the paper, where the selected partitions live on different
// workers. The top-k accumulator is shared under a mutex with a lock-free
// bound cache so early abandoning stays effective across workers.
//
// The traversal is cancellable: each partition-scan goroutine checks ctx
// before opening its partition, between cluster scans, and every
// cancelCheckStride records within a cluster, returning ctx.Err() as soon
// as it observes cancellation. Statistics stay consistent on a cancelled
// query — every record compared and partition loaded before the
// cancellation is still charged.
//
// stage, when traced, receives one "partition" child span per step,
// carrying the partition ID, whether the open hit the shared partition
// cache, and the bytes charged — the per-trace attribution of effort
// that aggregate QueryStats cannot give.
func (e *executor) scanSteps(ctx context.Context, steps []PlanStep, done planMap, countLoads bool, stage *obs.Span) error {
	ix, top, stats, rawDist := e.ix, e.top, e.stats, e.rawDist

	var mu sync.Mutex
	var boundBits atomic.Uint64
	if b, ok := top.Bound(); ok {
		boundBits.Store(math.Float64bits(b))
	} else {
		boundBits.Store(math.Float64bits(math.Inf(1)))
	}
	var recordsScanned atomic.Int64

	// scan ranks one record in its encoded form, straight out of partition
	// memory: rec is only read inside rawDist and never retained, which is
	// what lets the raw scan hand out zero-copy subslices of a mapped file.
	scan := func(id int, rec []byte) error {
		if n := recordsScanned.Add(1); n%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		bound := math.Float64frombits(boundBits.Load())
		d := rawDist(rec, bound)
		if d >= bound {
			return nil
		}
		mu.Lock()
		top.Push(id, d)
		if b, ok := top.Bound(); ok {
			boundBits.Store(math.Float64bits(b))
		}
		mu.Unlock()
		return nil
	}

	scanStep := func(st PlanStep) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		ssp := stage.StartChild("partition")
		defer ssp.End()
		ssp.SetAttr("partition", int64(st.Partition))
		p, err := ix.Cl.OpenPartition(e.gen.Parts, st.Partition)
		if err != nil {
			return err
		}
		defer p.Close()
		if p.Cached() {
			if p.CacheHit() {
				ssp.SetAttr("cache_hit", 1)
			} else {
				ssp.SetAttr("cache_hit", 0)
			}
		}
		mu.Lock()
		if p.Cached() {
			if p.CacheHit() {
				stats.CacheHits++
			} else {
				stats.CacheMisses++
			}
		}
		if countLoads {
			stats.PartitionsScanned++
			bytes := int64(p.Count() * storage.RecordBytes(p.SeriesLen()))
			stats.BytesLoaded += bytes
			ssp.SetAttr("bytes", bytes)
		}
		mu.Unlock()
		var doneSet map[storage.ClusterID]struct{}
		if done != nil {
			doneSet = done[st.Partition]
		}
		if st.Clusters == nil { // whole partition
			for _, ci := range p.Clusters() {
				if doneSet != nil {
					if _, ok := doneSet[ci.ID]; ok {
						continue
					}
				}
				if err := ctx.Err(); err != nil {
					return err
				}
				if err := p.ScanClusterRaw(ci.ID, scan); err != nil {
					return err
				}
			}
			return nil
		}
		ids := make([]storage.ClusterID, 0, len(st.Clusters))
		for c := range st.Clusters {
			if doneSet != nil {
				if _, ok := doneSet[c]; ok {
					continue
				}
			}
			ids = append(ids, c)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := p.ScanClusterRaw(id, scan); err != nil {
				return err
			}
		}
		return nil
	}

	var err error
	if len(steps) <= 1 {
		for _, st := range steps {
			if e := scanStep(st); e != nil {
				err = e
			}
		}
	} else {
		errs := make([]error, len(steps))
		var wg sync.WaitGroup
		for i, st := range steps {
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs[i] = scanStep(st)
			}()
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				err = e
				break
			}
		}
	}
	stats.RecordsScanned += int(recordsScanned.Load())
	return err
}
