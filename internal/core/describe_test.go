package core

import (
	"testing"

	"climber/internal/dataset"
)

func TestDescribe(t *testing.T) {
	cfg := testConfig()
	sample := dataset.RandomWalk(64, 400, 3)
	skel, err := BuildSkeleton(sample, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := skel.Describe()
	if d.NumGroups != skel.NumGroups() || d.NumPartitions != skel.NumPartitions {
		t.Fatalf("shape mismatch: %+v", d)
	}
	if d.SkeletonBytes != skel.EncodedSize() {
		t.Fatalf("SkeletonBytes = %d, want %d", d.SkeletonBytes, skel.EncodedSize())
	}
	if d.TrieLeaves == 0 || d.TrieNodes < d.TrieLeaves {
		t.Fatalf("implausible trie counts: %+v", d)
	}
	// The depth histogram must sum to the leaf count.
	sum := 0
	for _, c := range d.DepthHistogram {
		sum += c
	}
	if sum != d.TrieLeaves {
		t.Fatalf("depth histogram sums to %d, leaves %d", sum, d.TrieLeaves)
	}
	if d.MaxDepth >= len(d.DepthHistogram) && d.TrieLeaves > 0 {
		t.Fatalf("MaxDepth %d outside histogram of length %d", d.MaxDepth, len(d.DepthHistogram))
	}
	// Group sizes must sum to the scaled estimates of the whole sample.
	total := 0
	for _, gs := range d.GroupSizes {
		total += gs
	}
	if total <= 0 {
		t.Fatal("group sizes sum to zero")
	}
	if d.SmallestPartitionEst > d.LargestPartitionEst {
		t.Fatalf("partition bounds inverted: %+v", d)
	}
}
