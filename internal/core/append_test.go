package core

import (
	"testing"

	"climber/internal/dataset"
)

func TestAppendRoutesAndPersists(t *testing.T) {
	cfg := testConfig()
	ix, ds, _, _ := buildTestIndex(t, 1500, cfg)

	// Append fresh records drawn from the same distribution.
	extra := dataset.RandomWalk(64, 50, 999)
	recs := make([][]float64, extra.Len())
	for i := range recs {
		recs[i] = extra.Get(i)
	}
	ids, err := ix.Append(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 50 {
		t.Fatalf("got %d ids, want 50", len(ids))
	}
	for i, id := range ids {
		if id != ds.Len()+i {
			t.Fatalf("id %d = %d, want %d (continuation of build sequence)", i, id, ds.Len()+i)
		}
	}
	// Totals updated.
	total := 0
	for _, c := range ix.Partitions().Counts {
		total += c
	}
	if total != ds.Len()+50 {
		t.Fatalf("partitions hold %d records, want %d", total, ds.Len()+50)
	}

	// Each appended record is findable by searching for itself.
	found := 0
	for i, q := range recs[:10] {
		res, err := ix.Search(q, SearchOptions{K: 5, Variant: VariantAdaptive4X})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Results) > 0 && res.Results[0].ID == ids[i] && res.Results[0].Dist < 1e-4 {
			found++
		}
	}
	if found < 9 { // one random WD tie-break miss allowed, as in build
		t.Fatalf("found %d/10 appended records, want >= 9", found)
	}
}

func TestAppendEmptyAndValidation(t *testing.T) {
	cfg := testConfig()
	ix, _, _, _ := buildTestIndex(t, 800, cfg)
	ids, err := ix.Append(nil)
	if err != nil || ids != nil {
		t.Fatalf("empty append: %v, %v", ids, err)
	}
	if _, err := ix.Append([][]float64{make([]float64, 3)}); err == nil {
		t.Fatal("wrong-length append accepted")
	}
}

func TestAppendPreservesExistingRecords(t *testing.T) {
	cfg := testConfig()
	ix, ds, _, _ := buildTestIndex(t, 1000, cfg)
	extra := dataset.RandomWalk(64, 20, 111)
	recs := make([][]float64, extra.Len())
	for i := range recs {
		recs[i] = extra.Get(i)
	}
	if _, err := ix.Append(recs); err != nil {
		t.Fatal(err)
	}
	// Every original record still present exactly once.
	seen := map[int]int{}
	for pid := range ix.Partitions().Paths {
		p, err := ix.Cl.OpenPartition(ix.Partitions(), pid)
		if err != nil {
			t.Fatal(err)
		}
		err = p.ScanAll(func(id int, values []float64) error {
			seen[id]++
			return nil
		})
		p.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != ds.Len()+20 {
		t.Fatalf("found %d distinct records, want %d", len(seen), ds.Len()+20)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("record %d stored %d times after append", id, n)
		}
	}
}

func TestSearchBatchMatchesSequential(t *testing.T) {
	cfg := testConfig()
	ix, ds, _, _ := buildTestIndex(t, 1500, cfg)
	_, qs := dataset.Queries(ds, 12, 13)
	opts := SearchOptions{K: 10, Variant: VariantAdaptive4X}
	batch, err := ix.SearchBatch(qs, opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(qs) {
		t.Fatalf("batch returned %d results, want %d", len(batch), len(qs))
	}
	for i, q := range qs {
		seq, err := ix.Search(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq.Results) != len(batch[i].Results) {
			t.Fatalf("query %d: batch %d results, sequential %d", i, len(batch[i].Results), len(seq.Results))
		}
		for j := range seq.Results {
			if seq.Results[j].ID != batch[i].Results[j].ID {
				t.Fatalf("query %d result %d differs between batch and sequential", i, j)
			}
		}
	}
}

func TestSearchBatchPropagatesErrors(t *testing.T) {
	cfg := testConfig()
	ix, ds, _, _ := buildTestIndex(t, 800, cfg)
	bad := [][]float64{ds.Get(0), make([]float64, 3)}
	if _, err := ix.SearchBatch(bad, SearchOptions{K: 5}, 2); err == nil {
		t.Fatal("batch with a bad query should fail")
	}
}
