package core

import (
	"context"
	"testing"
	"time"

	"climber/internal/dataset"
)

// progressiveFixture builds an index whose adaptive plans span many
// partitions, so budgets and snapshots have steps to bite on.
func progressiveFixture(t *testing.T) (*Index, [][]float64) {
	t.Helper()
	cfg := testConfig()
	cfg.Capacity = 50
	ix, ds, _, _ := buildTestIndex(t, 2000, cfg)
	_, qs := dataset.Queries(ds, 8, 21)
	return ix, qs
}

// Snapshots must be monotonically non-worsening: the result count never
// shrinks, the k-th distance never grows, and the final snapshot is exactly
// the returned answer.
func TestProgressiveSnapshotsMonotonic(t *testing.T) {
	ix, qs := progressiveFixture(t)
	for _, q := range qs {
		var snaps []Snapshot
		res, err := ix.SearchProgressive(context.Background(), q, SearchOptions{K: 50, Variant: VariantAdaptive4X},
			func(s Snapshot) bool {
				snaps = append(snaps, s)
				return true
			})
		if err != nil {
			t.Fatal(err)
		}
		if len(snaps) == 0 {
			t.Fatal("no snapshots emitted")
		}
		last := snaps[len(snaps)-1]
		if !last.Final {
			t.Fatal("last snapshot not marked final")
		}
		assertSameResults(t, "final snapshot", last.Results, res.Results)
		for i := 1; i < len(snaps); i++ {
			prev, cur := snaps[i-1], snaps[i]
			if len(cur.Results) < len(prev.Results) {
				t.Fatalf("snapshot %d shrank: %d -> %d results", i, len(prev.Results), len(cur.Results))
			}
			if len(prev.Results) > 0 && len(cur.Results) >= len(prev.Results) {
				pk := prev.Results[len(prev.Results)-1].Dist
				ck := cur.Results[len(prev.Results)-1].Dist
				if ck > pk {
					t.Fatalf("snapshot %d worsened: k-th distance %v -> %v", i, pk, ck)
				}
			}
			if cur.Step < prev.Step {
				t.Fatalf("snapshot %d step went backwards: %d -> %d", i, prev.Step, cur.Step)
			}
		}
		// Per-step snapshots (widening/final snapshots may repeat the last
		// step count): at least one snapshot per executed plan step.
		if res.Stats.StepsExecuted > len(snaps) {
			t.Fatalf("%d steps executed but only %d snapshots", res.Stats.StepsExecuted, len(snaps))
		}
	}
}

// A MaxPartitions execution budget must cap partition loads for every
// variant and mark truncated answers partial.
func TestBudgetMaxPartitions(t *testing.T) {
	ix, qs := progressiveFixture(t)
	sawPartial := false
	for _, q := range qs {
		for _, v := range []Variant{VariantKNN, VariantAdaptive4X, VariantODSmallest} {
			full, err := ix.Search(q, SearchOptions{K: 200, Variant: v})
			if err != nil {
				t.Fatal(err)
			}
			res, err := ix.Search(q, SearchOptions{K: 200, Variant: v, Budget: Budget{MaxPartitions: 1}})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.PartitionsScanned > 1 {
				t.Fatalf("%v: budget 1 but scanned %d partitions", v, res.Stats.PartitionsScanned)
			}
			if full.Stats.PartitionsScanned > 1 {
				// The unbudgeted plan wanted more: the budgeted answer must
				// say so.
				if !res.Stats.Partial || res.Stats.BudgetExhausted != BudgetMaxPartitions {
					t.Fatalf("%v: truncated answer not marked partial: %+v", v, res.Stats)
				}
				if res.Stats.StepsExecuted >= res.Stats.StepsPlanned {
					t.Fatalf("%v: partial answer executed all %d steps", v, res.Stats.StepsPlanned)
				}
				sawPartial = true
			} else if res.Stats.Partial {
				t.Fatalf("%v: answer partial although the plan fit the budget: %+v", v, res.Stats)
			}
		}
	}
	if !sawPartial {
		t.Fatal("no query produced a truncated plan; fixture too coarse to test budgets")
	}
}

// An already-expired deadline still executes the first plan step (an
// anytime answer always carries candidates) and stops right after.
func TestBudgetDeadlineExpired(t *testing.T) {
	ix, qs := progressiveFixture(t)
	sawPartial := false
	for _, q := range qs {
		res, err := ix.Search(q, SearchOptions{
			K: 200, Variant: VariantODSmallest,
			Budget: Budget{Deadline: time.Now().Add(-time.Second)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.StepsExecuted != 1 {
			t.Fatalf("expired deadline executed %d steps, want exactly 1", res.Stats.StepsExecuted)
		}
		if len(res.Results) == 0 {
			t.Fatal("expired deadline returned no results at all")
		}
		if res.Stats.StepsPlanned > 1 {
			if !res.Stats.Partial || res.Stats.BudgetExhausted != BudgetDeadline {
				t.Fatalf("truncated answer not marked deadline-partial: %+v", res.Stats)
			}
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Fatal("no multi-step OD-Smallest plan in the fixture")
	}
}

// A generous deadline changes nothing: the answer matches the unbudgeted
// one bit for bit and is not partial.
func TestBudgetDeadlineGenerous(t *testing.T) {
	ix, qs := progressiveFixture(t)
	for _, q := range qs {
		opts := SearchOptions{K: 50, Variant: VariantAdaptive4X}
		want, err := ix.Search(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Budget = Budget{Deadline: time.Now().Add(time.Hour)}
		got, err := ix.Search(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats.Partial {
			t.Fatalf("generous deadline marked partial: %+v", got.Stats)
		}
		assertSameResults(t, "generous deadline", got.Results, want.Results)
	}
}

// The MinRecords recall proxy stops the scan once enough candidates were
// compared.
func TestBudgetMinRecords(t *testing.T) {
	ix, qs := progressiveFixture(t)
	sawPartial := false
	for _, q := range qs {
		res, err := ix.Search(q, SearchOptions{
			K: 200, Variant: VariantODSmallest,
			Budget: Budget{MinRecords: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.StepsExecuted != 1 {
			t.Fatalf("min-records=1 executed %d steps, want 1", res.Stats.StepsExecuted)
		}
		if res.Stats.StepsPlanned > 1 {
			if !res.Stats.Partial || res.Stats.BudgetExhausted != BudgetMinRecords {
				t.Fatalf("truncated answer not marked min-records-partial: %+v", res.Stats)
			}
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Fatal("no multi-step plan exercised the min-records budget")
	}
}

// A sink returning false stops the query with a callback-partial answer
// containing the snapshots seen so far — and is never invoked again after
// returning false (the consumer may have torn down its receiving state).
func TestProgressiveCallbackStops(t *testing.T) {
	ix, qs := progressiveFixture(t)
	for _, q := range qs {
		calls, stopped := 0, false
		res, err := ix.SearchProgressive(context.Background(), q,
			SearchOptions{K: 200, Variant: VariantODSmallest},
			func(s Snapshot) bool {
				if stopped {
					t.Fatal("sink invoked again after returning false")
				}
				calls++
				stopped = true
				return false // satisfied after the first answer
			})
		if err != nil {
			t.Fatal(err)
		}
		if calls != 1 {
			t.Fatalf("sink called %d times, want exactly 1", calls)
		}
		if res.Stats.StepsExecuted != 1 {
			t.Fatalf("stopped sink executed %d steps, want 1", res.Stats.StepsExecuted)
		}
		if res.Stats.StepsPlanned > 1 && (!res.Stats.Partial || res.Stats.BudgetExhausted != BudgetCallback) {
			t.Fatalf("callback-stopped answer not marked partial: %+v", res.Stats)
		}
	}
}

// The MinRecords budget keeps applying through the widening stage: a query
// whose planned clusters undershoot the budget must not blow past it by an
// unbounded widening scan.
func TestBudgetMinRecordsBoundsWidening(t *testing.T) {
	ix, qs := progressiveFixture(t)
	sawBounded := false
	for _, q := range qs {
		full, err := ix.Search(q, SearchOptions{K: 500, Variant: VariantKNN})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ix.Search(q, SearchOptions{
			K: 500, Variant: VariantKNN,
			Budget: Budget{MinRecords: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		// The planned clusters alone exceed MinRecords=1, so widening must
		// not run: strictly fewer comparisons than the unbudgeted query
		// whenever that query's widening did any work.
		if full.Stats.RecordsScanned > res.Stats.RecordsScanned {
			if !res.Stats.Partial || res.Stats.BudgetExhausted != BudgetMinRecords {
				t.Fatalf("widening-bounded answer not marked min-records-partial: %+v", res.Stats)
			}
			sawBounded = true
		} else if full.Stats.RecordsScanned < res.Stats.RecordsScanned {
			t.Fatalf("budgeted query compared more records (%d) than unbudgeted (%d)",
				res.Stats.RecordsScanned, full.Stats.RecordsScanned)
		}
	}
	if !sawBounded {
		t.Fatal("no query widened in the fixture; min-records bounding not exercised")
	}
}

// Progressive prefix search shares the engine: run-to-completion must match
// the plain prefix answer.
func TestProgressivePrefixMatchesPlain(t *testing.T) {
	ix, qs := progressiveFixture(t)
	for _, q := range qs[:3] {
		opts := SearchOptions{K: 20, Variant: VariantAdaptive4X}
		want, err := ix.SearchPrefix(q[:32], opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.SearchPrefixProgressive(context.Background(), q[:32], opts, func(Snapshot) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "progressive prefix", got.Results, want.Results)
	}
}
