package core

import (
	"fmt"
	"math/rand/v2"
	"os"
	"sort"

	"climber/internal/storage"
)

// Append inserts new data series into a built index without rebuilding the
// skeleton: each record is routed through the existing pivots, groups, and
// tries (exactly like Step 4 of construction) and appended to its partition
// file. Appended records receive IDs continuing the build sequence; the
// assigned IDs are returned in input order.
//
// The skeleton's partitioning was derived from the original sample, so a
// heavily appended index drifts from its capacity targets — like the
// paper's prototype, rebuilding is the answer once partitions grow far past
// the capacity constraint (the soft-constraint discussion of Section V).
//
// Concurrency: Append replaces partition files atomically (write-temp +
// rename), so queries running concurrently see either the old or the new
// file — both are consistent snapshots. Concurrent Append calls, however,
// must be serialised by the caller: two appends may interleave ID
// assignment and lose records.
func (ix *Index) Append(records [][]float64) ([]int, error) {
	if len(records) == 0 {
		return nil, nil
	}
	for i, r := range records {
		if len(r) != ix.Skel.SeriesLen {
			return nil, fmt.Errorf("core: appended record %d has length %d, index stores %d",
				i, len(r), ix.Skel.SeriesLen)
		}
	}
	nextID := 0
	for _, c := range ix.Parts.Counts {
		nextID += c
	}

	// Route every record, grouping by destination partition.
	byPartition := make(map[int][]pendingRecord)
	ids := make([]int, len(records))
	for i, r := range records {
		id := nextID + i
		ids[i] = id
		rng := rand.New(rand.NewPCG(ix.Skel.Cfg.Seed, uint64(id)+0x9e3779b97f4a7c15))
		route := ix.Skel.RouteRecord(r, rng)
		byPartition[route.Partition] = append(byPartition[route.Partition],
			pendingRecord{id: id, cluster: route.Cluster, values: r})
	}

	// Rewrite each affected partition with the new records merged in.
	// Partition files are immutable cluster-contiguous layouts, so append
	// is read-modify-replace — cheap because partitions are capacity
	// bounded.
	pids := make([]int, 0, len(byPartition))
	for pid := range byPartition {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		if err := ix.appendToPartition(pid, byPartition[pid]); err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// pendingRecord is one appended series awaiting its partition rewrite.
type pendingRecord struct {
	id      int
	cluster storage.ClusterID
	values  []float64
}

func (ix *Index) appendToPartition(pid int, recs []pendingRecord) error {
	path := ix.Parts.Paths[pid]
	w := storage.NewPartitionWriter(ix.Parts.SeriesLen)

	existing, err := storage.OpenPartition(path)
	if err != nil {
		return err
	}
	for _, ci := range existing.Clusters() {
		cid := ci.ID
		err := existing.ScanCluster(cid, func(id int, values []float64) error {
			return w.Append(cid, id, values)
		})
		if err != nil {
			existing.Close()
			return err
		}
	}
	existing.Close()

	for _, r := range recs {
		if err := w.Append(r.cluster, r.id, r.values); err != nil {
			return err
		}
	}

	tmp := path + ".tmp"
	if err := w.Flush(tmp); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("core: replace partition %d: %w", pid, err)
	}
	// The partition cache, when enabled, may hold the replaced file; drop
	// it so the next query loads the merged contents. In-flight queries
	// keep scanning their immutable snapshot.
	ix.Cl.InvalidatePartition(path)
	ix.Parts.Counts[pid] = w.Count()
	return nil
}
