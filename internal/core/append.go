package core

import (
	"fmt"
	"math/rand/v2"
	"os"
	"sort"

	"climber/internal/cluster"
	"climber/internal/storage"
)

// Routed is one new data series with its assigned ID and the destination the
// skeleton routed it to. It is the unit of work shared by the synchronous
// Append path and the streaming ingestion compactor (internal/ingest), both
// of which ultimately land records in partition files via WriteRouted.
type Routed struct {
	ID     int
	Route  cluster.Route
	Values []float64
}

// initNextID seeds the index's ID counter from the persisted partition
// counts. Build and OpenIndex call it once; afterwards every ID comes from
// ReserveIDs so concurrent writers can never mint duplicates by re-reading
// mutable state.
func (ix *Index) initNextID() {
	total := 0
	for _, c := range ix.Partitions().Counts {
		total += c
	}
	ix.nextID.Store(int64(total))
}

// ReserveIDs atomically reserves n consecutive record IDs and returns the
// first. IDs continue the build sequence (build assigns 0..N-1).
func (ix *Index) ReserveIDs(n int) int {
	return int(ix.nextID.Add(int64(n))) - n
}

// EnsureNextID raises the ID counter to at least min. WAL replay uses it so
// IDs acked before a crash are never reissued after reopen.
func (ix *Index) EnsureNextID(min int) {
	for {
		cur := ix.nextID.Load()
		if cur >= int64(min) || ix.nextID.CompareAndSwap(cur, int64(min)) {
			return
		}
	}
}

// UnreserveIDs returns a failed write's ID reservation, keeping the ID
// sequence dense. If the counter moved on (another writer reserved past us
// — possible only when the caller broke the serialisation contract), the
// burned gap is left in place; a gap is tolerable for the writer that kept
// the contract, while reissuing IDs under it would not be. Dense IDs matter
// because initNextID re-derives the counter from the record count at open:
// a gap below the final count would make a future open reissue the ID of a
// durable record.
func (ix *Index) UnreserveIDs(first, n int) {
	ix.nextID.CompareAndSwap(int64(first+n), int64(first))
}

// PersistedRecords returns the number of records held by the partition
// files, per the manifest. With a live delta index the database's total
// record count is this plus the delta's length.
func (ix *Index) PersistedRecords() int {
	ix.countsMu.Lock()
	defer ix.countsMu.Unlock()
	total := 0
	for _, c := range ix.Partitions().Counts {
		total += c
	}
	return total
}

// RouteNewRecord routes one new record through the skeleton's pivots,
// groups, and tries (exactly like Step 4 of construction). The tie-break
// generator is derived from the record ID with the same formula the build
// uses, so a record's destination is a pure function of
// (skeleton, seed, id, values) — WAL replay after a crash recomputes
// identical routes, and an online reindex re-routes the surviving delta
// against the new skeleton with the same determinism.
func (s *Skeleton) RouteNewRecord(id int, values []float64) cluster.Route {
	rng := rand.New(rand.NewPCG(s.Cfg.Seed, uint64(id)+0x9e3779b97f4a7c15))
	return s.RouteRecord(values, rng)
}

// RouteNew routes one new record through the current generation's skeleton;
// see Skeleton.RouteNewRecord.
func (ix *Index) RouteNew(id int, values []float64) cluster.Route {
	return ix.Skeleton().RouteNewRecord(id, values)
}

// Append inserts new data series into a built index without rebuilding the
// skeleton: each record is routed through the existing pivots, groups, and
// tries and appended to its partition file. Appended records receive IDs
// continuing the build sequence; the assigned IDs are returned in input
// order.
//
// The skeleton's partitioning was derived from the original sample, so a
// heavily appended index drifts from its capacity targets — like the
// paper's prototype, rebuilding is the answer once partitions grow far past
// the capacity constraint (the soft-constraint discussion of Section V).
//
// Concurrency: ID assignment is atomic, but the partition rewrites are not
// — concurrent Append calls may interleave read-modify-replace cycles on
// the same partition file and lose records, so callers must serialise them.
// climber.DB does this internally by funnelling every write through its
// ingestion pipeline; direct users of core.Index remain responsible for it.
func (ix *Index) Append(records [][]float64) ([]int, error) {
	if len(records) == 0 {
		return nil, nil
	}
	seriesLen := ix.Skeleton().SeriesLen
	for i, r := range records {
		if len(r) != seriesLen {
			return nil, fmt.Errorf("core: appended record %d has length %d, index stores %d",
				i, len(r), seriesLen)
		}
	}
	first := ix.ReserveIDs(len(records))
	routed := make([]Routed, len(records))
	ids := make([]int, len(records))
	for i, r := range records {
		id := first + i
		ids[i] = id
		routed[i] = Routed{ID: id, Route: ix.RouteNew(id, r), Values: r}
	}
	if err := ix.WriteRouted(routed); err != nil {
		// Hand the reservation back so the ID sequence stays dense. Any
		// partitions already rewritten hold orphans under these IDs; a
		// retry reissues the same IDs and the replace-by-ID merge lands
		// the new records exactly once in the orphans' place.
		ix.UnreserveIDs(first, len(records))
		return nil, err
	}
	return ids, nil
}

// WriteRouted lands already-routed records in their partition files,
// grouping by destination so each affected partition is rewritten once.
// Callers must serialise WriteRouted calls (see Append) — which also keeps
// them serialised against generation swaps, so the whole batch lands in one
// generation's files. Queries running concurrently are safe — partition
// files are replaced atomically, so they see either the old or the new
// consistent snapshot.
func (ix *Index) WriteRouted(recs []Routed) error {
	g := ix.AcquireGeneration()
	defer g.Release()
	byPartition := make(map[int][]Routed)
	for _, r := range recs {
		byPartition[r.Route.Partition] = append(byPartition[r.Route.Partition], r)
	}
	pids := make([]int, 0, len(byPartition))
	for pid := range byPartition {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		if err := ix.appendToPartition(g, pid, byPartition[pid]); err != nil {
			return err
		}
	}
	return nil
}

// appendToPartition merges recs into one partition file. Partition files are
// immutable cluster-contiguous layouts, so append is read-modify-replace —
// cheap because partitions are capacity bounded.
//
// The merge is idempotent: an existing record whose ID reappears in recs is
// replaced rather than duplicated. This is what makes WAL replay after a
// crash between partition writes and the manifest save safe — recompacting
// a replayed record lands it exactly once.
func (ix *Index) appendToPartition(g *Generation, pid int, recs []Routed) error {
	path := g.Parts.Paths[pid]
	w := storage.NewPartitionWriter(g.Parts.SeriesLen)
	incoming := make(map[int]struct{}, len(recs))
	for _, r := range recs {
		incoming[r.ID] = struct{}{}
	}

	existing, err := storage.OpenPartition(path)
	if err != nil {
		return err
	}
	for _, ci := range existing.Clusters() {
		cid := ci.ID
		err := existing.ScanCluster(cid, func(id int, values []float64) error {
			if _, replaced := incoming[id]; replaced {
				return nil
			}
			return w.Append(cid, id, values)
		})
		if err != nil {
			existing.Close()
			return err
		}
	}
	existing.Close()

	for _, r := range recs {
		// Routed delta records are immutable once drained, so the writer can
		// take ownership of the slice instead of copying it.
		if err := w.AppendOwned(r.Route.Cluster, r.ID, r.Values); err != nil {
			return err
		}
	}

	tmp := path + ".tmp"
	if err := w.Flush(tmp); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("core: replace partition %d: %w", pid, err)
	}
	// The partition cache, when enabled, may hold the replaced file; drop
	// it so the next query loads the merged contents. In-flight queries
	// keep scanning their immutable snapshot.
	ix.Cl.InvalidatePartition(path)
	ix.countsMu.Lock()
	g.Parts.Counts[pid] = w.Count()
	ix.countsMu.Unlock()
	return nil
}
