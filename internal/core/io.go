package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"climber/internal/cluster"
	"climber/internal/grouping"
	"climber/internal/metric"
	"climber/internal/paa"
	"climber/internal/pivot"
	"climber/internal/trie"
)

// The skeleton file is the serialised global index — the structure the
// paper broadcasts to every worker and whose size Figure 8 reports. The
// format is a flat little-endian layout: config, pivot coordinates, then
// each group's centroid and trie in DFS preorder.
const (
	skeletonMagic   = "CLMS"
	skeletonVersion = 1
)

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// EncodedSize returns the byte size of the serialised skeleton — the
// "global index size" metric of Figures 8(b)/(d) and 12.
func (s *Skeleton) EncodedSize() int {
	var cw countingWriter
	if err := s.Encode(&cw); err != nil {
		return 0 // cannot happen with a non-failing writer
	}
	return int(cw.n)
}

type binWriter struct {
	w   io.Writer
	err error
	buf [8]byte
}

func (b *binWriter) u64(v uint64) {
	if b.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(b.buf[:], v)
	_, b.err = b.w.Write(b.buf[:])
}
func (b *binWriter) i64(v int64)   { b.u64(uint64(v)) }
func (b *binWriter) i(v int)       { b.i64(int64(v)) }
func (b *binWriter) f64(v float64) { b.u64(math.Float64bits(v)) }
func (b *binWriter) raw(p []byte) {
	if b.err != nil {
		return
	}
	_, b.err = b.w.Write(p)
}

type binReader struct {
	r   io.Reader
	err error
	buf [8]byte
}

func (b *binReader) u64() uint64 {
	if b.err != nil {
		return 0
	}
	if _, err := io.ReadFull(b.r, b.buf[:]); err != nil {
		b.err = err
		return 0
	}
	return binary.LittleEndian.Uint64(b.buf[:])
}
func (b *binReader) i64() int64   { return int64(b.u64()) }
func (b *binReader) i() int       { return int(b.i64()) }
func (b *binReader) f64() float64 { return math.Float64frombits(b.u64()) }
func (b *binReader) raw(p []byte) {
	if b.err != nil {
		return
	}
	if _, err := io.ReadFull(b.r, p); err != nil {
		b.err = err
	}
}

// Encode serialises the skeleton.
func (s *Skeleton) Encode(w io.Writer) error {
	bw := &binWriter{w: w}
	bw.raw([]byte(skeletonMagic))
	bw.i(skeletonVersion)

	// Config.
	c := s.Cfg
	bw.i(c.Segments)
	bw.i(c.NumPivots)
	bw.i(c.PrefixLen)
	bw.i(c.Capacity)
	bw.f64(c.SampleRate)
	bw.i(c.Epsilon)
	bw.i(c.MaxCentroids)
	bw.i(int(c.Decay))
	bw.f64(c.Lambda)
	bw.u64(c.Seed)
	bw.i(c.BlockSize)
	if c.DisableWDTieBreak {
		bw.i(1)
	} else {
		bw.i(0)
	}
	bw.i(s.SeriesLen)

	// Pivots (dimension is Segments).
	flat := s.Pivots.Flat()
	bw.i(len(flat))
	for _, v := range flat {
		bw.f64(v)
	}

	// Groups.
	bw.i(len(s.Groups))
	for _, g := range s.Groups {
		bw.i(len(g.Centroid))
		for _, id := range g.Centroid {
			bw.i(id)
		}
		bw.i(g.DefaultPartition)
		bw.i64(g.ClusterBase)
		encodeTrie(bw, g.Trie)
	}

	bw.i(s.NumPartitions)
	bw.i(len(s.PartitionEst))
	for _, v := range s.PartitionEst {
		bw.i(v)
	}
	return bw.err
}

func encodeTrie(bw *binWriter, n *trie.Node) {
	bw.i(n.ID)
	bw.i(n.Pivot)
	bw.i(n.Depth)
	bw.i(n.Count)
	bw.i(len(n.Partitions))
	for _, p := range n.Partitions {
		bw.i(p)
	}
	bw.i(len(n.Children))
	for _, c := range n.Children {
		encodeTrie(bw, c)
	}
}

func decodeTrie(br *binReader) *trie.Node {
	n := &trie.Node{}
	n.ID = br.i()
	n.Pivot = br.i()
	n.Depth = br.i()
	n.Count = br.i()
	nParts := br.i()
	if br.err != nil || nParts < 0 || nParts > 1<<24 {
		br.err = fmt.Errorf("core: corrupt trie partition count")
		return n
	}
	n.Partitions = make([]int, nParts)
	for i := range n.Partitions {
		n.Partitions[i] = br.i()
	}
	nChildren := br.i()
	if br.err != nil || nChildren < 0 || nChildren > 1<<24 {
		br.err = fmt.Errorf("core: corrupt trie fanout")
		return n
	}
	for i := 0; i < nChildren; i++ {
		n.Children = append(n.Children, decodeTrie(br))
	}
	return n
}

// DecodeSkeleton reads a skeleton serialised by Encode and reconstructs the
// derived components (transformer, weigher, assigner).
func DecodeSkeleton(r io.Reader) (*Skeleton, error) {
	br := &binReader{r: r}
	magic := make([]byte, 4)
	br.raw(magic)
	if br.err == nil && string(magic) != skeletonMagic {
		return nil, fmt.Errorf("core: bad skeleton magic %q", magic)
	}
	if v := br.i(); br.err == nil && v != skeletonVersion {
		return nil, fmt.Errorf("core: unsupported skeleton version %d", v)
	}

	var c Config
	c.Segments = br.i()
	c.NumPivots = br.i()
	c.PrefixLen = br.i()
	c.Capacity = br.i()
	c.SampleRate = br.f64()
	c.Epsilon = br.i()
	c.MaxCentroids = br.i()
	c.Decay = metric.DecayKind(br.i())
	c.Lambda = br.f64()
	c.Seed = br.u64()
	c.BlockSize = br.i()
	c.DisableWDTieBreak = br.i() != 0
	seriesLen := br.i()
	if br.err != nil {
		return nil, fmt.Errorf("core: read skeleton config: %w", br.err)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("core: skeleton config: %w", err)
	}

	nFlat := br.i()
	if br.err != nil || nFlat < 0 || nFlat != c.NumPivots*c.Segments {
		return nil, fmt.Errorf("core: corrupt pivot payload (%d values for %d x %d)", nFlat, c.NumPivots, c.Segments)
	}
	pivots := make([][]float64, c.NumPivots)
	for i := range pivots {
		p := make([]float64, c.Segments)
		for j := range p {
			p[j] = br.f64()
		}
		pivots[i] = p
	}
	pset, err := pivot.NewSet(pivots, c.PrefixLen)
	if err != nil {
		return nil, err
	}

	nGroups := br.i()
	if br.err != nil || nGroups <= 0 || nGroups > 1<<24 {
		return nil, fmt.Errorf("core: corrupt group count %d", nGroups)
	}
	groups := make([]*Group, nGroups)
	var centroids []pivot.Signature
	for gid := 0; gid < nGroups; gid++ {
		g := &Group{ID: gid}
		cLen := br.i()
		if br.err != nil || cLen < 0 || cLen > 1<<20 {
			return nil, fmt.Errorf("core: corrupt centroid length")
		}
		if cLen > 0 {
			g.Centroid = make(pivot.Signature, cLen)
			for i := range g.Centroid {
				g.Centroid[i] = br.i()
			}
		}
		g.DefaultPartition = br.i()
		g.ClusterBase = br.i64()
		g.Trie = decodeTrie(br)
		if br.err != nil {
			return nil, fmt.Errorf("core: read group %d: %w", gid, br.err)
		}
		// Node IDs must be the DFS preorder 0..n-1 before indexNodes may
		// build its dense lookup table; anything else is corruption.
		nodes := g.Trie.Nodes()
		seen := make([]bool, len(nodes))
		for _, nd := range nodes {
			if nd.ID < 0 || nd.ID >= len(nodes) || seen[nd.ID] {
				return nil, fmt.Errorf("core: group %d has corrupt trie node IDs", gid)
			}
			seen[nd.ID] = true
		}
		g.indexNodes()
		groups[gid] = g
		if gid > 0 {
			centroids = append(centroids, g.Centroid)
		}
	}

	numPartitions := br.i()
	nEst := br.i()
	if br.err != nil || nEst < 0 || nEst > 1<<24 {
		return nil, fmt.Errorf("core: corrupt partition estimates")
	}
	est := make([]int, nEst)
	for i := range est {
		est[i] = br.i()
	}
	if br.err != nil {
		return nil, fmt.Errorf("core: read skeleton: %w", br.err)
	}

	tr, err := paa.NewTransformer(seriesLen, c.Segments)
	if err != nil {
		return nil, err
	}
	weigher, err := metric.NewWeigher(c.PrefixLen, c.Decay, c.Lambda)
	if err != nil {
		return nil, err
	}
	assigner, err := grouping.NewAssigner(centroids, weigher)
	if err != nil {
		return nil, err
	}
	assigner.UseWeightTieBreak = !c.DisableWDTieBreak
	return &Skeleton{
		Cfg:           c,
		SeriesLen:     seriesLen,
		Transformer:   tr,
		Pivots:        pset,
		Weigher:       weigher,
		Assigner:      assigner,
		Groups:        groups,
		NumPartitions: numPartitions,
		PartitionEst:  est,
	}, nil
}

// SaveIndex persists an index's metadata — the current generation's skeleton
// plus its partition manifest — to one file. Partition files stay where the
// cluster wrote them.
func SaveIndex(ix *Index, path string) error {
	g := ix.AcquireGeneration()
	defer g.Release()
	return SaveSnapshot(g.Skel, g.Parts, path)
}

// SaveSnapshot persists a skeleton plus a partition manifest to one file —
// the serialised form of a generation. Partition paths under the file's own
// directory are stored relative to it, so a generation directory (and a
// backup assembled from one) can be relocated or copied wholesale and still
// open; paths elsewhere are stored as given.
//
// The write is atomic (temp file + fsync + rename): the manifest is the
// WAL-replay baseline and the streaming compactor rewrites it on every
// compaction, so a kill mid-save must leave either the old or the new
// manifest, never a truncated one that would make the database unopenable.
func SaveSnapshot(skel *Skeleton, parts *cluster.PartitionSet, path string) error {
	root := filepath.Dir(path)
	tmp := path + ".tmp"
	crashStep("index-write")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: create index file: %w", err)
	}
	w := bufio.NewWriter(f)
	if err := skel.Encode(w); err != nil {
		f.Close()
		return fmt.Errorf("core: encode skeleton: %w", err)
	}
	bw := &binWriter{w: w}
	bw.i(parts.SeriesLen)
	bw.i(len(parts.Paths))
	for i, p := range parts.Paths {
		if rel, err := filepath.Rel(root, p); err == nil && filepath.IsLocal(rel) {
			p = rel
		}
		bw.i(len(p))
		bw.raw([]byte(p))
		bw.i(parts.Counts[i])
	}
	if bw.err != nil {
		f.Close()
		return fmt.Errorf("core: encode manifest: %w", bw.err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("core: flush index file: %w", err)
	}
	crashStep("index-fsync")
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("core: sync index file: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("core: close index file: %w", err)
	}
	crashStep("index-rename")
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("core: replace index file: %w", err)
	}
	return nil
}

// OpenIndex loads index metadata saved by SaveIndex and attaches it to the
// given cluster for partition I/O accounting.
func OpenIndex(cl *cluster.Cluster, path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: open index file: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	skel, err := DecodeSkeleton(r)
	if err != nil {
		return nil, err
	}
	br := &binReader{r: r}
	parts := &cluster.PartitionSet{}
	parts.SeriesLen = br.i()
	n := br.i()
	if br.err != nil || n < 0 || n > 1<<24 {
		return nil, fmt.Errorf("core: corrupt partition manifest")
	}
	root := filepath.Dir(path)
	for i := 0; i < n; i++ {
		pl := br.i()
		if br.err != nil || pl < 0 || pl > 1<<16 {
			return nil, fmt.Errorf("core: corrupt partition path length")
		}
		p := make([]byte, pl)
		br.raw(p)
		pp := string(p)
		// Manifests written by SaveSnapshot carry generation-relative
		// paths; resolve them against the manifest's own directory. Old
		// absolute-path manifests pass through unchanged.
		if !filepath.IsAbs(pp) {
			pp = filepath.Join(root, pp)
		}
		parts.Paths = append(parts.Paths, pp)
		parts.Counts = append(parts.Counts, br.i())
	}
	if br.err != nil {
		return nil, fmt.Errorf("core: read manifest: %w", br.err)
	}
	ix := &Index{Cl: cl}
	ix.gen.Store(NewGeneration(skel, parts))
	ix.initNextID()
	return ix, nil
}
