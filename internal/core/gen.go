package core

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"climber/internal/cluster"
)

// This file is the generation subsystem behind online reindex: a database
// directory holds one *active generation* — a skeleton file plus partition
// files — named by a tiny fsynced MANIFEST pointer file. Reindex builds a
// complete new generation in a sibling gen-NNNN directory and commits it by
// atomically renaming the MANIFEST; readers that were mid-query keep a
// refcounted handle on the old generation until they finish, exactly like
// readers of a path-copying persistent data structure keep the old version.
//
// On-disk layout:
//
//	dir/MANIFEST          names the active generation ("gen-0007"); absent
//	                      for a database still on its build-time layout
//	                      (generation 0: index.clms + cluster/node*/ files)
//	dir/index.clms        generation 0 skeleton + partition manifest
//	dir/cluster/node*/    generation 0 partition and block files
//	dir/gen-NNNN/         generation N root: its own index.clms and
//	dir/gen-NNNN/node*/   partition files
//	dir/wal.clmw          the write-ahead log, shared across generations
//
// The partition manifest inside index.clms stores paths relative to the
// generation root (see SaveSnapshot), so a generation directory — and a
// backup hard-linked from one — is relocatable as a unit.

// IndexPathIn returns the skeleton/manifest file path of the generation
// rooted at genRoot. Generation 0's root is the database directory itself.
//
//climber:genpath
func IndexPathIn(genRoot string) string { return filepath.Join(genRoot, "index.clms") }

// GenDir returns the root directory of generation n under the database
// directory. n must be positive; generation 0 is the database directory.
//
//climber:genpath
func GenDir(dir string, n int) string { return filepath.Join(dir, genName(n)) }

// genName formats a generation directory name.
//
//climber:genpath
func genName(n int) string { return fmt.Sprintf("gen-%04d", n) }

// manifestPath returns the MANIFEST pointer file path.
//
//climber:genpath
func manifestPath(dir string) string { return filepath.Join(dir, "MANIFEST") }

// genNodeDir returns the node subdirectory of a generation root.
func genNodeDir(genRoot string, node int) string {
	return filepath.Join(genRoot, fmt.Sprintf("node%02d", node))
}

// genPartitionPath returns the partition file path of partition pid inside a
// generation root, mirroring the build-time shuffle's round-robin layout.
//
//climber:genpath
func genPartitionPath(genRoot string, node, pid int, name string) string {
	return filepath.Join(genNodeDir(genRoot, node), fmt.Sprintf("%s-part%05d.clmp", name, pid))
}

// Generation is one immutable snapshot of the index: the skeleton, the
// partition files it references, and the delta of appends routed under that
// skeleton. Queries acquire a generation for their whole lifetime, so a
// reindex swap never changes what one query observes; the refcount tells the
// swapper when the last reader of a replaced generation is gone and its
// files may be deleted.
type Generation struct {
	// Skel and Parts are immutable after the generation is published
	// (partition *contents* still grow through compaction, which rewrites
	// files atomically; Paths and the skeleton never change).
	Skel  *Skeleton
	Parts *cluster.PartitionSet

	// delta is the in-memory index of appends routed under this
	// generation's skeleton but not yet compacted into its partition files.
	deltaMu sync.RWMutex
	delta   DeltaSource

	// refs counts live handles: one base reference held by the Index while
	// the generation is current, plus one per in-flight query. drained
	// closes when the count first reaches zero — after the generation has
	// been swapped out and its last reader finished.
	refs      atomic.Int64
	drainOnce sync.Once
	drained   chan struct{}
}

// NewGeneration wraps a skeleton and partition set as a generation holding
// its base reference.
func NewGeneration(skel *Skeleton, parts *cluster.PartitionSet) *Generation {
	g := &Generation{Skel: skel, Parts: parts, drained: make(chan struct{})}
	g.refs.Store(1)
	return g
}

// Release drops one reference. When the last one goes — possible only after
// SwapGeneration released the base reference — Drained is closed.
func (g *Generation) Release() {
	if g.refs.Add(-1) == 0 {
		g.drainOnce.Do(func() { close(g.drained) })
	}
}

// Drained is closed once the generation has been swapped out and its last
// in-flight reader released it; from then on its files have no reader and
// may be deleted.
func (g *Generation) Drained() <-chan struct{} { return g.drained }

// SetDelta installs (or, with nil, removes) the generation's delta source.
func (g *Generation) SetDelta(d DeltaSource) {
	g.deltaMu.Lock()
	g.delta = d
	g.deltaMu.Unlock()
}

// Delta returns the generation's delta source, or nil.
func (g *Generation) Delta() DeltaSource {
	g.deltaMu.RLock()
	d := g.delta
	g.deltaMu.RUnlock()
	return d
}

// AcquireGeneration returns the current generation with a reference held;
// the caller must Release it. The load-increment-recheck loop makes the
// acquisition safe against a concurrent swap: if the generation changed
// under us, the speculative reference is returned and the load retried.
func (ix *Index) AcquireGeneration() *Generation {
	for {
		g := ix.gen.Load()
		g.refs.Add(1)
		if ix.gen.Load() == g {
			return g
		}
		g.Release()
	}
}

// SwapGeneration atomically publishes ng as the current generation and
// releases the Index's base reference on the previous one, which is
// returned so the caller can wait for Drained before deleting its files.
// Callers must serialise SwapGeneration with every write path (climber.DB
// runs it under the ingestion semaphore).
func (ix *Index) SwapGeneration(ng *Generation) *Generation {
	old := ix.gen.Swap(ng)
	old.Release()
	return old
}

// Gen returns the current generation without acquiring a reference — for
// metadata reads only (the Go objects outlive any swap; only files are
// reclaimed, and file access requires AcquireGeneration).
func (ix *Index) Gen() *Generation { return ix.gen.Load() }

// Skeleton returns the current generation's skeleton.
func (ix *Index) Skeleton() *Skeleton { return ix.gen.Load().Skel }

// Partitions returns the current generation's partition set.
func (ix *Index) Partitions() *cluster.PartitionSet { return ix.gen.Load().Parts }

// crashHook, when set by a test, observes every durability step of the
// generation-swap protocol (partition writes, fsyncs, the MANIFEST rename)
// immediately *before* the step executes. The kill-anywhere crash matrix
// sets a hook that SIGKILLs the process at an enumerated step and asserts
// that reopening observes a fully-old or fully-new generation, never a mix.
var (
	crashHookMu sync.RWMutex
	crashHook   func(step string)
)

// SetCrashStepHook installs fn as the swap-protocol step observer; nil
// removes it. Test-only.
func SetCrashStepHook(fn func(step string)) {
	crashHookMu.Lock()
	crashHook = fn
	crashHookMu.Unlock()
}

// crashStep announces a named durability step to the installed hook.
func crashStep(step string) {
	crashHookMu.RLock()
	fn := crashHook
	crashHookMu.RUnlock()
	if fn != nil {
		fn(step)
	}
}

// syncDir fsyncs a directory so a preceding create/rename of one of its
// entries is durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("core: open dir for sync: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("core: sync dir %s: %w", dir, err)
	}
	return nil
}

// syncFile fsyncs an already-written file by path.
func syncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("core: open for sync: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("core: sync %s: %w", path, err)
	}
	return nil
}

// WriteManifestPointer atomically points dir's MANIFEST at the named
// generation directory — the commit point of a reindex. The write is
// tmp + fsync + rename + parent-dir fsync: a crash strictly before the
// rename leaves the previous pointer (or none), a crash at or after it
// leaves the new one; no interleaving exposes a torn pointer.
func WriteManifestPointer(dir string, num int) error {
	name := genName(num)
	mp := manifestPath(dir)
	tmp := mp + ".tmp"
	crashStep("manifest-write")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: create manifest: %w", err)
	}
	if _, err := f.WriteString(name + "\n"); err != nil {
		f.Close()
		return fmt.Errorf("core: write manifest: %w", err)
	}
	crashStep("manifest-fsync")
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("core: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("core: close manifest: %w", err)
	}
	crashStep("manifest-rename")
	if err := os.Rename(tmp, mp); err != nil {
		return fmt.Errorf("core: commit manifest: %w", err)
	}
	crashStep("root-dir-sync")
	if err := syncDir(dir); err != nil {
		return err
	}
	crashStep("commit-done")
	return nil
}

// ActiveGeneration resolves dir's active generation from its MANIFEST
// pointer: the generation root directory and number. A database without a
// MANIFEST is on its build-time layout — generation 0, rooted at dir
// itself.
func ActiveGeneration(dir string) (root string, num int, err error) {
	b, err := os.ReadFile(manifestPath(dir))
	if errors.Is(err, fs.ErrNotExist) {
		return dir, 0, nil
	}
	if err != nil {
		return "", 0, fmt.Errorf("core: read manifest: %w", err)
	}
	name := strings.TrimSpace(string(b))
	var n int
	if _, serr := fmt.Sscanf(name, "gen-%d", &n); serr != nil || n <= 0 || name != genName(n) {
		return "", 0, fmt.Errorf("core: corrupt manifest pointer %q", name)
	}
	return GenDir(dir, n), n, nil
}

// CleanStaleGenerations removes generation remains that the active pointer
// does not reference: gen-NNNN directories other than the active one (debris
// of a reindex that crashed mid-build or mid-cleanup) and, when a gen-NNNN
// generation is active, the superseded generation-0 files (index.clms and
// the cluster/ tree). It is best-effort — the first removal error is
// returned, but a failure leaves only unreferenced files behind.
func CleanStaleGenerations(dir string, activeNum int) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("core: scan for stale generations: %w", err)
	}
	var firstErr error
	keep := func(e error) {
		if firstErr == nil && e != nil {
			firstErr = e
		}
	}
	for _, ent := range entries {
		if !ent.IsDir() || !strings.HasPrefix(ent.Name(), "gen-") {
			continue
		}
		var n int
		if _, serr := fmt.Sscanf(ent.Name(), "gen-%d", &n); serr != nil || ent.Name() != genName(n) {
			continue // not ours
		}
		if n == activeNum {
			continue
		}
		keep(os.RemoveAll(filepath.Join(dir, ent.Name())))
	}
	if activeNum > 0 {
		if err := os.Remove(IndexPathIn(dir)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			keep(err)
		}
		keep(os.RemoveAll(filepath.Join(dir, "cluster")))
	}
	return firstErr
}
