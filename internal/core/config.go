package core

import (
	"fmt"
	"runtime"

	"climber/internal/metric"
)

// Config carries every tunable of the system, with defaults matching the
// paper's experimental setup (Section VII-A) except for scale-dependent
// values (capacity, block size), which are expressed in records rather than
// HDFS bytes.
type Config struct {
	// Segments is w, the number of PAA segments (Step 1 of CLIMBER-FX).
	Segments int
	// NumPivots is r, the number of Voronoi pivots (paper default 200).
	NumPivots int
	// PrefixLen is m, the pivot-permutation prefix length (paper default 10).
	PrefixLen int
	// Capacity is c, the partition capacity in records (the paper's 64 MB
	// HDFS block, rescaled to record counts).
	Capacity int
	// SampleRate is α, the fraction of raw blocks sampled for skeleton
	// construction.
	SampleRate float64
	// Epsilon is the minimum Overlap Distance between group centroids
	// (Algorithm 2, Lines 5-9).
	Epsilon int
	// MaxCentroids optionally caps the number of groups; 0 = unlimited.
	MaxCentroids int
	// Decay selects the pivot-weight decay function (Definition 9).
	Decay metric.DecayKind
	// Lambda is the decay rate; <= 0 selects the per-kind default
	// (1/2 exponential, 1/m linear).
	Lambda float64
	// Seed drives every random choice (pivot selection, tie-breaks) for
	// reproducible builds.
	Seed uint64
	// Workers is the goroutine parallelism of the CPU-bound skeleton-
	// construction loops (PAA transforms, signature aggregation, group
	// assignment); 0 uses every available core, 1 forces the sequential
	// build. The result is bit-identical at any worker count — every random
	// tie-break derives from per-record/per-signature seeded generators, so
	// scheduling can never leak into the layout — and Workers is therefore
	// deliberately not serialised into the skeleton file. The conversion and
	// re-distribution phases follow the cluster's worker pool instead
	// (cluster.Config WorkersPerNode x NumNodes).
	Workers int
	// BlockSize is the raw-dataset block size in records used when
	// ingesting data into the simulated cluster.
	BlockSize int
	// DisableWDTieBreak turns off the Weight Distance stage of Algorithm 1,
	// resolving Overlap Distance ties randomly. It exists only for the
	// dual-representation ablation (cmd/climber-bench -experiment abl-dual); production indexes keep it
	// false.
	DisableWDTieBreak bool
}

// DefaultConfig returns the paper's default parameters, scaled to
// record-count capacities suitable for a single machine.
func DefaultConfig() Config {
	return Config{
		Segments:     16,
		NumPivots:    200,
		PrefixLen:    10,
		Capacity:     2000,
		SampleRate:   0.10,
		Epsilon:      2,
		MaxCentroids: 0,
		Decay:        metric.ExponentialDecay,
		Lambda:       0, // kind default
		Seed:         42,
		BlockSize:    5000,
	}
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.Segments <= 0 {
		return fmt.Errorf("core: Segments must be positive, got %d", c.Segments)
	}
	if c.NumPivots <= 0 {
		return fmt.Errorf("core: NumPivots must be positive, got %d", c.NumPivots)
	}
	if c.PrefixLen <= 0 || c.PrefixLen > c.NumPivots {
		return fmt.Errorf("core: PrefixLen must be in [1, NumPivots=%d], got %d", c.NumPivots, c.PrefixLen)
	}
	if c.Capacity <= 0 {
		return fmt.Errorf("core: Capacity must be positive, got %d", c.Capacity)
	}
	if c.SampleRate <= 0 || c.SampleRate > 1 {
		return fmt.Errorf("core: SampleRate must be in (0, 1], got %g", c.SampleRate)
	}
	if c.Epsilon < 0 {
		return fmt.Errorf("core: Epsilon must be non-negative, got %d", c.Epsilon)
	}
	if c.MaxCentroids < 0 {
		return fmt.Errorf("core: MaxCentroids must be non-negative, got %d", c.MaxCentroids)
	}
	if c.BlockSize <= 0 {
		return fmt.Errorf("core: BlockSize must be positive, got %d", c.BlockSize)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers must be non-negative, got %d", c.Workers)
	}
	return nil
}

// workers resolves the effective skeleton-build parallelism.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}
