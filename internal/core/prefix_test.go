package core

import (
	"testing"

	"climber/internal/dataset"
	"climber/internal/dss"
	"climber/internal/series"
)

func TestSearchPrefixBasics(t *testing.T) {
	cfg := testConfig()
	ix, ds, _, _ := buildTestIndex(t, 2000, cfg)

	// A prefix of a stored record must find that record at (float32)
	// distance ~0 over the compared prefix.
	q := make([]float64, 32)
	copy(q, ds.Get(55)[:32])
	res, err := ix.SearchPrefix(q, SearchOptions{K: 10, Variant: VariantAdaptive4X})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 10 {
		t.Fatalf("got %d results, want 10", len(res.Results))
	}
	found := false
	for _, r := range res.Results {
		if r.ID == 55 {
			found = true
			if r.Dist > 1e-3 {
				t.Fatalf("prefix self-match distance %g", r.Dist)
			}
		}
	}
	// Prefix signatures differ from full-series signatures, so routing may
	// miss; but the source record's own prefix is as close as possible and
	// should usually surface. Tolerate a miss only if distances are sane.
	if !found && res.Results[0].Dist <= 0 {
		t.Fatal("implausible result set for prefix query")
	}
	for i := 1; i < len(res.Results); i++ {
		if res.Results[i].Dist < res.Results[i-1].Dist {
			t.Fatal("results not ascending")
		}
	}
}

func TestSearchPrefixRecall(t *testing.T) {
	cfg := testConfig()
	ix, ds, _, _ := buildTestIndex(t, 3000, cfg)
	const k, prefixLen = 20, 32
	sum := 0.0
	qids := []int{10, 400, 900, 1500, 2500}
	for _, qid := range qids {
		q := make([]float64, prefixLen)
		copy(q, ds.Get(qid)[:prefixLen])
		exact := dss.SearchDatasetPrefix(ds, q, k)
		res, err := ix.SearchPrefix(q, SearchOptions{K: k, Variant: VariantAdaptive4X})
		if err != nil {
			t.Fatal(err)
		}
		sum += series.Recall(res.Results, exact)
	}
	// Prefix signatures differ from the full-series signatures records were
	// placed by, so recall here is structurally lower than full-length
	// search — the feature buys flexibility, not accuracy. Assert only that
	// it is clearly better than chance (k/n = 0.7%).
	avg := sum / float64(len(qids))
	t.Logf("prefix-query recall = %.3f", avg)
	if avg < 0.05 {
		t.Fatalf("prefix recall %.3f implausibly low", avg)
	}
}

func TestSearchPrefixValidation(t *testing.T) {
	cfg := testConfig()
	ix, ds, _, _ := buildTestIndex(t, 800, cfg)
	if _, err := ix.SearchPrefix(make([]float64, 100), SearchOptions{K: 5}); err == nil {
		t.Error("over-length prefix query accepted")
	}
	if _, err := ix.SearchPrefix(make([]float64, 3), SearchOptions{K: 5}); err == nil {
		t.Error("query shorter than segment count accepted")
	}
	if _, err := ix.SearchPrefix(ds.Get(0)[:32], SearchOptions{K: 0}); err == nil {
		t.Error("K = 0 accepted")
	}
	// Full-length input must behave exactly like Search.
	full, err := ix.SearchPrefix(ds.Get(0), SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ix.Search(ds.Get(0), SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Results {
		if full.Results[i].ID != direct.Results[i].ID {
			t.Fatal("full-length SearchPrefix diverges from Search")
		}
	}
}

func TestSearchPrefixAllVariants(t *testing.T) {
	cfg := testConfig()
	ix, ds, _, _ := buildTestIndex(t, 1500, cfg)
	q := ds.Get(77)[:32]
	for _, v := range []Variant{VariantKNN, VariantAdaptive2X, VariantAdaptive4X, VariantODSmallest} {
		res, err := ix.SearchPrefix(q, SearchOptions{K: 10, Variant: v})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if len(res.Results) == 0 {
			t.Fatalf("%v returned nothing", v)
		}
	}
}

func TestSearchDatasetPrefixOracle(t *testing.T) {
	ds := dataset.RandomWalk(64, 300, 5)
	q := ds.Get(42)[:24]
	res := dss.SearchDatasetPrefix(ds, q, 5)
	if res[0].ID != 42 || res[0].Dist != 0 {
		t.Fatalf("prefix oracle: self not first: %+v", res[0])
	}
}
