package core

import (
	"context"
	"math"
	"sort"

	"climber/internal/series"
	"climber/internal/storage"
)

// DeltaSource is the read interface of an in-memory delta index holding
// records appended but not yet compacted into partition files (see
// internal/ingest). Implementations must be safe for concurrent use with
// inserts: every search merges delta hits into its answer while writers add
// records.
type DeltaSource interface {
	// ScanPartition streams the delta records routed to partition pid.
	// clusters narrows the scan to the listed record clusters; nil means
	// every cluster of the partition. The values slice passed to fn must
	// stay valid after fn returns (delta records are immutable once added).
	ScanPartition(pid int, clusters map[storage.ClusterID]struct{}, fn func(id int, values []float64) error) error
	// Len returns the number of records currently held.
	Len() int
}

// SetDelta installs (or, with nil, removes) the delta index merged into
// every search answer on the *current* generation. It is called when a
// streaming ingestion pipeline attaches to the index; installing a new
// source while queries run is safe. During an online reindex the new
// generation gets its own re-routed delta before the swap, so this
// convenience forwarder always targets the generation queries will see.
func (ix *Index) SetDelta(d DeltaSource) {
	ix.gen.Load().SetDelta(d)
}

// Delta returns the current generation's delta source, or nil.
func (ix *Index) Delta() DeltaSource {
	return ix.gen.Load().Delta()
}

// scanDelta collects the delta records covered by the executed scan plan
// into a top-k of their own, so acked-but-uncompacted writes are immediately
// visible with exactly the pruning the on-disk plan used: records routed to
// unplanned partitions or clusters are skipped, mirroring how the disk scan
// would miss them after compaction. executed maps each scanned partition to
// the clusters actually compared (nil = every cluster, i.e. the partition
// was widened), so a budget-truncated query merges delta hits for exactly
// the coverage it achieved. The result is nil when no delta is installed or
// it is empty.
//
// The delta candidates deliberately do NOT share the disk scan's top-k
// accumulator: a record can transiently exist both in the delta and in a
// partition file while a compaction is landing, and pushing the duplicate
// into one k-bounded heap would evict a genuine k-th neighbour. Keeping the
// populations separate and merging with mergeResults dedupes without
// shrinking the answer.
//
// Delta comparisons are charged to RecordsScanned (and DeltaScanned) but to
// no partition load — the records are resident by definition.
func (g *Generation) scanDelta(ctx context.Context, executed planMap, k int, stats *QueryStats,
	dist func(values []float64, bound float64) float64) (*series.TopK, error) {
	d := g.Delta()
	if d == nil || d.Len() == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	top := series.NewTopK(k)
	scan := func(id int, values []float64) error {
		stats.RecordsScanned++
		stats.DeltaScanned++
		bound := math.Inf(1)
		if b, ok := top.Bound(); ok {
			bound = b
		}
		if dd := dist(values, bound); dd < bound {
			top.Push(id, dd)
		}
		return nil
	}
	for pid, clusters := range executed {
		if err := d.ScanPartition(pid, clusters, scan); err != nil {
			return nil, err
		}
	}
	return top, nil
}

// mergeResults combines the disk scan's top-k with the delta's top-k,
// deduplicating by ID and keeping the k closest. Any record in the true
// top-k of the union is in the top-k of whichever population holds it, so
// the merge is exact. A record transiently in both populations (appended,
// not yet compacted) may carry two slightly different distances: the disk
// copy is ranked by the raw float32 kernel (query rounded to storage
// precision), the delta copy by the float64 kernel over its decoded values.
// The sort below orders by (Dist, ID), so dedup deterministically keeps the
// copy with the smaller distance.
func mergeResults(disk, delta []series.Result, k int) []series.Result {
	all := make([]series.Result, 0, len(disk)+len(delta))
	all = append(all, disk...)
	all = append(all, delta...)
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	seen := make(map[int]struct{}, len(all))
	out := all[:0]
	for _, r := range all {
		if _, ok := seen[r.ID]; ok {
			continue
		}
		seen[r.ID] = struct{}{}
		out = append(out, r)
		if len(out) == k {
			break
		}
	}
	return out
}
