package core

import (
	"context"
	"testing"

	"climber/internal/cluster"
	"climber/internal/dataset"
	"climber/internal/obs"
)

// benchIndex builds one small index for the tracing benchmarks.
func benchIndex(b *testing.B) (*Index, []float64) {
	b.Helper()
	cfg := testConfig()
	ds := dataset.RandomWalk(64, 1500, 11)
	cl, err := cluster.New(cluster.Config{NumNodes: 2, WorkersPerNode: 1, BaseDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	bs, err := cl.IngestBlocks(ds, cfg.BlockSize, "bench")
	if err != nil {
		b.Fatal(err)
	}
	ix, err := Build(cl, bs, cfg, "bench")
	if err != nil {
		b.Fatal(err)
	}
	return ix, ds.Get(7)
}

// BenchmarkTracingOverhead measures the query path with tracing off (the
// production default: one context lookup) and always on (a full span tree
// built and kept per query). CI's bench smoke runs both arms; comparing
// their ns/op is the tracing-overhead acceptance check — "off" must track
// the pre-tracing query cost.
func BenchmarkTracingOverhead(b *testing.B) {
	ix, q := benchIndex(b)
	opts := SearchOptions{K: 10, Variant: VariantAdaptive4X}

	b.Run("off", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ix.SearchContext(ctx, q, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("always", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := obs.NewTrace("bench", "")
			ctx := obs.ContextWithSpan(context.Background(), tr.Root())
			if _, err := ix.SearchContext(ctx, q, opts); err != nil {
				b.Fatal(err)
			}
			tr.Root().End()
			if tr.Root().Data() == nil {
				b.Fatal("empty span tree")
			}
		}
	})
}
