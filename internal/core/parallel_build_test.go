package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"climber/internal/cluster"
	"climber/internal/dataset"
)

// hashFile returns the SHA-256 of a file's contents.
func hashFile(t *testing.T, path string) string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// buildArtifacts runs one full Build at the given worker count and returns a
// name -> SHA-256 map of every artefact: the in-memory skeleton encoding,
// the saved index manifest, and each partition file. The build always lands
// in the same baseDir (wiped first) because the manifest embeds absolute
// partition paths — building in per-run temp dirs would differ trivially.
func buildArtifacts(t *testing.T, baseDir string, capacity, workers int) map[string]string {
	t.Helper()
	if err := os.RemoveAll(baseDir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(baseDir, 0o755); err != nil {
		t.Fatal(err)
	}

	cl, err := cluster.New(cluster.Config{NumNodes: 2, WorkersPerNode: 2, BaseDir: baseDir})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.NumPivots = 50
	cfg.PrefixLen = 8
	cfg.BlockSize = 100
	cfg.Workers = workers
	if capacity > 0 {
		cfg.Capacity = capacity
	}
	ds := dataset.RandomWalk(64, 600, 11)
	bs, err := cl.IngestBlocks(ds, cfg.BlockSize, "det")
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(cl, bs, cfg, "det")
	if err != nil {
		t.Fatal(err)
	}

	out := make(map[string]string)
	var buf bytes.Buffer
	if err := ix.Skeleton().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	out["skeleton"] = hex.EncodeToString(sum[:])

	idxPath := filepath.Join(baseDir, "index.clms")
	if err := SaveIndex(ix, idxPath); err != nil {
		t.Fatal(err)
	}
	out["index.clms"] = hashFile(t, idxPath)
	for _, p := range ix.Partitions().Paths {
		out["partition/"+filepath.Base(p)] = hashFile(t, p)
	}
	return out
}

// TestParallelBuildBitIdentical pins the central guarantee of the parallel
// build: at ANY worker count the skeleton bytes, the index manifest, and
// every partition file are byte-identical to the sequential (Workers=1)
// build. Every random tie-break derives from per-record/per-signature seeded
// generators and every merge happens in sorted-key order, so goroutine
// scheduling must never leak into the artefacts. Two granularities are
// covered: the coarse default capacity (few partitions, shallow tries) and a
// fine capacity that forces many trie splits and partitions. CI runs this
// under -race, which also makes it the data-race probe for the build path.
func TestParallelBuildBitIdentical(t *testing.T) {
	granularities := []struct {
		name     string
		capacity int // 0 keeps the DefaultConfig capacity
	}{
		{"default-capacity", 0},
		{"fine-capacity", 50},
	}
	for _, g := range granularities {
		t.Run(g.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "build")
			want := buildArtifacts(t, dir, g.capacity, 1)
			for _, workers := range []int{4, 8} {
				got := buildArtifacts(t, dir, g.capacity, workers)
				if len(got) != len(want) {
					t.Fatalf("workers=%d produced %d artefacts, sequential build produced %d", workers, len(got), len(want))
				}
				for name, h := range want {
					if got[name] != h {
						t.Errorf("workers=%d: artefact %s differs from sequential build", workers, name)
					}
				}
			}
		})
	}
}
