package core

import (
	"context"
	"fmt"
	"math/rand/v2"
	"os"
	"sort"
	"time"

	"climber/internal/cluster"
	"climber/internal/series"
	"climber/internal/storage"
)

// RebuildGeneration builds a fresh generation of the index — new sample, new
// pivots, new skeleton, new partition files — from the records currently
// persisted in the acquired generation's partition files, writing everything
// under genRoot (a gen-NNNN directory that must not yet exist). It is the
// build half of an online reindex: the caller (climber.DB.Reindex) is
// responsible for quiescing the compactor first, committing the MANIFEST
// pointer afterwards, and swapping the returned generation in.
//
// The rebuild is CLIMBER construction (paper Figure 6) run over partition
// files instead of raw blocks:
//
//	pass 1: scan every partition, keep a deterministic per-record sample
//	        (decided by a PCG keyed on (seed, id), not on scan order),
//	        build the new skeleton from it;
//	pass 2: scan again, route every record through the new skeleton —
//	        Skeleton.RouteNewRecord, the same pure function WAL replay
//	        uses — and write the new partition files.
//
// Routing is a pure function of (skeleton, seed, id, values) and partition
// files enumerate records in sorted ID order, so the produced bytes are a
// deterministic function of the logical record set: the crash-matrix test
// relies on rebuilding the same input twice giving bit-identical files.
//
// Every written file is fsynced (and the directories containing them), so
// when the caller's MANIFEST rename commits, the generation it names is
// durable. The enumerated crashStep hooks mark each durability boundary.
//
// The new generation starts with no delta; the caller re-routes any
// uncompacted records into one before the swap. Records land in the new
// files exactly as persisted, preserving IDs.
func (ix *Index) RebuildGeneration(ctx context.Context, genRoot string, nodes int, name string) (*Generation, error) {
	if nodes <= 0 {
		nodes = 1
	}
	old := ix.AcquireGeneration()
	defer old.Release()
	cfg := old.Skel.Cfg
	seriesLen := old.Skel.SeriesLen
	start := time.Now()

	// --- pass 1: deterministic sample -> new skeleton ---------------------
	total := 0
	var sampleIDs []int
	sampleVals := make(map[int][]float64)
	for _, path := range old.Parts.Paths {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p, err := storage.OpenPartition(path)
		if err != nil {
			return nil, fmt.Errorf("core: reindex sample scan: %w", err)
		}
		err = p.ScanAll(func(id int, values []float64) error {
			total++
			// Sample membership must be a pure function of (seed, id) so the
			// rebuild is deterministic regardless of which partition the
			// record currently lives in.
			rng := rand.New(rand.NewPCG(cfg.Seed^0x9e3779b97f4a7c15, uint64(id)))
			if rng.Float64() >= cfg.SampleRate {
				return nil
			}
			cp := make([]float64, len(values))
			copy(cp, values)
			sampleIDs = append(sampleIDs, id)
			sampleVals[id] = cp
			return nil
		})
		p.Close()
		if err != nil {
			return nil, fmt.Errorf("core: reindex sample scan: %w", err)
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("core: reindex: no persisted records to rebuild from")
	}
	if len(sampleIDs) == 0 {
		// A tiny dataset can dodge the sampler entirely; fall back to
		// sampling everything rather than failing the rebuild.
		for _, path := range old.Parts.Paths {
			p, err := storage.OpenPartition(path)
			if err != nil {
				return nil, fmt.Errorf("core: reindex sample scan: %w", err)
			}
			err = p.ScanAll(func(id int, values []float64) error {
				cp := make([]float64, len(values))
				copy(cp, values)
				sampleIDs = append(sampleIDs, id)
				sampleVals[id] = cp
				return nil
			})
			p.Close()
			if err != nil {
				return nil, fmt.Errorf("core: reindex sample scan: %w", err)
			}
		}
	}
	// Materialise in ID order: scan order must not influence pivot selection.
	sort.Ints(sampleIDs)
	sample := series.NewDatasetCap(seriesLen, len(sampleIDs))
	for _, id := range sampleIDs {
		sample.Append(sampleVals[id])
	}
	effCfg := cfg
	if eff := float64(sample.Len()) / float64(total); eff > 0 {
		if eff > 1 {
			eff = 1
		}
		effCfg.SampleRate = eff
	}
	skel, err := BuildSkeleton(sample, seriesLen, effCfg)
	if err != nil {
		return nil, fmt.Errorf("core: reindex skeleton: %w", err)
	}
	skeletonTime := time.Since(start)
	ix.Cl.Broadcast(skel.EncodedSize())

	// --- pass 2: route everything, write the new partition files ----------
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	convStart := time.Now()
	writers := make([]*storage.PartitionWriter, skel.NumPartitions)
	for pid := range writers {
		writers[pid] = storage.NewPartitionWriter(seriesLen)
	}
	for _, path := range old.Parts.Paths {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p, err := storage.OpenPartition(path)
		if err != nil {
			return nil, fmt.Errorf("core: reindex route scan: %w", err)
		}
		err = p.ScanAll(func(id int, values []float64) error {
			r := skel.RouteNewRecord(id, values)
			return writers[r.Partition].Append(r.Cluster, id, values)
		})
		p.Close()
		if err != nil {
			return nil, fmt.Errorf("core: reindex route scan: %w", err)
		}
	}
	convTime := time.Since(convStart)

	redistStart := time.Now()
	crashStep("gen-dirs")
	for node := 0; node < nodes; node++ {
		if err := os.MkdirAll(genNodeDir(genRoot, node), 0o755); err != nil {
			return nil, fmt.Errorf("core: reindex mkdir: %w", err)
		}
	}
	parts := &cluster.PartitionSet{
		SeriesLen: seriesLen,
		Paths:     make([]string, skel.NumPartitions),
		Counts:    make([]int, skel.NumPartitions),
	}
	for pid, w := range writers {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		path := genPartitionPath(genRoot, pid%nodes, pid, name)
		crashStep(fmt.Sprintf("partition-%05d", pid))
		if err := w.Flush(path); err != nil {
			return nil, fmt.Errorf("core: reindex flush partition %d: %w", pid, err)
		}
		if err := syncFile(path); err != nil {
			return nil, err
		}
		parts.Paths[pid] = path
		parts.Counts[pid] = w.Count()
	}
	// The partition files must be durable and findable before the skeleton
	// that references them; then the skeleton before the MANIFEST that
	// references it (the caller's rename).
	crashStep("gen-dir-sync")
	for node := 0; node < nodes; node++ {
		if err := syncDir(genNodeDir(genRoot, node)); err != nil {
			return nil, err
		}
	}
	if err := syncDir(genRoot); err != nil {
		return nil, err
	}
	if err := SaveSnapshot(skel, parts, IndexPathIn(genRoot)); err != nil {
		return nil, err
	}
	if err := syncDir(genRoot); err != nil {
		return nil, err
	}
	redistTime := time.Since(redistStart)

	ix.Stats = BuildStats{
		SampleRecords:  sample.Len(),
		Skeleton:       skeletonTime,
		Conversion:     convTime,
		Redistribution: redistTime,
		Total:          time.Since(start),
	}
	return NewGeneration(skel, parts), nil
}
