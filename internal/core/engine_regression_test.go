package core

import (
	"context"
	"testing"

	"climber/internal/dataset"
	"climber/internal/series"
	"climber/internal/storage"
)

// assertSameResults fails unless two answers are bit-for-bit identical:
// same length, same IDs, and exactly equal float64 distances (no epsilon).
func assertSameResults(t *testing.T, label string, got, want []series.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, legacy returned %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
			t.Fatalf("%s: result %d = {ID:%d Dist:%v}, legacy {ID:%d Dist:%v}",
				label, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
		}
	}
}

// assertSameEffort fails unless the engine charged exactly the effort the
// legacy path did — same plan coverage, record comparisons and I/O volume.
func assertSameEffort(t *testing.T, label string, got, want QueryStats) {
	t.Helper()
	if got.PartitionsScanned != want.PartitionsScanned ||
		got.RecordsScanned != want.RecordsScanned ||
		got.BytesLoaded != want.BytesLoaded ||
		got.GroupsConsidered != want.GroupsConsidered ||
		got.TargetNodeSize != want.TargetNodeSize ||
		got.TargetPathLen != want.TargetPathLen {
		t.Fatalf("%s: effort diverged from legacy:\n got %+v\nwant %+v", label, got, want)
	}
}

// TestEngineMatchesLegacyBitForBit pins the planner/executor engine to the
// pre-refactor monolith (legacy_search_test.go): for every variant, across
// K values spanning "node holds plenty" to "widening must kick in", on two
// index granularities, the staged engine must return bit-for-bit identical
// (ID, distance) answers and charge identical effort. Run-to-completion
// progressive execution must match too — sequential stepping may not
// change the answer.
func TestEngineMatchesLegacyBitForBit(t *testing.T) {
	configs := []struct {
		name string
		cfg  Config
		n    int
	}{
		{"default", testConfig(), 2500},
		{"fine-partitions", func() Config {
			cfg := testConfig()
			cfg.Capacity = 50 // many small partitions: multi-step adaptive plans
			return cfg
		}(), 2000},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			ix, ds, _, _ := buildTestIndex(t, tc.n, tc.cfg)
			_, qs := dataset.Queries(ds, 12, 42)
			variants := []Variant{VariantKNN, VariantAdaptive2X, VariantAdaptive4X, VariantODSmallest}
			for qi, q := range qs {
				for _, v := range variants {
					for _, k := range []int{1, 20, 200} {
						opts := SearchOptions{K: k, Variant: v}
						want, err := legacySearchContext(context.Background(), ix, q, opts)
						if err != nil {
							t.Fatal(err)
						}
						got, err := ix.Search(q, opts)
						if err != nil {
							t.Fatal(err)
						}
						label := tc.name + "/" + v.String()
						assertSameResults(t, label, got.Results, want.Results)
						assertSameEffort(t, label, got.Stats, want.Stats)

						// Progressive run-to-completion: same answer again.
						prog, err := ix.SearchProgressive(context.Background(), q, opts, func(Snapshot) bool { return true })
						if err != nil {
							t.Fatal(err)
						}
						assertSameResults(t, label+"/progressive", prog.Results, want.Results)
						assertSameEffort(t, label+"/progressive", prog.Stats, want.Stats)
					}
				}
				// Prefix queries against the legacy prefix path.
				for _, plen := range []int{16, 33, 63} {
					opts := SearchOptions{K: 20, Variant: VariantAdaptive4X}
					want, err := legacySearchPrefixContext(context.Background(), ix, q[:plen], opts)
					if err != nil {
						t.Fatal(err)
					}
					got, err := ix.SearchPrefix(q[:plen], opts)
					if err != nil {
						t.Fatal(err)
					}
					assertSameResults(t, tc.name+"/prefix", got.Results, want.Results)
					assertSameEffort(t, tc.name+"/prefix", got.Stats, want.Stats)
				}
				_ = qi
			}
		})
	}
}

// TestEngineBitIdenticalAcrossBackends pins the zero-copy read path: the
// same query must return bit-for-bit identical answers and charge identical
// record-comparison effort whether partitions are scanned file-backed
// (ReaderAt), cached decoded, or cached memory-mapped. The raw kernel runs
// over the same encoded bytes in all three, so any divergence means a
// backend leaked into the ranking math.
func TestEngineBitIdenticalAcrossBackends(t *testing.T) {
	cfg := testConfig()
	cfg.Capacity = 50 // many partitions so plans span several backends' loads
	ix, ds, _, _ := buildTestIndex(t, 2000, cfg)
	_, qs := dataset.Queries(ds, 8, 99)

	type answer struct {
		results []series.Result
		scanned int
	}
	run := func(t *testing.T) []answer {
		t.Helper()
		out := make([]answer, 0, len(qs)*2)
		for _, q := range qs {
			for _, opts := range []SearchOptions{
				{K: 25, Variant: VariantAdaptive4X},
				{K: 5, Variant: VariantKNN},
			} {
				res, err := ix.Search(q, opts)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, answer{res.Results, res.Stats.RecordsScanned})
			}
		}
		return out
	}

	want := run(t) // file-backed ReaderAt scans, no cache

	backends := []struct {
		name string
		mmap bool
	}{{"cached-decoded", false}, {"cached-mmap", true}}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			if b.mmap && !storage.MapSupported() {
				t.Skip("mmap unsupported on this platform")
			}
			ix.Cl.EnablePartitionCache(1 << 30)
			ix.Cl.EnableMmap(b.mmap)
			defer func() {
				ix.Cl.EnableMmap(false)
				if c := ix.Cl.PartitionCache(); c != nil {
					c.Purge()
				}
			}()
			for pass := 0; pass < 2; pass++ { // cold (load) then warm (hit)
				got := run(t)
				for i := range got {
					assertSameResults(t, b.name, got[i].results, want[i].results)
					if got[i].scanned != want[i].scanned {
						t.Fatalf("%s pass %d: scanned %d records, file-backed scanned %d",
							b.name, pass, got[i].scanned, want[i].scanned)
					}
				}
			}
		})
	}
}

// The MaxPartitions plan override must shrink adaptive plans exactly as the
// legacy path did.
func TestEngineMatchesLegacyWithPlanCap(t *testing.T) {
	cfg := testConfig()
	cfg.Capacity = 50
	ix, ds, _, _ := buildTestIndex(t, 2000, cfg)
	_, qs := dataset.Queries(ds, 6, 7)
	for _, q := range qs {
		opts := SearchOptions{K: 500, Variant: VariantAdaptive4X, MaxPartitions: 2}
		want, err := legacySearchContext(context.Background(), ix, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.Search(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "plan-cap", got.Results, want.Results)
		assertSameEffort(t, "plan-cap", got.Stats, want.Stats)
	}
}
