package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"climber/internal/pivot"
	"climber/internal/series"
	"climber/internal/storage"
	"climber/internal/trie"
)

// Variant selects the query-processing strategy (paper Section VI and the
// experimental variations of Section VII-A).
type Variant int

const (
	// VariantKNN is Algorithm 3: a single best-matching trie node, with
	// expansion only within the already-loaded partition(s) when the node
	// holds fewer than K records.
	VariantKNN Variant = iota
	// VariantAdaptive2X is CLIMBER-kNN-Adaptive capped at 2x the partitions
	// of the base algorithm.
	VariantAdaptive2X
	// VariantAdaptive4X caps at 4x — the paper's default variation.
	VariantAdaptive4X
	// VariantODSmallest scans every partition of every group whose Overlap
	// Distance to the query is smallest (Algorithm 3 stopped at Line 6) —
	// the upper-bound ablation of Figure 11(b).
	VariantODSmallest
)

// String names the variant as in the paper's plots.
func (v Variant) String() string {
	switch v {
	case VariantKNN:
		return "CLIMBER-kNN"
	case VariantAdaptive2X:
		return "CLIMBER-kNN-Adaptive-2X"
	case VariantAdaptive4X:
		return "CLIMBER-kNN-Adaptive-4X"
	case VariantODSmallest:
		return "OD-Smallest"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// partitionFactor returns the adaptive partition-cap multiplier relative to
// the base CLIMBER-kNN partition count.
func (v Variant) partitionFactor() int {
	switch v {
	case VariantAdaptive2X:
		return 2
	case VariantAdaptive4X:
		return 4
	default:
		return 1
	}
}

// SearchOptions parameterise one kNN query.
type SearchOptions struct {
	// K is the answer-set size (paper default 500).
	K int
	// Variant selects the algorithm; the zero value is CLIMBER-kNN.
	Variant Variant
	// MaxPartitions, when positive, overrides the variant's partition cap
	// (the paper's MaxNumPartitions configuration parameter).
	MaxPartitions int
	// Explain attaches the index-navigation trace to the result.
	Explain bool
}

// Explanation traces how Algorithm 3 navigated the index for one query —
// the operator-facing counterpart of the paper's Example 2 walkthrough.
type Explanation struct {
	// RankSensitive and RankInsensitive are the query's P4 dual signature.
	RankSensitive, RankInsensitive pivot.Signature
	// BestOD is the smallest Overlap Distance to any group centroid; equal
	// to the prefix length when the query fell back to G0.
	BestOD int
	// CandidateGroups are the group IDs surviving the OD/WD filtering.
	CandidateGroups []int
	// SelectedGroup is the group whose trie was chosen.
	SelectedGroup int
	// MatchedPath is the pivot-ID prefix matched inside the group's trie
	// (the root-to-GN path of Example 2).
	MatchedPath pivot.Signature
	// TargetNodeSize is the estimated membership of the matched node.
	TargetNodeSize int
	// Partitions are the physical partitions the plan scanned.
	Partitions []int
}

// QueryStats reports where a query's effort went — the metrics behind
// Figures 7, 9, 11 and 12.
type QueryStats struct {
	// GroupsConsidered is |GList| after the OD/WD filtering.
	GroupsConsidered int
	// TargetNodeSize is the (estimated) record count of the best-matching
	// trie node (the capacity "m" stressed by Figure 11(a)).
	TargetNodeSize int
	// TargetPathLen is the matched root-to-node path length.
	TargetPathLen int
	// PartitionsScanned counts distinct partitions loaded.
	PartitionsScanned int
	// RecordsScanned counts raw series compared with ED, including delta
	// records merged from the in-memory ingestion index.
	RecordsScanned int
	// DeltaScanned counts the subset of RecordsScanned served by the
	// in-memory delta index (appended, not yet compacted); always zero
	// without a live ingestion pipeline.
	DeltaScanned int
	// BytesLoaded approximates I/O as full-partition loads, the unit the
	// paper's query-time model charges for.
	BytesLoaded int64
	// CacheHits and CacheMisses count this query's partition opens served
	// from / missing the shared partition cache, across both the planned
	// scan and the within-partition widening pass. Both stay zero when the
	// cache is disabled.
	CacheHits, CacheMisses int
}

// SearchResult is the approximate answer set with its statistics. Distances
// are true (non-squared) Euclidean distances, ascending. Explain is non-nil
// only when requested via SearchOptions.Explain.
type SearchResult struct {
	Results []series.Result
	Stats   QueryStats
	Explain *Explanation
}

// target is one (group, trie node) candidate selected for scanning.
type target struct {
	group   *Group
	node    *trie.Node
	od      int
	pathLen int
}

// scanPlan maps a partition ID to the record clusters to scan inside it;
// a nil cluster set means "scan the whole partition".
type scanPlan map[int]map[storage.ClusterID]struct{}

// Search answers an approximate kNN query (paper Definition 4) using the
// configured variant.
func (ix *Index) Search(q []float64, opts SearchOptions) (*SearchResult, error) {
	return ix.SearchContext(context.Background(), q, opts)
}

// SearchContext is Search under a context. Cancellation is honoured on the
// partition-scan path: every scanning goroutine checks ctx between cluster
// scans (and periodically within large clusters), so a cancelled query stops
// loading and comparing records mid-plan and returns ctx.Err().
func (ix *Index) SearchContext(ctx context.Context, q []float64, opts SearchOptions) (*SearchResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.K <= 0 {
		return nil, fmt.Errorf("core: K must be positive, got %d", opts.K)
	}
	if len(q) != ix.Skel.SeriesLen {
		return nil, fmt.Errorf("core: query length %d, index expects %d", len(q), ix.Skel.SeriesLen)
	}
	skel := ix.Skel

	// Lines 2-4 of Algorithm 3: transform the query exactly as records were
	// transformed during Step 4.
	paaQ := skel.Transformer.Transform(q)
	rs, ri := skel.Pivots.Dual(paaQ)

	// Lines 5-9: best group(s) by OD, ties broken by WD.
	cands, bestOD := skel.Assigner.Candidates(rs, ri)

	// Lines 10-19: per-group trie descent and tie-breaking.
	base := ix.selectTarget(cands, rs, bestOD)
	stats := QueryStats{
		GroupsConsidered: len(cands),
		TargetNodeSize:   base.node.Count,
		TargetPathLen:    base.pathLen,
	}

	var plan scanPlan
	switch opts.Variant {
	case VariantODSmallest:
		plan = ix.planODSmallest(ri, bestOD)
	case VariantAdaptive2X, VariantAdaptive4X:
		plan = ix.planAdaptive(base, rs, ri, bestOD, opts)
	default:
		plan = ix.planKNN(base)
	}

	top := series.NewTopK(opts.K)
	if err := ix.executePlan(ctx, plan, nil, q, top, true, &stats); err != nil {
		return nil, err
	}

	// Within-partition expansion: when the scanned trie nodes hold fewer
	// than K records, widen to every cluster of the already-loaded
	// partitions (Section VII-A: CLIMBER-kNN "expands the search within the
	// same partition"; the adaptive variants inherit the same final step so
	// their candidate set is always a superset of CLIMBER-kNN's, as in
	// Figure 9). The partitions are in memory already, so the widening
	// charges no additional loads.
	widened := false
	if opts.Variant != VariantODSmallest && top.Len() < opts.K {
		widened = true
		wplan := make(scanPlan, len(plan))
		for pid := range plan {
			wplan[pid] = nil
		}
		if err := ix.executePlan(ctx, wplan, plan, q, top, false, &stats); err != nil {
			return nil, err
		}
	}

	// Merge acked-but-uncompacted writes from the in-memory delta index so
	// they are visible to searches before any compaction lands them.
	deltaTop, err := ix.scanDelta(ctx, plan, widened, opts.K, &stats,
		func(values []float64, bound float64) float64 {
			return series.SqDistEarlyAbandon(q, values, bound)
		})
	if err != nil {
		return nil, err
	}

	results := top.Results()
	if deltaTop != nil {
		results = mergeResults(results, deltaTop.Results(), opts.K)
	}
	for i := range results {
		results[i].Dist = math.Sqrt(results[i].Dist)
	}
	out := &SearchResult{Results: results, Stats: stats}
	if opts.Explain {
		pids := make([]int, 0, len(plan))
		for pid := range plan {
			pids = append(pids, pid)
		}
		sort.Ints(pids)
		out.Explain = &Explanation{
			RankSensitive:   rs.Clone(),
			RankInsensitive: ri.Clone(),
			BestOD:          bestOD,
			CandidateGroups: append([]int(nil), cands...),
			SelectedGroup:   base.group.ID,
			MatchedPath:     rs[:base.pathLen].Clone(),
			TargetNodeSize:  base.node.Count,
			Partitions:      pids,
		}
	}
	return out, nil
}

// selectTarget applies the tie-breaking of Algorithm 3 Lines 10-19 over the
// candidate groups: deepest matched path first, then largest node, then the
// lowest group ID (a deterministic stand-in for the paper's random pick
// among equally well-matching groups, chosen so repeated runs are
// comparable).
func (ix *Index) selectTarget(cands []int, rs pivot.Signature, bestOD int) target {
	best := target{pathLen: -1}
	for _, gid := range cands {
		g := ix.Skel.Groups[gid]
		node, pathLen := g.Trie.Descend(rs)
		cand := target{group: g, node: node, od: bestOD, pathLen: pathLen}
		switch {
		case best.group == nil,
			cand.pathLen > best.pathLen,
			cand.pathLen == best.pathLen && cand.node.Count > best.node.Count:
			best = cand
		}
	}
	return best
}

// clustersUnder returns the global record-cluster IDs of the subtree rooted
// at a node, including the group's overflow cluster when the node is the
// group root (overflow records belong to the group but to no complete
// root-to-leaf path).
func clustersUnder(g *Group, n *trie.Node) []storage.ClusterID {
	leafIDs := n.LeafIDsUnder()
	out := make([]storage.ClusterID, 0, len(leafIDs)+1)
	for _, id := range leafIDs {
		out = append(out, g.ClusterOf(g.node(id)))
	}
	if n == g.Trie {
		out = append(out, g.OverflowCluster())
	}
	return out
}

// partitionsOf returns the partitions covering a node, falling back to the
// group's partition set for a childless root.
func partitionsOf(g *Group, n *trie.Node) []int {
	if len(n.Partitions) > 0 {
		return n.Partitions
	}
	return []int{g.DefaultPartition}
}

// addTarget folds one (group, node) target into a scan plan.
func (p scanPlan) addTarget(g *Group, n *trie.Node) {
	parts := partitionsOf(g, n)
	clusters := clustersUnder(g, n)
	for _, pid := range parts {
		set, ok := p[pid]
		if !ok {
			set = make(map[storage.ClusterID]struct{})
			p[pid] = set
		}
		if set == nil {
			continue // whole partition already planned
		}
		for _, c := range clusters {
			set[c] = struct{}{}
		}
	}
}

// addWholePartition plans a full scan of one partition.
func (p scanPlan) addWholePartition(pid int) { p[pid] = nil }

// planKNN builds the scan plan of plain CLIMBER-kNN: the base target only.
func (ix *Index) planKNN(base target) scanPlan {
	plan := make(scanPlan)
	plan.addTarget(base.group, base.node)
	return plan
}

// planODSmallest scans every partition of every group at the smallest OD.
func (ix *Index) planODSmallest(ri pivot.Signature, bestOD int) scanPlan {
	plan := make(scanPlan)
	gids, _ := ix.Skel.Assigner.BestByOverlap(ri)
	if bestOD == ix.Skel.Cfg.PrefixLen {
		gids = []int{0}
	}
	for _, gid := range gids {
		for _, pid := range ix.Skel.GroupPartitions(gid) {
			plan.addWholePartition(pid)
		}
	}
	return plan
}

// planAdaptive implements CLIMBER-kNN-Adaptive (Section VI): when the base
// trie node holds fewer than K records, the search expands to further
// best-matching trie nodes — the deepest match of every group within the
// smallest OD, then their parents (the 2nd-longest matches) — until the
// selected nodes' sizes sum past K, bounded by the variant's partition cap.
func (ix *Index) planAdaptive(base target, rs, ri pivot.Signature, bestOD int, opts SearchOptions) scanPlan {
	plan := make(scanPlan)
	plan.addTarget(base.group, base.node)
	if base.node.Count >= opts.K {
		return plan // behaves exactly like CLIMBER-kNN (Figure 9 observation 2)
	}

	maxParts := opts.Variant.partitionFactor() * len(partitionsOf(base.group, base.node))
	if opts.MaxPartitions > 0 {
		maxParts = opts.MaxPartitions
	}

	// Memorised candidates: deepest node per group within the smallest OD,
	// plus each node's ancestors as progressively coarser fallbacks.
	var cands []target
	for _, gid := range ix.Skel.Assigner.GroupsWithinOD(ri, bestOD) {
		g := ix.Skel.Groups[gid]
		node, pathLen := g.Trie.Descend(rs)
		if g == base.group && node == base.node {
			node = parentOf(g.Trie, node) // base already planned; offer its parent
			pathLen--
		}
		for node != nil && pathLen >= 0 {
			cands = append(cands, target{group: g, node: node, od: bestOD, pathLen: pathLen})
			node = parentOf(g.Trie, node)
			pathLen--
		}
	}
	// Rank: deeper matches first, then larger nodes, then group ID.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].pathLen != cands[j].pathLen {
			return cands[i].pathLen > cands[j].pathLen
		}
		if cands[i].node.Count != cands[j].node.Count {
			return cands[i].node.Count > cands[j].node.Count
		}
		return cands[i].group.ID < cands[j].group.ID
	})

	covered := base.node.Count
	for _, c := range cands {
		if covered >= opts.K {
			break
		}
		if wouldExceedPartitionCap(plan, c, maxParts) {
			continue
		}
		before := planSize(plan)
		plan.addTarget(c.group, c.node)
		if planSize(plan) > before { // the target added new clusters
			covered += c.node.Count
		}
	}
	return plan
}

// parentOf finds the parent of a node within a trie (tries are small; a
// DFS walk is cheap and avoids storing parent pointers in every node).
func parentOf(root, child *trie.Node) *trie.Node {
	if root == child {
		return nil
	}
	var found *trie.Node
	var walk func(*trie.Node) bool
	walk = func(n *trie.Node) bool {
		for _, c := range n.Children {
			if c == child {
				found = n
				return true
			}
			if walk(c) {
				return true
			}
		}
		return false
	}
	walk(root)
	return found
}

// wouldExceedPartitionCap reports whether adding the target would grow the
// plan's distinct-partition count beyond maxParts. The target's partition
// list can repeat IDs (an internal node covering several leaves packed into
// the same bin), so new partitions are counted as a set — counting
// duplicates would refuse targets that actually fit the cap.
func wouldExceedPartitionCap(plan scanPlan, c target, maxParts int) bool {
	extra := make(map[int]struct{})
	for _, pid := range partitionsOf(c.group, c.node) {
		if _, ok := plan[pid]; !ok {
			extra[pid] = struct{}{}
		}
	}
	return len(plan)+len(extra) > maxParts
}

// planSize counts the clusters planned (whole-partition entries count as 1).
func planSize(plan scanPlan) int {
	n := 0
	for _, set := range plan {
		if set == nil {
			n++
			continue
		}
		n += len(set)
	}
	return n
}

// executePlan scans the planned clusters, folding candidates into top with
// early-abandoning squared Euclidean distance. Clusters already covered by
// the done plan are skipped (CLIMBER-kNN's within-partition widening must
// not compare a record twice). countLoads charges partition loads to the
// statistics; the widening pass passes false because its partitions are
// already resident.
//
// Multi-partition plans (the adaptive variants and OD-Smallest) scan their
// partitions concurrently — the distributed execution of the paper, where
// the selected partitions live on different workers. The top-k accumulator
// is shared under a mutex with a lock-free bound cache so early abandoning
// stays effective across workers.
func (ix *Index) executePlan(ctx context.Context, plan, done scanPlan, q []float64, top *series.TopK, countLoads bool, stats *QueryStats) error {
	return ix.executePlanDist(ctx, plan, done, top, countLoads, stats,
		func(values []float64, bound float64) float64 {
			return series.SqDistEarlyAbandon(q, values, bound)
		})
}

// cancelCheckStride is how many records a scanning goroutine compares
// between context checks inside one cluster. Cluster boundaries always
// check; the stride bounds the extra latency a cancelled query pays inside
// a single large cluster to a few hundred distance computations.
const cancelCheckStride = 256

// executePlanDist is the traversal shared by full-length and prefix
// queries: dist computes a squared distance for a candidate, early
// abandoning against bound (+Inf while the accumulator is not full).
//
// The traversal is cancellable: each partition-scan goroutine checks ctx
// before opening its partition, between cluster scans, and every
// cancelCheckStride records within a cluster, returning ctx.Err() as soon
// as it observes cancellation. Statistics stay consistent on a cancelled
// query — every record compared and partition loaded before the
// cancellation is still charged.
func (ix *Index) executePlanDist(ctx context.Context, plan, done scanPlan, top *series.TopK, countLoads bool, stats *QueryStats,
	dist func(values []float64, bound float64) float64) error {
	pids := make([]int, 0, len(plan))
	for pid := range plan {
		pids = append(pids, pid)
	}
	sort.Ints(pids)

	var mu sync.Mutex
	var boundBits atomic.Uint64
	if b, ok := top.Bound(); ok {
		boundBits.Store(math.Float64bits(b))
	} else {
		boundBits.Store(math.Float64bits(math.Inf(1)))
	}
	var recordsScanned atomic.Int64

	scan := func(id int, values []float64) error {
		if n := recordsScanned.Add(1); n%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		bound := math.Float64frombits(boundBits.Load())
		d := dist(values, bound)
		if d >= bound {
			return nil
		}
		mu.Lock()
		top.Push(id, d)
		if b, ok := top.Bound(); ok {
			boundBits.Store(math.Float64bits(b))
		}
		mu.Unlock()
		return nil
	}

	scanPartition := func(pid int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		p, err := ix.Cl.OpenPartition(ix.Parts, pid)
		if err != nil {
			return err
		}
		defer p.Close()
		mu.Lock()
		if p.Cached() {
			if p.CacheHit() {
				stats.CacheHits++
			} else {
				stats.CacheMisses++
			}
		}
		if countLoads {
			stats.PartitionsScanned++
			stats.BytesLoaded += int64(p.Count() * storage.RecordBytes(p.SeriesLen()))
		}
		mu.Unlock()
		var doneSet map[storage.ClusterID]struct{}
		if done != nil {
			doneSet = done[pid]
		}
		want := plan[pid]
		if want == nil { // whole partition
			for _, ci := range p.Clusters() {
				if doneSet != nil {
					if _, ok := doneSet[ci.ID]; ok {
						continue
					}
				}
				if err := ctx.Err(); err != nil {
					return err
				}
				if err := p.ScanCluster(ci.ID, scan); err != nil {
					return err
				}
			}
			return nil
		}
		ids := make([]storage.ClusterID, 0, len(want))
		for c := range want {
			if doneSet != nil {
				if _, ok := doneSet[c]; ok {
					continue
				}
			}
			ids = append(ids, c)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := p.ScanCluster(id, scan); err != nil {
				return err
			}
		}
		return nil
	}

	var err error
	if len(pids) <= 1 {
		for _, pid := range pids {
			if e := scanPartition(pid); e != nil {
				err = e
			}
		}
	} else {
		errs := make([]error, len(pids))
		var wg sync.WaitGroup
		for i, pid := range pids {
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs[i] = scanPartition(pid)
			}()
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				err = e
				break
			}
		}
	}
	stats.RecordsScanned += int(recordsScanned.Load())
	return err
}
