package core

import (
	"context"
	"fmt"
	"sort"

	"climber/internal/obs"
	"climber/internal/pivot"
	"climber/internal/series"
	"climber/internal/trie"
)

// Variant selects the query-processing strategy (paper Section VI and the
// experimental variations of Section VII-A). Each variant is a plan policy:
// it decides which (group, partition) steps the planner emits, while the
// executor (exec.go) runs whichever plan it is handed.
type Variant int

const (
	// VariantKNN is Algorithm 3: a single best-matching trie node, with
	// expansion only within the already-loaded partition(s) when the node
	// holds fewer than K records.
	VariantKNN Variant = iota
	// VariantAdaptive2X is CLIMBER-kNN-Adaptive capped at 2x the partitions
	// of the base algorithm.
	VariantAdaptive2X
	// VariantAdaptive4X caps at 4x — the paper's default variation.
	VariantAdaptive4X
	// VariantODSmallest scans every partition of every group whose Overlap
	// Distance to the query is smallest (Algorithm 3 stopped at Line 6) —
	// the upper-bound ablation of Figure 11(b).
	VariantODSmallest
)

// String names the variant as in the paper's plots.
func (v Variant) String() string {
	switch v {
	case VariantKNN:
		return "CLIMBER-kNN"
	case VariantAdaptive2X:
		return "CLIMBER-kNN-Adaptive-2X"
	case VariantAdaptive4X:
		return "CLIMBER-kNN-Adaptive-4X"
	case VariantODSmallest:
		return "OD-Smallest"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// partitionFactor returns the adaptive partition-cap multiplier relative to
// the base CLIMBER-kNN partition count.
func (v Variant) partitionFactor() int {
	switch v {
	case VariantAdaptive2X:
		return 2
	case VariantAdaptive4X:
		return 4
	default:
		return 1
	}
}

// SearchOptions parameterise one kNN query.
type SearchOptions struct {
	// K is the answer-set size (paper default 500).
	K int
	// Variant selects the algorithm; the zero value is CLIMBER-kNN.
	Variant Variant
	// MaxPartitions, when positive, overrides the adaptive variants'
	// partition cap (the paper's MaxNumPartitions configuration parameter).
	// It shapes the *plan*; Budget.MaxPartitions bounds the *execution*.
	MaxPartitions int
	// Budget, when non-zero, turns the query into an anytime query: the
	// executor stops at the first step boundary where a budget dimension
	// is exhausted and returns the best partial answer (see Budget).
	Budget Budget
	// Explain attaches the index-navigation trace to the result.
	Explain bool
}

// Explanation traces how Algorithm 3 navigated the index for one query —
// the operator-facing counterpart of the paper's Example 2 walkthrough.
type Explanation struct {
	// RankSensitive and RankInsensitive are the query's P4 dual signature.
	RankSensitive, RankInsensitive pivot.Signature
	// BestOD is the smallest Overlap Distance to any group centroid; equal
	// to the prefix length when the query fell back to G0.
	BestOD int
	// CandidateGroups are the group IDs surviving the OD/WD filtering.
	CandidateGroups []int
	// SelectedGroup is the group whose trie was chosen.
	SelectedGroup int
	// MatchedPath is the pivot-ID prefix matched inside the group's trie
	// (the root-to-GN path of Example 2).
	MatchedPath pivot.Signature
	// TargetNodeSize is the estimated membership of the matched node.
	TargetNodeSize int
	// Partitions are the physical partitions the plan selected, ascending.
	Partitions []int
	// Variant names the plan policy that produced the plan.
	Variant string
	// Plan is the planner's ranked step list with its scores, in execution
	// order, each marked with whether the executor actually ran it — steps
	// with Executed false were skipped by a budget (see
	// QueryStats.BudgetExhausted for which dimension ran out).
	Plan []PlanStepInfo
}

// PlanStepInfo is the explain-facing view of one ranked plan step: the
// scores the planner ordered it by, what it covers, and whether the
// executor got to it before the budget ran out.
type PlanStepInfo struct {
	// Partition is the physical partition the step opens.
	Partition int `json:"partition"`
	// OD is the step's Overlap Distance score (smaller ranks earlier).
	OD int `json:"od"`
	// PathLen is the deepest matched trie-path length (deeper ranks
	// earlier); -1 for whole-partition policies.
	PathLen int `json:"path_len"`
	// Est is the skeleton's record-count estimate for the planned clusters
	// (larger ranks earlier).
	Est int `json:"est"`
	// Clusters is the number of record clusters the step scans; 0 means
	// the whole partition.
	Clusters int `json:"clusters"`
	// Executed reports whether the executor ran this step.
	Executed bool `json:"executed"`
}

// QueryStats reports where a query's effort went — the metrics behind
// Figures 7, 9, 11 and 12.
type QueryStats struct {
	// GroupsConsidered is |GList| after the OD/WD filtering.
	GroupsConsidered int
	// TargetNodeSize is the (estimated) record count of the best-matching
	// trie node (the capacity "m" stressed by Figure 11(a)).
	TargetNodeSize int
	// TargetPathLen is the matched root-to-node path length.
	TargetPathLen int
	// StepsPlanned is the number of executable steps the planner emitted
	// (one per distinct partition); StepsExecuted counts how many actually
	// ran. They differ when a budget stopped the plan early; an answer can
	// also be Partial with every step executed (the budget expired during
	// widening, or a progressive sink stopped after the last step), so
	// Partial — not the counters — is the truncation signal.
	StepsPlanned, StepsExecuted int
	// Partial marks an answer whose execution stopped before the full plan
	// — a budget dimension ran out or a progressive consumer stopped the
	// query. The results are still the best answer for the effort spent.
	Partial bool
	// BudgetExhausted names the dimension that stopped a Partial query
	// (BudgetMaxPartitions, BudgetDeadline, BudgetMinRecords,
	// BudgetCallback); empty when the plan ran to completion.
	BudgetExhausted string
	// PartitionsScanned counts distinct partitions loaded.
	PartitionsScanned int
	// RecordsScanned counts raw series compared with ED, including delta
	// records merged from the in-memory ingestion index.
	RecordsScanned int
	// DeltaScanned counts the subset of RecordsScanned served by the
	// in-memory delta index (appended, not yet compacted); always zero
	// without a live ingestion pipeline.
	DeltaScanned int
	// BytesLoaded approximates I/O as full-partition loads, the unit the
	// paper's query-time model charges for.
	BytesLoaded int64
	// CacheHits and CacheMisses count this query's partition opens served
	// from / missing the shared partition cache, across both the planned
	// scan and the within-partition widening pass. Both stay zero when the
	// cache is disabled.
	CacheHits, CacheMisses int
}

// SearchResult is the approximate answer set with its statistics. Distances
// are true (non-squared) Euclidean distances, ascending. Explain is non-nil
// only when requested via SearchOptions.Explain.
type SearchResult struct {
	Results []series.Result
	Stats   QueryStats
	Explain *Explanation
}

// target is one (group, trie node) candidate selected for scanning.
type target struct {
	group   *Group
	node    *trie.Node
	od      int
	pathLen int
}

// Search answers an approximate kNN query (paper Definition 4) using the
// configured variant.
func (ix *Index) Search(q []float64, opts SearchOptions) (*SearchResult, error) {
	return ix.SearchContext(context.Background(), q, opts)
}

// SearchContext is Search under a context. Cancellation is honoured on the
// partition-scan path: every scanning goroutine checks ctx between cluster
// scans (and periodically within large clusters), so a cancelled query stops
// loading and comparing records mid-plan and returns ctx.Err().
func (ix *Index) SearchContext(ctx context.Context, q []float64, opts SearchOptions) (*SearchResult, error) {
	return ix.search(ctx, q, opts, nil)
}

// search is the full-length entry point: validate, transform, then run the
// planner/executor engine, optionally progressively.
func (ix *Index) search(ctx context.Context, q []float64, opts SearchOptions, sink func(Snapshot) bool) (*SearchResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.K <= 0 {
		return nil, fmt.Errorf("core: K must be positive, got %d", opts.K)
	}
	// Pin the generation for the whole query: skeleton navigation, partition
	// scans, and the delta merge all read one consistent snapshot even if an
	// online reindex swaps the index mid-query.
	g := ix.AcquireGeneration()
	defer g.Release()
	if len(q) != g.Skel.SeriesLen {
		return nil, fmt.Errorf("core: query length %d, index expects %d", len(q), g.Skel.SeriesLen)
	}
	// Lines 2-4 of Algorithm 3: transform the query exactly as records were
	// transformed during Step 4. The scan loop (exec.go) runs on the blocked
	// early-abandon kernels: multi-lane accumulation with the top-k limit
	// checked once per block, the vectorisation-friendly shape of the
	// MESSI/ParIS scan kernels. Disk records are ranked in their encoded
	// float32 form by the raw kernel — the query is rounded to the storage
	// precision once, here — while delta records (held as float64, never
	// round-tripped through a partition file) keep the float64 kernel.
	paaQ := g.Skel.Transformer.Transform(q)
	q32 := series.ToFloat32(q)
	return ix.runQuery(ctx, g, paaQ, opts, sink,
		func(values []float64, bound float64) float64 {
			return series.SqDistEarlyAbandonBlocked(q, values, bound)
		},
		func(rec []byte, bound float64) float64 {
			return series.SqDistEarlyAbandon32Blocked(q32, rec, bound)
		})
}

// runQuery is the engine shared by full-length and prefix queries: navigate
// the skeleton (planner), execute the ranked plan stage by stage under the
// budget (executor), and assemble the result. The caller passes the
// generation it acquired; every read below goes through it.
func (ix *Index) runQuery(ctx context.Context, g *Generation, paaQ []float64, opts SearchOptions, sink func(Snapshot) bool, dist distFunc, rawDist rawDistFunc) (*SearchResult, error) {
	skel := g.Skel

	// The "plan" span covers the pure in-memory half of the query: dual
	// signature, group selection, trie descent, and plan ranking.
	planSpan := obs.SpanFromContext(ctx).StartChild("plan")
	rs, ri := skel.Pivots.Dual(paaQ)

	// Lines 5-9: best group(s) by OD, ties broken by WD.
	cands, bestOD := skel.Assigner.Candidates(rs, ri)

	// Lines 10-19: per-group trie descent and tie-breaking, then the
	// variant's plan policy.
	base := skel.selectTarget(cands, rs, bestOD)
	plan := skel.plan(base, rs, ri, bestOD, opts)
	planSpan.SetAttr("groups", int64(len(cands)))
	planSpan.SetAttr("best_od", int64(bestOD))
	planSpan.SetAttr("steps", int64(len(plan.Steps)))
	planSpan.End()

	stats := QueryStats{
		GroupsConsidered: len(cands),
		TargetNodeSize:   base.node.Count,
		TargetPathLen:    base.pathLen,
		StepsPlanned:     len(plan.Steps),
	}
	ex := newExecutor(ix, g, plan, opts, dist, rawDist, &stats)
	if err := ex.run(ctx, sink); err != nil {
		return nil, err
	}

	out := &SearchResult{Results: ex.results, Stats: stats}
	if opts.Explain {
		pids := make([]int, 0, len(plan.Steps))
		stepInfos := make([]PlanStepInfo, 0, len(plan.Steps))
		for _, st := range plan.Steps {
			pids = append(pids, st.Partition)
			_, executed := ex.executed[st.Partition]
			stepInfos = append(stepInfos, PlanStepInfo{
				Partition: st.Partition,
				OD:        st.OD,
				PathLen:   st.PathLen,
				Est:       st.Est,
				Clusters:  len(st.Clusters),
				Executed:  executed,
			})
		}
		sort.Ints(pids)
		out.Explain = &Explanation{
			RankSensitive:   rs.Clone(),
			RankInsensitive: ri.Clone(),
			BestOD:          bestOD,
			CandidateGroups: append([]int(nil), cands...),
			SelectedGroup:   base.group.ID,
			MatchedPath:     rs[:base.pathLen].Clone(),
			TargetNodeSize:  base.node.Count,
			Partitions:      pids,
			Variant:         opts.Variant.String(),
			Plan:            stepInfos,
		}
	}
	return out, nil
}

// selectTarget applies the tie-breaking of Algorithm 3 Lines 10-19 over the
// candidate groups: deepest matched path first, then largest node, then the
// lowest group ID (a deterministic stand-in for the paper's random pick
// among equally well-matching groups, chosen so repeated runs are
// comparable).
func (s *Skeleton) selectTarget(cands []int, rs pivot.Signature, bestOD int) target {
	best := target{pathLen: -1}
	for _, gid := range cands {
		g := s.Groups[gid]
		node, pathLen := g.Trie.Descend(rs)
		cand := target{group: g, node: node, od: bestOD, pathLen: pathLen}
		switch {
		case best.group == nil,
			cand.pathLen > best.pathLen,
			cand.pathLen == best.pathLen && cand.node.Count > best.node.Count:
			best = cand
		}
	}
	return best
}
